// Property-based tests for the feature scalers (ctest -L property): for
// every seeded random matrix, inverse(transform(x)) recovers x up to
// floating-point rounding — including degenerate constant columns, where
// the scalers pin the divisor to 1 instead of dividing by ~0.
#include <gtest/gtest.h>

#include <cmath>

#include "highrpm/data/scaler.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::data {
namespace {

/// Random matrix spanning the ~9 orders of magnitude real PMC columns do,
/// with an occasional constant column (a counter that never fired).
math::Matrix random_features(math::Rng& rng) {
  const std::size_t rows =
      1 + static_cast<std::size_t>(rng.uniform(0.0, 40.0));
  const std::size_t cols =
      1 + static_cast<std::size_t>(rng.uniform(0.0, 8.0));
  math::Matrix x(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const bool constant = rng.uniform() < 0.15;
    const double scale = std::pow(10.0, rng.uniform(-3.0, 6.0));
    const double base = rng.uniform(-1.0, 1.0) * scale;
    for (std::size_t r = 0; r < rows; ++r) {
      x(r, c) = constant ? base : base + rng.uniform(-1.0, 1.0) * scale;
    }
  }
  return x;
}

void expect_roundtrip(const math::Matrix& x, const math::Matrix& back,
                      std::uint64_t seed) {
  ASSERT_EQ(back.rows(), x.rows());
  ASSERT_EQ(back.cols(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_NEAR(back(r, c), x(r, c), 1e-9 * (1.0 + std::fabs(x(r, c))))
          << "seed " << seed << " at (" << r << "," << c << ")";
    }
  }
}

TEST(StandardScalerProperty, InverseTransformRoundTrips) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    math::Rng rng(seed);
    const math::Matrix x = random_features(rng);
    StandardScaler sc;
    expect_roundtrip(x, sc.inverse(sc.fit_transform(x)), seed);
  }
}

TEST(MinMaxScalerProperty, InverseTransformRoundTrips) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    math::Rng rng(seed);
    const math::Matrix x = random_features(rng);
    MinMaxScaler sc;
    expect_roundtrip(x, sc.inverse(sc.fit_transform(x)), seed);
  }
}

TEST(ScalerProperty, RowAndMatrixInversesAgree) {
  math::Rng rng(7);
  const math::Matrix x = random_features(rng);
  StandardScaler std_sc;
  MinMaxScaler mm_sc;
  const math::Matrix xs = std_sc.fit_transform(x);
  const math::Matrix xm = mm_sc.fit_transform(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto srow = std_sc.inverse_row(xs.row(r));
    const auto mrow = mm_sc.inverse_row(xm.row(r));
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_DOUBLE_EQ(srow[c], std_sc.inverse(xs)(r, c));
      EXPECT_DOUBLE_EQ(mrow[c], mm_sc.inverse(xm)(r, c));
    }
  }
}

}  // namespace
}  // namespace highrpm::data
