// Property-based test for Algorithm 1's merge (ctest -L property): for any
// seeded random spline/residual traces and any plausibility band, the
// post-processed output stays inside [p_bottom, p_upper]. The spline input
// is deliberately allowed to overshoot the band (cubic ringing past a
// spike does exactly that) — the merge's output contract must hold anyway.
#include <gtest/gtest.h>

#include <vector>

#include "highrpm/core/static_trr.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::core {
namespace {

TEST(StaticTrrMergeProperty, OutputAlwaysInsidePlausibilityBand) {
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    math::Rng rng(seed);
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 200.0));
    const double p_bottom = rng.uniform(10.0, 150.0);
    const double p_upper = p_bottom + rng.uniform(1.0, 400.0);
    // Inputs range a full band width past both bounds.
    const double lo = p_bottom - (p_upper - p_bottom);
    const double hi = p_upper + (p_upper - p_bottom);
    std::vector<double> splined(n), residual(n);
    for (std::size_t i = 0; i < n; ++i) {
      splined[i] = rng.uniform(lo, hi);
      residual[i] = rng.uniform(lo, hi);
    }
    StaticTrrConfig cfg;
    cfg.miss_interval =
        2 + static_cast<std::size_t>(rng.uniform(0.0, 18.0));

    const auto merged =
        static_trr_post_process(splined, residual, p_upper, p_bottom, cfg);
    ASSERT_EQ(merged.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(merged[i], p_bottom) << "seed " << seed << " tick " << i;
      EXPECT_LE(merged[i], p_upper) << "seed " << seed << " tick " << i;
    }
  }
}

}  // namespace
}  // namespace highrpm::core
