// Property-based tests for obs::Histogram (ctest -L property): for any
// seeded random sample set, quantiles are monotone in the quantile argument
// and clamped into [min, max]. The histogram is log2-bucketed with linear
// interpolation inside the landing bucket, so quantiles track rank position
// instead of quantizing to bucket upper bounds (2^k - 1) — ordering,
// bounds, and within-bucket resolution are the invariants, not exact
// ranks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/obs/histogram.hpp"

namespace highrpm::obs {
namespace {

// In a HIGHRPM_OBS=OFF build the histogram is a no-op shell and these
// invariants are vacuous (tests/obs/noop_mode_test.cpp covers that mode).
#if HIGHRPM_OBS_ENABLED

TEST(HistogramProperty, QuantilesMonotoneInQ) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 500.0));
    for (std::size_t i = 0; i < n; ++i) {
      // Log-uniform over ~9 decades: span latencies range from tens of ns
      // to seconds.
      const double v = std::pow(10.0, rng.uniform(0.0, 9.0));
      h.record(static_cast<std::uint64_t>(v));
    }
    std::uint64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
      const std::uint64_t v = h.quantile(q);
      EXPECT_GE(v, prev) << "seed " << seed << " q " << q;
      EXPECT_GE(v, h.min()) << "seed " << seed << " q " << q;
      EXPECT_LE(v, h.max()) << "seed " << seed << " q " << q;
      prev = v;
    }
  }
}

TEST(HistogramProperty, QuantilesInterpolateWithinABucket) {
  // All mass in one power-of-two bucket: the pre-interpolation walk
  // reported the bucket upper bound (4095) for every q, collapsing p50 and
  // p99. With within-bucket interpolation, quantiles must spread across
  // the bucket by rank and stay ordered.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    const std::size_t n =
        64 + static_cast<std::size_t>(rng.uniform(0.0, 400.0));
    for (std::size_t i = 0; i < n; ++i) {
      // Bucket 12 spans [2048, 4095].
      h.record(static_cast<std::uint64_t>(rng.uniform(2048.0, 4096.0)));
    }
    const std::uint64_t p10 = h.quantile(0.10);
    const std::uint64_t p50 = h.quantile(0.50);
    const std::uint64_t p99 = h.quantile(0.99);
    EXPECT_LT(p10, p50) << "seed " << seed;
    EXPECT_LT(p50, p99) << "seed " << seed;
    // p50 must land mid-bucket, not pin to the 4095 upper bound. The exact
    // value depends only on rank position, so half the bucket width is a
    // safe band.
    EXPECT_GT(p50, 2048u) << "seed " << seed;
    EXPECT_LT(p50, 4095u) << "seed " << seed;
    EXPECT_GE(p10, h.min()) << "seed " << seed;
    EXPECT_LE(p99, h.max()) << "seed " << seed;
  }
}

TEST(HistogramProperty, SingleValueHistogramReportsThatValueEverywhere) {
  // Degenerate distribution: every quantile of {v, v, ..., v} is v (the
  // min/max clamp pins the interpolated value).
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{4095}, std::uint64_t{70000}}) {
    Histogram h;
    for (int i = 0; i < 50; ++i) h.record(v);
    for (double q = 0.0; q <= 1.0; q += 0.25) {
      EXPECT_EQ(h.quantile(q), v) << "value " << v << " q " << q;
    }
  }
}

TEST(HistogramProperty, CountAndSumMatchRecordedValues) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform(0.0, 200.0));
    std::uint64_t sum = 0, lo = 0, hi = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v =
          static_cast<std::uint64_t>(rng.uniform(0.0, 1e6));
      h.record(v);
      sum += v;
      lo = i == 0 ? v : std::min(lo, v);
      hi = i == 0 ? v : std::max(hi, v);
    }
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.sum(), sum);
    if (n > 0) {
      EXPECT_EQ(h.min(), lo);
      EXPECT_EQ(h.max(), hi);
    }
  }
}

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace
}  // namespace highrpm::obs
