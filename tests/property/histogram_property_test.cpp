// Property-based tests for obs::Histogram (ctest -L property): for any
// seeded random sample set, quantiles are monotone in the quantile argument
// and clamped into [min, max]. The histogram is log2-bucketed with linear
// interpolation inside the landing bucket, so quantiles track rank position
// instead of quantizing to bucket upper bounds (2^k - 1) — ordering,
// bounds, and within-bucket resolution are the invariants, not exact
// ranks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/obs/histogram.hpp"

namespace highrpm::obs {
namespace {

// In a HIGHRPM_OBS=OFF build the histogram is a no-op shell and these
// invariants are vacuous (tests/obs/noop_mode_test.cpp covers that mode).
#if HIGHRPM_OBS_ENABLED

TEST(HistogramProperty, QuantilesMonotoneInQ) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 500.0));
    for (std::size_t i = 0; i < n; ++i) {
      // Log-uniform over ~9 decades: span latencies range from tens of ns
      // to seconds.
      const double v = std::pow(10.0, rng.uniform(0.0, 9.0));
      h.record(static_cast<std::uint64_t>(v));
    }
    std::uint64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
      const std::uint64_t v = h.quantile(q);
      EXPECT_GE(v, prev) << "seed " << seed << " q " << q;
      EXPECT_GE(v, h.min()) << "seed " << seed << " q " << q;
      EXPECT_LE(v, h.max()) << "seed " << seed << " q " << q;
      prev = v;
    }
  }
}

TEST(HistogramProperty, QuantilesInterpolateWithinABucket) {
  // All mass in one power-of-two bucket: the pre-interpolation walk
  // reported the bucket upper bound (4095) for every q, collapsing p50 and
  // p99. With within-bucket interpolation, quantiles must spread across
  // the bucket by rank and stay ordered.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    const std::size_t n =
        64 + static_cast<std::size_t>(rng.uniform(0.0, 400.0));
    for (std::size_t i = 0; i < n; ++i) {
      // Bucket 12 spans [2048, 4095].
      h.record(static_cast<std::uint64_t>(rng.uniform(2048.0, 4096.0)));
    }
    const std::uint64_t p10 = h.quantile(0.10);
    const std::uint64_t p50 = h.quantile(0.50);
    const std::uint64_t p99 = h.quantile(0.99);
    EXPECT_LT(p10, p50) << "seed " << seed;
    EXPECT_LT(p50, p99) << "seed " << seed;
    // p50 must land mid-bucket, not pin to the 4095 upper bound. The exact
    // value depends only on rank position, so half the bucket width is a
    // safe band.
    EXPECT_GT(p50, 2048u) << "seed " << seed;
    EXPECT_LT(p50, 4095u) << "seed " << seed;
    EXPECT_GE(p10, h.min()) << "seed " << seed;
    EXPECT_LE(p99, h.max()) << "seed " << seed;
  }
}

TEST(HistogramProperty, SingleValueHistogramReportsThatValueEverywhere) {
  // Degenerate distribution: every quantile of {v, v, ..., v} is v (the
  // min/max clamp pins the interpolated value).
  for (const std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{4095}, std::uint64_t{70000}}) {
    Histogram h;
    for (int i = 0; i < 50; ++i) h.record(v);
    for (double q = 0.0; q <= 1.0; q += 0.25) {
      EXPECT_EQ(h.quantile(q), v) << "value " << v << " q " << q;
    }
  }
}

TEST(HistogramProperty, CountAndSumMatchRecordedValues) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform(0.0, 200.0));
    std::uint64_t sum = 0, lo = 0, hi = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v =
          static_cast<std::uint64_t>(rng.uniform(0.0, 1e6));
      h.record(v);
      sum += v;
      lo = i == 0 ? v : std::min(lo, v);
      hi = i == 0 ? v : std::max(hi, v);
    }
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.sum(), sum);
    if (n > 0) {
      EXPECT_EQ(h.min(), lo);
      EXPECT_EQ(h.max(), hi);
    }
  }
}

TEST(HistogramProperty, EmptyHistogramContract) {
  // Documented contract (histogram.hpp): an empty histogram reports 0 for
  // every quantile, like min()/max()/sum(). stats() agrees field for field.
  const Histogram h;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_EQ(h.quantile(q), 0u) << "q " << q;
  }
  EXPECT_EQ(h.quantile(-0.5), 0u);  // q clamps, contract still holds
  EXPECT_EQ(h.quantile(1.5), 0u);
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.p90, 0u);
  EXPECT_EQ(s.p99, 0u);
}

TEST(HistogramProperty, TailQuantileCrossesBucketBoundary) {
  // Failing before the rank fix: the walk used a 1-based landing test
  // against a 0-based rank, so p99 of {1, 1, 1, 1000} landed in the 1s
  // bucket and reported 1. The 0-based strict test lands rank 3 in 1000's
  // bucket [512, 1023] — p99 must sit at or above that bucket's lower
  // bound (and within [min, max]).
  Histogram h;
  h.record(1);
  h.record(1);
  h.record(1);
  h.record(1000);
  EXPECT_GE(h.quantile(0.99), 512u);
  EXPECT_LE(h.quantile(0.99), 1000u);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_LE(h.quantile(0.5), 1u + (1000u - 1u) / 2u);
}

TEST(HistogramProperty, QuantileLandsInSortedRankBucket) {
  // Rank-consistency: quantile(q) must fall inside (or at the clamped
  // edge of) the log2 bucket of the sample at 0-based rank
  // min(floor(q * n), n - 1) in the sorted sample list — the histogram
  // loses within-bucket order, never rank-to-bucket mapping.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    std::vector<std::uint64_t> values;
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 300.0));
    for (std::size_t i = 0; i < n; ++i) {
      const auto v = static_cast<std::uint64_t>(
          std::pow(10.0, rng.uniform(0.0, 6.0)));
      values.push_back(v);
      h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      auto rank = static_cast<std::size_t>(q * static_cast<double>(n));
      if (rank >= n) rank = n - 1;
      const std::uint64_t expect = values[rank];
      const std::size_t b = Histogram::bucket_of(expect);
      const std::uint64_t lower =
          b == 0 ? 0 : Histogram::bucket_upper(b - 1) + 1;
      const std::uint64_t upper = Histogram::bucket_upper(b);
      const std::uint64_t got = h.quantile(q);
      // The bucket's interpolation range, clamped like the implementation.
      EXPECT_GE(got, std::max(lower, values.front()))
          << "seed " << seed << " q " << q;
      EXPECT_LE(got, std::min(upper, values.back()))
          << "seed " << seed << " q " << q;
    }
  }
}

TEST(HistogramProperty, StatsAgreesWithGettersWhenQuiescent) {
  // Single-threaded, stats() is just a bundled read: every field must
  // equal its getter / quantile counterpart exactly.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 200.0));
    for (std::size_t i = 0; i < n; ++i) {
      h.record(static_cast<std::uint64_t>(rng.uniform(0.0, 1e7)));
    }
    const HistogramStats s = h.stats();
    EXPECT_EQ(s.count, h.count()) << "seed " << seed;
    EXPECT_EQ(s.sum, h.sum());
    EXPECT_EQ(s.min, h.min());
    EXPECT_EQ(s.max, h.max());
    EXPECT_EQ(s.p50, h.quantile(0.50));
    EXPECT_EQ(s.p90, h.quantile(0.90));
    EXPECT_EQ(s.p99, h.quantile(0.99));
    EXPECT_LE(s.min, s.p50);
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.p99);
    EXPECT_LE(s.p99, s.max);
  }
}

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace
}  // namespace highrpm::obs
