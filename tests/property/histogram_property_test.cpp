// Property-based tests for obs::Histogram (ctest -L property): for any
// seeded random sample set, quantiles are monotone in the quantile argument
// and clamped into [min, max]. The histogram is log2-bucketed, so quantile
// values are bucket upper bounds — ordering and bounds are the invariants,
// not exact ranks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/obs/histogram.hpp"

namespace highrpm::obs {
namespace {

// In a HIGHRPM_OBS=OFF build the histogram is a no-op shell and these
// invariants are vacuous (tests/obs/noop_mode_test.cpp covers that mode).
#if HIGHRPM_OBS_ENABLED

TEST(HistogramProperty, QuantilesMonotoneInQ) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.uniform(0.0, 500.0));
    for (std::size_t i = 0; i < n; ++i) {
      // Log-uniform over ~9 decades: span latencies range from tens of ns
      // to seconds.
      const double v = std::pow(10.0, rng.uniform(0.0, 9.0));
      h.record(static_cast<std::uint64_t>(v));
    }
    std::uint64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
      const std::uint64_t v = h.quantile(q);
      EXPECT_GE(v, prev) << "seed " << seed << " q " << q;
      EXPECT_GE(v, h.min()) << "seed " << seed << " q " << q;
      EXPECT_LE(v, h.max()) << "seed " << seed << " q " << q;
      prev = v;
    }
  }
}

TEST(HistogramProperty, CountAndSumMatchRecordedValues) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    math::Rng rng(seed);
    Histogram h;
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform(0.0, 200.0));
    std::uint64_t sum = 0, lo = 0, hi = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v =
          static_cast<std::uint64_t>(rng.uniform(0.0, 1e6));
      h.record(v);
      sum += v;
      lo = i == 0 ? v : std::min(lo, v);
      hi = i == 0 ? v : std::max(hi, v);
    }
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.sum(), sum);
    if (n > 0) {
      EXPECT_EQ(h.min(), lo);
      EXPECT_EQ(h.max(), hi);
    }
  }
}

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace
}  // namespace highrpm::obs
