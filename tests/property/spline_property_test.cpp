// Property-based tests for CubicSpline (ctest -L property): seeded random
// knot sets, invariants that must hold for *every* generated instance.
//
//  * Interpolation: the spline passes through each knot exactly (natural
//    cubic splines interpolate by construction; a violation means the
//    tridiagonal solve regressed).
//  * C1 continuity: the first derivative approaches the same value from
//    both sides of every interior knot.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/math/spline.hpp"

namespace highrpm::math {
namespace {

struct Knots {
  std::vector<double> x;
  std::vector<double> y;
};

/// Random strictly-increasing knots with wide y excursions (power traces
/// spike, so the invariants must survive ugly data, not just smooth data).
Knots random_knots(Rng& rng) {
  const std::size_t n =
      4 + static_cast<std::size_t>(rng.uniform(0.0, 16.0));
  Knots k;
  double x = rng.uniform(-100.0, 100.0);
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.uniform(0.1, 5.0);  // strictly increasing, uneven spacing
    k.x.push_back(x);
    k.y.push_back(rng.uniform(-500.0, 500.0));
  }
  return k;
}

TEST(CubicSplineProperty, InterpolatesEveryKnotExactly) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const Knots k = random_knots(rng);
    const CubicSpline s(k.x, k.y);
    for (std::size_t i = 0; i < k.x.size(); ++i) {
      EXPECT_NEAR(s(k.x[i]), k.y[i], 1e-9 * (1.0 + std::fabs(k.y[i])))
          << "seed " << seed << " knot " << i;
    }
  }
}

TEST(CubicSplineProperty, C1ContinuousAtInteriorKnots) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const Knots k = random_knots(rng);
    const CubicSpline s(k.x, k.y);
    // One-sided derivatives a hair off each interior knot: with the segment
    // polynomials C1-matched at the knot, the two values differ only by
    // O(h * max|y''|); the tolerance scales with the derivative magnitude
    // so wild knot sets don't need a looser test than tame ones.
    const double h = 1e-7;
    for (std::size_t i = 1; i + 1 < k.x.size(); ++i) {
      const double left = s.derivative(k.x[i] - h);
      const double right = s.derivative(k.x[i] + h);
      const double scale =
          1.0 + std::fmax(std::fabs(left), std::fabs(right));
      EXPECT_NEAR(left, right, 1e-3 * scale)
          << "seed " << seed << " interior knot " << i;
    }
  }
}

TEST(CubicSplineProperty, ValueContinuousAtInteriorKnots) {
  for (std::uint64_t seed = 51; seed <= 80; ++seed) {
    Rng rng(seed);
    const Knots k = random_knots(rng);
    const CubicSpline s(k.x, k.y);
    const double h = 1e-9;
    for (std::size_t i = 1; i + 1 < k.x.size(); ++i) {
      const double scale = 1.0 + std::fabs(k.y[i]);
      EXPECT_NEAR(s(k.x[i] - h), s(k.x[i] + h), 1e-5 * scale)
          << "seed " << seed << " interior knot " << i;
    }
  }
}

}  // namespace
}  // namespace highrpm::math
