// Regression test for the diagnostic-counter data race: held_rows(),
// rejected_readings(), substituted_rows() and friends used to be plain
// size_t fields, so a monitor thread polling them while the stream thread
// stepped was a TSan-visible race. They are obs::Counter atomics now; this
// test reconstructs the exact polling-while-stepping interleaving so
// `ctest -L faults` under -DHIGHRPM_SANITIZE=thread keeps it fixed.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "highrpm/core/dynamic_trr.hpp"
#include "highrpm/core/highrpm.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

measure::CollectedRun collect(std::size_t ticks, std::uint64_t seed) {
  measure::Collector collector;
  return collector.collect(sim::PlatformConfig::arm(), workloads::fft(),
                           ticks, seed);
}

TEST(CounterRace, PollingDynamicTrrDiagnosticsWhileStepping) {
  const auto train = collect(220, 11);
  core::DynamicTrrConfig cfg;
  cfg.rnn.epochs = 8;
  core::DynamicTrr trr(cfg);
  trr.train_single(train.dataset.features(), train.dataset.target("P_NODE"));

  const auto test = collect(120, 12);
  const auto& f = test.dataset.features();
  std::atomic<bool> done{false};

  std::thread poller([&] {
    // Reads race the stream thread's increments by design; atomics make
    // that safe, and cumulative counters can only grow.
    std::size_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t seen = trr.rejected_readings() +
                               trr.substituted_rows() + trr.cold_starts() +
                               trr.finetune_count();
      EXPECT_GE(seen, last);
      last = seen;
    }
  });

  std::vector<double> degraded(f.cols(), kNan);
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    std::optional<double> reading;
    if (t % 10 == 0) reading = 1e9;  // implausible: always rejected
    const bool bad_row = t % 7 == 0;
    const double est =
        trr.step(bad_row ? std::span<const double>(degraded) : f.row(t),
                 reading);
    EXPECT_TRUE(std::isfinite(est));
  }
  done.store(true, std::memory_order_release);
  poller.join();

  EXPECT_GT(trr.rejected_readings(), 0u);
  EXPECT_GT(trr.substituted_rows(), 0u);
}

TEST(CounterRace, PollingHeldRowsWhileOnTickRuns) {
  core::HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 6;
  cfg.srr.epochs = 15;
  core::HighRpm framework(cfg);
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collect(200, 21));
  framework.initial_learning(runs);

  const auto test = collect(100, 22);
  const auto& f = test.dataset.features();
  std::atomic<bool> done{false};

  std::thread poller([&] {
    std::size_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t held = framework.held_rows();
      EXPECT_GE(held, last);
      last = held;
    }
  });

  std::vector<double> degraded(f.cols(), kNan);
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    const bool bad_row = t % 5 == 0;
    const auto est = framework.on_tick(
        bad_row ? std::span<const double>(degraded) : f.row(t),
        std::nullopt);
    EXPECT_TRUE(std::isfinite(est.node_w));
  }
  done.store(true, std::memory_order_release);
  poller.join();

  EXPECT_GT(framework.held_rows(), 0u);
}

}  // namespace
}  // namespace highrpm
