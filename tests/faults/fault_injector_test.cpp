#include "highrpm/measure/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "highrpm/sim/node.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::measure {
namespace {

sim::Trace make_trace(std::size_t ticks, std::uint64_t seed = 1) {
  sim::NodeSimulator node(sim::PlatformConfig::arm(), workloads::fft(), seed);
  return node.run(ticks);
}

CollectedRun collect(std::size_t ticks, std::uint64_t seed = 5) {
  Collector collector;
  return collector.collect(sim::PlatformConfig::arm(), workloads::fft(),
                           ticks, seed);
}

std::vector<IpmiReading> make_readings(std::size_t n, std::size_t stride) {
  std::vector<IpmiReading> out;
  for (std::size_t i = 0; i < n; ++i) {
    IpmiReading r;
    r.tick_index = i * stride;
    r.time_s = static_cast<double>(i * stride);
    r.power_w = 100.0 + static_cast<double>(i);
    out.push_back(r);
  }
  return out;
}

TEST(FaultProfile, DefaultIsClean) {
  EXPECT_FALSE(FaultProfile{}.any());
  FaultProfile p;
  p.im_dropout = 0.1;
  EXPECT_TRUE(p.any());
}

TEST(FaultInjector, CleanProfileIsExactIdentity) {
  FaultInjector injector;  // default profile: all rates 0
  const auto readings = make_readings(20, 5);
  for (const auto& r : readings) {
    const auto out = injector.corrupt_reading(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(out->power_w, r.power_w);
    EXPECT_EQ(out->tick_index, r.tick_index);
    EXPECT_DOUBLE_EQ(out->time_s, r.time_s);
  }
  std::vector<double> row{1.0, 2.0, 3.0};
  injector.corrupt_pmc_row(row);
  EXPECT_EQ(row, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(injector.counts().im_dropped, 0u);
  EXPECT_EQ(injector.counts().pmc_nan_rows, 0u);
}

TEST(FaultInjector, SameSeedSameFaults) {
  FaultProfile p;
  p.im_dropout = 0.3;
  p.im_spike = 0.2;
  p.pmc_nan = 0.3;
  p.seed = 42;
  FaultInjector a(p), b(p);
  const auto readings = make_readings(50, 2);
  for (const auto& r : readings) {
    const auto ra = a.corrupt_reading(r);
    const auto rb = b.corrupt_reading(r);
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (ra) {
      EXPECT_DOUBLE_EQ(ra->power_w, rb->power_w);
    }
  }
  EXPECT_EQ(a.counts().im_dropped, b.counts().im_dropped);
  EXPECT_EQ(a.counts().im_spiked, b.counts().im_spiked);
}

TEST(FaultInjector, DifferentSeedsDifferentFaults) {
  FaultProfile p;
  p.im_dropout = 0.5;
  FaultProfile q = p;
  q.seed = p.seed + 1;
  FaultInjector a(p), b(q);
  const auto readings = make_readings(100, 1);
  bool any_difference = false;
  for (const auto& r : readings) {
    if (a.corrupt_reading(r).has_value() != b.corrupt_reading(r).has_value()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, ResetReplaysTheSameSequence) {
  FaultProfile p;
  p.im_dropout = 0.4;
  FaultInjector injector(p);
  const auto readings = make_readings(30, 1);
  std::vector<bool> first;
  for (const auto& r : readings) {
    first.push_back(injector.corrupt_reading(r).has_value());
  }
  injector.reset();
  EXPECT_EQ(injector.counts().im_offered, 0u);
  for (std::size_t i = 0; i < readings.size(); ++i) {
    EXPECT_EQ(injector.corrupt_reading(readings[i]).has_value(), first[i]);
  }
}

TEST(FaultInjector, DropoutRateIsRoughlyHonored) {
  FaultProfile p;
  p.im_dropout = 0.3;
  FaultInjector injector(p);
  for (const auto& r : make_readings(1000, 1)) {
    injector.corrupt_reading(r);
  }
  EXPECT_EQ(injector.counts().im_offered, 1000u);
  EXPECT_GT(injector.counts().im_dropped, 200u);
  EXPECT_LT(injector.counts().im_dropped, 400u);
}

TEST(FaultInjector, StuckRepeatsLastDeliveredValue) {
  FaultProfile p;
  p.im_stuck = 1.0;  // every reading after the first latches
  FaultInjector injector(p);
  const auto readings = make_readings(10, 1);
  const auto first = injector.corrupt_reading(readings[0]);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->power_w, readings[0].power_w);
  for (std::size_t i = 1; i < readings.size(); ++i) {
    const auto out = injector.corrupt_reading(readings[i]);
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(out->power_w, readings[0].power_w);
  }
  EXPECT_EQ(injector.counts().im_stuck, 9u);
}

TEST(FaultInjector, SpikeScalesTheReading) {
  FaultProfile p;
  p.im_spike = 1.0;
  p.spike_scale = 3.0;
  FaultInjector injector(p);
  const auto out = injector.corrupt_reading(make_readings(1, 1)[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->power_w, 300.0);
  EXPECT_EQ(injector.counts().im_spiked, 1u);
}

TEST(FaultInjector, PmcNanAndZeroRowFaults) {
  FaultProfile p;
  p.pmc_nan = 1.0;
  FaultInjector nan_injector(p);
  std::vector<double> row{1.0, 2.0, 3.0};
  nan_injector.corrupt_pmc_row(row);
  for (const double v : row) EXPECT_TRUE(std::isnan(v));

  FaultProfile q;
  q.pmc_zero = 1.0;
  FaultInjector zero_injector(q);
  row = {1.0, 2.0, 3.0};
  zero_injector.corrupt_pmc_row(row);
  for (const double v : row) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FaultInjector, StreamingJitterDelaysDelivery) {
  FaultProfile p;
  p.im_jitter_ticks = 3;
  p.seed = 7;
  FaultInjector injector(p);
  // Offer a reading every 5 ticks for 100 ticks; every reading must
  // eventually surface, delayed by at most im_jitter_ticks.
  std::size_t offered = 0, delivered = 0;
  for (std::size_t t = 0; t < 100; ++t) {
    std::optional<IpmiReading> in;
    if (t % 5 == 0) {
      IpmiReading r;
      r.tick_index = t;
      r.time_s = static_cast<double>(t);
      r.power_w = 100.0;
      in = r;
      ++offered;
    }
    if (const auto out = injector.offer_im(in)) {
      // A delayed reading keeps its original (stale) tick_index.
      EXPECT_LE(out->tick_index, t);
      EXPECT_GE(out->tick_index + p.im_jitter_ticks, t);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, offered);
  EXPECT_GT(injector.counts().im_delayed, 0u);
}

TEST(FaultInjector, BatchJitterShiftsTimestampsForward) {
  FaultProfile p;
  p.im_jitter_ticks = 2;
  p.seed = 11;
  FaultInjector injector(p);
  bool any_shift = false;
  for (const auto& r : make_readings(50, 10)) {
    const auto out = injector.corrupt_reading(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_GE(out->tick_index, r.tick_index);
    EXPECT_LE(out->tick_index, r.tick_index + 2);
    if (out->tick_index != r.tick_index) any_shift = true;
  }
  EXPECT_TRUE(any_shift);
}

TEST(FaultInjector, JitterCanCollideTimestamps) {
  // With stride 1 and jitter 2, shifted readings must eventually land on
  // the same tick as a neighbor — the duplicate-timestamp pathology that
  // StaticTrr::fit has to survive.
  FaultProfile p;
  p.im_jitter_ticks = 2;
  p.seed = 3;
  FaultInjector injector(p);
  std::multiset<std::size_t> ticks;
  for (const auto& r : make_readings(100, 1)) {
    if (const auto out = injector.corrupt_reading(r)) {
      ticks.insert(out->tick_index);
    }
  }
  bool any_duplicate = false;
  for (const auto t : ticks) {
    if (ticks.count(t) > 1) any_duplicate = true;
  }
  EXPECT_TRUE(any_duplicate);
}

TEST(FaultyIpmiSensor, CleanProfileMatchesInnerSensor) {
  const auto trace = make_trace(80);
  IpmiConfig cfg;
  cfg.interval_s = 10.0;
  IpmiSensor plain(cfg);
  FaultyIpmiSensor faulty(cfg, FaultProfile{});
  const auto a = plain.sample_trace(trace);
  const auto b = faulty.sample_trace(trace);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].power_w, b[i].power_w);
    EXPECT_EQ(a[i].tick_index, b[i].tick_index);
  }
}

TEST(FaultyIpmiSensor, DropoutThinsTheReadings) {
  const auto trace = make_trace(200);
  IpmiConfig cfg;
  cfg.interval_s = 5.0;
  FaultProfile p;
  p.im_dropout = 0.5;
  FaultyIpmiSensor faulty(cfg, p);
  IpmiSensor plain(cfg);
  EXPECT_LT(faulty.sample_trace(trace).size(),
            plain.sample_trace(trace).size());
  EXPECT_GT(faulty.counts().im_dropped, 0u);
}

TEST(FaultyPmcSampler, CleanProfileMatchesInnerSampler) {
  const auto trace = make_trace(40);
  PmcSamplerConfig cfg;
  PmcSampler plain(cfg);
  FaultyPmcSampler faulty(cfg, FaultProfile{});
  const auto a = plain.sample_trace(trace);
  const auto b = faulty.sample_trace(trace);
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(a(r, c), b(r, c));
    }
  }
}

TEST(FaultyPmcSampler, NanFaultsAppearAtConfiguredRate) {
  const auto trace = make_trace(300);
  PmcSamplerConfig cfg;
  FaultProfile p;
  p.pmc_nan = 0.2;
  FaultyPmcSampler faulty(cfg, p);
  const auto m = faulty.sample_trace(trace);
  std::size_t nan_rows = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (std::isnan(m(r, 0))) ++nan_rows;
  }
  EXPECT_EQ(nan_rows, faulty.counts().pmc_nan_rows);
  EXPECT_GT(nan_rows, 300u / 10);
  EXPECT_LT(nan_rows, 300u / 3);
}

TEST(InjectFaults, CleanProfileLeavesRunIdentical) {
  const auto run = collect(100);
  const auto out = inject_faults(run, FaultProfile{});
  ASSERT_EQ(out.num_ticks(), run.num_ticks());
  ASSERT_EQ(out.ipmi_readings.size(), run.ipmi_readings.size());
  for (std::size_t i = 0; i < run.ipmi_readings.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.ipmi_readings[i].power_w,
                     run.ipmi_readings[i].power_w);
  }
  const auto& a = run.dataset.features();
  const auto& b = out.dataset.features();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(a(r, c), b(r, c));
    }
  }
  EXPECT_EQ(out.measured, run.measured);
}

TEST(InjectFaults, CorruptsReadingsAndRowsButNotTruth) {
  const auto run = collect(200);
  FaultProfile p;
  p.im_dropout = 0.3;
  p.pmc_nan = 0.3;
  p.im_jitter_ticks = 2;
  const auto out = inject_faults(run, p);

  EXPECT_LT(out.ipmi_readings.size(), run.ipmi_readings.size());
  std::size_t nan_rows = 0;
  const auto& f = out.dataset.features();
  for (std::size_t r = 0; r < f.rows(); ++r) {
    if (std::isnan(f(r, 0))) ++nan_rows;
  }
  EXPECT_GT(nan_rows, 0u);

  // measured must agree with the surviving readings...
  std::vector<bool> expect_measured(out.num_ticks(), false);
  for (const auto& r : out.ipmi_readings) {
    ASSERT_LT(r.tick_index, out.num_ticks());
    expect_measured[r.tick_index] = true;
  }
  EXPECT_EQ(out.measured, expect_measured);

  // ...and ground truth stays the clean reference.
  const auto before = run.truth.node_power();
  const auto after = out.truth.node_power();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  }
  const auto target_a = run.dataset.target("P_NODE");
  const auto target_b = out.dataset.target("P_NODE");
  for (std::size_t i = 0; i < target_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(target_a[i], target_b[i]);
  }
}

}  // namespace
}  // namespace highrpm::measure
