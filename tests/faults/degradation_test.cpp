// Graceful-degradation behaviour of the models under injected sensor
// faults: every pathology the FaultInjector produces must leave the
// pipeline returning finite, plausible estimates — never NaN, never a
// throw from deep inside a spline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "highrpm/core/dynamic_trr.hpp"
#include "highrpm/core/highrpm.hpp"
#include "highrpm/core/static_trr.hpp"
#include "highrpm/measure/faults.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

measure::CollectedRun collect(const sim::Workload& w, std::size_t ticks,
                              std::uint64_t seed) {
  measure::Collector collector;
  return collector.collect(sim::PlatformConfig::arm(), w, ticks, seed);
}

core::DynamicTrr trained_trr(const measure::CollectedRun& train,
                             core::DynamicTrrConfig cfg = {}) {
  if (cfg.rnn.epochs > 12) cfg.rnn.epochs = 12;
  core::DynamicTrr trr(cfg);
  trr.train_single(train.dataset.features(), train.dataset.target("P_NODE"));
  return trr;
}

// --- DynamicTRR: per-pathology streaming behaviour ---

TEST(DynamicTrrDegradation, NanPmcRowsYieldFiniteEstimates) {
  const auto train = collect(workloads::fft(), 250, 1);
  auto trr = trained_trr(train);
  const auto test = collect(workloads::fft(), 60, 2);
  measure::FaultProfile p;
  p.pmc_nan = 0.4;
  p.seed = 17;
  const auto faulted = measure::inject_faults(test, p);

  const auto& f = faulted.dataset.features();
  for (std::size_t t = 0; t < faulted.num_ticks(); ++t) {
    std::optional<double> reading;
    if (faulted.measured[t]) {
      reading = faulted.dataset.target("P_NODE")[t];
    }
    const double est = trr.step(f.row(t), reading);
    EXPECT_TRUE(std::isfinite(est)) << "tick " << t;
    EXPECT_GT(est, 0.0);
  }
  EXPECT_GT(trr.substituted_rows(), 0u);
}

TEST(DynamicTrrDegradation, DropoutKeepsPredictingAndRecovers) {
  const auto train = collect(workloads::fft(), 250, 1);
  auto trr = trained_trr(train);
  const auto test = collect(workloads::fft(), 80, 3);
  const auto& f = test.dataset.features();
  const auto labels = test.dataset.target("P_NODE");

  // Readings vanish for ticks 10..49 (a 4x-miss_interval outage); the
  // stream must keep producing plausible estimates throughout and resume
  // fine-tuning once readings return.
  const std::size_t before_outage_finetunes = [&] {
    for (std::size_t t = 0; t < 10; ++t) {
      std::optional<double> reading;
      if (test.measured[t]) reading = labels[t];
      EXPECT_TRUE(std::isfinite(trr.step(f.row(t), reading)));
    }
    return trr.finetune_count();
  }();
  for (std::size_t t = 10; t < 50; ++t) {
    const double est = trr.step(f.row(t), std::nullopt);
    EXPECT_TRUE(std::isfinite(est));
    EXPECT_GE(est, trr.p_bottom());
    EXPECT_LE(est, trr.p_upper());
  }
  EXPECT_EQ(trr.finetune_count(), before_outage_finetunes);
  std::size_t after = before_outage_finetunes;
  for (std::size_t t = 50; t < 80; ++t) {
    std::optional<double> reading;
    if (test.measured[t]) reading = labels[t];
    EXPECT_TRUE(std::isfinite(trr.step(f.row(t), reading)));
    after = trr.finetune_count();
  }
  EXPECT_GT(after, before_outage_finetunes);
}

TEST(DynamicTrrDegradation, SpikeReadingsAreRejected) {
  const auto train = collect(workloads::fft(), 250, 1);
  auto trr = trained_trr(train);
  const auto test = collect(workloads::fft(), 40, 4);
  const auto& f = test.dataset.features();
  const auto labels = test.dataset.target("P_NODE");

  const double spike = 3.0 * trr.p_upper();  // far outside the band
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    std::optional<double> reading;
    if (test.measured[t]) reading = (t == 20) ? spike : labels[t];
    const double est = trr.step(f.row(t), reading);
    EXPECT_TRUE(std::isfinite(est));
    EXPECT_NE(est, spike);
    EXPECT_LE(est, trr.p_upper());
  }
  EXPECT_GE(trr.rejected_readings(), 1u);
}

TEST(DynamicTrrDegradation, StuckReadingsAreRejectedOnceTheModelDisagrees) {
  const auto train = collect(workloads::fft(), 250, 1);
  core::DynamicTrrConfig cfg;
  cfg.stuck_limit = 1;
  cfg.stuck_disagreement = 0.02;  // fire on any visible disagreement
  auto trr = trained_trr(train, cfg);
  const auto test = collect(workloads::fft(), 40, 5);
  const auto& f = test.dataset.features();

  // A sensor latched near the top of the plausibility band (inside it, so
  // the plausibility check alone cannot catch it) delivering every tick.
  const double latched = trr.p_upper() - 1.0;
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    EXPECT_TRUE(std::isfinite(trr.step(f.row(t), latched)));
  }
  EXPECT_GE(trr.rejected_readings(), 1u);
}

TEST(DynamicTrrDegradation, NonFiniteReadingIsTreatedAsMissing) {
  const auto train = collect(workloads::fft(), 250, 1);
  auto trr = trained_trr(train);
  const auto test = collect(workloads::fft(), 20, 6);
  const auto& f = test.dataset.features();
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    std::optional<double> reading;
    if (t == 10) reading = kNan;
    EXPECT_TRUE(std::isfinite(trr.step(f.row(t), reading)));
  }
  EXPECT_GE(trr.rejected_readings(), 1u);
}

TEST(DynamicTrrDegradation, TrainRejectsNonFiniteData) {
  math::Matrix pmcs(40, 3, 1.0);
  std::vector<double> labels(40, 100.0);
  core::DynamicTrr trr;
  auto bad_pmcs = pmcs;
  bad_pmcs(7, 1) = kNan;
  EXPECT_THROW(trr.train_single(bad_pmcs, labels), std::invalid_argument);
  auto bad_labels = labels;
  bad_labels[3] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(trr.train_single(pmcs, bad_labels), std::invalid_argument);
}

// --- StaticTRR: labeled-reading pathologies ---

TEST(StaticTrrDegradation, DuplicateAndNonMonotonicTimestampsFitCleanly) {
  const auto run = collect(workloads::fft(), 120, 7);
  std::vector<std::size_t> idx;
  std::vector<double> power;
  for (const auto& r : run.ipmi_readings) {
    idx.push_back(r.tick_index);
    power.push_back(r.power_w);
  }
  ASSERT_GE(idx.size(), 6u);
  // Jitter pathologies: a duplicate timestamp and an out-of-order pair —
  // pre-hardening these blew up inside CubicSpline ("x must be strictly
  // increasing").
  idx.push_back(idx[2]);
  power.push_back(power[2] + 1.0);
  std::swap(idx[3], idx[4]);
  std::swap(power[3], power[4]);

  core::StaticTrrConfig cfg;
  core::StaticTrr trr(cfg);
  const auto times = run.truth.times();
  ASSERT_NO_THROW(trr.fit(run.dataset.features(), times, idx, power));
  const auto restored = trr.restore(run.dataset.features(), times);
  for (const double v : restored.merged) EXPECT_TRUE(std::isfinite(v));
}

TEST(StaticTrrDegradation, NonFiniteAndOutOfRangeReadingsAreDropped) {
  const auto cleaned = core::clean_labeled_readings(
      std::vector<std::size_t>{0, 10, 999, 20, 30, 20},
      std::vector<double>{100.0, kNan, 105.0, 110.0, 120.0, 114.0}, 100);
  // tick 999 is out of range, the NaN is dropped, the duplicate tick 20
  // averages to 112.
  ASSERT_EQ(cleaned.idx.size(), 3u);
  EXPECT_EQ(cleaned.idx, (std::vector<std::size_t>{0, 20, 30}));
  EXPECT_DOUBLE_EQ(cleaned.power[1], 112.0);
  EXPECT_DOUBLE_EQ(cleaned.power[2], 120.0);
}

TEST(StaticTrrDegradation, TooFewUsableReadingsThrowCleanly) {
  const auto run = collect(workloads::fft(), 60, 8);
  core::StaticTrr trr;
  const auto times = run.truth.times();
  // 5 readings but only 3 usable (one NaN, one out of range).
  const std::vector<std::size_t> idx{0, 10, 20, 30, 400};
  const std::vector<double> power{100.0, kNan, 105.0, 110.0, 108.0};
  EXPECT_THROW(trr.fit(run.dataset.features(), times, idx, power),
               std::invalid_argument);
}

TEST(StaticTrrDegradation, ExplicitBoundsVetoSpikedReadings) {
  const auto run = collect(workloads::fft(), 120, 9);
  std::vector<std::size_t> idx;
  std::vector<double> power;
  for (const auto& r : run.ipmi_readings) {
    idx.push_back(r.tick_index);
    power.push_back(r.power_w);
  }
  ASSERT_GE(idx.size(), 6u);
  const auto times = run.truth.times();

  // Spike one reading to 3x; with explicit plausibility bounds the fit
  // must ignore it, keeping the restoration in the plausible range.
  auto spiked = power;
  spiked[2] *= 3.0;
  core::StaticTrrConfig cfg;
  cfg.p_bottom = 10.0;
  cfg.p_upper = 2.0 * *std::max_element(power.begin(), power.end());
  core::StaticTrr trr(cfg);
  trr.fit(run.dataset.features(), times, idx, spiked);
  const auto restored = trr.restore(run.dataset.features(), times);
  for (const double v : restored.merged) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LE(v, cfg.p_upper);
  }
}

TEST(StaticTrrDegradation, RestoreSurvivesNanPmcRows) {
  const auto run = collect(workloads::fft(), 120, 10);
  std::vector<std::size_t> idx;
  std::vector<double> power;
  for (const auto& r : run.ipmi_readings) {
    idx.push_back(r.tick_index);
    power.push_back(r.power_w);
  }
  const auto times = run.truth.times();
  core::StaticTrr trr;
  trr.fit(run.dataset.features(), times, idx, power);

  auto features = run.dataset.features();
  for (std::size_t c = 0; c < features.cols(); ++c) {
    features(5, c) = kNan;
  }
  const auto restored = trr.restore(features, times);
  for (const double v : restored.merged) EXPECT_TRUE(std::isfinite(v));
}

// --- the full facade under the acceptance-scenario fault profile ---

class FacadeDegradationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::HighRpmConfig cfg;
    cfg.dynamic_trr.rnn.epochs = 12;
    cfg.srr.epochs = 30;
    framework_ = new core::HighRpm(cfg);
    measure::Collector collector;
    std::vector<measure::CollectedRun> runs;
    runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                     workloads::fft(), 200, 300));
    runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                     workloads::stream(), 200, 301));
    framework_->initial_learning(runs);
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }
  static core::HighRpm* framework_;
};

core::HighRpm* FacadeDegradationTest::framework_ = nullptr;

TEST_F(FacadeDegradationTest, TwentyPercentDropoutWithNanPmcRows) {
  core::HighRpm h = *framework_;
  h.reset_stream();
  const auto run = collect(workloads::smg2000(), 100, 302);
  measure::FaultProfile p;
  p.im_dropout = 0.2;
  p.pmc_nan = 0.2;
  p.seed = 303;
  const auto faulted = measure::inject_faults(run, p);

  // Feed the surviving readings' actual values — node, cpu and mem
  // estimates must come back finite on every tick, degraded rows included.
  std::vector<std::optional<double>> reading_at(faulted.num_ticks());
  for (const auto& r : faulted.ipmi_readings) {
    reading_at[r.tick_index] = r.power_w;
  }
  const auto& f = faulted.dataset.features();
  for (std::size_t t = 0; t < faulted.num_ticks(); ++t) {
    const auto est = h.on_tick(f.row(t), reading_at[t]);
    EXPECT_TRUE(std::isfinite(est.node_w)) << "tick " << t;
    EXPECT_TRUE(std::isfinite(est.cpu_w)) << "tick " << t;
    EXPECT_TRUE(std::isfinite(est.mem_w)) << "tick " << t;
    EXPECT_GT(est.node_w, 0.0);
    EXPECT_GE(est.cpu_w, 0.0);
    EXPECT_GE(est.mem_w, 0.0);
  }
  EXPECT_GT(h.held_rows(), 0u);
}

TEST_F(FacadeDegradationTest, MeasuredFlagIsHonestUnderRejection) {
  core::HighRpm h = *framework_;
  h.reset_stream();
  const auto run = collect(workloads::fft(), 40, 304);
  const auto& f = run.dataset.features();
  const auto labels = run.dataset.target("P_NODE");
  for (std::size_t t = 0; t < run.num_ticks(); ++t) {
    std::optional<double> reading;
    if (run.measured[t]) {
      // Every other reading is garbage; the flag must track acceptance,
      // not mere presence.
      reading = (t % 20 == 10) ? 100.0 * labels[t] : labels[t];
    }
    const auto est = h.on_tick(f.row(t), reading);
    if (reading && *reading > h.dynamic_trr().p_upper()) {
      EXPECT_FALSE(est.measured);
    }
    if (!reading) {
      EXPECT_FALSE(est.measured);
    }
  }
}

TEST_F(FacadeDegradationTest, ActiveLearningToleratesFaultedRun) {
  core::HighRpm h = *framework_;
  const auto run = collect(workloads::fft(), 150, 305);
  measure::FaultProfile p;
  p.im_dropout = 0.2;
  p.pmc_nan = 0.2;
  p.seed = 306;
  const auto faulted = measure::inject_faults(run, p);
  ASSERT_NO_THROW(h.active_learning(faulted));
  // The facade must still stream cleanly afterwards.
  h.reset_stream();
  const auto& f = run.dataset.features();
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_TRUE(std::isfinite(h.on_tick(f.row(t), std::nullopt).node_w));
  }
}

TEST_F(FacadeDegradationTest, RestoreLogSurvivesFaultedRun) {
  const auto run = collect(workloads::fft(), 120, 307);
  measure::FaultProfile p;
  p.im_dropout = 0.3;
  p.pmc_nan = 0.2;
  p.im_jitter_ticks = 2;
  p.seed = 308;
  const auto faulted = measure::inject_faults(run, p);
  const auto log = framework_->restore_log(faulted);
  ASSERT_EQ(log.node_w.size(), faulted.num_ticks());
  for (std::size_t t = 0; t < faulted.num_ticks(); ++t) {
    EXPECT_TRUE(std::isfinite(log.node_w[t]));
    EXPECT_TRUE(std::isfinite(log.cpu_w[t]));
    EXPECT_TRUE(std::isfinite(log.mem_w[t]));
  }
}

}  // namespace
}  // namespace highrpm
