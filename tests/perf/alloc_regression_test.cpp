// Allocation-count regression suite (ctest -L perf-smoke): the steady-state
// monitoring tick must stay heap-allocation-free. These tests meter the
// DynamicTRR and SRR predict paths with the counting operator new hook from
// bench/alloc_trace.hpp and fail if a single allocation sneaks back in —
// catching regressions deterministically, without timing a benchmark.
//
// alloc_trace.hpp replaces global operator new/delete and must live in
// exactly one TU per binary: this file is that TU for test_perf.
#include "alloc_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "highrpm/core/dynamic_trr.hpp"
#include "highrpm/core/fleet.hpp"
#include "highrpm/core/highrpm.hpp"
#include "highrpm/core/srr.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/math/rng.hpp"
#include "highrpm/runtime/thread_pool.hpp"
#include "highrpm/sim/platform.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

namespace at = highrpm::alloctrace;

constexpr std::size_t kFeatures = 4;

// Synthetic PMC-like features with a linear power response — enough for the
// models to fit something sensible, cheap enough for a smoke test.
math::Matrix make_features(std::size_t rows, math::Rng& rng) {
  math::Matrix x(rows, kFeatures);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < kFeatures; ++c) {
      x(r, c) = rng.uniform(0.0, 1.0);
    }
  }
  return x;
}

std::vector<double> make_node_power(const math::Matrix& x) {
  std::vector<double> y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    y[r] = 60.0 + 20.0 * x(r, 0) + 10.0 * x(r, 1) + 5.0 * x(r, 2);
  }
  return y;
}

TEST(AllocTrace, HookIsCompiledIn) {
  ASSERT_TRUE(at::available())
      << "test_perf must be built with HIGHRPM_ALLOC_TRACE";
  const auto before = at::count();
  {
    const at::Armed armed;
    std::vector<double>* v = new std::vector<double>(1024);
    delete v;
  }
  EXPECT_GT(at::count(), before) << "metered allocation was not counted";
}

TEST(AllocRegression, DynamicTrrSteadyStateTickIsAllocationFree) {
  math::Rng rng(11);
  const std::size_t train_ticks = 60;
  const auto x = make_features(train_ticks, rng);
  const auto y = make_node_power(x);

  DynamicTrrConfig cfg;
  cfg.miss_interval = 10;
  cfg.rnn.epochs = 4;
  DynamicTrr trr(cfg);
  trr.train_single(x, y);
  trr.reset_stream();

  const auto stream = make_features(80, rng);
  std::vector<double> row(kFeatures);
  // Warm-up: first reading seeds P'_prev, then enough predict-only ticks to
  // fill the ring window and size every scratch buffer.
  const std::size_t warmup = 2 * cfg.miss_interval + 1;
  for (std::size_t t = 0; t < warmup; ++t) {
    for (std::size_t c = 0; c < kFeatures; ++c) row[c] = stream(t, c);
    const std::optional<double> reading =
        t == 0 ? std::optional<double>(y[0]) : std::nullopt;
    trr.step(row, reading);
  }

  const auto before = at::count();
  std::size_t metered = 0;
  for (std::size_t t = warmup; t < stream.rows(); ++t) {
    for (std::size_t c = 0; c < kFeatures; ++c) row[c] = stream(t, c);
    const at::Armed armed;
    const double est = trr.step(row, std::nullopt);
    ASSERT_TRUE(std::isfinite(est));
    ++metered;
  }
  ASSERT_GT(metered, 0u);
  EXPECT_EQ(at::count() - before, 0u)
      << "DynamicTrr::step allocated on a steady-state tick";
}

TEST(AllocRegression, SrrPredictOneIsAllocationFree) {
  math::Rng rng(12);
  const std::size_t samples = 120;
  const auto x = make_features(samples, rng);
  const auto node = make_node_power(x);
  std::vector<double> cpu(samples), mem(samples);
  for (std::size_t r = 0; r < samples; ++r) {
    cpu[r] = 0.6 * (node[r] - 25.0);
    mem[r] = 0.4 * (node[r] - 25.0);
  }

  SrrConfig cfg;
  cfg.epochs = 10;
  Srr srr(cfg);
  srr.fit(x, node, cpu, mem);

  Srr::Scratch scratch;
  std::vector<double> row(kFeatures);
  // One warm call sizes the scratch buffers.
  for (std::size_t c = 0; c < kFeatures; ++c) row[c] = x(0, c);
  (void)srr.predict_one(row, node[0], scratch);

  const auto before = at::count();
  for (std::size_t r = 1; r < samples; ++r) {
    for (std::size_t c = 0; c < kFeatures; ++c) row[c] = x(r, c);
    const at::Armed armed;
    const auto est = srr.predict_one(row, node[r], scratch);
    ASSERT_TRUE(std::isfinite(est.cpu_w));
    ASSERT_TRUE(std::isfinite(est.mem_w));
  }
  EXPECT_EQ(at::count() - before, 0u)
      << "Srr::predict_one allocated with a warm scratch";
}

TEST(AllocRegression, FleetSteadyStateTickIsAllocationFree) {
  // The batched fleet path inherits the steady-state contract: once every
  // shard's scratch is warm, a predict-only step_tick performs zero heap
  // allocations. Run at 1 thread so parallel_for takes its serial fallback
  // (no task-object allocation) and the whole tick is metered on this
  // thread; the per-shard hook arming used by the bench covers the
  // multi-thread case.
  runtime::set_thread_count(1);
  measure::Collector collector;
  std::vector<measure::CollectedRun> training;
  training.push_back(collector.collect(sim::PlatformConfig::arm(),
                                       workloads::fft(), 120, 7));
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 4;
  cfg.dynamic_trr.online_finetune = false;  // shared-weights fast path
  cfg.srr.epochs = 10;
  HighRpm golden(cfg);
  golden.initial_learning(training);

  const std::size_t nodes = 6;
  FleetConfig fcfg;
  fcfg.shard_lanes = 4;  // two shards: one full, one ragged
  FleetStepper fleet(golden, nodes, fcfg);

  const auto stream = collector.collect(sim::PlatformConfig::arm(),
                                        workloads::stream(), 80, 8);
  const auto& features = stream.dataset.features();
  const auto& labels = stream.dataset.target("P_NODE");
  math::Matrix pmcs(nodes, features.cols());
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> out(nodes);
  const std::size_t warmup = 2 * golden.config().miss_interval + 1;
  const auto play_tick = [&](std::size_t t, bool with_reading) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto src = features.row((t + i) % features.rows());
      auto dst = pmcs.row(i);
      std::copy(src.begin(), src.end(), dst.begin());
      readings[i] = with_reading ? std::optional<double>(labels[t])
                                 : std::nullopt;
    }
    fleet.step_tick(pmcs, readings, out);
  };
  for (std::size_t t = 0; t < warmup; ++t) play_tick(t, t == 0);

  const auto before = at::count();
  std::size_t metered = 0;
  for (std::size_t t = warmup; t < 60; ++t) {
    const at::Armed armed;
    play_tick(t, false);
    ++metered;
  }
  ASSERT_GT(metered, 0u);
  for (std::size_t i = 0; i < nodes; ++i) {
    ASSERT_TRUE(std::isfinite(out[i].node_w));
  }
  EXPECT_EQ(at::count() - before, 0u)
      << "FleetStepper::step_tick allocated on a steady-state tick";
  runtime::set_thread_count(0);
}

TEST(AllocRegression, TenantAttributionOnTickIsAllocationFree) {
  // The K-way streaming tick inherits the facade's steady-state contract:
  // attribution predict uses caller-owned scratch, the hold path reuses
  // last_good_tenant_row_'s capacity, and self-calibration's measured-tick
  // buffering writes into the ring preallocated at construction. Only an
  // actual drift TRIGGER (fine-tune) may allocate — pinned out here with an
  // unreachable threshold.
  measure::Collector collector;
  const std::vector<sim::Workload> mix{workloads::fft(), workloads::stream()};
  std::vector<measure::CollectedRun> runs;
  runs.push_back(
      collector.collect_tenants(sim::PlatformConfig::arm(), mix, 120, 9));
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 4;
  cfg.dynamic_trr.online_finetune = false;  // its reading-tick fine-tune
                                            // allocates by design
  cfg.srr.epochs = 10;
  cfg.tenants = 2;
  cfg.tenant_srr.epochs = 10;
  cfg.self_cal.enabled = true;
  cfg.self_cal.drift_threshold_pct = 1e9;  // buffer/score, never fine-tune
  HighRpm model(cfg);
  model.initial_learning(runs);
  model.fit_attribution(runs);

  const auto stream =
      collector.collect_tenants(sim::PlatformConfig::arm(), mix, 80, 10);
  const auto& features = stream.dataset.features();
  const auto& node = stream.dataset.target("P_NODE");
  const std::size_t warmup = 2 * model.config().miss_interval + 1;
  const auto play_tick = [&](std::size_t t) {
    std::optional<double> reading;
    if (stream.measured[t]) reading = node[t];
    return model.on_tick(features.row(t), stream.tenant_pmcs.row(t), reading);
  };
  for (std::size_t t = 0; t < warmup; ++t) (void)play_tick(t);

  const auto before = at::count();
  std::size_t metered = 0, measured = 0;
  for (std::size_t t = warmup; t < 80; ++t) {
    const at::Armed armed;
    const auto est = play_tick(t);
    ASSERT_EQ(est.tenants, 2u);
    ASSERT_TRUE(std::isfinite(est.tenant_w[0]));
    ++metered;
    measured += est.measured;
  }
  ASSERT_GT(metered, 0u);
  ASSERT_GT(measured, 0u) << "no measured tick metered: the self-cal "
                             "buffering path was never exercised";
  EXPECT_EQ(at::count() - before, 0u)
      << "tenant HighRpm::on_tick allocated on a steady-state tick";
  EXPECT_EQ(model.self_cal_triggers(), 0u);
}

TEST(AllocRegression, TenantFleetStepTickIsAllocationFree) {
  // K-way attribution in the batched path: one extra GEMM per layer per
  // shard through Cohort::trows/tenant_out/tsrr — all warm after the first
  // tick, so the steady state stays allocation-free.
  runtime::set_thread_count(1);
  measure::Collector collector;
  const std::vector<sim::Workload> mix{workloads::fft(), workloads::stream()};
  std::vector<measure::CollectedRun> training;
  training.push_back(
      collector.collect_tenants(sim::PlatformConfig::arm(), mix, 120, 7));
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 4;
  cfg.dynamic_trr.online_finetune = false;
  cfg.srr.epochs = 10;
  cfg.tenants = 2;
  cfg.tenant_srr.epochs = 10;
  HighRpm golden(cfg);
  golden.initial_learning(training);
  golden.fit_attribution(training);

  const std::size_t nodes = 6;
  FleetConfig fcfg;
  fcfg.shard_lanes = 4;  // two shards: one full, one ragged
  FleetStepper fleet(golden, nodes, fcfg);
  ASSERT_EQ(fleet.tenants(), 2u);

  const auto stream =
      collector.collect_tenants(sim::PlatformConfig::arm(), mix, 80, 8);
  const auto& features = stream.dataset.features();
  math::Matrix pmcs(nodes, features.cols());
  math::Matrix trows(nodes, stream.tenant_pmcs.cols());
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> out(nodes);
  const std::size_t warmup = 2 * golden.config().miss_interval + 1;
  const auto play_tick = [&](std::size_t t) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const std::size_t r = (t + i) % features.rows();
      std::copy(features.row(r).begin(), features.row(r).end(),
                pmcs.row(i).begin());
      std::copy(stream.tenant_pmcs.row(r).begin(),
                stream.tenant_pmcs.row(r).end(), trows.row(i).begin());
      readings[i] = std::nullopt;
    }
    fleet.step_tick(pmcs, readings, out, {}, &trows);
  };
  for (std::size_t t = 0; t < warmup; ++t) play_tick(t);

  const auto before = at::count();
  std::size_t metered = 0;
  for (std::size_t t = warmup; t < 60; ++t) {
    const at::Armed armed;
    play_tick(t);
    ++metered;
  }
  ASSERT_GT(metered, 0u);
  for (std::size_t i = 0; i < nodes; ++i) {
    ASSERT_EQ(out[i].tenants, 2u);
    ASSERT_TRUE(std::isfinite(out[i].tenant_w[0]));
  }
  EXPECT_EQ(at::count() - before, 0u)
      << "tenant FleetStepper::step_tick allocated on a steady-state tick";
  runtime::set_thread_count(0);
}

TEST(AllocRegression, AdaptiveControllerObserveIsAllocationFree) {
  // The controller's window statistics are fixed-size; the only buffer is
  // the previous-PMC copy, sized on the first observe. Everything after
  // that — including window closes and mode transitions — is alloc-free.
  adapt::ControllerConfig cfg;
  cfg.hold_windows = 1;
  cfg.budget_permille = 300;
  cfg.up_threshold_w = 0.0;
  cfg.down_threshold_w = 0.0;
  adapt::Controller ctl(cfg);
  std::array<double, kFeatures> pmcs{1.0, 2.0, 3.0, 4.0};
  ctl.observe(60.0, pmcs);  // warm tick sizes the prev-PMC buffer

  const auto before = at::count();
  for (std::size_t t = 1; t < 400; ++t) {
    pmcs[0] = (t % 2 == 0) ? 1.0 : 900.0;
    const at::Armed armed;
    (void)ctl.observe((t % 2 == 0) ? 40.0 : 140.0, pmcs);
  }
  // The budget-limited config oscillates, so both modes and several
  // transitions were metered above, not just quiet sparse ticks.
  EXPECT_GT(ctl.mode_changes(), 0u);
  EXPECT_GT(ctl.dense_ticks(), 0u);
  EXPECT_EQ(at::count() - before, 0u)
      << "Controller::observe allocated on a steady-state tick";
}

TEST(AllocRegression, AdaptiveHighRpmOnTickIsAllocationFree) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> training;
  training.push_back(collector.collect(sim::PlatformConfig::arm(),
                                       workloads::fft(), 120, 7));
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 4;
  cfg.srr.epochs = 10;
  cfg.adaptive = true;
  cfg.adapt.budget_permille = 300;  // oscillates: both paths get metered
  cfg.adapt.hold_windows = 1;
  cfg.adapt.up_threshold_w = 0.0;
  cfg.adapt.down_threshold_w = 0.0;
  HighRpm model(cfg);
  model.initial_learning(training);
  model.reset_stream();

  const auto stream = collector.collect(sim::PlatformConfig::arm(),
                                        workloads::stream(), 200, 8);
  const auto& features = stream.dataset.features();
  const auto& labels = stream.dataset.target("P_NODE");
  std::vector<double> row(features.cols());
  // Warm through the FIRST dense window (budget 300 provably enters Dense
  // during window 5): the LSTM scratch is sized lazily on the first dense
  // tick, which is warm-up, not steady state. Every later dense phase
  // reuses it — that is what gets metered.
  const std::size_t warmup = 6 * cfg.miss_interval + 1;
  for (std::size_t t = 0; t < warmup; ++t) {
    const auto src = features.row(t);
    std::copy(src.begin(), src.end(), row.begin());
    model.on_tick(row, t == 0 ? std::optional<double>(labels[0])
                              : std::nullopt);
  }

  const auto before = at::count();
  std::size_t metered = 0;
  for (std::size_t t = warmup; t < features.rows(); ++t) {
    const auto src = features.row(t);
    std::copy(src.begin(), src.end(), row.begin());
    const at::Armed armed;
    const PowerEstimate est = model.on_tick(row, std::nullopt);
    ASSERT_TRUE(std::isfinite(est.node_w));
    ++metered;
  }
  ASSERT_GT(metered, 0u);
  const adapt::Controller* ctl = model.controller();
  ASSERT_NE(ctl, nullptr);
  EXPECT_GT(ctl->mode_changes(), 0u)
      << "metered run never switched modes — cheap/dense not both covered";
  EXPECT_EQ(at::count() - before, 0u)
      << "adaptive HighRpm::on_tick allocated on a steady-state tick";
}

TEST(AllocRegression, AdaptiveFleetSteadyStateTickIsAllocationFree) {
  // Adaptive fleet: lanes hop between the batched GEMM path and per-lane
  // cheap routing as their controllers switch; the steady-state tick must
  // stay alloc-free across those transitions too.
  runtime::set_thread_count(1);
  measure::Collector collector;
  std::vector<measure::CollectedRun> training;
  training.push_back(collector.collect(sim::PlatformConfig::arm(),
                                       workloads::fft(), 120, 7));
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 4;
  cfg.dynamic_trr.online_finetune = false;
  cfg.srr.epochs = 10;
  cfg.adaptive = true;
  cfg.adapt.budget_permille = 300;
  cfg.adapt.hold_windows = 1;
  cfg.adapt.up_threshold_w = 0.0;
  cfg.adapt.down_threshold_w = 0.0;
  HighRpm golden(cfg);
  golden.initial_learning(training);

  const std::size_t nodes = 6;
  FleetConfig fcfg;
  fcfg.shard_lanes = 4;
  FleetStepper fleet(golden, nodes, fcfg);

  const auto stream = collector.collect(sim::PlatformConfig::arm(),
                                        workloads::stream(), 100, 8);
  const auto& features = stream.dataset.features();
  const auto& labels = stream.dataset.target("P_NODE");
  math::Matrix pmcs(nodes, features.cols());
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> out(nodes);
  // Same warm-up contract as the facade test above: the batched-GEMM
  // scratch is sized on the fleet's first dense window (window 5 under
  // budget 300), so warm past it and meter the later oscillations.
  const std::size_t warmup = 6 * golden.config().miss_interval + 1;
  const auto play_tick = [&](std::size_t t, bool with_reading) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto src = features.row((t + i) % features.rows());
      auto dst = pmcs.row(i);
      std::copy(src.begin(), src.end(), dst.begin());
      readings[i] = with_reading ? std::optional<double>(labels[t])
                                 : std::nullopt;
    }
    fleet.step_tick(pmcs, readings, out);
  };
  for (std::size_t t = 0; t < warmup; ++t) play_tick(t, t == 0);

  const auto before = at::count();
  std::size_t metered = 0;
  for (std::size_t t = warmup; t < 160; ++t) {
    const at::Armed armed;
    play_tick(t, false);
    ++metered;
  }
  ASSERT_GT(metered, 0u);
  for (std::size_t i = 0; i < nodes; ++i) {
    ASSERT_TRUE(std::isfinite(out[i].node_w));
    const adapt::Controller* ctl = fleet.lane_controller(i);
    ASSERT_NE(ctl, nullptr);
    EXPECT_GT(ctl->mode_changes(), 0u) << "node " << i;
  }
  EXPECT_EQ(at::count() - before, 0u)
      << "adaptive FleetStepper::step_tick allocated on a steady-state tick";
  runtime::set_thread_count(0);
}

}  // namespace
}  // namespace highrpm::core
