// Allocation-count regression suite (ctest -L perf-smoke): the steady-state
// monitoring tick must stay heap-allocation-free. These tests meter the
// DynamicTRR and SRR predict paths with the counting operator new hook from
// bench/alloc_trace.hpp and fail if a single allocation sneaks back in —
// catching regressions deterministically, without timing a benchmark.
//
// alloc_trace.hpp replaces global operator new/delete and must live in
// exactly one TU per binary: this file is that TU for test_perf.
#include "alloc_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "highrpm/core/dynamic_trr.hpp"
#include "highrpm/core/fleet.hpp"
#include "highrpm/core/highrpm.hpp"
#include "highrpm/core/srr.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/math/rng.hpp"
#include "highrpm/runtime/thread_pool.hpp"
#include "highrpm/sim/platform.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

namespace at = highrpm::alloctrace;

constexpr std::size_t kFeatures = 4;

// Synthetic PMC-like features with a linear power response — enough for the
// models to fit something sensible, cheap enough for a smoke test.
math::Matrix make_features(std::size_t rows, math::Rng& rng) {
  math::Matrix x(rows, kFeatures);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < kFeatures; ++c) {
      x(r, c) = rng.uniform(0.0, 1.0);
    }
  }
  return x;
}

std::vector<double> make_node_power(const math::Matrix& x) {
  std::vector<double> y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    y[r] = 60.0 + 20.0 * x(r, 0) + 10.0 * x(r, 1) + 5.0 * x(r, 2);
  }
  return y;
}

TEST(AllocTrace, HookIsCompiledIn) {
  ASSERT_TRUE(at::available())
      << "test_perf must be built with HIGHRPM_ALLOC_TRACE";
  const auto before = at::count();
  {
    const at::Armed armed;
    std::vector<double>* v = new std::vector<double>(1024);
    delete v;
  }
  EXPECT_GT(at::count(), before) << "metered allocation was not counted";
}

TEST(AllocRegression, DynamicTrrSteadyStateTickIsAllocationFree) {
  math::Rng rng(11);
  const std::size_t train_ticks = 60;
  const auto x = make_features(train_ticks, rng);
  const auto y = make_node_power(x);

  DynamicTrrConfig cfg;
  cfg.miss_interval = 10;
  cfg.rnn.epochs = 4;
  DynamicTrr trr(cfg);
  trr.train_single(x, y);
  trr.reset_stream();

  const auto stream = make_features(80, rng);
  std::vector<double> row(kFeatures);
  // Warm-up: first reading seeds P'_prev, then enough predict-only ticks to
  // fill the ring window and size every scratch buffer.
  const std::size_t warmup = 2 * cfg.miss_interval + 1;
  for (std::size_t t = 0; t < warmup; ++t) {
    for (std::size_t c = 0; c < kFeatures; ++c) row[c] = stream(t, c);
    const std::optional<double> reading =
        t == 0 ? std::optional<double>(y[0]) : std::nullopt;
    trr.step(row, reading);
  }

  const auto before = at::count();
  std::size_t metered = 0;
  for (std::size_t t = warmup; t < stream.rows(); ++t) {
    for (std::size_t c = 0; c < kFeatures; ++c) row[c] = stream(t, c);
    const at::Armed armed;
    const double est = trr.step(row, std::nullopt);
    ASSERT_TRUE(std::isfinite(est));
    ++metered;
  }
  ASSERT_GT(metered, 0u);
  EXPECT_EQ(at::count() - before, 0u)
      << "DynamicTrr::step allocated on a steady-state tick";
}

TEST(AllocRegression, SrrPredictOneIsAllocationFree) {
  math::Rng rng(12);
  const std::size_t samples = 120;
  const auto x = make_features(samples, rng);
  const auto node = make_node_power(x);
  std::vector<double> cpu(samples), mem(samples);
  for (std::size_t r = 0; r < samples; ++r) {
    cpu[r] = 0.6 * (node[r] - 25.0);
    mem[r] = 0.4 * (node[r] - 25.0);
  }

  SrrConfig cfg;
  cfg.epochs = 10;
  Srr srr(cfg);
  srr.fit(x, node, cpu, mem);

  Srr::Scratch scratch;
  std::vector<double> row(kFeatures);
  // One warm call sizes the scratch buffers.
  for (std::size_t c = 0; c < kFeatures; ++c) row[c] = x(0, c);
  (void)srr.predict_one(row, node[0], scratch);

  const auto before = at::count();
  for (std::size_t r = 1; r < samples; ++r) {
    for (std::size_t c = 0; c < kFeatures; ++c) row[c] = x(r, c);
    const at::Armed armed;
    const auto est = srr.predict_one(row, node[r], scratch);
    ASSERT_TRUE(std::isfinite(est.cpu_w));
    ASSERT_TRUE(std::isfinite(est.mem_w));
  }
  EXPECT_EQ(at::count() - before, 0u)
      << "Srr::predict_one allocated with a warm scratch";
}

TEST(AllocRegression, FleetSteadyStateTickIsAllocationFree) {
  // The batched fleet path inherits the steady-state contract: once every
  // shard's scratch is warm, a predict-only step_tick performs zero heap
  // allocations. Run at 1 thread so parallel_for takes its serial fallback
  // (no task-object allocation) and the whole tick is metered on this
  // thread; the per-shard hook arming used by the bench covers the
  // multi-thread case.
  runtime::set_thread_count(1);
  measure::Collector collector;
  std::vector<measure::CollectedRun> training;
  training.push_back(collector.collect(sim::PlatformConfig::arm(),
                                       workloads::fft(), 120, 7));
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 4;
  cfg.dynamic_trr.online_finetune = false;  // shared-weights fast path
  cfg.srr.epochs = 10;
  HighRpm golden(cfg);
  golden.initial_learning(training);

  const std::size_t nodes = 6;
  FleetConfig fcfg;
  fcfg.shard_lanes = 4;  // two shards: one full, one ragged
  FleetStepper fleet(golden, nodes, fcfg);

  const auto stream = collector.collect(sim::PlatformConfig::arm(),
                                        workloads::stream(), 80, 8);
  const auto& features = stream.dataset.features();
  const auto& labels = stream.dataset.target("P_NODE");
  math::Matrix pmcs(nodes, features.cols());
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> out(nodes);
  const std::size_t warmup = 2 * golden.config().miss_interval + 1;
  const auto play_tick = [&](std::size_t t, bool with_reading) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto src = features.row((t + i) % features.rows());
      auto dst = pmcs.row(i);
      std::copy(src.begin(), src.end(), dst.begin());
      readings[i] = with_reading ? std::optional<double>(labels[t])
                                 : std::nullopt;
    }
    fleet.step_tick(pmcs, readings, out);
  };
  for (std::size_t t = 0; t < warmup; ++t) play_tick(t, t == 0);

  const auto before = at::count();
  std::size_t metered = 0;
  for (std::size_t t = warmup; t < 60; ++t) {
    const at::Armed armed;
    play_tick(t, false);
    ++metered;
  }
  ASSERT_GT(metered, 0u);
  for (std::size_t i = 0; i < nodes; ++i) {
    ASSERT_TRUE(std::isfinite(out[i].node_w));
  }
  EXPECT_EQ(at::count() - before, 0u)
      << "FleetStepper::step_tick allocated on a steady-state tick";
  runtime::set_thread_count(0);
}

}  // namespace
}  // namespace highrpm::core
