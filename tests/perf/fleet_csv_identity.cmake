# Golden check for fleet-sharding determinism: node 0's per-tick CSV must be
# byte-identical whether it runs alone (N=1) or sharded across the pool with
# 63 neighbours (N=64). Invoked by ctest (label perf-smoke) as
#   cmake -DBENCH=<bench_fleet_scaling> -DWORKDIR=<dir> -P fleet_csv_identity.cmake
if(NOT BENCH OR NOT WORKDIR)
  message(FATAL_ERROR "fleet_csv_identity: BENCH and WORKDIR must be set")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
execute_process(
  COMMAND "${BENCH}" --quick
  WORKING_DIRECTORY "${WORKDIR}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_fleet_scaling --quick failed (rc=${rc})")
endif()

set(csv1 "${WORKDIR}/bench_out/fleet_node0_N1.csv")
set(csv64 "${WORKDIR}/bench_out/fleet_node0_N64.csv")
foreach(f IN LISTS csv1 csv64)
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "missing expected CSV: ${f}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${csv1}" "${csv64}"
  RESULT_VARIABLE cmp)
if(NOT cmp EQUAL 0)
  message(FATAL_ERROR
      "node-0 trace diverges between N=1 and N=64: fleet sharding is not "
      "deterministic (${csv1} vs ${csv64})")
endif()
message(STATUS "fleet node-0 CSVs byte-identical for N=1 and N=64")
