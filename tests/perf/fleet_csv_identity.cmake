# Golden check for the batched fleet stepper's determinism contract: node
# 0's per-tick CSV must be byte-identical across
#   fleet_node0_serial.csv  the serial HighRpm facade (one on_tick at a time)
#   fleet_node0_N1.csv      FleetStepper, batch of 1, 1 thread
#   fleet_node0_N64.csv     FleetStepper, 64 lanes sharded across the pool
# i.e. identical whatever the batch size, shard grouping, or thread count.
# Invoked by ctest (label perf-smoke) as
#   cmake -DBENCH=<bench_fleet_scaling> -DWORKDIR=<dir> -P fleet_csv_identity.cmake
if(NOT BENCH OR NOT WORKDIR)
  message(FATAL_ERROR "fleet_csv_identity: BENCH and WORKDIR must be set")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
execute_process(
  COMMAND "${BENCH}" --quick
  WORKING_DIRECTORY "${WORKDIR}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_fleet_scaling --quick failed (rc=${rc})")
endif()

set(serial "${WORKDIR}/bench_out/fleet_node0_serial.csv")
set(csv1 "${WORKDIR}/bench_out/fleet_node0_N1.csv")
set(csv64 "${WORKDIR}/bench_out/fleet_node0_N64.csv")
foreach(f IN LISTS serial csv1 csv64)
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "missing expected CSV: ${f}")
  endif()
endforeach()

foreach(other IN LISTS csv1 csv64)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${serial}" "${other}"
    RESULT_VARIABLE cmp)
  if(NOT cmp EQUAL 0)
    message(FATAL_ERROR
        "node-0 trace diverges from the serial per-node path: the batched "
        "fleet stepper is not deterministic (${serial} vs ${other})")
  endif()
endforeach()
message(STATUS
    "fleet node-0 CSVs byte-identical: serial facade == N=1 == N=64")
