#include "highrpm/math/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace highrpm::math {
namespace {

TEST(Metrics, PerfectPredictionIsZeroError) {
  const std::vector<double> y{10, 20, 30};
  EXPECT_DOUBLE_EQ(mape(y, y), 0.0);
  EXPECT_DOUBLE_EQ(rmse(y, y), 0.0);
  EXPECT_DOUBLE_EQ(mae(y, y), 0.0);
  EXPECT_DOUBLE_EQ(r2(y, y), 1.0);
}

TEST(Metrics, MapeIsPercentOfTruth) {
  const std::vector<double> y{100, 200};
  const std::vector<double> p{110, 180};
  EXPECT_NEAR(mape(y, p), 10.0, 1e-12);  // (10% + 10%) / 2
}

TEST(Metrics, MapeSkipsNearZeroTruth) {
  const std::vector<double> y{0.0, 100.0};
  const std::vector<double> p{5.0, 110.0};
  EXPECT_NEAR(mape(y, p), 10.0, 1e-12);  // only the second point counts
}

TEST(Metrics, MapeAllSkippedIsUndefinedNotPerfect) {
  // Regression: an all-near-zero truth vector (e.g. an idle tenant) used to
  // return 0.0 — a PERFECT score for predictions that were plainly wrong.
  // The metric is undefined there; the contract is quiet NaN.
  const std::vector<double> y{0.0, 0.0};
  const std::vector<double> p{1.0, 2.0};
  EXPECT_TRUE(std::isnan(mape(y, p)));
}

TEST(Metrics, ReportRendersUndefinedMapeAsNa) {
  // Reporters must not print an undefined MAPE as a number: the n/a cell is
  // part of the contract (bench tables and CSVs render it the same way).
  const std::vector<double> y{0.0, 0.0};
  const std::vector<double> p{1.0, 2.0};
  const MetricReport r = evaluate_metrics(y, p);
  EXPECT_TRUE(std::isnan(r.mape));
  const std::string s = r.to_string();
  EXPECT_NE(s.find("MAPE=n/a"), std::string::npos) << s;
  EXPECT_EQ(s.find("MAPE=nan"), std::string::npos) << s;
}

TEST(Metrics, RmseKnownValue) {
  const std::vector<double> y{0, 0};
  const std::vector<double> p{3, 4};
  EXPECT_NEAR(rmse(y, p), std::sqrt(12.5), 1e-12);
}

TEST(Metrics, MaeKnownValue) {
  const std::vector<double> y{1, 2, 3};
  const std::vector<double> p{2, 2, 1};
  EXPECT_NEAR(mae(y, p), 1.0, 1e-12);
}

TEST(Metrics, RmseDominatedByOutliers) {
  const std::vector<double> y{0, 0, 0, 0};
  const std::vector<double> small{1, 1, 1, 1};
  const std::vector<double> spike{0, 0, 0, 4};
  EXPECT_DOUBLE_EQ(mae(y, small), mae(y, spike));
  EXPECT_LT(rmse(y, small), rmse(y, spike));  // RMSE penalizes the spike
}

TEST(Metrics, R2MeanPredictorIsZero) {
  const std::vector<double> y{1, 2, 3, 4};
  const std::vector<double> p{2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r2(y, p), 0.0, 1e-12);
}

TEST(Metrics, R2NegativeForWorseThanMean) {
  const std::vector<double> y{1, 2, 3, 4};
  const std::vector<double> p{4, 3, 2, 1};
  EXPECT_LT(r2(y, p), 0.0);
}

TEST(Metrics, R2ConstantTruthReturnsZero) {
  const std::vector<double> y{5, 5, 5};
  const std::vector<double> p{4, 5, 6};
  EXPECT_DOUBLE_EQ(r2(y, p), 0.0);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<double> y{1, 2};
  const std::vector<double> p{1};
  EXPECT_THROW(mape(y, p), std::invalid_argument);
  EXPECT_THROW(rmse(y, p), std::invalid_argument);
  EXPECT_THROW(mae(y, p), std::invalid_argument);
  EXPECT_THROW(r2(y, p), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(mape(empty, empty), std::invalid_argument);
}

TEST(Metrics, ReportBundlesAllFour) {
  const std::vector<double> y{10, 20, 30, 40};
  const std::vector<double> p{11, 19, 33, 38};
  const MetricReport r = evaluate_metrics(y, p);
  EXPECT_DOUBLE_EQ(r.mape, mape(y, p));
  EXPECT_DOUBLE_EQ(r.rmse, rmse(y, p));
  EXPECT_DOUBLE_EQ(r.mae, mae(y, p));
  EXPECT_DOUBLE_EQ(r.r2, r2(y, p));
  EXPECT_NE(r.to_string().find("MAPE="), std::string::npos);
}

}  // namespace
}  // namespace highrpm::math
