#include "highrpm/math/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace highrpm::math {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(9);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_index(5)]++;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaSmall) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesLambdaLarge) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(15);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliRate) {
  Rng rng(16);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(18);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementUnique) {
  Rng rng(19);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 20u);
  for (const auto i : seen) EXPECT_LT(i, 50u);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng b(42);
  b.next_u64();  // advance to match parent state after split
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace highrpm::math
