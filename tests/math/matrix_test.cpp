#include "highrpm/math/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace highrpm::math {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, FromRowsChecksSize) {
  const std::vector<double> flat{1, 2, 3, 4, 5, 6};
  const Matrix m = Matrix::from_rows(2, 3, flat);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_THROW(Matrix::from_rows(2, 2, flat), std::invalid_argument);
}

TEST(Matrix, RowSpanIsMutable) {
  Matrix m(2, 2, 0.0);
  auto row = m.row(1);
  row[0] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(Matrix, ColExtraction) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const auto c = m.col(1);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 6.0);
}

TEST(Matrix, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matmul, MultipliesCorrectly) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(Matmul, IdentityIsNeutral) {
  Matrix a{{1, 2}, {3, 4}};
  const Matrix c = matmul(a, Matrix::identity(2));
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

TEST(Gram, MatchesExplicitProduct) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Matrix g = gram(a);
  const Matrix expected = matmul(a.transposed(), a);
  ASSERT_TRUE(g.same_shape(expected));
  for (std::size_t r = 0; r < g.rows(); ++r) {
    for (std::size_t c = 0; c < g.cols(); ++c) {
      EXPECT_NEAR(g(r, c), expected(r, c), 1e-12);
    }
  }
}

TEST(Matvec, ForwardAndTransposed) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<double> x{1.0, -1.0};
  const auto y = matvec(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
  const std::vector<double> z{1.0, 0.0, 1.0};
  const auto w = matvec_t(a, z);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 6.0);
  EXPECT_DOUBLE_EQ(w[1], 8.0);
}

TEST(VectorHelpers, DotNormAxpy) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3, 4}), 5.0);
  std::vector<double> c = a;
  axpy(2.0, b, c);
  EXPECT_DOUBLE_EQ(c[0], 9.0);
  EXPECT_DOUBLE_EQ(c[2], 15.0);
  const auto s = vec_sub(b, a);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
}

}  // namespace
}  // namespace highrpm::math
