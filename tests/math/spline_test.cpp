#include "highrpm/math/spline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace highrpm::math {
namespace {

TEST(CubicSpline, PassesThroughKnots) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  const std::vector<double> y{1, 3, 2, 5, 4};
  CubicSpline s(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(s(x[i]), y[i], 1e-10);
  }
}

TEST(CubicSpline, TwoPointsIsLinear) {
  CubicSpline s(std::vector<double>{0, 2}, std::vector<double>{1, 5});
  EXPECT_NEAR(s(1.0), 3.0, 1e-12);
}

TEST(CubicSpline, InterpolatesSmoothFunctionAccurately) {
  std::vector<double> x, y;
  for (int i = 0; i <= 20; ++i) {
    x.push_back(i * 0.5);
    y.push_back(std::sin(x.back()));
  }
  CubicSpline s(x, y);
  // Interior points: the natural boundary condition (y'' = 0) costs accuracy
  // near the ends, so test away from them.
  for (double t = 1.25; t < 9.0; t += 0.5) {
    EXPECT_NEAR(s(t), std::sin(t), 5e-3);
  }
  // Near the boundary the error is larger but still small.
  EXPECT_NEAR(s(0.25), std::sin(0.25), 5e-2);
}

TEST(CubicSpline, LinearExtrapolationOutsideRange) {
  const std::vector<double> x{0, 1, 2};
  const std::vector<double> y{0, 1, 2};
  CubicSpline s(x, y);
  // Data is linear, so extrapolation continues the line.
  EXPECT_NEAR(s(-1.0), -1.0, 1e-9);
  EXPECT_NEAR(s(3.0), 3.0, 1e-9);
  // Extrapolation is linear: second difference is ~0 well outside the range.
  const double d1 = s(10.0) - s(9.0);
  const double d2 = s(11.0) - s(10.0);
  EXPECT_NEAR(d1, d2, 1e-9);
}

TEST(CubicSpline, RejectsBadInput) {
  EXPECT_THROW(CubicSpline(std::vector<double>{0}, std::vector<double>{1}),
               std::invalid_argument);
  EXPECT_THROW(
      CubicSpline(std::vector<double>{0, 0}, std::vector<double>{1, 2}),
      std::invalid_argument);
  EXPECT_THROW(
      CubicSpline(std::vector<double>{0, 1}, std::vector<double>{1}),
      std::invalid_argument);
}

TEST(CubicSpline, UnfittedThrows) {
  CubicSpline s;
  EXPECT_FALSE(s.fitted());
  EXPECT_THROW(s(0.5), std::logic_error);
}

TEST(CubicSpline, DerivativeMatchesFiniteDifference) {
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(std::cos(0.5 * x.back()));
  }
  CubicSpline s(x, y);
  for (double t = 0.5; t < 9.5; t += 1.0) {
    const double fd = (s(t + 1e-6) - s(t - 1e-6)) / 2e-6;
    EXPECT_NEAR(s.derivative(t), fd, 1e-5);
  }
}

TEST(CubicSpline, EvaluateBatchMatchesPointwise) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{0, 2, 1, 3};
  CubicSpline s(x, y);
  const std::vector<double> t{0.5, 1.5, 2.5};
  const auto out = s.evaluate(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], s(t[i]));
  }
}

TEST(LinearInterp, InterpolatesAndClamps) {
  LinearInterp li(std::vector<double>{0, 1, 2}, std::vector<double>{0, 10, 0});
  EXPECT_DOUBLE_EQ(li(0.5), 5.0);
  EXPECT_DOUBLE_EQ(li(1.5), 5.0);
  EXPECT_DOUBLE_EQ(li(-1.0), 0.0);  // clamped to boundary values
  EXPECT_DOUBLE_EQ(li(5.0), 0.0);
}

// Property: natural spline of samples of any cubic-free smooth signal stays
// within the data's bounding box on refinement grids (no wild ringing for
// these gentle inputs).
class SplineBoundedness : public ::testing::TestWithParam<double> {};

TEST_P(SplineBoundedness, GentleSignalsStayBounded) {
  const double freq = GetParam();
  std::vector<double> x, y;
  for (int i = 0; i <= 30; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(50.0 + 10.0 * std::sin(freq * x.back()));
  }
  CubicSpline s(x, y);
  for (double t = 0.0; t <= 30.0; t += 0.1) {
    EXPECT_GT(s(t), 50.0 - 10.0 * 1.3);
    EXPECT_LT(s(t), 50.0 + 10.0 * 1.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, SplineBoundedness,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.8));

}  // namespace
}  // namespace highrpm::math
