#include "highrpm/math/solve.hpp"

#include <gtest/gtest.h>

#include "highrpm/math/rng.hpp"

namespace highrpm::math {
namespace {

TEST(Cholesky, SolvesSpdSystem) {
  Matrix a{{4, 1}, {1, 3}};
  const std::vector<double> b{1, 2};
  const auto x = solve_cholesky(a, b);
  // Verify A x = b.
  EXPECT_NEAR(4 * x[0] + 1 * x[1], 1.0, 1e-10);
  EXPECT_NEAR(1 * x[0] + 3 * x[1], 2.0, 1e-10);
}

TEST(Cholesky, RejectsNonSpd) {
  Matrix a{{0, 1}, {1, 0}};
  const std::vector<double> b{1, 1};
  EXPECT_THROW(solve_cholesky(a, b), std::domain_error);
}

TEST(Cholesky, RejectsShapeMismatch) {
  EXPECT_THROW(solve_cholesky(Matrix(2, 3), std::vector<double>{1, 2}),
               std::invalid_argument);
}

TEST(LeastSquares, ExactSystemRecovered) {
  // Overdetermined but consistent: y = 2x + 1.
  Matrix a{{1, 0}, {1, 1}, {1, 2}, {1, 3}};
  const std::vector<double> b{1, 3, 5, 7};
  const auto x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(LeastSquares, MinimizesResidualOnNoisyData) {
  Rng rng(5);
  const std::size_t n = 200;
  Matrix a(n, 3);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = rng.uniform(-1, 1);
    a(i, 2) = rng.uniform(-1, 1);
    b[i] = 0.5 + 2.0 * a(i, 1) - 3.0 * a(i, 2) + rng.normal(0, 0.01);
  }
  const auto x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 0.5, 0.02);
  EXPECT_NEAR(x[1], 2.0, 0.02);
  EXPECT_NEAR(x[2], -3.0, 0.02);
}

TEST(LeastSquares, RankDeficientColumnGetsZero) {
  // Second column is all zeros: coefficient must come back 0, not NaN.
  Matrix a{{1, 0}, {2, 0}, {3, 0}};
  const std::vector<double> b{2, 4, 6};
  const auto x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(2, 3), std::vector<double>{1, 2}),
               std::invalid_argument);
}

TEST(Ridge, ShrinksTowardZero) {
  Matrix a{{1, 1}, {1, 2}, {1, 3}, {1, 4}};
  const std::vector<double> b{2, 4, 6, 8};
  const auto x0 = solve_ridge(a, b, 0.0);
  const auto x1 = solve_ridge(a, b, 100.0);
  EXPECT_NEAR(x0[1], 2.0, 1e-4);
  EXPECT_LT(std::abs(x1[1]), std::abs(x0[1]));  // heavy lambda shrinks slope
}

TEST(Ridge, UnpenalizedInterceptSurvives) {
  // Constant target: intercept should stay near 5 even with huge lambda
  // when column 0 (the intercept) is exempt from the penalty.
  Matrix a{{1, 1}, {1, 2}, {1, 3}, {1, 4}};
  const std::vector<double> b{5, 5, 5, 5};
  const auto x = solve_ridge(a, b, 1e6, /*unpenalized_col=*/0);
  EXPECT_NEAR(x[0], 5.0, 0.05);
  EXPECT_NEAR(x[1], 0.0, 0.05);
}

TEST(Tridiagonal, SolvesKnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1, 2, 3].
  const std::vector<double> lower{1, 1};
  const std::vector<double> diag{2, 2, 2};
  const std::vector<double> upper{1, 1};
  const auto x = solve_tridiagonal(lower, diag, upper, {4, 8, 8});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
  EXPECT_NEAR(x[2], 3.0, 1e-10);
}

TEST(Tridiagonal, BandSizeMismatchThrows) {
  EXPECT_THROW(solve_tridiagonal(std::vector<double>{1},
                                 std::vector<double>{2, 2, 2},
                                 std::vector<double>{1, 1}, {1, 2, 3}),
               std::invalid_argument);
}

// Property sweep: random SPD systems solved by Cholesky satisfy A x = b.
class CholeskyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CholeskyProperty, RandomSpdSystemsSolve) {
  Rng rng(GetParam());
  const std::size_t n = 4 + rng.uniform_index(6);
  // A = B^T B + I is SPD.
  Matrix b(n + 2, n);
  for (double& v : b.flat()) v = rng.normal();
  Matrix a = gram(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  std::vector<double> rhs(n);
  for (double& v : rhs) v = rng.normal();
  const auto x = solve_cholesky(a, rhs);
  const auto ax = matvec(a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace highrpm::math
