#include "highrpm/math/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace highrpm::math {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(variance(v), 2.0);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(2.0));
}

TEST(Stats, EmptyInputsAreSafe) {
  const std::vector<double> v;
  EXPECT_DOUBLE_EQ(mean(v), 0.0);
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
  EXPECT_TRUE(std::isnan(min_value(v)));
  EXPECT_TRUE(std::isnan(max_value(v)));
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 5.0);  // between elements
  EXPECT_THROW(quantile(v, 1.5), std::invalid_argument);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Stats, AutocorrelationOfConstantIsZero) {
  const std::vector<double> v(10, 3.0);
  EXPECT_DOUBLE_EQ(autocorrelation(v, 1), 0.0);
}

TEST(Stats, AutocorrelationLagZeroIsOne) {
  const std::vector<double> v{1, 5, 2, 8, 3, 9, 1, 4};
  EXPECT_NEAR(autocorrelation(v, 0), 1.0, 1e-12);
}

TEST(Stats, AutocorrelationDetectsAlternation) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(autocorrelation(v, 1), -0.9);
  EXPECT_GT(autocorrelation(v, 2), 0.9);
}

TEST(Stats, MovingAverageSmooths) {
  const std::vector<double> v{0, 10, 0, 10, 0, 10};
  const auto m = moving_average(v, 3);
  ASSERT_EQ(m.size(), v.size());
  // Interior points average their neighbourhood.
  EXPECT_NEAR(m[2], 10.0 / 3.0 * 2.0 * 0.5, 5.0);  // loose sanity
  // Window of 1 is identity.
  const auto id = moving_average(v, 1);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(id[i], v[i]);
  EXPECT_THROW(moving_average(v, 0), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::math
