#!/usr/bin/env python3
"""Golden-file regression runner (ctest -L golden).

Runs a bench binary in a scratch working directory and byte-compares the
result CSV it produces against a reference committed under tests/golden/.
The benches guarantee byte-identical result CSVs for any seed-fixed
configuration (see bench/common.hpp), so any diff here is a real behaviour
change: either fix the regression or — for an *intentional* change —
re-generate the reference (`<binary> --quick` and copy the CSV) and explain
the delta in the commit message.

Only result CSVs are compared; *_timing.csv files are wall-clock and
legitimately differ run to run.
"""

import argparse
import difflib
import pathlib
import shutil
import subprocess
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True, help="bench executable to run")
    ap.add_argument("--workdir", required=True,
                    help="scratch cwd for the run (created/cleaned)")
    ap.add_argument("--produced", required=True, action="append",
                    help="result file the run writes, relative to workdir "
                         "(repeatable; pairs with --golden in order)")
    ap.add_argument("--golden", required=True, action="append",
                    help="committed reference file (repeatable)")
    ap.add_argument("bench_args", nargs="*",
                    help="arguments passed through to the binary "
                         "(after a `--` separator)")
    args = ap.parse_args()

    if len(args.produced) != len(args.golden):
        ap.error("--produced and --golden must be given the same number of "
                 "times")

    workdir = pathlib.Path(args.workdir)
    # Fresh scratch dir: a stale CSV from an earlier run must not be able to
    # satisfy the comparison if today's binary fails to write one.
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)

    cmd = [args.binary] + args.bench_args
    proc = subprocess.run(cmd, cwd=workdir)
    if proc.returncode != 0:
        print(f"FAIL: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        return 1

    failures = 0
    for produced_rel, golden in zip(args.produced, args.golden):
        produced = workdir / produced_rel
        golden_path = pathlib.Path(golden)
        if not produced.is_file():
            print(f"FAIL: run produced no {produced_rel}", file=sys.stderr)
            failures += 1
            continue
        got = produced.read_bytes()
        want = golden_path.read_bytes()
        if got == want:
            print(f"ok: {produced_rel} matches {golden_path.name} "
                  f"({len(got)} bytes)")
            continue
        failures += 1
        print(f"FAIL: {produced_rel} differs from {golden_path}",
              file=sys.stderr)
        diff = difflib.unified_diff(
            want.decode(errors="replace").splitlines(),
            got.decode(errors="replace").splitlines(),
            fromfile=str(golden_path), tofile=produced_rel, lineterm="")
        for i, line in enumerate(diff):
            if i >= 40:
                print("  ... (diff truncated)", file=sys.stderr)
                break
            print(f"  {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
