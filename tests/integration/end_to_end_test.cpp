// End-to-end integration tests: the full paper pipeline — collect training
// data on the simulated platform, run HighRPM's two learning stages, then
// monitor unseen workloads and check the headline claims in miniature
// (10x temporal restoration, component breakdown, baseline comparison).
#include <gtest/gtest.h>

#include "highrpm/core/highrpm.hpp"
#include "highrpm/core/protocol.hpp"
#include "highrpm/math/metrics.hpp"
#include "highrpm/ml/baselines.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm {
namespace {

core::HighRpmConfig fast_config() {
  core::HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 15;
  cfg.srr.epochs = 40;
  return cfg;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    measure::Collector collector;
    auto* runs = new std::vector<measure::CollectedRun>();
    for (const auto& [name, seed] :
         std::vector<std::pair<std::string, std::uint64_t>>{
             {"fft", 900}, {"stream", 901}, {"hpl-ai", 902}, {"mcf", 903}}) {
      runs->push_back(collector.collect(sim::PlatformConfig::arm(),
                                        workloads::by_name(name), 180, seed));
    }
    training_ = runs;
    framework_ = new core::HighRpm(fast_config());
    framework_->initial_learning(*training_);
  }
  static void TearDownTestSuite() {
    delete framework_;
    delete training_;
    framework_ = nullptr;
    training_ = nullptr;
  }

  static measure::CollectedRun unseen_run(std::uint64_t seed,
                                          std::size_t ticks = 150) {
    measure::Collector collector;
    return collector.collect(sim::PlatformConfig::arm(), workloads::hpcg(),
                             ticks, seed);
  }

  static core::HighRpm* framework_;
  static std::vector<measure::CollectedRun>* training_;
};

core::HighRpm* EndToEndTest::framework_ = nullptr;
std::vector<measure::CollectedRun>* EndToEndTest::training_ = nullptr;

TEST_F(EndToEndTest, TemporalRestorationBeats10xSparsity) {
  // IM alone gives one reading per 10 ticks; HighRPM fills the gaps with
  // single-digit MAPE on an unseen workload (paper: ~4.4%; we allow slack).
  const auto run = unseen_run(910);
  const auto log = framework_->restore_log(run);
  const auto truth = run.truth.node_power();
  const double restored_mape = math::mape(truth, log.node_w);
  EXPECT_LT(restored_mape, 10.0);

  // Compare against zero-order hold of the sparse IM readings - the
  // "no restoration" strawman must be clearly worse or comparable.
  std::vector<double> hold(truth.size(), run.ipmi_readings[0].power_w);
  std::size_t next = 0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    if (next < run.ipmi_readings.size() &&
        run.ipmi_readings[next].tick_index <= t) {
      hold[t] = run.ipmi_readings[next].power_w;
      if (next + 1 < run.ipmi_readings.size() &&
          run.ipmi_readings[next + 1].tick_index <= t) {
        ++next;
      }
    }
    if (next + 1 < run.ipmi_readings.size() &&
        run.ipmi_readings[next + 1].tick_index <= t) {
      ++next;
    }
  }
  EXPECT_LT(restored_mape, math::mape(truth, hold) + 1.0);
}

TEST_F(EndToEndTest, SpatialBreakdownTracksComponents) {
  const auto run = unseen_run(911);
  const auto log = framework_->restore_log(run);
  const auto cpu_truth = run.truth.cpu_power();
  const auto mem_truth = run.truth.mem_power();
  EXPECT_LT(math::mape(cpu_truth, log.cpu_w), 15.0);
  EXPECT_LT(math::mape(mem_truth, log.mem_w), 30.0);
}

TEST_F(EndToEndTest, BeatsPurePmcLinearBaselineOnNodePower) {
  // Table-5 in miniature: HighRPM's restoration vs an LR trained on the same
  // PMCs (no node-power information) on the unseen workload.
  const auto flat = core::flatten_runs(*training_);
  auto lr = ml::make_baseline("LR");
  lr->fit(flat.x, flat.p_node);

  const auto run = unseen_run(912);
  const auto log = framework_->restore_log(run);
  const auto truth = run.truth.node_power();
  const auto lr_pred = lr->predict(run.dataset.features());
  EXPECT_LT(math::mape(truth, log.node_w), math::mape(truth, lr_pred));
}

TEST_F(EndToEndTest, StreamingAndOfflineModesAgreeRoughly) {
  const auto run = unseen_run(913, 100);
  const auto log = framework_->restore_log(run);
  core::HighRpm h = *framework_;
  h.reset_stream();
  const auto& features = run.dataset.features();
  std::vector<double> stream_est;
  for (std::size_t t = 0; t < run.num_ticks(); ++t) {
    std::optional<double> reading;
    if (run.measured[t]) reading = run.dataset.target("P_NODE")[t];
    stream_est.push_back(h.on_tick(features.row(t), reading).node_w);
  }
  // Both modes estimate the same quantity; they should agree within ~15%.
  EXPECT_LT(math::mape(log.node_w, stream_est), 15.0);
}

TEST_F(EndToEndTest, ActiveLearningDoesNotDegradeAccuracy) {
  core::HighRpm h = *framework_;
  const auto adapt_run = unseen_run(914, 200);
  const auto eval_run = unseen_run(915, 120);
  const auto before = h.restore_log(eval_run);
  h.active_learning(adapt_run);
  const auto after = h.restore_log(eval_run);
  const auto truth = eval_run.truth.node_power();
  // Node restoration is StaticTRR-driven (unchanged); SRR was fine-tuned on
  // the same workload family and must stay within a small band.
  const auto cpu_truth = eval_run.truth.cpu_power();
  const double cpu_before = math::mape(cpu_truth, before.cpu_w);
  const double cpu_after = math::mape(cpu_truth, after.cpu_w);
  EXPECT_LT(cpu_after, cpu_before + 5.0);
  EXPECT_LT(math::mape(truth, after.node_w), 10.0);
}

TEST_F(EndToEndTest, X86PlatformPipelineWorks) {
  // Table-9 smoke: the same pipeline on the x86 preset.
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::x86(),
                                   workloads::fft(), 180, 920));
  runs.push_back(collector.collect(sim::PlatformConfig::x86(),
                                   workloads::stream(), 180, 921));
  core::HighRpm h(fast_config());
  h.initial_learning(runs);
  const auto run = collector.collect(sim::PlatformConfig::x86(),
                                     workloads::hpcg(), 120, 922);
  const auto log = h.restore_log(run);
  const auto truth = run.truth.node_power();
  EXPECT_LT(math::mape(truth, log.node_w), 12.0);
}

}  // namespace
}  // namespace highrpm
