// Zero-allocation contract for the daemon's steady-state consume path
// (ctest -L perf-smoke): once a consumer's staging buffers and cohort
// scratch are warm, a drain cycle — pop, held bridging, step_cohort,
// seqlock publish, histogram record — performs no heap allocations.
// Metered with the per-thread counting hook from bench/alloc_trace.hpp,
// armed on the consumer thread via DaemonConfig::CycleHooks (the serve
// mirror of the fleet bench's ShardHooks arming).
//
// alloc_trace.hpp must live in exactly one TU per binary; this file is
// that TU for test_serve_perf.
#include "alloc_trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "highrpm/serve/daemon.hpp"
#include "serve_test_util.hpp"

namespace highrpm::serve {
namespace {

namespace at = highrpm::alloctrace;
namespace tu = testutil;

TEST(ServeAlloc, SteadyStateConsumeCycleIsAllocationFree) {
  ASSERT_TRUE(at::available())
      << "test_serve_perf must be built with HIGHRPM_ALLOC_TRACE";

  const core::HighRpm golden = tu::train_golden();
  const std::size_t nodes = 4;
  const std::uint64_t warmup_ticks = 3 * golden.config().miss_interval;
  const std::uint64_t metered_ticks = 40;

  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> cycles_metered{0};
  DaemonConfig cfg;
  cfg.consumers = 1;
  cfg.ring_capacity = 256;
  // Arm the counting hook on the consumer thread, exactly around each
  // drain cycle — nothing from the producer/test threads is metered.
  cfg.hooks.before = [&](std::size_t) {
    if (armed.load(std::memory_order_acquire)) at::arm();
  };
  cfg.hooks.after = [&](std::size_t) {
    at::disarm();
    if (armed.load(std::memory_order_acquire)) {
      cycles_metered.fetch_add(1, std::memory_order_relaxed);
    }
  };
  Daemon daemon(golden, nodes, tu::node_suites(nodes), cfg);
  std::vector<measure::NodeTickStream> streams;
  for (std::size_t i = 0; i < nodes; ++i) streams.push_back(tu::make_stream(i));

  // Warm-up: pre-fill every ring BEFORE starting the consumer, so each
  // drain cycle pops one tick from every node — the cohort reaches its
  // maximum size (all owned nodes) and every staging buffer, workspace,
  // and scratch matrix is sized for it. Also passes measured ticks through
  // the supersede path.
  for (std::uint64_t t = 0; t < warmup_ticks; ++t) {
    for (std::size_t i = 0; i < nodes; ++i) {
      ASSERT_EQ(daemon.offer(i, streams[i].next()), OfferResult::kAccepted);
    }
  }
  daemon.start();
  daemon.quiesce();

  // Metered phase: every consume cycle (drain + step + publish + record)
  // must allocate nothing.
  const std::uint64_t before = at::count();
  armed.store(true, std::memory_order_release);
  for (std::uint64_t t = 0; t < metered_ticks; ++t) {
    for (std::size_t i = 0; i < nodes; ++i) {
      ASSERT_EQ(daemon.offer(i, streams[i].next()), OfferResult::kAccepted);
    }
  }
  daemon.quiesce();
  armed.store(false, std::memory_order_release);
  const std::uint64_t allocs = at::count() - before;

  const DaemonSnapshot snap = daemon.snapshot();
  daemon.stop();

  EXPECT_GT(cycles_metered.load(), 0u) << "nothing was metered";
  EXPECT_EQ(allocs, 0u)
      << "steady-state consume path allocated (" << allocs << " allocations over "
      << cycles_metered.load() << " metered cycles)";
  EXPECT_EQ(snap.total_accepted, nodes * (warmup_ticks + metered_ticks));
}

}  // namespace
}  // namespace highrpm::serve
