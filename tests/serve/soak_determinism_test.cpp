// Long-soak determinism (ctest -L soak): real producer threads flood a
// daemon while a query loop reads live snapshots; after the producers
// finish and the daemon quiesces, the final snapshot text must be
// byte-identical across consumer thread counts. Rings are sized to the
// whole schedule so nothing can shed — the soak pins the no-drop
// determinism contract under genuine concurrency, not a replayed one.
//
// Runs a short schedule by default (CI tier); set HIGHRPM_SOAK=1 for the
// long variant (scripts/check.sh soak step).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "highrpm/serve/daemon.hpp"
#include "serve_test_util.hpp"

namespace highrpm::serve {
namespace {

namespace tu = testutil;

constexpr std::size_t kNodes = 8;

std::uint64_t soak_ticks_per_node() {
  return std::getenv("HIGHRPM_SOAK") != nullptr ? 4000 : 400;
}

/// Run one full producer -> daemon -> quiesce cycle and return the final
/// snapshot text. Live snapshots are sampled during the run and checked
/// for NaNs and accounting coherence (but not determinism — timing-
/// dependent by design).
std::string run_soak(const core::HighRpm& golden, std::size_t consumers,
                     std::uint64_t ticks_per_node) {
  DaemonConfig cfg;
  cfg.consumers = consumers;
  // Room for the whole schedule: the soak pins the NO-drop contract.
  cfg.ring_capacity = ticks_per_node;
  Daemon daemon(golden, kNodes, tu::node_suites(kNodes), cfg);
  daemon.start();

  // Two producers, each owning half the fleet.
  Producer::Config pcfg;
  pcfg.ticks_per_node = ticks_per_node;
  pcfg.burst_len = 32;
  pcfg.pause_us = 0;
  std::vector<std::size_t> low_ids, high_ids;
  std::vector<measure::NodeTickStream> low_streams, high_streams;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto& ids = i < kNodes / 2 ? low_ids : high_ids;
    auto& streams = i < kNodes / 2 ? low_streams : high_streams;
    ids.push_back(i);
    streams.push_back(tu::make_stream(i));
  }
  Producer low(daemon, low_ids, std::move(low_streams), pcfg);
  Producer high(daemon, high_ids, std::move(high_streams), pcfg);
  low.start();
  high.start();

  std::uint64_t live_queries = 0;
  while (live_queries < 64) {
    const DaemonSnapshot snap = daemon.snapshot();
    for (const NodeStatus& n : snap.nodes) {
      EXPECT_LE(n.accepted + n.shed + n.dropped_readings, n.offered);
      if (n.ticks > 0) EXPECT_TRUE(std::isfinite(n.node_w));
    }
    ++live_queries;
    if (snap.total_offered >= kNodes * ticks_per_node) break;
  }

  low.join();
  high.join();
  daemon.quiesce();
  const DaemonSnapshot final_snap = daemon.snapshot();
  daemon.stop();

  EXPECT_EQ(final_snap.total_offered, kNodes * ticks_per_node);
  EXPECT_EQ(final_snap.total_accepted, kNodes * ticks_per_node)
      << "soak rings must never shed";
  EXPECT_EQ(final_snap.total_held, 0u);
  for (const NodeStatus& n : final_snap.nodes) {
    EXPECT_TRUE(std::isfinite(n.node_w));
    EXPECT_TRUE(std::isfinite(n.cpu_w));
    EXPECT_TRUE(std::isfinite(n.mem_w));
  }
  return to_string(final_snap);
}

TEST(ServeSoak, FinalSnapshotByteIdenticalAcrossConsumerCounts) {
  const core::HighRpm golden = tu::train_golden();
  const std::uint64_t ticks = soak_ticks_per_node();
  const std::string one = run_soak(golden, 1, ticks);
  const std::string two = run_soak(golden, 2, ticks);
  const std::string three = run_soak(golden, 3, ticks);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two) << "1 vs 2 consumers diverged after " << ticks
                      << " ticks/node";
  EXPECT_EQ(one, three) << "1 vs 3 consumers diverged after " << ticks
                        << " ticks/node";
}

}  // namespace
}  // namespace highrpm::serve
