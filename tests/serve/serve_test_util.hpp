// Shared fixtures for the serve test binaries: one cheap golden training
// recipe and the node -> (workload, stream seed) derivation every serve
// test and the bench use, so the daemon's inputs are reproducible across
// suites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "highrpm/core/highrpm.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/measure/stream.hpp"
#include "highrpm/sim/platform.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::serve::testutil {

constexpr std::uint64_t kSeed = 2023;

inline sim::Workload workload_for_node(std::size_t node) {
  switch (node % 4) {
    case 0: return workloads::fft();
    case 1: return workloads::stream();
    case 2: return workloads::hpcg();
    default: return workloads::graph500_bfs();
  }
}

inline core::HighRpm train_golden() {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 160, kSeed));
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::stream(), 160, kSeed + 1));
  core::HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 8;
  cfg.dynamic_trr.online_finetune = false;  // shared-weights fast path
  cfg.srr.epochs = 20;
  core::HighRpm golden(cfg);
  golden.initial_learning(runs);
  return golden;
}

/// Node i's deployment stream — same derivation at every consumer count
/// and in the serial reference.
inline measure::NodeTickStream make_stream(std::size_t node) {
  return measure::NodeTickStream(sim::PlatformConfig::arm(),
                                 workload_for_node(node),
                                 kSeed + 1000 + node);
}

inline std::vector<std::string> node_suites(std::size_t nodes) {
  std::vector<std::string> suites;
  suites.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    suites.push_back(workload_for_node(i).suite);
  }
  return suites;
}

}  // namespace highrpm::serve::testutil
