// Adaptive-mode daemon soak (ctest -L soak): the fleet runs with per-lane
// sampling controllers while real producer threads flood the rings. Pins
// three contracts under genuine concurrency: (1) ingestion accounting
// stays exact (offered == accepted + shed + dropped_readings, per node and
// in total), (2) the hysteresis dwell bounds every node's mode-change
// count — no flapping explosion no matter how the schedule interleaves,
// and (3) the final snapshot (controller columns included) is
// byte-identical across consumer counts.
//
// Short schedule by default; HIGHRPM_SOAK=1 selects the long variant.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "highrpm/serve/daemon.hpp"
#include "serve_test_util.hpp"

namespace highrpm::serve {
namespace {

namespace tu = testutil;

constexpr std::size_t kNodes = 8;

std::uint64_t soak_ticks_per_node() {
  return std::getenv("HIGHRPM_SOAK") != nullptr ? 4000 : 400;
}

/// Adaptive golden with budget-driven transitions: up == down == 0 makes
/// the score always vote Dense, so the 300-permille token bucket forces a
/// steady sparse/dense oscillation — every lane keeps switching model
/// paths for the whole soak, the worst case for both determinism and the
/// flap bound.
core::HighRpm train_adaptive_golden() {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 160, tu::kSeed));
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::stream(), 160, tu::kSeed + 1));
  core::HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 8;
  cfg.dynamic_trr.online_finetune = false;
  cfg.srr.epochs = 20;
  cfg.adaptive = true;
  cfg.adapt.budget_permille = 300;
  cfg.adapt.hold_windows = 1;
  cfg.adapt.up_threshold_w = 0.0;
  cfg.adapt.down_threshold_w = 0.0;
  core::HighRpm golden(cfg);
  golden.initial_learning(runs);
  return golden;
}

void check_adaptive_invariants(const DaemonSnapshot& snap,
                               std::uint64_t window_ticks,
                               std::uint64_t hold_windows) {
  for (std::size_t i = 0; i < snap.nodes.size(); ++i) {
    const NodeStatus& n = snap.nodes[i];
    // Exact ingestion accounting: every offered tick is accepted, shed,
    // or dropped — nothing vanishes and nothing is double-counted.
    EXPECT_EQ(n.offered, n.accepted + n.shed + n.dropped_readings)
        << "node " << i;
    // The cell is all-zero until the node's first publish.
    if (n.ticks == 0) continue;
    // Controller is live on every lane (mode 0 would mean "off").
    EXPECT_NE(n.adapt_mode, 0u) << "node " << i;
    EXPECT_LE(n.adapt_mode, 2u) << "node " << i;
    // Flap bound: each mode episode spans >= hold_windows full windows,
    // so changes cannot exceed the windows the lane actually stepped.
    const std::uint64_t windows = n.ticks / window_ticks;
    EXPECT_LE(n.adapt_mode_changes * hold_windows, windows + 1)
        << "node " << i << " flapped: " << n.adapt_mode_changes
        << " changes in " << windows << " windows";
    // Sparse (cheap-path) ticks never exceed the ticks stepped.
    EXPECT_LE(n.adapt_cheap_ticks, n.ticks) << "node " << i;
  }
}

std::string run_adaptive_soak(const core::HighRpm& golden,
                              std::size_t consumers,
                              std::uint64_t ticks_per_node) {
  DaemonConfig cfg;
  cfg.consumers = consumers;
  cfg.ring_capacity = ticks_per_node;  // no-shed schedule
  Daemon daemon(golden, kNodes, tu::node_suites(kNodes), cfg);
  daemon.start();

  Producer::Config pcfg;
  pcfg.ticks_per_node = ticks_per_node;
  pcfg.burst_len = 32;
  pcfg.pause_us = 0;
  std::vector<std::size_t> low_ids, high_ids;
  std::vector<measure::NodeTickStream> low_streams, high_streams;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto& ids = i < kNodes / 2 ? low_ids : high_ids;
    auto& streams = i < kNodes / 2 ? low_streams : high_streams;
    ids.push_back(i);
    streams.push_back(tu::make_stream(i));
  }
  Producer low(daemon, low_ids, std::move(low_streams), pcfg);
  Producer high(daemon, high_ids, std::move(high_streams), pcfg);
  low.start();
  high.start();

  const std::uint64_t window_ticks = golden.config().miss_interval;
  const std::uint64_t hold = golden.config().adapt.hold_windows;
  std::uint64_t live_queries = 0;
  while (live_queries < 64) {
    const DaemonSnapshot snap = daemon.snapshot();
    check_adaptive_invariants(snap, window_ticks, hold);
    for (const NodeStatus& n : snap.nodes) {
      if (n.ticks > 0) EXPECT_TRUE(std::isfinite(n.node_w));
    }
    ++live_queries;
    if (snap.total_offered >= kNodes * ticks_per_node) break;
  }

  low.join();
  high.join();
  daemon.quiesce();
  const DaemonSnapshot final_snap = daemon.snapshot();
  daemon.stop();

  EXPECT_EQ(final_snap.total_offered, kNodes * ticks_per_node);
  EXPECT_EQ(final_snap.total_accepted, kNodes * ticks_per_node)
      << "soak rings must never shed";
  check_adaptive_invariants(final_snap, window_ticks, hold);
  for (const NodeStatus& n : final_snap.nodes) {
    EXPECT_TRUE(std::isfinite(n.node_w));
    // The oscillating config must have exercised BOTH paths on every node
    // by the end of the soak — a controller pinned in one mode would make
    // the determinism claim vacuous.
    EXPECT_GT(n.adapt_mode_changes, 0u);
    EXPECT_GT(n.adapt_cheap_ticks, 0u);
    EXPECT_LT(n.adapt_cheap_ticks, n.ticks);
  }
  return to_string(final_snap);
}

TEST(AdaptiveSoak, FinalSnapshotByteIdenticalAcrossConsumerCounts) {
  const core::HighRpm golden = train_adaptive_golden();
  const std::uint64_t ticks = soak_ticks_per_node();
  const std::string one = run_adaptive_soak(golden, 1, ticks);
  const std::string two = run_adaptive_soak(golden, 2, ticks);
  const std::string three = run_adaptive_soak(golden, 3, ticks);
  EXPECT_FALSE(one.empty());
  // to_string includes the adapt_mode / adapt_changes / adapt_cheap columns,
  // so this also pins controller-state determinism across consumer counts.
  EXPECT_EQ(one, two) << "1 vs 2 consumers diverged after " << ticks
                      << " ticks/node";
  EXPECT_EQ(one, three) << "1 vs 3 consumers diverged after " << ticks
                        << " ticks/node";
}

TEST(AdaptiveSoak, AccountingStaysExactUnderShedding) {
  // Tiny rings force shedding under burst pressure; the adaptive fleet's
  // accounting identity must still balance exactly on every node.
  const core::HighRpm golden = train_adaptive_golden();
  DaemonConfig cfg;
  cfg.consumers = 2;
  cfg.ring_capacity = 16;
  Daemon daemon(golden, kNodes, tu::node_suites(kNodes), cfg);
  daemon.start();

  Producer::Config pcfg;
  pcfg.ticks_per_node = 200;
  pcfg.burst_len = 64;
  pcfg.pause_us = 0;
  std::vector<std::size_t> ids;
  std::vector<measure::NodeTickStream> streams;
  for (std::size_t i = 0; i < kNodes; ++i) {
    ids.push_back(i);
    streams.push_back(tu::make_stream(i));
  }
  Producer producer(daemon, ids, std::move(streams), pcfg);
  producer.start();
  producer.join();
  daemon.quiesce();
  const DaemonSnapshot snap = daemon.snapshot();
  daemon.stop();

  std::uint64_t offered = 0, accepted = 0, shed = 0, dropped = 0;
  for (std::size_t i = 0; i < snap.nodes.size(); ++i) {
    const NodeStatus& n = snap.nodes[i];
    EXPECT_EQ(n.offered, n.accepted + n.shed + n.dropped_readings)
        << "node " << i;
    EXPECT_EQ(n.offered, pcfg.ticks_per_node) << "node " << i;
    offered += n.offered;
    accepted += n.accepted;
    shed += n.shed;
    dropped += n.dropped_readings;
  }
  EXPECT_EQ(offered, kNodes * pcfg.ticks_per_node);
  EXPECT_EQ(snap.total_offered, offered);
  EXPECT_EQ(snap.total_accepted, accepted);
  EXPECT_EQ(snap.total_shed, shed);
  EXPECT_EQ(snap.total_dropped_readings, dropped);
  EXPECT_EQ(offered, accepted + shed + dropped);
}

}  // namespace
}  // namespace highrpm::serve
