// serve's determinism contract: with a fixed per-node offer schedule and
// no overload (roomy rings, chunked offer -> quiesce), the sequence of
// snapshot texts is BYTE-identical at every consumer thread count, and
// every node's published estimate equals the serial facade (a HighRpm
// clone fed the same NodeTickStream) bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "highrpm/core/highrpm.hpp"
#include "highrpm/serve/daemon.hpp"
#include "serve_test_util.hpp"

namespace highrpm::serve {
namespace {

namespace tu = testutil;

constexpr std::size_t kNodes = 4;
constexpr std::uint64_t kChunks = 6;
constexpr std::uint64_t kChunkTicks = 16;

/// Offer kChunks * kChunkTicks ticks per node in chunks, quiescing and
/// snapshotting after each chunk; return the concatenated snapshot texts.
std::string run_daemon(const core::HighRpm& golden, std::size_t consumers) {
  DaemonConfig cfg;
  cfg.consumers = consumers;
  cfg.ring_capacity = kChunkTicks * 2;  // no sheds: schedule fits
  Daemon daemon(golden, kNodes, tu::node_suites(kNodes), cfg);
  std::vector<measure::NodeTickStream> streams;
  for (std::size_t i = 0; i < kNodes; ++i) streams.push_back(tu::make_stream(i));
  daemon.start();
  std::string transcript;
  for (std::uint64_t chunk = 0; chunk < kChunks; ++chunk) {
    for (std::uint64_t t = 0; t < kChunkTicks; ++t) {
      for (std::size_t i = 0; i < kNodes; ++i) {
        EXPECT_EQ(daemon.offer(i, streams[i].next()), OfferResult::kAccepted);
      }
    }
    daemon.quiesce();
    transcript += to_string(daemon.snapshot());
  }
  daemon.stop();
  return transcript;
}

TEST(ServeDeterminism, SnapshotSequenceIsByteIdenticalAcrossConsumerCounts) {
  const core::HighRpm golden = tu::train_golden();
  const std::string one = run_daemon(golden, 1);
  const std::string two = run_daemon(golden, 2);
  const std::string three = run_daemon(golden, 3);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two) << "1-consumer vs 2-consumer transcripts diverged";
  EXPECT_EQ(one, three) << "1-consumer vs 3-consumer transcripts diverged";
}

TEST(ServeDeterminism, DaemonEstimatesMatchSerialFacadeBitForBit) {
  const core::HighRpm golden = tu::train_golden();
  constexpr std::uint64_t kTicks = kChunks * kChunkTicks;

  // Serial reference: one HighRpm clone per node, fed the same stream.
  std::vector<std::vector<core::PowerEstimate>> ref(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    core::HighRpm node = golden;
    node.reset_stream();
    auto stream = tu::make_stream(i);
    for (std::uint64_t t = 0; t < kTicks; ++t) {
      const measure::StreamTick tick = stream.next();
      const std::optional<double> reading =
          tick.has_reading ? std::optional<double>(tick.reading_w)
                           : std::nullopt;
      ref[i].push_back(node.on_tick(tick.pmcs, reading));
    }
  }

  // Daemon with two consumers; snapshot after every tick wave.
  DaemonConfig cfg;
  cfg.consumers = 2;
  cfg.ring_capacity = 64;
  Daemon daemon(golden, kNodes, tu::node_suites(kNodes), cfg);
  std::vector<measure::NodeTickStream> streams;
  for (std::size_t i = 0; i < kNodes; ++i) streams.push_back(tu::make_stream(i));
  daemon.start();
  for (std::uint64_t t = 0; t < kTicks; ++t) {
    for (std::size_t i = 0; i < kNodes; ++i) {
      ASSERT_EQ(daemon.offer(i, streams[i].next()), OfferResult::kAccepted);
    }
    daemon.quiesce();
    const DaemonSnapshot snap = daemon.snapshot();
    for (std::size_t i = 0; i < kNodes; ++i) {
      const NodeStatus& n = snap.nodes[i];
      ASSERT_EQ(n.ticks, t + 1) << "node " << i;
      // Exact equality on purpose: bit identity with the serial path.
      ASSERT_EQ(n.node_w, ref[i][t].node_w) << "node " << i << " tick " << t;
      ASSERT_EQ(n.cpu_w, ref[i][t].cpu_w) << "node " << i << " tick " << t;
      ASSERT_EQ(n.mem_w, ref[i][t].mem_w) << "node " << i << " tick " << t;
      ASSERT_EQ(n.measured, ref[i][t].measured)
          << "node " << i << " tick " << t;
    }
  }
  daemon.stop();
}

}  // namespace
}  // namespace highrpm::serve
