// serve's two lock-free primitives, exercised single-threaded for exact
// semantics and two-threaded for coherence (the binary carries the
// serve-sanitize label, so TSan also checks data-race freedom here).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/serve/snapshot.hpp"
#include "highrpm/serve/spsc_ring.hpp"

namespace highrpm::serve {
namespace {

TEST(SpscRing, RejectsZeroCapacity) {
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1025).capacity(), 2048u);
}

TEST(SpscRing, FifoOrderAndFullEmptyBoundaries) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));  // pop on empty fails, out untouched
  EXPECT_EQ(out, 0);

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  EXPECT_EQ(ring.size(), 4u);

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());

  // Wraparound: interleaved push/pop far past the capacity.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ring.try_push(i));
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpscRing, TwoThreadStressDeliversEverythingInOrder) {
  SpscRing<std::uint64_t> ring(8);
  constexpr std::uint64_t kItems = 50000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (ring.try_push(i)) {
        ++i;
      } else {
        std::this_thread::yield();  // single-core boxes: let the consumer run
      }
    }
  });
  std::uint64_t expect = 0;
  while (expect < kItems) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(v, expect);  // order preserved, nothing lost or duplicated
    ++expect;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(NodeStatusCell, ReadReturnsLastPublish) {
  NodeStatusCell cell;
  const NodeStatusCell::Value zero = cell.read();
  EXPECT_EQ(zero.ticks, 0u);
  EXPECT_FALSE(zero.measured);

  cell.publish({7, 80.5, 40.25, 12.125, true});
  const NodeStatusCell::Value v = cell.read();
  EXPECT_EQ(v.ticks, 7u);
  EXPECT_EQ(v.node_w, 80.5);
  EXPECT_EQ(v.cpu_w, 40.25);
  EXPECT_EQ(v.mem_w, 12.125);
  EXPECT_TRUE(v.measured);
}

TEST(NodeStatusCell, ConcurrentReadersNeverSeeTornPayload) {
  // The writer publishes correlated payloads {t, t, 2t, 3t}; any coherent
  // read must satisfy the correlation exactly. Readers hammering the cell
  // while the writer publishes must never observe a mix of two publishes.
  NodeStatusCell cell;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const NodeStatusCell::Value v = cell.read();
        const double t = static_cast<double>(v.ticks);
        const bool coherent = math::exact_eq(v.node_w, t) &&
                              math::exact_eq(v.cpu_w, 2.0 * t) &&
                              math::exact_eq(v.mem_w, 3.0 * t);
        EXPECT_TRUE(coherent) << "torn read at ticks " << v.ticks;
        if (!coherent) return;
      }
    });
  }
  constexpr std::uint64_t kPublishes = 100000;
  for (std::uint64_t t = 1; t <= kPublishes; ++t) {
    const double d = static_cast<double>(t);
    cell.publish({t, d, 2.0 * d, 3.0 * d, (t & 1) != 0});
    if (t % 1024 == 0) std::this_thread::yield();  // let the readers observe
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  const NodeStatusCell::Value last = cell.read();
  EXPECT_EQ(last.ticks, kPublishes);
}

}  // namespace
}  // namespace highrpm::serve
