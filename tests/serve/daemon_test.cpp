// serve::Daemon functional contract: config validation, ingestion
// accounting (offered == accepted + shed + dropped_readings), graceful
// overload degradation (shed ticks bridged by bounded held-row catch-up),
// and live querying while producers and consumers run (the binary carries
// the serve-sanitize label — TSan checks the whole concurrent path).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "highrpm/serve/daemon.hpp"
#include "serve_test_util.hpp"

namespace highrpm::serve {
namespace {

namespace tu = testutil;

class ServeDaemonTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    golden_ = new core::HighRpm(tu::train_golden());
  }
  static void TearDownTestSuite() {
    delete golden_;
    golden_ = nullptr;
  }
  static core::HighRpm* golden_;
};

core::HighRpm* ServeDaemonTest::golden_ = nullptr;

TEST_F(ServeDaemonTest, ValidatesConfigurationBoundaries) {
  DaemonConfig zero_consumers;
  zero_consumers.consumers = 0;
  EXPECT_THROW(Daemon(*golden_, 2, tu::node_suites(2), zero_consumers),
               std::invalid_argument);

  DaemonConfig zero_ring;
  zero_ring.ring_capacity = 0;
  EXPECT_THROW(Daemon(*golden_, 2, tu::node_suites(2), zero_ring),
               std::invalid_argument);

  // Suite list must align with the fleet.
  EXPECT_THROW(Daemon(*golden_, 2, tu::node_suites(3)),
               std::invalid_argument);
  // Zero nodes rejected (by the fleet it wraps).
  EXPECT_THROW(Daemon(*golden_, 0, {}), std::invalid_argument);

  // Consumers clamp to the node count.
  DaemonConfig many;
  many.consumers = 64;
  Daemon d(*golden_, 3, tu::node_suites(3), many);
  EXPECT_EQ(d.consumers(), 3u);
  EXPECT_EQ(d.nodes(), 3u);
  EXPECT_FALSE(d.running());
  EXPECT_THROW(d.quiesce(), std::logic_error);
}

TEST_F(ServeDaemonTest, DrainsEveryOfferedTickAndAccountsExactly) {
  const std::size_t nodes = 3;
  const std::uint64_t ticks = 48;
  DaemonConfig cfg;
  cfg.consumers = 2;
  cfg.ring_capacity = 256;  // roomy: nothing sheds
  Daemon daemon(*golden_, nodes, tu::node_suites(nodes), cfg);
  daemon.start();
  EXPECT_TRUE(daemon.running());
  EXPECT_THROW(daemon.start(), std::logic_error);

  std::vector<measure::NodeTickStream> streams;
  for (std::size_t i = 0; i < nodes; ++i) streams.push_back(tu::make_stream(i));
  for (std::uint64_t t = 0; t < ticks; ++t) {
    for (std::size_t i = 0; i < nodes; ++i) {
      EXPECT_EQ(daemon.offer(i, streams[i].next()), OfferResult::kAccepted);
    }
  }
  daemon.quiesce();
  const DaemonSnapshot snap = daemon.snapshot();
  daemon.stop();
  EXPECT_FALSE(daemon.running());
  daemon.stop();  // idempotent

  ASSERT_EQ(snap.nodes.size(), nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeStatus& n = snap.nodes[i];
    EXPECT_EQ(n.offered, ticks) << "node " << i;
    EXPECT_EQ(n.accepted, ticks);
    EXPECT_EQ(n.shed, 0u);
    EXPECT_EQ(n.dropped_readings, 0u);
    EXPECT_EQ(n.held, 0u);
    EXPECT_EQ(n.ticks, ticks);  // every accepted tick was stepped
    EXPECT_TRUE(std::isfinite(n.node_w));
    EXPECT_TRUE(std::isfinite(n.cpu_w));
    EXPECT_TRUE(std::isfinite(n.mem_w));
    EXPECT_GT(n.node_w, 0.0);
  }
  EXPECT_EQ(snap.total_offered, nodes * ticks);
  EXPECT_EQ(snap.total_accepted, nodes * ticks);
  EXPECT_EQ(snap.total_ticks, nodes * ticks);

  // Error histograms grouped by the suites actually deployed, with mass
  // only from unmeasured (restored) ticks, and internally ordered.
  ASSERT_FALSE(snap.suites.empty());
  std::uint64_t samples = 0;
  for (const SuiteStats& s : snap.suites) {
    samples += s.samples;
    EXPECT_LE(s.err_p50_mw, s.err_p99_mw) << s.suite;
    EXPECT_LE(s.err_p99_mw, s.err_max_mw) << s.suite;
  }
  EXPECT_GT(samples, 0u);
  EXPECT_LE(samples, nodes * ticks);

  // The canonical text form mentions every node and ends with the totals.
  const std::string text = to_string(snap);
  EXPECT_NE(text.find("node 2 "), std::string::npos);
  EXPECT_NE(text.find("totals ticks="), std::string::npos);
}

TEST(ServeDaemonAttribution, TenantSplitsFlowEndToEnd) {
  // A tenant-trained golden: the daemon stages per-cgroup rows from the
  // stream ring, the fleet's attribution GEMM splits each lane, and the
  // seqlock cells publish the split at deciwatt resolution.
  measure::Collector collector;
  const std::vector<sim::Workload> mix{workloads::fft(), workloads::stream()};
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect_tenants(sim::PlatformConfig::arm(), mix,
                                           160, tu::kSeed + 70));
  runs.push_back(collector.collect_tenants(sim::PlatformConfig::arm(), mix,
                                           160, tu::kSeed + 71));
  core::HighRpmConfig gcfg;
  gcfg.dynamic_trr.rnn.epochs = 8;
  gcfg.dynamic_trr.online_finetune = false;
  gcfg.srr.epochs = 20;
  gcfg.tenants = 2;
  gcfg.tenant_srr.epochs = 30;
  core::HighRpm golden(gcfg);
  golden.initial_learning(runs);
  golden.fit_attribution(runs);

  const std::size_t nodes = 2;
  const std::uint64_t ticks = 40;
  DaemonConfig cfg;
  cfg.consumers = 2;
  cfg.ring_capacity = 256;
  Daemon daemon(golden, nodes, tu::node_suites(nodes), cfg);
  daemon.start();
  std::vector<measure::NodeTickStream> streams;
  for (std::size_t i = 0; i < nodes; ++i) {
    streams.emplace_back(sim::PlatformConfig::arm(), mix,
                         tu::kSeed + 3000 + i);
  }
  for (std::uint64_t t = 0; t < ticks; ++t) {
    for (std::size_t i = 0; i < nodes; ++i) {
      EXPECT_EQ(daemon.offer(i, streams[i].next()), OfferResult::kAccepted);
    }
  }
  daemon.quiesce();
  const DaemonSnapshot snap = daemon.snapshot();
  daemon.stop();

  ASSERT_EQ(snap.nodes.size(), nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeStatus& n = snap.nodes[i];
    EXPECT_EQ(n.ticks, ticks);
    ASSERT_EQ(n.tenants, 2u) << "node " << i;
    double sum = 0.0;
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_TRUE(std::isfinite(n.tenant_w[k]));
      EXPECT_GE(n.tenant_w[k], 0.0);
      sum += n.tenant_w[k];
    }
    // Both tenants run real work: the split is non-degenerate and lands in
    // the node's dynamic-power ballpark (deciwatt-quantized).
    EXPECT_GT(n.tenant_w[0], 0.0);
    EXPECT_GT(n.tenant_w[1], 0.0);
    EXPECT_NEAR(sum, n.node_w - golden.config().p_other_w, 0.5 * n.node_w);
    for (std::size_t k = 2; k < kSnapshotMaxTenants; ++k) {
      EXPECT_EQ(n.tenant_w[k], 0.0);
    }
  }
  const std::string text = to_string(snap);
  EXPECT_NE(text.find("tenants=2"), std::string::npos) << text;
  EXPECT_NE(text.find("t0_w="), std::string::npos) << text;
  EXPECT_NE(text.find("t1_w="), std::string::npos) << text;
}

TEST(ServeDaemonAttribution, RejectsHeadWiderThanStreamSlots) {
  // StreamTick's fixed ring slot carries at most kStreamMaxTenants rows;
  // a wider attribution head could never be fed, so the ctor refuses it.
  constexpr std::size_t k = measure::kStreamMaxTenants + 1;
  static_assert(k <= core::kMaxTenants, "widen StreamTick or this test");
  measure::Collector collector;
  std::vector<sim::Workload> mix;
  for (std::size_t i = 0; i < k; ++i) mix.push_back(tu::workload_for_node(i));
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect_tenants(sim::PlatformConfig::arm(), mix,
                                           120, tu::kSeed + 80));
  core::HighRpmConfig gcfg;
  gcfg.dynamic_trr.rnn.epochs = 8;
  gcfg.dynamic_trr.online_finetune = false;
  gcfg.srr.epochs = 20;
  gcfg.tenants = k;
  gcfg.tenant_srr.epochs = 20;
  core::HighRpm golden(gcfg);
  golden.initial_learning(runs);
  golden.fit_attribution(runs);
  EXPECT_THROW(Daemon(golden, 2, tu::node_suites(2)), std::invalid_argument);
}

TEST_F(ServeDaemonTest, OverloadShedsGracefullyWithHeldFallback) {
  // One node, capacity-1 ring, daemon NOT yet started: the first offer is
  // accepted, further predict-only ticks shed, a reading tick exhausts its
  // bounded retry and is dropped. Starting the daemon then drains the one
  // queued tick; the next accepted tick reports the gap and the consumer
  // bridges it with at most held_fallback_cap held steps.
  DaemonConfig cfg;
  cfg.consumers = 1;
  cfg.ring_capacity = 1;
  cfg.held_fallback_cap = 3;
  cfg.offer_retries = 4;  // keep the doomed retry cheap
  Daemon daemon(*golden_, 1, tu::node_suites(1), cfg);

  auto stream = tu::make_stream(0);
  EXPECT_EQ(daemon.offer(0, stream.next()), OfferResult::kAccepted);
  std::uint64_t shed = 0;
  std::uint64_t dropped_readings = 0;
  // Push until we have seen both overload outcomes.
  while (shed < 9 || dropped_readings < 1) {
    measure::StreamTick t = stream.next();
    if (dropped_readings == 0 && shed >= 9) t.has_reading = true;
    const OfferResult r = daemon.offer(0, t);
    ASSERT_NE(r, OfferResult::kAccepted) << "ring should stay full";
    if (r == OfferResult::kShed) ++shed;
    if (r == OfferResult::kDroppedReading) ++dropped_readings;
  }

  daemon.start();
  daemon.quiesce();  // drains the single queued tick (gap = 0)
  // The next accepted tick carries the accumulated gap.
  EXPECT_EQ(daemon.offer(0, stream.next()), OfferResult::kAccepted);
  daemon.quiesce();
  const DaemonSnapshot snap = daemon.snapshot();
  daemon.stop();

  const NodeStatus& n = snap.nodes.at(0);
  EXPECT_EQ(n.shed, shed);
  EXPECT_EQ(n.dropped_readings, dropped_readings);
  EXPECT_GE(n.backpressure, 1u);
  EXPECT_EQ(n.accepted, 2u);
  EXPECT_EQ(n.held, 3u);  // gap >= 10 clamped to held_fallback_cap
  EXPECT_EQ(n.ticks, 2u + 3u);  // two real ticks + three held steps
  EXPECT_TRUE(std::isfinite(n.node_w));
  EXPECT_GT(snap.total_shed, 0u);
}

TEST_F(ServeDaemonTest, LiveQueriesWhileIngesting) {
  // Producer thread floods; the test thread queries concurrently. Every
  // snapshot observed mid-flight must be internally coherent: totals equal
  // the row sums, accounting identity holds per node, estimates are never
  // NaN once a node has stepped.
  const std::size_t nodes = 4;
  DaemonConfig cfg;
  cfg.consumers = 2;
  cfg.ring_capacity = 8;  // small: force real shedding under flood
  cfg.offer_retries = 16;
  Daemon daemon(*golden_, nodes, tu::node_suites(nodes), cfg);
  daemon.start();

  std::vector<measure::NodeTickStream> streams;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < nodes; ++i) {
    streams.push_back(tu::make_stream(i));
    ids.push_back(i);
  }
  Producer::Config pcfg;
  pcfg.ticks_per_node = 400;
  pcfg.burst_len = 32;
  pcfg.pause_us = 0;  // flood
  Producer producer(daemon, ids, std::move(streams), pcfg);
  producer.start();

  for (int iter = 0; iter < 50; ++iter) {
    const DaemonSnapshot snap = daemon.snapshot();
    std::uint64_t offered = 0, accepted = 0, shed = 0, dropped = 0;
    for (const NodeStatus& n : snap.nodes) {
      // Reads race the producer, but each node's counters are bumped
      // offered-first, outcome-second, so outcomes never exceed offers.
      EXPECT_LE(n.accepted + n.shed + n.dropped_readings, n.offered);
      if (n.ticks > 0) {
        EXPECT_TRUE(std::isfinite(n.node_w));
        EXPECT_TRUE(std::isfinite(n.cpu_w));
        EXPECT_TRUE(std::isfinite(n.mem_w));
      }
      offered += n.offered;
      accepted += n.accepted;
      shed += n.shed;
      dropped += n.dropped_readings;
    }
    EXPECT_EQ(snap.total_offered, offered);
    EXPECT_EQ(snap.total_accepted, accepted);
    EXPECT_EQ(snap.total_shed, shed);
    EXPECT_EQ(snap.total_dropped_readings, dropped);
    (void)to_string(snap);  // formatting a live snapshot is safe too
  }

  producer.join();
  producer.join();  // idempotent
  daemon.quiesce();
  const DaemonSnapshot last = daemon.snapshot();
  daemon.stop();
  EXPECT_EQ(last.total_offered, nodes * 400u);
  EXPECT_EQ(last.total_accepted + last.total_shed +
                last.total_dropped_readings,
            last.total_offered);
  for (const NodeStatus& n : last.nodes) {
    EXPECT_TRUE(std::isfinite(n.node_w));
  }
}

}  // namespace
}  // namespace highrpm::serve
