// Model-checked serve::BasicNodeStatusCell — the daemon's seqlock, same
// template production ships, instantiated with verify::ModelBackend. The
// fence-based publish protocol (odd seq, release fence, relaxed payload,
// release even seq) is exactly the kind of code an SC-interleaving tool
// cannot falsify; the simulated weak memory here can (see the stripped-
// fence mutants in mutant_test.cpp for the converse direction).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "highrpm/serve/snapshot.hpp"
#include "highrpm/verify/verify.hpp"

namespace hv = highrpm::verify;

namespace {

using ModelCell = highrpm::serve::BasicNodeStatusCell<hv::ModelBackend>;
using Value = ModelCell::Value;

/// Writer publishes generations g = 1..gens where every field is a fixed
/// function of g; readers check the returned set of fields is coherent
/// (all from the same generation). Doubles are small integers, so == is
/// exact.
Value gen_value(std::uint64_t g) {
  Value v;
  v.ticks = g;
  v.node_w = static_cast<double>(2 * g);
  v.cpu_w = static_cast<double>(3 * g);
  v.mem_w = static_cast<double>(5 * g);
  v.measured = (g % 2) == 1;
  v.adapt = 7 * g;
  v.tenant_lo = 11 * g;
  v.tenant_hi = 13 * g;
  return v;
}

void check_coherent(const Value& v) {
  const std::uint64_t g = v.ticks;
  hv::check(v.node_w == static_cast<double>(2 * g), "torn node_w");
  hv::check(v.cpu_w == static_cast<double>(3 * g), "torn cpu_w");
  hv::check(v.mem_w == static_cast<double>(5 * g), "torn mem_w");
  hv::check(v.measured == ((g % 2) == 1), "torn measured");
  hv::check(v.adapt == 7 * g, "torn adapt");
  hv::check(v.tenant_lo == 11 * g, "torn tenant_lo");
  hv::check(v.tenant_hi == 13 * g, "torn tenant_hi");
}

void seqlock_setup(hv::Env& env, std::uint64_t gens, int readers,
                   std::uint64_t initial_seq) {
  auto cell = std::make_shared<ModelCell>(initial_seq);
  env.thread([cell, gens] {
    for (std::uint64_t g = 1; g <= gens; ++g) cell->publish(gen_value(g));
  });
  for (int i = 0; i < readers; ++i) {
    env.thread([cell] { check_coherent(cell->read()); });
  }
}

TEST(SeqlockVerify, ExhaustiveTwoPublishesOneReader) {
  // preemption_bound 2 (was 3 with the narrower 6-field payload): the two
  // tenant words widened every pass by 2 relaxed ops, and bound 3 now
  // exceeds the execution budget. Two preemptions still cover the
  // interesting schedules — writer lands mid-read (forced retry) and
  // reader lands mid-publish (odd-seq reject).
  hv::Options opts;
  opts.preemption_bound = 2;
  opts.stale_window = 2;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    seqlock_setup(env, 2, 1, 0);
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete) << "2-publish/1-reader shape must be exhausted";
  EXPECT_GT(r.executions, 1u);
}

TEST(SeqlockVerify, RandomSweepTwoReaders) {
  hv::Options opts;
  opts.mode = hv::Options::Mode::kRandom;
  opts.iterations = 300;
  opts.seed = 31;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    seqlock_setup(env, 3, 2, 0);
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_EQ(r.executions, 300u);
}

TEST(SeqlockVerify, SequenceCounterWraparoundIsCoherent) {
  // Start the (even) sequence counter 2 below 2^64 so the two publishes
  // drive it through UINT64_MAX-1 -> ... -> 0 -> 2. The protocol depends
  // only on parity and equality, never on magnitude, so wrap must be
  // invisible — this test pins that.
  hv::Options opts;
  opts.preemption_bound = 2;  // see ExhaustiveTwoPublishesOneReader
  opts.stale_window = 2;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    seqlock_setup(env, 2, 1, UINT64_MAX - 1);
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete) << "wraparound shape must be exhausted";
}

TEST(SeqlockVerify, ReaderRetriesAreBoundedByWriterProgress) {
  // Livelock bound: with a writer that publishes a bounded number of
  // generations, a reader can be forced to retry at most once per publish
  // plus one final clean pass. The scheduler's per-thread op ceiling over
  // ALL explored executions quantifies that: reads are 11 instrumented ops
  // per clean pass (seq, 8 payload loads, fence, recheck), so even the
  // worst schedule must stay within a small multiple of the publish count
  // — no unbounded spinning exists in the explored space. (A true reader
  // livelock — writer forever in flight — is impossible here because the
  // writer terminates; the checker's yield-parking plus this ceiling pin
  // the bound.)
  hv::Options opts;
  opts.preemption_bound = 2;  // see ExhaustiveTwoPublishesOneReader
  opts.stale_window = 2;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    seqlock_setup(env, 2, 1, 0);
  });
  ASSERT_FALSE(r.failed) << r.report();
  ASSERT_TRUE(r.complete);
  // Thread 1 is the reader (thread 0 the writer). Clean pass = 11 ops;
  // each of the 2 publishes can force at most one retry (11 ops) plus a
  // yield. Ceiling: 11 * (1 + 2) + 2 yields + slack.
  const std::uint64_t reader_ops = r.max_ops_per_thread[1];
  EXPECT_GT(reader_ops, 0u);
  EXPECT_LE(reader_ops, 52u)
      << "reader retried more than writer progress can explain";
}

TEST(SeqlockVerify, ProductionBackendStillWorksSingleThreaded) {
  highrpm::serve::NodeStatusCell cell;
  highrpm::serve::NodeStatusCell::Value v;
  v.ticks = 41;
  v.node_w = 10.5;
  v.cpu_w = 7.25;
  v.mem_w = 3.25;
  v.measured = true;
  v.adapt = highrpm::serve::pack_adapt_state(2, 5, 123);
  const double watts[6] = {12.34, 0.0, 100.0, 6553.5, 7000.0, 3.0};
  v.tenant_lo = highrpm::serve::pack_tenant_word(watts, 6, 0);
  v.tenant_hi = highrpm::serve::pack_tenant_word(watts, 6, 1);
  cell.publish(v);
  const auto got = cell.read();
  EXPECT_EQ(got.ticks, 41u);
  EXPECT_EQ(got.node_w, 10.5);
  EXPECT_EQ(got.cpu_w, 7.25);
  EXPECT_EQ(got.mem_w, 3.25);
  EXPECT_TRUE(got.measured);
  EXPECT_EQ(highrpm::serve::adapt_mode_of(got.adapt), 2u);
  EXPECT_EQ(highrpm::serve::adapt_changes_of(got.adapt), 5u);
  EXPECT_EQ(highrpm::serve::adapt_cheap_of(got.adapt), 123u);
  using highrpm::serve::tenant_watts_of;
  // Deciwatt round-trip, saturation at 6553.5 W, zero padding past count.
  EXPECT_EQ(tenant_watts_of(got.tenant_lo, got.tenant_hi, 0), 12.3);
  EXPECT_EQ(tenant_watts_of(got.tenant_lo, got.tenant_hi, 1), 0.0);
  EXPECT_EQ(tenant_watts_of(got.tenant_lo, got.tenant_hi, 2), 100.0);
  EXPECT_EQ(tenant_watts_of(got.tenant_lo, got.tenant_hi, 3), 6553.5);
  EXPECT_EQ(tenant_watts_of(got.tenant_lo, got.tenant_hi, 4), 6553.5);
  EXPECT_EQ(tenant_watts_of(got.tenant_lo, got.tenant_hi, 5), 3.0);
  EXPECT_EQ(tenant_watts_of(got.tenant_lo, got.tenant_hi, 6), 0.0);
  EXPECT_EQ(tenant_watts_of(got.tenant_lo, got.tenant_hi, 7), 0.0);
}

}  // namespace
