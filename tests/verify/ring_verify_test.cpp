// Model-checked serve::SpscRing — the SAME template the daemon ships,
// instantiated with verify::ModelBackend so every interleaving and
// weak-memory read choice of the producer/consumer protocol is explored
// deterministically. Exhaustive at small shapes (capacity 1-2, a few ops),
// seeded-random sweeps above.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "highrpm/serve/spsc_ring.hpp"
#include "highrpm/verify/verify.hpp"

namespace hv = highrpm::verify;

namespace {

using ModelRing = highrpm::serve::SpscRing<int, hv::ModelBackend>;

/// Producer pushes 1..total (retrying on full via yield), consumer pops
/// until it has seen `total` items; finally checks FIFO order, no loss, no
/// duplication. Wrapping is exercised whenever total > capacity.
void fifo_setup(hv::Env& env, std::size_t capacity, int total) {
  struct Shared {
    explicit Shared(std::size_t cap) : ring(cap) {}
    ModelRing ring;
    std::vector<int> got;
  };
  auto s = std::make_shared<Shared>(capacity);
  env.thread([s, total] {
    for (int i = 1; i <= total; ++i) {
      while (!s->ring.try_push(i)) hv::ModelBackend::yield();
    }
  });
  env.thread([s, total] {
    int item = 0;
    int seen = 0;
    while (seen < total) {
      if (s->ring.try_pop(item)) {
        s->got.push_back(item);  // consumer-local: no model access needed
        ++seen;
      } else {
        hv::ModelBackend::yield();
      }
    }
  });
  env.finally([s, total] {
    hv::check(s->got.size() == static_cast<std::size_t>(total),
              "item count mismatch");
    for (int i = 0; i < total; ++i) {
      hv::check(s->got[static_cast<std::size_t>(i)] == i + 1,
                "FIFO order violated / item lost or duplicated");
    }
    hv::check(s->ring.empty(), "ring not drained");
  });
}

TEST(RingVerify, ExhaustiveFifoCapacityOneTwoItems) {
  // Capacity 1 with 2 items forces a full wrap of both indices through
  // every interleaving; the strictest shape that stays exhaustible.
  hv::Options opts;
  opts.preemption_bound = 4;
  opts.stale_window = 2;
  const auto r = hv::explore(
      opts, [](hv::Env& env) { fifo_setup(env, 1, 2); });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete) << "capacity-1 shape must be fully explored";
  EXPECT_GT(r.executions, 1u);
}

TEST(RingVerify, ExhaustiveFifoCapacityTwoFourItems) {
  hv::Options opts;
  opts.preemption_bound = 2;  // keeps the 4-item shape exhaustible
  opts.stale_window = 2;
  const auto r = hv::explore(
      opts, [](hv::Env& env) { fifo_setup(env, 2, 4); });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete) << "bounded 4-item shape must be fully explored";
}

TEST(RingVerify, RandomSweepLargerShape) {
  hv::Options opts;
  opts.mode = hv::Options::Mode::kRandom;
  opts.iterations = 300;
  opts.seed = 11;
  const auto r = hv::explore(
      opts, [](hv::Env& env) { fifo_setup(env, 2, 8); });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_EQ(r.executions, 300u);
}

TEST(RingVerify, SizeObserverNeverUnderflows) {
  // Three model threads: producer, consumer, and a size() observer. The
  // head-before-tail load order pins tail >= head, so size() can never
  // wrap to ~2^64 — the bug this suite was built to catch (see the
  // tail-first mutant in mutant_test.cpp). A stale head CAN transiently
  // report more than the true occupancy, so the upper bound asserted here
  // is the total number of items ever pushed, NOT the capacity.
  struct Shared {
    Shared() : ring(1) {}
    ModelRing ring;
  };
  constexpr int kTotal = 2;
  hv::Options opts;
  opts.preemption_bound = 2;  // 3 threads: bound 2 keeps it exhaustible
  opts.stale_window = 2;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto s = std::make_shared<Shared>();
    env.thread([s] {
      for (int i = 1; i <= kTotal; ++i) {
        while (!s->ring.try_push(i)) hv::ModelBackend::yield();
      }
    });
    env.thread([s] {
      int item = 0;
      int seen = 0;
      while (seen < kTotal) {
        if (s->ring.try_pop(item)) {
          ++seen;
        } else {
          hv::ModelBackend::yield();
        }
      }
    });
    env.thread([s] {
      // One observation keeps the 3-thread shape exhaustible; the random
      // sweep below covers repeated observations.
      const std::size_t n = s->ring.size();
      hv::check(n <= kTotal, "size() underflowed (or counted phantoms)");
    });
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete) << "bounded observer shape must be exhausted";
}

TEST(RingVerify, SizeObserverRandomSweep) {
  struct Shared {
    Shared() : ring(2) {}
    ModelRing ring;
  };
  constexpr int kTotal = 6;
  hv::Options opts;
  opts.mode = hv::Options::Mode::kRandom;
  opts.iterations = 200;
  opts.seed = 23;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto s = std::make_shared<Shared>();
    env.thread([s] {
      for (int i = 1; i <= kTotal; ++i) {
        while (!s->ring.try_push(i)) hv::ModelBackend::yield();
      }
    });
    env.thread([s] {
      int item = 0;
      int seen = 0;
      while (seen < kTotal) {
        if (s->ring.try_pop(item)) {
          ++seen;
        } else {
          hv::ModelBackend::yield();
        }
      }
    });
    env.thread([s] {
      for (int i = 0; i < 4; ++i) {
        hv::check(s->ring.size() <= kTotal, "size() underflowed");
      }
    });
  });
  EXPECT_FALSE(r.failed) << r.report();
}

TEST(RingVerify, ProductionBackendStillWorksSingleThreaded) {
  // The default-backend instantiation in the same TU: templatization must
  // not have changed the plain std::atomic ring's semantics.
  highrpm::serve::SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  EXPECT_EQ(ring.size(), 2u);
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

}  // namespace
