// Seeded-broken variants of the shipped lock-free protocols, used by
// mutant_test.cpp to prove the model checker actually catches the bug
// classes it exists for. Each mutant mirrors the production source
// (spsc_ring.hpp / snapshot.hpp) over verify::ModelBackend with exactly
// one weakening, selected by template parameters so the UNmutated
// configuration doubles as a sanity check that the mirror itself is
// faithful (it must pass the same sweeps the production template does).
//
// If a mutant stops being caught, the checker has lost the corresponding
// detection capability — ctest -L verify fails.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "highrpm/verify/verify.hpp"

namespace highrpm::verify_tests {

namespace hv = highrpm::verify;

/// SPSC ring mirror. PubOrder weakens the producer's tail publication,
/// PopOrder the consumer's head publication; SizeHeadFirst false restores
/// the historical tail-before-head load order in size() whose transient
/// underflow this PR fixed.
template <std::memory_order PubOrder, std::memory_order PopOrder,
          bool SizeHeadFirst>
class MutantRing {
 public:
  explicit MutantRing(std::size_t capacity) : capacity_(capacity) {
    slots_.resize(capacity_);  // power-of-two capacity assumed by tests
  }

  bool try_push(int item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == capacity_) return false;
    slots_[tail & (capacity_ - 1)].write(item);
    tail_.store(tail + 1, PubOrder);  // mutant: relaxed loses the publish
    return true;
  }

  bool try_pop(int& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = slots_[head & (capacity_ - 1)].read();
    head_.store(head + 1, PopOrder);  // mutant: relaxed loses the handback
    return true;
  }

  std::size_t size() const {
    if constexpr (SizeHeadFirst) {
      const std::size_t head = head_.load(std::memory_order_acquire);
      const std::size_t tail = tail_.load(std::memory_order_acquire);
      return tail - head;
    } else {
      // The pre-fix order: a stale tail against a fresher head wraps the
      // subtraction to ~2^64.
      const std::size_t tail = tail_.load(std::memory_order_acquire);
      const std::size_t head = head_.load(std::memory_order_acquire);
      return tail - head;
    }
  }

 private:
  std::size_t capacity_;
  std::vector<hv::ModelRaw<int>> slots_;
  hv::ModelAtomic<std::size_t> head_{0};
  hv::ModelAtomic<std::size_t> tail_{0};
};

using CleanRing =
    MutantRing<std::memory_order_release, std::memory_order_release, true>;
using RingWeakPublish =
    MutantRing<std::memory_order_relaxed, std::memory_order_release, true>;
using RingWeakHandback =
    MutantRing<std::memory_order_release, std::memory_order_relaxed, true>;
using RingTailFirstSize =
    MutantRing<std::memory_order_release, std::memory_order_release, false>;

/// Seqlock mirror of BasicNodeStatusCell with a 2-field payload (enough to
/// tear). ReleaseFence false strips the writer's release fence; FinalRelease
/// false weakens the closing even-seq store to relaxed.
template <bool ReleaseFence, bool FinalRelease>
class MutantSeqlock {
 public:
  struct Value {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  void publish(const Value& v) {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);
    if constexpr (ReleaseFence) {
      hv::ModelBackend::fence(std::memory_order_release);
    }
    a_.store(v.a, std::memory_order_relaxed);
    b_.store(v.b, std::memory_order_relaxed);
    seq_.store(s + 2, FinalRelease ? std::memory_order_release
                                   : std::memory_order_relaxed);
  }

  Value read() const {
    Value v;
    for (;;) {
      const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1) {
        hv::ModelBackend::yield();
        continue;
      }
      v.a = a_.load(std::memory_order_relaxed);
      v.b = b_.load(std::memory_order_relaxed);
      hv::ModelBackend::fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) return v;
      hv::ModelBackend::yield();
    }
  }

 private:
  mutable hv::ModelAtomic<std::uint64_t> seq_{0};
  hv::ModelAtomic<std::uint64_t> a_{0};
  hv::ModelAtomic<std::uint64_t> b_{0};
};

using CleanSeqlock = MutantSeqlock<true, true>;
using SeqlockNoFence = MutantSeqlock<false, true>;
using SeqlockWeakClose = MutantSeqlock<true, false>;

/// Counter mirror with a selectable lost-update bug: Atomic false replaces
/// the fetch_add with a load+store pair.
template <bool Atomic>
class MutantCounter {
 public:
  void add(std::uint64_t n) {
    if constexpr (Atomic) {
      value_.fetch_add(n, std::memory_order_relaxed);
    } else {
      const std::uint64_t v = value_.load(std::memory_order_relaxed);
      value_.store(v + n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  mutable hv::ModelAtomic<std::uint64_t> value_{0};
};

}  // namespace highrpm::verify_tests
