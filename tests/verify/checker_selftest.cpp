// Self-tests for the verify:: model checker itself: the scheduler must
// catch known-bad protocols, stay quiet on known-good ones, exhaust small
// decision spaces, reproduce random-mode failures from the printed seed,
// and bound livelocks. Everything the primitive suites rely on is pinned
// here first, so a regression in the checker fails loudly rather than
// silently passing broken primitives.
#include <gtest/gtest.h>

#include <memory>

#include "highrpm/verify/verify.hpp"

namespace hv = highrpm::verify;

namespace {

TEST(CheckerSelftest, RawWriteWriteRaceIsCaught) {
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto cell = std::make_shared<hv::ModelRaw<int>>();
    env.thread([cell] { cell->write(1); });
    env.thread([cell] { cell->write(2); });
  });
  ASSERT_TRUE(r.failed) << r.report();
  EXPECT_NE(r.reason.find("data race"), std::string::npos) << r.report();
}

TEST(CheckerSelftest, RawReadWriteRaceIsCaught) {
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto cell = std::make_shared<hv::ModelRaw<int>>();
    env.thread([cell] { cell->write(1); });
    env.thread([cell] { (void)cell->read(); });
  });
  ASSERT_TRUE(r.failed) << r.report();
  EXPECT_NE(r.reason.find("data race"), std::string::npos) << r.report();
}

TEST(CheckerSelftest, ReleaseAcquirePublishIsCleanAndExhausted) {
  struct Shared {
    hv::ModelRaw<int> data;
    hv::ModelAtomic<int> flag{0};
  };
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto s = std::make_shared<Shared>();
    env.thread([s] {
      s->data.write(42);
      s->flag.store(1, std::memory_order_release);
    });
    env.thread([s] {
      if (s->flag.load(std::memory_order_acquire) == 1) {
        hv::check(s->data.read() == 42, "stale data after acquire");
      }
    });
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete) << "small shape must be fully explored";
}

TEST(CheckerSelftest, RelaxedPublishIsCaughtDespiteScInterleavings) {
  // Under any sequentially consistent interleaving this protocol looks
  // fine — only the simulated weak-memory rules (a relaxed store carries
  // no message) expose the unordered data read. This is the capability
  // that separates the checker from TSan-on-an-SC-execution.
  struct Shared {
    hv::ModelRaw<int> data;
    hv::ModelAtomic<int> flag{0};
  };
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto s = std::make_shared<Shared>();
    env.thread([s] {
      s->data.write(42);
      s->flag.store(1, std::memory_order_relaxed);  // BUG: no release
    });
    env.thread([s] {
      if (s->flag.load(std::memory_order_acquire) == 1) {
        (void)s->data.read();
      }
    });
  });
  ASSERT_TRUE(r.failed) << r.report();
  EXPECT_NE(r.reason.find("data race"), std::string::npos) << r.report();
}

TEST(CheckerSelftest, FenceBasedPublishIsClean) {
  // The seqlock idiom: relaxed stores ordered by standalone fences.
  struct Shared {
    hv::ModelRaw<int> data;
    hv::ModelAtomic<int> flag{0};
  };
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto s = std::make_shared<Shared>();
    env.thread([s] {
      s->data.write(7);
      hv::ModelBackend::fence(std::memory_order_release);
      s->flag.store(1, std::memory_order_relaxed);
    });
    env.thread([s] {
      if (s->flag.load(std::memory_order_relaxed) == 1) {
        hv::ModelBackend::fence(std::memory_order_acquire);
        hv::check(s->data.read() == 7, "fence publish failed");
      }
    });
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete);
}

TEST(CheckerSelftest, LoadStoreLostUpdateFoundExhaustively) {
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto c = std::make_shared<hv::ModelAtomic<int>>(0);
    const auto inc = [c] {
      const int v = c->load(std::memory_order_relaxed);
      c->store(v + 1, std::memory_order_relaxed);  // BUG: not atomic
    };
    env.thread(inc);
    env.thread(inc);
    env.finally([c] {
      hv::check(c->load(std::memory_order_relaxed) == 2, "lost update");
    });
  });
  ASSERT_TRUE(r.failed) << r.report();
  EXPECT_NE(r.reason.find("lost update"), std::string::npos) << r.report();
}

TEST(CheckerSelftest, FetchAddNeverLosesUpdates) {
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto c = std::make_shared<hv::ModelAtomic<int>>(0);
    const auto inc = [c] { c->fetch_add(1, std::memory_order_relaxed); };
    env.thread(inc);
    env.thread(inc);
    env.finally([c] {
      hv::check(c->load(std::memory_order_relaxed) == 2, "fetch_add lost");
    });
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete);
}

TEST(CheckerSelftest, RandomModeFailurePrintsSeedAndReplayReproduces) {
  const auto setup = [](hv::Env& env) {
    auto c = std::make_shared<hv::ModelAtomic<int>>(0);
    const auto inc = [c] {
      const int v = c->load(std::memory_order_relaxed);
      c->store(v + 1, std::memory_order_relaxed);
    };
    env.thread(inc);
    env.thread(inc);
    env.finally([c] {
      hv::check(c->load(std::memory_order_relaxed) == 2, "lost update");
    });
  };
  hv::Options opts;
  opts.mode = hv::Options::Mode::kRandom;
  opts.iterations = 128;
  opts.seed = 7;
  const auto r = hv::explore(opts, setup);
  ASSERT_TRUE(r.failed) << r.report();
  ASSERT_NE(r.failing_seed, 0u) << "random failure must carry a seed";

  hv::Options replay = opts;
  replay.replay_seed = r.failing_seed;
  const auto r2 = hv::explore(replay, setup);
  EXPECT_TRUE(r2.failed) << "replay from the printed seed must reproduce";
  EXPECT_EQ(r2.executions, 1u) << "replay runs exactly one iteration";
  EXPECT_EQ(r2.reason, r.reason);
}

TEST(CheckerSelftest, LivelockDetectedWhenOnlyYieldersRemain) {
  // One thread spins (load + yield) on a flag nobody will ever set; the
  // other exits immediately. Once the second thread is done, every
  // unfinished thread is parked in yield() — a livelock, on every
  // schedule, so exhaustive mode fails on the first execution.
  struct Shared {
    hv::ModelAtomic<int> never_set{0};
  };
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto s = std::make_shared<Shared>();
    env.thread([s] {
      while (s->never_set.load(std::memory_order_relaxed) == 0) {
        hv::ModelBackend::yield();
      }
    });
    env.thread([] {});  // never sets the flag
  });
  ASSERT_TRUE(r.failed) << r.report();
  EXPECT_NE(r.reason.find("livelock"), std::string::npos) << r.report();
}

TEST(CheckerSelftest, OpBudgetBackstopsNonYieldingSpin) {
  struct Shared {
    hv::ModelAtomic<int> never_set{0};
  };
  hv::Options opts;
  opts.mode = hv::Options::Mode::kRandom;
  opts.iterations = 1;
  opts.max_ops = 200;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto s = std::make_shared<Shared>();
    env.thread([s] {
      while (s->never_set.load(std::memory_order_relaxed) == 0) {
        // no yield: a hard spin the budget must cut off
      }
    });
  });
  ASSERT_TRUE(r.failed) << r.report();
  EXPECT_NE(r.reason.find("budget"), std::string::npos) << r.report();
}

TEST(CheckerSelftest, PreemptionBoundZeroStillRunsAllThreads) {
  // With no preemptions allowed, each thread still runs to completion in
  // registration order — the bound limits forced switches, not coverage.
  hv::Options opts;
  opts.preemption_bound = 0;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto c = std::make_shared<hv::ModelAtomic<int>>(0);
    env.thread([c] { c->fetch_add(1, std::memory_order_relaxed); });
    env.thread([c] { c->fetch_add(1, std::memory_order_relaxed); });
    env.finally([c] {
      hv::check(c->load(std::memory_order_relaxed) == 2, "thread skipped");
    });
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete);
}

TEST(CheckerSelftest, FailureReportCarriesEventTrace) {
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto cell = std::make_shared<hv::ModelRaw<int>>();
    env.thread([cell] { cell->write(1); });
    env.thread([cell] { cell->write(2); });
  });
  ASSERT_TRUE(r.failed);
  const std::string report = r.report();
  EXPECT_NE(report.find("event log"), std::string::npos) << report;
  EXPECT_NE(report.find("raw-write"), std::string::npos) << report;
}

}  // namespace
