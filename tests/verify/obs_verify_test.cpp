// Model-checked obs primitives — the SAME templates production ships
// (BasicCounter / BasicHistogram), instantiated with verify::ModelBackend.
// Counters must never lose updates and must read monotonically; histogram
// stats() must stay internally coherent while recorders run.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "highrpm/obs/counter.hpp"
#include "highrpm/obs/histogram.hpp"
#include "highrpm/verify/verify.hpp"

namespace hv = highrpm::verify;

namespace {

using ModelCounter = highrpm::obs::BasicCounter<hv::ModelBackend>;

TEST(ObsVerify, CounterNeverLosesUpdatesExhaustively) {
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto c = std::make_shared<ModelCounter>();
    env.thread([c] {
      c->add(1);
      c->add(2);
    });
    env.thread([c] { c->add(4); });
    env.finally([c] { hv::check(c->value() == 7, "counter lost an add"); });
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete) << "3-add counter shape must be exhausted";
}

TEST(ObsVerify, CounterReadsAreMonotoneExhaustively) {
  // A concurrent reader polling value() must observe a non-decreasing
  // sequence: fetch_add history entries only grow, and the per-thread
  // coherence floor forbids re-reading an older entry.
  hv::Options opts;
  opts.preemption_bound = 3;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto c = std::make_shared<ModelCounter>();
    env.thread([c] {
      c->add(1);
      c->add(1);
      c->add(1);
    });
    env.thread([c] {
      std::uint64_t prev = 0;
      for (int i = 0; i < 3; ++i) {
        const std::uint64_t v = c->value();
        hv::check(v >= prev, "counter value went backwards");
        hv::check(v <= 3, "counter overshot the adds");
        prev = v;
      }
    });
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete) << "monotone-reader shape must be exhausted";
}

#if HIGHRPM_OBS_ENABLED

using ModelHistogram = highrpm::obs::BasicHistogram<hv::ModelBackend>;

TEST(ObsVerify, HistogramCountMatchesRecordsExhaustively) {
  hv::Options opts;
  opts.preemption_bound = 2;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto h = std::make_shared<ModelHistogram>();
    env.thread([h] { h->record(3); });
    env.thread([h] { h->record(100); });
    env.finally([h] {
      hv::check(h->count() == 2, "histogram lost a record");
      hv::check(h->sum() == 103, "histogram sum mismatch");
      hv::check(h->min() == 3, "histogram min wrong");
      hv::check(h->max() == 100, "histogram max wrong");
    });
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete) << "2-record histogram shape must be exhausted";
}

TEST(ObsVerify, HistogramStatsStayCoherentUnderConcurrentRecords) {
  // stats() freezes the bucket array and derives count + quantiles from
  // the same frozen mass: even mid-record, the read-out must satisfy
  // count <= records-so-far, p50 <= p99 <= max, min <= p50. Random sweep:
  // the 65-bucket freeze loop makes the shape too big to exhaust.
  hv::Options opts;
  opts.mode = hv::Options::Mode::kRandom;
  opts.iterations = 120;
  opts.seed = 17;
  opts.max_ops = 200000;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto h = std::make_shared<ModelHistogram>();
    env.thread([h] {
      h->record(4);
      h->record(1000);
    });
    env.thread([h] {
      const auto s = h->stats();
      hv::check(s.count <= 2, "stats count overshot");
      hv::check(s.p50 <= s.p90, "p50 > p90");
      hv::check(s.p90 <= s.p99, "p90 > p99");
      hv::check(s.p99 <= s.max, "p99 > max");
      hv::check(s.min <= s.max, "min > max");
      if (s.count == 0) {
        hv::check(s.p99 == 0, "empty histogram with nonzero quantile");
      }
    });
  });
  EXPECT_FALSE(r.failed) << r.report();
}

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace
