// Mutation-detection suite: every seeded-broken protocol variant in
// mutant_fixtures.hpp MUST be caught by the model checker, and each clean
// mirror configuration MUST pass the same sweep — otherwise the checker
// (or the mirror) has regressed and ctest -L verify fails.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "mutant_fixtures.hpp"

namespace hv = highrpm::verify;
namespace hvt = highrpm::verify_tests;

namespace {

// ---------------------------------------------------------------------
// Ring: producer pushes 1..total through capacity 1, consumer pops all.

template <typename Ring>
void ring_setup(hv::Env& env, int total) {
  struct Shared {
    Shared() : ring(1) {}
    Ring ring;
  };
  auto s = std::make_shared<Shared>();
  env.thread([s, total] {
    for (int i = 1; i <= total; ++i) {
      while (!s->ring.try_push(i)) hv::ModelBackend::yield();
    }
  });
  env.thread([s, total] {
    int item = 0;
    int expect = 1;
    while (expect <= total) {
      if (s->ring.try_pop(item)) {
        hv::check(item == expect, "FIFO order violated");
        ++expect;
      } else {
        hv::ModelBackend::yield();
      }
    }
  });
}

template <typename Ring>
hv::Result explore_ring(int total) {
  hv::Options opts;
  opts.preemption_bound = 4;
  opts.stale_window = 2;
  return hv::explore(
      opts, [total](hv::Env& env) { ring_setup<Ring>(env, total); });
}

TEST(MutantRing, CleanMirrorPassesExhaustively) {
  const auto r = explore_ring<hvt::CleanRing>(2);
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete);
}

TEST(MutantRing, WeakTailPublishIsCaught) {
  // tail_.store(..., relaxed): the consumer's acquire load of tail_ no
  // longer synchronizes with the slot write — a data race on the slot.
  const auto r = explore_ring<hvt::RingWeakPublish>(2);
  ASSERT_TRUE(r.failed) << "mutant survived — checker lost its teeth";
  EXPECT_NE(r.reason.find("data race"), std::string::npos) << r.report();
}

TEST(MutantRing, WeakHeadHandbackIsCaught) {
  // head_.store(..., relaxed): the producer's acquire load of head_ no
  // longer synchronizes with the consumer's slot read, so the wrapping
  // push (capacity 1, item 2 reuses slot 0) races the consumer's read.
  const auto r = explore_ring<hvt::RingWeakHandback>(2);
  ASSERT_TRUE(r.failed) << "mutant survived — checker lost its teeth";
  EXPECT_NE(r.reason.find("data race"), std::string::npos) << r.report();
}

TEST(MutantRing, TailFirstSizeUnderflowIsCaught) {
  // The pre-fix size() (tail loaded before head): an observer holding a
  // stale tail against a fresher head wraps to ~2^64. This pins the
  // SpscRing::size() fix made in this PR — reverting it must fail here.
  struct Shared {
    Shared() : ring(1) {}
    hvt::RingTailFirstSize ring;
  };
  constexpr int kTotal = 2;
  hv::Options opts;
  opts.preemption_bound = 4;
  opts.stale_window = 2;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto s = std::make_shared<Shared>();
    env.thread([s] {
      for (int i = 1; i <= kTotal; ++i) {
        while (!s->ring.try_push(i)) hv::ModelBackend::yield();
      }
    });
    env.thread([s] {
      int item = 0;
      int seen = 0;
      while (seen < kTotal) {
        if (s->ring.try_pop(item)) {
          ++seen;
        } else {
          hv::ModelBackend::yield();
        }
      }
    });
    env.thread([s] {
      for (int i = 0; i < 2; ++i) {
        hv::check(s->ring.size() <= kTotal, "size() underflowed");
      }
    });
  });
  ASSERT_TRUE(r.failed) << "mutant survived — checker lost its teeth";
  EXPECT_NE(r.reason.find("underflow"), std::string::npos) << r.report();
}

// ---------------------------------------------------------------------
// Seqlock: writer publishes generations with b = 10 * a; readers must
// never see a mixed-generation pair.

template <typename Cell>
void seqlock_setup(hv::Env& env, std::uint64_t gens) {
  auto cell = std::make_shared<Cell>();
  env.thread([cell, gens] {
    for (std::uint64_t g = 1; g <= gens; ++g) {
      cell->publish({g, 10 * g});
    }
  });
  env.thread([cell] {
    const auto v = cell->read();
    hv::check(v.b == 10 * v.a, "torn seqlock read");
  });
}

template <typename Cell>
hv::Result explore_seqlock(std::uint64_t gens) {
  hv::Options opts;
  opts.preemption_bound = 3;
  opts.stale_window = 2;
  return hv::explore(
      opts, [gens](hv::Env& env) { seqlock_setup<Cell>(env, gens); });
}

TEST(MutantSeqlock, CleanMirrorPassesExhaustively) {
  const auto r = explore_seqlock<hvt::CleanSeqlock>(2);
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete);
}

TEST(MutantSeqlock, StrippedReleaseFenceIsCaught) {
  // Without the writer's release fence the payload stores carry no
  // ordering: a reader can pair a fresh a_ with a stale b_ behind a clean
  // double seq check. Under any SC interleaving this protocol looks
  // correct — only the weak-memory simulation exposes it.
  const auto r = explore_seqlock<hvt::SeqlockNoFence>(2);
  ASSERT_TRUE(r.failed) << "mutant survived — checker lost its teeth";
  EXPECT_NE(r.reason.find("torn"), std::string::npos) << r.report();
}

TEST(MutantSeqlock, RelaxedClosingStoreIsCaught) {
  // seq_.store(s + 2, relaxed): the closing store no longer publishes the
  // payload, so a reader that enters through a fresh even seq can still
  // read stale payload halves.
  const auto r = explore_seqlock<hvt::SeqlockWeakClose>(2);
  ASSERT_TRUE(r.failed) << "mutant survived — checker lost its teeth";
  EXPECT_NE(r.reason.find("torn"), std::string::npos) << r.report();
}

// ---------------------------------------------------------------------
// Counter lost update — also the replay-by-seed demonstration.

TEST(MutantCounter, CleanFetchAddPassesExhaustively) {
  hv::Options opts;
  const auto r = hv::explore(opts, [](hv::Env& env) {
    auto c = std::make_shared<hvt::MutantCounter<true>>();
    env.thread([c] { c->add(1); });
    env.thread([c] { c->add(1); });
    env.finally([c] { hv::check(c->value() == 2, "lost update"); });
  });
  EXPECT_FALSE(r.failed) << r.report();
  EXPECT_TRUE(r.complete);
}

TEST(MutantCounter, LoadStoreLostUpdateIsCaughtAndReplaysFromSeed) {
  const auto setup = [](hv::Env& env) {
    auto c = std::make_shared<hvt::MutantCounter<false>>();
    env.thread([c] { c->add(1); });
    env.thread([c] { c->add(1); });
    env.finally([c] { hv::check(c->value() == 2, "lost update"); });
  };
  hv::Options opts;
  opts.mode = hv::Options::Mode::kRandom;
  opts.iterations = 256;
  opts.seed = 5;
  const auto r = hv::explore(opts, setup);
  ASSERT_TRUE(r.failed) << "mutant survived — checker lost its teeth";
  ASSERT_NE(r.failing_seed, 0u);

  // The printed seed must reproduce the failure in one iteration — the
  // debugging loop the random sweeps rely on.
  hv::Options replay = opts;
  replay.replay_seed = r.failing_seed;
  const auto r2 = hv::explore(replay, setup);
  EXPECT_TRUE(r2.failed) << "replay seed did not reproduce";
  EXPECT_EQ(r2.executions, 1u);
}

}  // namespace
