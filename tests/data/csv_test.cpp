#include "highrpm/data/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace highrpm::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("highrpm_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvTest, RoundTrip) {
  CsvTable t;
  t.header = {"a", "b", "c"};
  t.rows = {{1, 2, 3}, {4.5, 5.5, 6.5}};
  write_csv(path_.string(), t);
  const CsvTable back = read_csv(path_.string());
  ASSERT_EQ(back.header, t.header);
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(back.rows[1][0], 4.5);
  EXPECT_DOUBLE_EQ(back.rows[0][2], 3.0);
}

TEST_F(CsvTest, ColumnByName) {
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{1, 10}, {2, 20}, {3, 30}};
  const auto y = t.column("y");
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[2], 30.0);
  EXPECT_THROW(t.column("z"), std::out_of_range);
}

TEST_F(CsvTest, RaggedRowOnWriteThrows) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{1}};
  EXPECT_THROW(write_csv(path_.string(), t), std::invalid_argument);
}

TEST_F(CsvTest, NonNumericCellOnReadThrows) {
  {
    std::ofstream f(path_);
    f << "a,b\n1,hello\n";
  }
  EXPECT_THROW(read_csv(path_.string()), std::runtime_error);
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/dir/nope.csv"), std::runtime_error);
}

TEST_F(CsvTest, EmptyRowsAreSkipped) {
  {
    std::ofstream f(path_);
    f << "a\n1\n\n2\n";
  }
  const CsvTable t = read_csv(path_.string());
  EXPECT_EQ(t.num_rows(), 2u);
}


TEST_F(CsvTest, PartialNumericCellThrows) {
  {
    std::ofstream f(path_);
    f << "a,b\n1,12abc\n";
  }
  // Pre-hardening the stod-based parser silently read this as 12.
  EXPECT_THROW(read_csv(path_.string()), std::runtime_error);
}

TEST_F(CsvTest, NonFiniteCellsThrow) {
  for (const char* bad : {"inf", "-inf", "nan", "NaN"}) {
    {
      std::ofstream f(path_);
      f << "a\n" << bad << "\n";
    }
    EXPECT_THROW(read_csv(path_.string()), std::runtime_error) << bad;
  }
}

TEST_F(CsvTest, EmptyCellThrows) {
  {
    std::ofstream f(path_);
    f << "a,b\n1,\n";
  }
  EXPECT_THROW(read_csv(path_.string()), std::runtime_error);
}

TEST_F(CsvTest, CrlfLineEndingsAreTolerated) {
  {
    std::ofstream f(path_);
    f << "a,b\r\n1,2\r\n3,4\r\n";
  }
  const CsvTable t = read_csv(path_.string());
  ASSERT_EQ(t.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t.rows[1][1], 4.0);
}

}  // namespace
}  // namespace highrpm::data
