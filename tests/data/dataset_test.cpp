#include "highrpm/data/dataset.hpp"

#include <gtest/gtest.h>

namespace highrpm::data {
namespace {

Dataset make_small() {
  math::Matrix f{{1, 2}, {3, 4}, {5, 6}};
  Dataset d(std::move(f), {"a", "b"});
  d.set_target("y", {10, 20, 30});
  return d;
}

TEST(Dataset, BasicShape) {
  const Dataset d = make_small();
  EXPECT_EQ(d.num_samples(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.feature_names().size(), 2u);
}

TEST(Dataset, NameCountMismatchThrows) {
  EXPECT_THROW(Dataset(math::Matrix(2, 2), {"only-one"}),
               std::invalid_argument);
}

TEST(Dataset, FeatureLookup) {
  const Dataset d = make_small();
  EXPECT_EQ(d.feature_index("b"), 1u);
  EXPECT_TRUE(d.has_feature("a"));
  EXPECT_FALSE(d.has_feature("zzz"));
  EXPECT_THROW(d.feature_index("zzz"), std::out_of_range);
}

TEST(Dataset, TargetRoundTrip) {
  Dataset d = make_small();
  EXPECT_TRUE(d.has_target("y"));
  EXPECT_EQ(d.target("y")[1], 20.0);
  d.set_target("y", {1, 2, 3});  // overwrite
  EXPECT_EQ(d.target("y")[2], 3.0);
  EXPECT_THROW(d.target("nope"), std::out_of_range);
  EXPECT_THROW(d.set_target("bad", {1.0}), std::invalid_argument);
}

TEST(Dataset, SelectRows) {
  const Dataset d = make_small();
  const std::vector<std::size_t> idx{2, 0};
  const Dataset s = d.select_rows(idx);
  EXPECT_EQ(s.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(s.features()(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s.features()(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.target("y")[0], 30.0);
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(d.select_rows(bad), std::out_of_range);
}

TEST(Dataset, Slice) {
  const Dataset d = make_small();
  const Dataset s = d.slice(1, 2);
  EXPECT_EQ(s.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(s.features()(0, 1), 4.0);
  EXPECT_THROW(d.slice(2, 5), std::out_of_range);
}

TEST(Dataset, Concat) {
  Dataset a = make_small();
  const Dataset b = make_small();
  a.concat(b);
  EXPECT_EQ(a.num_samples(), 6u);
  EXPECT_DOUBLE_EQ(a.target("y")[5], 30.0);
}

TEST(Dataset, ConcatSchemaMismatchThrows) {
  Dataset a = make_small();
  Dataset c(math::Matrix{{1.0, 2.0}}, {"x", "b"});
  c.set_target("y", {1});
  EXPECT_THROW(a.concat(c), std::invalid_argument);
}

TEST(Dataset, AppendRow) {
  Dataset d = make_small();
  const std::vector<double> row{7, 8};
  const std::vector<double> t{40};
  d.append_row(row, t);
  EXPECT_EQ(d.num_samples(), 4u);
  EXPECT_DOUBLE_EQ(d.features()(3, 1), 8.0);
  EXPECT_DOUBLE_EQ(d.target("y")[3], 40.0);
  const std::vector<double> bad_row{1};
  EXPECT_THROW(d.append_row(bad_row, t), std::invalid_argument);
}

TEST(Dataset, AddFeature) {
  Dataset d = make_small();
  const std::vector<double> p{0.1, 0.2, 0.3};
  d.add_feature("P_NODE", p);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_DOUBLE_EQ(d.features()(1, 2), 0.2);
  EXPECT_THROW(d.add_feature("P_NODE", p), std::invalid_argument);
  const std::vector<double> short_p{1.0};
  EXPECT_THROW(d.add_feature("q", short_p), std::invalid_argument);
}

TEST(Dataset, WithoutFeature) {
  Dataset d = make_small();
  const Dataset w = d.without_feature("a");
  EXPECT_EQ(w.num_features(), 1u);
  EXPECT_EQ(w.feature_names()[0], "b");
  EXPECT_DOUBLE_EQ(w.features()(2, 0), 6.0);
  // Targets survive the drop.
  EXPECT_DOUBLE_EQ(w.target("y")[2], 30.0);
}

}  // namespace
}  // namespace highrpm::data
