#include "highrpm/data/scaler.hpp"

#include <gtest/gtest.h>

#include "highrpm/math/stats.hpp"

namespace highrpm::data {
namespace {

TEST(StandardScaler, ZeroMeanUnitVariance) {
  math::Matrix x{{1, 100}, {2, 200}, {3, 300}, {4, 400}};
  StandardScaler s;
  const auto t = s.fit_transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    const auto col = t.col(c);
    EXPECT_NEAR(math::mean(col), 0.0, 1e-12);
    EXPECT_NEAR(math::stddev(col), 1.0, 1e-12);
  }
}

TEST(StandardScaler, ConstantColumnMapsToZero) {
  math::Matrix x{{5, 1}, {5, 2}, {5, 3}};
  StandardScaler s;
  const auto t = s.fit_transform(x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(t(r, 0), 0.0);
}

TEST(StandardScaler, TransformRowMatchesMatrix) {
  math::Matrix x{{1, 10}, {3, 30}, {5, 50}};
  StandardScaler s;
  const auto t = s.fit_transform(x);
  const auto row = s.transform_row(x.row(1));
  EXPECT_DOUBLE_EQ(row[0], t(1, 0));
  EXPECT_DOUBLE_EQ(row[1], t(1, 1));
}

TEST(StandardScaler, UnfittedThrows) {
  StandardScaler s;
  EXPECT_THROW(s.transform(math::Matrix(1, 1)), std::logic_error);
}

TEST(StandardScaler, WidthMismatchThrows) {
  StandardScaler s;
  s.fit(math::Matrix(3, 2, 1.0));
  EXPECT_THROW(s.transform(math::Matrix(3, 3)), std::invalid_argument);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(s.transform_row(bad), std::invalid_argument);
}

TEST(MinMaxScaler, MapsToUnitInterval) {
  math::Matrix x{{0, -10}, {5, 0}, {10, 10}};
  MinMaxScaler s;
  const auto t = s.fit_transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(t(1, 1), 0.5);
}

TEST(MinMaxScaler, ConstantColumnMapsToZero) {
  math::Matrix x{{7.0}, {7.0}};
  MinMaxScaler s;
  const auto t = s.fit_transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
}

TEST(TargetScaler, RoundTripInverse) {
  const std::vector<double> y{10, 20, 30, 40};
  TargetScaler s;
  s.fit(y);
  const auto t = s.transform(y);
  const auto back = s.inverse(t);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(back[i], y[i], 1e-12);
  EXPECT_NEAR(s.inverse_one(s.transform_one(25.0)), 25.0, 1e-12);
}

TEST(TargetScaler, TransformedIsStandardized) {
  const std::vector<double> y{1, 2, 3, 4, 5};
  TargetScaler s;
  s.fit(y);
  const auto t = s.transform(y);
  EXPECT_NEAR(math::mean(t), 0.0, 1e-12);
  EXPECT_NEAR(math::stddev(t), 1.0, 1e-12);
}

TEST(TargetScaler, UnfittedThrows) {
  TargetScaler s;
  EXPECT_THROW(s.transform_one(1.0), std::logic_error);
  EXPECT_THROW(s.inverse_one(1.0), std::logic_error);
}


TEST(StandardScaler, EmptyFitThrows) {
  StandardScaler s;
  EXPECT_THROW(s.fit(math::Matrix(0, 3)), std::invalid_argument);
  EXPECT_THROW(s.fit(math::Matrix(3, 0)), std::invalid_argument);
}

TEST(MinMaxScaler, EmptyFitThrows) {
  MinMaxScaler s;
  EXPECT_THROW(s.fit(math::Matrix(0, 2)), std::invalid_argument);
}

TEST(MinMaxScaler, TransformRowWidthMismatchThrows) {
  math::Matrix x{{1.0, 10.0}, {3.0, 30.0}};
  MinMaxScaler s;
  s.fit(x);
  // Pre-hardening this read past the fitted min_/range_ arrays.
  const std::vector<double> wide{1.0, 2.0, 3.0};
  EXPECT_THROW(s.transform_row(wide), std::invalid_argument);
  const std::vector<double> narrow{1.0};
  EXPECT_THROW(s.transform_row(narrow), std::invalid_argument);
}

TEST(TargetScaler, EmptyFitThrows) {
  TargetScaler s;
  EXPECT_THROW(s.fit(std::vector<double>{}), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::data
