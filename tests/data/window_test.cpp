#include "highrpm/data/window.hpp"

#include <gtest/gtest.h>

namespace highrpm::data {
namespace {

math::Matrix series(std::size_t n, std::size_t f) {
  math::Matrix m(n, f);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < f; ++c) {
      m(r, c) = static_cast<double>(r * 10 + c);
    }
  }
  return m;
}

TEST(MakeWindows, CountAndShape) {
  const auto m = series(10, 3);
  std::vector<double> labels(10);
  for (std::size_t i = 0; i < 10; ++i) labels[i] = static_cast<double>(i);
  const auto w = make_windows(m, labels, 4);
  ASSERT_EQ(w.size(), 7u);  // n - window + 1
  for (const auto& s : w) {
    EXPECT_EQ(s.steps.rows(), 4u);
    EXPECT_EQ(s.steps.cols(), 3u);
    EXPECT_EQ(s.labels.size(), 4u);
  }
}

TEST(MakeWindows, ContentIsContiguous) {
  const auto m = series(6, 2);
  const std::vector<double> labels{0, 1, 2, 3, 4, 5};
  const auto w = make_windows(m, labels, 3);
  // Window 2 covers rows 2..4.
  EXPECT_DOUBLE_EQ(w[2].steps(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(w[2].steps(2, 1), 41.0);
  EXPECT_DOUBLE_EQ(w[2].labels[0], 2.0);
  EXPECT_DOUBLE_EQ(w[2].labels[2], 4.0);
}

TEST(MakeWindows, ErrorsOnBadInput) {
  const auto m = series(3, 2);
  const std::vector<double> labels{0, 1, 2};
  EXPECT_THROW(make_windows(m, labels, 0), std::invalid_argument);
  EXPECT_THROW(make_windows(m, labels, 4), std::invalid_argument);
  const std::vector<double> short_labels{0, 1};
  EXPECT_THROW(make_windows(m, short_labels, 2), std::invalid_argument);
}

TEST(MakeWindowsWithPrevLabel, AppendsShiftedLabels) {
  const auto m = series(5, 2);
  const std::vector<double> labels{10, 20, 30, 40, 50};
  const auto w = make_windows_with_prev_label(m, labels, 3, /*initial=*/99.0);
  ASSERT_EQ(w.size(), 3u);
  // Feature width grew by one.
  EXPECT_EQ(w[0].steps.cols(), 3u);
  // Row 0's prev-label is the initial value; row r's is labels[r-1].
  EXPECT_DOUBLE_EQ(w[0].steps(0, 2), 99.0);
  EXPECT_DOUBLE_EQ(w[0].steps(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(w[0].steps(2, 2), 20.0);
  EXPECT_DOUBLE_EQ(w[2].steps(0, 2), 20.0);  // window starting at row 2
  // Labels unchanged.
  EXPECT_DOUBLE_EQ(w[2].labels[2], 50.0);
}

TEST(MakeWindowsWithPrevLabel, SingleWindowWholeSeries) {
  const auto m = series(4, 1);
  const std::vector<double> labels{1, 2, 3, 4};
  const auto w = make_windows_with_prev_label(m, labels, 4, 0.0);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].steps.rows(), 4u);
}

}  // namespace
}  // namespace highrpm::data
