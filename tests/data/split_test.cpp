#include "highrpm/data/split.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace highrpm::data {
namespace {

TEST(TrainTestSplit, PartitionsAllIndices) {
  math::Rng rng(1);
  const auto s = train_test_split(100, 0.2, rng);
  EXPECT_EQ(s.test.size(), 20u);
  EXPECT_EQ(s.train.size(), 80u);
  std::set<std::size_t> all(s.train.begin(), s.train.end());
  all.insert(s.test.begin(), s.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplit, BadFractionThrows) {
  math::Rng rng(1);
  EXPECT_THROW(train_test_split(10, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(10, 1.0, rng), std::invalid_argument);
}

TEST(ChronologicalSplit, TestIsSuffix) {
  const auto s = chronological_split(10, 0.3);
  EXPECT_EQ(s.train.size(), 7u);
  EXPECT_EQ(s.test.size(), 3u);
  EXPECT_EQ(s.train.front(), 0u);
  EXPECT_EQ(s.train.back(), 6u);
  EXPECT_EQ(s.test.front(), 7u);
  EXPECT_EQ(s.test.back(), 9u);
}

TEST(TrainTestSplit, TinyInputsThrow) {
  math::Rng rng(2);
  // n = 0 used to read past the permutation's end (n_test is clamped to
  // >= 1); n = 1 used to return an empty training set.
  EXPECT_THROW(train_test_split(0, 0.2, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(1, 0.2, rng), std::invalid_argument);
}

TEST(TrainTestSplit, TwoSamplesGiveOneEach) {
  math::Rng rng(3);
  const auto s = train_test_split(2, 0.2, rng);
  EXPECT_EQ(s.train.size(), 1u);
  EXPECT_EQ(s.test.size(), 1u);
}

TEST(ChronologicalSplit, TinyInputsThrow) {
  // n = 0 used to make the train loop bound n - n_test wrap around
  // (size_t underflow); n = 1 used to return an empty training set.
  EXPECT_THROW(chronological_split(0, 0.3), std::invalid_argument);
  EXPECT_THROW(chronological_split(1, 0.3), std::invalid_argument);
}

TEST(ChronologicalSplit, HighFractionKeepsTrainNonEmpty) {
  const auto s = chronological_split(3, 0.99);
  EXPECT_EQ(s.train.size(), 1u);
  EXPECT_EQ(s.test.size(), 2u);
}

TEST(KFold, RequiresAtLeastTwoSplits) {
  EXPECT_THROW(KFold(1), std::invalid_argument);
}

TEST(KFold, FoldsPartitionData) {
  KFold kf(5);
  math::Rng rng(2);
  const auto folds = kf.split(23, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(23, 0);
  for (const auto& f : folds) {
    EXPECT_EQ(f.train.size() + f.test.size(), 23u);
    for (const auto i : f.test) seen[i]++;
    // Train and test are disjoint.
    std::set<std::size_t> tr(f.train.begin(), f.train.end());
    for (const auto i : f.test) EXPECT_EQ(tr.count(i), 0u);
  }
  // Every index is in exactly one test fold.
  for (const int c : seen) EXPECT_EQ(c, 1);
}

TEST(KFold, ShuffledFoldsStillPartition) {
  KFold kf(4, /*shuffle=*/true);
  math::Rng rng(3);
  const auto folds = kf.split(20, rng);
  std::vector<int> seen(20, 0);
  for (const auto& f : folds) {
    for (const auto i : f.test) seen[i]++;
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
}

TEST(KFold, TooFewSamplesThrows) {
  KFold kf(5);
  math::Rng rng(4);
  EXPECT_THROW(kf.split(3, rng), std::invalid_argument);
}

class KFoldSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KFoldSizes, FoldSizesAreBalanced) {
  const std::size_t n = GetParam();
  KFold kf(5);
  math::Rng rng(5);
  const auto folds = kf.split(n, rng);
  std::size_t total = 0;
  for (const auto& f : folds) {
    total += f.test.size();
    EXPECT_LE(f.test.size(), n / 5 + 1);
    EXPECT_GE(f.test.size(), n / 5);
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KFoldSizes,
                         ::testing::Values(5, 17, 50, 101, 1000));

}  // namespace
}  // namespace highrpm::data
