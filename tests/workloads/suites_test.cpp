#include "highrpm/workloads/suites.hpp"

#include <gtest/gtest.h>

#include <set>

namespace highrpm::workloads {
namespace {

TEST(Suites, SevenSuitesInTableOrder) {
  const auto names = suite_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "SPEC");
  EXPECT_EQ(names[6], "HPCG");
}

TEST(Suites, SuiteSizesMatchPaperTable3) {
  EXPECT_EQ(suite("SPEC").size(), 43u);
  EXPECT_EQ(suite("PARSEC").size(), 36u);
  EXPECT_EQ(suite("HPCC").size(), 12u);
  EXPECT_EQ(suite("Graph500").size(), 2u);
  EXPECT_EQ(suite("HPL-AI").size(), 1u);
  EXPECT_EQ(suite("SMG2000").size(), 1u);
  EXPECT_EQ(suite("HPCG").size(), 1u);
}

TEST(Suites, FullSetIsNinetySix) {
  const auto all = full_benchmark_set();
  EXPECT_EQ(all.size(), 96u);  // §5.3: 96 benchmarks
  std::set<std::string> names;
  for (const auto& w : all) names.insert(w.name);
  EXPECT_EQ(names.size(), 96u);  // all distinct
}

TEST(Suites, UnknownSuiteThrows) {
  EXPECT_THROW(suite("NPB"), std::invalid_argument);
}

TEST(Suites, EveryWorkloadHasValidPhases) {
  for (const auto& w : full_benchmark_set()) {
    EXPECT_FALSE(w.phases.empty()) << w.name;
    EXPECT_GT(w.total_phase_duration(), 0.0) << w.name;
    for (const auto& p : w.phases) {
      EXPECT_GT(p.duration_s, 0.0) << w.name;
      EXPECT_GT(p.utilization, 0.0) << w.name;
      EXPECT_LE(p.utilization, 1.0) << w.name;
      EXPECT_GT(p.ipc, 0.0) << w.name;
      EXPECT_GE(p.l1_miss, 0.0) << w.name;
      EXPECT_LE(p.l1_miss, 1.0) << w.name;
      EXPECT_LE(p.l3_miss, 1.0) << w.name;
    }
  }
}

TEST(Suites, GenerationIsDeterministic) {
  const auto a = suite("SPEC");
  const auto b = suite("SPEC");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    ASSERT_EQ(a[i].phases.size(), b[i].phases.size());
    for (std::size_t p = 0; p < a[i].phases.size(); ++p) {
      EXPECT_DOUBLE_EQ(a[i].phases[p].utilization,
                       b[i].phases[p].utilization);
    }
  }
}

TEST(Suites, WorkloadsWithinSuiteDiffer) {
  const auto spec = suite("SPEC");
  // Distinct profiles: utilizations must not be all equal.
  std::set<double> utils;
  for (const auto& w : spec) utils.insert(w.phases[0].utilization);
  EXPECT_GT(utils.size(), 30u);
}

TEST(Suites, ByNameFindsHandTunedWorkloads) {
  EXPECT_EQ(by_name("fft").suite, "HPCC");
  EXPECT_EQ(by_name("stream").suite, "HPCC");
  EXPECT_EQ(by_name("graph500-bfs").suite, "Graph500");
  EXPECT_THROW(by_name("not-a-benchmark"), std::invalid_argument);
}

TEST(Suites, StreamIsMoreMemoryBoundThanFft) {
  const auto f = fft();
  const auto s = stream();
  const auto dram_frac = [](const sim::PhaseSpec& p) {
    return (p.load_frac + p.store_frac) * p.l1_miss * p.l2_miss * p.l3_miss;
  };
  EXPECT_GT(dram_frac(s.phases[0]), 5.0 * dram_frac(f.phases[0]));
}

TEST(Suites, Graph500HasAlternatingPhases) {
  const auto g = graph500_bfs();
  ASSERT_EQ(g.phases.size(), 2u);
  EXPECT_NE(g.phases[0].utilization, g.phases[1].utilization);
  EXPECT_GT(g.phases[0].spike_rate_hz, 0.0);
}

}  // namespace
}  // namespace highrpm::workloads
