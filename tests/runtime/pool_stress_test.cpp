// Contention-heavy race-stress for ThreadPool / parallel_for.
//
// These tests are written for ThreadSanitizer (ctest -L sanitize in a
// -DHIGHRPM_SANITIZE=thread build): the assertions are deliberately light —
// the real check is that TSan observes no race while the pool is hammered
// with the patterns that historically break pools: floods of tiny tasks
// (claim-counter contention), rapid job churn (generation/wakeup handoff),
// unbalanced task durations (workers racing on the tail of a job),
// exceptions under contention (error-slot writes from many threads), and
// nested submission. They also run (fast) in plain builds as functional
// coverage.
#include "highrpm/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "highrpm/runtime/parallel_for.hpp"

namespace highrpm::runtime {
namespace {

// Small spin to make a task's duration depend on its index, so workers
// finish chunks at different times and race on the claim counter.
void spin(std::size_t iters) {
  volatile std::size_t sink = 0;
  for (std::size_t i = 0; i < iters; ++i) sink = sink + i;
}

TEST(PoolStress, FloodOfTinyTasksAcrossThreadCounts) {
  for (const std::size_t degree : {1u, 2u, 3u, 4u, 8u}) {
    ThreadPool pool(degree);
    constexpr std::size_t kTasks = 20000;
    std::atomic<std::size_t> hits{0};
    std::vector<unsigned char> touched(kTasks, 0);
    pool.run(kTasks, [&](std::size_t i) {
      hits.fetch_add(1, std::memory_order_relaxed);
      touched[i] = 1;  // i owns this slot: no race by construction
    });
    EXPECT_EQ(hits.load(), kTasks) << "degree=" << degree;
    EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), std::size_t{0}), kTasks);
  }
}

TEST(PoolStress, RapidJobChurn) {
  // Many consecutive small jobs: stresses the generation counter and the
  // job_cv_/done_cv_ handoff where a late-waking worker could touch a
  // stale job.
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 300;
  constexpr std::size_t kTasks = 64;
  std::atomic<std::size_t> total{0};
  for (std::size_t j = 0; j < kJobs; ++j) {
    pool.run(kTasks, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), kJobs * kTasks);
}

TEST(PoolStress, UnbalancedTaskDurations) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 512;
  std::vector<std::size_t> out(kTasks, 0);
  pool.run(kTasks, [&](std::size_t i) {
    spin((i % 37) * 50);  // skewed durations: tail of the job is contended
    out[i] = i + 1;
  });
  for (std::size_t i = 0; i < kTasks; ++i) ASSERT_EQ(out[i], i + 1);
}

TEST(PoolStress, ExceptionUnderContentionKeepsLowestIndex) {
  // Many tasks throw concurrently; the error slot is written under
  // contention but the surfaced exception must be the lowest index
  // regardless of scheduling.
  for (const std::size_t degree : {2u, 4u, 8u}) {
    ThreadPool pool(degree);
    constexpr std::size_t kTasks = 2048;
    try {
      pool.run(kTasks, [&](std::size_t i) {
        spin(i % 17);
        if (i % 7 == 3) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3") << "degree=" << degree;
    }
  }
}

TEST(PoolStress, PoolRecoversAfterExceptionStorm) {
  // Alternate failing and clean jobs: a failed job must leave no state
  // behind that corrupts the next one.
  ThreadPool pool(4);
  for (std::size_t round = 0; round < 50; ++round) {
    EXPECT_THROW(
        pool.run(128, [](std::size_t i) {
          if (i % 2 == 0) throw std::invalid_argument("boom");
        }),
        std::invalid_argument);
    std::atomic<std::size_t> ok{0};
    pool.run(128, [&](std::size_t) {
      ok.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ok.load(), 128u);
  }
}

TEST(PoolStress, NestedSubmissionDegradesToSerial) {
  // parallel_for inside a pool task must fall back to a serial loop on the
  // calling worker — layered parallelism (bench -> fold -> fit) relies on
  // this. Every (outer, inner) cell is owned by exactly one index pair.
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 64;
  set_thread_count(4);
  std::vector<unsigned char> cells(kOuter * kInner, 0);
  parallel_for(kOuter, [&](std::size_t o) {
    parallel_for(kInner, [&](std::size_t i) { cells[o * kInner + i] = 1; });
  });
  EXPECT_EQ(std::accumulate(cells.begin(), cells.end(), std::size_t{0}),
            kOuter * kInner);
  set_thread_count(0);  // restore HIGHRPM_THREADS / hardware default
}

TEST(PoolStress, NestedRawRunThrowsInsteadOfDeadlocking) {
  ThreadPool pool(4);
  // The raw ThreadPool API rejects nesting outright; the thrown
  // std::logic_error must surface through the outer run.
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t) {
                          pool.run(2, [](std::size_t) {});
                        }),
               std::logic_error);
}

TEST(PoolStress, GlobalPoolRebuildChurn) {
  // Rebuilding the pool between jobs (tests and startup do this) must
  // join the old workers cleanly while new jobs start immediately.
  for (const std::size_t degree : {1u, 4u, 2u, 8u, 1u, 3u}) {
    set_thread_count(degree);
    ASSERT_EQ(thread_count(), degree);
    std::atomic<std::size_t> n{0};
    parallel_for(1000, [&](std::size_t) {
      n.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(n.load(), 1000u);
  }
  set_thread_count(0);
}

}  // namespace
}  // namespace highrpm::runtime
