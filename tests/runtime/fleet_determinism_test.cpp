// FleetStepper's determinism contract: every lane of a batched fleet tick
// is byte-identical to the serial per-node path (a HighRpm clone stepped
// alone through on_tick), at every fleet size, shard size, and thread
// count, with the RNN fast path (shared weights, one GEMM per layer) and
// the per-lane fallback (online fine-tuning) alike. These tests join the
// seed x threads identity suite: exact floating-point equality, no
// tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "highrpm/core/fleet.hpp"
#include "highrpm/core/highrpm.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/runtime/thread_pool.hpp"
#include "highrpm/sim/platform.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

constexpr std::size_t kStreamTicks = 64;
constexpr std::uint64_t kSeed = 2023;

HighRpmConfig fleet_config(bool online_finetune) {
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 8;
  cfg.dynamic_trr.online_finetune = online_finetune;
  cfg.srr.epochs = 20;
  return cfg;
}

HighRpm train_golden(bool online_finetune) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 160, kSeed));
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::stream(), 160, kSeed + 1));
  HighRpm golden(fleet_config(online_finetune));
  golden.initial_learning(runs);
  return golden;
}

/// Per-node deployment streams, fixed once per suite. Node i's trace
/// depends only on i (same derivation as the fleet bench), so the serial
/// reference and every fleet shape replay identical inputs.
std::vector<measure::CollectedRun> collect_streams(std::size_t nodes) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto workload = (i % 2 == 0) ? workloads::hpcg() : workloads::fft();
    runs.push_back(collector.collect(sim::PlatformConfig::arm(), workload,
                                     kStreamTicks, kSeed + 1000 + i));
  }
  return runs;
}

/// One tick's inputs for node i, with fault injection on node 1: a NaN PMC
/// cell at tick 17 (held-row substitution) and a NaN reading at tick 30
/// (treated as missed) exercise the degradation mirror in both paths.
struct TickInput {
  std::vector<double> pmcs;
  std::optional<double> reading;
};

TickInput tick_input(const measure::CollectedRun& run, std::size_t node,
                     std::size_t t) {
  TickInput in;
  const auto row = run.dataset.features().row(t);
  in.pmcs.assign(row.begin(), row.end());
  if (run.measured[t]) in.reading = run.dataset.target("P_NODE")[t];
  if (node == 1 && t == 17) {
    in.pmcs[0] = std::numeric_limits<double>::quiet_NaN();
  }
  if (node == 1 && t == 30) {
    in.reading = std::numeric_limits<double>::quiet_NaN();
  }
  return in;
}

/// Serial reference: each node is a HighRpm clone stepped alone.
std::vector<std::vector<PowerEstimate>> serial_reference(
    const HighRpm& golden, const std::vector<measure::CollectedRun>& runs) {
  std::vector<std::vector<PowerEstimate>> out(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    HighRpm node = golden;
    node.reset_stream();
    out[i].reserve(kStreamTicks);
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      const TickInput in = tick_input(runs[i], i, t);
      out[i].push_back(node.on_tick(in.pmcs, in.reading));
    }
  }
  return out;
}

class FleetDeterminismTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  static void SetUpTestSuite() {
    shared_golden_ = new HighRpm(train_golden(/*online_finetune=*/false));
    finetune_golden_ = new HighRpm(train_golden(/*online_finetune=*/true));
  }
  static void TearDownTestSuite() {
    delete shared_golden_;
    delete finetune_golden_;
    shared_golden_ = nullptr;
    finetune_golden_ = nullptr;
  }
  void TearDown() override { runtime::set_thread_count(0); }

  std::size_t threads() const { return std::get<0>(GetParam()); }
  std::size_t shard_lanes() const { return std::get<1>(GetParam()); }

  /// Step a FleetStepper over the streams and assert byte identity with
  /// the serial reference for every lane at every tick.
  void expect_fleet_matches_serial(const HighRpm& golden,
                                   std::size_t nodes) {
    const auto runs = collect_streams(nodes);
    // Serial reference at 1 thread; the fleet at the swept thread count.
    runtime::set_thread_count(1);
    const auto reference = serial_reference(golden, runs);
    runtime::set_thread_count(threads());

    FleetConfig cfg;
    cfg.shard_lanes = shard_lanes();
    FleetStepper fleet(golden, nodes, cfg);
    ASSERT_EQ(fleet.nodes(), nodes);
    ASSERT_EQ(fleet.shard_count(),
              (nodes + shard_lanes() - 1) / shard_lanes());
    ASSERT_EQ(fleet.shared_rnn(),
              !golden.config().dynamic_trr.online_finetune);

    math::Matrix pmcs(nodes, runs[0].dataset.features().cols());
    std::vector<std::optional<double>> readings(nodes);
    std::vector<PowerEstimate> out(nodes);
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      for (std::size_t i = 0; i < nodes; ++i) {
        const TickInput in = tick_input(runs[i], i, t);
        auto dst = pmcs.row(i);
        std::copy(in.pmcs.begin(), in.pmcs.end(), dst.begin());
        readings[i] = in.reading;
      }
      fleet.step_tick(pmcs, readings, out);
      for (std::size_t i = 0; i < nodes; ++i) {
        // Exact equality on purpose: the contract is byte identity, not
        // tolerance-level agreement.
        ASSERT_EQ(out[i].node_w, reference[i][t].node_w)
            << "node " << i << " tick " << t << " node_w diverged at "
            << threads() << " threads, shard_lanes " << shard_lanes();
        ASSERT_EQ(out[i].cpu_w, reference[i][t].cpu_w)
            << "node " << i << " tick " << t;
        ASSERT_EQ(out[i].mem_w, reference[i][t].mem_w)
            << "node " << i << " tick " << t;
        ASSERT_EQ(out[i].measured, reference[i][t].measured)
            << "node " << i << " tick " << t;
      }
    }
  }

  static HighRpm* shared_golden_;
  static HighRpm* finetune_golden_;
};

HighRpm* FleetDeterminismTest::shared_golden_ = nullptr;
HighRpm* FleetDeterminismTest::finetune_golden_ = nullptr;

TEST_P(FleetDeterminismTest, SharedRnnFleetMatchesSerialBitForBit) {
  // Shared weights: the one-GEMM-per-layer cross-node fast path.
  EXPECT_THROW(FleetStepper(*shared_golden_, 0), std::invalid_argument);
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{3},
                                  std::size_t{5}}) {
    expect_fleet_matches_serial(*shared_golden_, nodes);
  }
}

TEST_P(FleetDeterminismTest, FinetuneFleetMatchesSerialBitForBit) {
  // Online fine-tuning on: weights diverge per lane, so the fleet falls
  // back to per-lane prediction — identity must still hold.
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{4}}) {
    expect_fleet_matches_serial(*finetune_golden_, nodes);
  }
}

TEST_P(FleetDeterminismTest, ResetStreamsReplaysIdentically) {
  const std::size_t nodes = 3;
  const auto runs = collect_streams(nodes);
  runtime::set_thread_count(threads());
  FleetConfig cfg;
  cfg.shard_lanes = shard_lanes();
  FleetStepper fleet(*shared_golden_, nodes, cfg);

  math::Matrix pmcs(nodes, runs[0].dataset.features().cols());
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> out(nodes);
  const auto play = [&] {
    std::vector<std::vector<PowerEstimate>> all(nodes);
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      for (std::size_t i = 0; i < nodes; ++i) {
        const TickInput in = tick_input(runs[i], i, t);
        auto dst = pmcs.row(i);
        std::copy(in.pmcs.begin(), in.pmcs.end(), dst.begin());
        readings[i] = in.reading;
      }
      fleet.step_tick(pmcs, readings, out);
      for (std::size_t i = 0; i < nodes; ++i) all[i].push_back(out[i]);
    }
    return all;
  };
  const auto first = play();
  fleet.reset_streams();
  const auto second = play();
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      ASSERT_EQ(first[i][t].node_w, second[i][t].node_w)
          << "node " << i << " tick " << t;
      ASSERT_EQ(first[i][t].cpu_w, second[i][t].cpu_w);
      ASSERT_EQ(first[i][t].mem_w, second[i][t].mem_w);
      ASSERT_EQ(first[i][t].measured, second[i][t].measured);
    }
  }
}

TEST(FleetStepper, RejectsUntrainedGoldenAndZeroNodes) {
  HighRpm untrained(fleet_config(false));
  EXPECT_THROW(FleetStepper(untrained, 4), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByShardLanes, FleetDeterminismTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 8),
                       ::testing::Values<std::size_t>(2, 64)),
    [](const auto& param_info) {
      return "threads" + std::to_string(std::get<0>(param_info.param)) +
             "_lanes" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace highrpm::core
