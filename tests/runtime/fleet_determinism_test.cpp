// FleetStepper's determinism contract: every lane of a batched fleet tick
// is byte-identical to the serial per-node path (a HighRpm clone stepped
// alone through on_tick), at every fleet size, shard size, and thread
// count, with the RNN fast path (shared weights, one GEMM per layer) and
// the per-lane fallback (online fine-tuning) alike. These tests join the
// seed x threads identity suite: exact floating-point equality, no
// tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "highrpm/core/fleet.hpp"
#include "highrpm/core/highrpm.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/runtime/thread_pool.hpp"
#include "highrpm/sim/platform.hpp"
#include "highrpm/sim/pmc.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

constexpr std::size_t kStreamTicks = 64;
constexpr std::uint64_t kSeed = 2023;

HighRpmConfig fleet_config(bool online_finetune) {
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 8;
  cfg.dynamic_trr.online_finetune = online_finetune;
  cfg.srr.epochs = 20;
  return cfg;
}

HighRpm train_golden(bool online_finetune) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 160, kSeed));
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::stream(), 160, kSeed + 1));
  HighRpm golden(fleet_config(online_finetune));
  golden.initial_learning(runs);
  return golden;
}

/// Per-node deployment streams, fixed once per suite. Node i's trace
/// depends only on i (same derivation as the fleet bench), so the serial
/// reference and every fleet shape replay identical inputs.
std::vector<measure::CollectedRun> collect_streams(std::size_t nodes) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto workload = (i % 2 == 0) ? workloads::hpcg() : workloads::fft();
    runs.push_back(collector.collect(sim::PlatformConfig::arm(), workload,
                                     kStreamTicks, kSeed + 1000 + i));
  }
  return runs;
}

/// One tick's inputs for node i, with fault injection on node 1: a NaN PMC
/// cell at tick 17 (held-row substitution) and a NaN reading at tick 30
/// (treated as missed) exercise the degradation mirror in both paths.
struct TickInput {
  std::vector<double> pmcs;
  std::optional<double> reading;
};

TickInput tick_input(const measure::CollectedRun& run, std::size_t node,
                     std::size_t t) {
  TickInput in;
  const auto row = run.dataset.features().row(t);
  in.pmcs.assign(row.begin(), row.end());
  if (run.measured[t]) in.reading = run.dataset.target("P_NODE")[t];
  if (node == 1 && t == 17) {
    in.pmcs[0] = std::numeric_limits<double>::quiet_NaN();
  }
  if (node == 1 && t == 30) {
    in.reading = std::numeric_limits<double>::quiet_NaN();
  }
  return in;
}

/// Serial reference: each node is a HighRpm clone stepped alone.
std::vector<std::vector<PowerEstimate>> serial_reference(
    const HighRpm& golden, const std::vector<measure::CollectedRun>& runs) {
  std::vector<std::vector<PowerEstimate>> out(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    HighRpm node = golden;
    node.reset_stream();
    out[i].reserve(kStreamTicks);
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      const TickInput in = tick_input(runs[i], i, t);
      out[i].push_back(node.on_tick(in.pmcs, in.reading));
    }
  }
  return out;
}

class FleetDeterminismTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  static void SetUpTestSuite() {
    shared_golden_ = new HighRpm(train_golden(/*online_finetune=*/false));
    finetune_golden_ = new HighRpm(train_golden(/*online_finetune=*/true));
  }
  static void TearDownTestSuite() {
    delete shared_golden_;
    delete finetune_golden_;
    shared_golden_ = nullptr;
    finetune_golden_ = nullptr;
  }
  void TearDown() override { runtime::set_thread_count(0); }

  std::size_t threads() const { return std::get<0>(GetParam()); }
  std::size_t shard_lanes() const { return std::get<1>(GetParam()); }

  /// Step a FleetStepper over the streams and assert byte identity with
  /// the serial reference for every lane at every tick.
  void expect_fleet_matches_serial(const HighRpm& golden,
                                   std::size_t nodes) {
    const auto runs = collect_streams(nodes);
    // Serial reference at 1 thread; the fleet at the swept thread count.
    runtime::set_thread_count(1);
    const auto reference = serial_reference(golden, runs);
    runtime::set_thread_count(threads());

    FleetConfig cfg;
    cfg.shard_lanes = shard_lanes();
    FleetStepper fleet(golden, nodes, cfg);
    ASSERT_EQ(fleet.nodes(), nodes);
    ASSERT_EQ(fleet.shard_count(),
              (nodes + shard_lanes() - 1) / shard_lanes());
    ASSERT_EQ(fleet.shared_rnn(),
              !golden.config().dynamic_trr.online_finetune);

    math::Matrix pmcs(nodes, runs[0].dataset.features().cols());
    std::vector<std::optional<double>> readings(nodes);
    std::vector<PowerEstimate> out(nodes);
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      for (std::size_t i = 0; i < nodes; ++i) {
        const TickInput in = tick_input(runs[i], i, t);
        auto dst = pmcs.row(i);
        std::copy(in.pmcs.begin(), in.pmcs.end(), dst.begin());
        readings[i] = in.reading;
      }
      fleet.step_tick(pmcs, readings, out);
      for (std::size_t i = 0; i < nodes; ++i) {
        // Exact equality on purpose: the contract is byte identity, not
        // tolerance-level agreement.
        ASSERT_EQ(out[i].node_w, reference[i][t].node_w)
            << "node " << i << " tick " << t << " node_w diverged at "
            << threads() << " threads, shard_lanes " << shard_lanes();
        ASSERT_EQ(out[i].cpu_w, reference[i][t].cpu_w)
            << "node " << i << " tick " << t;
        ASSERT_EQ(out[i].mem_w, reference[i][t].mem_w)
            << "node " << i << " tick " << t;
        ASSERT_EQ(out[i].measured, reference[i][t].measured)
            << "node " << i << " tick " << t;
      }
    }
  }

  static HighRpm* shared_golden_;
  static HighRpm* finetune_golden_;
};

HighRpm* FleetDeterminismTest::shared_golden_ = nullptr;
HighRpm* FleetDeterminismTest::finetune_golden_ = nullptr;

TEST_P(FleetDeterminismTest, SharedRnnFleetMatchesSerialBitForBit) {
  // Shared weights: the one-GEMM-per-layer cross-node fast path.
  EXPECT_THROW(FleetStepper(*shared_golden_, 0), std::invalid_argument);
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{3},
                                  std::size_t{5}}) {
    expect_fleet_matches_serial(*shared_golden_, nodes);
  }
}

TEST_P(FleetDeterminismTest, FinetuneFleetMatchesSerialBitForBit) {
  // Online fine-tuning on: weights diverge per lane, so the fleet falls
  // back to per-lane prediction — identity must still hold.
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{4}}) {
    expect_fleet_matches_serial(*finetune_golden_, nodes);
  }
}

TEST_P(FleetDeterminismTest, ResetStreamsReplaysIdentically) {
  const std::size_t nodes = 3;
  const auto runs = collect_streams(nodes);
  runtime::set_thread_count(threads());
  FleetConfig cfg;
  cfg.shard_lanes = shard_lanes();
  FleetStepper fleet(*shared_golden_, nodes, cfg);

  math::Matrix pmcs(nodes, runs[0].dataset.features().cols());
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> out(nodes);
  const auto play = [&] {
    std::vector<std::vector<PowerEstimate>> all(nodes);
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      for (std::size_t i = 0; i < nodes; ++i) {
        const TickInput in = tick_input(runs[i], i, t);
        auto dst = pmcs.row(i);
        std::copy(in.pmcs.begin(), in.pmcs.end(), dst.begin());
        readings[i] = in.reading;
      }
      fleet.step_tick(pmcs, readings, out);
      for (std::size_t i = 0; i < nodes; ++i) all[i].push_back(out[i]);
    }
    return all;
  };
  const auto first = play();
  fleet.reset_streams();
  const auto second = play();
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      ASSERT_EQ(first[i][t].node_w, second[i][t].node_w)
          << "node " << i << " tick " << t;
      ASSERT_EQ(first[i][t].cpu_w, second[i][t].cpu_w);
      ASSERT_EQ(first[i][t].mem_w, second[i][t].mem_w);
      ASSERT_EQ(first[i][t].measured, second[i][t].measured);
    }
  }
}

TEST(FleetStepper, RejectsUntrainedGoldenAndZeroNodes) {
  HighRpm untrained(fleet_config(false));
  EXPECT_THROW(FleetStepper(untrained, 4), std::invalid_argument);
}

/// Boundary contract of FleetConfig::shard_lanes (documented on the field):
/// 0 rejected, above-fleet clamped. One shared golden, trained once.
class FleetBoundaryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    golden_ = new HighRpm(train_golden(/*online_finetune=*/false));
  }
  static void TearDownTestSuite() {
    delete golden_;
    golden_ = nullptr;
  }
  static HighRpm* golden_;
};

HighRpm* FleetBoundaryTest::golden_ = nullptr;

TEST_F(FleetBoundaryTest, ShardLanesZeroThrows) {
  // Failing before: shard_lanes == 0 was silently rewritten to 1, turning
  // a config typo into a degenerate one-lane-per-shard fleet.
  FleetConfig cfg;
  cfg.shard_lanes = 0;
  EXPECT_THROW(FleetStepper(*golden_, 4, cfg), std::invalid_argument);
}

TEST_F(FleetBoundaryTest, ShardLanesAboveFleetClampsToOneShard) {
  const std::size_t nodes = 5;
  FleetConfig wide;
  wide.shard_lanes = 100 * nodes;
  FleetStepper clamped(*golden_, nodes, wide);
  EXPECT_EQ(clamped.shard_count(), 1u);

  // Clamping is a grouping choice, never a numeric one: the one-shard
  // fleet must match a two-lane-sharded fleet bit for bit.
  FleetConfig narrow;
  narrow.shard_lanes = 2;
  FleetStepper sharded(*golden_, nodes, narrow);
  const auto runs = collect_streams(nodes);
  math::Matrix pmcs(nodes, runs[0].dataset.features().cols());
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> a(nodes), b(nodes);
  for (std::size_t t = 0; t < kStreamTicks; ++t) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const TickInput in = tick_input(runs[i], i, t);
      auto dst = pmcs.row(i);
      std::copy(in.pmcs.begin(), in.pmcs.end(), dst.begin());
      readings[i] = in.reading;
    }
    clamped.step_tick(pmcs, readings, a);
    sharded.step_tick(pmcs, readings, b);
    for (std::size_t i = 0; i < nodes; ++i) {
      ASSERT_EQ(a[i].node_w, b[i].node_w) << "node " << i << " tick " << t;
      ASSERT_EQ(a[i].cpu_w, b[i].cpu_w);
      ASSERT_EQ(a[i].mem_w, b[i].mem_w);
      ASSERT_EQ(a[i].measured, b[i].measured);
    }
  }
}

TEST_F(FleetBoundaryTest, CohortSplitMatchesStepTick) {
  // step_cohort with arbitrary disjoint lane-id sets (here interleaved odd
  // and even lanes, stepped through caller-owned scratch) must agree with
  // the whole-fleet step_tick bit for bit — the contract serve's consumer
  // pool depends on.
  const std::size_t nodes = 5;
  const auto runs = collect_streams(nodes);
  FleetStepper whole(*golden_, nodes);
  FleetStepper split(*golden_, nodes);
  FleetStepper::Cohort even_scratch, odd_scratch;
  const std::vector<std::size_t> even_ids{0, 2, 4};
  const std::vector<std::size_t> odd_ids{1, 3};

  const std::size_t f = runs[0].dataset.features().cols();
  math::Matrix pmcs(nodes, f);
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> ref(nodes);
  math::Matrix even_rows(even_ids.size(), f), odd_rows(odd_ids.size(), f);
  std::vector<std::optional<double>> even_readings(even_ids.size());
  std::vector<std::optional<double>> odd_readings(odd_ids.size());
  std::vector<PowerEstimate> even_out(even_ids.size());
  std::vector<PowerEstimate> odd_out(odd_ids.size());

  for (std::size_t t = 0; t < kStreamTicks; ++t) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const TickInput in = tick_input(runs[i], i, t);
      auto dst = pmcs.row(i);
      std::copy(in.pmcs.begin(), in.pmcs.end(), dst.begin());
      readings[i] = in.reading;
    }
    whole.step_tick(pmcs, readings, ref);

    const auto stage = [&](const std::vector<std::size_t>& ids,
                           math::Matrix& rows,
                           std::vector<std::optional<double>>& rds) {
      for (std::size_t li = 0; li < ids.size(); ++li) {
        const auto src = pmcs.row(ids[li]);
        auto dst = rows.row(li);
        std::copy(src.begin(), src.end(), dst.begin());
        rds[li] = readings[ids[li]];
      }
    };
    stage(even_ids, even_rows, even_readings);
    stage(odd_ids, odd_rows, odd_readings);
    split.step_cohort(even_ids, even_rows, 0, even_readings, even_out,
                      even_scratch);
    split.step_cohort(odd_ids, odd_rows, 0, odd_readings, odd_out,
                      odd_scratch);

    const auto check = [&](const std::vector<std::size_t>& ids,
                           const std::vector<PowerEstimate>& out) {
      for (std::size_t li = 0; li < ids.size(); ++li) {
        ASSERT_EQ(out[li].node_w, ref[ids[li]].node_w)
            << "lane " << ids[li] << " tick " << t;
        ASSERT_EQ(out[li].cpu_w, ref[ids[li]].cpu_w);
        ASSERT_EQ(out[li].mem_w, ref[ids[li]].mem_w);
        ASSERT_EQ(out[li].measured, ref[ids[li]].measured);
      }
    };
    check(even_ids, even_out);
    check(odd_ids, odd_out);
  }
}

TEST_F(FleetBoundaryTest, CohortRejectsSizeMismatch) {
  FleetStepper fleet(*golden_, 3);
  FleetStepper::Cohort scratch;
  const std::vector<std::size_t> ids{0, 1};
  math::Matrix rows(1, sim::kNumPmcEvents);  // too few rows for two lanes
  std::vector<std::optional<double>> readings(2);
  std::vector<PowerEstimate> out(2);
  EXPECT_THROW(fleet.step_cohort(ids, rows, 0, readings, out, scratch),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByShardLanes, FleetDeterminismTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 8),
                       ::testing::Values<std::size_t>(2, 64)),
    [](const auto& param_info) {
      return "threads" + std::to_string(std::get<0>(param_info.param)) +
             "_lanes" + std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// K-way attribution rides the same identity contract: per-tenant estimates
// from the batched fleet path are byte-identical to the serial facade's
// 3-arg on_tick at every thread count and shard shape, including the
// held-tenant-row fault path.

constexpr std::size_t kTenants = 2;

HighRpm train_tenant_golden(bool self_cal) {
  measure::Collector collector;
  const std::vector<sim::Workload> mix{workloads::fft(), workloads::stream()};
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect_tenants(sim::PlatformConfig::arm(), mix,
                                           160, kSeed + 50));
  runs.push_back(collector.collect_tenants(sim::PlatformConfig::arm(), mix,
                                           160, kSeed + 51));
  HighRpmConfig cfg = fleet_config(/*online_finetune=*/false);
  cfg.tenants = kTenants;
  cfg.tenant_srr.epochs = 30;
  cfg.self_cal.enabled = self_cal;
  HighRpm golden(cfg);
  golden.initial_learning(runs);
  golden.fit_attribution(runs);
  return golden;
}

std::vector<measure::CollectedRun> collect_tenant_streams(std::size_t nodes) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const std::vector<sim::Workload> mix =
        (i % 2 == 0)
            ? std::vector<sim::Workload>{workloads::hpcg(), workloads::fft()}
            : std::vector<sim::Workload>{workloads::fft(),
                                         workloads::stream()};
    runs.push_back(collector.collect_tenants(sim::PlatformConfig::arm(), mix,
                                             kStreamTicks, kSeed + 2000 + i));
  }
  return runs;
}

/// Node-row NaN on node 1 tick 17 (node hold), tenant-row NaN on node 1
/// tick 21 (tenant hold) and on node 0 tick 0 (hold before any good row).
std::vector<double> tenant_row_input(const measure::CollectedRun& run,
                                     std::size_t node, std::size_t t) {
  const auto src = run.tenant_pmcs.row(t);
  std::vector<double> row(src.begin(), src.end());
  if ((node == 1 && t == 21) || (node == 0 && t == 0)) {
    row[2] = std::numeric_limits<double>::quiet_NaN();
  }
  return row;
}

class FleetAttributionTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  static void SetUpTestSuite() {
    golden_ = new HighRpm(train_tenant_golden(/*self_cal=*/false));
  }
  static void TearDownTestSuite() {
    delete golden_;
    golden_ = nullptr;
  }
  void TearDown() override { runtime::set_thread_count(0); }
  static HighRpm* golden_;
};

HighRpm* FleetAttributionTest::golden_ = nullptr;

TEST_P(FleetAttributionTest, TenantEstimatesMatchSerialBitForBit) {
  const std::size_t nodes = 5;
  const auto runs = collect_tenant_streams(nodes);

  runtime::set_thread_count(1);
  std::vector<std::vector<PowerEstimate>> reference(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    HighRpm node = *golden_;
    node.reset_stream();
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      const TickInput in = tick_input(runs[i], i, t);
      const auto trow = tenant_row_input(runs[i], i, t);
      reference[i].push_back(node.on_tick(in.pmcs, trow, in.reading));
    }
  }

  runtime::set_thread_count(std::get<0>(GetParam()));
  FleetConfig cfg;
  cfg.shard_lanes = std::get<1>(GetParam());
  FleetStepper fleet(*golden_, nodes, cfg);
  ASSERT_EQ(fleet.tenants(), kTenants);

  const std::size_t f = runs[0].dataset.features().cols();
  math::Matrix pmcs(nodes, f);
  math::Matrix trows(nodes, kTenants * sim::kNumPmcEvents);
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> out(nodes);
  for (std::size_t t = 0; t < kStreamTicks; ++t) {
    for (std::size_t i = 0; i < nodes; ++i) {
      const TickInput in = tick_input(runs[i], i, t);
      std::copy(in.pmcs.begin(), in.pmcs.end(), pmcs.row(i).begin());
      const auto trow = tenant_row_input(runs[i], i, t);
      std::copy(trow.begin(), trow.end(), trows.row(i).begin());
      readings[i] = in.reading;
    }
    fleet.step_tick(pmcs, readings, out, {}, &trows);
    for (std::size_t i = 0; i < nodes; ++i) {
      ASSERT_EQ(out[i].node_w, reference[i][t].node_w)
          << "node " << i << " tick " << t;
      ASSERT_EQ(out[i].tenants, kTenants) << "node " << i << " tick " << t;
      for (std::size_t k = 0; k < kTenants; ++k) {
        ASSERT_EQ(out[i].tenant_w[k], reference[i][t].tenant_w[k])
            << "node " << i << " tick " << t << " tenant " << k << " at "
            << std::get<0>(GetParam()) << " threads, shard_lanes "
            << std::get<1>(GetParam());
      }
    }
  }

  // Without the tenant matrix the same fleet skips attribution cleanly.
  fleet.reset_streams();
  fleet.step_tick(pmcs, readings, out);
  for (std::size_t i = 0; i < nodes; ++i) EXPECT_EQ(out[i].tenants, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByShardLanes, FleetAttributionTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 8),
                       ::testing::Values<std::size_t>(2, 64)),
    [](const auto& param_info) {
      return "threads" + std::to_string(std::get<0>(param_info.param)) +
             "_lanes" + std::to_string(std::get<1>(param_info.param));
    });

TEST(FleetAttribution, RejectsSelfCalibratingGolden) {
  // The fleet shares ONE const attribution head across lanes; a
  // self-calibrating head mutates under drift, so the ctor must refuse it
  // rather than silently dropping per-lane recalibration.
  const HighRpm golden = train_tenant_golden(/*self_cal=*/true);
  EXPECT_THROW(FleetStepper(golden, 2), std::invalid_argument);
}

TEST(FleetAttribution, StepTickValidatesTenantMatrixShape) {
  const HighRpm golden = train_tenant_golden(/*self_cal=*/false);
  FleetStepper fleet(golden, 3);
  math::Matrix pmcs(3, sim::kNumPmcEvents);
  std::vector<std::optional<double>> readings(3);
  std::vector<PowerEstimate> out(3);
  math::Matrix bad_rows(2, kTenants * sim::kNumPmcEvents);
  EXPECT_THROW(fleet.step_tick(pmcs, readings, out, {}, &bad_rows),
               std::invalid_argument);
  math::Matrix bad_cols(3, kTenants * sim::kNumPmcEvents + 1);
  EXPECT_THROW(fleet.step_tick(pmcs, readings, out, {}, &bad_cols),
               std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::core
