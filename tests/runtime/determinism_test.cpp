// The tentpole guarantee of the runtime layer: same-seed serial
// (HIGHRPM_THREADS=1) and parallel executions produce bit-identical
// results. These tests sweep seeds x thread counts over the three layers
// that parallelized — model fitting/prediction (ml), forest training
// (ml/ensemble), and corpus collection (core::collect_all_suites) — and
// compare against a serial reference with exact floating-point equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "highrpm/core/protocol.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/math/rng.hpp"
#include "highrpm/ml/baselines.hpp"
#include "highrpm/ml/ensemble.hpp"
#include "highrpm/runtime/thread_pool.hpp"

namespace highrpm {
namespace {

struct SyntheticData {
  math::Matrix x{0, 0};
  std::vector<double> y;
};

/// A small nonlinear regression problem, reproducible from the seed alone.
SyntheticData make_synthetic(std::uint64_t seed, std::size_t n = 160,
                             std::size_t d = 6) {
  math::Rng rng(seed);
  SyntheticData data;
  data.x = math::Matrix(n, d);
  data.y.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      data.x(r, c) = rng.uniform(-2.0, 2.0);
    }
    data.y[r] = 3.0 * data.x(r, 0) - 2.0 * data.x(r, 1) +
                data.x(r, 2) * data.x(r, 3) + 0.1 * rng.normal();
  }
  return data;
}

/// Fit `model` and predict the training matrix at the given thread count.
std::vector<double> fit_predict(const std::string& model, std::uint64_t seed,
                                std::size_t threads) {
  runtime::set_thread_count(threads);
  const auto data = make_synthetic(seed);
  auto m = ml::make_baseline(model, seed);
  m->fit(data.x, data.y);
  return m->predict(data.x);
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
 protected:
  std::uint64_t seed() const { return std::get<0>(GetParam()); }
  std::size_t threads() const { return std::get<1>(GetParam()); }
  void TearDown() override { runtime::set_thread_count(0); }
};

TEST_P(DeterminismTest, BaselinePredictionsMatchSerialBitForBit) {
  for (const char* model :
       {"LR", "LaR", "RR", "SGD", "DT", "RF", "GB", "KNN", "SVM", "NN"}) {
    const auto serial = fit_predict(model, seed(), 1);
    const auto parallel = fit_predict(model, seed(), threads());
    ASSERT_EQ(serial.size(), parallel.size()) << model;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Exact equality on purpose: the determinism contract is byte
      // identity, not tolerance-level agreement.
      ASSERT_EQ(serial[i], parallel[i])
          << model << " diverged at sample " << i << " with "
          << threads() << " threads";
    }
  }
}

TEST_P(DeterminismTest, RandomForestFitIsThreadCountInvariant) {
  const auto data = make_synthetic(seed());
  ml::ForestConfig cfg;
  cfg.n_trees = 12;
  cfg.seed = seed();

  runtime::set_thread_count(1);
  ml::RandomForestRegressor serial_rf(cfg);
  serial_rf.fit(data.x, data.y);
  const auto serial = serial_rf.predict(data.x);

  runtime::set_thread_count(threads());
  ml::RandomForestRegressor parallel_rf(cfg);
  parallel_rf.fit(data.x, data.y);
  const auto parallel = parallel_rf.predict(data.x);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "sample " << i;
  }
}

TEST_P(DeterminismTest, CollectAllSuitesCorpusIsThreadCountInvariant) {
  core::ProtocolConfig cfg;
  cfg.samples_per_suite = 60;
  cfg.min_ticks_per_workload = 30;
  cfg.max_workloads_per_suite = 2;
  cfg.seed = seed();

  runtime::set_thread_count(1);
  const auto serial = core::collect_all_suites(cfg);
  runtime::set_thread_count(threads());
  const auto parallel = core::collect_all_suites(cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    const auto& a = serial[s];
    const auto& b = parallel[s];
    ASSERT_EQ(a.suite, b.suite);
    ASSERT_EQ(a.runs.size(), b.runs.size()) << a.suite;
    for (std::size_t r = 0; r < a.runs.size(); ++r) {
      const auto& ra = a.runs[r];
      const auto& rb = b.runs[r];
      ASSERT_EQ(ra.workload_name, rb.workload_name);
      ASSERT_EQ(ra.measured, rb.measured);

      const auto fa = ra.dataset.features().flat();
      const auto fb = rb.dataset.features().flat();
      ASSERT_EQ(fa.size(), fb.size());
      for (std::size_t i = 0; i < fa.size(); ++i) {
        ASSERT_EQ(fa[i], fb[i]) << ra.workload_name << " feature " << i;
      }
      for (const char* target : {"P_NODE", "P_CPU", "P_MEM"}) {
        const auto& ta = ra.dataset.target(target);
        const auto& tb = rb.dataset.target(target);
        ASSERT_EQ(ta, tb) << ra.workload_name << ' ' << target;
      }
      ASSERT_EQ(ra.ipmi_readings.size(), rb.ipmi_readings.size());
      for (std::size_t i = 0; i < ra.ipmi_readings.size(); ++i) {
        ASSERT_EQ(ra.ipmi_readings[i].tick_index,
                  rb.ipmi_readings[i].tick_index);
        ASSERT_EQ(ra.ipmi_readings[i].power_w, rb.ipmi_readings[i].power_w);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreads, DeterminismTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2023, 424242),
                       ::testing::Values<std::size_t>(1, 2, 8)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             "_threads" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace highrpm
