#include "highrpm/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "highrpm/runtime/parallel_for.hpp"

namespace highrpm::runtime {
namespace {

/// Restores the global pool to its default (env-derived) size after each
/// test, so tests cannot leak a pool size into each other.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("HIGHRPM_THREADS");
    set_thread_count(0);
  }
};

TEST_F(ThreadPoolTest, ZeroItemsIsANoOp) {
  set_thread_count(4);
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(parallel_map(0, [](std::size_t i) { return i; }).empty());
}

TEST_F(ThreadPoolTest, SingleItemRunsInline) {
  set_thread_count(4);
  int calls = 0;  // non-atomic on purpose: n==1 must run on this thread
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  set_thread_count(8);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ThreadPoolTest, ParallelMapReturnsIndexOrderedResults) {
  set_thread_count(8);
  const auto out = parallel_map(257, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 3 * i + 1);
  }
}

TEST_F(ThreadPoolTest, ExceptionPropagatesOutOfParallelFor) {
  set_thread_count(4);
  try {
    parallel_for(64, [](std::size_t i) {
      if (i == 17) throw std::runtime_error("boom at 17");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 17");
  }
}

TEST_F(ThreadPoolTest, LowestIndexExceptionWinsOnDirectRun) {
  set_thread_count(4);
  const std::function<void(std::size_t)> fn = [](std::size_t i) {
    if (i == 3 || i == 11) {
      throw std::runtime_error("err" + std::to_string(i));
    }
  };
  try {
    global_pool().run(16, fn);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "err3");
  }
}

TEST_F(ThreadPoolTest, NestedDirectRunIsRejected) {
  set_thread_count(2);
  std::atomic<int> rejections{0};
  const std::function<void(std::size_t)> inner = [](std::size_t) {};
  const std::function<void(std::size_t)> outer = [&](std::size_t) {
    try {
      global_pool().run(2, inner);
    } catch (const std::logic_error&) {
      ++rejections;
    }
  };
  global_pool().run(4, outer);
  EXPECT_EQ(rejections.load(), 4);
}

TEST_F(ThreadPoolTest, NestedParallelForFallsBackToSerial) {
  set_thread_count(4);
  constexpr std::size_t kOuter = 8, kInner = 32;
  std::vector<std::size_t> sums(kOuter, 0);
  parallel_for(kOuter, [&](std::size_t o) {
    EXPECT_TRUE(ThreadPool::in_worker());
    // Inner loop must degrade to a serial loop on this worker; writing to
    // the outer task's slot without synchronization proves it did.
    parallel_for(kInner, [&](std::size_t i) { sums[o] += i; });
  });
  for (const auto s : sums) {
    EXPECT_EQ(s, kInner * (kInner - 1) / 2);
  }
}

TEST_F(ThreadPoolTest, InWorkerIsFalseOutsideJobs) {
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST_F(ThreadPoolTest, SetThreadCountResizesGlobalPool) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  EXPECT_EQ(global_pool().size(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
}

TEST_F(ThreadPoolTest, EnvVariableControlsDefaultSize) {
  setenv("HIGHRPM_THREADS", "5", 1);
  set_thread_count(0);  // re-read the environment
  EXPECT_EQ(thread_count(), 5u);

  setenv("HIGHRPM_THREADS", "not-a-number", 1);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1u);  // falls back to hardware_concurrency

  unsetenv("HIGHRPM_THREADS");
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1u);
}

}  // namespace
}  // namespace highrpm::runtime
