#include "highrpm/measure/pmc_sampler.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/math/stats.hpp"
#include "highrpm/sim/node.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::measure {
namespace {

sim::Trace make_trace(std::size_t ticks) {
  sim::NodeSimulator node(sim::PlatformConfig::arm(), workloads::fft(), 21);
  return node.run(ticks);
}

TEST(PmcSampler, MatrixShapeMatchesTrace) {
  const auto trace = make_trace(40);
  PmcSampler sampler;
  const auto m = sampler.sample_trace(trace);
  EXPECT_EQ(m.rows(), 40u);
  EXPECT_EQ(m.cols(), sim::kNumPmcEvents);
}

TEST(PmcSampler, NoiseIsRelative) {
  const auto trace = make_trace(300);
  PmcSamplerConfig cfg;
  cfg.relative_noise = 0.02;
  PmcSampler sampler(cfg);
  const auto m = sampler.sample_trace(trace);
  std::vector<double> rel_err;
  const std::size_t cyc = static_cast<std::size_t>(sim::PmcEvent::kCpuCycles);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double truth = trace[r].pmcs[cyc];
    if (truth > 0) rel_err.push_back((m(r, cyc) - truth) / truth);
  }
  EXPECT_NEAR(math::stddev(rel_err), 0.02, 0.01);
}

TEST(PmcSampler, ValuesAreNonNegative) {
  const auto trace = make_trace(100);
  PmcSamplerConfig cfg;
  cfg.relative_noise = 0.5;  // exaggerated noise to force clipping paths
  PmcSampler sampler(cfg);
  const auto m = sampler.sample_trace(trace);
  for (const double v : m.flat()) EXPECT_GE(v, 0.0);
}

TEST(PmcSampler, MultiplexingHoldsStaleValues) {
  const auto trace = make_trace(20);
  PmcSamplerConfig cfg;
  cfg.counter_slots = 4;  // only 4 of 14 events live per tick
  cfg.relative_noise = 0.0;
  PmcSampler sampler(cfg);
  sampler.reset();
  const auto first = sampler.sample(trace[0]);
  const auto second = sampler.sample(trace[1]);
  // Some events must be held from the previous tick (stale == identical).
  std::size_t held = 0;
  for (std::size_t e = 0; e < sim::kNumPmcEvents; ++e) {
    if (math::exact_eq(second[e], first[e])) ++held;
  }
  EXPECT_GE(held, sim::kNumPmcEvents - cfg.counter_slots - 1);
}

TEST(PmcSampler, NoMultiplexingTracksEveryEvent) {
  const auto trace = make_trace(10);
  PmcSamplerConfig cfg;
  cfg.counter_slots = 0;
  cfg.relative_noise = 0.0;
  PmcSampler sampler(cfg);
  sampler.reset();
  for (const auto& tick : trace.samples()) {
    const auto v = sampler.sample(tick);
    for (std::size_t e = 0; e < sim::kNumPmcEvents; ++e) {
      EXPECT_DOUBLE_EQ(v[e], tick.pmcs[e]);
    }
  }
}

TEST(PmcSampler, ResetIsDeterministic) {
  const auto trace = make_trace(15);
  PmcSampler sampler;
  const auto a = sampler.sample_trace(trace);
  const auto b = sampler.sample_trace(trace);
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flat()[i], b.flat()[i]);
  }
}

// Regression: before the sensor-boundary guard, a NaN counter was held as
// the "last sampled value" under multiplexing and replayed for many ticks.
TEST(PmcSampler, RejectsNonFinitePmcValue) {
  PmcSampler sampler(PmcSamplerConfig{});
  sim::TickSample tick;
  tick.pmcs[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sampler.sample(tick), std::invalid_argument);
}

// Regression (failing before): the constructor validated nothing, so a NaN
// relative_noise poisoned every sampled counter (NaN < 0.0 is false — the
// same isfinite-ordering bug as the IPMI interval guard).
TEST(PmcSampler, RejectsNonFiniteOrNegativeRelativeNoise) {
  PmcSamplerConfig cfg;
  cfg.relative_noise = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(PmcSampler{cfg}, std::invalid_argument);
  cfg.relative_noise = -0.1;
  EXPECT_THROW(PmcSampler{cfg}, std::invalid_argument);
}

TEST(PmcSampler, RejectsZeroSampleStride) {
  PmcSamplerConfig cfg;
  cfg.sample_stride = 0;
  EXPECT_THROW(PmcSampler{cfg}, std::invalid_argument);
  PmcSampler sampler(PmcSamplerConfig{});
  EXPECT_THROW(sampler.set_sample_stride(0), std::invalid_argument);
}

TEST(PmcSampler, StrideHoldsValuesBetweenSampleTicks) {
  const auto trace = make_trace(10);
  PmcSamplerConfig cfg;
  cfg.sample_stride = 3;
  cfg.relative_noise = 0.0;
  cfg.counter_slots = 0;
  PmcSampler sampler(cfg);
  sampler.reset();
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const auto v = sampler.sample(trace[t]);
    // Fresh at ticks 0, 3, 6, 9; held (== the last sampled tick) between.
    const std::size_t src = (t / 3) * 3;
    for (std::size_t e = 0; e < sim::kNumPmcEvents; ++e) {
      EXPECT_DOUBLE_EQ(v[e], trace[src].pmcs[e]) << "tick " << t;
    }
  }
}

TEST(PmcSampler, StrideOneIsByteIdenticalToDefault) {
  // Held ticks must not consume RNG draws, so stride 1 (nothing held) has
  // to reproduce the pre-stride sampler exactly, noise included.
  const auto trace = make_trace(50);
  PmcSamplerConfig strided;
  strided.sample_stride = 1;
  PmcSampler a{PmcSamplerConfig{}}, b(strided);
  const auto ma = a.sample_trace(trace);
  const auto mb = b.sample_trace(trace);
  ASSERT_EQ(ma.flat().size(), mb.flat().size());
  for (std::size_t i = 0; i < ma.flat().size(); ++i) {
    EXPECT_EQ(ma.flat()[i], mb.flat()[i]);
  }
}

TEST(PmcSampler, SetStrideTakesEffectAtNextScheduledSample) {
  const auto trace = make_trace(12);
  PmcSamplerConfig cfg;
  cfg.relative_noise = 0.0;
  cfg.counter_slots = 0;
  PmcSampler sampler(cfg);
  sampler.reset();
  std::vector<std::size_t> fresh;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    if (t == 5) sampler.set_sample_stride(3);
    const auto v = sampler.sample(trace[t]);
    bool is_fresh = true;
    for (std::size_t e = 0; e < sim::kNumPmcEvents; ++e) {
      if (!math::exact_eq(v[e], trace[t].pmcs[e])) is_fresh = false;
    }
    if (is_fresh) fresh.push_back(t);
  }
  // Stride 1 through tick 4; the tick-5 sample (already scheduled) lands,
  // then the new stride schedules 8 and 11.
  const std::vector<std::size_t> expected{0, 1, 2, 3, 4, 5, 8, 11};
  EXPECT_EQ(fresh, expected);
}

TEST(PmcSampler, HeldTicksStillValidateInputs) {
  // The stride gate must not bypass the sensor-boundary isfinite guard:
  // a NaN arriving on a held tick is still rejected.
  const auto trace = make_trace(3);
  PmcSamplerConfig cfg;
  cfg.sample_stride = 4;
  PmcSampler sampler(cfg);
  sampler.reset();
  (void)sampler.sample(trace[0]);
  sim::TickSample bad = trace[1];
  bad.pmcs[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sampler.sample(bad), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::measure
