#include "highrpm/measure/pmc_sampler.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/math/stats.hpp"
#include "highrpm/sim/node.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::measure {
namespace {

sim::Trace make_trace(std::size_t ticks) {
  sim::NodeSimulator node(sim::PlatformConfig::arm(), workloads::fft(), 21);
  return node.run(ticks);
}

TEST(PmcSampler, MatrixShapeMatchesTrace) {
  const auto trace = make_trace(40);
  PmcSampler sampler;
  const auto m = sampler.sample_trace(trace);
  EXPECT_EQ(m.rows(), 40u);
  EXPECT_EQ(m.cols(), sim::kNumPmcEvents);
}

TEST(PmcSampler, NoiseIsRelative) {
  const auto trace = make_trace(300);
  PmcSamplerConfig cfg;
  cfg.relative_noise = 0.02;
  PmcSampler sampler(cfg);
  const auto m = sampler.sample_trace(trace);
  std::vector<double> rel_err;
  const std::size_t cyc = static_cast<std::size_t>(sim::PmcEvent::kCpuCycles);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double truth = trace[r].pmcs[cyc];
    if (truth > 0) rel_err.push_back((m(r, cyc) - truth) / truth);
  }
  EXPECT_NEAR(math::stddev(rel_err), 0.02, 0.01);
}

TEST(PmcSampler, ValuesAreNonNegative) {
  const auto trace = make_trace(100);
  PmcSamplerConfig cfg;
  cfg.relative_noise = 0.5;  // exaggerated noise to force clipping paths
  PmcSampler sampler(cfg);
  const auto m = sampler.sample_trace(trace);
  for (const double v : m.flat()) EXPECT_GE(v, 0.0);
}

TEST(PmcSampler, MultiplexingHoldsStaleValues) {
  const auto trace = make_trace(20);
  PmcSamplerConfig cfg;
  cfg.counter_slots = 4;  // only 4 of 14 events live per tick
  cfg.relative_noise = 0.0;
  PmcSampler sampler(cfg);
  sampler.reset();
  const auto first = sampler.sample(trace[0]);
  const auto second = sampler.sample(trace[1]);
  // Some events must be held from the previous tick (stale == identical).
  std::size_t held = 0;
  for (std::size_t e = 0; e < sim::kNumPmcEvents; ++e) {
    if (math::exact_eq(second[e], first[e])) ++held;
  }
  EXPECT_GE(held, sim::kNumPmcEvents - cfg.counter_slots - 1);
}

TEST(PmcSampler, NoMultiplexingTracksEveryEvent) {
  const auto trace = make_trace(10);
  PmcSamplerConfig cfg;
  cfg.counter_slots = 0;
  cfg.relative_noise = 0.0;
  PmcSampler sampler(cfg);
  sampler.reset();
  for (const auto& tick : trace.samples()) {
    const auto v = sampler.sample(tick);
    for (std::size_t e = 0; e < sim::kNumPmcEvents; ++e) {
      EXPECT_DOUBLE_EQ(v[e], tick.pmcs[e]);
    }
  }
}

TEST(PmcSampler, ResetIsDeterministic) {
  const auto trace = make_trace(15);
  PmcSampler sampler;
  const auto a = sampler.sample_trace(trace);
  const auto b = sampler.sample_trace(trace);
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flat()[i], b.flat()[i]);
  }
}

// Regression: before the sensor-boundary guard, a NaN counter was held as
// the "last sampled value" under multiplexing and replayed for many ticks.
TEST(PmcSampler, RejectsNonFinitePmcValue) {
  PmcSampler sampler(PmcSamplerConfig{});
  sim::TickSample tick;
  tick.pmcs[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sampler.sample(tick), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::measure
