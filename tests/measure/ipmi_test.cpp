#include "highrpm/measure/ipmi.hpp"

#include <gtest/gtest.h>

#include <limits>

#include <cmath>

#include "highrpm/sim/node.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::measure {
namespace {

sim::Trace make_trace(std::size_t ticks, std::uint64_t seed = 1) {
  sim::NodeSimulator node(sim::PlatformConfig::arm(), workloads::fft(), seed);
  return node.run(ticks);
}

TEST(IpmiSensor, RejectsSubSecondInterval) {
  IpmiConfig cfg;
  cfg.interval_s = 0.5;
  EXPECT_THROW(IpmiSensor{cfg}, std::invalid_argument);
}

TEST(IpmiSensor, SamplesAtConfiguredInterval) {
  const auto trace = make_trace(100);
  IpmiConfig cfg;
  cfg.interval_s = 10.0;  // paper: 0.1 Sa/s
  IpmiSensor sensor(cfg);
  const auto readings = sensor.sample_trace(trace);
  EXPECT_EQ(readings.size(), 10u);
  for (std::size_t i = 0; i < readings.size(); ++i) {
    EXPECT_EQ(readings[i].tick_index, i * 10);
  }
}

TEST(IpmiSensor, QuantizesToResolution) {
  const auto trace = make_trace(50);
  IpmiConfig cfg;
  cfg.interval_s = 5.0;
  cfg.quantization_w = 1.0;
  cfg.sensor_noise_w = 0.0;
  IpmiSensor sensor(cfg);
  for (const auto& r : sensor.sample_trace(trace)) {
    EXPECT_DOUBLE_EQ(r.power_w, std::round(r.power_w));
  }
}

TEST(IpmiSensor, ReadoutDelayReturnsStaleValue) {
  const auto trace = make_trace(50);
  IpmiConfig cfg;
  cfg.interval_s = 10.0;
  cfg.readout_delay_s = 3.0;
  cfg.quantization_w = 0.0;
  cfg.sensor_noise_w = 0.0;
  IpmiSensor sensor(cfg);
  const auto readings = sensor.sample_trace(trace);
  ASSERT_GE(readings.size(), 2u);
  // Reading at tick 10 must equal the true power at tick 7 (3 s stale).
  EXPECT_NEAR(readings[1].power_w, trace[7].p_node_w, 1e-9);
}

TEST(IpmiSensor, NoiseIsBoundedInPractice) {
  const auto trace = make_trace(400);
  IpmiConfig cfg;
  cfg.interval_s = 10.0;
  cfg.readout_delay_s = 0.0;
  cfg.sensor_noise_w = 0.5;
  cfg.quantization_w = 1.0;
  IpmiSensor sensor(cfg);
  for (const auto& r : sensor.sample_trace(trace)) {
    EXPECT_NEAR(r.power_w, trace[r.tick_index].p_node_w, 4.0);
  }
}

TEST(IpmiSensor, ResetRestartsStream) {
  const auto trace = make_trace(30);
  IpmiSensor sensor;
  const auto first = sensor.sample_trace(trace);
  const auto second = sensor.sample_trace(trace);  // sample_trace resets
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].power_w, second[i].power_w);
  }
}

TEST(IpmiSensor, StreamingOfferMatchesBatch) {
  const auto trace = make_trace(60);
  IpmiConfig cfg;
  cfg.interval_s = 10.0;
  IpmiSensor batch(cfg), stream(cfg);
  const auto batch_readings = batch.sample_trace(trace);
  std::vector<IpmiReading> stream_readings;
  stream.reset();
  for (const auto& tick : trace.samples()) {
    if (auto r = stream.offer(tick)) stream_readings.push_back(*r);
  }
  ASSERT_EQ(batch_readings.size(), stream_readings.size());
  for (std::size_t i = 0; i < batch_readings.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch_readings[i].power_w, stream_readings[i].power_w);
  }
}

class IpmiIntervalProperty : public ::testing::TestWithParam<double> {};

TEST_P(IpmiIntervalProperty, ReadingCountMatchesInterval) {
  const double interval = GetParam();
  const auto trace = make_trace(200);
  IpmiConfig cfg;
  cfg.interval_s = interval;
  IpmiSensor sensor(cfg);
  const auto readings = sensor.sample_trace(trace);
  const std::size_t expected =
      (200 + static_cast<std::size_t>(interval) - 1) /
      static_cast<std::size_t>(interval);
  EXPECT_EQ(readings.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Intervals, IpmiIntervalProperty,
                         ::testing::Values(1.0, 5.0, 10.0, 30.0, 60.0, 100.0));

// Regression: before the sensor-boundary guard, a NaN node power entered
// the readout history and surfaced ticks later as a NaN reading.
TEST(IpmiSensor, RejectsNonFiniteTickPower) {
  IpmiSensor sensor(IpmiConfig{});
  sim::TickSample tick;
  tick.p_node_w = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sensor.offer(tick), std::invalid_argument);
  tick.p_node_w = std::numeric_limits<double>::infinity();
  EXPECT_THROW(sensor.offer(tick), std::invalid_argument);
}

// Regression (failing before): `interval_s < 1.0` compares false for NaN,
// so a NaN interval sailed through construction and reached llround in the
// scheduler — undefined behavior. The guard must be isfinite-first.
TEST(IpmiSensor, RejectsNonFiniteInterval) {
  IpmiConfig cfg;
  cfg.interval_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(IpmiSensor{cfg}, std::invalid_argument);
  cfg.interval_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(IpmiSensor{cfg}, std::invalid_argument);
}

TEST(IpmiSensor, SetIntervalRejectsInvalidCadence) {
  IpmiSensor sensor(IpmiConfig{});
  EXPECT_THROW(sensor.set_interval(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(sensor.set_interval(0.0), std::invalid_argument);
  EXPECT_THROW(sensor.set_interval(-10.0), std::invalid_argument);
  EXPECT_THROW(sensor.set_interval(0.5), std::invalid_argument);
  EXPECT_NO_THROW(sensor.set_interval(1.0));
}

TEST(IpmiSensor, SetIntervalTakesEffectAfterNextScheduledReading) {
  const auto trace = make_trace(40);
  IpmiConfig cfg;
  cfg.interval_s = 10.0;
  IpmiSensor sensor(cfg);
  sensor.reset();
  std::vector<std::size_t> ticks;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    if (auto r = sensor.offer(trace[t])) ticks.push_back(r->tick_index);
    // Widen the cadence after the second reading lands: the already
    // scheduled tick-20 reading still happens, the one after moves to +5.
    if (t == 10) sensor.set_interval(5.0);
  }
  const std::vector<std::size_t> expected{0, 10, 20, 25, 30, 35};
  EXPECT_EQ(ticks, expected);
}

TEST(IpmiSensor, SetIntervalWithSameValueKeepsScheduleByteIdentical) {
  const auto trace = make_trace(60);
  IpmiConfig cfg;
  cfg.interval_s = 10.0;
  IpmiSensor batch(cfg), redundant(cfg);
  const auto batch_readings = batch.sample_trace(trace);
  redundant.reset();
  std::vector<IpmiReading> got;
  for (const auto& tick : trace.samples()) {
    redundant.set_interval(10.0);  // idempotent: no schedule perturbation
    if (auto r = redundant.offer(tick)) got.push_back(*r);
  }
  ASSERT_EQ(batch_readings.size(), got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(batch_readings[i].tick_index, got[i].tick_index);
    EXPECT_DOUBLE_EQ(batch_readings[i].power_w, got[i].power_w);
  }
}

}  // namespace
}  // namespace highrpm::measure
