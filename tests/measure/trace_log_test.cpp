#include "highrpm/measure/trace_log.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "highrpm/data/csv.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::measure {
namespace {

class TraceLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("highrpm_log_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  static CollectedRun make_run(std::size_t ticks = 60) {
    Collector collector;
    return collector.collect(sim::PlatformConfig::arm(), workloads::fft(),
                             ticks, 71);
  }

  std::filesystem::path path_;
};

TEST_F(TraceLogTest, RoundTripPreservesShape) {
  const auto run = make_run();
  save_run(path_.string(), run);
  const auto back = load_run(path_.string());
  EXPECT_EQ(back.num_ticks(), run.num_ticks());
  EXPECT_EQ(back.dataset.num_features(), run.dataset.num_features());
  EXPECT_EQ(back.measured, run.measured);
  EXPECT_EQ(back.ipmi_readings.size(), run.ipmi_readings.size());
}

TEST_F(TraceLogTest, RoundTripPreservesValues) {
  const auto run = make_run();
  save_run(path_.string(), run);
  const auto back = load_run(path_.string());
  for (std::size_t t = 0; t < run.num_ticks(); ++t) {
    EXPECT_NEAR(back.dataset.target("P_NODE")[t],
                run.dataset.target("P_NODE")[t], 1e-4);
    EXPECT_NEAR(back.dataset.target("P_CPU")[t],
                run.dataset.target("P_CPU")[t], 1e-4);
    EXPECT_NEAR(back.truth[t].p_cpu_w, run.truth[t].p_cpu_w, 1e-4);
    EXPECT_NEAR(back.truth[t].p_node_w, run.truth[t].p_node_w, 1e-3);
    // Relative PMC precision (absolute values are ~1e11).
    EXPECT_NEAR(back.dataset.features()(t, 0) /
                    std::max(1.0, run.dataset.features()(t, 0)),
                1.0, 1e-6);
  }
  for (std::size_t i = 0; i < run.ipmi_readings.size(); ++i) {
    EXPECT_EQ(back.ipmi_readings[i].tick_index,
              run.ipmi_readings[i].tick_index);
    EXPECT_NEAR(back.ipmi_readings[i].power_w, run.ipmi_readings[i].power_w,
                1e-4);
  }
}

TEST_F(TraceLogTest, LoadedRunWorksWithStaticTrrPath) {
  // The loaded log must be directly usable for restoration: its measured
  // mask and IPMI readings agree.
  const auto run = make_run(80);
  save_run(path_.string(), run);
  const auto back = load_run(path_.string());
  const auto idx = back.measured_indices();
  ASSERT_EQ(idx.size(), back.ipmi_readings.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(back.ipmi_readings[i].tick_index, idx[i]);
  }
}

TEST_F(TraceLogTest, MissingFileThrows) {
  EXPECT_THROW(load_run("/nonexistent/log.csv"), std::runtime_error);
}

TEST_F(TraceLogTest, LogWithoutTruthColumnsFallsBackToTargets) {
  const auto run = make_run();
  save_run(path_.string(), run);
  // Strip the truth columns, as a real-deployment log would look.
  auto table = data::read_csv(path_.string());
  const std::size_t keep = table.header.size() - 3;
  table.header.resize(keep);
  for (auto& row : table.rows) row.resize(keep);
  data::write_csv(path_.string(), table);

  const auto back = load_run(path_.string());
  for (std::size_t t = 0; t < back.num_ticks(); ++t) {
    // Truth now mirrors the rig targets.
    EXPECT_NEAR(back.truth[t].p_cpu_w, back.dataset.target("P_CPU")[t], 1e-9);
    EXPECT_NEAR(back.truth[t].p_node_w, back.dataset.target("P_NODE")[t],
                1e-6);
  }
}

}  // namespace
}  // namespace highrpm::measure
