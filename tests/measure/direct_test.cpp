#include "highrpm/measure/direct.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "highrpm/math/stats.hpp"
#include "highrpm/sim/node.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::measure {
namespace {

TEST(DirectRig, ReadsEveryTick) {
  sim::NodeSimulator node(sim::PlatformConfig::arm(), workloads::fft(), 1);
  const auto trace = node.run(50);
  DirectMeasurementRig rig;
  const auto readings = rig.read_trace(trace);
  EXPECT_EQ(readings.size(), trace.size());  // 1 Sa/s dense, per §5.2
}

TEST(DirectRig, ErrorIsTenthOfAWatt) {
  sim::NodeSimulator node(sim::PlatformConfig::arm(), workloads::stream(), 2);
  const auto trace = node.run(500);
  DirectRigConfig cfg;
  cfg.reading_error_w = 0.1;  // paper: "a power reading error of 0.1W"
  DirectMeasurementRig rig(cfg);
  const auto readings = rig.read_trace(trace);
  std::vector<double> cpu_err, mem_err;
  for (std::size_t i = 0; i < readings.size(); ++i) {
    cpu_err.push_back(readings[i].cpu_w - trace[i].p_cpu_w);
    mem_err.push_back(readings[i].mem_w - trace[i].p_mem_w);
  }
  EXPECT_NEAR(math::stddev(cpu_err), 0.1, 0.03);
  EXPECT_NEAR(math::stddev(mem_err), 0.1, 0.03);
  EXPECT_NEAR(math::mean(cpu_err), 0.0, 0.02);  // unbiased
}

TEST(DirectRig, ReadingsAreNonNegative) {
  sim::TickSample tick;
  tick.p_cpu_w = 0.01;
  tick.p_mem_w = 0.01;
  DirectRigConfig cfg;
  cfg.reading_error_w = 5.0;  // large noise to force clipping
  DirectMeasurementRig rig(cfg);
  for (int i = 0; i < 200; ++i) {
    const auto r = rig.read(tick);
    EXPECT_GE(r.cpu_w, 0.0);
    EXPECT_GE(r.mem_w, 0.0);
  }
}

TEST(DirectRig, DeterministicForSameSeed) {
  sim::NodeSimulator node(sim::PlatformConfig::arm(), workloads::fft(), 3);
  const auto trace = node.run(20);
  DirectRigConfig cfg;
  cfg.seed = 55;
  DirectMeasurementRig a(cfg), b(cfg);
  const auto ra = a.read_trace(trace);
  const auto rb = b.read_trace(trace);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].cpu_w, rb[i].cpu_w);
  }
}

// Regression: before the sensor-boundary guard, a non-finite component
// power flowed straight into the SRR training targets as NaN.
TEST(DirectRig, RejectsNonFiniteTickPower) {
  DirectMeasurementRig rig(DirectRigConfig{});
  sim::TickSample tick;
  tick.p_cpu_w = std::numeric_limits<double>::quiet_NaN();
  tick.p_mem_w = 1.0;
  EXPECT_THROW(rig.read(tick), std::invalid_argument);
  tick.p_cpu_w = 1.0;
  tick.p_mem_w = -std::numeric_limits<double>::infinity();
  EXPECT_THROW(rig.read(tick), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::measure
