#include "highrpm/measure/collector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/measure/stream.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::measure {
namespace {

TEST(Collector, ProducesAlignedRecord) {
  Collector collector;
  const auto run = collector.collect(sim::PlatformConfig::arm(),
                                     workloads::fft(), 100, /*seed=*/1);
  EXPECT_EQ(run.num_ticks(), 100u);
  EXPECT_EQ(run.dataset.num_features(), sim::kNumPmcEvents);
  EXPECT_EQ(run.measured.size(), 100u);
  EXPECT_EQ(run.truth.size(), 100u);
  EXPECT_EQ(run.workload_name, "fft");
  EXPECT_EQ(run.suite, "HPCC");
  EXPECT_TRUE(run.dataset.has_target("P_NODE"));
  EXPECT_TRUE(run.dataset.has_target("P_CPU"));
  EXPECT_TRUE(run.dataset.has_target("P_MEM"));
}

TEST(Collector, MeasuredMaskMatchesIpmiReadings) {
  Collector collector;
  const auto run = collector.collect(sim::PlatformConfig::arm(),
                                     workloads::stream(), 95, 2);
  const auto idx = run.measured_indices();
  ASSERT_EQ(idx.size(), run.ipmi_readings.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(run.ipmi_readings[i].tick_index, idx[i]);
  }
  // Default IPMI interval is 10 s -> readings at 0, 10, ..., 90.
  EXPECT_EQ(idx.size(), 10u);
  EXPECT_EQ(idx.front(), 0u);
}

TEST(Collector, NodeTargetIsGroundTruth) {
  Collector collector;
  const auto run = collector.collect(sim::PlatformConfig::arm(),
                                     workloads::fft(), 30, 3);
  const auto& p_node = run.dataset.target("P_NODE");
  for (std::size_t i = 0; i < run.num_ticks(); ++i) {
    EXPECT_DOUBLE_EQ(p_node[i], run.truth[i].p_node_w);
  }
}

TEST(Collector, ComponentTargetsAreRigReadingsNotTruth) {
  Collector collector;
  const auto run = collector.collect(sim::PlatformConfig::arm(),
                                     workloads::fft(), 200, 4);
  const auto& p_cpu = run.dataset.target("P_CPU");
  // Rig readings carry 0.1 W noise: close to but not exactly truth.
  std::size_t exact = 0;
  for (std::size_t i = 0; i < run.num_ticks(); ++i) {
    EXPECT_NEAR(p_cpu[i], run.truth[i].p_cpu_w, 1.0);
    if (math::exact_eq(p_cpu[i], run.truth[i].p_cpu_w)) ++exact;
  }
  EXPECT_LT(exact, 5u);
}

TEST(Collector, DifferentSeedsGiveDifferentData) {
  Collector collector;
  const auto a = collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 50, 10);
  const auto b = collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 50, 11);
  EXPECT_NE(a.dataset.target("P_NODE")[25], b.dataset.target("P_NODE")[25]);
}

TEST(Collector, SameSeedReproduces) {
  Collector collector;
  const auto a = collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 50, 12);
  const auto b = collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 50, 12);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.dataset.target("P_NODE")[i],
                     b.dataset.target("P_NODE")[i]);
    EXPECT_DOUBLE_EQ(a.dataset.features()(i, 0), b.dataset.features()(i, 0));
  }
}

TEST(Collector, CollectTenantsRecordsAlignedPerTenantData) {
  Collector collector;
  const std::vector<sim::Workload> mix{workloads::fft(), workloads::stream(),
                                       workloads::hpcg()};
  const auto run =
      collector.collect_tenants(sim::PlatformConfig::arm(), mix, 80, 11);
  EXPECT_EQ(run.num_ticks(), 80u);
  ASSERT_EQ(run.num_tenants, 3u);
  ASSERT_EQ(run.tenant_pmcs.rows(), 80u);
  ASSERT_EQ(run.tenant_pmcs.cols(), 3u * sim::kNumPmcEvents);
  ASSERT_EQ(run.tenant_power.rows(), 80u);
  ASSERT_EQ(run.tenant_power.cols(), 3u);
  // Per-tenant rates partition the simulator's TRUE node rates exactly
  // (the node-level feature row additionally carries PmcSampler noise, so
  // it is NOT the comparison target), and attributed watts are positive.
  for (std::size_t t = 0; t < 80; t += 13) {
    for (std::size_t e = 0; e < sim::kNumPmcEvents; ++e) {
      double sum = 0.0;
      for (std::size_t k = 0; k < 3; ++k) {
        sum += run.tenant_pmcs(t, k * sim::kNumPmcEvents + e);
      }
      EXPECT_NEAR(run.truth[t].pmcs[e], sum, 1e-9 * (1.0 + std::abs(sum)))
          << "tick " << t << " event " << e;
    }
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_GT(run.tenant_power(t, k), 0.0);
    }
  }
  // Single-workload collect keeps the legacy record shape.
  const auto plain =
      collector.collect(sim::PlatformConfig::arm(), workloads::fft(), 20, 11);
  EXPECT_EQ(plain.num_tenants, 0u);
  EXPECT_TRUE(plain.tenant_pmcs.empty());
}

TEST(Collector, TenantStreamMatchesCollectTenantsTickForTick) {
  // NodeTickStream's multi-tenant ctor must replay Collector::collect_tenants
  // exactly: same node rows, same reading schedule, same per-cgroup rows.
  const std::vector<sim::Workload> mix{workloads::fft(), workloads::stream()};
  Collector collector;
  const auto run =
      collector.collect_tenants(sim::PlatformConfig::arm(), mix, 60, 12);
  NodeTickStream stream(sim::PlatformConfig::arm(), mix, 12);
  const auto& features = run.dataset.features();
  for (std::size_t t = 0; t < 60; ++t) {
    const StreamTick tick = stream.next();
    ASSERT_EQ(tick.num_tenants, 2u);
    for (std::size_t e = 0; e < sim::kNumPmcEvents; ++e) {
      ASSERT_EQ(tick.pmcs[e], features(t, e)) << "tick " << t;
    }
    ASSERT_EQ(tick.has_reading, run.measured[t]) << "tick " << t;
    for (std::size_t j = 0; j < 2 * sim::kNumPmcEvents; ++j) {
      ASSERT_EQ(tick.tenant_pmcs[j], run.tenant_pmcs(t, j))
          << "tick " << t << " slot " << j;
    }
    // Unused ring slots stay zero — daemon staging relies on it.
    for (std::size_t j = 2 * sim::kNumPmcEvents; j < tick.tenant_pmcs.size();
         ++j) {
      ASSERT_EQ(tick.tenant_pmcs[j], 0.0);
    }
  }
}

TEST(Collector, CollectTenantsValidatesArguments) {
  Collector collector;
  EXPECT_THROW(collector.collect_tenants(sim::PlatformConfig::arm(), {}, 10, 1),
               std::invalid_argument);
}

TEST(Collector, FrequencyLevelOverrideHonored) {
  Collector collector;
  const auto lo = collector.collect(sim::PlatformConfig::arm(),
                                    workloads::fft(), 80, 13, /*freq=*/0);
  const auto hi = collector.collect(sim::PlatformConfig::arm(),
                                    workloads::fft(), 80, 13, /*freq=*/2);
  double lo_mean = 0.0, hi_mean = 0.0;
  for (std::size_t i = 0; i < 80; ++i) {
    lo_mean += lo.truth[i].p_cpu_w;
    hi_mean += hi.truth[i].p_cpu_w;
  }
  EXPECT_LT(lo_mean, hi_mean);
  EXPECT_EQ(lo.truth[0].freq_level, 0u);
  EXPECT_EQ(hi.truth[0].freq_level, 2u);
}

TEST(Collector, FeatureNamesAreThePmcEvents) {
  const auto names = pmc_feature_names();
  ASSERT_EQ(names.size(), sim::kNumPmcEvents);
  EXPECT_EQ(names[0], "CPU_CYCLES");
  EXPECT_EQ(names.back(), "MEM_ACCESS");
}

}  // namespace
}  // namespace highrpm::measure
