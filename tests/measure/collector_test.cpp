#include "highrpm/measure/collector.hpp"

#include <gtest/gtest.h>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::measure {
namespace {

TEST(Collector, ProducesAlignedRecord) {
  Collector collector;
  const auto run = collector.collect(sim::PlatformConfig::arm(),
                                     workloads::fft(), 100, /*seed=*/1);
  EXPECT_EQ(run.num_ticks(), 100u);
  EXPECT_EQ(run.dataset.num_features(), sim::kNumPmcEvents);
  EXPECT_EQ(run.measured.size(), 100u);
  EXPECT_EQ(run.truth.size(), 100u);
  EXPECT_EQ(run.workload_name, "fft");
  EXPECT_EQ(run.suite, "HPCC");
  EXPECT_TRUE(run.dataset.has_target("P_NODE"));
  EXPECT_TRUE(run.dataset.has_target("P_CPU"));
  EXPECT_TRUE(run.dataset.has_target("P_MEM"));
}

TEST(Collector, MeasuredMaskMatchesIpmiReadings) {
  Collector collector;
  const auto run = collector.collect(sim::PlatformConfig::arm(),
                                     workloads::stream(), 95, 2);
  const auto idx = run.measured_indices();
  ASSERT_EQ(idx.size(), run.ipmi_readings.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(run.ipmi_readings[i].tick_index, idx[i]);
  }
  // Default IPMI interval is 10 s -> readings at 0, 10, ..., 90.
  EXPECT_EQ(idx.size(), 10u);
  EXPECT_EQ(idx.front(), 0u);
}

TEST(Collector, NodeTargetIsGroundTruth) {
  Collector collector;
  const auto run = collector.collect(sim::PlatformConfig::arm(),
                                     workloads::fft(), 30, 3);
  const auto& p_node = run.dataset.target("P_NODE");
  for (std::size_t i = 0; i < run.num_ticks(); ++i) {
    EXPECT_DOUBLE_EQ(p_node[i], run.truth[i].p_node_w);
  }
}

TEST(Collector, ComponentTargetsAreRigReadingsNotTruth) {
  Collector collector;
  const auto run = collector.collect(sim::PlatformConfig::arm(),
                                     workloads::fft(), 200, 4);
  const auto& p_cpu = run.dataset.target("P_CPU");
  // Rig readings carry 0.1 W noise: close to but not exactly truth.
  std::size_t exact = 0;
  for (std::size_t i = 0; i < run.num_ticks(); ++i) {
    EXPECT_NEAR(p_cpu[i], run.truth[i].p_cpu_w, 1.0);
    if (math::exact_eq(p_cpu[i], run.truth[i].p_cpu_w)) ++exact;
  }
  EXPECT_LT(exact, 5u);
}

TEST(Collector, DifferentSeedsGiveDifferentData) {
  Collector collector;
  const auto a = collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 50, 10);
  const auto b = collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 50, 11);
  EXPECT_NE(a.dataset.target("P_NODE")[25], b.dataset.target("P_NODE")[25]);
}

TEST(Collector, SameSeedReproduces) {
  Collector collector;
  const auto a = collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 50, 12);
  const auto b = collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 50, 12);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.dataset.target("P_NODE")[i],
                     b.dataset.target("P_NODE")[i]);
    EXPECT_DOUBLE_EQ(a.dataset.features()(i, 0), b.dataset.features()(i, 0));
  }
}

TEST(Collector, FrequencyLevelOverrideHonored) {
  Collector collector;
  const auto lo = collector.collect(sim::PlatformConfig::arm(),
                                    workloads::fft(), 80, 13, /*freq=*/0);
  const auto hi = collector.collect(sim::PlatformConfig::arm(),
                                    workloads::fft(), 80, 13, /*freq=*/2);
  double lo_mean = 0.0, hi_mean = 0.0;
  for (std::size_t i = 0; i < 80; ++i) {
    lo_mean += lo.truth[i].p_cpu_w;
    hi_mean += hi.truth[i].p_cpu_w;
  }
  EXPECT_LT(lo_mean, hi_mean);
  EXPECT_EQ(lo.truth[0].freq_level, 0u);
  EXPECT_EQ(hi.truth[0].freq_level, 2u);
}

TEST(Collector, FeatureNamesAreThePmcEvents) {
  const auto names = pmc_feature_names();
  ASSERT_EQ(names.size(), sim::kNumPmcEvents);
  EXPECT_EQ(names[0], "CPU_CYCLES");
  EXPECT_EQ(names.back(), "MEM_ACCESS");
}

}  // namespace
}  // namespace highrpm::measure
