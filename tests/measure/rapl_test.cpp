#include "highrpm/measure/rapl.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "highrpm/sim/node.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::measure {
namespace {

sim::TickSample constant_tick(double cpu_w, double mem_w) {
  sim::TickSample s;
  s.p_cpu_w = cpu_w;
  s.p_mem_w = mem_w;
  s.p_node_w = cpu_w + mem_w;
  return s;
}

TEST(Rapl, ConfigValidation) {
  RaplConfig cfg;
  cfg.wrap_bits = 0;
  EXPECT_THROW(RaplInterface{cfg}, std::invalid_argument);
  cfg.wrap_bits = 64;
  EXPECT_THROW(RaplInterface{cfg}, std::invalid_argument);
}

TEST(Rapl, CountersIncreaseMonotonically) {
  RaplConfig cfg;
  cfg.relative_error = 0.0;
  RaplInterface rapl(cfg);
  std::uint64_t prev_pkg = rapl.energy_pkg_uj();
  for (int i = 0; i < 10; ++i) {
    rapl.advance(constant_tick(100.0, 20.0));
    EXPECT_GE(rapl.energy_pkg_uj(), prev_pkg);
    prev_pkg = rapl.energy_pkg_uj();
  }
}

TEST(Rapl, DifferentiatedPowerMatchesTruth) {
  RaplConfig cfg;
  cfg.relative_error = 0.0;
  RaplInterface rapl(cfg);
  const auto before_pkg = rapl.energy_pkg_uj();
  const auto before_ram = rapl.energy_ram_uj();
  for (int i = 0; i < 10; ++i) rapl.advance(constant_tick(80.0, 15.0));
  const double pkg_w =
      rapl.power_from_counters(before_pkg, rapl.energy_pkg_uj(), 10.0);
  const double ram_w =
      rapl.power_from_counters(before_ram, rapl.energy_ram_uj(), 10.0);
  // Quantization to the 61 uJ unit costs well under 0.1 W over 10 s.
  EXPECT_NEAR(pkg_w, 80.0, 0.1);
  EXPECT_NEAR(ram_w, 15.0, 0.1);
}

TEST(Rapl, HandlesSingleWraparound) {
  RaplConfig cfg;
  cfg.relative_error = 0.0;
  cfg.wrap_bits = 16;  // tiny counter: wraps after 65536 units (~4 J)
  RaplInterface rapl(cfg);
  // Move to ~3 J, snapshot, then push 2 J more across the 4 J boundary so
  // the raw counter value actually decreases (the detectable-wrap case —
  // like real RAPL, a wrap that leaves the counter above its old value is
  // indistinguishable from no wrap).
  for (int i = 0; i < 3; ++i) rapl.advance(constant_tick(1.0, 0.0));
  const auto before = rapl.energy_pkg_uj();
  for (int i = 0; i < 2; ++i) rapl.advance(constant_tick(1.0, 0.0));
  const auto after = rapl.energy_pkg_uj();
  ASSERT_LT(after, before);  // wrapped
  const double w = rapl.power_from_counters(before, after, 2.0);
  EXPECT_NEAR(w, 1.0, 0.05);
}

TEST(Rapl, ZeroDtThrows) {
  RaplInterface rapl;
  EXPECT_THROW(rapl.power_from_counters(0, 100, 0.0), std::invalid_argument);
}

TEST(Rapl, TracksRealWorkloadEnergy) {
  sim::NodeSimulator node(sim::PlatformConfig::x86(), workloads::hpcg(), 5);
  RaplConfig cfg;
  cfg.relative_error = 0.0;
  RaplInterface rapl(cfg);
  double true_cpu_energy = 0.0;
  const auto before = rapl.energy_pkg_uj();
  for (int i = 0; i < 60; ++i) {
    const auto tick = node.step();
    true_cpu_energy += tick.p_cpu_w;
    rapl.advance(tick);
  }
  const double measured_w =
      rapl.power_from_counters(before, rapl.energy_pkg_uj(), 60.0);
  EXPECT_NEAR(measured_w, true_cpu_energy / 60.0, 0.5);
}

// Regression: the energy counters accumulate, so before the guard one
// non-finite tick permanently corrupted every later readout; and a NaN dt
// slipped past the `dt <= 0` check to return NaN power.
TEST(Rapl, RejectsNonFiniteInputs) {
  RaplInterface rapl(RaplConfig{});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  sim::TickSample tick = constant_tick(10.0, 5.0);
  tick.p_cpu_w = nan;
  EXPECT_THROW(rapl.advance(tick), std::invalid_argument);
  EXPECT_THROW(rapl.power_from_counters(0, 100, nan), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::measure
