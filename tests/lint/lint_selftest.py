#!/usr/bin/env python3
"""Negative tests for tools/lint/highrpm_lint.py.

The fixture trees under tests/lint/fixtures/ exercise both directions:
  bad/   every rule must fire on its fixture file, and the
         comment/string/exemption file must stay clean — a linter that
         stops firing (or starts false-positiving) fails here.
  good/  a clean mini-tree must produce zero findings.

The real-tree sweep ("the current tree passes clean") is the separate
`lint.tree` ctest; this file only proves the linter itself still works.
"""

from __future__ import annotations

import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parents[1]
LINTER = REPO / "tools" / "lint" / "highrpm_lint.py"
FIXTURES = HERE / "fixtures"


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER), *args],
        capture_output=True, text=True, timeout=120)


class BadFixtureTree(unittest.TestCase):
    """Every rule must fire, each on its intended fixture file."""

    @classmethod
    def setUpClass(cls):
        cls.proc = run_lint("--root", str(FIXTURES / "bad"))
        cls.out = cls.proc.stdout

    def test_exit_status_signals_findings(self):
        self.assertEqual(self.proc.returncode, 1, self.out)

    def assert_finding(self, path: str, rule: str):
        needle = f"[{rule}]"
        hits = [ln for ln in self.out.splitlines()
                if ln.startswith(path + ":") and needle in ln]
        self.assertTrue(hits, f"expected {needle} on {path}; got:\n{self.out}")

    def test_rng_source_fires(self):
        self.assert_finding("src/core/uses_rand.cpp", "rng-source")

    def test_library_io_fires(self):
        self.assert_finding("src/core/uses_cout.cpp", "library-io")

    def test_library_file_io_fires(self):
        self.assert_finding("src/core/writes_file.cpp", "library-file-io")

    def test_library_file_io_catches_every_output_form(self):
        # ofstream, fstream, fopen, fwrite, create_directories, remove.
        hits = [ln for ln in self.out.splitlines()
                if ln.startswith("src/core/writes_file.cpp:")
                and "[library-file-io]" in ln]
        self.assertEqual(len(hits), 6, self.out)

    def test_float_compare_fires(self):
        self.assert_finding("src/math/float_cmp.cpp", "float-compare")

    def test_float_compare_catches_every_form(self):
        # ==0.0, !=0.5, literal-first, exponent, f-suffix: 5 lines.
        hits = [ln for ln in self.out.splitlines()
                if ln.startswith("src/math/float_cmp.cpp:")]
        self.assertEqual(len(hits), 5, self.out)

    def test_thread_outside_runtime_fires(self):
        self.assert_finding("src/sim/uses_thread.cpp",
                            "thread-outside-runtime")

    def test_memory_order_audit_fires_outside_homes(self):
        self.assert_finding("src/core/uses_atomic.cpp", "memory-order-audit")

    def test_memory_order_audit_catches_atomic_and_fence(self):
        # The declaration, the acquire load/loop line, and the fence — one
        # finding per offending line.
        hits = [ln for ln in self.out.splitlines()
                if ln.startswith("src/core/uses_atomic.cpp:")
                and "[memory-order-audit]" in ln]
        self.assertEqual(len(hits), 3, self.out)

    def test_memory_order_audit_requires_justified_relaxed(self):
        # Inside an audited home (serve/): one bare relaxed line plus one
        # carrying a marker with NO justification text — both must fire; the
        # acquire load must not.
        hits = [ln for ln in self.out.splitlines()
                if ln.startswith("src/serve/relaxed_unjustified.cpp:")
                and "[memory-order-audit]" in ln]
        self.assertEqual(len(hits), 2, self.out)

    def test_sensor_isfinite_fires(self):
        self.assert_finding("src/measure/ipmi.cpp", "sensor-isfinite")

    def test_alloc_in_step_fires(self):
        self.assert_finding("src/ml/alloc_in_step.cpp", "alloc-in-step")

    def test_alloc_in_step_catches_every_construction_form(self):
        # local-with-parens, local-with-braces, temporary, plus the step_*
        # and *_batch fleet-stepper entry points — and nothing in the
        # untracked helper function.
        hits = [ln for ln in self.out.splitlines()
                if ln.startswith("src/ml/alloc_in_step.cpp:")
                and "[alloc-in-step]" in ln]
        self.assertEqual(len(hits), 5, self.out)

    def test_pragma_once_fires(self):
        self.assert_finding("include/highrpm/no_pragma.hpp", "pragma-once")

    def test_comments_strings_and_exemptions_stay_clean(self):
        noise = [ln for ln in self.out.splitlines()
                 if "clean_despite_mentions.cpp" in ln]
        self.assertEqual(noise, [], self.out)


class GoodFixtureTree(unittest.TestCase):
    def test_clean_tree_exits_zero(self):
        # Includes src/obs/exporter.cpp: file output inside the sanctioned
        # obs directory must NOT trip library-file-io — and
        # src/ml/scratch_into.cpp: reference/pointer vector uses inside
        # tracked functions plus an ALLOW(alloc-in-step) escape must NOT
        # trip alloc-in-step. For memory-order-audit:
        # src/serve/relaxed_justified.cpp (same-line and preceding-line
        # justified markers), src/obs/relaxed_counter.cpp (obs needs no
        # marker), and src/verify/model_threads.cpp (verify/ may spawn
        # std::thread and use bare relaxed) must all stay clean.
        proc = run_lint("--root", str(FIXTURES / "good"))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("0 findings", proc.stdout)


class CliContract(unittest.TestCase):
    def test_list_rules(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("rng-source", "library-io", "library-file-io",
                     "float-compare", "sensor-isfinite",
                     "thread-outside-runtime", "memory-order-audit",
                     "alloc-in-step", "pragma-once"):
            self.assertIn(rule, proc.stdout)

    def test_bad_root_is_usage_error(self):
        proc = run_lint("--root", str(FIXTURES / "does-not-exist"))
        self.assertEqual(proc.returncode, 2)

    def test_single_file_mode(self):
        proc = run_lint("--root", str(FIXTURES / "bad"),
                        "src/core/uses_cout.cpp")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("library-io", proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
