// Fixture: a clean header.
#pragma once

namespace highrpm {

int clean_value() noexcept;

}  // namespace highrpm
