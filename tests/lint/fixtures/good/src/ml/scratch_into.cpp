// alloc-in-step negative fixture: reference/pointer/parameter uses of
// std::vector inside tracked functions are allocation-free and must not
// fire, and the ALLOW marker exempts a deliberate construction.
#include <vector>

namespace fake {

struct Scratch {
  std::vector<double> buf;
};

void transform_into(const std::vector<double>& in, std::vector<double>& out,
                    Scratch& scratch) {
  scratch.buf.assign(in.begin(), in.end());
  const std::vector<double>* view = &scratch.buf;
  out = *view;
  std::vector<double> dbg;  // HIGHRPM_LINT_ALLOW(alloc-in-step) fixture escape
  (void)dbg;
}

double helper(double x) {
  std::vector<double> fine{x};  // untracked function: allowed
  return fine.back();
}

}  // namespace fake
