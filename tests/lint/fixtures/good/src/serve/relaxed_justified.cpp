// Fixture: serve/ relaxed atomics with justified markers must stay clean —
// both the same-line form and the preceding-line form (statements split by
// the 80-column style put the marker a line above the relaxed token).
#include <atomic>

std::atomic<unsigned long> g_tail{0};

unsigned long same_line() {
  return g_tail.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): producer-owned index
}

unsigned long preceding_line() {
  const unsigned long t =  // HIGHRPM_LINT_ALLOW(memory-order-audit): producer-owned index
      g_tail.load(std::memory_order_relaxed);
  return t;
}

unsigned long no_marker_needed() {
  return g_tail.load(std::memory_order_acquire);
}
