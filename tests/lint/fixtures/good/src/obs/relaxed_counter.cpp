// Fixture: obs/ is the sanctioned relaxed-counter home — bare
// memory_order_relaxed needs no marker here.
#include <atomic>

std::atomic<unsigned long> g_count{0};

void bump() { g_count.fetch_add(1, std::memory_order_relaxed); }
