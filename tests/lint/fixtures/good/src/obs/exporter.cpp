// Fixture: src/obs/ is the sanctioned home of library-side file output, so
// the same constructs that trip library-file-io elsewhere stay clean here.
// Reading (std::ifstream) is legal everywhere; it appears in the good tree's
// measure fixture too.
#include <filesystem>
#include <fstream>

void export_telemetry() {
  std::filesystem::create_directories("bench_out");
  std::ofstream out("bench_out/telemetry.json", std::ios::binary);
  out << "{}";
}
