// Fixture: verify/ is sanctioned for BOTH std::thread (the model checker
// runs real threads one-at-a-time) and bare memory_order_relaxed (it
// models memory orders rather than relying on them).
#include <atomic>
#include <thread>

std::atomic<int> g_state{0};

void spawn_model_worker() {
  std::thread t([] { g_state.store(1, std::memory_order_relaxed); });
  t.join();
}
