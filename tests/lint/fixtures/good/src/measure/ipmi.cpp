// Fixture: a clean sensor-ingestion file — guards with std::isfinite.
#include <cmath>
#include <stdexcept>

namespace highrpm::measure {

double ingest(double raw) {
  if (!std::isfinite(raw)) {
    throw std::invalid_argument("non-finite sensor reading");
  }
  return raw;
}

}  // namespace highrpm::measure
