// Fixture: a header without #pragma once must trip pragma-once.
#ifndef HIGHRPM_NO_PRAGMA_HPP
#define HIGHRPM_NO_PRAGMA_HPP

int fixture_value();

#endif
