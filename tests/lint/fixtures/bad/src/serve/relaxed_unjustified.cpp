// Fixture: serve/ is an audited atomic home, but memory_order_relaxed
// there needs a JUSTIFIED HIGHRPM_LINT_ALLOW(memory-order-audit): <why>
// marker. Two violations below: a bare relaxed line, and a bare marker
// with no justification text (a naked escape must not count).
#include <atomic>

std::atomic<unsigned> g_seq{0};

unsigned bad_relaxed() {
  return g_seq.load(std::memory_order_relaxed);
}

unsigned bad_bare_marker() {
  return g_seq.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit)
}

unsigned fine_acquire() {
  return g_seq.load(std::memory_order_acquire);
}
