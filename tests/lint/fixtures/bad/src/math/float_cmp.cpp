// Fixture: raw float-literal comparisons must trip float-compare.
bool bad_eq_zero(double x) { return x == 0.0; }

bool bad_ne_half(double x) { return x != 0.5; }

bool bad_lit_first(double x) { return 1.0 == x; }

bool bad_exponent(double x) { return x == 1e-9; }

bool bad_float_suffix(float x) { return x == 2.5f; }
