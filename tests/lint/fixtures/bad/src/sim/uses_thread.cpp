// Fixture: spawning threads outside runtime/ must trip
// thread-outside-runtime.
#include <future>
#include <thread>

void bad_thread() {
  std::thread t([] {});
  t.join();
}

void bad_async() { auto f = std::async([] { return 1; }); }
