// Fixture: raw atomics outside the audited homes (verify/, serve/, obs/,
// runtime/) must trip memory-order-audit — core/ code coordinates through
// runtime::parallel_for and plain values, not hand-rolled atomics.
#include <atomic>

std::atomic<int> g_flag{0};

int bad_spin() {
  while (g_flag.load(std::memory_order_acquire) == 0) {
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  return 1;
}
