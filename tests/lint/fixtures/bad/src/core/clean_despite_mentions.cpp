// Fixture: none of these may produce findings — forbidden tokens appear
// only in comments, strings, or under an explicit exemption marker.
//
// Comment mentions that must not trip: std::rand, std::cout, std::thread,
// x == 0.0, printf("%d"), std::ofstream, fopen(...).
#include <fstream>
#include <string>

/* Block comment mention: std::random_device and time(nullptr). */
const char* banner() { return "std::cout == 0.0 std::rand printf("; }

// snprintf formats to a buffer — not I/O — and must not match printf().
int format_into(char* buf, unsigned long n, int v) {
  return std::snprintf(buf, n, "%d", v);
}

// Deliberate exact comparison with the blessed escape hatch.
bool sentinel(double x) {
  return x == -1.0;  // HIGHRPM_LINT_ALLOW(float-compare): -1 is a sentinel
}

// Reading is legal library-wide; only output streams are restricted.
bool file_exists(const char* path) { return std::ifstream(path).good(); }

// User-invoked write API with the escape hatch (mirrors data::write_csv).
void save(const char* path) {
  std::ofstream f(path);  // HIGHRPM_LINT_ALLOW(library-file-io): user API
  f << 1;
}
