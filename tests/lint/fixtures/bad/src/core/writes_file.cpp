// Fixture: library code (src/, outside src/obs/) opening files for output —
// every line here must trip the library-file-io rule.
#include <cstdio>
#include <filesystem>
#include <fstream>

void dump_state() {
  std::ofstream out("state.txt");
  std::fstream rw("state.txt");
  std::FILE* f = std::fopen("state.bin", "wb");
  char byte = 0;
  std::fwrite(&byte, 1, 1, f);
  std::filesystem::create_directories("state_dir");
  std::filesystem::remove("state.txt");
}
