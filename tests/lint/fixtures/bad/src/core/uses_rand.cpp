// Fixture: every line here must trip the rng-source rule.
#include <cstdlib>
#include <random>

int bad_rand() { return std::rand(); }

void bad_seed() { srand(42); }

unsigned bad_device() {
  std::random_device rd;
  return rd();
}

double bad_engine() {
  std::mt19937 gen(7);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}

long bad_time_seed() { return time(nullptr); }
