// Fixture: library code writing to stdout/stderr must trip library-io.
#include <cstdio>
#include <iostream>

void bad_cout(int x) { std::cout << x << '\n'; }

void bad_cerr(int x) { std::cerr << x << '\n'; }

void bad_printf(int x) { printf("%d\n", x); }

void bad_fprintf(int x) { fprintf(stderr, "%d\n", x); }
