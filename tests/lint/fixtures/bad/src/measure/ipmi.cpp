// Fixture: a sensor-boundary ingestion file with no std::isfinite guard
// must trip sensor-isfinite.
namespace highrpm::measure {

double ingest(double raw) { return raw * 2.0; }

}  // namespace highrpm::measure
