// alloc-in-step fixture: every construction form the rule must catch, each
// inside a tracked steady-state function name.
#include <vector>

namespace fake {

void transform_into(const std::vector<double>& in, std::vector<double>& out) {
  std::vector<double> tmp(in.size());  // local with parens
  out = tmp;
}

double step(double x) {
  std::vector<double> scratch{x};  // local with braces
  return scratch.back();
}

void cell_step(std::vector<double>& h) {
  h = std::vector<double>(h.size());  // temporary
}

void step_tick(std::vector<double>& out) {
  std::vector<double> staged(out.size());  // fleet-stepper entry point
  out = staged;
}

double predict_batch(const std::vector<double>& in) {
  std::vector<double> lanes(in.size());  // batched predict entry point
  return lanes.empty() ? 0.0 : lanes.front();
}

double untracked_helper(double x) {
  std::vector<double> fine{x};  // not a tracked name: must stay clean
  return fine.back();
}

}  // namespace fake
