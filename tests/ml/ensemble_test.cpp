#include "highrpm/ml/ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "highrpm/math/metrics.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::ml {
namespace {

struct Problem {
  math::Matrix x;
  std::vector<double> y;
};

Problem nonlinear_problem(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  Problem p;
  p.x = math::Matrix(n, 3);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) p.x(i, j) = rng.uniform(-1, 1);
    p.y[i] = p.x(i, 0) * p.x(i, 1) + std::sin(3 * p.x(i, 2)) +
             rng.normal(0, 0.05);
  }
  return p;
}

TEST(RandomForest, BuildsRequestedTreeCount) {
  const auto p = nonlinear_problem(200, 1);
  ForestConfig cfg;
  cfg.n_trees = 10;
  RandomForestRegressor rf(cfg);
  rf.fit(p.x, p.y);
  EXPECT_EQ(rf.size(), 10u);
}

TEST(RandomForest, FitsNonlinearData) {
  const auto p = nonlinear_problem(600, 2);
  RandomForestRegressor rf;
  rf.fit(p.x, p.y);
  EXPECT_GT(math::r2(p.y, rf.predict(p.x)), 0.8);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  const auto p = nonlinear_problem(150, 3);
  ForestConfig cfg;
  cfg.seed = 99;
  RandomForestRegressor a(cfg), b(cfg);
  a.fit(p.x, p.y);
  b.fit(p.x, p.y);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_one(p.x.row(i)), b.predict_one(p.x.row(i)));
  }
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForestRegressor rf;
  const std::vector<double> q{1, 2, 3};
  EXPECT_THROW(rf.predict_one(q), std::logic_error);
}

TEST(GradientBoosting, ImprovesOverSingleStage) {
  const auto p = nonlinear_problem(400, 4);
  BoostingConfig one;
  one.n_trees = 1;
  BoostingConfig ten;
  ten.n_trees = 10;
  GradientBoostingRegressor gb1(one), gb10(ten);
  gb1.fit(p.x, p.y);
  gb10.fit(p.x, p.y);
  EXPECT_LT(math::rmse(p.y, gb10.predict(p.x)),
            math::rmse(p.y, gb1.predict(p.x)));
}

TEST(GradientBoosting, ConstantTargetPredictsConstant) {
  math::Matrix x(20, 2, 0.5);
  std::vector<double> y(20, 42.0);
  GradientBoostingRegressor gb;
  gb.fit(x, y);
  const std::vector<double> q{0.5, 0.5};
  EXPECT_NEAR(gb.predict_one(q), 42.0, 1e-9);
}

TEST(GradientBoosting, FitsNonlinearData) {
  const auto p = nonlinear_problem(600, 5);
  GradientBoostingRegressor gb;
  gb.fit(p.x, p.y);
  EXPECT_GT(math::r2(p.y, gb.predict(p.x)), 0.7);
}

TEST(Ensembles, CloneIsUnfittedSameName) {
  RandomForestRegressor rf;
  GradientBoostingRegressor gb;
  EXPECT_EQ(rf.clone()->name(), "RF");
  EXPECT_FALSE(rf.clone()->fitted());
  EXPECT_EQ(gb.clone()->name(), "GB");
  EXPECT_FALSE(gb.clone()->fitted());
}

// Property: forest averaging reduces (or at least does not explode) variance
// vs. a single fully-grown tree on held-out data.
class ForestGeneralization : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForestGeneralization, ForestAtLeastAsGoodAsSingleTreeOutOfSample) {
  const auto train = nonlinear_problem(400, GetParam());
  const auto test = nonlinear_problem(200, GetParam() + 1000);
  DecisionTreeRegressor tree;
  tree.fit(train.x, train.y);
  ForestConfig cfg;
  cfg.n_trees = 10;
  cfg.seed = GetParam();
  RandomForestRegressor rf(cfg);
  rf.fit(train.x, train.y);
  const double tree_err = math::rmse(test.y, tree.predict(test.x));
  const double rf_err = math::rmse(test.y, rf.predict(test.x));
  EXPECT_LT(rf_err, tree_err * 1.15);  // allow slack; usually strictly better
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestGeneralization,
                         ::testing::Values(7, 17, 27));

}  // namespace
}  // namespace highrpm::ml
