#include "highrpm/ml/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "highrpm/math/metrics.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::ml {
namespace {

TEST(DecisionTree, FitsStepFunctionExactly) {
  // y = 1 if x < 0.5 else 5 — one split suffices.
  math::Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i) / 100.0;
    y[i] = x(i, 0) < 0.5 ? 1.0 : 5.0;
  }
  DecisionTreeRegressor dt;
  dt.fit(x, y);
  const std::vector<double> lo{0.2}, hi{0.8};
  EXPECT_DOUBLE_EQ(dt.predict_one(lo), 1.0);
  EXPECT_DOUBLE_EQ(dt.predict_one(hi), 5.0);
}

TEST(DecisionTree, ConstantTargetIsSingleLeaf) {
  math::Matrix x(10, 2, 1.0);
  std::vector<double> y(10, 7.0);
  DecisionTreeRegressor dt;
  dt.fit(x, y);
  EXPECT_EQ(dt.node_count(), 1u);
  const std::vector<double> q{0.0, 0.0};
  EXPECT_DOUBLE_EQ(dt.predict_one(q), 7.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
  math::Rng rng(1);
  math::Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(0, 1);
    y[i] = std::sin(10 * x(i, 0));
  }
  TreeConfig cfg;
  cfg.max_depth = 3;
  DecisionTreeRegressor dt(cfg);
  dt.fit(x, y);
  EXPECT_LE(dt.depth(), 3u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  math::Rng rng(2);
  math::Matrix x(64, 1);
  std::vector<double> y(64);
  for (std::size_t i = 0; i < 64; ++i) {
    x(i, 0) = rng.uniform(0, 1);
    y[i] = rng.uniform(0, 1);
  }
  TreeConfig cfg;
  cfg.min_samples_leaf = 8;
  cfg.min_samples_split = 16;
  DecisionTreeRegressor dt(cfg);
  dt.fit(x, y);
  // With >= 8 samples per leaf on 64 samples, at most 8 leaves => <= 15 nodes.
  EXPECT_LE(dt.node_count(), 15u);
}

TEST(DecisionTree, ApproximatesSmoothNonlinearity) {
  math::Rng rng(3);
  const std::size_t n = 800;
  math::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y[i] = x(i, 0) * x(i, 0) + std::tanh(2 * x(i, 1));
  }
  DecisionTreeRegressor dt;
  dt.fit(x, y);
  const auto pred = dt.predict(x);
  EXPECT_GT(math::r2(y, pred), 0.9);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTreeRegressor dt;
  const std::vector<double> q{1.0};
  EXPECT_THROW(dt.predict_one(q), std::logic_error);
}

TEST(DecisionTree, FitSubsetUsesOnlyGivenRows) {
  math::Matrix x(10, 1);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 5 ? 0.0 : 100.0;
  }
  // Subset only contains low-half rows -> tree must predict ~0 everywhere.
  const std::vector<std::size_t> rows{0, 1, 2, 3, 4};
  DecisionTreeRegressor dt;
  dt.fit_subset(x, y, rows);
  const std::vector<double> q{9.0};
  EXPECT_DOUBLE_EQ(dt.predict_one(q), 0.0);
}

TEST(DecisionTree, DeterministicForFixedSeed) {
  math::Rng rng(4);
  math::Matrix x(100, 3);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.uniform(0, 1);
    y[i] = x(i, 0) + 2 * x(i, 1);
  }
  DecisionTreeRegressor a, b;
  a.fit(x, y);
  b.fit(x, y);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_one(x.row(i)), b.predict_one(x.row(i)));
  }
}

// Property: training error decreases (weakly) as max_depth grows.
class TreeDepthProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeDepthProperty, DeeperTreesFitTrainingDataBetter) {
  math::Rng rng(GetParam());
  const std::size_t n = 300;
  math::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y[i] = std::sin(3 * x(i, 0)) * std::cos(2 * x(i, 1)) + rng.normal(0, 0.05);
  }
  double prev = 1e18;
  for (const std::size_t depth : {1u, 2u, 4u, 8u, 16u}) {
    TreeConfig cfg;
    cfg.max_depth = depth;
    cfg.min_samples_leaf = 1;
    cfg.min_samples_split = 2;
    DecisionTreeRegressor dt(cfg);
    dt.fit(x, y);
    const double err = math::rmse(y, dt.predict(x));
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeDepthProperty,
                         ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace highrpm::ml
