#include <gtest/gtest.h>

#include <cmath>

#include "highrpm/math/metrics.hpp"
#include "highrpm/math/rng.hpp"
#include "highrpm/ml/knn.hpp"
#include "highrpm/ml/svr.hpp"

namespace highrpm::ml {
namespace {

TEST(Knn, ExactNeighborWinsWithK1) {
  math::Matrix x{{0.0}, {1.0}, {2.0}};
  const std::vector<double> y{10, 20, 30};
  KnnRegressor knn(1);
  knn.fit(x, y);
  const std::vector<double> q{1.1};
  EXPECT_DOUBLE_EQ(knn.predict_one(q), 20.0);
}

TEST(Knn, AveragesKNeighbors) {
  math::Matrix x{{0.0}, {1.0}, {10.0}};
  const std::vector<double> y{10, 20, 300};
  KnnRegressor knn(2);
  knn.fit(x, y);
  const std::vector<double> q{0.4};
  EXPECT_DOUBLE_EQ(knn.predict_one(q), 15.0);
}

TEST(Knn, KLargerThanDataUsesAll) {
  math::Matrix x{{0.0}, {1.0}};
  const std::vector<double> y{0, 10};
  KnnRegressor knn(5);
  knn.fit(x, y);
  const std::vector<double> q{0.5};
  EXPECT_DOUBLE_EQ(knn.predict_one(q), 5.0);
}

TEST(Knn, ZeroKThrows) { EXPECT_THROW(KnnRegressor(0), std::invalid_argument); }

TEST(Knn, StandardizationMakesScalesComparable) {
  // Feature 1 has a huge scale; without standardization it would dominate.
  // The target depends only on feature 0.
  math::Rng rng(1);
  const std::size_t n = 200;
  math::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0, 1);
    x(i, 1) = rng.uniform(0, 1e9);
    y[i] = x(i, 0) > 0.5 ? 100.0 : 0.0;
  }
  KnnRegressor knn(3);
  knn.fit(x, y);
  // Correctness proxy: good R2 despite the wild scale of feature 1.
  EXPECT_GT(math::r2(y, knn.predict(x)), 0.6);
}

TEST(Knn, DistanceWeightedPrefersCloserNeighbor) {
  math::Matrix x{{0.0}, {1.0}};
  const std::vector<double> y{0.0, 100.0};
  KnnRegressor knn(2, /*distance_weighted=*/true);
  knn.fit(x, y);
  const std::vector<double> q{0.1};
  EXPECT_LT(knn.predict_one(q), 50.0);
}

TEST(Svr, FitsLinearDataWithLinearKernel) {
  math::Rng rng(2);
  const std::size_t n = 300;
  math::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y[i] = 4.0 * x(i, 0) - 2.0 * x(i, 1) + 10.0;
  }
  SvrConfig cfg;
  cfg.rff_dim = 0;  // plain linear SVR
  cfg.epochs = 80;
  SvrRegressor svr(cfg);
  svr.fit(x, y);
  EXPECT_GT(math::r2(y, svr.predict(x)), 0.9);
}

TEST(Svr, RffKernelFitsNonlinearData) {
  math::Rng rng(3);
  const std::size_t n = 400;
  math::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-3, 3);
    y[i] = std::sin(x(i, 0)) * 5.0 + 20.0;
  }
  SvrConfig linear_cfg;
  linear_cfg.rff_dim = 0;
  SvrRegressor linear(linear_cfg);
  linear.fit(x, y);

  SvrConfig rbf_cfg;
  rbf_cfg.rff_dim = 128;
  rbf_cfg.gamma = 1.0;
  rbf_cfg.epochs = 120;
  SvrRegressor rbf(rbf_cfg);
  rbf.fit(x, y);

  // The RFF lift must beat the purely linear fit on a sine.
  EXPECT_LT(math::rmse(y, rbf.predict(x)), math::rmse(y, linear.predict(x)));
  EXPECT_GT(math::r2(y, rbf.predict(x)), 0.7);
}

TEST(Svr, DeterministicForFixedSeed) {
  math::Rng rng(4);
  math::Matrix x(100, 2);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y[i] = x(i, 0) + x(i, 1);
  }
  SvrConfig cfg;
  cfg.seed = 5;
  SvrRegressor a(cfg), b(cfg);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_DOUBLE_EQ(a.predict_one(x.row(0)), b.predict_one(x.row(0)));
}

TEST(Svr, CloneAndName) {
  SvrRegressor svr;
  EXPECT_EQ(svr.name(), "SVM");
  EXPECT_FALSE(svr.clone()->fitted());
}

TEST(Knn, CloneAndName) {
  KnnRegressor knn(3);
  EXPECT_EQ(knn.name(), "KNN");
  EXPECT_FALSE(knn.clone()->fitted());
}

}  // namespace
}  // namespace highrpm::ml
