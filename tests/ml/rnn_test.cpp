#include "highrpm/ml/rnn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "highrpm/math/metrics.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::ml {
namespace {

/// Windows of a noisy AR(1)-like series whose label at each step is a
/// deterministic function of the current feature plus the previous label —
/// the structure DynamicTRR exploits.
std::vector<data::SequenceSample> make_sequence_problem(std::size_t n_windows,
                                                        std::size_t window,
                                                        std::uint64_t seed) {
  math::Rng rng(seed);
  const std::size_t total = n_windows + window - 1;
  math::Matrix f(total, 2);
  std::vector<double> labels(total);
  double prev = 50.0;
  for (std::size_t t = 0; t < total; ++t) {
    f(t, 0) = rng.uniform(0, 1);
    f(t, 1) = prev;  // feed previous label as a feature
    const double label = 0.8 * prev + 20.0 * f(t, 0);
    labels[t] = label;
    prev = label;
  }
  return data::make_windows(f, labels, window);
}

TEST(SequenceRegressor, ConfigValidation) {
  RnnConfig bad;
  bad.units = 0;
  EXPECT_THROW(SequenceRegressor{bad}, std::invalid_argument);
}

TEST(SequenceRegressor, PredictBeforeFitThrows) {
  SequenceRegressor m;
  EXPECT_THROW(m.predict(math::Matrix(3, 2)), std::logic_error);
}

TEST(SequenceRegressor, EmptyFitThrows) {
  SequenceRegressor m;
  EXPECT_THROW(m.fit({}), std::invalid_argument);
}

TEST(SequenceRegressor, LstmLearnsAutoregressiveSeries) {
  const auto samples = make_sequence_problem(120, 8, 1);
  RnnConfig cfg;
  cfg.cell = CellType::kLstm;
  cfg.units = 4;
  cfg.layers = 1;
  cfg.epochs = 60;
  SequenceRegressor m(cfg);
  m.fit(samples);
  // Evaluate on fresh windows from the same process.
  const auto test = make_sequence_problem(40, 8, 2);
  std::vector<double> truth, pred;
  for (const auto& s : test) {
    const auto p = m.predict(s.steps);
    truth.insert(truth.end(), s.labels.begin(), s.labels.end());
    pred.insert(pred.end(), p.begin(), p.end());
  }
  EXPECT_LT(math::mape(truth, pred), 12.0);
}

TEST(SequenceRegressor, GruLearnsAutoregressiveSeries) {
  const auto samples = make_sequence_problem(120, 8, 3);
  RnnConfig cfg;
  cfg.cell = CellType::kGru;
  cfg.units = 4;
  cfg.layers = 1;
  cfg.epochs = 60;
  SequenceRegressor m(cfg);
  m.fit(samples);
  const auto test = make_sequence_problem(40, 8, 4);
  std::vector<double> truth, pred;
  for (const auto& s : test) {
    const auto p = m.predict(s.steps);
    truth.insert(truth.end(), s.labels.begin(), s.labels.end());
    pred.insert(pred.end(), p.begin(), p.end());
  }
  EXPECT_LT(math::mape(truth, pred), 12.0);
}

TEST(SequenceRegressor, StackedLayersWork) {
  const auto samples = make_sequence_problem(80, 6, 5);
  RnnConfig cfg;
  cfg.units = 2;
  cfg.layers = 2;  // the paper's DynamicTRR depth
  cfg.epochs = 50;
  SequenceRegressor m(cfg);
  m.fit(samples);
  const auto p = m.predict(samples[0].steps);
  EXPECT_EQ(p.size(), 6u);
  for (const double v : p) EXPECT_TRUE(std::isfinite(v));
}

TEST(SequenceRegressor, TrainingReducesError) {
  const auto samples = make_sequence_problem(100, 8, 6);
  RnnConfig short_cfg;
  short_cfg.epochs = 1;
  RnnConfig long_cfg;
  long_cfg.epochs = 60;
  SequenceRegressor m_short(short_cfg), m_long(long_cfg);
  m_short.fit(samples);
  m_long.fit(samples);
  double err_short = 0.0, err_long = 0.0;
  for (const auto& s : samples) {
    const auto ps = m_short.predict(s.steps);
    const auto pl = m_long.predict(s.steps);
    for (std::size_t t = 0; t < s.labels.size(); ++t) {
      err_short += std::fabs(ps[t] - s.labels[t]);
      err_long += std::fabs(pl[t] - s.labels[t]);
    }
  }
  EXPECT_LT(err_long, err_short);
}

TEST(SequenceRegressor, FineTuneAdaptsToShift) {
  auto samples = make_sequence_problem(100, 8, 7);
  RnnConfig cfg;
  cfg.epochs = 40;
  SequenceRegressor m(cfg);
  m.fit(samples);
  // Shift every label by +30 and fine-tune on a handful of windows.
  for (auto& s : samples) {
    for (auto& l : s.labels) l += 30.0;
  }
  double before = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto p = m.predict(samples[i].steps);
    for (std::size_t t = 0; t < p.size(); ++t) {
      before += std::fabs(p[t] - samples[i].labels[t]);
    }
  }
  m.fit(std::span<const data::SequenceSample>(samples.data(), 30),
        /*reset=*/false, /*epochs_override=*/20);
  double after = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto p = m.predict(samples[i].steps);
    for (std::size_t t = 0; t < p.size(); ++t) {
      after += std::fabs(p[t] - samples[i].labels[t]);
    }
  }
  EXPECT_LT(after, before);
}

TEST(SequenceRegressor, DeterministicForFixedSeed) {
  const auto samples = make_sequence_problem(50, 6, 8);
  RnnConfig cfg;
  cfg.seed = 9;
  cfg.epochs = 10;
  SequenceRegressor a(cfg), b(cfg);
  a.fit(samples);
  b.fit(samples);
  const auto pa = a.predict(samples[0].steps);
  const auto pb = b.predict(samples[0].steps);
  for (std::size_t t = 0; t < pa.size(); ++t) {
    EXPECT_DOUBLE_EQ(pa[t], pb[t]);
  }
}

TEST(SequenceRegressor, RaggedSamplesThrow) {
  auto samples = make_sequence_problem(10, 6, 10);
  samples[3].labels.pop_back();
  SequenceRegressor m;
  EXPECT_THROW(m.fit(samples), std::invalid_argument);
}

TEST(SequenceRegressor, PredictWidthMismatchThrows) {
  const auto samples = make_sequence_problem(20, 6, 11);
  RnnConfig cfg;
  cfg.epochs = 2;
  SequenceRegressor m(cfg);
  m.fit(samples);
  EXPECT_THROW(m.predict(math::Matrix(6, 5)), std::invalid_argument);
}

TEST(SequenceRegressor, ParameterCountPositiveAndCellDependent) {
  const auto samples = make_sequence_problem(20, 6, 12);
  RnnConfig lstm_cfg;
  lstm_cfg.cell = CellType::kLstm;
  lstm_cfg.epochs = 1;
  RnnConfig gru_cfg = lstm_cfg;
  gru_cfg.cell = CellType::kGru;
  SequenceRegressor lstm(lstm_cfg), gru(gru_cfg);
  lstm.fit(samples);
  gru.fit(samples);
  EXPECT_GT(lstm.parameter_count(), gru.parameter_count());  // 4 vs 3 gates
  EXPECT_EQ(lstm.name(), "LSTM");
  EXPECT_EQ(gru.name(), "GRU");
}

// Property: both cells at several widths produce finite, bounded predictions
// on data within the training distribution.
class RnnStability
    : public ::testing::TestWithParam<std::tuple<CellType, std::size_t>> {};

TEST_P(RnnStability, PredictionsAreFiniteAndBounded) {
  const auto& [cell, units] = GetParam();
  const auto samples = make_sequence_problem(60, 8, 13);
  RnnConfig cfg;
  cfg.cell = cell;
  cfg.units = units;
  cfg.epochs = 15;
  SequenceRegressor m(cfg);
  m.fit(samples);
  for (std::size_t i = 0; i < samples.size(); i += 7) {
    const auto p = m.predict(samples[i].steps);
    for (const double v : p) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GT(v, -500.0);
      ASSERT_LT(v, 1000.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CellsAndWidths, RnnStability,
    ::testing::Combine(::testing::Values(CellType::kLstm, CellType::kGru),
                       ::testing::Values(1u, 2u, 4u)));

class RnnBatchIdentity : public ::testing::TestWithParam<CellType> {};

TEST_P(RnnBatchIdentity, PredictBatchMatchesPerWindowBitForBit) {
  const std::size_t window = 8;
  const auto samples = make_sequence_problem(40, window, 17);
  RnnConfig cfg;
  cfg.cell = GetParam();
  cfg.units = 3;
  cfg.layers = 2;
  cfg.epochs = 15;
  SequenceRegressor m(cfg);
  m.fit(samples);

  // Pack 5 windows lane-major into one (lanes*T) x F matrix.
  const std::size_t lanes = 5;
  const std::size_t f = samples[0].steps.cols();
  math::Matrix packed(lanes * window, f);
  for (std::size_t i = 0; i < lanes; ++i) {
    const auto& steps = samples[i * 3].steps;
    for (std::size_t t = 0; t < window; ++t) {
      const auto src = steps.row(t);
      auto dst = packed.row(i * window + t);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  SequenceRegressor::BatchWorkspace ws;
  math::Matrix out;
  m.predict_batch_into(packed, lanes, out, ws);
  ASSERT_EQ(out.rows(), lanes);
  ASSERT_EQ(out.cols(), window);
  for (std::size_t i = 0; i < lanes; ++i) {
    const auto serial = m.predict(samples[i * 3].steps);
    ASSERT_EQ(serial.size(), window);
    for (std::size_t t = 0; t < window; ++t) {
      // Exact equality: one lane in the batch must reproduce the
      // single-window path byte for byte.
      ASSERT_EQ(out(i, t), serial[t]) << "lane " << i << " step " << t;
    }
  }
}

TEST(SequenceRegressor, PredictBatchRejectsRaggedLanes) {
  const auto samples = make_sequence_problem(20, 6, 19);
  SequenceRegressor m;
  m.fit(samples);
  SequenceRegressor::BatchWorkspace ws;
  math::Matrix out;
  const math::Matrix packed(13, samples[0].steps.cols());  // 13 % 4 != 0
  EXPECT_THROW(m.predict_batch_into(packed, 4, out, ws),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Cells, RnnBatchIdentity,
                         ::testing::Values(CellType::kLstm, CellType::kGru));

}  // namespace
}  // namespace highrpm::ml
