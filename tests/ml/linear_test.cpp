#include "highrpm/ml/linear.hpp"

#include <gtest/gtest.h>

#include "highrpm/math/metrics.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::ml {
namespace {

/// y = 3 + 2 x0 - x1 (+ noise) on n samples.
struct LinearProblem {
  math::Matrix x;
  std::vector<double> y;
};

LinearProblem make_problem(std::size_t n, double noise, std::uint64_t seed) {
  math::Rng rng(seed);
  LinearProblem p;
  p.x = math::Matrix(n, 2);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.uniform(-2, 2);
    p.x(i, 1) = rng.uniform(-2, 2);
    p.y[i] = 3.0 + 2.0 * p.x(i, 0) - p.x(i, 1) + rng.normal(0, noise);
  }
  return p;
}

TEST(LinearRegression, RecoversExactCoefficients) {
  const auto p = make_problem(100, 0.0, 1);
  LinearRegression lr;
  lr.fit(p.x, p.y);
  EXPECT_NEAR(lr.intercept(), 3.0, 1e-8);
  EXPECT_NEAR(lr.coefficients()[0], 2.0, 1e-8);
  EXPECT_NEAR(lr.coefficients()[1], -1.0, 1e-8);
}

TEST(LinearRegression, PredictMatchesModel) {
  const auto p = make_problem(50, 0.0, 2);
  LinearRegression lr;
  lr.fit(p.x, p.y);
  const std::vector<double> q{1.0, 1.0};
  EXPECT_NEAR(lr.predict_one(q), 4.0, 1e-8);
}

TEST(LinearRegression, UnfittedPredictThrows) {
  LinearRegression lr;
  const std::vector<double> q{1.0};
  EXPECT_THROW(lr.predict_one(q), std::logic_error);
}

TEST(LinearRegression, WidthMismatchThrows) {
  const auto p = make_problem(20, 0.0, 3);
  LinearRegression lr;
  lr.fit(p.x, p.y);
  const std::vector<double> q{1.0, 2.0, 3.0};
  EXPECT_THROW(lr.predict_one(q), std::invalid_argument);
}

TEST(LinearRegression, EmptyTrainingThrows) {
  LinearRegression lr;
  EXPECT_THROW(lr.fit(math::Matrix(), {}), std::invalid_argument);
}

TEST(RidgeRegression, NearOlsForTinyLambda) {
  const auto p = make_problem(200, 0.05, 4);
  LinearRegression ols;
  ols.fit(p.x, p.y);
  RidgeRegression ridge(1e-8);
  ridge.fit(p.x, p.y);
  const std::vector<double> q{0.5, -0.5};
  EXPECT_NEAR(ridge.predict_one(q), ols.predict_one(q), 1e-4);
}

TEST(RidgeRegression, LargeLambdaPredictsNearMean) {
  const auto p = make_problem(200, 0.05, 5);
  RidgeRegression ridge(1e9);
  ridge.fit(p.x, p.y);
  // With slopes crushed to ~0, prediction falls back near the target mean.
  double mean = 0.0;
  for (const double v : p.y) mean += v;
  mean /= static_cast<double>(p.y.size());
  const std::vector<double> q{1.0, 1.0};
  EXPECT_NEAR(ridge.predict_one(q), mean, 0.2);
}

TEST(LassoRegression, SparsifiesIrrelevantFeatures) {
  // y depends only on x0; x1..x3 are noise features.
  math::Rng rng(6);
  const std::size_t n = 300;
  math::Matrix x(n, 4);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = rng.uniform(-1, 1);
    y[i] = 5.0 * x(i, 0) + rng.normal(0, 0.01);
  }
  LassoRegression lasso(0.1);
  lasso.fit(x, y);
  EXPECT_GE(lasso.num_zero_coefficients(), 2u);
}

TEST(LassoRegression, StillPredictsWell) {
  const auto p = make_problem(300, 0.05, 7);
  LassoRegression lasso(0.005);
  lasso.fit(p.x, p.y);
  const auto pred = lasso.predict(p.x);
  EXPECT_LT(math::rmse(p.y, pred), 0.2);
}

TEST(SgdRegression, ConvergesOnLinearData) {
  const auto p = make_problem(400, 0.05, 8);
  SgdRegression sgd(0.01, 20000, 1e-5, 9);
  sgd.fit(p.x, p.y);
  const auto pred = sgd.predict(p.x);
  EXPECT_LT(math::rmse(p.y, pred), 0.3);
  EXPECT_GT(math::r2(p.y, pred), 0.95);
}

TEST(SgdRegression, DeterministicForFixedSeed) {
  const auto p = make_problem(100, 0.1, 10);
  SgdRegression a(0.01, 5000, 1e-4, 77);
  SgdRegression b(0.01, 5000, 1e-4, 77);
  a.fit(p.x, p.y);
  b.fit(p.x, p.y);
  const std::vector<double> q{0.3, -0.7};
  EXPECT_DOUBLE_EQ(a.predict_one(q), b.predict_one(q));
}

TEST(AllLinear, CloneIsUnfittedSameName) {
  LinearRegression lr;
  RidgeRegression rr;
  LassoRegression lar;
  SgdRegression sgd;
  for (const Regressor* m :
       {static_cast<const Regressor*>(&lr), static_cast<const Regressor*>(&rr),
        static_cast<const Regressor*>(&lar),
        static_cast<const Regressor*>(&sgd)}) {
    const auto c = m->clone();
    EXPECT_EQ(c->name(), m->name());
    EXPECT_FALSE(c->fitted());
  }
}

// Property sweep: every linear model achieves near-zero error on noiseless
// linear data across seeds.
class LinearFamilyProperty
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(LinearFamilyProperty, FitsNoiselessLinearData) {
  const auto& [name, seed] = GetParam();
  const auto p = make_problem(300, 0.0, seed);
  std::unique_ptr<Regressor> model;
  if (name == "LR") model = std::make_unique<LinearRegression>();
  if (name == "RR") model = std::make_unique<RidgeRegression>(1e-6);
  if (name == "LaR") model = std::make_unique<LassoRegression>(1e-4);
  if (name == "SGD") model = std::make_unique<SgdRegression>(0.02, 30000);
  ASSERT_NE(model, nullptr);
  model->fit(p.x, p.y);
  const auto pred = model->predict(p.x);
  EXPECT_LT(math::rmse(p.y, pred), 0.15) << name;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, LinearFamilyProperty,
    ::testing::Combine(::testing::Values("LR", "RR", "LaR", "SGD"),
                       ::testing::Values(11, 22, 33)));

}  // namespace
}  // namespace highrpm::ml
