#include "highrpm/ml/baselines.hpp"

#include <gtest/gtest.h>

#include "highrpm/math/metrics.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::ml {
namespace {

TEST(Baselines, TenPointwiseNamesInTableOrder) {
  const auto names = pointwise_baseline_names();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names.front(), "LR");
  EXPECT_EQ(names.back(), "NN");
}

TEST(Baselines, AllTwelveNames) {
  const auto names = all_baseline_names();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_EQ(names[10], "GRU");
  EXPECT_EQ(names[11], "LSTM");
}

TEST(Baselines, FactoryNamesRoundTrip) {
  for (const auto& name : pointwise_baseline_names()) {
    const auto model = make_baseline(name);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), name);
    EXPECT_FALSE(model->fitted());
  }
}

TEST(Baselines, UnknownNameThrows) {
  EXPECT_THROW(make_baseline("XGB"), std::invalid_argument);
  EXPECT_THROW(make_rnn_baseline("LR"), std::invalid_argument);
}

TEST(Baselines, RnnFactoryBuildsBothCells) {
  EXPECT_EQ(make_rnn_baseline("GRU").name(), "GRU");
  EXPECT_EQ(make_rnn_baseline("LSTM").name(), "LSTM");
  EXPECT_EQ(make_rnn_baseline("LSTM").config().units, 2u);  // Table 4
}

// Every pointwise baseline must train and predict sensibly on an easy
// nonlinear power-like problem.
class BaselineSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineSanity, FitsEasyProblem) {
  math::Rng rng(42);
  const std::size_t n = 300;
  math::Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0, 1);        // "utilization"
    x(i, 1) = rng.uniform(0, 1);        // "memory rate"
    x(i, 2) = rng.uniform(0, 1);        // irrelevant
    y[i] = 30.0 + 40.0 * x(i, 0) + 15.0 * x(i, 1) * x(i, 1) +
           rng.normal(0, 0.5);
  }
  auto model = make_baseline(GetParam());
  model->fit(x, y);
  EXPECT_TRUE(model->fitted());
  const auto pred = model->predict(x);
  EXPECT_LT(math::mape(y, pred), 10.0) << GetParam();
  EXPECT_GT(math::r2(y, pred), 0.7) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPointwise, BaselineSanity,
                         ::testing::Values("LR", "LaR", "RR", "SGD", "DT",
                                           "RF", "GB", "KNN", "SVM", "NN"));

}  // namespace
}  // namespace highrpm::ml
