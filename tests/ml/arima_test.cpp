#include "highrpm/ml/arima.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "highrpm/math/metrics.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::ml {
namespace {

TEST(ArModel, RejectsZeroOrder) {
  EXPECT_THROW(ArModel(0), std::invalid_argument);
}

TEST(ArModel, FitRejectsShortSeries) {
  ArModel ar(3);
  const std::vector<double> s{1, 2, 3};
  EXPECT_THROW(ar.fit(s), std::invalid_argument);
}

TEST(ArModel, RecoversAr1Coefficient) {
  // y_t = 5 + 0.8 y_{t-1} + eps.
  math::Rng rng(1);
  std::vector<double> s{25.0};
  for (int i = 0; i < 500; ++i) {
    s.push_back(5.0 + 0.8 * s.back() + rng.normal(0, 0.1));
  }
  ArModel ar(1);
  ar.fit(s);
  EXPECT_NEAR(ar.coefficients()[0], 0.8, 0.05);
  EXPECT_NEAR(ar.intercept(), 5.0, 1.5);
}

TEST(ArModel, PredictNextMatchesRecursion) {
  std::vector<double> s;
  for (int i = 0; i < 50; ++i) s.push_back(static_cast<double>(i % 7));
  ArModel ar(2);
  ar.fit(s);
  const std::vector<double> recent{3.0, 4.0};
  const double direct = ar.predict_next(recent);
  const double expected = ar.intercept() + ar.coefficients()[0] * 4.0 +
                          ar.coefficients()[1] * 3.0;
  EXPECT_NEAR(direct, expected, 1e-12);
}

TEST(ArModel, ForecastExtendsDeterministicSeries) {
  // A noiseless AR process forecasts itself.
  std::vector<double> s{10.0, 11.0};
  for (int i = 0; i < 100; ++i) {
    s.push_back(1.0 + 0.5 * s[s.size() - 1] + 0.4 * s[s.size() - 2]);
  }
  ArModel ar(2);
  ar.fit(s);
  const auto f = ar.forecast(s, 5);
  double y1 = s[s.size() - 1], y2 = s[s.size() - 2];
  for (const double v : f) {
    const double expect = 1.0 + 0.5 * y1 + 0.4 * y2;
    EXPECT_NEAR(v, expect, 1e-6);
    y2 = y1;
    y1 = v;
  }
}

TEST(ArModel, UnfittedThrows) {
  ArModel ar(2);
  const std::vector<double> recent{1, 2};
  EXPECT_THROW(ar.predict_next(recent), std::logic_error);
  EXPECT_THROW(ar.forecast(recent, 3), std::logic_error);
}

TEST(ArimaInterpolator, ValidatesConfigAndInput) {
  EXPECT_THROW(ArimaInterpolator(ArimaConfig{.p = 2, .d = 2}),
               std::invalid_argument);
  ArimaInterpolator ai;
  const std::vector<double> few{1, 2};
  EXPECT_THROW(ai.fit(few), std::invalid_argument);
  EXPECT_THROW(ai.interpolate(few, std::vector<std::size_t>{0, 10}, 20),
               std::logic_error);  // not fitted
}

TEST(ArimaInterpolator, PassesThroughKnots) {
  std::vector<double> readings;
  std::vector<std::size_t> ticks;
  for (int i = 0; i < 12; ++i) {
    readings.push_back(80.0 + 5.0 * std::sin(0.5 * i));
    ticks.push_back(static_cast<std::size_t>(i) * 10);
  }
  ArimaInterpolator ai;
  ai.fit(readings);
  const auto dense = ai.interpolate(readings, ticks, 115);
  for (std::size_t i = 0; i < readings.size(); ++i) {
    EXPECT_DOUBLE_EQ(dense[ticks[i]], readings[i]);
  }
}

TEST(ArimaInterpolator, TracksLinearTrendExactly) {
  // A linear trend has constant first difference: d=1 AR should nail it.
  std::vector<double> readings;
  std::vector<std::size_t> ticks;
  for (int i = 0; i < 10; ++i) {
    readings.push_back(50.0 + 2.0 * i);
    ticks.push_back(static_cast<std::size_t>(i) * 10);
  }
  ArimaInterpolator ai(ArimaConfig{.p = 1, .d = 1});
  ai.fit(readings);
  const auto dense = ai.interpolate(readings, ticks, 91);
  // Interior gap values stay close to the linear envelope (the
  // stationarity-shrunk AR drifts by at most a few watts).
  for (std::size_t t = 0; t < 91; ++t) {
    EXPECT_GE(dense[t], 47.0);
    EXPECT_LE(dense[t], 73.0);
  }
  // The fill between knot k and k+1 is monotone nondecreasing.
  for (std::size_t t = 1; t < 90; ++t) {
    EXPECT_GE(dense[t] + 1e-6, dense[t - 1] - 2.5);
  }
}

TEST(ArimaInterpolator, RestoresSmoothTrendBetterThanHold) {
  // Dense truth: slow sine. Sparse readings every 10 ticks. ARIMA
  // interpolation must beat zero-order hold.
  const std::size_t n = 200;
  std::vector<double> truth(n);
  for (std::size_t t = 0; t < n; ++t) {
    truth[t] = 90.0 + 8.0 * std::sin(2.0 * std::numbers::pi *
                                     static_cast<double>(t) / 60.0);
  }
  std::vector<double> readings;
  std::vector<std::size_t> ticks;
  for (std::size_t t = 0; t < n; t += 10) {
    readings.push_back(truth[t]);
    ticks.push_back(t);
  }
  ArimaInterpolator ai;
  ai.fit(readings);
  const auto dense = ai.interpolate(readings, ticks, n);
  std::vector<double> hold(n);
  std::size_t k = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (k + 1 < ticks.size() && t >= ticks[k + 1]) ++k;
    hold[t] = readings[k];
  }
  EXPECT_LT(math::rmse(truth, dense), math::rmse(truth, hold));
  EXPECT_LT(math::mape(truth, dense), 4.0);
}

TEST(ArimaInterpolator, ExtrapolationHoldsBoundaries) {
  const std::vector<double> readings{10, 20, 30, 40};
  const std::vector<std::size_t> ticks{5, 10, 15, 20};
  ArimaInterpolator ai(ArimaConfig{.p = 1, .d = 1});
  ai.fit(readings);
  const auto dense = ai.interpolate(readings, ticks, 25);
  for (std::size_t t = 0; t < 5; ++t) EXPECT_DOUBLE_EQ(dense[t], 10.0);
  for (std::size_t t = 21; t < 25; ++t) EXPECT_DOUBLE_EQ(dense[t], 40.0);
}

class ArimaOrderProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArimaOrderProperty, InterpolationStaysWithinEnvelope) {
  const std::size_t p = GetParam();
  math::Rng rng(p);
  std::vector<double> readings;
  std::vector<std::size_t> ticks;
  for (std::size_t i = 0; i < 15; ++i) {
    readings.push_back(rng.uniform(80.0, 100.0));
    ticks.push_back(i * 10);
  }
  ArimaInterpolator ai(ArimaConfig{.p = p, .d = 1});
  ai.fit(readings);
  const auto dense = ai.interpolate(readings, ticks, 141);
  for (const double v : dense) {
    EXPECT_GT(v, 40.0);   // no blow-up
    EXPECT_LT(v, 140.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ArimaOrderProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(ArModel, StationarityGuardPreservesMeanOnNearUnitRoot) {
  // y_t = 1 + 0.99 y_{t-1} + eps: unconditional mean 100. Fitting estimates
  // a coefficient above the 0.95 l1 bound, so the stationarity guard fires.
  // It used to scale the intercept by the same shrink factor, which drags
  // the model's mean toward zero: predict_next at the series level returned
  // ~96 W instead of ~100 W, biasing every interpolated gap downward on
  // high-persistence power traces.
  math::Rng rng(7);
  std::vector<double> s{100.0};
  for (int i = 0; i < 600; ++i) {
    s.push_back(1.0 + 0.99 * s.back() + rng.normal(0, 0.05));
  }
  ArModel ar(1);
  ar.fit(s);
  // The guard fired (coefficient clamped to the stationary region)...
  ASSERT_LE(std::abs(ar.coefficients()[0]), 0.95 + 1e-12);
  // ...and the one-step prediction from the series level stays at the level.
  const std::vector<double> recent{100.0};
  EXPECT_NEAR(ar.predict_next(recent), 100.0, 1.0);
  // Iterated forecasts settle at the level instead of decaying toward zero.
  const auto fc = ar.forecast(recent, 50);
  EXPECT_NEAR(fc.back(), 100.0, 2.0);
}

}  // namespace
}  // namespace highrpm::ml
