#include "highrpm/ml/grid_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "highrpm/math/rng.hpp"
#include "highrpm/ml/knn.hpp"
#include "highrpm/ml/linear.hpp"
#include "highrpm/ml/tree.hpp"

namespace highrpm::ml {
namespace {

struct Problem {
  math::Matrix x;
  std::vector<double> y;
};

Problem step_problem(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  Problem p;
  p.x = math::Matrix(n, 1);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.uniform(0, 1);
    p.y[i] = (p.x(i, 0) < 0.5 ? 10.0 : 50.0) + rng.normal(0, 0.5);
  }
  return p;
}

Problem linear_problem(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  Problem p;
  p.x = math::Matrix(n, 2);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.uniform(-1, 1);
    p.x(i, 1) = rng.uniform(-1, 1);
    p.y[i] = 40.0 + 3.0 * p.x(i, 0) - 2.0 * p.x(i, 1) + rng.normal(0, 0.3);
  }
  return p;
}

TEST(GridSearch, RejectsEmptyGridAndTinyData) {
  const auto p = linear_problem(20, 1);
  EXPECT_THROW(grid_search({}, p.x, p.y), std::invalid_argument);
  const std::vector<RegressorFactory> grid{
      [] { return std::make_unique<LinearRegression>(); }};
  GridSearchConfig cfg;
  cfg.folds = 50;  // more folds than samples
  EXPECT_THROW(grid_search(grid, p.x, p.y, cfg), std::invalid_argument);
}

TEST(GridSearch, ScoresEveryCandidate) {
  const auto p = linear_problem(100, 2);
  const std::vector<RegressorFactory> grid{
      [] { return std::make_unique<LinearRegression>(); },
      [] { return std::make_unique<RidgeRegression>(1.0); },
      [] { return std::make_unique<RidgeRegression>(1e6); }};
  const auto result = grid_search(grid, p.x, p.y);
  EXPECT_EQ(result.scores.size(), 3u);
  for (const double s : result.scores) EXPECT_GE(s, 0.0);
  EXPECT_DOUBLE_EQ(result.scores[result.best_index], result.best_score);
}

TEST(GridSearch, PrefersCorrectModelClassOnStepData) {
  // A depth-limited tree beats a line on a step function.
  const auto p = step_problem(200, 3);
  const std::vector<RegressorFactory> grid{
      [] { return std::make_unique<LinearRegression>(); },
      [] {
        TreeConfig cfg;
        cfg.max_depth = 3;
        return std::make_unique<DecisionTreeRegressor>(cfg);
      }};
  const auto result = grid_search(grid, p.x, p.y);
  EXPECT_EQ(result.best_index, 1u);
}

TEST(GridSearch, HeavyRidgeLosesOnInformativeData) {
  const auto p = linear_problem(150, 4);
  const std::vector<RegressorFactory> grid{
      [] { return std::make_unique<RidgeRegression>(1e-6); },
      [] { return std::make_unique<RidgeRegression>(1e8); }};
  const auto result = grid_search(grid, p.x, p.y);
  EXPECT_EQ(result.best_index, 0u);
  EXPECT_LT(result.scores[0], result.scores[1]);
}

TEST(GridSearch, TunesKnnNeighborCount) {
  // Very noisy target: k=1 overfits, a larger k wins CV.
  math::Rng rng(5);
  math::Matrix x(240, 1);
  std::vector<double> y(240);
  for (std::size_t i = 0; i < 240; ++i) {
    x(i, 0) = rng.uniform(0, 1);
    y[i] = 100.0 + rng.normal(0, 5.0);  // pure noise around a constant
  }
  const std::vector<RegressorFactory> grid{
      [] { return std::make_unique<KnnRegressor>(1); },
      [] { return std::make_unique<KnnRegressor>(15); }};
  const auto result = grid_search(grid, x, y);
  EXPECT_EQ(result.best_index, 1u);
}

TEST(GridSearch, MetricSelectionChangesScoreScale) {
  const auto p = linear_problem(100, 6);
  const std::vector<RegressorFactory> grid{
      [] { return std::make_unique<LinearRegression>(); }};
  GridSearchConfig mape_cfg;
  mape_cfg.metric = CvMetric::kMape;
  GridSearchConfig rmse_cfg;
  rmse_cfg.metric = CvMetric::kRmse;
  const auto mape_res = grid_search(grid, p.x, p.y, mape_cfg);
  const auto rmse_res = grid_search(grid, p.x, p.y, rmse_cfg);
  // MAPE is in percent of a ~40 target; RMSE in absolute ~0.3 units.
  EXPECT_GT(mape_res.best_score, rmse_res.best_score);
}

TEST(GridSearch, DeterministicForFixedSeed) {
  const auto p = linear_problem(120, 7);
  const std::vector<RegressorFactory> grid{
      [] { return std::make_unique<RidgeRegression>(0.1); },
      [] { return std::make_unique<RidgeRegression>(10.0); }};
  const auto a = grid_search(grid, p.x, p.y);
  const auto b = grid_search(grid, p.x, p.y);
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
}

TEST(FitBest, ReturnsTrainedWinner) {
  const auto p = step_problem(150, 8);
  const std::vector<RegressorFactory> grid{
      [] { return std::make_unique<LinearRegression>(); },
      [] { return std::make_unique<DecisionTreeRegressor>(); }};
  const auto model = fit_best(grid, p.x, p.y);
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->fitted());
  EXPECT_EQ(model->name(), "DT");
  const std::vector<double> lo{0.2};
  EXPECT_NEAR(model->predict_one(lo), 10.0, 2.0);
}

}  // namespace
}  // namespace highrpm::ml
