#include "highrpm/ml/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "highrpm/math/metrics.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::ml {
namespace {

TEST(Mlp, LearnsLinearFunction) {
  math::Rng rng(1);
  const std::size_t n = 400;
  math::Matrix x(n, 2);
  math::Matrix y(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y(i, 0) = 3.0 * x(i, 0) - 2.0 * x(i, 1) + 5.0;
  }
  MlpConfig cfg;
  cfg.hidden = {16};
  cfg.epochs = 150;
  Mlp net(cfg);
  net.fit(x, y);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = net.predict_one(x.row(i))[0];
    err += (p - y(i, 0)) * (p - y(i, 0));
  }
  EXPECT_LT(std::sqrt(err / n), 0.3);
}

TEST(Mlp, LearnsNonlinearFunction) {
  math::Rng rng(2);
  const std::size_t n = 600;
  math::Matrix x(n, 1);
  math::Matrix y(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2, 2);
    y(i, 0) = std::sin(2 * x(i, 0));
  }
  MlpConfig cfg;
  cfg.hidden = {32};
  cfg.epochs = 250;
  Mlp net(cfg);
  net.fit(x, y);
  std::vector<double> truth(n), pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = y(i, 0);
    pred[i] = net.predict_one(x.row(i))[0];
  }
  EXPECT_GT(math::r2(truth, pred), 0.9);
}

TEST(Mlp, MultiOutputLearnsBothHeads) {
  math::Rng rng(3);
  const std::size_t n = 500;
  math::Matrix x(n, 2);
  math::Matrix y(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y(i, 0) = 40.0 + 10.0 * x(i, 0);          // "P_CPU"-like
    y(i, 1) = 10.0 + 3.0 * x(i, 1);           // "P_MEM"-like
  }
  MlpConfig cfg;
  cfg.hidden = {16};
  cfg.epochs = 150;
  Mlp net(cfg);
  net.fit(x, y);
  EXPECT_EQ(net.output_dim(), 2u);
  std::vector<double> t0(n), p0(n), t1(n), p1(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = net.predict_one(x.row(i));
    t0[i] = y(i, 0);
    p0[i] = p[0];
    t1[i] = y(i, 1);
    p1[i] = p[1];
  }
  EXPECT_GT(math::r2(t0, p0), 0.95);
  EXPECT_GT(math::r2(t1, p1), 0.95);
}

TEST(Mlp, FineTuneImprovesOnShiftedData) {
  math::Rng rng(4);
  const std::size_t n = 300;
  math::Matrix x(n, 1), y(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    y(i, 0) = 2.0 * x(i, 0);
  }
  MlpConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 100;
  Mlp net(cfg);
  net.fit(x, y);
  // Shifted regime: y = 2x + 4.
  math::Matrix y2(n, 1);
  for (std::size_t i = 0; i < n; ++i) y2(i, 0) = 2.0 * x(i, 0) + 4.0;
  double before = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    before += std::fabs(net.predict_one(x.row(i))[0] - y2(i, 0));
  }
  net.fit(x, y2, /*reset=*/false, /*epochs_override=*/50);
  double after = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    after += std::fabs(net.predict_one(x.row(i))[0] - y2(i, 0));
  }
  EXPECT_LT(after, before * 0.6);
}

TEST(Mlp, FineTuneRejectsDimensionChange) {
  math::Matrix x(10, 2, 0.5), y(10, 1, 1.0);
  Mlp net;
  net.fit(x, y);
  math::Matrix x3(10, 3, 0.5);
  EXPECT_THROW(net.fit(x3, y, /*reset=*/false), std::invalid_argument);
}

TEST(Mlp, PredictBeforeFitThrows) {
  Mlp net;
  const std::vector<double> q{1.0};
  EXPECT_THROW(net.predict_one(q), std::logic_error);
}

TEST(Mlp, DeterministicForFixedSeed) {
  math::Rng rng(5);
  math::Matrix x(100, 2), y(100, 1);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y(i, 0) = x(i, 0) + x(i, 1);
  }
  MlpConfig cfg;
  cfg.seed = 7;
  cfg.epochs = 30;
  Mlp a(cfg), b(cfg);
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_DOUBLE_EQ(a.predict_one(x.row(0))[0], b.predict_one(x.row(0))[0]);
}

TEST(Mlp, ParameterCountMatchesArchitecture) {
  MlpConfig cfg;
  cfg.hidden = {4, 3};
  Mlp net(cfg);
  math::Matrix x(20, 5, 0.1), y(20, 2, 1.0);
  net.fit(x, y);
  // (5*4 + 4) + (4*3 + 3) + (3*2 + 2) = 24 + 15 + 8 = 47.
  EXPECT_EQ(net.parameter_count(), 47u);
}

TEST(MlpRegressor, ImplementsRegressorInterface) {
  math::Rng rng(6);
  math::Matrix x(200, 1);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    y[i] = 5.0 * x(i, 0) + 1.0;
  }
  MlpConfig cfg;
  cfg.epochs = 80;
  MlpRegressor nn(cfg);
  EXPECT_EQ(nn.name(), "NN");
  nn.fit(x, y);
  EXPECT_TRUE(nn.fitted());
  EXPECT_GT(math::r2(y, nn.predict(x)), 0.95);
  EXPECT_FALSE(nn.clone()->fitted());
}

// Property: all activations can fit a modest nonlinear target.
class MlpActivationProperty : public ::testing::TestWithParam<Activation> {};

TEST_P(MlpActivationProperty, FitsQuadratic) {
  math::Rng rng(8);
  const std::size_t n = 400;
  math::Matrix x(n, 1), y(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    y(i, 0) = x(i, 0) * x(i, 0);
  }
  MlpConfig cfg;
  cfg.activation = GetParam();
  cfg.hidden = {24};
  cfg.epochs = 400;  // sigmoid converges slowly; give every activation room
  cfg.learning_rate = 3e-3;
  Mlp net(cfg);
  net.fit(x, y);
  std::vector<double> truth(n), pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = y(i, 0);
    pred[i] = net.predict_one(x.row(i))[0];
  }
  EXPECT_GT(math::r2(truth, pred), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Activations, MlpActivationProperty,
                         ::testing::Values(Activation::kReLU, Activation::kTanh,
                                           Activation::kSigmoid));

TEST(Mlp, PredictBatchMatchesPredictOneBitForBit) {
  math::Rng rng(9);
  const std::size_t n = 150;
  math::Matrix x(n, 3);
  math::Matrix y(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) x(i, c) = rng.uniform(-1, 1);
    y(i, 0) = 2.0 * x(i, 0) - x(i, 1);
    y(i, 1) = x(i, 1) + 0.5 * x(i, 2);
  }
  MlpConfig cfg;
  cfg.hidden = {10, 6};  // two hidden layers exercise the ping-pong buffers
  cfg.epochs = 40;
  Mlp net(cfg);
  net.fit(x, y);

  Mlp::BatchScratch scratch;
  math::Matrix batch_out;
  net.predict_batch_into(x, batch_out, scratch);
  ASSERT_EQ(batch_out.rows(), n);
  ASSERT_EQ(batch_out.cols(), 2u);
  for (std::size_t i = 0; i < n; ++i) {
    const auto one = net.predict_one(x.row(i));
    // Exact equality: the batched GEMM evaluates the scalar path's
    // expressions in the scalar path's operand order.
    ASSERT_EQ(batch_out(i, 0), one[0]) << "row " << i;
    ASSERT_EQ(batch_out(i, 1), one[1]) << "row " << i;
  }
}

}  // namespace
}  // namespace highrpm::ml
