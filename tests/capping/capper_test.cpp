#include "highrpm/capping/capper.hpp"

#include <gtest/gtest.h>

#include "highrpm/workloads/suites.hpp"

namespace highrpm::capping {
namespace {

sim::NodeSimulator make_node(std::uint64_t seed) {
  return sim::NodeSimulator(sim::PlatformConfig::arm(),
                            workloads::graph500_bfs(), seed);
}

TEST(Capper, RejectsSubSecondIntervals) {
  CappingConfig cfg;
  cfg.reading_interval_s = 0.1;
  EXPECT_THROW(PowerCapController{cfg}, std::invalid_argument);
}

TEST(Capper, RunsForRequestedTicks) {
  PowerCapController capper;
  auto node = make_node(1);
  const auto result = capper.run(node, 120);
  EXPECT_EQ(result.trace.size(), 120u);
  EXPECT_EQ(result.freq_level_per_tick.size(), 120u);
  EXPECT_GT(result.energy_j, 0.0);
  EXPECT_GT(result.peak_node_w, 0.0);
}

TEST(Capper, EnforcesCapWithFastControl) {
  // Cap must be achievable at the lowest DVFS level, else the controller can
  // only ride the floor; 90 W is reachable for BFS at 1.4 GHz.
  CappingConfig cfg;
  cfg.node_cap_w = 90.0;
  cfg.reading_interval_s = 1.0;
  cfg.action_interval_s = 1.0;
  PowerCapController capper(cfg);
  auto node = make_node(2);
  const auto result = capper.run(node, 400);
  EXPECT_LT(result.seconds_over_cap / 400.0, 0.35);
  EXPECT_GT(result.dvfs_actions, 0u);
}

TEST(Capper, CoarseActionIntervalRaisesPeakPower) {
  // The Fig-1 causal chain: AI 1 s -> 30 s raises peak power and overshoot.
  CappingConfig fast;
  fast.node_cap_w = 80.0;
  fast.action_interval_s = 1.0;
  CappingConfig slow = fast;
  slow.action_interval_s = 30.0;

  auto node_fast = make_node(3);
  auto node_slow = make_node(3);  // identical workload realization
  const auto r_fast = PowerCapController(fast).run(node_fast, 600);
  const auto r_slow = PowerCapController(slow).run(node_slow, 600);
  EXPECT_GE(r_slow.peak_node_w, r_fast.peak_node_w - 1.0);
  EXPECT_GT(r_slow.seconds_over_cap, r_fast.seconds_over_cap);
}

TEST(Capper, CoarseReadingIntervalMissesSpikes) {
  CappingConfig fine;
  fine.node_cap_w = 80.0;
  fine.reading_interval_s = 1.0;
  CappingConfig coarse = fine;
  coarse.reading_interval_s = 10.0;

  auto node_fine = make_node(4);
  auto node_coarse = make_node(4);
  const auto r_fine = PowerCapController(fine).run(node_fine, 600);
  const auto r_coarse = PowerCapController(coarse).run(node_coarse, 600);
  // Coarser readings -> later reactions -> at least as much overshoot
  // (wide slack: both runs share the workload but controller-induced DVFS
  // divergence makes the comparison stochastic).
  EXPECT_GE(r_coarse.seconds_over_cap + 20.0, r_fine.seconds_over_cap);
}

TEST(Capper, NoCapNeededKeepsTopFrequency) {
  CappingConfig cfg;
  cfg.node_cap_w = 1000.0;  // unreachable cap
  PowerCapController capper(cfg);
  auto node = make_node(5);
  const auto result = capper.run(node, 100);
  const std::size_t top = sim::PlatformConfig::arm().freq_levels_ghz.size() - 1;
  for (const auto level : result.freq_level_per_tick) {
    EXPECT_EQ(level, top);
  }
}

TEST(Capper, TightCapForcesThrottling) {
  CappingConfig cfg;
  cfg.node_cap_w = 60.0;  // below typical BFS draw
  PowerCapController capper(cfg);
  auto node = make_node(6);
  const auto result = capper.run(node, 200);
  // The controller must have spent time at reduced frequency.
  std::size_t throttled = 0;
  for (const auto level : result.freq_level_per_tick) {
    if (level < 2) ++throttled;
  }
  EXPECT_GT(throttled, 50u);
}

TEST(Capper, SingleLevelPlatformTakesNoActions) {
  // Boundary of the max_level = size() - 1 computation: with exactly one
  // DVFS level the controller has nowhere to go in either direction, even
  // under cap pressure.
  sim::PlatformConfig p = sim::PlatformConfig::arm();
  p.freq_levels_ghz = {1.4};
  p.default_freq_level = 0;
  sim::NodeSimulator node(p, workloads::graph500_bfs(), 3);
  CappingConfig cfg;
  cfg.node_cap_w = 60.0;  // below typical BFS draw: pressure to step down
  PowerCapController capper(cfg);
  const auto result = capper.run(node, 100);
  EXPECT_EQ(result.dvfs_actions, 0u);
  for (const auto level : result.freq_level_per_tick) {
    EXPECT_EQ(level, 0u);
  }
}

}  // namespace
}  // namespace highrpm::capping
