// highrpm::adapt::Controller property suite (ctest -L adapt).
//
// The two design invariants are checked as properties over seeded random
// volatility traces, not as examples: for EVERY prefix of EVERY trace the
// hard budget holds (1000 * dense_ticks <= budget_permille * ticks), and
// the hysteresis dwell bounds the mode-change frequency. Decisions must be
// a pure function of (config, trace): two controllers fed the same bytes
// agree tick for tick.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "highrpm/adapt/controller.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::adapt {
namespace {

constexpr std::size_t kFeatures = 4;

struct TraceTick {
  double node_w = 0.0;
  std::array<double, kFeatures> pmcs{};
};

/// Seeded volatility trace: alternating regimes of random length. Quiet
/// regimes hold power near 60 W with tiny jitter; volatile regimes take
/// large random jumps — scores land far on either side of any reasonable
/// hysteresis band, and regime boundaries land at arbitrary window phases.
std::vector<TraceTick> make_trace(std::uint64_t seed, std::size_t ticks) {
  math::Rng rng(seed);
  std::vector<TraceTick> out;
  out.reserve(ticks);
  bool volatile_regime = false;
  std::size_t regime_left = 0;
  double w = 60.0;
  while (out.size() < ticks) {
    if (regime_left == 0) {
      volatile_regime = rng.uniform() < 0.5;
      regime_left = 10 + static_cast<std::size_t>(rng.uniform() * 70.0);
    }
    --regime_left;
    if (volatile_regime) {
      w = 60.0 + rng.uniform() * 80.0;  // independent draws: huge jumps
    } else {
      w = 60.0 + rng.normal(0.0, 0.05);
    }
    TraceTick t;
    t.node_w = w;
    for (std::size_t e = 0; e < kFeatures; ++e) {
      const double base = 100.0 * static_cast<double>(e + 1);
      t.pmcs[e] = volatile_regime ? base * (0.2 + rng.uniform()) : base;
    }
    out.push_back(t);
  }
  return out;
}

ControllerConfig test_config() {
  ControllerConfig cfg;
  cfg.window = 10;
  cfg.hold_windows = 3;
  cfg.budget_permille = 400;
  cfg.up_threshold_w = 3.0;
  cfg.down_threshold_w = 1.5;
  return cfg;
}

TEST(ControllerConfigValidation, RejectsDegenerateConfigs) {
  const auto with = [](auto mutate) {
    ControllerConfig cfg;
    mutate(cfg);
    return cfg;
  };
  // "Empty window" edge: a zero-length decision window can never close.
  EXPECT_THROW(Controller(with([](auto& c) { c.window = 0; })),
               std::invalid_argument);
  EXPECT_THROW(Controller(with([](auto& c) { c.hold_windows = 0; })),
               std::invalid_argument);
  EXPECT_THROW(Controller(with([](auto& c) {
                 c.up_threshold_w = std::numeric_limits<double>::quiet_NaN();
               })),
               std::invalid_argument);
  EXPECT_THROW(Controller(with([](auto& c) { c.down_threshold_w = -1.0; })),
               std::invalid_argument);
  // Hysteresis band must be a band: down above up flaps by construction.
  EXPECT_THROW(Controller(with([](auto& c) {
                 c.up_threshold_w = 1.0;
                 c.down_threshold_w = 2.0;
               })),
               std::invalid_argument);
  EXPECT_THROW(Controller(with([](auto& c) { c.pmc_weight = -0.5; })),
               std::invalid_argument);
  EXPECT_THROW(Controller(with([](auto& c) { c.sparse_pmc_stride = 0; })),
               std::invalid_argument);
  EXPECT_THROW(Controller(with([](auto& c) { c.sparse_im_factor = 0.5; })),
               std::invalid_argument);
  EXPECT_THROW(Controller(with([](auto& c) {
                 c.sparse_im_factor = std::numeric_limits<double>::infinity();
               })),
               std::invalid_argument);
  EXPECT_NO_THROW(Controller(ControllerConfig{}));
}

TEST(ControllerProperty, BudgetNeverExceededOnAnySeededTrace) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const std::uint32_t permille : {0u, 100u, 250u, 400u, 900u}) {
      ControllerConfig cfg = test_config();
      cfg.budget_permille = permille;
      Controller ctl(cfg);
      const auto trace = make_trace(seed, 600);
      for (const auto& t : trace) {
        ctl.observe(t.node_w, t.pmcs);
        // The hard invariant at EVERY prefix, not just the end.
        ASSERT_LE(1000u * ctl.dense_ticks(),
                  std::uint64_t{permille} * ctl.ticks_observed())
            << "seed " << seed << " permille " << permille << " tick "
            << ctl.ticks_observed();
      }
      ASSERT_EQ(ctl.ticks_observed(), trace.size());
      ASSERT_EQ(ctl.sparse_ticks() + ctl.dense_ticks(), trace.size());
    }
  }
}

TEST(ControllerProperty, HysteresisBoundsModeChangeFrequency) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const std::size_t hold : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
      ControllerConfig cfg = test_config();
      cfg.hold_windows = hold;
      cfg.budget_permille = 700;
      Controller ctl(cfg);
      for (const auto& t : make_trace(seed, 800)) ctl.observe(t.node_w, t.pmcs);
      // Every mode episode spans at least `hold` full windows, so the
      // change count is bounded by windows/hold — flapping cannot happen
      // no matter how adversarial the volatility trace is.
      EXPECT_LE(ctl.mode_changes() * hold, ctl.windows_observed())
          << "seed " << seed << " hold " << hold;
    }
  }
}

TEST(ControllerProperty, DecisionsArePureFunctionOfTrace) {
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    Controller a(test_config());
    Controller b(test_config());
    const auto trace = make_trace(seed, 500);
    for (const auto& t : trace) {
      const auto da = a.observe(t.node_w, t.pmcs);
      const auto db = b.observe(t.node_w, t.pmcs);
      ASSERT_EQ(da.has_value(), db.has_value());
      if (da) {
        ASSERT_EQ(da->mode, db->mode);
        ASSERT_EQ(da->use_cheap, db->use_cheap);
        ASSERT_EQ(da->pmc_stride, db->pmc_stride);
        ASSERT_EQ(da->im_interval_factor, db->im_interval_factor);
      }
      ASSERT_EQ(a.mode(), b.mode());
      ASSERT_EQ(a.tokens(), b.tokens());
      ASSERT_EQ(a.last_score(), b.last_score());
    }
    ASSERT_EQ(a.mode_changes(), b.mode_changes());
  }
}

TEST(ControllerProperty, ResetIsEquivalentToFreshConstruction) {
  const auto trace = make_trace(7, 300);
  Controller fresh(test_config());
  Controller reused(test_config());
  for (const auto& t : make_trace(99, 137)) reused.observe(t.node_w, t.pmcs);
  reused.reset();
  EXPECT_EQ(reused.ticks_observed(), 0u);
  EXPECT_EQ(reused.mode(), Mode::kSparse);
  EXPECT_EQ(reused.tokens(), 0u);
  for (const auto& t : trace) {
    fresh.observe(t.node_w, t.pmcs);
    reused.observe(t.node_w, t.pmcs);
  }
  EXPECT_EQ(fresh.mode(), reused.mode());
  EXPECT_EQ(fresh.dense_ticks(), reused.dense_ticks());
  EXPECT_EQ(fresh.mode_changes(), reused.mode_changes());
  EXPECT_EQ(fresh.tokens(), reused.tokens());
  EXPECT_EQ(fresh.last_score(), reused.last_score());
}

TEST(ControllerEdge, ZeroBudgetIsAlwaysSparse) {
  ControllerConfig cfg = test_config();
  cfg.budget_permille = 0;
  Controller ctl(cfg);
  for (const auto& t : make_trace(3, 500)) ctl.observe(t.node_w, t.pmcs);
  EXPECT_EQ(ctl.dense_ticks(), 0u);
  EXPECT_EQ(ctl.mode_changes(), 0u);
  EXPECT_EQ(ctl.mode(), Mode::kSparse);
  const Decision d = ctl.decision();
  EXPECT_TRUE(d.use_cheap);
  EXPECT_EQ(d.pmc_stride, cfg.sparse_pmc_stride);
  EXPECT_EQ(d.im_interval_factor, cfg.sparse_im_factor);
}

TEST(ControllerEdge, UnlimitedBudgetIsAlwaysDenseOnVolatileTrace) {
  ControllerConfig cfg = test_config();
  cfg.budget_permille = 1000;  // accrual covers every tick: no constraint
  cfg.hold_windows = 1;
  Controller ctl(cfg);
  // Purely volatile trace (no quiet regime): alternate extreme powers.
  std::uint64_t dense_since_entry = 0;
  for (std::size_t t = 0; t < 400; ++t) {
    const double w = (t % 2 == 0) ? 40.0 : 140.0;
    const std::array<double, kFeatures> pmcs{10.0, 500.0 * (t % 2 ? 1. : 0.1),
                                             30.0, 40.0};
    ctl.observe(w, pmcs);
    if (ctl.mode() == Mode::kDense) ++dense_since_entry;
  }
  // Entry needs one banked window of tokens, so the first window is sparse;
  // after that the controller must pin Dense and never leave.
  EXPECT_EQ(ctl.mode(), Mode::kDense);
  EXPECT_EQ(ctl.mode_changes(), 1u);
  EXPECT_GE(ctl.dense_ticks(), 400u - 2 * cfg.window);
  const Decision d = ctl.decision();
  EXPECT_FALSE(d.use_cheap);
  EXPECT_EQ(d.pmc_stride, 1u);
  EXPECT_EQ(d.im_interval_factor, 1.0);
  EXPECT_GT(dense_since_entry, 0u);
}

TEST(ControllerEdge, QuietTraceStaysSparseAndBanksTokens) {
  Controller ctl(test_config());
  for (std::size_t t = 0; t < 300; ++t) {
    const std::array<double, kFeatures> pmcs{1.0, 2.0, 3.0, 4.0};
    ctl.observe(60.0, pmcs);
  }
  EXPECT_EQ(ctl.mode(), Mode::kSparse);
  EXPECT_EQ(ctl.mode_changes(), 0u);
  EXPECT_EQ(ctl.dense_ticks(), 0u);
  EXPECT_GT(ctl.tokens(), 0u);  // quiet phases bank credit (up to the cap)
  EXPECT_LT(ctl.last_score(), 0.5);
}

TEST(ControllerEdge, NonFiniteObservationsAreCountedButExcludedFromScore) {
  Controller ctl(test_config());
  const std::array<double, kFeatures> pmcs{1.0, 2.0, 3.0, 4.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t t = 0; t < 40; ++t) {
    ctl.observe(t % 3 == 0 ? nan : 60.0, pmcs);
  }
  EXPECT_EQ(ctl.ticks_observed(), 40u);
  EXPECT_EQ(ctl.windows_observed(), 4u);
  EXPECT_TRUE(std::isfinite(ctl.last_score()));
  EXPECT_EQ(ctl.mode(), Mode::kSparse);
}

TEST(ControllerEdge, EmptyPmcSpanScoresOnPowerAlone) {
  ControllerConfig cfg = test_config();
  cfg.hold_windows = 1;
  cfg.budget_permille = 1000;
  Controller ctl(cfg);
  for (std::size_t t = 0; t < 60; ++t) {
    ctl.observe((t % 2 == 0) ? 40.0 : 140.0, {});
  }
  // No PMC stream at all still detects power volatility and goes dense.
  EXPECT_EQ(ctl.mode(), Mode::kDense);
}

TEST(ControllerEdge, BudgetExhaustionDemotesOnlyAtWindowBoundaries) {
  // up == down == 0: the score always wants Dense, so mode transitions are
  // driven purely by the token bucket — the controller must alternate
  // dense/sparse stretches (never mid-window) and still respect the budget.
  ControllerConfig cfg = test_config();
  cfg.up_threshold_w = 0.0;
  cfg.down_threshold_w = 0.0;
  cfg.hold_windows = 1;
  cfg.budget_permille = 300;
  Controller ctl(cfg);
  Mode prev = ctl.mode();
  std::size_t boundary_phase = 0;
  for (std::size_t t = 0; t < 1000; ++t) {
    const std::array<double, kFeatures> pmcs{5.0, 6.0, 7.0, 8.0};
    ctl.observe((t % 2 == 0) ? 40.0 : 140.0, pmcs);
    if (ctl.mode() != prev) {
      // Mode may only move when a window just closed.
      EXPECT_EQ((t + 1) % cfg.window, boundary_phase) << "tick " << t;
      prev = ctl.mode();
    }
    ASSERT_LE(1000u * ctl.dense_ticks(), 300u * ctl.ticks_observed());
  }
  // The budget forces it back out of Dense and the score pulls it back in:
  // several changes, but each episode still >= hold_windows long.
  EXPECT_GE(ctl.mode_changes(), 4u);
  EXPECT_LE(ctl.mode_changes() * cfg.hold_windows, ctl.windows_observed());
  EXPECT_GT(ctl.dense_ticks(), 0u);
}

}  // namespace
}  // namespace highrpm::adapt
