// Adaptive-mode determinism: with a controller attached, FleetStepper must
// stay byte-identical to the serial HighRpm facade at every thread count
// and shard size — including across mode transitions, where lanes switch
// between the cheap decision-tree path and the full LSTM path mid-stream.
// The controller itself must agree too: per-lane mode / change / tick
// counters equal the serial facade's, so decisions are a pure function of
// (seed, trace) regardless of execution shape.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "highrpm/adapt/controller.hpp"
#include "highrpm/core/fleet.hpp"
#include "highrpm/core/highrpm.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/runtime/thread_pool.hpp"
#include "highrpm/sim/platform.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

constexpr std::size_t kStreamTicks = 64;
constexpr std::uint64_t kSeed = 4091;

/// Adaptive config tuned so mode transitions are DRIVEN BY THE BUDGET, not
/// by trace-dependent score thresholds: up == down == 0 means the score
/// always votes Dense (any real stream has nonzero variance), so the token
/// bucket alone decides — with budget 300‰ and window 10 the controller
/// provably enters Dense at window 5 and drops back at window 6 inside the
/// 64-tick stream, exercising cheap->dense->cheap routing in every lane.
HighRpmConfig adaptive_config(bool online_finetune,
                              std::uint32_t budget_permille) {
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 8;
  cfg.dynamic_trr.online_finetune = online_finetune;
  cfg.srr.epochs = 20;
  cfg.adaptive = true;
  cfg.adapt.budget_permille = budget_permille;
  cfg.adapt.hold_windows = 1;
  cfg.adapt.up_threshold_w = 0.0;
  cfg.adapt.down_threshold_w = 0.0;
  return cfg;
}

HighRpm train_golden(bool online_finetune, std::uint32_t budget_permille) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 160, kSeed));
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::stream(), 160, kSeed + 1));
  HighRpm golden(adaptive_config(online_finetune, budget_permille));
  golden.initial_learning(runs);
  return golden;
}

std::vector<measure::CollectedRun> collect_streams(std::size_t nodes) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto workload = (i % 2 == 0) ? workloads::hpcg() : workloads::fft();
    runs.push_back(collector.collect(sim::PlatformConfig::arm(), workload,
                                     kStreamTicks, kSeed + 1000 + i));
  }
  return runs;
}

/// Same fault-injection shape as the fleet determinism suite: a NaN PMC
/// cell and a NaN reading on node 1 prove the degradation mirror and the
/// controller's NaN exclusion agree between serial and fleet.
struct TickInput {
  std::vector<double> pmcs;
  std::optional<double> reading;
};

TickInput tick_input(const measure::CollectedRun& run, std::size_t node,
                     std::size_t t) {
  TickInput in;
  const auto row = run.dataset.features().row(t);
  in.pmcs.assign(row.begin(), row.end());
  if (run.measured[t]) in.reading = run.dataset.target("P_NODE")[t];
  if (node == 1 && t == 17) {
    in.pmcs[0] = std::numeric_limits<double>::quiet_NaN();
  }
  if (node == 1 && t == 30) {
    in.reading = std::numeric_limits<double>::quiet_NaN();
  }
  return in;
}

/// Controller counters that must agree bit-for-bit across execution shapes.
struct CtlState {
  adapt::Mode mode{};
  std::uint64_t mode_changes = 0;
  std::uint64_t dense_ticks = 0;
  std::uint64_t sparse_ticks = 0;
  std::uint64_t tokens = 0;
  std::uint64_t windows = 0;
  double last_score = 0.0;
};

CtlState ctl_state(const adapt::Controller& c) {
  return {c.mode(),   c.mode_changes(),      c.dense_ticks(), c.sparse_ticks(),
          c.tokens(), c.windows_observed(),  c.last_score()};
}

struct SerialResult {
  std::vector<std::vector<PowerEstimate>> estimates;
  std::vector<CtlState> controllers;
};

SerialResult serial_reference(const HighRpm& golden,
                              const std::vector<measure::CollectedRun>& runs) {
  SerialResult out;
  out.estimates.resize(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    HighRpm node = golden;
    node.reset_stream();
    out.estimates[i].reserve(kStreamTicks);
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      const TickInput in = tick_input(runs[i], i, t);
      out.estimates[i].push_back(node.on_tick(in.pmcs, in.reading));
    }
    const adapt::Controller* ctl = node.controller();
    EXPECT_NE(ctl, nullptr);
    out.controllers.push_back(ctl_state(*ctl));
  }
  return out;
}

class AdaptiveIdentityTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  static void SetUpTestSuite() {
    // Budget 300: oscillates cheap->dense->cheap inside the stream.
    shared_golden_ = new HighRpm(
        train_golden(/*online_finetune=*/false, /*budget_permille=*/300));
    // Finetune + unconstrained budget: enters Dense at the first boundary
    // and pins there; fine-tuning resumes once off the cheap path.
    finetune_golden_ = new HighRpm(
        train_golden(/*online_finetune=*/true, /*budget_permille=*/1000));
  }
  static void TearDownTestSuite() {
    delete shared_golden_;
    delete finetune_golden_;
    shared_golden_ = nullptr;
    finetune_golden_ = nullptr;
  }
  void TearDown() override { runtime::set_thread_count(0); }

  std::size_t threads() const { return std::get<0>(GetParam()); }
  std::size_t shard_lanes() const { return std::get<1>(GetParam()); }

  void expect_fleet_matches_serial(const HighRpm& golden, std::size_t nodes,
                                   std::uint64_t expect_min_changes) {
    const auto runs = collect_streams(nodes);
    runtime::set_thread_count(1);
    const SerialResult reference = serial_reference(golden, runs);
    runtime::set_thread_count(threads());

    FleetConfig cfg;
    cfg.shard_lanes = shard_lanes();
    FleetStepper fleet(golden, nodes, cfg);

    math::Matrix pmcs(nodes, runs[0].dataset.features().cols());
    std::vector<std::optional<double>> readings(nodes);
    std::vector<PowerEstimate> out(nodes);
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      for (std::size_t i = 0; i < nodes; ++i) {
        const TickInput in = tick_input(runs[i], i, t);
        auto dst = pmcs.row(i);
        std::copy(in.pmcs.begin(), in.pmcs.end(), dst.begin());
        readings[i] = in.reading;
      }
      fleet.step_tick(pmcs, readings, out);
      for (std::size_t i = 0; i < nodes; ++i) {
        ASSERT_EQ(out[i].node_w, reference.estimates[i][t].node_w)
            << "node " << i << " tick " << t << " diverged at " << threads()
            << " threads, shard_lanes " << shard_lanes();
        ASSERT_EQ(out[i].cpu_w, reference.estimates[i][t].cpu_w)
            << "node " << i << " tick " << t;
        ASSERT_EQ(out[i].mem_w, reference.estimates[i][t].mem_w)
            << "node " << i << " tick " << t;
        ASSERT_EQ(out[i].measured, reference.estimates[i][t].measured)
            << "node " << i << " tick " << t;
      }
    }

    // The controllers themselves must agree, not just the estimates.
    for (std::size_t i = 0; i < nodes; ++i) {
      const adapt::Controller* lane = fleet.lane_controller(i);
      ASSERT_NE(lane, nullptr);
      const CtlState got = ctl_state(*lane);
      const CtlState& want = reference.controllers[i];
      EXPECT_EQ(got.mode, want.mode) << "node " << i;
      EXPECT_EQ(got.mode_changes, want.mode_changes) << "node " << i;
      EXPECT_EQ(got.dense_ticks, want.dense_ticks) << "node " << i;
      EXPECT_EQ(got.sparse_ticks, want.sparse_ticks) << "node " << i;
      EXPECT_EQ(got.tokens, want.tokens) << "node " << i;
      EXPECT_EQ(got.windows, want.windows) << "node " << i;
      EXPECT_EQ(got.last_score, want.last_score) << "node " << i;
      // The scenario is built so BOTH paths actually run: a stream that
      // never transitions would vacuously pass the identity checks.
      EXPECT_GE(got.mode_changes, expect_min_changes) << "node " << i;
      EXPECT_GT(got.dense_ticks, 0u) << "node " << i;
      EXPECT_GT(got.sparse_ticks, 0u) << "node " << i;
    }
  }

  static HighRpm* shared_golden_;
  static HighRpm* finetune_golden_;
};

HighRpm* AdaptiveIdentityTest::shared_golden_ = nullptr;
HighRpm* AdaptiveIdentityTest::finetune_golden_ = nullptr;

TEST_P(AdaptiveIdentityTest, SharedRnnAdaptiveMatchesSerialBitForBit) {
  // Budget-limited: every lane oscillates Sparse -> Dense -> Sparse, so
  // the batched GEMM fast path must hand off to per-lane routing and back.
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{3},
                                  std::size_t{5}}) {
    expect_fleet_matches_serial(*shared_golden_, nodes,
                                /*expect_min_changes=*/2);
  }
}

TEST_P(AdaptiveIdentityTest, FinetuneAdaptiveMatchesSerialBitForBit) {
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{4}}) {
    expect_fleet_matches_serial(*finetune_golden_, nodes,
                                /*expect_min_changes=*/1);
  }
}

TEST_P(AdaptiveIdentityTest, ResetStreamsReplaysAdaptiveRunIdentically) {
  const std::size_t nodes = 3;
  const auto runs = collect_streams(nodes);
  runtime::set_thread_count(threads());
  FleetConfig cfg;
  cfg.shard_lanes = shard_lanes();
  FleetStepper fleet(*shared_golden_, nodes, cfg);

  math::Matrix pmcs(nodes, runs[0].dataset.features().cols());
  std::vector<std::optional<double>> readings(nodes);
  std::vector<PowerEstimate> out(nodes);
  const auto play = [&] {
    std::vector<std::vector<PowerEstimate>> all(nodes);
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      for (std::size_t i = 0; i < nodes; ++i) {
        const TickInput in = tick_input(runs[i], i, t);
        auto dst = pmcs.row(i);
        std::copy(in.pmcs.begin(), in.pmcs.end(), dst.begin());
        readings[i] = in.reading;
      }
      fleet.step_tick(pmcs, readings, out);
      for (std::size_t i = 0; i < nodes; ++i) all[i].push_back(out[i]);
    }
    return all;
  };
  const auto first = play();
  std::vector<CtlState> first_ctl;
  for (std::size_t i = 0; i < nodes; ++i) {
    first_ctl.push_back(ctl_state(*fleet.lane_controller(i)));
  }
  ASSERT_GT(first_ctl[0].mode_changes, 0u);

  fleet.reset_streams();
  for (std::size_t i = 0; i < nodes; ++i) {
    // reset_streams must rewind the controller too, not just the ring.
    const adapt::Controller* ctl = fleet.lane_controller(i);
    ASSERT_NE(ctl, nullptr);
    EXPECT_EQ(ctl->ticks_observed(), 0u);
    EXPECT_EQ(ctl->mode(), adapt::Mode::kSparse);
    EXPECT_EQ(ctl->tokens(), 0u);
  }
  const auto second = play();
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t t = 0; t < kStreamTicks; ++t) {
      ASSERT_EQ(first[i][t].node_w, second[i][t].node_w)
          << "node " << i << " tick " << t;
      ASSERT_EQ(first[i][t].cpu_w, second[i][t].cpu_w);
      ASSERT_EQ(first[i][t].mem_w, second[i][t].mem_w);
      ASSERT_EQ(first[i][t].measured, second[i][t].measured);
    }
    const CtlState replay = ctl_state(*fleet.lane_controller(i));
    EXPECT_EQ(replay.mode, first_ctl[i].mode);
    EXPECT_EQ(replay.mode_changes, first_ctl[i].mode_changes);
    EXPECT_EQ(replay.dense_ticks, first_ctl[i].dense_ticks);
    EXPECT_EQ(replay.tokens, first_ctl[i].tokens);
  }
}

TEST(AdaptiveIdentity, NonAdaptiveFleetHasNoLaneControllers) {
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 4;
  cfg.srr.epochs = 10;
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 120, kSeed + 7));
  HighRpm golden(cfg);
  golden.initial_learning(runs);
  EXPECT_EQ(golden.controller(), nullptr);
  FleetStepper fleet(golden, 2);
  EXPECT_EQ(fleet.lane_controller(0), nullptr);
  EXPECT_EQ(fleet.lane_controller(1), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByShardLanes, AdaptiveIdentityTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 8),
                       ::testing::Values<std::size_t>(2, 64)),
    [](const auto& param_info) {
      return "threads" + std::to_string(std::get<0>(param_info.param)) +
             "_lanes" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace highrpm::core
