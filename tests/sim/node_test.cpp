#include "highrpm/sim/node.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "highrpm/math/stats.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::sim {
namespace {

TEST(NodeSimulator, RejectsEmptyWorkload) {
  Workload w;
  w.name = "empty";
  EXPECT_THROW(NodeSimulator(PlatformConfig::arm(), w, 1),
               std::invalid_argument);
}

TEST(NodeSimulator, TimeAdvancesOneSecondPerTick) {
  NodeSimulator node(PlatformConfig::arm(), workloads::fft(), 1);
  EXPECT_DOUBLE_EQ(node.time(), 0.0);
  const auto s0 = node.step();
  EXPECT_DOUBLE_EQ(s0.time_s, 0.0);
  const auto s1 = node.step();
  EXPECT_DOUBLE_EQ(s1.time_s, 1.0);
  EXPECT_DOUBLE_EQ(node.time(), 2.0);
}

TEST(NodeSimulator, DeterministicForSameSeed) {
  NodeSimulator a(PlatformConfig::arm(), workloads::fft(), 42);
  NodeSimulator b(PlatformConfig::arm(), workloads::fft(), 42);
  for (int i = 0; i < 20; ++i) {
    const auto sa = a.step();
    const auto sb = b.step();
    EXPECT_DOUBLE_EQ(sa.p_node_w, sb.p_node_w);
    EXPECT_DOUBLE_EQ(sa.pmcs[0], sb.pmcs[0]);
  }
}

TEST(NodeSimulator, NodePowerIsSumOfComponents) {
  NodeSimulator node(PlatformConfig::arm(), workloads::stream(), 7);
  for (int i = 0; i < 50; ++i) {
    const auto s = node.step();
    EXPECT_NEAR(s.p_node_w, s.p_cpu_w + s.p_mem_w + s.p_other_w, 1e-9);
  }
}

TEST(NodeSimulator, OtherPowerStaysNearConstant) {
  // Paper §5.2: peripherals vary "within just under 1W" around 25 W.
  NodeSimulator node(PlatformConfig::arm(), workloads::fft(), 8);
  const auto trace = node.run(300);
  const auto other = trace.other_power();
  EXPECT_GT(math::min_value(other), 24.0);
  EXPECT_LT(math::max_value(other), 26.0);
}

TEST(NodeSimulator, FftIsCpuDominant) {
  // Fig 2 left: CPU power dominates for the compute-bound FFT.
  NodeSimulator node(PlatformConfig::arm(), workloads::fft(), 9);
  const auto trace = node.run(200);
  const double cpu = math::mean(trace.cpu_power());
  const double mem = math::mean(trace.mem_power());
  EXPECT_GT(cpu, 2.0 * mem);
  EXPECT_GT(cpu, 40.0);
}

TEST(NodeSimulator, StreamIsMemoryHeavy) {
  // Fig 2 right: RAM power is the dominant dynamic component for Stream.
  NodeSimulator fft_node(PlatformConfig::arm(), workloads::fft(), 10);
  NodeSimulator stream_node(PlatformConfig::arm(), workloads::stream(), 10);
  const auto fft_trace = fft_node.run(200);
  const auto stream_trace = stream_node.run(200);
  EXPECT_GT(math::mean(stream_trace.mem_power()),
            2.0 * math::mean(fft_trace.mem_power()));
  EXPECT_LT(math::mean(stream_trace.cpu_power()),
            math::mean(fft_trace.cpu_power()));
}

TEST(NodeSimulator, BothBenchmarksNearNinetyWattNodeLine) {
  // Fig 2: node-level average of both workloads sits around the 90 W line.
  for (const auto& w : {workloads::fft(), workloads::stream()}) {
    NodeSimulator node(PlatformConfig::arm(), w, 11);
    const auto trace = node.run(300);
    const double node_avg = math::mean(trace.node_power());
    EXPECT_GT(node_avg, 70.0) << w.name;
    EXPECT_LT(node_avg, 110.0) << w.name;
  }
}

TEST(NodeSimulator, LowerFrequencyLowersPowerAndCycles) {
  NodeSimulator hi(PlatformConfig::arm(), workloads::fft(), 12);
  NodeSimulator lo(PlatformConfig::arm(), workloads::fft(), 12);
  lo.set_frequency_level(0);
  const auto t_hi = hi.run(100);
  const auto t_lo = lo.run(100);
  EXPECT_LT(math::mean(t_lo.cpu_power()), math::mean(t_hi.cpu_power()));
  EXPECT_LT(math::mean(t_lo.pmc_series(PmcEvent::kCpuCycles)),
            math::mean(t_hi.pmc_series(PmcEvent::kCpuCycles)));
}

TEST(NodeSimulator, InvalidFrequencyLevelThrows) {
  NodeSimulator node(PlatformConfig::arm(), workloads::fft(), 13);
  EXPECT_THROW(node.set_frequency_level(17), std::out_of_range);
}

TEST(NodeSimulator, PmcsAreNonNegativeAndConsistent) {
  NodeSimulator node(PlatformConfig::arm(), workloads::graph500_bfs(), 14);
  for (int i = 0; i < 100; ++i) {
    const auto s = node.step();
    for (const double v : s.pmcs) EXPECT_GE(v, 0.0);
    // Cache hierarchy: L1 >= L2 >= L3 traffic (miss ratios < 1), with slack
    // for per-counter jitter.
    const auto at = [&](PmcEvent e) {
      return s.pmcs[static_cast<std::size_t>(e)];
    };
    EXPECT_GT(at(PmcEvent::kL1DCacheLd) * 1.1, at(PmcEvent::kL2DCacheLd));
    EXPECT_GT(at(PmcEvent::kL2DCacheLd) * 1.1, at(PmcEvent::kL3DCacheLd));
  }
}

TEST(NodeSimulator, PowerCorrelatesWithCycles) {
  // The PMC->power relationship the models rely on must exist in the data.
  NodeSimulator node(PlatformConfig::arm(), workloads::graph500_bfs(), 15);
  const auto trace = node.run(400);
  const double corr = math::pearson(trace.pmc_series(PmcEvent::kCpuCycles),
                                    trace.cpu_power());
  EXPECT_GT(corr, 0.8);
}

TEST(NodeSimulator, Graph500HasSpikes) {
  // Fig 1's premise: BFS power has sharp spikes on top of its trend.
  NodeSimulator node(PlatformConfig::arm(), workloads::graph500_bfs(), 16);
  const auto trace = node.run(600);
  const auto p = trace.node_power();
  const double avg = math::mean(p);
  const double peak = math::max_value(p);
  EXPECT_GT(peak, avg * 1.12);
}

class MultiWorkloadProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(MultiWorkloadProperty, PowerAlwaysPhysical) {
  const auto w = workloads::by_name(GetParam());
  NodeSimulator node(PlatformConfig::arm(), w, 17);
  const auto trace = node.run(150);
  for (const auto& s : trace.samples()) {
    EXPECT_GT(s.p_cpu_w, 0.0);
    EXPECT_GT(s.p_mem_w, 0.0);
    EXPECT_GT(s.p_other_w, 20.0);
    EXPECT_LT(s.p_node_w, 300.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, MultiWorkloadProperty,
                         ::testing::Values("fft", "stream", "graph500-bfs",
                                           "hpl-ai", "smg2000", "hpcg",
                                           "mcf", "canneal"));

TEST(NodeSimulatorTenants, RejectsEmptyTenantList) {
  EXPECT_THROW(NodeSimulator(PlatformConfig::arm(), std::vector<Workload>{}, 1),
               std::invalid_argument);
}

TEST(NodeSimulatorTenants, SingleWorkloadCtorProducesNoTenantRecord) {
  NodeSimulator node(PlatformConfig::arm(), workloads::fft(), 21);
  const auto s = node.step();
  EXPECT_TRUE(s.tenants.empty());
  EXPECT_EQ(node.num_tenants(), 0u);
}

TEST(NodeSimulatorTenants, TenantPowersSumToComponentPower) {
  // The attribution ground truth must be conserved: the K tenant watts are
  // a partition of the node's component power (idle + dynamic), nothing
  // invented, nothing lost.
  const std::vector<Workload> tenants{workloads::fft(), workloads::stream(),
                                      workloads::graph500_bfs()};
  NodeSimulator node(PlatformConfig::arm(), tenants, 22);
  EXPECT_EQ(node.num_tenants(), 3u);
  for (int i = 0; i < 100; ++i) {
    const auto s = node.step();
    ASSERT_EQ(s.tenants.size(), 3u);
    double sum = 0.0;
    for (const auto& t : s.tenants) {
      EXPECT_GT(t.p_w, 0.0);  // idle share alone keeps every tenant positive
      sum += t.p_w;
    }
    EXPECT_NEAR(sum, s.p_cpu_w + s.p_mem_w, 1e-9);
  }
}

TEST(NodeSimulatorTenants, TenantPmcsSumToNodePmcs) {
  // The node-level counters are the per-cgroup counters aggregated — the
  // same invariant a kernel's cgroup accounting provides.
  const std::vector<Workload> tenants{workloads::fft(), workloads::stream()};
  NodeSimulator node(PlatformConfig::arm(), tenants, 23);
  for (int i = 0; i < 50; ++i) {
    const auto s = node.step();
    for (std::size_t e = 0; e < kNumPmcEvents; ++e) {
      double sum = 0.0;
      for (const auto& t : s.tenants) sum += t.pmcs[e];
      EXPECT_NEAR(s.pmcs[e], sum, 1e-9 * (1.0 + std::fabs(sum)));
    }
  }
}

TEST(NodeSimulatorTenants, DeterministicForSameSeed) {
  const std::vector<Workload> tenants{workloads::fft(), workloads::stream()};
  NodeSimulator a(PlatformConfig::arm(), tenants, 42);
  NodeSimulator b(PlatformConfig::arm(), tenants, 42);
  for (int i = 0; i < 30; ++i) {
    const auto sa = a.step();
    const auto sb = b.step();
    EXPECT_DOUBLE_EQ(sa.p_node_w, sb.p_node_w);
    for (std::size_t k = 0; k < sa.tenants.size(); ++k) {
      EXPECT_DOUBLE_EQ(sa.tenants[k].p_w, sb.tenants[k].p_w);
      EXPECT_DOUBLE_EQ(sa.tenants[k].pmcs[0], sb.tenants[k].pmcs[0]);
    }
  }
}

TEST(NodeSimulatorTenants, DominantTenantDrawsMorePower) {
  // A compute-bound tenant co-located with two near-idle copies must get
  // the lion's share of the dynamic power.
  Workload idle = workloads::fft();
  idle.name = "idle-ish";
  for (auto& ph : idle.phases) {
    ph.utilization *= 0.1;
    ph.spike_rate_hz = 0.0;
  }
  const std::vector<Workload> tenants{workloads::fft(), idle, idle};
  NodeSimulator node(PlatformConfig::arm(), tenants, 24);
  double w0 = 0.0, w1 = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto s = node.step();
    w0 += s.tenants[0].p_w;
    w1 += s.tenants[1].p_w;
  }
  EXPECT_GT(w0, 1.5 * w1);
}

TEST(NodeSimulatorTenants, TracePowerAccessor) {
  const std::vector<Workload> tenants{workloads::fft(), workloads::stream()};
  NodeSimulator node(PlatformConfig::arm(), tenants, 25);
  const auto trace = node.run(50);
  EXPECT_EQ(trace.num_tenants(), 2u);
  const auto p0 = trace.tenant_power(0);
  ASSERT_EQ(p0.size(), 50u);
  EXPECT_DOUBLE_EQ(p0[7], trace.samples()[7].tenants[0].p_w);
  EXPECT_THROW(trace.tenant_power(2), std::out_of_range);
}

TEST(NodeSimulator, RejectsEmptyFreqLadder) {
  // Used to be accepted and then crash inside step() when the power model
  // indexed the empty DVFS ladder.
  PlatformConfig p = PlatformConfig::arm();
  p.freq_levels_ghz.clear();
  p.default_freq_level = 0;
  EXPECT_THROW(NodeSimulator(p, workloads::fft(), 1), std::invalid_argument);
}

TEST(NodeSimulator, RejectsOutOfRangeDefaultLevel) {
  PlatformConfig p = PlatformConfig::arm();
  p.default_freq_level = p.freq_levels_ghz.size();
  EXPECT_THROW(NodeSimulator(p, workloads::fft(), 1), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::sim
