#include "highrpm/sim/platform.hpp"

#include <gtest/gtest.h>

namespace highrpm::sim {
namespace {

TEST(Platform, ArmPresetMatchesPaper) {
  const auto p = PlatformConfig::arm();
  EXPECT_EQ(p.num_cores, 64u);  // §5.1: 64-core ARMv8
  ASSERT_EQ(p.freq_levels_ghz.size(), 3u);
  EXPECT_DOUBLE_EQ(p.freq_levels_ghz[0], 1.4);  // §6.4.2: min
  EXPECT_DOUBLE_EQ(p.freq_levels_ghz[1], 1.8);  // mid
  EXPECT_DOUBLE_EQ(p.freq_levels_ghz[2], 2.2);  // max
  EXPECT_DOUBLE_EQ(p.frequency_ghz(p.default_freq_level), 2.2);
  EXPECT_NEAR(p.power.other_idle_w, 25.0, 1e-9);  // §5.2: P_Other ~ 25 W
}

TEST(Platform, X86PresetIsFasterAndNoisier) {
  const auto arm = PlatformConfig::arm();
  const auto x86 = PlatformConfig::x86();
  EXPECT_GT(x86.max_frequency_ghz(), arm.max_frequency_ghz());  // 2.6 vs 2.2
  EXPECT_GT(x86.power.cpu_noise_w, arm.power.cpu_noise_w);
  EXPECT_NE(x86.name, arm.name);
}

TEST(Platform, InvalidFrequencyLevelThrows) {
  const auto p = PlatformConfig::arm();
  EXPECT_THROW(p.frequency_ghz(99), std::out_of_range);
}

TEST(Platform, EmptyLadderMaxFrequencyThrows) {
  // .back() on an empty vector is undefined behaviour; the accessor now
  // reports the malformed config instead.
  PlatformConfig p = PlatformConfig::arm();
  p.freq_levels_ghz.clear();
  EXPECT_THROW(p.max_frequency_ghz(), std::logic_error);
}

TEST(Platform, VoltageScalesWithFrequency) {
  const auto p = PlatformConfig::arm();
  // Higher frequency -> higher supply voltage (the V^2 f superlinearity the
  // Fig-9 experiment depends on).
  EXPECT_GT(p.power.volt_slope, 0.0);
}

}  // namespace
}  // namespace highrpm::sim
