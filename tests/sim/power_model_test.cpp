#include "highrpm/sim/power_model.hpp"

#include <gtest/gtest.h>

namespace highrpm::sim {
namespace {

PmcVector activity(double util, double ipc, double mem_rate,
                   const PlatformConfig& p, std::size_t level) {
  PmcVector v{};
  const double f_hz = p.frequency_ghz(level) * 1e9;
  const double cycles = static_cast<double>(p.num_cores) * f_hz * util;
  const double inst = cycles * ipc;
  v[static_cast<std::size_t>(PmcEvent::kCpuCycles)] = cycles;
  v[static_cast<std::size_t>(PmcEvent::kInstRetired)] = inst;
  v[static_cast<std::size_t>(PmcEvent::kL2DCacheLd)] = inst * 0.02;
  v[static_cast<std::size_t>(PmcEvent::kL3DCacheLd)] = inst * 0.006;
  v[static_cast<std::size_t>(PmcEvent::kMemAccess)] = mem_rate;
  v[static_cast<std::size_t>(PmcEvent::kBusAccess)] = mem_rate * 1.6;
  return v;
}

TEST(PowerModel, IdleActivityGivesIdlePower) {
  const auto p = PlatformConfig::arm();
  const PmcVector zero{};
  const auto power = compute_component_power(p, zero, 2);
  EXPECT_NEAR(power.cpu_w, p.power.cpu_idle_w, 1e-9);
  EXPECT_NEAR(power.mem_w, p.power.mem_idle_w, 1e-9);
}

TEST(PowerModel, CpuPowerMonotonicInUtilization) {
  const auto p = PlatformConfig::arm();
  double prev = 0.0;
  for (const double util : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto power =
        compute_component_power(p, activity(util, 1.5, 1e8, p, 2), 2);
    EXPECT_GT(power.cpu_w, prev);
    prev = power.cpu_w;
  }
}

TEST(PowerModel, MemPowerMonotonicAndSaturating) {
  const auto p = PlatformConfig::arm();
  // Equally spaced rates: monotone increasing power with decreasing
  // increments (concave saturation). The bus term is linear, which preserves
  // concavity of the sum.
  double prev = 0.0, prev_delta = 1e18;
  bool first = true;
  for (const double rate : {0.5e9, 1.0e9, 1.5e9, 2.0e9, 2.5e9}) {
    const auto power =
        compute_component_power(p, activity(0.5, 1.5, rate, p, 2), 2);
    if (!first) {
      EXPECT_GT(power.mem_w, prev);
      const double delta = power.mem_w - prev;
      EXPECT_LT(delta, prev_delta);  // concave roll-off
      prev_delta = delta;
    }
    prev = power.mem_w;
    first = false;
  }
}

TEST(PowerModel, HigherFrequencyCostsMorePowerForSameUtilization) {
  const auto p = PlatformConfig::arm();
  // Same busy-core count at both frequencies (activity scaled to match).
  const auto low = compute_component_power(p, activity(0.8, 1.5, 1e8, p, 0), 0);
  const auto high = compute_component_power(p, activity(0.8, 1.5, 1e8, p, 2), 2);
  EXPECT_GT(high.cpu_w, low.cpu_w);
}

TEST(PowerModel, SupplyVoltageIsAffine) {
  const auto p = PlatformConfig::arm();
  const double v1 = supply_voltage(p.power, 1.0);
  const double v2 = supply_voltage(p.power, 2.0);
  const double v3 = supply_voltage(p.power, 3.0);
  EXPECT_NEAR(v2 - v1, v3 - v2, 1e-12);
  EXPECT_GT(v1, 0.0);
}

TEST(PowerModel, CpuDynamicPowerSaturates) {
  const auto p = PlatformConfig::arm();
  // Ridiculous activity must stay below idle + saturation ceiling.
  const auto power =
      compute_component_power(p, activity(1.0, 50.0, 1e8, p, 2), 2);
  EXPECT_LT(power.cpu_w, p.power.cpu_idle_w + p.power.cpu_sat + 1e-9);
}

TEST(PowerModel, FullLoadArmCpuPowerInPlausibleRange) {
  // Calibration: a compute-heavy full-load tick should land in the regime
  // the paper's Fig 2 shows (node ~90 W with P_Other ~25 W).
  const auto p = PlatformConfig::arm();
  const auto power =
      compute_component_power(p, activity(0.92, 2.2, 2e8, p, 2), 2);
  EXPECT_GT(power.cpu_w, 40.0);
  EXPECT_LT(power.cpu_w, 75.0);
}

}  // namespace
}  // namespace highrpm::sim
