#include "highrpm/sim/trace.hpp"

#include <gtest/gtest.h>

namespace highrpm::sim {
namespace {

TickSample make_tick(double t, double cpu, double mem, double other) {
  TickSample s;
  s.time_s = t;
  s.p_cpu_w = cpu;
  s.p_mem_w = mem;
  s.p_other_w = other;
  s.p_node_w = cpu + mem + other;
  s.pmcs[0] = t * 100.0;
  return s;
}

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_DOUBLE_EQ(t.total_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(t.peak_node_power(), 0.0);
}

TEST(Trace, ColumnsExtractCorrectly) {
  Trace t;
  t.push_back(make_tick(0, 30, 10, 25));
  t.push_back(make_tick(1, 40, 12, 25));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.times()[1], 1.0);
  EXPECT_DOUBLE_EQ(t.cpu_power()[1], 40.0);
  EXPECT_DOUBLE_EQ(t.mem_power()[0], 10.0);
  EXPECT_DOUBLE_EQ(t.other_power()[0], 25.0);
  EXPECT_DOUBLE_EQ(t.node_power()[1], 77.0);
  EXPECT_DOUBLE_EQ(t.pmc_series(PmcEvent::kCpuCycles)[1], 100.0);
}

TEST(Trace, EnergyIsSumOfNodePower) {
  Trace t;
  t.push_back(make_tick(0, 30, 10, 25));  // 65 W
  t.push_back(make_tick(1, 40, 10, 25));  // 75 W
  EXPECT_DOUBLE_EQ(t.total_energy_j(), 140.0);
  EXPECT_DOUBLE_EQ(t.peak_node_power(), 75.0);
}

TEST(Trace, PmcMatrixShape) {
  Trace t;
  t.push_back(make_tick(0, 1, 1, 1));
  t.push_back(make_tick(1, 1, 1, 1));
  const auto m = t.pmc_matrix();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), kNumPmcEvents);
  EXPECT_DOUBLE_EQ(m(1, 0), 100.0);
}

TEST(Trace, AppendShiftsTimestamps) {
  Trace a;
  a.push_back(make_tick(0, 1, 1, 1));
  a.push_back(make_tick(1, 1, 1, 1));
  Trace b;
  b.push_back(make_tick(0, 2, 2, 2));
  a.append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[2].time_s, 2.0);
  EXPECT_DOUBLE_EQ(a[2].p_cpu_w, 2.0);
}

TEST(PmcNames, AllDistinctAndNamed) {
  for (std::size_t i = 0; i < kNumPmcEvents; ++i) {
    EXPECT_FALSE(kPmcEventNames[i].empty());
    for (std::size_t j = i + 1; j < kNumPmcEvents; ++j) {
      EXPECT_NE(kPmcEventNames[i], kPmcEventNames[j]);
    }
  }
  EXPECT_EQ(pmc_event_name(PmcEvent::kMemAccess), "MEM_ACCESS");
}

}  // namespace
}  // namespace highrpm::sim
