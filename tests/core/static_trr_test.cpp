#include "highrpm/core/static_trr.hpp"

#include <gtest/gtest.h>

#include "highrpm/math/metrics.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

measure::CollectedRun collect(const sim::Workload& w, std::size_t ticks,
                              std::uint64_t seed) {
  measure::Collector collector;
  return collector.collect(sim::PlatformConfig::arm(), w, ticks, seed);
}

struct Fitted {
  StaticTrr trr{};
  measure::CollectedRun run;
};

Fitted fit_on(const sim::Workload& w, std::size_t ticks, std::uint64_t seed,
              StaticTrrConfig cfg = {}) {
  Fitted f{StaticTrr(cfg), collect(w, ticks, seed)};
  std::vector<std::size_t> idx;
  std::vector<double> power;
  for (const auto& r : f.run.ipmi_readings) {
    idx.push_back(r.tick_index);
    power.push_back(r.power_w);
  }
  const auto times = f.run.truth.times();
  f.trr.fit(f.run.dataset.features(), times, idx, power);
  return f;
}

TEST(StaticTrr, RequiresEnoughLabels) {
  StaticTrr trr;
  const math::Matrix pmcs(10, 3);
  const std::vector<double> times{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<std::size_t> idx{0, 5};
  const std::vector<double> power{90, 92};
  EXPECT_THROW(trr.fit(pmcs, times, idx, power), std::invalid_argument);
}

TEST(StaticTrr, RestoreBeforeFitThrows) {
  StaticTrr trr;
  EXPECT_THROW(trr.restore(math::Matrix(5, 3), std::vector<double>(5)),
               std::logic_error);
}

TEST(StaticTrr, RestoresFullResolution) {
  auto f = fit_on(workloads::fft(), 200, 1);
  const auto r =
      f.trr.restore(f.run.dataset.features(), f.run.truth.times());
  EXPECT_EQ(r.splined.size(), 200u);
  EXPECT_EQ(r.residual.size(), 200u);
  EXPECT_EQ(r.merged.size(), 200u);
}

TEST(StaticTrr, RestorationTracksGroundTruth) {
  // The headline behaviour: 10x temporal restoration with single-digit MAPE.
  auto f = fit_on(workloads::fft(), 400, 2);
  const auto r =
      f.trr.restore(f.run.dataset.features(), f.run.truth.times());
  const auto truth = f.run.truth.node_power();
  EXPECT_LT(math::mape(truth, r.merged), 8.0);
}

TEST(StaticTrr, MergedAtLeastCloseToSplineQuality) {
  // Table 6: StaticTRR may be slightly worse than raw spline on aggregate
  // metrics but must stay in the same band.
  auto f = fit_on(workloads::graph500_bfs(), 400, 3);
  const auto r =
      f.trr.restore(f.run.dataset.features(), f.run.truth.times());
  const auto truth = f.run.truth.node_power();
  const double spline_mape = math::mape(truth, r.splined);
  const double merged_mape = math::mape(truth, r.merged);
  EXPECT_LT(merged_mape, spline_mape + 5.0);
}

TEST(StaticTrr, BoundsDerivedFromLabels) {
  auto f = fit_on(workloads::fft(), 150, 4);
  EXPECT_GT(f.trr.p_upper(), f.trr.p_bottom());
  EXPECT_GT(f.trr.p_bottom(), 0.0);
}

TEST(StaticTrr, ExplicitBoundsHonored) {
  StaticTrrConfig cfg;
  cfg.p_upper = 500.0;
  cfg.p_bottom = 1.0;
  auto f = fit_on(workloads::fft(), 150, 5, cfg);
  EXPECT_DOUBLE_EQ(f.trr.p_upper(), 500.0);
  EXPECT_DOUBLE_EQ(f.trr.p_bottom(), 1.0);
}

// ------------------------- Algorithm 1 unit tests -------------------------

TEST(PostProcess, AgreementKeepsSpline) {
  StaticTrrConfig cfg;
  cfg.alpha = 0.1;
  cfg.beta = 0.5;
  const std::vector<double> spl{100, 100, 100};
  const std::vector<double> res{101, 99, 100};  // within alpha band
  const auto out = static_trr_post_process(spl, res, 200, 10, cfg);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(out[i], spl[i]);
}

TEST(PostProcess, ModerateDisagreementAverages) {
  StaticTrrConfig cfg;
  cfg.alpha = 0.05;
  cfg.beta = 0.5;
  const std::vector<double> spl{100};
  const std::vector<double> res{120};  // 20% apart: between alpha and beta
  const auto out = static_trr_post_process(spl, res, 200, 10, cfg);
  EXPECT_DOUBLE_EQ(out[0], 110.0);
}

TEST(PostProcess, ExtremeDisagreementTrustsSpline) {
  StaticTrrConfig cfg;
  cfg.alpha = 0.05;
  cfg.beta = 0.2;
  const std::vector<double> spl{100};
  const std::vector<double> res{160};  // 60% apart: beyond beta
  const auto out = static_trr_post_process(spl, res, 200, 10, cfg);
  EXPECT_DOUBLE_EQ(out[0], 100.0);
}

TEST(PostProcess, OutOfBoundsResidualFallsBackToSpline) {
  StaticTrrConfig cfg;
  const std::vector<double> spl{100, 100};
  const std::vector<double> res{500, 5};  // above upper / below bottom
  const auto out = static_trr_post_process(spl, res, 200, 10, cfg);
  EXPECT_DOUBLE_EQ(out[0], 100.0);
  EXPECT_DOUBLE_EQ(out[1], 100.0);
}

TEST(PostProcess, SpikeHoldSpreadsJump) {
  StaticTrrConfig cfg;
  cfg.miss_interval = 4;
  cfg.spike_jump_fraction = 0.30;
  // range = 100; the step of 50 >= 30 exceeds the threshold at i=5 and the
  // step value is held across the surrounding half window [3, 7).
  std::vector<double> spl{50, 50, 50, 50, 50, 100, 100, 100, 100, 100};
  const std::vector<double> res = spl;
  const auto out = static_trr_post_process(spl, res, 110, 10, cfg);
  EXPECT_DOUBLE_EQ(out[3], 100.0);
  EXPECT_DOUBLE_EQ(out[4], 100.0);
  EXPECT_DOUBLE_EQ(out[5], 100.0);
  EXPECT_DOUBLE_EQ(out[6], 100.0);
  EXPECT_DOUBLE_EQ(out[0], 50.0);
  EXPECT_DOUBLE_EQ(out[9], 100.0);
}

TEST(PostProcess, IsolatedPulseBothEdgesHeld) {
  // A one-tick pulse triggers the hold on both edges; the trailing edge's
  // hold (the pre-pulse level) wins where the windows overlap.
  StaticTrrConfig cfg;
  cfg.miss_interval = 4;
  cfg.spike_jump_fraction = 0.30;
  std::vector<double> spl{50, 50, 50, 50, 50, 100, 50, 50, 50, 50};
  const auto out = static_trr_post_process(spl, spl, 110, 10, cfg);
  EXPECT_DOUBLE_EQ(out[3], 100.0);  // leading-edge hold only
  EXPECT_DOUBLE_EQ(out[5], 50.0);   // overwritten by the i=6 back-edge hold
}

TEST(PostProcess, LengthMismatchThrows) {
  StaticTrrConfig cfg;
  EXPECT_THROW(static_trr_post_process(std::vector<double>{1, 2},
                                       std::vector<double>{1}, 10, 0, cfg),
               std::invalid_argument);
}

// Property: merged output is always within the envelope of its inputs
// (after the spike-hold), for random spline/residual pairs.
class PostProcessEnvelope : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PostProcessEnvelope, OutputWithinInputEnvelope) {
  math::Rng rng(GetParam());
  StaticTrrConfig cfg;
  cfg.spike_jump_fraction = 10.0;  // disable spike-hold for the invariant
  const std::size_t n = 50;
  std::vector<double> spl(n), res(n);
  for (std::size_t i = 0; i < n; ++i) {
    spl[i] = rng.uniform(50, 150);
    res[i] = rng.uniform(50, 150);
  }
  const auto out = static_trr_post_process(spl, res, 200, 10, cfg);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(out[i], std::min(spl[i], res[i]) - 1e-9);
    EXPECT_LE(out[i], std::max(spl[i], res[i]) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostProcessEnvelope,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace highrpm::core
