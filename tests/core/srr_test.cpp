#include "highrpm/core/srr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/math/metrics.hpp"
#include "highrpm/math/rng.hpp"
#include "highrpm/core/static_trr.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

measure::CollectedRun collect(const sim::Workload& w, std::size_t ticks,
                              std::uint64_t seed) {
  measure::Collector collector;
  return collector.collect(sim::PlatformConfig::arm(), w, ticks, seed);
}

SrrConfig fast_config(bool include_pnode = true) {
  SrrConfig cfg;
  cfg.epochs = 40;
  cfg.include_pnode = include_pnode;
  return cfg;
}

struct TrainedSrr {
  Srr srr;
  measure::CollectedRun test;
};

TrainedSrr train_mixed(bool include_pnode, std::uint64_t seed) {
  // Train on a CPU-bound and a memory-bound workload so the split is
  // genuinely learnable, test on a third.
  const auto a = collect(workloads::fft(), 200, seed);
  const auto b = collect(workloads::stream(), 200, seed + 1);
  const std::size_t n = a.num_ticks() + b.num_ticks();
  math::Matrix x(n, a.dataset.num_features());
  std::vector<double> p_node(n), p_cpu(n), p_mem(n);
  std::size_t w = 0;
  for (const auto* run : {&a, &b}) {
    const auto& f = run->dataset.features();
    for (std::size_t r = 0; r < f.rows(); ++r) {
      std::copy(f.row(r).begin(), f.row(r).end(), x.row(w).begin());
      p_node[w] = run->dataset.target("P_NODE")[r];
      p_cpu[w] = run->dataset.target("P_CPU")[r];
      p_mem[w] = run->dataset.target("P_MEM")[r];
      ++w;
    }
  }
  TrainedSrr out{Srr(fast_config(include_pnode)),
                 collect(workloads::smg2000(), 150, seed + 2)};
  out.srr.fit(x, p_node, p_cpu, p_mem);
  return out;
}

TEST(Srr, FitValidatesLengths) {
  Srr srr(fast_config());
  const math::Matrix x(10, 3, 1.0);
  const std::vector<double> ten(10, 1.0), nine(9, 1.0);
  EXPECT_THROW(srr.fit(x, ten, nine, ten), std::invalid_argument);
  EXPECT_THROW(srr.fit(x, nine, ten, ten), std::invalid_argument);
}

TEST(Srr, PredictBeforeFitThrows) {
  Srr srr(fast_config());
  const std::vector<double> pmcs(3, 1.0);
  EXPECT_THROW(srr.predict_one(pmcs, 90.0), std::logic_error);
  EXPECT_THROW(srr.fine_tune(math::Matrix(2, 3), std::vector<double>(2),
                             std::vector<double>(2), std::vector<double>(2), 1),
               std::logic_error);
}

TEST(Srr, SplitsNodePowerIntoComponents) {
  auto t = train_mixed(true, 1);
  const auto& features = t.test.dataset.features();
  const auto& p_node = t.test.dataset.target("P_NODE");
  std::vector<double> cpu_true, cpu_pred, mem_true, mem_pred;
  for (std::size_t r = 0; r < features.rows(); ++r) {
    const auto est = t.srr.predict_one(features.row(r), p_node[r]);
    cpu_true.push_back(t.test.truth[r].p_cpu_w);
    cpu_pred.push_back(est.cpu_w);
    mem_true.push_back(t.test.truth[r].p_mem_w);
    mem_pred.push_back(est.mem_w);
  }
  EXPECT_LT(math::mape(cpu_true, cpu_pred), 15.0);
  EXPECT_LT(math::mape(mem_true, mem_pred), 25.0);
}

TEST(Srr, PnodeFeatureImprovesAccuracy) {
  // The Table-8 ablation in miniature: dropping P_Node must hurt.
  auto with = train_mixed(true, 5);
  auto without = train_mixed(false, 5);
  const auto& features = with.test.dataset.features();
  const auto& p_node = with.test.dataset.target("P_NODE");
  double err_with = 0.0, err_without = 0.0;
  for (std::size_t r = 0; r < features.rows(); ++r) {
    const auto ew = with.srr.predict_one(features.row(r), p_node[r]);
    const auto eo = without.srr.predict_one(features.row(r), 0.0);
    err_with += std::abs(ew.cpu_w - with.test.truth[r].p_cpu_w) +
                std::abs(ew.mem_w - with.test.truth[r].p_mem_w);
    err_without += std::abs(eo.cpu_w - with.test.truth[r].p_cpu_w) +
                   std::abs(eo.mem_w - with.test.truth[r].p_mem_w);
  }
  EXPECT_LT(err_with, err_without);
}

TEST(Srr, BatchPredictMatchesPointwise) {
  auto t = train_mixed(true, 7);
  const auto& features = t.test.dataset.features();
  const auto& p_node = t.test.dataset.target("P_NODE");
  const auto batch = t.srr.predict(features, p_node);
  ASSERT_EQ(batch.size(), features.rows());
  for (std::size_t r = 0; r < 10; ++r) {
    const auto one = t.srr.predict_one(features.row(r), p_node[r]);
    EXPECT_DOUBLE_EQ(batch[r].cpu_w, one.cpu_w);
    EXPECT_DOUBLE_EQ(batch[r].mem_w, one.mem_w);
  }
}

TEST(Srr, FineTuneShiftsModel) {
  auto t = train_mixed(true, 9);
  const auto& features = t.test.dataset.features();
  const auto& p_node = t.test.dataset.target("P_NODE");
  const auto before = t.srr.predict_one(features.row(0), p_node[0]);
  // Fine-tune toward deliberately shifted labels.
  std::vector<double> cpu_shift(features.rows()), mem_shift(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    cpu_shift[r] = t.test.dataset.target("P_CPU")[r] + 15.0;
    mem_shift[r] = t.test.dataset.target("P_MEM")[r] + 5.0;
  }
  t.srr.fine_tune(features, p_node, cpu_shift, mem_shift, 20);
  const auto after = t.srr.predict_one(features.row(0), p_node[0]);
  EXPECT_GT(after.cpu_w, before.cpu_w);
}

TEST(Srr, ConsistencyProjectionPullsTowardBudget) {
  auto t = train_mixed(true, 21);
  const auto& features = t.test.dataset.features();
  const auto& p_node = t.test.dataset.target("P_NODE");
  // Invariant of the partial projection: |cpu+mem - (node - P_Other)| is
  // bounded by the projection limit (plus network slack inside the clamp).
  for (std::size_t r = 0; r < features.rows(); r += 17) {
    const auto est = t.srr.predict_one(features.row(r), p_node[r]);
    const double budget = p_node[r] - t.srr.config().p_other_w;
    const double total = est.cpu_w + est.mem_w;
    if (budget > 1.0) {
      // After partial projection the total lies between the raw sum and
      // the budget; in particular it cannot be further from the budget
      // than the unconstrained network would allow via the clamp.
      EXPECT_LT(std::abs(total - budget),
                (t.srr.config().projection_limit + 0.05) * budget + 10.0);
    }
  }
}

TEST(Srr, AugmentedTrainingSetHasExpectedSize) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 60, 31));
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::stream(), 40, 32));
  SrrConfig cfg;
  cfg.augment_copies = 2;
  StaticTrrConfig trr_cfg;
  const auto set = build_srr_training_set(runs, cfg, trr_cfg);
  EXPECT_EQ(set.x.rows(), (60u + 40u) * 3u);  // original + 2 copies
  EXPECT_EQ(set.p_node.size(), set.x.rows());
  // Copy 0 rows carry the unscaled rig labels.
  EXPECT_NEAR(set.p_cpu[0], runs[0].dataset.target("P_CPU")[0], 1e-9);
  // Virtual-application rows are rescaled but stay positive and bounded.
  for (std::size_t i = 0; i < set.x.rows(); ++i) {
    EXPECT_GT(set.p_cpu[i], 0.0);
    EXPECT_LT(set.p_cpu[i], 200.0);
    EXPECT_GT(set.p_node[i], 0.0);
  }
}

TEST(Srr, AugmentationZeroCopiesIsIdentity) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 50, 33));
  SrrConfig cfg;
  cfg.augment_copies = 0;
  StaticTrrConfig trr_cfg;
  const auto set = build_srr_training_set(runs, cfg, trr_cfg);
  EXPECT_EQ(set.x.rows(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(set.p_cpu[i], runs[0].dataset.target("P_CPU")[i]);
    EXPECT_DOUBLE_EQ(set.p_mem[i], runs[0].dataset.target("P_MEM")[i]);
  }
}

TEST(Srr, ConfigExposesAblationSwitch) {
  EXPECT_TRUE(Srr(fast_config(true)).config().include_pnode);
  EXPECT_FALSE(Srr(fast_config(false)).config().include_pnode);
}

TEST(Srr, PredictBatchMatchesPredictOneBitForBit) {
  // Both ablations: with P_NODE (consistency projection active) and
  // without (raw MLP split) must batch identically.
  for (const bool include_pnode : {true, false}) {
    const auto trained = train_mixed(include_pnode, 77);
    const auto& features = trained.test.dataset.features();
    const auto& p_node = trained.test.dataset.target("P_NODE");
    const std::size_t n = 60;
    math::Matrix x(n, features.cols());
    for (std::size_t r = 0; r < n; ++r) {
      std::copy(features.row(r).begin(), features.row(r).end(),
                x.row(r).begin());
    }
    Srr::BatchScratch scratch;
    std::vector<ComponentEstimate> batch(n);
    trained.srr.predict_batch_into(
        x, std::span<const double>(p_node).subspan(0, n), batch, scratch);
    for (std::size_t r = 0; r < n; ++r) {
      const auto one = trained.srr.predict_one(features.row(r), p_node[r]);
      // Exact equality: the batch path is the scalar path re-expressed.
      ASSERT_EQ(batch[r].cpu_w, one.cpu_w) << "row " << r;
      ASSERT_EQ(batch[r].mem_w, one.mem_w) << "row " << r;
    }
  }
}

TEST(Srr, NegativeOutputsClampToZeroBeforeProjection) {
  // Regression: a head trained toward a tiny (near-idle) component could
  // emit slightly negative watts, and with include_pnode off (or a budget
  // below the projection gate) nothing corrected it — predict_one happily
  // returned negative power. Fixture: train mem toward a negative target so
  // the raw network output is reliably < 0.
  SrrConfig cfg = fast_config(false);
  cfg.consistency_projection = false;
  cfg.epochs = 200;
  Srr srr(cfg);
  math::Rng rng(99);
  const std::size_t n = 200;
  math::Matrix x(n, 4);
  std::vector<double> p_node(n), p_cpu(n), p_mem(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (double& v : x.row(r)) v = rng.uniform(0.5, 1.5);
    p_cpu[r] = 50.0;
    p_mem[r] = -8.0;  // adversarial label: the net learns a negative output
    p_node[r] = 100.0;
  }
  srr.fit(x, p_node, p_cpu, p_mem);
  bool saw_mem_at_floor = false;
  for (std::size_t r = 0; r < 20; ++r) {
    const auto est = srr.predict_one(x.row(r), p_node[r]);
    EXPECT_GE(est.cpu_w, 0.0);
    EXPECT_GE(est.mem_w, 0.0);  // would be ~-8 W before the clamp
    saw_mem_at_floor = saw_mem_at_floor || math::is_zero(est.mem_w);
  }
  EXPECT_TRUE(saw_mem_at_floor)
      << "fixture no longer drives the raw output negative";
}

TEST(Srr, KWayHeadRejectsLegacyTwoComponentApi) {
  SrrConfig cfg = fast_config();
  cfg.outputs = 4;
  Srr srr(cfg);
  const math::Matrix x(10, 3, 1.0);
  const std::vector<double> ten(10, 1.0);
  EXPECT_THROW(srr.fit(x, ten, ten, ten), std::logic_error);
  math::Matrix targets(10, 4, 1.0);
  srr.fit_multi(x, ten, targets);
  EXPECT_THROW(srr.predict_one(x.row(0), 90.0), std::logic_error);
  Srr::Scratch scratch;
  std::vector<double> wrong(2);
  EXPECT_THROW(srr.predict_one_into(x.row(0), 90.0, wrong, scratch),
               std::invalid_argument);
}

struct TrainedKWay {
  Srr srr;
  math::Matrix x;
  std::vector<double> p_node;
};

TrainedKWay train_kway(std::size_t k, std::uint64_t seed) {
  SrrConfig cfg;
  cfg.outputs = k;
  cfg.epochs = 60;
  TrainedKWay out{Srr(cfg), math::Matrix(240, 2 * k), {}};
  math::Rng rng(seed);
  math::Matrix targets(out.x.rows(), k);
  out.p_node.resize(out.x.rows());
  for (std::size_t r = 0; r < out.x.rows(); ++r) {
    double node = 25.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double act = rng.uniform(0.1, 1.0);
      out.x(r, 2 * j) = act;
      out.x(r, 2 * j + 1) = rng.uniform(0.0, 0.2);
      targets(r, j) = 8.0 + 60.0 * act;
      node += targets(r, j);
    }
    out.p_node[r] = node;
  }
  out.srr.fit_multi(out.x, out.p_node, targets);
  return out;
}

TEST(Srr, KWayPredictRecoversTenantShares) {
  const auto t = train_kway(4, 101);
  Srr::Scratch scratch;
  std::vector<double> est(4);
  double err = 0.0, total = 0.0;
  for (std::size_t r = 0; r < t.x.rows(); ++r) {
    double raw = 0.0;
    t.srr.predict_one_into(t.x.row(r), t.p_node[r], est, scratch, &raw);
    EXPECT_GT(raw, 0.0);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_GE(est[j], 0.0);
      const double truth = 8.0 + 60.0 * t.x(r, 2 * j);
      err += std::abs(est[j] - truth);
      total += truth;
    }
  }
  EXPECT_LT(err / total, 0.10);  // within 10% aggregate on training support
}

TEST(Srr, KWayBatchMatchesScalarBitForBit) {
  for (const std::size_t k : {std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    const auto t = train_kway(k, 200 + k);
    Srr::Scratch scratch;
    Srr::BatchScratch bscratch;
    math::Matrix batch;
    t.srr.predict_batch_multi_into(t.x, t.p_node, batch, bscratch);
    ASSERT_EQ(batch.rows(), t.x.rows());
    ASSERT_EQ(batch.cols(), k);
    std::vector<double> one(k);
    for (std::size_t r = 0; r < t.x.rows(); r += 7) {
      t.srr.predict_one_into(t.x.row(r), t.p_node[r], one, scratch);
      for (std::size_t j = 0; j < k; ++j) {
        ASSERT_EQ(batch(r, j), one[j]) << "row " << r << " tenant " << j;
      }
    }
  }
}

TEST(Srr, TwoOutputHeadKeepsLegacyPathBitIdentical) {
  // outputs == 2 must be the SAME model as the historical component head:
  // the K-way entry points and the ComponentEstimate API agree exactly.
  auto t = train_mixed(true, 301);
  const auto& features = t.test.dataset.features();
  const auto& p_node = t.test.dataset.target("P_NODE");
  Srr::Scratch scratch;
  std::vector<double> est(2);
  for (std::size_t r = 0; r < features.rows(); r += 13) {
    const auto legacy = t.srr.predict_one(features.row(r), p_node[r]);
    t.srr.predict_one_into(features.row(r), p_node[r], est, scratch);
    ASSERT_EQ(est[0], legacy.cpu_w) << "row " << r;
    ASSERT_EQ(est[1], legacy.mem_w) << "row " << r;
  }
}

TEST(Srr, AttributionTrainingSetShapesAndLabels) {
  measure::Collector collector;
  const std::vector<sim::Workload> tenants{workloads::fft(),
                                           workloads::stream()};
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect_tenants(sim::PlatformConfig::arm(), tenants,
                                           60, 41));
  runs.push_back(collector.collect_tenants(sim::PlatformConfig::arm(), tenants,
                                           40, 42));
  SrrConfig cfg;
  cfg.outputs = 2;
  cfg.augment_copies = 2;
  StaticTrrConfig trr_cfg;
  const auto set = build_attribution_training_set(runs, cfg, trr_cfg);
  EXPECT_EQ(set.x.rows(), (60u + 40u) * 3u);  // original + 2 virtual mixes
  EXPECT_EQ(set.x.cols(), 2u * sim::kNumPmcEvents);
  EXPECT_EQ(set.targets.rows(), set.x.rows());
  EXPECT_EQ(set.targets.cols(), 2u);
  EXPECT_EQ(set.p_node.size(), set.x.rows());
  // Copy 0 carries the unscaled ground-truth tenant watts.
  EXPECT_DOUBLE_EQ(set.targets(0, 0), runs[0].tenant_power(0, 0));
  EXPECT_DOUBLE_EQ(set.targets(0, 1), runs[0].tenant_power(0, 1));
  for (std::size_t i = 0; i < set.x.rows(); ++i) {
    EXPECT_GT(set.targets(i, 0), 0.0);
    EXPECT_GT(set.p_node[i], 0.0);
  }
  // Mixed tenant counts must be rejected.
  runs.push_back(collector.collect_tenants(
      sim::PlatformConfig::arm(),
      std::vector<sim::Workload>{workloads::fft()}, 20, 43));
  EXPECT_THROW(build_attribution_training_set(runs, cfg, trr_cfg),
               std::invalid_argument);
}

TEST(Srr, PredictBatchValidatesSizes) {
  const auto trained = train_mixed(true, 78);
  const std::size_t f = trained.test.dataset.features().cols();
  const math::Matrix x(4, f, 0.5);
  const std::vector<double> p_node(4, 100.0);
  Srr::BatchScratch scratch;
  std::vector<ComponentEstimate> wrong(3);
  EXPECT_THROW(trained.srr.predict_batch_into(x, p_node, wrong, scratch),
               std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::core
