#include "highrpm/core/dynamic_trr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "highrpm/math/metrics.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

measure::CollectedRun collect(const sim::Workload& w, std::size_t ticks,
                              std::uint64_t seed) {
  measure::Collector collector;
  return collector.collect(sim::PlatformConfig::arm(), w, ticks, seed);
}

DynamicTrrConfig fast_config() {
  DynamicTrrConfig cfg;
  cfg.rnn.epochs = 12;
  return cfg;
}

TEST(DynamicTrr, ConfigValidation) {
  DynamicTrrConfig cfg;
  cfg.miss_interval = 1;
  EXPECT_THROW(DynamicTrr{cfg}, std::invalid_argument);
}

TEST(DynamicTrr, StepBeforeTrainThrows) {
  DynamicTrr trr(fast_config());
  const std::vector<double> pmcs(sim::kNumPmcEvents, 0.0);
  EXPECT_THROW(trr.step(pmcs, std::nullopt), std::logic_error);
}

TEST(DynamicTrr, TrainRequiresFullWindows) {
  DynamicTrr trr(fast_config());
  // 5 ticks < miss_interval of 10: no window can be built.
  const math::Matrix pmcs(5, 3, 1.0);
  const std::vector<double> labels{1, 2, 3, 4, 5};
  EXPECT_THROW(trr.train_single(pmcs, labels), std::invalid_argument);
}

TEST(DynamicTrr, StreamingProducesEstimateEveryTick) {
  const auto train = collect(workloads::fft(), 250, 1);
  DynamicTrr trr(fast_config());
  trr.train_single(train.dataset.features(), train.dataset.target("P_NODE"));

  const auto test = collect(workloads::fft(), 60, 2);
  const auto& features = test.dataset.features();
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    std::optional<double> reading;
    if (test.measured[t]) {
      reading = test.dataset.target("P_NODE")[t];
    }
    const double est = trr.step(features.row(t), reading);
    EXPECT_TRUE(std::isfinite(est));
    EXPECT_GT(est, 0.0);
    EXPECT_LT(est, 400.0);
  }
}

TEST(DynamicTrr, MeasuredTicksReturnTheMeasurement) {
  const auto train = collect(workloads::fft(), 250, 3);
  DynamicTrr trr(fast_config());
  trr.train_single(train.dataset.features(), train.dataset.target("P_NODE"));
  const auto test = collect(workloads::fft(), 40, 4);
  const auto& features = test.dataset.features();
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    if (test.measured[t]) {
      const double v = test.dataset.target("P_NODE")[t];
      EXPECT_DOUBLE_EQ(trr.step(features.row(t), v), v);
    } else {
      trr.step(features.row(t), std::nullopt);
    }
  }
}

TEST(DynamicTrr, OnlineFinetuneFiresOnMeasurements) {
  const auto train = collect(workloads::fft(), 250, 5);
  DynamicTrrConfig cfg = fast_config();
  cfg.online_finetune = true;
  DynamicTrr trr(cfg);
  trr.train_single(train.dataset.features(), train.dataset.target("P_NODE"));
  const auto test = collect(workloads::fft(), 60, 6);
  const auto& features = test.dataset.features();
  const std::size_t before = trr.finetune_count();
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    std::optional<double> reading;
    if (test.measured[t]) reading = test.dataset.target("P_NODE")[t];
    trr.step(features.row(t), reading);
  }
  // Readings arrive every 10 ticks; the first few fall before the window is
  // full, so expect at least a couple of fine-tunes over 60 ticks.
  EXPECT_GE(trr.finetune_count(), before + 2);
}

TEST(DynamicTrr, TracksNodePowerOnUnseenRun) {
  // Train on two workloads, stream an unseen one: errors should stay in a
  // usable band (the full Table-5 comparison lives in the bench).
  std::vector<math::Matrix> pmcs;
  std::vector<std::vector<double>> labels;
  for (const auto& [w, seed] :
       std::vector<std::pair<sim::Workload, std::uint64_t>>{
           {workloads::fft(), 10}, {workloads::stream(), 11}}) {
    const auto run = collect(w, 200, seed);
    pmcs.push_back(run.dataset.features());
    labels.push_back(run.dataset.target("P_NODE"));
  }
  DynamicTrrConfig cfg = fast_config();
  cfg.rnn.epochs = 25;
  DynamicTrr trr(cfg);
  trr.train(pmcs, labels);

  const auto test = collect(workloads::hpcg(), 120, 12);
  const auto& features = test.dataset.features();
  std::vector<double> truth, est;
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    std::optional<double> reading;
    if (test.measured[t]) reading = test.dataset.target("P_NODE")[t];
    const double e = trr.step(features.row(t), reading);
    if (!test.measured[t]) {  // score only restored ticks
      truth.push_back(test.truth[t].p_node_w);
      est.push_back(e);
    }
  }
  EXPECT_LT(math::mape(truth, est), 15.0);
}

TEST(DynamicTrr, ResetStreamClearsState) {
  const auto train = collect(workloads::fft(), 250, 13);
  DynamicTrr trr(fast_config());
  trr.train_single(train.dataset.features(), train.dataset.target("P_NODE"));
  const auto test = collect(workloads::fft(), 30, 14);
  const auto& features = test.dataset.features();
  std::vector<double> first;
  for (std::size_t t = 0; t < 20; ++t) {
    first.push_back(trr.step(features.row(t), std::nullopt));
  }
  trr.reset_stream();
  // Replaying the same ticks after reset gives the same estimates only if
  // no online fine-tune happened (none did: no readings were offered).
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_DOUBLE_EQ(trr.step(features.row(t), std::nullopt), first[t]);
  }
}

TEST(DynamicTrr, FineTuneApiRejectsUntrained) {
  DynamicTrr trr(fast_config());
  EXPECT_THROW(trr.fine_tune({}, 1), std::logic_error);
}


TEST(DynamicTrr, ColdStartFallsBackToTrainingLabelMean) {
  const auto train = collect(workloads::fft(), 250, 15);
  DynamicTrrConfig cfg = fast_config();
  // Disable the validation layer so the estimate is the raw model output:
  // this isolates the cold-start prior from the plausibility clamp.
  cfg.validate_inputs = false;
  DynamicTrr trr(cfg);
  trr.train_single(train.dataset.features(), train.dataset.target("P_NODE"));
  const double mean = trr.train_label_mean();
  EXPECT_GT(mean, 0.0);

  // First tick of a stream with no IM reading: pre-hardening the P'_prev
  // input was 0.0 W — far outside anything the model trained on — and the
  // first estimates started from nonsense. With the label-mean prior the
  // cold-start estimate lands near the training distribution.
  const auto test = collect(workloads::fft(), 10, 16);
  const double est = trr.step(test.dataset.features().row(0), std::nullopt);
  EXPECT_NEAR(est, mean, 0.35 * mean);
}

TEST(DynamicTrr, StreamWindowNeverExceedsMissInterval) {
  const auto train = collect(workloads::fft(), 250, 17);
  DynamicTrr trr(fast_config());
  trr.train_single(train.dataset.features(), train.dataset.target("P_NODE"));
  const std::size_t mi = trr.config().miss_interval;
  const auto test = collect(workloads::fft(), 50, 18);
  const auto& features = test.dataset.features();
  EXPECT_EQ(trr.stream_window_size(), 0u);
  for (std::size_t t = 0; t < test.num_ticks(); ++t) {
    trr.step(features.row(t), std::nullopt);
    EXPECT_LE(trr.stream_window_size(), mi);
    EXPECT_EQ(trr.stream_window_size(), std::min<std::size_t>(t + 1, mi));
  }
}

TEST(DynamicTrr, StepRejectsWrongRowWidth) {
  const auto train = collect(workloads::fft(), 250, 19);
  DynamicTrr trr(fast_config());
  trr.train_single(train.dataset.features(), train.dataset.target("P_NODE"));
  const std::vector<double> wrong(train.dataset.features().cols() + 3, 1.0);
  EXPECT_THROW(trr.step(wrong, std::nullopt), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::core
