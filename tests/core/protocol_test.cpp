#include "highrpm/core/protocol.hpp"

#include <gtest/gtest.h>

namespace highrpm::core {
namespace {

ProtocolConfig tiny_config() {
  ProtocolConfig cfg;
  cfg.samples_per_suite = 120;
  cfg.min_ticks_per_workload = 40;
  cfg.max_workloads_per_suite = 3;
  return cfg;
}

class ProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { data_ = new auto(collect_all_suites(tiny_config())); }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static std::vector<SuiteData>* data_;
};

std::vector<SuiteData>* ProtocolTest::data_ = nullptr;

TEST_F(ProtocolTest, CollectsAllSevenSuites) {
  ASSERT_EQ(data_->size(), 7u);
  EXPECT_EQ((*data_)[0].suite, "SPEC");
  EXPECT_EQ((*data_)[6].suite, "HPCG");
  for (const auto& sd : *data_) {
    EXPECT_FALSE(sd.runs.empty()) << sd.suite;
    EXPECT_LE(sd.runs.size(), 3u) << sd.suite;  // max_workloads cap
    for (const auto& run : sd.runs) {
      EXPECT_GE(run.num_ticks(), 40u);
      EXPECT_EQ(run.suite, sd.suite);
    }
  }
}

TEST_F(ProtocolTest, UnseenSplitsExcludeHeldOutSuite) {
  const auto splits = make_unseen_splits(*data_);
  ASSERT_EQ(splits.size(), 7u);
  for (const auto& s : splits) {
    EXPECT_FALSE(s.seen);
    for (const auto& run : s.train) {
      EXPECT_NE(run.suite, s.held_out_suite);
    }
    ASSERT_EQ(s.test.size(), s.test_score_start.size());
    for (std::size_t i = 0; i < s.test.size(); ++i) {
      EXPECT_EQ(s.test[i].suite, s.held_out_suite);
      EXPECT_EQ(s.test_score_start[i], 0u);  // whole run is scored
    }
    EXPECT_FALSE(s.test.empty());
  }
}

TEST_F(ProtocolTest, SeenSplitsIncludeTargetSuiteHead) {
  const auto splits = make_seen_splits(*data_, 0.25);
  ASSERT_EQ(splits.size(), 7u);
  for (const auto& s : splits) {
    EXPECT_TRUE(s.seen);
    std::size_t target_train_runs = 0;
    for (const auto& run : s.train) {
      if (run.suite == s.held_out_suite) ++target_train_runs;
    }
    EXPECT_GT(target_train_runs, 0u);
    // Test runs are full runs; scoring starts at the head/tail boundary
    // (~75% in), so the scored tail never overlaps the trained head.
    ASSERT_EQ(s.test.size(), s.test_score_start.size());
    for (std::size_t i = 0; i < s.test.size(); ++i) {
      const auto& run = s.test[i];
      EXPECT_EQ(run.suite, s.held_out_suite);
      EXPECT_GT(s.test_score_start[i], run.num_ticks() / 2);
      EXPECT_LT(s.test_score_start[i], run.num_ticks());
    }
  }
}

TEST_F(ProtocolTest, SeenSplitsRejectBadFraction) {
  EXPECT_THROW(make_seen_splits(*data_, 0.0), std::invalid_argument);
  EXPECT_THROW(make_seen_splits(*data_, 1.0), std::invalid_argument);
}

TEST_F(ProtocolTest, SliceRunReindexesIpmi) {
  const auto& run = (*data_)[0].runs[0];
  const auto s = slice_run(run, 10, 25);
  EXPECT_EQ(s.num_ticks(), 25u);
  EXPECT_EQ(s.measured.size(), 25u);
  EXPECT_EQ(s.truth.size(), 25u);
  for (const auto& r : s.ipmi_readings) {
    EXPECT_LT(r.tick_index, 25u);
    EXPECT_TRUE(s.measured[r.tick_index]);
  }
  EXPECT_THROW(slice_run(run, 0, run.num_ticks() + 1), std::out_of_range);
}

TEST_F(ProtocolTest, SliceRunPreservesValues) {
  const auto& run = (*data_)[1].runs[0];
  const auto s = slice_run(run, 5, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(s.dataset.target("P_NODE")[i],
                     run.dataset.target("P_NODE")[5 + i]);
    EXPECT_DOUBLE_EQ(s.truth[i].p_cpu_w, run.truth[5 + i].p_cpu_w);
  }
}

TEST_F(ProtocolTest, FlattenConcatenatesEverything) {
  const auto& runs = (*data_)[2].runs;
  const auto flat = flatten_runs(runs);
  std::size_t total = 0;
  for (const auto& r : runs) total += r.num_ticks();
  EXPECT_EQ(flat.x.rows(), total);
  EXPECT_EQ(flat.p_node.size(), total);
  EXPECT_EQ(flat.p_cpu.size(), total);
  EXPECT_EQ(flat.p_mem.size(), total);
  // First run's first row round-trips.
  EXPECT_DOUBLE_EQ(flat.p_node[0], runs[0].dataset.target("P_NODE")[0]);
}

TEST(Protocol, FlattenEmptyThrows) {
  EXPECT_THROW(flatten_runs({}), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::core
