#include "highrpm/core/highrpm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "highrpm/math/metrics.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

HighRpmConfig fast_config() {
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 12;
  cfg.srr.epochs = 30;
  return cfg;
}

std::vector<measure::CollectedRun> training_runs(std::uint64_t seed) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 200, seed));
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::stream(), 200, seed + 1));
  return runs;
}

measure::CollectedRun test_run(std::uint64_t seed, std::size_t ticks = 100) {
  measure::Collector collector;
  return collector.collect(sim::PlatformConfig::arm(), workloads::smg2000(),
                           ticks, seed);
}

class HighRpmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    framework_ = new HighRpm(fast_config());
    const auto runs = training_runs(100);
    framework_->initial_learning(runs);
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }
  static HighRpm* framework_;
};

HighRpm* HighRpmTest::framework_ = nullptr;

TEST(HighRpm, UntrainedUsageThrows) {
  HighRpm h(fast_config());
  EXPECT_FALSE(h.trained());
  const std::vector<double> pmcs(sim::kNumPmcEvents, 0.0);
  EXPECT_THROW(h.on_tick(pmcs, std::nullopt), std::logic_error);
  EXPECT_THROW(h.restore_log(test_run(1)), std::logic_error);
  EXPECT_THROW(h.active_learning(test_run(1)), std::logic_error);
  EXPECT_THROW(h.initial_learning({}), std::invalid_argument);
}

TEST_F(HighRpmTest, TrainedAfterInitialLearning) {
  EXPECT_TRUE(framework_->trained());
}

TEST_F(HighRpmTest, RestoreLogCoversEveryTick) {
  const auto run = test_run(2, 120);
  const auto log = framework_->restore_log(run);
  EXPECT_EQ(log.node_w.size(), 120u);
  EXPECT_EQ(log.cpu_w.size(), 120u);
  EXPECT_EQ(log.mem_w.size(), 120u);
  const auto truth = run.truth.node_power();
  EXPECT_LT(math::mape(truth, log.node_w), 12.0);
}

TEST_F(HighRpmTest, StreamingEstimatesAreConsistent) {
  HighRpm h = *framework_;  // private copy so fine-tunes don't leak
  h.reset_stream();
  const auto run = test_run(3, 80);
  const auto& features = run.dataset.features();
  std::vector<double> truth, est;
  for (std::size_t t = 0; t < run.num_ticks(); ++t) {
    std::optional<double> reading;
    if (run.measured[t]) reading = run.dataset.target("P_NODE")[t];
    const auto e = h.on_tick(features.row(t), reading);
    EXPECT_EQ(e.measured, run.measured[t]);
    // Components must roughly add up: node ~= cpu + mem + P_other.
    EXPECT_NEAR(e.cpu_w + e.mem_w + h.config().p_other_w, e.node_w,
                0.5 * e.node_w);
    truth.push_back(run.truth[t].p_node_w);
    est.push_back(e.node_w);
  }
  EXPECT_LT(math::mape(truth, est), 12.0);
}

TEST_F(HighRpmTest, ActiveLearningRunsAndCounts) {
  HighRpm h = *framework_;
  const auto run = test_run(4, 150);
  const std::size_t before = h.active_learning_rounds();
  h.active_learning(run);
  EXPECT_EQ(h.active_learning_rounds(), before + 1);
}

TEST_F(HighRpmTest, MonitorServiceManagesNodes) {
  MonitorService service(*framework_);
  service.register_node("cn-0");
  service.register_node("cn-1");
  EXPECT_EQ(service.node_count(), 2u);
  EXPECT_TRUE(service.has_node("cn-0"));
  EXPECT_FALSE(service.has_node("cn-9"));
  EXPECT_THROW(service.register_node("cn-0"), std::invalid_argument);

  const auto run = test_run(5, 40);
  const auto& features = run.dataset.features();
  for (std::size_t t = 0; t < 20; ++t) {
    const auto e = service.on_tick("cn-0", features.row(t), std::nullopt);
    EXPECT_GT(e.node_w, 0.0);
  }
  EXPECT_THROW(service.on_tick("cn-9", features.row(0), std::nullopt),
               std::out_of_range);
}

TEST_F(HighRpmTest, MonitorServicePerNodeIsolation) {
  MonitorService service(*framework_);
  service.register_node("a");
  service.register_node("b");
  const auto run = test_run(6, 150);
  // Active-learn only node "a"; node "b" must be untouched.
  service.active_learning("a", run);
  EXPECT_EQ(service.node("a").active_learning_rounds(), 1u);
  EXPECT_EQ(service.node("b").active_learning_rounds(), 0u);
}

TEST(MonitorService, RejectsUntrainedGolden) {
  EXPECT_THROW(MonitorService(HighRpm(fast_config())), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// K-way per-tenant attribution + SmartWatts-style self-calibration.

HighRpmConfig tenant_config(std::size_t k) {
  HighRpmConfig cfg = fast_config();
  cfg.tenants = k;
  cfg.tenant_srr.epochs = 50;
  return cfg;
}

std::vector<measure::CollectedRun> tenant_runs(std::uint64_t seed) {
  measure::Collector collector;
  const std::vector<sim::Workload> tenants{workloads::fft(),
                                           workloads::stream()};
  std::vector<measure::CollectedRun> runs;
  runs.push_back(
      collector.collect_tenants(sim::PlatformConfig::arm(), tenants, 200, seed));
  runs.push_back(collector.collect_tenants(sim::PlatformConfig::arm(), tenants,
                                           200, seed + 1));
  return runs;
}

class HighRpmAttributionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    framework_ = new HighRpm(tenant_config(2));
    const auto runs = tenant_runs(500);
    framework_->initial_learning(runs);
    framework_->fit_attribution(runs);
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }
  static HighRpm* framework_;
};

HighRpm* HighRpmAttributionTest::framework_ = nullptr;

TEST(HighRpmAttribution, CtorValidatesTenantAndSelfCalConfig) {
  HighRpmConfig over = tenant_config(kMaxTenants + 1);
  EXPECT_THROW(HighRpm{over}, std::invalid_argument);
  HighRpmConfig bad_alpha = tenant_config(2);
  bad_alpha.self_cal.enabled = true;
  bad_alpha.self_cal.ewma_alpha = 0.0;
  EXPECT_THROW(HighRpm{bad_alpha}, std::invalid_argument);
  HighRpmConfig bad_buffer = tenant_config(2);
  bad_buffer.self_cal.enabled = true;
  bad_buffer.self_cal.buffer_ticks = 8;
  bad_buffer.self_cal.min_buffered = 9;
  EXPECT_THROW(HighRpm{bad_buffer}, std::invalid_argument);
}

TEST(HighRpmAttribution, GuardsBeforeAndAfterFit) {
  HighRpm plain(fast_config());
  EXPECT_THROW(plain.fit_attribution(tenant_runs(1)), std::logic_error);

  HighRpm h(tenant_config(2));
  EXPECT_FALSE(h.attribution_trained());
  EXPECT_THROW(h.fit_attribution({}), std::invalid_argument);
  // Runs collected without tenants carry num_tenants == 0 != cfg.tenants.
  measure::Collector collector;
  std::vector<measure::CollectedRun> plain_runs;
  plain_runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                         workloads::fft(), 40, 7));
  EXPECT_THROW(h.fit_attribution(plain_runs), std::invalid_argument);

  const std::vector<double> pmcs(sim::kNumPmcEvents, 0.0);
  const std::vector<double> trow(2 * sim::kNumPmcEvents, 0.0);
  EXPECT_THROW(h.on_tick(pmcs, trow, std::nullopt), std::logic_error);
}

TEST_F(HighRpmAttributionTest, TenantEstimatesTrackGroundTruth) {
  HighRpm h = *framework_;
  h.reset_stream();
  const auto run = tenant_runs(900)[0];
  const auto& features = run.dataset.features();
  double err = 0.0, total = 0.0;
  for (std::size_t t = 0; t < run.num_ticks(); ++t) {
    std::optional<double> reading;
    if (run.measured[t]) reading = run.dataset.target("P_NODE")[t];
    const auto e = h.on_tick(features.row(t), run.tenant_pmcs.row(t), reading);
    ASSERT_EQ(e.tenants, 2u);
    double sum = 0.0;
    for (std::size_t k = 0; k < 2; ++k) {
      ASSERT_TRUE(std::isfinite(e.tenant_w[k]));
      EXPECT_GE(e.tenant_w[k], 0.0);
      sum += e.tenant_w[k];
      err += std::abs(e.tenant_w[k] - run.tenant_power(t, k));
      total += run.tenant_power(t, k);
    }
    // The projection pulls the K-way split toward the node budget.
    EXPECT_NEAR(sum, e.node_w - h.config().p_other_w, 0.5 * e.node_w);
  }
  EXPECT_LT(err / total, 0.35);
  // Wrong-size tenant row is rejected.
  const std::vector<double> bad(3 * sim::kNumPmcEvents, 0.0);
  EXPECT_THROW(h.on_tick(features.row(0), bad, std::nullopt),
               std::invalid_argument);
}

TEST_F(HighRpmAttributionTest, CorruptTenantRowHeldAtLastGood) {
  const auto run = tenant_runs(901)[0];
  const auto& features = run.dataset.features();
  HighRpm held = *framework_;
  HighRpm control = *framework_;
  held.reset_stream();
  control.reset_stream();
  for (std::size_t t = 0; t < 10; ++t) {
    held.on_tick(features.row(t), run.tenant_pmcs.row(t), std::nullopt);
    control.on_tick(features.row(t), run.tenant_pmcs.row(t), std::nullopt);
  }
  // Tick 10: `held` sees a corrupt row, `control` is fed tick 9's row
  // explicitly — the hold must make them byte-identical.
  std::vector<double> corrupt(run.tenant_pmcs.row(10).begin(),
                              run.tenant_pmcs.row(10).end());
  corrupt[1] = std::numeric_limits<double>::quiet_NaN();
  const auto a = held.on_tick(features.row(10), corrupt, std::nullopt);
  const auto b =
      control.on_tick(features.row(10), run.tenant_pmcs.row(9), std::nullopt);
  for (std::size_t k = 0; k < 2; ++k) {
    ASSERT_EQ(a.tenant_w[k], b.tenant_w[k]);
  }
  // Before any good row the hold substitutes zeros, never NaN.
  HighRpm fresh = *framework_;
  fresh.reset_stream();
  const auto first =
      fresh.on_tick(features.row(0), corrupt, std::nullopt);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_TRUE(std::isfinite(first.tenant_w[k]));
  }
}

TEST_F(HighRpmAttributionTest, SelfCalibrationTriggersOnDriftOnly) {
  HighRpmConfig cfg = tenant_config(2);
  cfg.self_cal.enabled = true;
  cfg.self_cal.drift_threshold_pct = 15.0;
  cfg.self_cal.buffer_ticks = 24;
  cfg.self_cal.min_buffered = 8;
  cfg.self_cal.cooldown_ticks = 40;
  HighRpm h(cfg);
  const auto runs = tenant_runs(500);
  h.initial_learning(runs);
  h.fit_attribution(runs);

  const auto run = tenant_runs(902)[0];
  const auto& features = run.dataset.features();
  const auto& p_node = run.dataset.target("P_NODE");

  // In-distribution readings: the drift EWMA stays under threshold.
  for (std::size_t t = 0; t < 60; ++t) {
    h.on_tick(features.row(t), run.tenant_pmcs.row(t), p_node[t]);
  }
  EXPECT_EQ(h.self_cal_triggers(), 0u);
  EXPECT_LT(h.self_cal_drift_pct(), cfg.self_cal.drift_threshold_pct);

  // Latent platform change (per-op energy scales up 1.5x — same tenant
  // activity, more watts): the PMC-only head's raw sum now undershoots the
  // trusted IM budget by a sustained margin. The readings are genuine, so
  // DynamicTrr keeps accepting them (measured ticks are the only ones
  // buffered/scored), the drift EWMA crosses threshold and the trigger
  // fires — while the cooldown stops it re-firing every tick.
  sim::PlatformConfig hot = sim::PlatformConfig::arm();
  hot.power.inst_energy_nj *= 1.5;
  hot.power.mem_energy_nj *= 1.5;
  hot.power.dyn_scale *= 1.5;
  measure::Collector collector;
  const std::vector<sim::Workload> mix{workloads::fft(), workloads::stream()};
  const auto drifted = collector.collect_tenants(hot, mix, 120, 902);
  const auto& dfeat = drifted.dataset.features();
  const auto& dnode = drifted.dataset.target("P_NODE");
  h.reset_stream();
  for (std::size_t t = 0; t < 120; ++t) {
    h.on_tick(dfeat.row(t), drifted.tenant_pmcs.row(t), dnode[t]);
  }
  EXPECT_GE(h.self_cal_triggers(), 1u);
  EXPECT_LE(h.self_cal_triggers(), 3u)
      << "cooldown failed to rate-limit recalibration";

  // Disabled self-cal never fires, whatever the drift.
  HighRpm off = *framework_;
  off.reset_stream();
  for (std::size_t t = 0; t < 120; ++t) {
    off.on_tick(dfeat.row(t), drifted.tenant_pmcs.row(t), dnode[t]);
  }
  EXPECT_EQ(off.self_cal_triggers(), 0u);
}

}  // namespace
}  // namespace highrpm::core
