#include "highrpm/core/highrpm.hpp"

#include <gtest/gtest.h>

#include "highrpm/math/metrics.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {
namespace {

HighRpmConfig fast_config() {
  HighRpmConfig cfg;
  cfg.dynamic_trr.rnn.epochs = 12;
  cfg.srr.epochs = 30;
  return cfg;
}

std::vector<measure::CollectedRun> training_runs(std::uint64_t seed) {
  measure::Collector collector;
  std::vector<measure::CollectedRun> runs;
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::fft(), 200, seed));
  runs.push_back(collector.collect(sim::PlatformConfig::arm(),
                                   workloads::stream(), 200, seed + 1));
  return runs;
}

measure::CollectedRun test_run(std::uint64_t seed, std::size_t ticks = 100) {
  measure::Collector collector;
  return collector.collect(sim::PlatformConfig::arm(), workloads::smg2000(),
                           ticks, seed);
}

class HighRpmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    framework_ = new HighRpm(fast_config());
    const auto runs = training_runs(100);
    framework_->initial_learning(runs);
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }
  static HighRpm* framework_;
};

HighRpm* HighRpmTest::framework_ = nullptr;

TEST(HighRpm, UntrainedUsageThrows) {
  HighRpm h(fast_config());
  EXPECT_FALSE(h.trained());
  const std::vector<double> pmcs(sim::kNumPmcEvents, 0.0);
  EXPECT_THROW(h.on_tick(pmcs, std::nullopt), std::logic_error);
  EXPECT_THROW(h.restore_log(test_run(1)), std::logic_error);
  EXPECT_THROW(h.active_learning(test_run(1)), std::logic_error);
  EXPECT_THROW(h.initial_learning({}), std::invalid_argument);
}

TEST_F(HighRpmTest, TrainedAfterInitialLearning) {
  EXPECT_TRUE(framework_->trained());
}

TEST_F(HighRpmTest, RestoreLogCoversEveryTick) {
  const auto run = test_run(2, 120);
  const auto log = framework_->restore_log(run);
  EXPECT_EQ(log.node_w.size(), 120u);
  EXPECT_EQ(log.cpu_w.size(), 120u);
  EXPECT_EQ(log.mem_w.size(), 120u);
  const auto truth = run.truth.node_power();
  EXPECT_LT(math::mape(truth, log.node_w), 12.0);
}

TEST_F(HighRpmTest, StreamingEstimatesAreConsistent) {
  HighRpm h = *framework_;  // private copy so fine-tunes don't leak
  h.reset_stream();
  const auto run = test_run(3, 80);
  const auto& features = run.dataset.features();
  std::vector<double> truth, est;
  for (std::size_t t = 0; t < run.num_ticks(); ++t) {
    std::optional<double> reading;
    if (run.measured[t]) reading = run.dataset.target("P_NODE")[t];
    const auto e = h.on_tick(features.row(t), reading);
    EXPECT_EQ(e.measured, run.measured[t]);
    // Components must roughly add up: node ~= cpu + mem + P_other.
    EXPECT_NEAR(e.cpu_w + e.mem_w + h.config().p_other_w, e.node_w,
                0.5 * e.node_w);
    truth.push_back(run.truth[t].p_node_w);
    est.push_back(e.node_w);
  }
  EXPECT_LT(math::mape(truth, est), 12.0);
}

TEST_F(HighRpmTest, ActiveLearningRunsAndCounts) {
  HighRpm h = *framework_;
  const auto run = test_run(4, 150);
  const std::size_t before = h.active_learning_rounds();
  h.active_learning(run);
  EXPECT_EQ(h.active_learning_rounds(), before + 1);
}

TEST_F(HighRpmTest, MonitorServiceManagesNodes) {
  MonitorService service(*framework_);
  service.register_node("cn-0");
  service.register_node("cn-1");
  EXPECT_EQ(service.node_count(), 2u);
  EXPECT_TRUE(service.has_node("cn-0"));
  EXPECT_FALSE(service.has_node("cn-9"));
  EXPECT_THROW(service.register_node("cn-0"), std::invalid_argument);

  const auto run = test_run(5, 40);
  const auto& features = run.dataset.features();
  for (std::size_t t = 0; t < 20; ++t) {
    const auto e = service.on_tick("cn-0", features.row(t), std::nullopt);
    EXPECT_GT(e.node_w, 0.0);
  }
  EXPECT_THROW(service.on_tick("cn-9", features.row(0), std::nullopt),
               std::out_of_range);
}

TEST_F(HighRpmTest, MonitorServicePerNodeIsolation) {
  MonitorService service(*framework_);
  service.register_node("a");
  service.register_node("b");
  const auto run = test_run(6, 150);
  // Active-learn only node "a"; node "b" must be untouched.
  service.active_learning("a", run);
  EXPECT_EQ(service.node("a").active_learning_rounds(), 1u);
  EXPECT_EQ(service.node("b").active_learning_rounds(), 0u);
}

TEST(MonitorService, RejectsUntrainedGolden) {
  EXPECT_THROW(MonitorService(HighRpm(fast_config())), std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::core
