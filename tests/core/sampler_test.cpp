#include "highrpm/core/sampler.hpp"

#include <gtest/gtest.h>

#include <set>

namespace highrpm::core {
namespace {

TEST(Sampler, RejectsNonPositiveWeight) {
  SamplerConfig cfg;
  cfg.measured_weight = 0.0;
  EXPECT_THROW(ReinforcementSampler{cfg}, std::invalid_argument);
}

TEST(Sampler, EmptyPoolGivesEmptyDraw) {
  ReinforcementSampler s;
  EXPECT_TRUE(s.draw({}).empty());
}

TEST(Sampler, DrawSizeRespectsPoolAndConfig) {
  SamplerConfig cfg;
  cfg.reinforcement_size = 10;
  ReinforcementSampler s(cfg);
  EXPECT_EQ(s.draw(std::vector<bool>(100, false)).size(), 10u);
  EXPECT_EQ(s.draw(std::vector<bool>(5, false)).size(), 5u);
}

TEST(Sampler, IndicesAreUniqueSortedAndInRange) {
  SamplerConfig cfg;
  cfg.reinforcement_size = 50;
  ReinforcementSampler s(cfg);
  const auto idx = s.draw(std::vector<bool>(200, false));
  std::set<std::size_t> seen(idx.begin(), idx.end());
  EXPECT_EQ(seen.size(), idx.size());
  for (const auto i : idx) EXPECT_LT(i, 200u);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
}

TEST(Sampler, MeasuredSamplesAreOverRepresented) {
  // 10% of the pool is measured but carries weight 5: the measured fraction
  // of the draw should clearly exceed 10%.
  SamplerConfig cfg;
  cfg.reinforcement_size = 100;
  cfg.measured_weight = 5.0;
  ReinforcementSampler s(cfg);
  std::vector<bool> measured(1000, false);
  for (std::size_t i = 0; i < 1000; i += 10) measured[i] = true;
  std::size_t measured_hits = 0, total = 0;
  for (int round = 0; round < 20; ++round) {
    for (const auto i : s.draw(measured)) {
      if (measured[i]) ++measured_hits;
      ++total;
    }
  }
  const double frac = static_cast<double>(measured_hits) /
                      static_cast<double>(total);
  EXPECT_GT(frac, 0.2);
}

TEST(Sampler, UniformWeightIsUnbiased) {
  SamplerConfig cfg;
  cfg.reinforcement_size = 100;
  cfg.measured_weight = 1.0;
  ReinforcementSampler s(cfg);
  std::vector<bool> measured(1000, false);
  for (std::size_t i = 0; i < 100; ++i) measured[i] = true;  // first 10%
  std::size_t measured_hits = 0, total = 0;
  for (int round = 0; round < 50; ++round) {
    for (const auto i : s.draw(measured)) {
      if (measured[i]) ++measured_hits;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(measured_hits) / static_cast<double>(total),
              0.1, 0.03);
}

TEST(Sampler, SuccessiveDrawsDiffer) {
  SamplerConfig cfg;
  cfg.reinforcement_size = 20;
  ReinforcementSampler s(cfg);
  const auto a = s.draw(std::vector<bool>(500, false));
  const auto b = s.draw(std::vector<bool>(500, false));
  EXPECT_NE(a, b);
}


TEST(Sampler, InvalidConfigThrows) {
  SamplerConfig cfg;
  cfg.reinforcement_size = 0;
  EXPECT_THROW(ReinforcementSampler{cfg}, std::invalid_argument);
  cfg = SamplerConfig{};
  cfg.measured_weight = 0.0;
  EXPECT_THROW(ReinforcementSampler{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace highrpm::core
