// obs::Counter unit and concurrency tests. Carried in the obs-sanitize
// suite: the concurrency cases are the ones `ctest -L sanitize` under
// -DHIGHRPM_SANITIZE=thread must hold a TSan lens over.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "highrpm/obs/counter.hpp"

namespace highrpm::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, CopyLoadsValueAndDecouples) {
  Counter a;
  a.add(7);
  Counter b = a;
  EXPECT_EQ(b.value(), 7u);
  a.add();  // copies are independent afterwards
  EXPECT_EQ(a.value(), 8u);
  EXPECT_EQ(b.value(), 7u);
  b = a;
  EXPECT_EQ(b.value(), 8u);
}

TEST(Counter, ConcurrentIncrementsLoseNothing) {
  Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::size_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, ReaderNeverTearsWhileWritersRun) {
  // The pattern the DynamicTrr/HighRpm diagnostics rely on: a monitor
  // thread polling value() while the stream thread increments. With the
  // old plain-size_t fields this exact interleaving was a data race.
  Counter c;
  std::thread writer([&c] {
    for (std::size_t i = 0; i < 50000; ++i) c.add();
  });
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::uint64_t v = c.value();
    EXPECT_GE(v, last);  // monotone: no torn or stale-backwards reads
    last = v;
  }
  writer.join();
  EXPECT_EQ(c.value(), 50000u);
}

}  // namespace
}  // namespace highrpm::obs
