// Torn-telemetry regression (the TSan-labeled concurrent-export test):
// snapshotting the registry while writers record must never export an
// incoherent histogram (p50 > p99, min > p50, a count disagreeing with the
// quantile mass) or child counters exceeding their parent aggregate.
//
// Before Histogram::stats(), the exporter read count/min/max/p50/p90/p99 as
// eight independent atomic reads — a writer recording mid-snapshot could
// leave p50 computed over more mass than p99, exporting p50 > p99. The
// snapshot now freezes one bucket-array copy per histogram, and these
// invariants hold under concurrent load (run under TSan via ctest -L
// sanitize, where the data-race freedom of the whole path is also checked).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/obs/obs.hpp"

namespace highrpm::obs {
namespace {

#if HIGHRPM_OBS_ENABLED

TEST(ExportTornSnapshot, ConcurrentExportStaysCoherent) {
  auto& reg = Registry::instance();
  reg.reset();
  // "a.child" sorts before "b.parent" in the snapshot's name-ordered walk,
  // and the writers add to the parent BEFORE the child — so any coherent
  // read order gives child <= parent. (The registry cannot order arbitrary
  // counter pairs; this is the protocol aggregating writers follow.)
  Counter& parent = reg.counter("b.parent.torn");
  Counter& child = reg.counter("a.child.torn");
  Histogram& hist = reg.histogram("torn.latency");

  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  constexpr int kWriters = 3;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      math::Rng rng(static_cast<std::uint64_t>(w) + 7);
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!done.load(std::memory_order_acquire)) {
        parent.add(2);
        // Publish the parent increment before the child one so a reader
        // walking child-then-parent can never see the child ahead.
        std::atomic_thread_fence(std::memory_order_release);
        child.add(1);
        hist.record(static_cast<std::uint64_t>(rng.uniform(1.0, 1e6)));
      }
    });
  }

  go.store(true, std::memory_order_release);
  std::uint64_t prev_count = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const Snapshot snap = reg.snapshot();
    std::uint64_t parent_v = 0, child_v = 0;
    for (const CounterSnapshot& c : snap.counters) {
      if (c.name == "b.parent.torn") parent_v = c.value;
      if (c.name == "a.child.torn") child_v = c.value;
    }
    EXPECT_LE(child_v, parent_v) << "iteration " << iter;
    for (const HistogramSnapshot& h : snap.histograms) {
      if (h.name != "torn.latency") continue;
      EXPECT_LE(h.min, h.p50) << "iteration " << iter;
      EXPECT_LE(h.p50, h.p90) << "iteration " << iter;
      EXPECT_LE(h.p90, h.p99) << "iteration " << iter;
      EXPECT_LE(h.p99, h.max) << "iteration " << iter;
      EXPECT_GE(h.count, prev_count) << "count went backwards";
      prev_count = h.count;
      // The JSON round trip must preserve the coherent values exactly.
      if (iter % 100 == 0) {
        const Snapshot back = parse_json(to_json(snap));
        ASSERT_EQ(back.histograms.size(), snap.histograms.size());
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  reg.reset();
}

TEST(ExportTornSnapshot, StatsUnderConcurrentRecordKeepsOrdering) {
  // Hammer one histogram directly: stats() must never emit out-of-order
  // quantiles or min/max inversions even mid-record (record publishes min
  // before max; stats() collapses the transient).
  Histogram h;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    math::Rng rng(41);
    while (!done.load(std::memory_order_acquire)) {
      h.record(static_cast<std::uint64_t>(rng.uniform(0.0, 1e9)));
    }
  });
  for (int iter = 0; iter < 2000; ++iter) {
    const HistogramStats s = h.stats();
    ASSERT_LE(s.min, s.p50) << "iteration " << iter;
    ASSERT_LE(s.p50, s.p90) << "iteration " << iter;
    ASSERT_LE(s.p90, s.p99) << "iteration " << iter;
    ASSERT_LE(s.p99, s.max) << "iteration " << iter;
  }
  done.store(true, std::memory_order_release);
  writer.join();
}

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace
}  // namespace highrpm::obs
