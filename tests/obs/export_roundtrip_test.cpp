// Telemetry exporter tests: the JSON schema round-trips exactly
// (parse_json(to_json(s)) == s), the CSV carries the same rows, and the
// file writers create parent directories. These pin the schema down so a
// consumer parsing bench_out/*_telemetry.json can rely on it.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "highrpm/obs/export.hpp"
#include "highrpm/obs/registry.hpp"

namespace highrpm::obs {
namespace {

Snapshot sample_snapshot() {
  Snapshot s;
  s.counters.push_back({"core.dynamic_trr.rejected_readings", 3});
  s.counters.push_back({"sensor.ipmi.offers", 1200});
  HistogramSnapshot h;
  h.name = "core.dynamic_trr.step_ns";
  h.count = 1200;
  h.sum = 48000000;
  h.min = 21000;
  h.max = 3000000;
  h.p50 = 32767;
  h.p90 = 65535;
  h.p99 = 2097151;
  s.histograms.push_back(h);
  return s;
}

TEST(ExportRoundTrip, JsonParsesBackToIdenticalSnapshot) {
  const Snapshot s = sample_snapshot();
  EXPECT_EQ(parse_json(to_json(s)), s);
}

TEST(ExportRoundTrip, EmptySnapshotRoundTrips) {
  const Snapshot empty;
  EXPECT_EQ(parse_json(to_json(empty)), empty);
}

TEST(ExportRoundTrip, CountersOnlyAndHistogramsOnlyRoundTrip) {
  Snapshot counters_only;
  counters_only.counters.push_back({"a", 1});
  EXPECT_EQ(parse_json(to_json(counters_only)), counters_only);

  Snapshot hists_only;
  HistogramSnapshot h;
  h.name = "b";
  h.count = 1;
  hists_only.histograms.push_back(h);
  EXPECT_EQ(parse_json(to_json(hists_only)), hists_only);
}

TEST(ExportRoundTrip, JsonCarriesSchemaTag) {
  EXPECT_NE(to_json(Snapshot{}).find("highrpm.telemetry.v1"),
            std::string::npos);
}

TEST(ExportRoundTrip, ParserRejectsNonSchemaInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{}"), std::runtime_error);
  EXPECT_THROW(parse_json("not json at all"), std::runtime_error);
  // Right shape, wrong schema tag.
  std::string wrong = to_json(Snapshot{});
  const auto pos = wrong.find("highrpm.telemetry.v1");
  ASSERT_NE(pos, std::string::npos);
  wrong.replace(pos, 20, "highrpm.telemetry.v9");
  EXPECT_THROW(parse_json(wrong), std::runtime_error);
}

TEST(ExportRoundTrip, CsvHasHeaderAndOneRowPerEntry) {
  const Snapshot s = sample_snapshot();
  const std::string csv = to_csv(s);
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "kind,name,value,count,sum_ns,min_ns,max_ns,p50_ns,p90_ns,"
            "p99_ns");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, s.counters.size() + s.histograms.size());
}

TEST(ExportRoundTrip, WritersCreateParentDirectories) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "highrpm_export_test" / "nested";
  fs::remove_all(dir.parent_path());
  const Snapshot s = sample_snapshot();
  const std::string json_path = (dir / "telemetry.json").string();
  const std::string csv_path = (dir / "telemetry.csv").string();
  write_json(json_path, s);
  write_csv(csv_path, s);
  std::ifstream jf(json_path);
  ASSERT_TRUE(jf.good());
  std::stringstream buf;
  buf << jf.rdbuf();
  EXPECT_EQ(parse_json(buf.str()), s);
  EXPECT_TRUE(fs::file_size(csv_path) > 0);
  fs::remove_all(dir.parent_path());
}

#if HIGHRPM_OBS_ENABLED

TEST(ExportRoundTrip, RunTelemetryExportLandsInBenchOut) {
  namespace fs = std::filesystem;
  // export_run_telemetry writes relative to the cwd; run it from a scratch
  // dir so the test never litters the build tree's real bench_out.
  const fs::path scratch =
      fs::temp_directory_path() / "highrpm_export_run_test";
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  const fs::path old_cwd = fs::current_path();
  fs::current_path(scratch);

  Registry::instance().counter("test.export.run").add(9);
  const std::string path = export_run_telemetry("unit");
  fs::current_path(old_cwd);

  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(fs::exists(scratch / "bench_out" / "unit_telemetry.json"));
  EXPECT_TRUE(fs::exists(scratch / "bench_out" / "unit_telemetry.csv"));
  std::ifstream jf(scratch / "bench_out" / "unit_telemetry.json");
  std::stringstream buf;
  buf << jf.rdbuf();
  const Snapshot parsed = parse_json(buf.str());
  bool found = false;
  for (const auto& c : parsed.counters) {
    if (c.name == "test.export.run" && c.value >= 9) found = true;
  }
  EXPECT_TRUE(found);
  fs::remove_all(scratch);
}

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace
}  // namespace highrpm::obs
