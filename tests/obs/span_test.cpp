// obs::Span tests: RAII recording, nesting depth, the runtime disable
// switch, and thread-pool awareness (each pool worker keeps its own span
// stack).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "highrpm/obs/registry.hpp"
#include "highrpm/obs/span.hpp"
#include "highrpm/runtime/parallel_for.hpp"

namespace highrpm::obs {
namespace {

#if HIGHRPM_OBS_ENABLED

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Registry::instance().enabled();
    Registry::instance().set_enabled(true);
  }
  void TearDown() override {
    Registry::instance().set_enabled(was_enabled_);
  }
  bool was_enabled_ = true;
};

TEST_F(SpanTest, RecordsIntoHistogramOnDestruction) {
  Histogram& h = Registry::instance().histogram("test.span.record");
  const std::uint64_t before = h.count();
  {
    const Span span(h);
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(h.count(), before + 1);
}

TEST_F(SpanTest, NestingTracksDepthPerScope) {
  Histogram& h = Registry::instance().histogram("test.span.nest");
  EXPECT_EQ(Span::depth(), 0u);
  {
    const Span outer(h);
    EXPECT_EQ(Span::depth(), 1u);
    {
      const Span inner(h);
      EXPECT_EQ(Span::depth(), 2u);
    }
    EXPECT_EQ(Span::depth(), 1u);
  }
  EXPECT_EQ(Span::depth(), 0u);
}

TEST_F(SpanTest, DisabledRegistryMakesSpansFree) {
  Registry::instance().set_enabled(false);
  Histogram& h = Registry::instance().histogram("test.span.disabled");
  const std::uint64_t before = h.count();
  {
    const Span span(h);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.elapsed_ns(), 0u);
    EXPECT_EQ(Span::depth(), 0u);  // inactive spans don't nest
  }
  EXPECT_EQ(h.count(), before);  // nothing recorded
}

TEST_F(SpanTest, NameLookupFormRecordsToo) {
  {
    const Span span("test.span.by_name");
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(
      Registry::instance().histogram("test.span.by_name").count(), 1u);
}

TEST_F(SpanTest, PoolWorkersKeepTheirOwnSpanStacks) {
  // A span is open on the caller thread while parallel_for tasks open their
  // own. Fresh pool workers must start at depth 0 (their stack, not the
  // caller's); tasks executed by the participating caller thread nest under
  // its open span and see depth 1. Either way a task never observes the
  // depth another thread's spans produced.
  Histogram& h = Registry::instance().histogram("test.span.pool");
  std::atomic<std::size_t> bad_depths{0};
  {
    const Span outer(h);
    runtime::parallel_for(64, [&](std::size_t) {
      const std::size_t entry_depth = Span::depth();
      if (entry_depth != 0 && entry_depth != 1) bad_depths.fetch_add(1);
      const Span task_span(h);
      if (Span::depth() != entry_depth + 1) bad_depths.fetch_add(1);
    });
    EXPECT_EQ(Span::depth(), 1u);  // caller's own span still open
  }
  EXPECT_EQ(bad_depths.load(), 0u);
  EXPECT_EQ(Span::depth(), 0u);
}

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace
}  // namespace highrpm::obs
