// Compile-gate test: this TU is compiled with HIGHRPM_OBS_ENABLED=0 (see
// tests/CMakeLists.txt) against a library built with the layer ON — the
// disabled mode is header-only and lives in a distinct inline namespace, so
// the two link cleanly. Asserts the no-op contract: spans and histograms
// compile to nothing, the registry hands back shared dummies and empty
// snapshots, and obs::Counter — the functional-diagnostics type — still
// counts.
//
// Only obs headers may be included here: subsystem headers (DynamicTrr,
// HighRpm) embed Counter members and would otherwise be compiled against
// the disabled layer while the library was built with it enabled.
#define HIGHRPM_OBS_ENABLED 0

#include <gtest/gtest.h>

#include "highrpm/obs/obs.hpp"

namespace highrpm::obs {
namespace {

static_assert(HIGHRPM_OBS_ENABLED == 0,
              "this TU must compile the disabled observability mode");

TEST(NoopMode, CounterStillCounts) {
  Counter c;
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
}

TEST(NoopMode, HistogramIsInert) {
  Histogram h;
  h.record(123);
  h.record(456);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(NoopMode, RegistryReportsDisabledAndSnapshotsEmpty) {
  auto& reg = Registry::instance();
  EXPECT_FALSE(reg.enabled());
  reg.set_enabled(true);  // no-op by contract
  EXPECT_FALSE(reg.enabled());
  reg.counter("core.anything").add(7);
  reg.histogram("core.anything_ns").record(1);
  const Snapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(NoopMode, SpansAreInertAndDepthStaysZero) {
  Histogram h;
  {
    const Span outer(h);
    EXPECT_FALSE(outer.active());
    EXPECT_EQ(outer.elapsed_ns(), 0u);
    {
      const Span inner("core.some_ns");
      EXPECT_EQ(Span::depth(), 0u);
    }
  }
  EXPECT_EQ(Span::depth(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(NoopMode, SharedExportTypesStillWork) {
  // valid_name and the serializers are compiled unconditionally in the
  // library; a disabled TU can still format and parse snapshots it builds
  // by hand (e.g. loading telemetry written by an enabled binary).
  EXPECT_TRUE(valid_name("a.b-c_d"));
  EXPECT_FALSE(valid_name("a b"));
  Snapshot s;
  s.counters.push_back({"loaded.from.file", 11});
  EXPECT_EQ(parse_json(to_json(s)), s);
}

}  // namespace
}  // namespace highrpm::obs
