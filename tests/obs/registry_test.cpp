// obs::Registry tests: name validation, reference stability, deterministic
// snapshots, and — under ctest -L sanitize — concurrent lookup/increment/
// snapshot safety.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "highrpm/obs/registry.hpp"

namespace highrpm::obs {
namespace {

TEST(ValidName, AcceptsTelemetryAlphabetOnly) {
  EXPECT_TRUE(valid_name("core.dynamic_trr.step_ns"));
  EXPECT_TRUE(valid_name("a-b_c.d9"));
  EXPECT_FALSE(valid_name(""));
  EXPECT_FALSE(valid_name("has space"));
  EXPECT_FALSE(valid_name("quote\"name"));
  EXPECT_FALSE(valid_name("comma,name"));
  EXPECT_FALSE(valid_name("newline\nname"));
}

#if HIGHRPM_OBS_ENABLED

TEST(Registry, RejectsInvalidNames) {
  auto& reg = Registry::instance();
  EXPECT_THROW(reg.counter("bad name"), std::invalid_argument);
  EXPECT_THROW(reg.histogram(""), std::invalid_argument);
}

TEST(Registry, ReturnsStableReferences) {
  auto& reg = Registry::instance();
  Counter& a = reg.counter("test.registry.stable");
  Counter& b = reg.counter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  Histogram& ha = reg.histogram("test.registry.stable_hist");
  Histogram& hb = reg.histogram("test.registry.stable_hist");
  EXPECT_EQ(&ha, &hb);
}

TEST(Registry, SnapshotIsSortedAndReflectsValues) {
  auto& reg = Registry::instance();
  reg.counter("test.registry.snap.b").add(2);
  reg.counter("test.registry.snap.a").add(1);
  const Snapshot snap = reg.snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  for (std::size_t i = 1; i < snap.histograms.size(); ++i) {
    EXPECT_LT(snap.histograms[i - 1].name, snap.histograms[i].name);
  }
  std::uint64_t a = 0, b = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "test.registry.snap.a") a = c.value;
    if (c.name == "test.registry.snap.b") b = c.value;
  }
  EXPECT_GE(a, 1u);
  EXPECT_GE(b, 2u);
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  auto& reg = Registry::instance();
  Counter& c = reg.counter("test.registry.reset");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same reference, zeroed
  bool found = false;
  for (const auto& snap_c : reg.snapshot().counters) {
    if (snap_c.name == "test.registry.reset") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Registry, EnabledSwitchToggles) {
  auto& reg = Registry::instance();
  const bool before = reg.enabled();
  reg.set_enabled(false);
  EXPECT_FALSE(reg.enabled());
  reg.set_enabled(true);
  EXPECT_TRUE(reg.enabled());
  reg.set_enabled(before);
}

TEST(Registry, ConcurrentLookupsIncrementsAndSnapshots) {
  // Threads hammer the same and distinct names while another thread keeps
  // snapshotting — registration (mutex) and increments (relaxed atomics)
  // must compose race-free. TSan (ctest -L sanitize) is the real assertion
  // here; the count check catches lost updates in any build.
  auto& reg = Registry::instance();
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string own =
          "test.registry.concurrent.t" + std::to_string(t);
      for (std::size_t i = 0; i < kIters; ++i) {
        reg.counter("test.registry.concurrent.shared").add();
        reg.counter(own).add();
        reg.histogram("test.registry.concurrent.hist").record(i);
      }
    });
  }
  threads.emplace_back([&reg] {
    for (std::size_t i = 0; i < 200; ++i) {
      const Snapshot snap = reg.snapshot();
      for (std::size_t k = 1; k < snap.counters.size(); ++k) {
        EXPECT_LT(snap.counters[k - 1].name, snap.counters[k].name);
      }
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("test.registry.concurrent.shared").value(),
            kThreads * kIters);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(
        reg.counter("test.registry.concurrent.t" + std::to_string(t)).value(),
        kIters);
  }
  EXPECT_EQ(reg.histogram("test.registry.concurrent.hist").count(),
            kThreads * kIters);
}

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace
}  // namespace highrpm::obs
