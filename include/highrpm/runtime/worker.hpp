// runtime::Worker — a joinable long-lived thread for resident services.
//
// The ThreadPool covers fork-join parallel_for work; resident components
// (the serve daemon's producers and consumers) instead need threads that
// live for the component's lifetime and are joined deterministically on
// shutdown. Worker wraps std::thread with RAII join semantics and optional
// best-effort CPU pinning, and is the only sanctioned way for library code
// outside highrpm::runtime to own a thread (the lint rule
// thread-outside-runtime enforces this — other modules hold a Worker).
#pragma once

#include <functional>
#include <optional>
#include <thread>

namespace highrpm::runtime {

/// Pin the calling thread to one CPU. Best-effort: returns false (and
/// changes nothing) when the platform has no affinity API, the CPU index is
/// out of range, or the kernel refuses — callers must treat pinning as a
/// performance hint, never a correctness dependency.
bool pin_current_thread(unsigned cpu) noexcept;

/// std::thread::hardware_concurrency() with the zero-means-unknown case
/// folded to 1, so callers can use the result directly as a divisor or
/// modulus. Lives here so non-runtime modules need no <thread> dependency.
unsigned hardware_threads() noexcept;

/// One joinable thread. start() launches `fn`; the destructor (and stop-side
/// code) joins via join(), which is idempotent. Not copyable or movable —
/// embed by value where the owning object outlives the thread, or hold via
/// unique_ptr arrays for per-node fleets.
class Worker {
 public:
  Worker() = default;
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;
  ~Worker() { join(); }

  /// Launch the worker body. When `pin_cpu` is set the body is preceded by a
  /// best-effort pin_current_thread(*pin_cpu). Throws std::logic_error if
  /// this Worker already runs.
  void start(std::function<void()> fn, std::optional<unsigned> pin_cpu = {});

  /// Join if joinable; harmless to call repeatedly or without start().
  void join();

  bool joinable() const noexcept { return thread_.joinable(); }

 private:
  std::thread thread_;
};

}  // namespace highrpm::runtime
