// Deterministic data-parallel loops over the process-wide thread pool.
//
// The contract that keeps every caller bit-reproducible: fn(i) must depend
// only on i and on state that is constant for the duration of the loop, and
// must write only to slots owned by i. Under that contract the result is
// identical for every thread count (scheduling only changes *when* an index
// runs, never *what* it computes), so serial (HIGHRPM_THREADS=1) and
// parallel runs produce the same bytes.
//
// Nested use — calling parallel_for from inside a task that is itself
// running on the pool — executes the inner loop serially on the calling
// worker. That keeps layered parallelism (bench harness -> fold loop ->
// RandomForest::fit) correct without deadlocks or oversubscription.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "highrpm/runtime/thread_pool.hpp"

namespace highrpm::runtime {

/// Invoke fn(i) for every i in [0, n). Blocks until done; rethrows the
/// lowest-index exception if any invocation throws.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  if (n == 0) return;
  ThreadPool& pool = global_pool();
  if (n == 1 || pool.size() == 1 || ThreadPool::in_worker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunk to amortize the per-task atomic claim; chunk boundaries are a
  // pure function of (n, chunks), so they do not affect results.
  const std::size_t chunks = std::min(n, pool.size() * 8);
  const std::function<void(std::size_t)> task = [&](std::size_t c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    for (std::size_t i = begin; i < end; ++i) fn(i);
  };
  pool.run(chunks, task);
}

/// Collect fn(i) for every i in [0, n) into a vector ordered by index —
/// output order never depends on scheduling. The result type must be
/// default-constructible and movable.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<R> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace highrpm::runtime
