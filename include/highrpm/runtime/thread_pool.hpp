// Process-wide deterministic thread pool — the execution core every layer
// above (math, ml, core, bench) shares.
//
// Design constraints, in priority order:
//  1. Determinism: the pool never decides *what* a task computes, only *when*
//     it runs. Callers hand over an index-addressed job (run fn(i) for every
//     i in [0, n)); each index owns its output slot and, when randomness is
//     needed, its own Rng stream (math::Rng::fork). Same-seed runs therefore
//     produce bit-identical results for any thread count, including 1.
//  2. No nesting: a job may not launch another pool job from inside a worker.
//     ThreadPool::run throws std::logic_error on such calls; the higher-level
//     parallel_for helpers detect the situation first and degrade to a plain
//     serial loop, so layered code (e.g. a parallel bench harness invoking a
//     parallel RandomForest::fit) stays correct and deadlock-free.
//  3. Simplicity over work stealing: tasks are claimed from a single atomic
//     counter. For the coarse-grained jobs HighRPM runs (per-fold, per-tree,
//     per-row-block) this is within noise of fancier schedulers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace highrpm::runtime {

class ThreadPool {
 public:
  /// A pool with parallelism degree `threads` (>= 1). The calling thread
  /// participates in every job, so `threads - 1` workers are spawned.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism degree (worker threads + the calling thread).
  std::size_t size() const noexcept { return degree_; }

  /// Execute fn(i) exactly once for every i in [0, n_tasks), blocking until
  /// all calls finished. The caller participates in the work. If any call
  /// throws, the exception with the lowest task index is rethrown after the
  /// job drains (remaining unclaimed tasks are skipped).
  ///
  /// Throws std::logic_error when invoked from inside a pool worker
  /// (nested-call rejection) — use parallel_for, which falls back to a
  /// serial loop in that situation.
  void run(std::size_t n_tasks, const std::function<void(std::size_t)>& fn);

  /// True when the current thread is a pool worker executing a job.
  static bool in_worker() noexcept;

 private:
  /// One job's shared state. Heap-allocated and handed to workers via
  /// shared_ptr so a late-waking worker can never touch a newer job's
  /// counters through stale references.
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;
    std::size_t error_index = SIZE_MAX;
  };

  void worker_loop();
  void work_on(Job& job);
  void serial_run(std::size_t n_tasks,
                  const std::function<void(std::size_t)>& fn);

  std::size_t degree_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_cv_;   // workers wait here for a new job
  std::condition_variable done_cv_;  // the caller waits here for completion
  std::shared_ptr<Job> current_job_;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
};

/// The process-wide pool, created on first use. Its size comes from the
/// HIGHRPM_THREADS environment variable; unset, empty, or invalid values
/// fall back to std::thread::hardware_concurrency().
ThreadPool& global_pool();

/// Parallelism degree of the global pool (>= 1).
std::size_t thread_count();

/// Rebuild the global pool with `threads` workers; 0 re-reads
/// HIGHRPM_THREADS / hardware_concurrency. Intended for program startup and
/// tests — must not be called while pool jobs are in flight.
void set_thread_count(std::size_t threads);

}  // namespace highrpm::runtime
