// Ground-truth component power model: maps node-aggregated PMC rates plus
// the DVFS operating point to true CPU and memory power. This is the
// simulator-side physical model that replaces the paper's jumper-wire direct
// measurement; nothing in highrpm::core ever calls it directly.
//
// Functional form (per DESIGN.md §5):
//   busy  = CPU_CYCLES / f_hz                 (busy-core equivalents)
//   P_dyn = dyn_scale * V(f)^2 * f_ghz * busy/n_cores * n_cores_norm
//         + inst_energy * INST_RETIRED + cache_energy * (L2 + L3 accesses)
//   P_cpu = cpu_idle + cpu_sat * tanh(P_dyn / cpu_sat)        (soft limit)
//   P_mem = mem_idle + mem_energy * r / (1 + r / mem_sat) + bus_energy * BUS
// The tanh saturation and the memory roll-off are what make the
// PMC -> power relationship nonlinear, which is why the linear Table-4
// baselines trail the nonlinear ones in the reproduction, as in the paper.
#pragma once

#include "highrpm/sim/platform.hpp"
#include "highrpm/sim/pmc.hpp"

namespace highrpm::sim {

struct ComponentPower {
  double cpu_w = 0.0;
  double mem_w = 0.0;
};

/// Latent energy weights of the running application (see PhaseSpec): they
/// multiply the per-instruction and per-memory-access energies but leave the
/// PMC readings untouched — the physical reason PMC-only models have an
/// accuracy floor.
struct EnergyScale {
  double inst = 1.0;
  double mem = 1.0;
};

/// Deterministic (noise-free) component power for one tick of PMC rates at
/// the given DVFS level.
ComponentPower compute_component_power(const PlatformConfig& platform,
                                       const PmcVector& pmcs,
                                       std::size_t freq_level,
                                       const EnergyScale& scale = {});

/// Supply voltage at a frequency (V(f) = volt_base + volt_slope * f_ghz).
double supply_voltage(const PowerCoefficients& c, double f_ghz);

}  // namespace highrpm::sim
