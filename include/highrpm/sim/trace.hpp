// Ground-truth trace produced by the node simulator: one sample per tick
// (1 tick = 1 s, the paper's dense 1 Sa/s resolution).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "highrpm/math/matrix.hpp"
#include "highrpm/sim/pmc.hpp"

namespace highrpm::sim {

/// One co-located tenant's share of a tick: its private PMC rates (the
/// per-cgroup counter view a real kernel exposes per container/VM) and its
/// ground-truth attributed power. Tenant powers partition the node's
/// component power: sum over tenants of p_w == p_cpu_w + p_mem_w (each
/// tenant carries its dynamic power plus an equal share of the component
/// idle power — the standard attribution convention for static draw).
struct TenantSample {
  PmcVector pmcs{};  // per-tenant event rates (events/s)
  double p_w = 0.0;  // attributed tenant power (W)
};

struct TickSample {
  double time_s = 0.0;
  PmcVector pmcs{};  // node-aggregated event rates (events/s)
  double p_cpu_w = 0.0;
  double p_mem_w = 0.0;
  double p_other_w = 0.0;
  double p_node_w = 0.0;
  std::size_t freq_level = 0;
  /// Per-tenant breakdown; empty for single-workload simulations (the
  /// legacy node-level view), size K when the simulator runs K co-located
  /// workloads.
  std::vector<TenantSample> tenants;
};

class Trace {
 public:
  Trace() = default;

  void push_back(const TickSample& s) { samples_.push_back(s); }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  const TickSample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<TickSample>& samples() const noexcept { return samples_; }

  /// Tenant count carried by the samples (0 for single-workload traces).
  std::size_t num_tenants() const noexcept {
    return samples_.empty() ? 0 : samples_.front().tenants.size();
  }
  /// Ground-truth power series of tenant k.
  std::vector<double> tenant_power(std::size_t k) const;

  std::vector<double> times() const;
  std::vector<double> node_power() const;
  std::vector<double> cpu_power() const;
  std::vector<double> mem_power() const;
  std::vector<double> other_power() const;
  std::vector<double> pmc_series(PmcEvent e) const;

  /// All PMC rates as an (n x kNumPmcEvents) matrix.
  math::Matrix pmc_matrix() const;

  /// Total energy over the trace in joules (1 s ticks -> sum of node power).
  double total_energy_j() const;
  double peak_node_power() const;

  /// Append another trace, shifting its timestamps to continue this one.
  void append(const Trace& other);

 private:
  std::vector<TickSample> samples_;
};

}  // namespace highrpm::sim
