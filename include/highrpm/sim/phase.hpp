// Workload activity description. A workload is a looped sequence of phases;
// each phase pins mean architectural activity factors plus the modulation
// that produces the power structure HighRPM must recover: long-term trends
// from loop periodicity and short-term fluctuations from correlated noise
// and spike events (paper §4.2: "long-term trends determined by program
// loops and unforeseen short-term fluctuations").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace highrpm::sim {

enum class Waveform { kConstant, kSine, kSawtooth, kSquare, kTriangle };

/// Mean activity of one program phase. All *_frac values are per retired
/// instruction; utilization and ipc set the instruction stream itself.
struct PhaseSpec {
  std::string label = "phase";
  double duration_s = 60.0;  // nominal phase length in seconds

  double utilization = 0.8;  // busy fraction of each core, [0, 1]
  double ipc = 1.5;          // retired instructions per busy cycle
  double uops_per_inst = 1.3;
  double branch_frac = 0.15;
  double l1i_ld_frac = 0.95;
  double l1i_st_frac = 0.02;
  double load_frac = 0.30;   // L1D loads per instruction
  double store_frac = 0.12;  // L1D stores per instruction
  double l1_miss = 0.06;     // L1D -> L2 miss ratio
  double l2_miss = 0.30;     // L2 -> L3 miss ratio
  double l3_miss = 0.35;     // L3 -> memory miss ratio
  double bus_per_mem = 1.6;  // bus accesses per memory access

  // Latent per-application energy weights, invisible to the PMCs: the same
  // instruction count costs different energy depending on instruction mix
  // (vector vs. scalar) and row-buffer locality. These are what limit the
  // accuracy of PMC-only power models on unseen applications (paper §6.1.1)
  // while node-power-informed models remain accurate.
  double inst_energy_scale = 1.0;
  double mem_energy_scale = 1.0;

  // Long-term modulation: activity oscillates with the program's outer loop.
  Waveform waveform = Waveform::kSine;
  double mod_period_s = 40.0;
  double mod_depth = 0.15;  // relative amplitude applied to utilization

  // Short-term structure.
  double ar1_rho = 0.7;      // AR(1) correlation of the activity noise
  double ar1_sigma = 0.04;   // AR(1) innovation stddev (relative)
  double spike_rate_hz = 0.02;   // Poisson rate of activity spikes
  double spike_magnitude = 0.5;  // relative utilization jump at a spike
  double spike_len_s = 2.0;      // mean spike duration
};

/// A named workload: phases played in order, then looped until the requested
/// trace length is reached.
struct Workload {
  std::string name;
  std::string suite;  // "SPEC", "PARSEC", "HPCC", "Graph500", ...
  std::vector<PhaseSpec> phases;

  double total_phase_duration() const {
    double s = 0.0;
    for (const auto& p : phases) s += p.duration_s;
    return s;
  }
};

}  // namespace highrpm::sim
