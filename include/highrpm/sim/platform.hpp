// Hardware platform descriptions: the ARM-based evaluation system (64-core
// ARMv8, DVFS ladder 1.4/1.8/2.2 GHz, IPMI node power at 0.1 Sa/s) and the
// x86 Tianhe-1A-like system (Xeon E5-2660 v2 class, 2.6 GHz, RAPL) used for
// the paper's Table 9 generalization experiment.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace highrpm::sim {

/// Coefficients of the ground-truth component power model (see
/// power_model.hpp for the functional form).
struct PowerCoefficients {
  // CPU side.
  double cpu_idle_w = 18.0;       // whole-socket idle power
  double volt_base = 0.75;        // V(f) = volt_base + volt_slope * f_ghz
  double volt_slope = 0.12;
  double dyn_scale = 7.0;         // scales V^2 * f * utilization term
  double inst_energy_nj = 0.05;   // per-instruction energy (nJ)
  double cache_energy_nj = 1.0;   // per L2/L3 access energy (nJ)
  double cpu_sat = 95.0;          // soft saturation of CPU dynamic power (W)
  /// Memory-stall IPC penalty coefficient (cycles lost per DRAM-bound
  /// instruction fraction, scaled by frequency).
  double stall_coeff = 30.0;
  // Memory side.
  double mem_idle_w = 4.0;
  double mem_energy_nj = 20.0;    // per memory access energy (nJ)
  double mem_sat_rate = 1.2e9;    // accesses/s where DIMM power saturates
  double bus_energy_nj = 1.1;
  // Peripherals.
  double other_idle_w = 25.0;     // paper: constant ~25 W
  double other_wander_w = 0.3;    // slow wander, "within just under 1W"
  // Process noise on true component powers (W).
  double cpu_noise_w = 0.35;
  double mem_noise_w = 0.12;
};

struct PlatformConfig {
  std::string name;
  std::size_t num_cores = 64;
  /// DVFS ladder in GHz; index selects the operating point.
  std::vector<double> freq_levels_ghz = {1.4, 1.8, 2.2};
  std::size_t default_freq_level = 2;
  PowerCoefficients power;

  /// The ARM evaluation platform (paper §5.1): 64-core ARMv8, 128 GB DDR4,
  /// BMC/IPMI node power at <= 0.1 Sa/s, direct-measurement rig at 1 Sa/s.
  static PlatformConfig arm();
  /// The x86 platform (paper §6.3): Xeon E5-2660 v2-like, 2.6 GHz, RAPL.
  /// Higher frequency and noise floor make modeling slightly harder, which
  /// is the effect Table 9 reports.
  static PlatformConfig x86();

  double frequency_ghz(std::size_t level) const;
  /// Highest DVFS operating point. Throws on an empty ladder instead of
  /// calling .back() on it (undefined behaviour).
  double max_frequency_ghz() const;
};

}  // namespace highrpm::sim
