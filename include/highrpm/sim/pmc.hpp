// Hardware performance-counter events exposed by the simulated platforms —
// the event set of the paper's Table 2 (ARM PMUv3 naming, with the three
// data-cache levels unrolled).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace highrpm::sim {

enum class PmcEvent : std::size_t {
  kCpuCycles = 0,
  kInstRetired,
  kBrPred,
  kUopRetired,
  kL1ICacheLd,
  kL1ICacheSt,
  kL1DCacheLd,
  kL1DCacheSt,
  kL2DCacheLd,
  kL2DCacheSt,
  kL3DCacheLd,
  kL3DCacheSt,
  kBusAccess,
  kMemAccess,
  kCount
};

inline constexpr std::size_t kNumPmcEvents =
    static_cast<std::size_t>(PmcEvent::kCount);

inline constexpr std::array<std::string_view, kNumPmcEvents> kPmcEventNames = {
    "CPU_CYCLES",   "INST_RETIRED", "BR_PRED",      "UOP_RETIRED",
    "L1I_CACHE_LD", "L1I_CACHE_ST", "L1D_CACHE_LD", "L1D_CACHE_ST",
    "L2D_CACHE_LD", "L2D_CACHE_ST", "L3D_CACHE_LD", "L3D_CACHE_ST",
    "BUS_ACCESS",   "MEM_ACCESS"};

constexpr std::string_view pmc_event_name(PmcEvent e) {
  return kPmcEventNames[static_cast<std::size_t>(e)];
}

/// Node-wide counter snapshot for one tick (events aggregated over cores,
/// in events per second).
using PmcVector = std::array<double, kNumPmcEvents>;

}  // namespace highrpm::sim
