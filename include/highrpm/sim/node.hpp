// NodeSimulator: the simulated compute node. It plays a Workload on a
// PlatformConfig one 1-second tick at a time, producing node-aggregated PMC
// rates and ground-truth component powers with the statistical structure
// the paper's models must cope with: loop-periodic trends, AR(1)-correlated
// short-term noise, Poisson activity spikes, and a slowly wandering
// peripheral draw. DVFS can be changed between ticks (used by the power
// capping controller and the Fig-9 frequency experiment).
#pragma once

#include <cstdint>

#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/sim/phase.hpp"
#include "highrpm/sim/platform.hpp"
#include "highrpm/sim/power_model.hpp"
#include "highrpm/sim/trace.hpp"

namespace highrpm::sim {

class NodeSimulator {
 public:
  NodeSimulator(PlatformConfig platform, Workload workload,
                std::uint64_t seed);

  /// Multi-tenant node: K co-located workloads share the node's cores
  /// (each tenant drives an equal 1/K core share with its own phase
  /// schedule, AR(1) noise, spike process, and latent energy weights —
  /// independent per-tenant RNG streams forked from `seed`). Every tick's
  /// TickSample then carries K TenantSamples: the tenant's private PMC
  /// rates (the per-cgroup counter view) and its attributed ground-truth
  /// power (dynamic share + idle/K; tenant powers sum to the node's
  /// component power). Node-aggregated PMCs are the elementwise tenant
  /// sum, and node power is computed from the aggregate exactly like the
  /// single-workload path. Requires at least one workload.
  NodeSimulator(PlatformConfig platform, std::vector<Workload> tenants,
                std::uint64_t seed);

  /// Advance one second of simulated time and return the tick's sample.
  TickSample step();
  /// Run n ticks and collect them into a trace.
  Trace run(std::size_t n_ticks);

  void set_frequency_level(std::size_t level);
  std::size_t frequency_level() const noexcept { return freq_level_; }
  double time() const noexcept { return time_s_; }
  const PlatformConfig& platform() const noexcept { return platform_; }
  const Workload& workload() const noexcept { return workload_; }
  /// Co-located workload count (0 for the single-workload constructor).
  std::size_t num_tenants() const noexcept { return tenants_.size(); }
  const Workload& tenant_workload(std::size_t k) const {
    return tenants_.at(k).workload;
  }

 private:
  /// Per-tenant stochastic state: each tenant is its own little simulator
  /// over a shared clock and DVFS point.
  struct TenantState {
    Workload workload;
    math::Rng rng;
    double ar1_state = 0.0;
    double energy_latent = 0.0;
    double spike_remaining = 0.0;
    double spike_magnitude = 0.0;
  };

  /// Phase active at time t within a looping workload.
  static const PhaseSpec& phase_of(const Workload& w, double t);
  /// Phase active at the current time (phases loop).
  const PhaseSpec& current_phase() const;
  double modulation(const PhaseSpec& p, double t) const;
  /// One activity draw: AR(1) + spikes + modulation -> PMC rates for a
  /// core_share slice of the node, plus the latent energy weights. Shared
  /// verbatim by the single-workload path (core_share = 1, member state)
  /// and the per-tenant path (core_share = 1/K, tenant state) — the draw
  /// order is part of the simulator's determinism contract.
  PmcVector tick_activity(const PhaseSpec& phase, math::Rng& rng,
                          double& ar1_state, double& spike_remaining,
                          double& spike_magnitude, double& energy_latent,
                          double core_share, EnergyScale& scale_out);
  TickSample step_single();
  TickSample step_tenants();

  PlatformConfig platform_;
  Workload workload_;
  math::Rng rng_;
  std::size_t freq_level_;
  double time_s_ = 0.0;
  double ar1_state_ = 0.0;
  double other_wander_ = 0.0;
  double energy_latent_ = 0.0;
  // Active spike: remaining ticks and magnitude (0 when inactive).
  double spike_remaining_ = 0.0;
  double spike_magnitude_ = 0.0;
  /// Non-empty iff constructed with the multi-tenant constructor.
  std::vector<TenantState> tenants_;
  /// Scratch for step_tenants (noise-free tenant dynamic watts), sized at
  /// construction so the step path never allocates it per tick.
  std::vector<double> tenant_dyn_;
};

}  // namespace highrpm::sim
