// NodeSimulator: the simulated compute node. It plays a Workload on a
// PlatformConfig one 1-second tick at a time, producing node-aggregated PMC
// rates and ground-truth component powers with the statistical structure
// the paper's models must cope with: loop-periodic trends, AR(1)-correlated
// short-term noise, Poisson activity spikes, and a slowly wandering
// peripheral draw. DVFS can be changed between ticks (used by the power
// capping controller and the Fig-9 frequency experiment).
#pragma once

#include <cstdint>

#include "highrpm/math/rng.hpp"
#include "highrpm/sim/phase.hpp"
#include "highrpm/sim/platform.hpp"
#include "highrpm/sim/trace.hpp"

namespace highrpm::sim {

class NodeSimulator {
 public:
  NodeSimulator(PlatformConfig platform, Workload workload,
                std::uint64_t seed);

  /// Advance one second of simulated time and return the tick's sample.
  TickSample step();
  /// Run n ticks and collect them into a trace.
  Trace run(std::size_t n_ticks);

  void set_frequency_level(std::size_t level);
  std::size_t frequency_level() const noexcept { return freq_level_; }
  double time() const noexcept { return time_s_; }
  const PlatformConfig& platform() const noexcept { return platform_; }
  const Workload& workload() const noexcept { return workload_; }

 private:
  /// Phase active at the current time (phases loop).
  const PhaseSpec& current_phase() const;
  double modulation(const PhaseSpec& p, double t) const;

  PlatformConfig platform_;
  Workload workload_;
  math::Rng rng_;
  std::size_t freq_level_;
  double time_s_ = 0.0;
  double ar1_state_ = 0.0;
  double other_wander_ = 0.0;
  double energy_latent_ = 0.0;
  // Active spike: remaining ticks and magnitude (0 when inactive).
  double spike_remaining_ = 0.0;
  double spike_magnitude_ = 0.0;
};

}  // namespace highrpm::sim
