#pragma once

// highrpm::adapt -- deterministic per-node adaptive-sampling controller.
//
// HighRPM's restoration quality and its monitoring overhead both hang off two
// fixed knobs: the IM miss interval and the PMC sampling cadence. This module
// turns those knobs into a closed loop with a *first-class overhead budget*:
// the controller watches signal volatility online (windowed variance and
// tick-over-tick jump detection over restored node power, plus relative PMC
// deltas) and widens or narrows the effective sampling density --
//
//   Sparse mode  : cheap decision-tree ResModel, strided PMC sampling, and a
//                  widened IM interval for quiet phases;
//   Dense mode   : the full LSTM path at base cadence for volatile phases.
//
// Two invariants are enforced by construction, not by tuning:
//
//   Budget   : dense ticks never exceed `budget_permille` of observed ticks.
//              An integer token bucket accrues `budget_permille` tokens per
//              observed tick and each dense tick spends exactly 1000; a
//              switch to Dense must pre-pay the full minimum dwell
//              (1000 * window * hold_windows tokens), so the budget can never
//              force a mid-dwell demotion -- `1000 * dense_ticks() <=
//              budget_permille * ticks_observed()` holds at every tick.
//   No flap  : a mode persists for at least `hold_windows` decision windows,
//              and the up/down thresholds form a hysteresis band, so
//              `hold_windows * mode_changes() <= windows_observed()`.
//
// The controller is a pure function of its config and the observed
// (node_w, pmcs) trace: no clock, no RNG, no atomics, no allocation in the
// steady state (the previous-PMC mirror is sized on the first observation).
// One controller instance belongs to exactly one node stepper thread.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace highrpm::adapt {

// Sampling mode. Values are stable -- they are packed into the daemon's
// seqlock snapshot word (0 is reserved for "controller disabled").
enum class Mode : std::uint8_t {
  kSparse = 1,  // cheap DT ResModel, strided PMCs, widened IM interval
  kDense = 2,   // full LSTM path at base cadence
};

// A standing decision, applied from the next tick until superseded at a
// later window boundary.
struct Decision {
  Mode mode = Mode::kSparse;
  bool use_cheap = true;           // route TRR predicts through the DT path
  std::size_t pmc_stride = 1;      // PmcSampler stride to apply
  double im_interval_factor = 1.0; // multiply the base IM interval by this
};

struct ControllerConfig {
  // Decision-window length in ticks. Callers embedding the controller in the
  // restoration stack pin this to the TRR miss interval so decisions land on
  // ring-window boundaries. Must be >= 1.
  std::size_t window = 10;

  // Hard overhead budget: at most this many dense ticks per 1000 observed
  // ticks. 0 pins the controller to Sparse forever; >= 1000 removes the
  // budget constraint (always-dense when the signal warrants it).
  std::uint32_t budget_permille = 400;

  // Minimum dwell, in windows, after any mode change. Must be >= 1.
  std::size_t hold_windows = 3;

  // Hysteresis band on the volatility score (watt-denominated, see
  // `last_score()`): Sparse->Dense requires score > up_threshold_w; Dense
  // drops back only when score <= down_threshold_w. Require
  // 0 <= down <= up, both finite.
  double up_threshold_w = 3.0;
  double down_threshold_w = 1.5;

  // Weight of the mean relative PMC delta in the volatility score
  // (watts per unit relative delta). Finite, >= 0.
  double pmc_weight = 5.0;

  // Sparse-mode cadence: PMC sampler stride (>= 1) and the IM interval
  // widening factor (finite, >= 1).
  std::size_t sparse_pmc_stride = 4;
  double sparse_im_factor = 3.0;

  // Token-bucket headroom above the Dense entry cost, in spare dense-window
  // equivalents. Caps how much quiet-phase credit can be banked for later
  // bursts; keeps long-quiet runs from buying unbounded dense time.
  std::size_t spare_windows = 8;
};

class Controller {
 public:
  explicit Controller(const ControllerConfig& cfg);

  // Feed one tick's restored node power and its (substituted) PMC row.
  // Returns the new standing decision when this tick closes a decision
  // window AND the mode changed; std::nullopt otherwise. Non-finite inputs
  // are counted but excluded from the volatility statistics.
  std::optional<Decision> observe(double node_w, std::span<const double> pmcs);

  // The current standing decision (valid from construction: Sparse).
  [[nodiscard]] Decision decision() const;

  // Forget all observed state (mode, tokens, counters, window statistics);
  // the config is retained. Equivalent to a freshly constructed controller.
  void reset();

  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t ticks_observed() const { return ticks_; }
  [[nodiscard]] std::uint64_t dense_ticks() const { return dense_ticks_; }
  [[nodiscard]] std::uint64_t sparse_ticks() const {
    return ticks_ - dense_ticks_;
  }
  [[nodiscard]] std::uint64_t windows_observed() const { return windows_; }
  [[nodiscard]] std::uint64_t mode_changes() const { return mode_changes_; }
  [[nodiscard]] std::uint64_t tokens() const { return tokens_; }
  // Volatility score of the most recently completed window (0 before the
  // first boundary): stddev(node_w) + max |delta node_w| + pmc_weight *
  // mean relative PMC delta, all over the window's finite ticks.
  [[nodiscard]] double last_score() const { return last_score_; }

 private:
  void close_window();

  ControllerConfig cfg_;
  std::uint64_t entry_cost_ = 0;  // tokens to pre-pay a minimum Dense dwell
  std::uint64_t token_cap_ = 0;   // entry cost + spare_windows of headroom

  Mode mode_ = Mode::kSparse;
  std::uint64_t tokens_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t dense_ticks_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t windows_in_mode_ = 0;
  std::uint64_t mode_changes_ = 0;
  double last_score_ = 0.0;

  // Current-window statistics (reset at each boundary).
  std::size_t win_ticks_ = 0;     // ticks in the open window (incl. skipped)
  std::size_t win_finite_ = 0;    // finite samples contributing to stats
  double win_mean_ = 0.0;         // Welford running mean of node_w
  double win_m2_ = 0.0;           // Welford running sum of squared deviations
  double win_max_jump_ = 0.0;     // max |node_w - prev_node_w| in the window
  double win_pmc_delta_ = 0.0;    // summed mean relative PMC delta
  std::size_t win_pmc_count_ = 0; // ticks contributing a PMC delta
  bool have_prev_w_ = false;
  double prev_w_ = 0.0;
  bool have_prev_pmcs_ = false;
  std::vector<double> prev_pmcs_; // sized on first observation, then reused
};

}  // namespace highrpm::adapt
