// verify::Scheduler — a loom/relacy-style deterministic concurrency model
// checker for the lock-free serve/obs primitives.
//
// One explore() call runs the supplied test body many times. Each execution
// spawns the registered model threads as real OS threads but permits exactly
// one to run at a time: every instrumented operation (atomic load/store/RMW,
// fence, raw read/write, yield) is a context-switch point where the
// scheduler decides which thread proceeds. Decisions come from either
//   - an exhaustive DFS over the decision tree (with preemption bounding to
//     keep small state spaces tractable and fully explored), or
//   - a seeded-random sweep (for shapes too large to exhaust), where every
//     failure prints the per-iteration seed and Options::replay_seed reruns
//     exactly that schedule.
//
// Weak memory is simulated, not assumed sequentially consistent — that is
// what lets the checker catch a release store weakened to relaxed, which
// behaves identically under any SC interleaving:
//   - every atomic store is appended to the variable's history with two
//     vector clocks: `hb` (the storing thread's clock, for coherence) and
//     `msg` (the clock an acquire reader synchronizes with: the thread's
//     clock for release stores, the clock at the thread's last release
//     FENCE for relaxed stores — which is exactly the seqlock protocol);
//   - a load may read ANY history entry that coherence permits: nothing
//     older than what the thread already read or wrote, and nothing
//     overwritten by a store the thread's clock has already ordered after
//     (which store it reads is itself an explored decision);
//   - RMWs read the latest entry and extend the release sequence;
//   - acquire fences join the message clocks of all prior relaxed loads;
//   - non-atomic Raw cells carry read/write vector clocks and any pair of
//     unordered accesses (at least one a write) is reported as a data race.
//
// Simplifications (documented, deliberate): seq_cst is modeled as acq_rel
// (no total SC order — the checked primitives use none), weak CAS never
// fails spuriously, and modification order equals execution order (exact
// for the single-writer variables these primitives use).
//
// Livelock handling: Backend::yield() marks the thread blocked until some
// OTHER thread executes an operation. When every unfinished thread is
// blocked, eventual visibility kicks in first: any parked thread whose
// coherence floor trails some atomic's newest store is unparked with its
// floors raised to the latest entries (hardware guarantees stores become
// visible eventually, so a spinner that merely read a stale value is not
// livelocked — it must re-read fresh). A parked thread that raised some
// floor during its last spin pass likewise gets one more pass: its next
// iteration reads different values and may exit the loop. Only when no
// parked thread can observe anything new does the execution fail as a
// livelock; a per-execution operation budget backstops non-yielding spins.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "highrpm/math/rng.hpp"

namespace highrpm::verify {

/// Model-thread capacity of one execution (vector clock width).
inline constexpr std::size_t kMaxThreads = 8;

struct VectorClock {
  std::array<std::uint64_t, kMaxThreads> v{};

  void join(const VectorClock& o) noexcept {
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      if (o.v[i] > v[i]) v[i] = o.v[i];
    }
  }
  /// Componentwise `*this <= o`: every event this clock knows, o knows.
  bool leq(const VectorClock& o) const noexcept {
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      if (v[i] > o.v[i]) return false;
    }
    return true;
  }
};

/// One entry of an atomic variable's store history.
struct StoreRec {
  std::uint64_t bits = 0;  // value, encoded by the typed wrapper
  VectorClock msg;         // what an acquire reader synchronizes with
  VectorClock hb;          // storing thread's clock (coherence/hiding)
  int thread = -1;         // -1: initial value from the setup phase
};

/// Shared state of one model atomic (embedded in ModelAtomic<T>).
struct AtomicState {
  std::vector<StoreRec> history;
  /// Per-thread coherence floor: the smallest history index the thread may
  /// still read (raised by its own reads and writes).
  std::array<std::size_t, kMaxThreads> floor{};
  /// Spin-progress tracking: history size and yield epoch at the thread's
  /// last load. A load in a LATER spin iteration (separated by a yield)
  /// with an unchanged history must read strictly fresher than the
  /// previous one — eventual visibility, which both prunes the explosion
  /// of identical stale re-read branches and models that a real spin loop
  /// cannot re-read the same stale value forever.
  std::array<std::size_t, kMaxThreads> last_load_size{};
  std::array<std::uint64_t, kMaxThreads> last_load_epoch{};
  int id = -1;  // event-log label ("a<id>"), creation order
};

/// Shared state of one model Raw (non-atomic) cell.
struct RawState {
  VectorClock write_hb;  // clock of the last write
  std::array<std::uint64_t, kMaxThreads> read_epoch{};
  int id = -1;
  int last_writer = -1;
};

struct Options {
  enum class Mode { kExhaustive, kRandom };
  Mode mode = Mode::kExhaustive;
  /// Max context switches away from a runnable thread per execution;
  /// < 0 = unbounded. Voluntary switches (yield, finish) are free.
  int preemption_bound = -1;
  /// Max number of (coherence-viable) newest stores a load may choose
  /// among; 0 = unbounded. The weak-memory analogue of preemption_bound:
  /// it caps the read-choice branching factor so retry-heavy shapes stay
  /// exhaustible. 2 already admits the one-store-stale reads that expose
  /// every seeded publish/fence mutant in the test suite.
  int stale_window = 0;
  /// Per-execution operation budget — the livelock/runaway backstop.
  std::uint64_t max_ops = 50000;
  /// Exhaustive mode: safety valve on the number of executions. If the DFS
  /// is not finished by then, Result::complete stays false.
  std::uint64_t max_executions = 2000000;
  /// Random mode: number of seeded iterations.
  std::uint64_t iterations = 256;
  /// Random mode: base seed; iteration i runs with seed `seed + i`.
  std::uint64_t seed = 1;
  /// Random mode: when nonzero, run exactly one iteration with this seed —
  /// the replay handle printed by a failing sweep.
  std::uint64_t replay_seed = 0;
  /// Events from the failing execution kept in Result::trace.
  std::size_t trace_tail = 64;
};

struct Result {
  bool failed = false;
  /// Exhaustive mode: the decision space was fully explored.
  bool complete = false;
  std::uint64_t executions = 0;
  std::string reason;  // first failure
  std::string trace;   // event-log tail of the failing execution
  /// Random mode: the per-iteration seed to pass as Options::replay_seed.
  std::uint64_t failing_seed = 0;
  /// Exhaustive mode: the failing decision path (informational; DFS is
  /// deterministic, so rerunning explore() reproduces the failure).
  std::vector<std::uint32_t> failing_path;
  /// Max instrumented ops any single execution charged to each thread —
  /// the livelock-bound suites assert on this.
  std::array<std::uint64_t, kMaxThreads> max_ops_per_thread{};

  /// Human-readable summary with the replay handle.
  std::string report() const;
};

class Scheduler;

/// Registration surface handed to the test body once per execution.
class Env {
 public:
  explicit Env(Scheduler& s) : sched_(s) {}
  /// Register one model thread (at most kMaxThreads).
  void thread(std::function<void()> body);
  /// Register a check to run on the main thread after all threads joined.
  void finally(std::function<void()> f);

 private:
  Scheduler& sched_;
};

/// Explore the interleavings (and weak-memory read choices) of the test
/// body. `setup` runs once per execution on the main thread: it constructs
/// fresh shared state, registers thread bodies via Env::thread, and may
/// register a post-join invariant via Env::finally.
Result explore(const Options& opts,
               const std::function<void(Env&)>& setup);

/// Invariant assertion for model threads (and finally blocks): on failure
/// the current execution is aborted and reported with its replay handle.
/// Outside an explore() call a failure throws std::logic_error.
void check(bool cond, const char* msg);

class Scheduler {
 public:
  /// The scheduler driving the calling thread's execution (nullptr outside
  /// explore()). Set for the main thread during setup/finally and for every
  /// model thread for the duration of its body.
  static Scheduler* current() noexcept;

  explicit Scheduler(const Options& opts);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Result run(const std::function<void(Env&)>& setup);

  // ----- backend entry points (called by ModelBackend wrappers) -----
  int register_atomic(AtomicState& a, std::uint64_t init_bits);
  /// Drop a model atomic destroyed mid-execution from the visibility list.
  void unregister_atomic(AtomicState& a);
  int register_raw(RawState& r);
  std::uint64_t atomic_load(AtomicState& a, std::memory_order mo);
  void atomic_store(AtomicState& a, std::uint64_t bits, std::memory_order mo);
  std::uint64_t rmw_fetch_add(AtomicState& a, std::uint64_t delta,
                              std::memory_order mo);
  bool rmw_cas(AtomicState& a, std::uint64_t& expected, std::uint64_t desired,
               std::memory_order mo);
  /// Race-check one raw access; the caller touches the value right after —
  /// safe because only one model thread runs between switch points.
  void raw_access(RawState& r, bool is_write);
  void fence(std::memory_order mo);
  void yield();
  /// Invariant failure from model code: aborts this execution.
  [[noreturn]] void check_failed(const char* msg);

 private:
  friend class Env;
  struct Abort {};  // unwinds a model thread when the execution ends early

  struct ThreadState {
    VectorClock clock;
    VectorClock rel_fence;    // clock at the last release fence
    VectorClock pending_acq;  // msg clocks of loads, joined by acquire fences
    bool finished = false;
    bool yielded = false;
    /// Last spin pass raised some coherence floor — a re-run can observe
    /// different values, so a futile yield may grant one more pass.
    bool advanced = false;
    std::uint64_t ops = 0;
    /// Bumped whenever one of this thread's coherence floors rises;
    /// yield() compares against the previous yield's snapshot.
    std::uint64_t floor_gen = 0;
    std::uint64_t floor_gen_at_yield = 0;
    /// Spin-iteration counter, bumped at every yield (see
    /// AtomicState::last_load_epoch).
    std::uint64_t spin_epoch = 0;
  };

  struct Decision {
    std::uint32_t chosen = 0;
    std::uint32_t num = 0;
  };

  enum class EvKind : std::uint8_t {
    kLoad, kStore, kRmw, kCasFail, kFence, kRawRead, kRawWrite, kYield
  };
  struct Event {
    std::int8_t thread;
    EvKind kind;
    std::int16_t var;
    std::uint8_t order;
    std::uint64_t value;
  };

  void run_one_execution(const std::function<void(Env&)>& setup);
  bool advance_dfs();
  void worker_body(int tid, const std::function<void()>& body);
  /// Persistent pool thread: runs worker_body once per execution epoch.
  /// Reusing OS threads across executions is what makes exhaustive sweeps
  /// affordable — thread creation dominates small shapes otherwise.
  void pool_main(int tid);

  // All private helpers below run with mu_ held.
  void pre_op(std::unique_lock<std::mutex>& lk);
  void schedule(std::unique_lock<std::mutex>& lk, bool current_runnable);
  /// Eventual visibility: raise thread u's coherence floors to every
  /// atomic's newest entry. Returns whether any floor actually moved —
  /// false means a re-read cannot observe anything new (true livelock).
  bool refresh_visibility(std::size_t u);
  std::uint32_t choose(std::uint32_t n);
  /// Record the first failure and wake all waiters (does not unwind —
  /// callable from a worker's finish path where there is nothing to abort).
  void fail_record(std::string reason);
  [[noreturn]] void fail_locked(std::string reason);
  void log_event(EvKind kind, int var, std::memory_order mo,
                 std::uint64_t value);
  std::string format_trace() const;
  bool model_phase() const noexcept { return model_phase_; }

  Options opts_;

  // Per-explore decision engine.
  std::vector<Decision> dstack_;  // exhaustive DFS stack
  std::size_t cursor_ = 0;
  math::Rng rng_{1};  // random mode, reseeded per iteration
  std::uint64_t iter_seed_ = 0;

  // Per-execution state.
  std::mutex mu_;
  std::condition_variable cv_;
  static constexpr int kMain = -1;
  int active_ = kMain;
  bool model_phase_ = false;
  bool failed_ = false;
  std::size_t finished_count_ = 0;
  std::array<ThreadState, kMaxThreads> ts_{};
  std::vector<std::function<void()>> bodies_;
  std::vector<std::function<void()>> finals_;
  /// Live model atomics of the current execution (for refresh_visibility).
  std::vector<AtomicState*> atomics_;
  std::vector<Event> log_;
  int next_var_id_ = 0;
  int preemptions_ = 0;
  std::uint64_t total_ops_ = 0;

  // Persistent worker pool (lives for the whole explore() call).
  std::vector<std::thread> pool_;
  std::uint64_t epoch_ = 0;
  bool pool_stop_ = false;

  Result result_;
};

}  // namespace highrpm::verify
