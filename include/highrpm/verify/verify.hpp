// Umbrella header for the highrpm::verify model-checking harness.
//
// Production code includes backend.hpp only (StdBackend, zero overhead);
// model-checker suites include this to get the scheduler, the checked
// backend, and the explore()/check() entry points. See DESIGN.md §10.
#pragma once

#include "highrpm/verify/backend.hpp"
#include "highrpm/verify/model.hpp"
#include "highrpm/verify/sched.hpp"
