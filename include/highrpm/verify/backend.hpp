// verify::StdBackend — the production atomics backend.
//
// The lock-free primitives in serve/ and obs/ are templated over an atomics
// backend so the SAME SOURCE is both shipped and model-checked: production
// instantiations use StdBackend (below), whose Atomic<T> IS std::atomic<T>
// and whose Raw<T> is a transparent value wrapper — every call inlines to
// the plain operation, so the template layer costs nothing (the perf-smoke
// alloc/throughput gates and the serve determinism transcripts pin this).
// The model-checking instantiations use verify::ModelBackend (model.hpp),
// which routes every access through the deterministic scheduler instead.
//
// A backend provides:
//   template <typename T> Atomic  — std::atomic-shaped: load/store/
//                                   fetch_add/compare_exchange_weak, each
//                                   taking an explicit std::memory_order
//   template <typename T> Raw     — a NON-atomic cell accessed via
//                                   read()/write(); the model backend race-
//                                   checks these with vector clocks, the
//                                   production backend is a bare T
//   fence(order)                  — std::atomic_thread_fence
//   yield()                       — spin-loop backoff hint; the model
//                                   backend uses it to mark the thread as
//                                   blocked until another thread progresses
#pragma once

#include <atomic>
#include <thread>
#include <utility>

namespace highrpm::verify {

/// Plain storage for non-atomic shared data (ring slots). In production
/// this is a bare T; the read()/write() spelling exists so the model
/// backend can interpose happens-before race checks on the same source.
template <typename T>
class StdRaw {
 public:
  StdRaw() = default;
  T read() const { return value_; }
  void write(const T& v) { value_ = v; }

 private:
  T value_{};
};

struct StdBackend {
  template <typename T>
  using Atomic = std::atomic<T>;

  template <typename T>
  using Raw = StdRaw<T>;

  static void fence(std::memory_order order) noexcept {
    std::atomic_thread_fence(order);
  }

  static void yield() noexcept { std::this_thread::yield(); }
};

}  // namespace highrpm::verify
