// verify::ModelBackend — the checked atomics backend.
//
// Drop-in for verify::StdBackend (backend.hpp): same Atomic/Raw/fence/yield
// surface, but every access is routed through the deterministic
// verify::Scheduler, which records it (with its memory order) into the
// execution's event log, tracks happens-before with vector clocks, explores
// which store each load reads under the simulated weak-memory rules, and
// flags data races on Raw cells. Instantiate the templated primitives with
// this backend inside a verify::explore() body:
//
//   serve::SpscRing<int, verify::ModelBackend> ring(2);
//
// Supported value types: integral (including bool), float, double — 64 bits
// at most, round-tripped through a fixed-width bit encoding so the
// scheduler's history is type-erased.
//
// Accesses are only legal while a verify::explore() execution is active on
// the calling thread (the scheduler pointer is thread-local); construction
// is allowed anywhere, and setup/finally-phase accesses bypass scheduling
// (they run single-threaded by construction).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <type_traits>

#include "highrpm/verify/sched.hpp"

namespace highrpm::verify {

template <typename T>
constexpr std::uint64_t to_bits(T v) noexcept {
  if constexpr (std::is_same_v<T, bool>) {
    return v ? 1u : 0u;
  } else if constexpr (std::is_integral_v<T>) {
    return static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
  } else if constexpr (std::is_same_v<T, double>) {
    return std::bit_cast<std::uint64_t>(v);
  } else if constexpr (std::is_same_v<T, float>) {
    return std::bit_cast<std::uint32_t>(v);
  } else {
    static_assert(std::is_integral_v<T>, "unsupported model atomic type");
  }
}

template <typename T>
constexpr T from_bits(std::uint64_t bits) noexcept {
  if constexpr (std::is_same_v<T, bool>) {
    return bits != 0;
  } else if constexpr (std::is_integral_v<T>) {
    return static_cast<T>(
        static_cast<std::make_unsigned_t<T>>(bits));
  } else if constexpr (std::is_same_v<T, double>) {
    return std::bit_cast<double>(bits);
  } else if constexpr (std::is_same_v<T, float>) {
    return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
  }
}

/// std::atomic-shaped wrapper whose every operation is a scheduler event.
template <typename T>
class ModelAtomic {
 public:
  ModelAtomic() noexcept { init(T{}); }
  explicit ModelAtomic(T v) noexcept { init(v); }
  ~ModelAtomic() {
    // Keep the scheduler's eventual-visibility list free of dangling
    // pointers when a model atomic dies mid-execution.
    if (Scheduler* s = Scheduler::current()) s->unregister_atomic(state_);
  }
  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order mo) const {
    return from_bits<T>(Scheduler::current()->atomic_load(state_, mo));
  }

  void store(T v, std::memory_order mo) {
    Scheduler::current()->atomic_store(state_, to_bits(v), mo);
  }

  T fetch_add(T delta, std::memory_order mo) {
    static_assert(std::is_integral_v<T>,
                  "fetch_add is modeled for integral types only");
    return from_bits<T>(
        Scheduler::current()->rmw_fetch_add(state_, to_bits(delta), mo));
  }

  /// Modeled as strong (no spurious failure); failure order is the success
  /// order with any release component stripped, per the single-order API.
  bool compare_exchange_weak(T& expected, T desired, std::memory_order mo) {
    std::uint64_t exp = to_bits(expected);
    const bool ok =
        Scheduler::current()->rmw_cas(state_, exp, to_bits(desired), mo);
    expected = from_bits<T>(exp);
    return ok;
  }

 private:
  void init(T v) noexcept {
    if (Scheduler* s = Scheduler::current()) {
      state_.id = s->register_atomic(state_, to_bits(v));
    } else {
      state_.history.push_back(StoreRec{to_bits(v), {}, {}, -1});
    }
  }

  mutable AtomicState state_;
};

/// Non-atomic cell with vector-clock race detection: any two accesses not
/// ordered by happens-before, at least one of them a write, fail the
/// execution as a data race. This is what catches a publish store weakened
/// to relaxed — the consumer's read of the slot becomes unordered with the
/// producer's write.
template <typename T>
class ModelRaw {
 public:
  ModelRaw() {
    if (Scheduler* s = Scheduler::current()) {
      state_.id = s->register_raw(state_);
    }
  }

  T read() const {
    Scheduler::current()->raw_access(state_, /*is_write=*/false);
    return value_;  // safe: no other model thread runs between switch points
  }

  void write(const T& v) {
    Scheduler::current()->raw_access(state_, /*is_write=*/true);
    value_ = v;
  }

 private:
  mutable RawState state_;
  T value_{};
};

struct ModelBackend {
  template <typename T>
  using Atomic = ModelAtomic<T>;

  template <typename T>
  using Raw = ModelRaw<T>;

  static void fence(std::memory_order order) {
    Scheduler::current()->fence(order);
  }

  static void yield() { Scheduler::current()->yield(); }
};

}  // namespace highrpm::verify
