// The benchmarking workload set of paper §5.3: 96 workload profiles grouped
// into the same seven suites (SPEC CPU 2017 x43, PARSEC x36, HPCC x12,
// Graph500 x2, HPL-AI, SMG2000, HPCG). Each profile is a deterministic
// phase-structured activity model whose parameters are drawn from
// suite-characteristic ranges, so the set spans the compute-bound ...
// memory-bound spectrum the paper's training protocol needs. The three
// workloads used in the motivation figures (FFT, Stream, Graph500-BFS) are
// hand-tuned to reproduce the Fig 1 / Fig 2 behaviours.
#pragma once

#include <string>
#include <vector>

#include "highrpm/sim/phase.hpp"

namespace highrpm::workloads {

/// Compute-intensive FFT (HPCC pTRANS/FFT-like): CPU power dominates
/// (paper Fig 2 left).
sim::Workload fft();

/// Memory-bandwidth-bound STREAM: RAM power dominates (paper Fig 2 right).
sim::Workload stream();

/// Graph500 BFS: phased and spiky — alternating scan/expand supersteps with
/// sharp power spikes (paper Fig 1).
sim::Workload graph500_bfs();

/// Graph500 SSSP companion kernel.
sim::Workload graph500_sssp();

/// Dense mixed-precision LU (HPL-AI): sustained near-peak CPU activity.
sim::Workload hpl_ai();

/// Semicoarsening multigrid (SMG2000): alternating smooth/restrict phases,
/// memory-heavy.
sim::Workload smg2000();

/// High-performance conjugate gradients (HPCG): bandwidth-bound SpMV cycle.
sim::Workload hpcg();

/// Names of the seven suites, Table-3 order.
std::vector<std::string> suite_names();

/// All workloads of one suite ("SPEC"=43, "PARSEC"=36, "HPCC"=12,
/// "Graph500"=2, "HPL-AI"=1, "SMG2000"=1, "HPCG"=1).
/// Throws std::invalid_argument for unknown suites.
std::vector<sim::Workload> suite(const std::string& name);

/// The full 96-workload benchmark set, suite by suite.
std::vector<sim::Workload> full_benchmark_set();

/// Look a workload up by name anywhere in the full set.
sim::Workload by_name(const std::string& name);

}  // namespace highrpm::workloads
