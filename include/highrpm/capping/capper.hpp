// Power-capping controller used by the Fig-1 motivation experiment: it reads
// node power every PI seconds (the power reading interval) and may adjust
// DVFS every AI seconds (the power capping action interval). Coarse PI makes
// it miss spikes; coarse AI leaves the node at a high frequency through
// them — raising peak power and total energy, the causal chain the paper's
// Fig 1 demonstrates (peak grows to ~50 W CPU, energy 37.3 kJ -> 38.4 kJ).
#pragma once

#include <cstdint>

#include "highrpm/sim/node.hpp"

namespace highrpm::capping {

struct CappingConfig {
  double node_cap_w = 85.0;       // node-level power budget
  double reading_interval_s = 1.0;  // PI: how often a power reading arrives
  double action_interval_s = 1.0;   // AI: how often DVFS may be adjusted
  double hysteresis_w = 3.0;      // raise frequency only this far below cap
};

struct CappingResult {
  sim::Trace trace;
  double peak_node_w = 0.0;
  double peak_cpu_w = 0.0;
  double energy_j = 0.0;
  /// Seconds spent above the cap (uncontrolled overshoot).
  double seconds_over_cap = 0.0;
  std::size_t dvfs_actions = 0;
  std::vector<std::size_t> freq_level_per_tick;
};

class PowerCapController {
 public:
  explicit PowerCapController(CappingConfig cfg = {});

  /// Drive the node for `ticks` seconds under the cap.
  CappingResult run(sim::NodeSimulator& node, std::size_t ticks);

  const CappingConfig& config() const noexcept { return cfg_; }

 private:
  CappingConfig cfg_;
};

}  // namespace highrpm::capping
