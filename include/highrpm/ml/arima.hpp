// AR / ARIMA-style time-series modeling.
//
// Paper §4.2.1 names ARIMA together with splines as the classical
// interpolation family that "can only estimate missing data points based on
// long-term trends": ArimaInterpolator is that baseline, used by the
// Table-6 bench as an extra TRR-family row and available to users as a
// lightweight trend model.
//
// The implementation is a least-squares AR(p) on a d-times differenced
// series (no MA term — invertible MA fitting buys little for power trends
// and costs a nonlinear optimizer). Gap interpolation blends the forward
// forecast from the left knots with the backward "forecast" from the
// right knots (time-reversed AR), linearly weighted by gap position.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace highrpm::ml {

/// Autoregressive model of order p with intercept, fit by least squares.
class ArModel {
 public:
  explicit ArModel(std::size_t order = 2);

  /// Fit on a regularly-sampled series (needs > order + 1 points).
  void fit(std::span<const double> series);

  /// One-step-ahead prediction given the last `order` values
  /// (most recent last).
  double predict_next(std::span<const double> recent) const;

  /// Forecast h steps ahead from the end of `history`.
  std::vector<double> forecast(std::span<const double> history,
                               std::size_t horizon) const;

  bool fitted() const noexcept { return !coef_.empty(); }
  std::size_t order() const noexcept { return order_; }
  std::span<const double> coefficients() const noexcept { return coef_; }
  double intercept() const noexcept { return intercept_; }

 private:
  std::size_t order_;
  std::vector<double> coef_;  // lag-1 first
  double intercept_ = 0.0;
};

struct ArimaConfig {
  std::size_t p = 2;  // AR order
  std::size_t d = 1;  // differencing order (0 or 1)
};

/// Interpolates a sparse regularly-spaced series onto a dense grid:
/// readings are at ticks {0, interval, 2*interval, ...}; the interpolator
/// returns one value per tick in [0, n_ticks). This is the ARIMA-family
/// counterpart of the spline trend model.
class ArimaInterpolator {
 public:
  explicit ArimaInterpolator(ArimaConfig cfg = {});

  /// Fit on the sparse reading values (in time order, constant spacing).
  void fit(std::span<const double> readings);

  /// Dense reconstruction: `reading_ticks[i]` is the tick index of
  /// readings[i]; ticks outside the reading range extrapolate the nearest
  /// model. reading_ticks must be strictly increasing.
  std::vector<double> interpolate(std::span<const double> readings,
                                  std::span<const std::size_t> reading_ticks,
                                  std::size_t n_ticks) const;

  bool fitted() const noexcept { return forward_.fitted(); }
  const ArimaConfig& config() const noexcept { return cfg_; }

 private:
  ArimaConfig cfg_;
  ArModel forward_;
  ArModel backward_;
};

}  // namespace highrpm::ml
