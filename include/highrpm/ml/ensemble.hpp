// Tree ensembles from Table 4: RandomForest (#trees=10) and
// GradientBoosting (#trees=10).
#pragma once

#include "highrpm/ml/tree.hpp"

namespace highrpm::ml {

struct ForestConfig {
  std::size_t n_trees = 10;
  TreeConfig tree;
  /// Fraction of features considered per split (sqrt rule when 0).
  double feature_fraction = 0.0;
  std::uint64_t seed = 7;
};

/// Bagged regression forest: bootstrap rows, random feature subsets.
class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(ForestConfig cfg = {});
  /// Trains the trees in parallel. Every tree draws its bootstrap rows and
  /// split seed from its own pre-split stream (math::Rng::fork(seed, tree)),
  /// so the fitted forest is identical for any thread count.
  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  std::vector<double> predict(const math::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "RF"; }
  bool fitted() const override { return !trees_.empty(); }
  std::size_t size() const noexcept { return trees_.size(); }

 private:
  ForestConfig cfg_;
  std::vector<DecisionTreeRegressor> trees_;
};

struct BoostingConfig {
  std::size_t n_trees = 10;
  double learning_rate = 0.3;
  TreeConfig tree{.max_depth = 4, .min_samples_split = 8,
                  .min_samples_leaf = 4};
  std::uint64_t seed = 11;
};

/// Gradient boosting on squared error: each stage fits the residual.
class GradientBoostingRegressor final : public Regressor {
 public:
  explicit GradientBoostingRegressor(BoostingConfig cfg = {});
  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  std::vector<double> predict(const math::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "GB"; }
  bool fitted() const override { return fitted_; }
  std::size_t size() const noexcept { return trees_.size(); }

 private:
  BoostingConfig cfg_;
  double base_ = 0.0;
  bool fitted_ = false;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace highrpm::ml
