// Recurrent sequence regressors: stacked LSTM or GRU cells plus a shared
// fully-connected output head, trained with truncated BPTT over the
// fixed-length windows produced by data::make_windows*.
//
// This implements the paper's DynamicTRR network ("a compact LSTM model with
// an input layer, two hidden layers, and a fully connected layer", units = 2
// per Table 4) and the GRU/LSTM baselines. Supports warm-start fine-tuning:
// DynamicTRR refines the trained model with the newest window every time a
// real IM reading arrives (§4.2.2).
#pragma once

#include <cstdint>
#include <string>

#include "highrpm/data/scaler.hpp"
#include "highrpm/data/window.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::ml {

enum class CellType { kLstm, kGru };

struct RnnConfig {
  CellType cell = CellType::kLstm;
  std::size_t units = 2;   // hidden width per recurrent layer
  std::size_t layers = 2;  // stacked recurrent layers
  std::size_t epochs = 30;
  std::size_t batch_size = 16;
  double learning_rate = 5e-3;  // Adam
  double grad_clip = 5.0;       // elementwise clip on accumulated grads
  std::uint64_t seed = 97;
};

/// Many-to-many sequence regressor: given a T x F window it emits one scalar
/// per step. Input/target scaling is internal (raw units at the interface).
class SequenceRegressor {
 public:
  explicit SequenceRegressor(RnnConfig cfg = {});

  /// Train (reset=true) or fine-tune (reset=false, keeping scalers/weights).
  void fit(std::span<const data::SequenceSample> samples, bool reset = true,
           std::size_t epochs_override = 0);

  /// Caller-owned reusable buffers for the allocation-free predict path.
  /// A workspace belongs to one caller at a time (confine it to a single
  /// thread); reuse it across calls so that after the first predict_into at
  /// a given model shape, subsequent calls perform zero heap allocations.
  struct Workspace {
    /// Per-layer cell-step scratch.
    struct StepScratch {
      std::vector<double> z;      // gate pre-activations
      std::vector<double> gates;  // gate post-activations
      std::vector<double> rh;     // GRU reset-gated hidden state
    };
    std::vector<StepScratch> layers;
    math::Matrix h;         // layers x units hidden state
    math::Matrix c;         // layers x units LSTM cell state
    std::vector<double> x;  // current step input
    // Layer-outer predict buffers: the standardized window, the bias-folded
    // input projection of the current layer, and ping-pong per-step output
    // sequences (layer l writes one, layer l+1 reads it).
    math::Matrix xs;      // T x F
    math::Matrix zx;      // T x gates
    math::Matrix hseq_a;  // T x units
    math::Matrix hseq_b;  // T x units
  };

  /// Caller-owned buffers for the cross-lane batched predict path. One
  /// workspace per caller (confine to a single thread); zero heap
  /// allocations once warm at a given (lanes, T) shape.
  struct BatchWorkspace {
    math::Matrix xs;      // (lanes*T) x F standardized windows
    math::Matrix zx;      // (lanes*T) x gates input projection
    math::Matrix h;       // lanes x units, current layer's hidden state
    math::Matrix c;       // lanes x units, current layer's LSTM cell state
    math::Matrix zu;      // lanes x gates recurrent projection at step t
    math::Matrix hseq_a;  // (lanes*T) x units ping-pong layer outputs
    math::Matrix hseq_b;  // (lanes*T) x units
    Workspace::StepScratch scratch;
  };

  /// Per-step predictions for a T x F window (any T >= 1).
  std::vector<double> predict(const math::Matrix& steps) const;
  /// predict() into caller-owned output + workspace buffers: bit-identical
  /// results, no heap allocation once the buffers are warm. `out` is
  /// resized to T. Thread-safe for concurrent calls on the same const model
  /// as long as each caller brings its own workspace.
  void predict_into(const math::Matrix& steps, std::vector<double>& out,
                    Workspace& ws) const;
  /// Batched predict_into over `lanes` independent windows of equal length,
  /// packed lane-major into `windows` ((lanes*T) x F, lane i's window in
  /// rows [i*T, (i+1)*T)). `out` becomes lanes x T, row i bit-identical to
  /// predict_into on lane i's window alone: each layer runs one bias-folded
  /// input-projection GEMM over all lanes*T rows and one recurrent GEMM per
  /// time step over all lanes, and every per-cell expression keeps the
  /// scalar path's operand order and association. No allocation once the
  /// workspace is warm; thread-safe on a const model with per-caller
  /// workspaces.
  void predict_batch_into(const math::Matrix& windows, std::size_t lanes,
                          math::Matrix& out, BatchWorkspace& ws) const;

  bool fitted() const noexcept { return fitted_; }
  const RnnConfig& config() const noexcept { return cfg_; }
  std::size_t input_dim() const noexcept { return in_dim_; }
  std::size_t parameter_count() const;
  std::string name() const {
    return cfg_.cell == CellType::kLstm ? "LSTM" : "GRU";
  }

 private:
  struct CellParams {
    // Gate-stacked weights: LSTM rows = 4*units (i,f,g,o); GRU rows = 3*units
    // (z,r,n). w: gates x input_dim, u: gates x units, b: gates.
    math::Matrix w, u;
    std::vector<double> b;
    // Adam moments.
    math::Matrix mw, vw, mu, vu;
    std::vector<double> mb, vb;
  };
  struct Head {
    std::vector<double> w;  // units
    double b = 0.0;
    std::vector<double> mw, vw;
    double mb = 0.0, vb = 0.0, mbb = 0.0;
  };
  /// Per-step per-layer cache for backprop.
  struct StepCache {
    std::vector<double> x;      // layer input
    std::vector<double> h_prev;
    std::vector<double> c_prev;  // LSTM only
    std::vector<double> gates;   // post-activation gate values
    std::vector<double> c;       // LSTM cell state
    std::vector<double> h;
  };

  void initialize(std::size_t in_dim, math::Rng& rng);
  std::size_t gate_count() const {
    return (cfg_.cell == CellType::kLstm ? 4 : 3) * cfg_.units;
  }
  /// Size the workspace buffers for this model's shape and zero the
  /// recurrent state. No allocation when the workspace is already warm.
  void prepare(Workspace& ws) const;
  /// One cell step, in place: h_inout holds h_{t-1} on entry and h_t on
  /// return (safe because every gate pre-activation is fully computed from
  /// h_{t-1} before any element of h is overwritten, and the GRU update
  /// reads h_prev[j] in the same expression that writes h[j]); c_inout is
  /// the LSTM cell state, updated likewise. Uses only the scratch buffers —
  /// no allocation once they are warm.
  void cell_step_into(const CellParams& p, std::span<const double> x,
                      std::span<double> h_inout, std::span<double> c_inout,
                      Workspace::StepScratch& scratch) const;
  /// cell_step_into with the input projection `b + w·x` already folded into
  /// `zx` (one GEMM row per step) and, optionally, the recurrent projection
  /// `u·h_{t-1}` precomputed in `zu` (pass empty to compute the per-gate
  /// dots here). Gate arithmetic keeps cell_step_into's operand order and
  /// association, so the updated h/c are bit-identical to it.
  void cell_step_preproj_into(const CellParams& p, std::span<const double> zx,
                              std::span<const double> zu,
                              std::span<double> h_inout,
                              std::span<double> c_inout,
                              Workspace::StepScratch& scratch) const;
  /// Forward a whole window, returning per-step head outputs (scaled space);
  /// caches are per layer per step when requested (training path).
  std::vector<double> forward(const math::Matrix& steps_scaled,
                              std::vector<std::vector<StepCache>>* caches) const;
  void adam_step(double lr);

  RnnConfig cfg_;
  std::size_t in_dim_ = 0;
  std::vector<CellParams> cells_;
  Head head_;
  // Gradient accumulators (allocated lazily in fit).
  std::vector<CellParams> grads_;
  std::vector<double> head_gw_;
  double head_gb_ = 0.0;
  data::StandardScaler x_scaler_;
  data::TargetScaler y_scaler_;
  std::uint64_t adam_t_ = 0;
  bool fitted_ = false;
};

}  // namespace highrpm::ml
