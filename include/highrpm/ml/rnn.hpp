// Recurrent sequence regressors: stacked LSTM or GRU cells plus a shared
// fully-connected output head, trained with truncated BPTT over the
// fixed-length windows produced by data::make_windows*.
//
// This implements the paper's DynamicTRR network ("a compact LSTM model with
// an input layer, two hidden layers, and a fully connected layer", units = 2
// per Table 4) and the GRU/LSTM baselines. Supports warm-start fine-tuning:
// DynamicTRR refines the trained model with the newest window every time a
// real IM reading arrives (§4.2.2).
#pragma once

#include <cstdint>
#include <string>

#include "highrpm/data/scaler.hpp"
#include "highrpm/data/window.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/math/rng.hpp"

namespace highrpm::ml {

enum class CellType { kLstm, kGru };

struct RnnConfig {
  CellType cell = CellType::kLstm;
  std::size_t units = 2;   // hidden width per recurrent layer
  std::size_t layers = 2;  // stacked recurrent layers
  std::size_t epochs = 30;
  std::size_t batch_size = 16;
  double learning_rate = 5e-3;  // Adam
  double grad_clip = 5.0;       // elementwise clip on accumulated grads
  std::uint64_t seed = 97;
};

/// Many-to-many sequence regressor: given a T x F window it emits one scalar
/// per step. Input/target scaling is internal (raw units at the interface).
class SequenceRegressor {
 public:
  explicit SequenceRegressor(RnnConfig cfg = {});

  /// Train (reset=true) or fine-tune (reset=false, keeping scalers/weights).
  void fit(std::span<const data::SequenceSample> samples, bool reset = true,
           std::size_t epochs_override = 0);

  /// Per-step predictions for a T x F window (any T >= 1).
  std::vector<double> predict(const math::Matrix& steps) const;

  bool fitted() const noexcept { return fitted_; }
  const RnnConfig& config() const noexcept { return cfg_; }
  std::size_t input_dim() const noexcept { return in_dim_; }
  std::size_t parameter_count() const;
  std::string name() const {
    return cfg_.cell == CellType::kLstm ? "LSTM" : "GRU";
  }

 private:
  struct CellParams {
    // Gate-stacked weights: LSTM rows = 4*units (i,f,g,o); GRU rows = 3*units
    // (z,r,n). w: gates x input_dim, u: gates x units, b: gates.
    math::Matrix w, u;
    std::vector<double> b;
    // Adam moments.
    math::Matrix mw, vw, mu, vu;
    std::vector<double> mb, vb;
  };
  struct Head {
    std::vector<double> w;  // units
    double b = 0.0;
    std::vector<double> mw, vw;
    double mb = 0.0, vb = 0.0, mbb = 0.0;
  };
  /// Per-step per-layer cache for backprop.
  struct StepCache {
    std::vector<double> x;      // layer input
    std::vector<double> h_prev;
    std::vector<double> c_prev;  // LSTM only
    std::vector<double> gates;   // post-activation gate values
    std::vector<double> c;       // LSTM cell state
    std::vector<double> h;
  };

  void initialize(std::size_t in_dim, math::Rng& rng);
  std::size_t gate_count() const {
    return (cfg_.cell == CellType::kLstm ? 4 : 3) * cfg_.units;
  }
  /// One cell step; fills cache (if given) and returns h.
  std::vector<double> cell_step(const CellParams& p,
                                std::span<const double> x,
                                std::span<const double> h_prev,
                                std::span<double> c_inout,
                                StepCache* cache) const;
  /// Forward a whole window, returning per-step head outputs (scaled space);
  /// caches are per layer per step when requested.
  std::vector<double> forward(const math::Matrix& steps_scaled,
                              std::vector<std::vector<StepCache>>* caches) const;
  void adam_step(double lr);

  RnnConfig cfg_;
  std::size_t in_dim_ = 0;
  std::vector<CellParams> cells_;
  Head head_;
  // Gradient accumulators (allocated lazily in fit).
  std::vector<CellParams> grads_;
  std::vector<double> head_gw_;
  double head_gb_ = 0.0;
  data::StandardScaler x_scaler_;
  data::TargetScaler y_scaler_;
  std::uint64_t adam_t_ = 0;
  bool fitted_ = false;
};

}  // namespace highrpm::ml
