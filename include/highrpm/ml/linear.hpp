// Linear baselines from Table 4: ordinary least squares (Powell-style LR),
// Lasso (coordinate descent), Ridge (closed form), and SGD regression.
#pragma once

#include "highrpm/data/scaler.hpp"
#include "highrpm/math/rng.hpp"
#include "highrpm/ml/regressor.hpp"

namespace highrpm::ml {

/// Ordinary least-squares linear regression with intercept (QR solve).
class LinearRegression final : public Regressor {
 public:
  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  std::vector<double> predict(const math::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "LR"; }
  bool fitted() const override { return !coef_.empty(); }

  std::span<const double> coefficients() const noexcept { return coef_; }
  double intercept() const noexcept { return intercept_; }

 private:
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Ridge regression: (X^T X + lambda I) w = X^T y with unpenalized intercept.
class RidgeRegression final : public Regressor {
 public:
  explicit RidgeRegression(double lambda = 1.0);
  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  std::vector<double> predict(const math::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "RR"; }
  bool fitted() const override { return !coef_.empty(); }

 private:
  double lambda_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Lasso via cyclic coordinate descent on standardized features.
class LassoRegression final : public Regressor {
 public:
  explicit LassoRegression(double alpha = 0.01, std::size_t max_iter = 1000,
                           double tol = 1e-6);
  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  std::vector<double> predict(const math::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "LaR"; }
  bool fitted() const override { return !coef_.empty(); }

  /// Number of exactly-zero coefficients after fitting (sparsity check).
  std::size_t num_zero_coefficients() const;

 private:
  double alpha_;
  std::size_t max_iter_;
  double tol_;
  data::StandardScaler scaler_;
  std::vector<double> coef_;  // in standardized space
  double intercept_ = 0.0;    // in standardized space (mean of y)
};

/// Squared-error SGD regression (paper: squared_error, max_iter=10000) on
/// standardized features with inverse-scaling learning rate.
class SgdRegression final : public Regressor {
 public:
  explicit SgdRegression(double eta0 = 0.01, std::size_t max_iter = 10000,
                         double l2 = 1e-4, std::uint64_t seed = 17);
  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  std::vector<double> predict(const math::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "SGD"; }
  bool fitted() const override { return !coef_.empty(); }

 private:
  double eta0_;
  std::size_t max_iter_;
  double l2_;
  std::uint64_t seed_;
  data::StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace highrpm::ml
