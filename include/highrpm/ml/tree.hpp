// CART regression tree with squared-error splitting — the paper's ResModel
// learner (§4.2.1: "we tested all the linear and nonlinear methods ... DT
// worked best") and the base learner for the forest / boosting ensembles.
#pragma once

#include <cstdint>
#include <optional>

#include "highrpm/math/rng.hpp"
#include "highrpm/ml/regressor.hpp"

namespace highrpm::ml {

struct TreeConfig {
  std::size_t max_depth = 16;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// If set, consider only this many randomly-chosen features per split
  /// (used by RandomForest). nullopt = all features.
  std::optional<std::size_t> max_features = std::nullopt;
  std::uint64_t seed = 1234;
};

class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig cfg = {});

  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  /// Parallel row sweep over the tree (deterministic: one row per slot).
  std::vector<double> predict(const math::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "DT"; }
  bool fitted() const override { return !nodes_.empty(); }

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }

  /// Fit on a row subset (ensembles reuse the parent matrix without copying).
  void fit_subset(const math::Matrix& x, std::span<const double> y,
                  std::span<const std::size_t> rows);

 private:
  struct Node {
    // Leaf iff feature == SIZE_MAX; then value holds the prediction.
    std::size_t feature = SIZE_MAX;
    double threshold = 0.0;
    double value = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
  };

  std::size_t build(const math::Matrix& x, std::span<const double> y,
                    std::vector<std::size_t>& rows, std::size_t begin,
                    std::size_t end, std::size_t level, math::Rng& rng);

  TreeConfig cfg_;
  std::vector<Node> nodes_;
  std::size_t n_features_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace highrpm::ml
