// Multi-layer perceptron with backprop + Adam.
//
// This one network backs two different roles in the paper:
//  * the "NN" baseline of Table 4 (hidden_size=30, single output), and
//  * the SRR model of §4.3 (input = [P_Node, PMC...], one hidden layer,
//    two outputs: P_CPU and P_MEM).
// It supports warm-start fine-tuning (fit with reset=false), which the
// active-learning stage and the x86 transfer experiment rely on.
#pragma once

#include <cstdint>

#include "highrpm/data/scaler.hpp"
#include "highrpm/math/matrix.hpp"
#include "highrpm/math/rng.hpp"
#include "highrpm/ml/regressor.hpp"

namespace highrpm::ml {

enum class Activation { kReLU, kTanh, kSigmoid };

struct MlpConfig {
  std::vector<std::size_t> hidden{30};
  Activation activation = Activation::kTanh;
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;  // Adam step size
  double l2 = 1e-5;
  std::uint64_t seed = 42;
};

/// Multi-output MLP core. Handles input standardization and per-output
/// target standardization internally; fit/predict speak raw units.
class Mlp {
 public:
  explicit Mlp(MlpConfig cfg = {});

  /// Train on x (n x in_dim) against y (n x out_dim). reset=true reinitializes
  /// weights and refits scalers; reset=false fine-tunes the current weights
  /// with the existing scalers (epochs_override > 0 limits the pass count).
  void fit(const math::Matrix& x, const math::Matrix& y, bool reset = true,
           std::size_t epochs_override = 0);

  /// Caller-owned reusable buffers for the allocation-free predict path:
  /// the standardized input plus two ping-pong activation buffers.
  struct Scratch {
    std::vector<double> xs;
    std::vector<double> a;
    std::vector<double> b;
  };

  std::vector<double> predict_one(std::span<const double> row) const;
  /// predict_one into caller-owned output + scratch buffers: bit-identical
  /// results, no heap allocation once the buffers are warm. Thread-safe for
  /// concurrent calls on the same const model as long as each caller brings
  /// its own scratch.
  void predict_one_into(std::span<const double> row, std::vector<double>& out,
                        Scratch& scratch) const;
  math::Matrix predict(const math::Matrix& x) const;

  /// Caller-owned buffers for the batched allocation-free predict path:
  /// standardized inputs plus two ping-pong activation matrices.
  struct BatchScratch {
    math::Matrix xs;
    math::Matrix a;
    math::Matrix b;
  };

  /// Batched predict_one over the rows of `x` into a caller-owned
  /// `out` (x.rows() x out_dim): one matmul_nt_bias_into per layer instead
  /// of a dot product per output unit per row. Row r of `out` is
  /// bit-identical to predict_one_into(x.row(r), ...) — the GEMM kernel
  /// evaluates the same `b[o] + dot(w.row(o), cur)` expression in the same
  /// order. No allocation once the buffers are warm; thread-safe on a const
  /// model when each caller brings its own scratch.
  void predict_batch_into(const math::Matrix& x, math::Matrix& out,
                          BatchScratch& scratch) const;

  bool fitted() const noexcept { return fitted_; }
  std::size_t input_dim() const noexcept { return in_dim_; }
  std::size_t output_dim() const noexcept { return out_dim_; }
  const MlpConfig& config() const noexcept { return cfg_; }

  /// Total trainable parameter count (for the overhead bench / docs).
  std::size_t parameter_count() const;

 private:
  struct Layer {
    math::Matrix w;            // out x in
    std::vector<double> b;     // out
    math::Matrix mw, vw;       // Adam moments for w
    std::vector<double> mb, vb;
  };

  void initialize(std::size_t in_dim, std::size_t out_dim, math::Rng& rng);
  /// Forward pass saving activations; returns output layer activations.
  std::vector<double> forward(std::span<const double> x,
                              std::vector<std::vector<double>>* acts) const;
  double activate(double v) const;
  double activate_grad(double pre, double post) const;

  MlpConfig cfg_;
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  std::vector<Layer> layers_;
  data::StandardScaler x_scaler_;
  std::vector<data::TargetScaler> y_scalers_;
  std::uint64_t adam_t_ = 0;
  bool fitted_ = false;
};

/// Single-output Regressor adapter around Mlp — the Table-4 "NN" baseline.
class MlpRegressor final : public Regressor {
 public:
  explicit MlpRegressor(MlpConfig cfg = {});
  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  /// Blocked-matmul batch forward pass through the underlying network.
  std::vector<double> predict(const math::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "NN"; }
  bool fitted() const override { return net_.fitted(); }

  Mlp& network() noexcept { return net_; }

 private:
  MlpConfig cfg_;
  Mlp net_;
};

}  // namespace highrpm::ml
