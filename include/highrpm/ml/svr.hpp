// Support-vector regression baseline (Table 4).
//
// Full SMO-style kernel SVR is overkill for a power-model baseline, so this
// implements epsilon-insensitive SVR trained by subgradient descent, with an
// optional random-Fourier-feature (RFF) lift that approximates an RBF kernel
// — the same approximation family as sklearn's kernel_approximation.RBFSampler
// feeding LinearSVR. With rff_dim == 0 the model is a plain linear SVR.
#pragma once

#include "highrpm/data/scaler.hpp"
#include "highrpm/math/rng.hpp"
#include "highrpm/ml/regressor.hpp"

namespace highrpm::ml {

struct SvrConfig {
  double epsilon = 0.1;   // insensitive-tube half-width (standardized units)
  double c = 1.0;         // inverse regularization strength
  std::size_t epochs = 40;
  double eta0 = 0.05;
  /// Random Fourier feature dimension; 0 = linear SVR.
  std::size_t rff_dim = 64;
  /// RBF gamma; <= 0 means 1 / n_features ("scale"-like).
  double gamma = 0.0;
  std::uint64_t seed = 23;
};

class SvrRegressor final : public Regressor {
 public:
  explicit SvrRegressor(SvrConfig cfg = {});
  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "SVM"; }
  bool fitted() const override { return !w_.empty(); }

 private:
  std::vector<double> lift(std::span<const double> standardized) const;

  SvrConfig cfg_;
  data::StandardScaler scaler_;
  data::TargetScaler y_scaler_;
  // RFF projection (rff_dim x n_features) and phases; empty when linear.
  math::Matrix omega_;
  std::vector<double> phase_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace highrpm::ml
