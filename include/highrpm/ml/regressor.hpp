// Common interface for the pointwise (non-recurrent) regression models.
//
// All twelve Table-4 baselines plus HighRPM's internal ResModel and SRR are
// programmed against this interface so the evaluation harness can sweep them
// uniformly. Models own any internal preprocessing (scaling etc.) so that
// fit/predict always speak raw feature units.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "highrpm/math/matrix.hpp"

namespace highrpm::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Train on rows of x against targets y (y.size() == x.rows()).
  virtual void fit(const math::Matrix& x, std::span<const double> y) = 0;

  /// Predict a single sample (row width must match training width).
  virtual double predict_one(std::span<const double> row) const = 0;

  /// Batch prediction. The base implementation is the documented serial
  /// fallback: it allocates the output once and feeds predict_one row spans
  /// straight out of x (no per-row copies). Models with a cheaper batch
  /// formulation (one matvec, a blocked matmul forward pass, a parallel row
  /// sweep) override it; overrides must stay deterministic for any thread
  /// count.
  virtual std::vector<double> predict(const math::Matrix& x) const;

  /// Fresh unfitted copy with identical hyperparameters.
  virtual std::unique_ptr<Regressor> clone() const = 0;

  /// Human-readable short name ("LR", "DT", ...).
  virtual std::string name() const = 0;

  virtual bool fitted() const = 0;

 protected:
  /// Throws std::invalid_argument unless x/y agree and are non-empty.
  static void check_training_input(const math::Matrix& x,
                                   std::span<const double> y);
  /// Throws std::logic_error / std::invalid_argument on bad predict calls.
  static void check_predict_input(bool is_fitted, std::size_t expected_width,
                                  std::span<const double> row);
  /// Batch-predict variant of the check above (validates x.cols()).
  static void check_batch_input(bool is_fitted, std::size_t expected_width,
                                const math::Matrix& x);
};

}  // namespace highrpm::ml
