// Factory for the twelve Table-4 baseline models the paper compares against.
// Pointwise models come back as ml::Regressor; the two recurrent baselines
// (GRU, LSTM) are SequenceRegressors "built based on the structure of
// HighRPM" (§5.4) and are constructed via make_rnn_baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "highrpm/ml/regressor.hpp"
#include "highrpm/ml/rnn.hpp"

namespace highrpm::ml {

/// Names of the ten pointwise baselines in Table-4 order.
std::vector<std::string> pointwise_baseline_names();

/// Construct a pointwise baseline by Table-4 abbreviation
/// ("LR", "LaR", "RR", "SGD", "DT", "RF", "GB", "KNN", "SVM", "NN").
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Regressor> make_baseline(const std::string& abbreviation,
                                         std::uint64_t seed = 1);

/// Construct one of the recurrent baselines ("GRU" or "LSTM"), with the
/// paper's #units=2 and the HighRPM window structure.
SequenceRegressor make_rnn_baseline(const std::string& abbreviation,
                                    std::uint64_t seed = 1);

/// All twelve names, Table-4 order (pointwise then RNN).
std::vector<std::string> all_baseline_names();

}  // namespace highrpm::ml
