// Cross-validated hyperparameter search — the paper's §5.4 tunes every
// fine-tuned baseline "with GridSearch ... in each cross-validation".
// Candidates are model factories so a grid over any hyperparameter of any
// Regressor can be expressed without reflection.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "highrpm/math/matrix.hpp"
#include "highrpm/ml/regressor.hpp"

namespace highrpm::ml {

using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

enum class CvMetric { kMape, kRmse, kMae };

struct GridSearchConfig {
  std::size_t folds = 5;  // paper: 5-fold cross-validation
  CvMetric metric = CvMetric::kMape;
  std::uint64_t seed = 911;
  bool shuffle = true;
};

struct GridSearchResult {
  std::size_t best_index = 0;
  double best_score = 0.0;
  /// Fold-averaged CV score per candidate, candidate order preserved.
  std::vector<double> scores;
};

/// Evaluate every candidate with k-fold CV on (x, y) and return the scores
/// and the argmin. Throws std::invalid_argument on an empty grid or data
/// too small for the fold count.
GridSearchResult grid_search(std::span<const RegressorFactory> candidates,
                             const math::Matrix& x, std::span<const double> y,
                             const GridSearchConfig& cfg = {});

/// Convenience: run grid_search and return the winning model trained on the
/// full dataset.
std::unique_ptr<Regressor> fit_best(std::span<const RegressorFactory> candidates,
                                    const math::Matrix& x,
                                    std::span<const double> y,
                                    const GridSearchConfig& cfg = {});

}  // namespace highrpm::ml
