// K-nearest-neighbour regression (Table 4: #neighbors=3). Brute-force search
// on standardized features — training sets here are a few thousand rows, so
// an index structure would cost more than it saves.
#pragma once

#include "highrpm/data/scaler.hpp"
#include "highrpm/ml/regressor.hpp"

namespace highrpm::ml {

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(std::size_t k = 3, bool distance_weighted = false);
  void fit(const math::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> row) const override;
  /// Parallel row sweep; each query row scans the training set independently.
  std::vector<double> predict(const math::Matrix& x) const override;
  std::unique_ptr<Regressor> clone() const override;
  std::string name() const override { return "KNN"; }
  bool fitted() const override { return !y_.empty(); }

 private:
  std::size_t k_;
  bool distance_weighted_;
  data::StandardScaler scaler_;
  math::Matrix x_;  // standardized training features
  std::vector<double> y_;
};

}  // namespace highrpm::ml
