// Collector: runs a workload on the simulated node in "standalone mode" and
// produces the aligned measurement record everything downstream consumes —
// sampled PMC features, sparse IPMI node-power readings, dense rig-based
// component readings, and the simulator ground truth (kept only for
// evaluation). This is the boundary that preserves the paper's deployment
// contract: highrpm::core sees only what a real system would expose.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "highrpm/data/dataset.hpp"
#include "highrpm/measure/direct.hpp"
#include "highrpm/measure/ipmi.hpp"
#include "highrpm/measure/pmc_sampler.hpp"
#include "highrpm/sim/node.hpp"

namespace highrpm::measure {

struct CollectorConfig {
  IpmiConfig ipmi;
  DirectRigConfig rig;
  PmcSamplerConfig pmc;
};

/// Everything recorded while a workload ran.
struct CollectedRun {
  std::string workload_name;
  std::string suite;

  /// Feature table: one row per tick, columns = PMC event names.
  /// Targets: "P_NODE" (dense ground-truth node power), "P_CPU" and "P_MEM"
  /// (direct-rig readings, the paper's component ground truth).
  data::Dataset dataset;

  /// True iff an IPMI reading is available at this tick (set A vs. set B in
  /// the StaticTRR construction of §4.2.1).
  std::vector<bool> measured;
  std::vector<IpmiReading> ipmi_readings;

  /// Full simulator ground truth — evaluation only.
  sim::Trace truth;

  /// Multi-tenant record (collect_tenants only; 0 / empty otherwise).
  /// tenant_pmcs row t is the K tenants' per-cgroup PMC rates concatenated
  /// in tenant order (K * kNumPmcEvents columns) — per-cgroup counters are
  /// kernel-side aggregation, so they are recorded exactly (no sampling
  /// noise; only the node-level PMU view in `dataset` is noisy).
  /// tenant_power row t holds the K ground-truth attributed tenant watts —
  /// the attribution training labels (the stand-in for SmartWatts' per-
  /// container rig).
  std::size_t num_tenants = 0;
  math::Matrix tenant_pmcs;
  math::Matrix tenant_power;

  std::size_t num_ticks() const noexcept { return dataset.num_samples(); }
  /// Indices of measured (labeled) ticks.
  std::vector<std::size_t> measured_indices() const;
};

/// Collector is const-callable and thread-safe: collect() builds all of its
/// instruments (simulator, IPMI, rig, PMC sampler) locally from the run
/// seed and never touches shared mutable state, so independent runs can be
/// collected concurrently from one Collector instance. Each collect() call
/// itself stays single-threaded — parallelism lives above, in
/// core::collect_all_suites.
class Collector {
 public:
  explicit Collector(CollectorConfig cfg = {});

  /// Run `ticks` seconds of the workload at the platform's default DVFS
  /// level (or `freq_level` when given) and record everything.
  CollectedRun collect(const sim::PlatformConfig& platform,
                       const sim::Workload& workload, std::size_t ticks,
                       std::uint64_t seed,
                       std::size_t freq_level = SIZE_MAX) const;

  /// Multi-tenant collect: run K co-located workloads on one simulated
  /// node and additionally record each tenant's per-cgroup PMC rates and
  /// ground-truth attributed power (CollectedRun::tenant_*). The node-level
  /// record (dataset / measured / ipmi_readings) is built by the exact same
  /// instrument stack as collect(), over the aggregate tick.
  CollectedRun collect_tenants(const sim::PlatformConfig& platform,
                               std::span<const sim::Workload> workloads,
                               std::size_t ticks, std::uint64_t seed,
                               std::size_t freq_level = SIZE_MAX) const;

  const CollectorConfig& config() const noexcept { return cfg_; }

 private:
  CollectorConfig cfg_;
};

/// Feature-name list used for all collected datasets (the PMC event names).
std::vector<std::string> pmc_feature_names();

}  // namespace highrpm::measure
