// The direct-measurement rig of paper §5.2: jumper-wired voltage-domain
// registers (0x8b / 0x8c) read at 1 Sa/s with a 0.1 W error. It supplies
// dense ground-truth component power for *training and evaluation only* —
// the deployed HighRPM never needs it, exactly as in the paper (the rig
// "is unsuitable for large-scale deployments").
#pragma once

#include <cstdint>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/sim/trace.hpp"

namespace highrpm::measure {

struct DirectRigConfig {
  double reading_error_w = 0.1;  // paper: "a power reading error of 0.1W"
  std::uint64_t seed = 401;
};

struct ComponentReading {
  double time_s = 0.0;
  double cpu_w = 0.0;
  double mem_w = 0.0;
};

class DirectMeasurementRig {
 public:
  explicit DirectMeasurementRig(DirectRigConfig cfg = {});

  ComponentReading read(const sim::TickSample& tick);
  std::vector<ComponentReading> read_trace(const sim::Trace& trace);

  const DirectRigConfig& config() const noexcept { return cfg_; }

 private:
  DirectRigConfig cfg_;
  math::Rng rng_;
};

}  // namespace highrpm::measure
