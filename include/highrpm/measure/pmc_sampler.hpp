// PMC sampling subsystem: the stand-in for the paper's loadable kernel
// module that reads per-core counters at 1 Sa/s and aggregates them (§5.2).
// Real PMU sampling is imperfect — counters are read one core at a time and
// may be multiplexed — so the sampler adds configurable relative read noise
// and (optionally) event multiplexing, where only a subset of events is
// live each tick and the rest are extrapolated from their last value.
#pragma once

#include <cstdint>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/sim/pmc.hpp"
#include "highrpm/sim/trace.hpp"

namespace highrpm::measure {

struct PmcSamplerConfig {
  double relative_noise = 0.015;  // per-event relative read noise
  /// Number of hardware counter slots; if < kNumPmcEvents the sampler
  /// multiplexes, rotating which events are live each tick. 0 = no
  /// multiplexing (all events live every tick).
  std::size_t counter_slots = 0;
  std::uint64_t seed = 601;
};

class PmcSampler {
 public:
  explicit PmcSampler(PmcSamplerConfig cfg = {});

  /// Sampled counter rates for one tick.
  sim::PmcVector sample(const sim::TickSample& tick);

  /// Sample a full trace into an (n x kNumPmcEvents) matrix.
  math::Matrix sample_trace(const sim::Trace& trace);

  const PmcSamplerConfig& config() const noexcept { return cfg_; }
  void reset();

 private:
  PmcSamplerConfig cfg_;
  math::Rng rng_;
  sim::PmcVector last_{};
  std::size_t rotation_ = 0;
  bool has_last_ = false;
};

}  // namespace highrpm::measure
