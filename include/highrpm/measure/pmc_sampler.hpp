// PMC sampling subsystem: the stand-in for the paper's loadable kernel
// module that reads per-core counters at 1 Sa/s and aggregates them (§5.2).
// Real PMU sampling is imperfect — counters are read one core at a time and
// may be multiplexed — so the sampler adds configurable relative read noise
// and (optionally) event multiplexing, where only a subset of events is
// live each tick and the rest are extrapolated from their last value.
#pragma once

#include <cstdint>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/sim/pmc.hpp"
#include "highrpm/sim/trace.hpp"

namespace highrpm::measure {

struct PmcSamplerConfig {
  double relative_noise = 0.015;  // per-event relative read noise
  /// Number of hardware counter slots; if < kNumPmcEvents the sampler
  /// multiplexes, rotating which events are live each tick. 0 = no
  /// multiplexing (all events live every tick).
  std::size_t counter_slots = 0;
  /// Fresh counter read every `sample_stride` ticks; in between, the whole
  /// previous sample is held (the adaptive controller's sparse-mode PMC
  /// cadence). 1 = read every tick. Must be >= 1.
  std::size_t sample_stride = 1;
  std::uint64_t seed = 601;
};

class PmcSampler {
 public:
  explicit PmcSampler(PmcSamplerConfig cfg = {});

  /// Sampled counter rates for one tick.
  sim::PmcVector sample(const sim::TickSample& tick);

  /// Sample a full trace into an (n x kNumPmcEvents) matrix.
  math::Matrix sample_trace(const sim::Trace& trace);

  /// Rate-change API (adaptive sampling): change the read stride
  /// mid-stream. Takes effect when the next scheduled fresh read completes,
  /// so the read schedule stays a pure function of the stride history.
  /// Rejects a zero stride at the boundary (same contract as the
  /// constructor).
  void set_sample_stride(std::size_t stride);

  const PmcSamplerConfig& config() const noexcept { return cfg_; }
  void reset();

 private:
  PmcSamplerConfig cfg_;
  math::Rng rng_;
  sim::PmcVector last_{};
  std::size_t rotation_ = 0;
  bool has_last_ = false;
  std::size_t ticks_seen_ = 0;
  /// Tick index of the next fresh read (accumulated so mid-stream stride
  /// changes keep a well-defined schedule; for stride 1 every tick reads).
  std::size_t next_sample_tick_ = 0;
};

}  // namespace highrpm::measure
