// measure::NodeTickStream — the Collector's tick loop as an incremental
// stream.
//
// Collector::collect materializes a whole run before anything downstream
// sees a sample; a resident monitoring daemon instead needs one tick at a
// time, produced as simulated wall time advances. NodeTickStream wraps the
// same instrument stack (NodeSimulator -> PmcSampler -> IpmiSensor) behind
// a next() call and derives instrument seeds exactly the way Collector
// does, so a stream and a collect() over the same (platform, workload,
// seed) observe identical PMC rows and identical IM reading schedules —
// serve's determinism tests compare the daemon's output against the serial
// facade replaying this equivalence.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "highrpm/measure/collector.hpp"
#include "highrpm/measure/ipmi.hpp"
#include "highrpm/measure/pmc_sampler.hpp"
#include "highrpm/sim/node.hpp"

namespace highrpm::measure {

/// Tenant capacity of a StreamTick. Fixed (not dynamic) so Enqueued ring
/// slots stay trivially copyable and preallocated; kept modest because the
/// array rides in EVERY ring slot — a daemon wanting more co-located
/// tenants per node pays ring memory, not a redesign. The facade/fleet
/// paths have no such cap (they take caller-sized tenant rows).
inline constexpr std::size_t kStreamMaxTenants = 4;

/// One streamed node tick: the online observables (sampled PMC rates plus
/// the sparse IM reading) and the simulator truth kept for evaluation only
/// — consumers estimating power must not read the truth_* fields.
struct StreamTick {
  std::uint64_t tick = 0;  // 0-based tick index within the stream
  sim::PmcVector pmcs{};   // sampled PMC rates (the model input row)
  bool has_reading = false;
  double reading_w = 0.0;  // IM node power, valid iff has_reading
  double truth_node_w = 0.0;
  double truth_cpu_w = 0.0;
  double truth_mem_w = 0.0;
  /// Multi-tenant observables: the first num_tenants * kNumPmcEvents
  /// entries of tenant_pmcs are the per-cgroup PMC rates concatenated in
  /// tenant order (exact, like Collector::collect_tenants records them).
  /// num_tenants == 0 for single-workload streams.
  std::uint32_t num_tenants = 0;
  std::array<double, kStreamMaxTenants * sim::kNumPmcEvents> tenant_pmcs{};
};

/// Infinite per-node tick stream. Deterministic: the sequence of StreamTicks
/// is a pure function of (platform, workload, seed, cfg) — identical to the
/// rows Collector::collect(platform, workload, ., seed) would record, tick
/// for tick, including which ticks carry an IM reading.
class NodeTickStream {
 public:
  NodeTickStream(const sim::PlatformConfig& platform,
                 const sim::Workload& workload, std::uint64_t seed,
                 CollectorConfig cfg = {});

  /// Multi-tenant stream: K co-located workloads on one node, mirroring
  /// Collector::collect_tenants tick for tick (same simulator, same
  /// instrument seeds, same IM schedule); every StreamTick carries the K
  /// tenants' exact per-cgroup PMC rows. Throws std::invalid_argument when
  /// workloads.size() exceeds kStreamMaxTenants (the ring-slot capacity).
  NodeTickStream(const sim::PlatformConfig& platform,
                 std::span<const sim::Workload> workloads, std::uint64_t seed,
                 CollectorConfig cfg = {});

  /// Produce the next tick. Never fails; the simulated node runs forever.
  StreamTick next();

  std::uint64_t ticks_produced() const noexcept { return produced_; }
  const IpmiConfig& ipmi_config() const noexcept { return ipmi_.config(); }
  const PmcSamplerConfig& pmc_config() const noexcept {
    return sampler_.config();
  }

  /// Rate-change passthroughs (adaptive sampling): retune the underlying
  /// instruments mid-stream. Validation and effect timing are the
  /// instruments' own (IpmiSensor::set_interval / PmcSampler::
  /// set_sample_stride); determinism is preserved — the tick sequence stays
  /// a pure function of (platform, workload, seed, cfg, rate-change
  /// history).
  void set_im_interval(double interval_s) { ipmi_.set_interval(interval_s); }
  void set_pmc_stride(std::size_t stride) {
    sampler_.set_sample_stride(stride);
  }

 private:
  sim::NodeSimulator node_;
  IpmiSensor ipmi_;
  PmcSampler sampler_;
  std::uint64_t produced_ = 0;
};

}  // namespace highrpm::measure
