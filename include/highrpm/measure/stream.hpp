// measure::NodeTickStream — the Collector's tick loop as an incremental
// stream.
//
// Collector::collect materializes a whole run before anything downstream
// sees a sample; a resident monitoring daemon instead needs one tick at a
// time, produced as simulated wall time advances. NodeTickStream wraps the
// same instrument stack (NodeSimulator -> PmcSampler -> IpmiSensor) behind
// a next() call and derives instrument seeds exactly the way Collector
// does, so a stream and a collect() over the same (platform, workload,
// seed) observe identical PMC rows and identical IM reading schedules —
// serve's determinism tests compare the daemon's output against the serial
// facade replaying this equivalence.
#pragma once

#include <cstdint>
#include <optional>

#include "highrpm/measure/collector.hpp"
#include "highrpm/measure/ipmi.hpp"
#include "highrpm/measure/pmc_sampler.hpp"
#include "highrpm/sim/node.hpp"

namespace highrpm::measure {

/// One streamed node tick: the online observables (sampled PMC rates plus
/// the sparse IM reading) and the simulator truth kept for evaluation only
/// — consumers estimating power must not read the truth_* fields.
struct StreamTick {
  std::uint64_t tick = 0;  // 0-based tick index within the stream
  sim::PmcVector pmcs{};   // sampled PMC rates (the model input row)
  bool has_reading = false;
  double reading_w = 0.0;  // IM node power, valid iff has_reading
  double truth_node_w = 0.0;
  double truth_cpu_w = 0.0;
  double truth_mem_w = 0.0;
};

/// Infinite per-node tick stream. Deterministic: the sequence of StreamTicks
/// is a pure function of (platform, workload, seed, cfg) — identical to the
/// rows Collector::collect(platform, workload, ., seed) would record, tick
/// for tick, including which ticks carry an IM reading.
class NodeTickStream {
 public:
  NodeTickStream(const sim::PlatformConfig& platform,
                 const sim::Workload& workload, std::uint64_t seed,
                 CollectorConfig cfg = {});

  /// Produce the next tick. Never fails; the simulated node runs forever.
  StreamTick next();

  std::uint64_t ticks_produced() const noexcept { return produced_; }
  const IpmiConfig& ipmi_config() const noexcept { return ipmi_.config(); }
  const PmcSamplerConfig& pmc_config() const noexcept {
    return sampler_.config();
  }

  /// Rate-change passthroughs (adaptive sampling): retune the underlying
  /// instruments mid-stream. Validation and effect timing are the
  /// instruments' own (IpmiSensor::set_interval / PmcSampler::
  /// set_sample_stride); determinism is preserved — the tick sequence stays
  /// a pure function of (platform, workload, seed, cfg, rate-change
  /// history).
  void set_im_interval(double interval_s) { ipmi_.set_interval(interval_s); }
  void set_pmc_stride(std::size_t stride) {
    sampler_.set_sample_stride(stride);
  }

 private:
  sim::NodeSimulator node_;
  IpmiSensor ipmi_;
  PmcSampler sampler_;
  std::uint64_t produced_ = 0;
};

}  // namespace highrpm::measure
