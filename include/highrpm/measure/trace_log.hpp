// Power-log persistence: save a CollectedRun to a CSV power log and load it
// back. This is the substrate for StaticTRR's primary use case — offline
// "historical power log analysis" (paper §4.2) — and lets monitoring data
// collected on one machine be analyzed on another.
//
// Format: one row per tick with columns
//   tick, <PMC events...>, P_NODE, P_CPU, P_MEM, measured, ipmi_w,
//   truth_cpu, truth_mem, truth_other
// `measured` is 0/1; `ipmi_w` is the IM reading at measured ticks (0
// elsewhere). Ground-truth columns are optional on load (files from real
// deployments won't have them); absent truth is reconstructed from the
// target columns so evaluation helpers keep working.
#pragma once

#include <string>

#include "highrpm/measure/collector.hpp"

namespace highrpm::measure {

/// Write the run to `path` (CSV). Throws std::runtime_error on I/O error.
void save_run(const std::string& path, const CollectedRun& run);

/// Read a run back. Throws std::runtime_error on parse/shape errors.
CollectedRun load_run(const std::string& path);

}  // namespace highrpm::measure
