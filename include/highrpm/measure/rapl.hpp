// Vendor-specific power model (VPM) interface: a simulated RAPL exposing the
// cumulative energy counters the paper reads via `perf` on the x86 platform
// (§6.3): /power/energy-pkg/ and /power/energy-ram/. Counters are in
// microjoules, monotonically increasing, and wrap at a configurable width —
// consumers differentiate successive reads to obtain power, exactly as perf
// does. The Table-9 experiment deliberately sparsifies these readings to
// 0.1 Sa/s to emulate the IPMI-class miss_interval.
#pragma once

#include <cstdint>

#include "highrpm/math/rng.hpp"
#include "highrpm/sim/trace.hpp"

namespace highrpm::measure {

struct RaplConfig {
  double counter_resolution_uj = 61.0;  // typical RAPL energy unit (~61 uJ)
  std::uint64_t wrap_bits = 32;         // counter width before wraparound
  double relative_error = 0.01;         // RAPL model error vs. true power
  std::uint64_t seed = 501;
};

class RaplInterface {
 public:
  explicit RaplInterface(RaplConfig cfg = {});

  /// Accumulate one tick of energy into the counters.
  void advance(const sim::TickSample& tick);

  /// Raw cumulative counters (wrapping, quantized to the energy unit).
  std::uint64_t energy_pkg_uj() const noexcept { return wrap(pkg_uj_); }
  std::uint64_t energy_ram_uj() const noexcept { return wrap(ram_uj_); }

  /// Average power between two raw counter reads taken dt seconds apart,
  /// handling a single wraparound.
  double power_from_counters(std::uint64_t before, std::uint64_t after,
                             double dt_s) const;

  const RaplConfig& config() const noexcept { return cfg_; }

 private:
  std::uint64_t wrap(double uj) const noexcept;

  RaplConfig cfg_;
  math::Rng rng_;
  double pkg_uj_ = 0.0;
  double ram_uj_ = 0.0;
};

}  // namespace highrpm::measure
