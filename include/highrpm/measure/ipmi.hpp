// General integrated measurement (GIM): a simulated IPMI/BMC node-power
// sensor. It reproduces the properties the paper attributes to IPMI-class
// readings (§2.2): a long read-out interval (>= 10 s, i.e. <= 0.1 Sa/s),
// coarse quantization, a small sensor error, and a read-out delay — the
// reading returned at poll time reflects the power `readout_delay_s` ago.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/sim/trace.hpp"

namespace highrpm::measure {

struct IpmiConfig {
  double interval_s = 10.0;      // seconds between readings (miss_interval)
  double readout_delay_s = 1.0;  // staleness of the returned value
  double quantization_w = 1.0;   // reading resolution in watts
  double sensor_noise_w = 0.5;   // gaussian sensor error
  std::uint64_t seed = 301;
};

struct IpmiReading {
  double time_s = 0.0;   // when the reading became available
  double power_w = 0.0;  // quantized, delayed node power
  std::size_t tick_index = 0;
};

/// Streaming IPMI sensor: feed every simulator tick; a reading pops out
/// every `interval_s` ticks.
class IpmiSensor {
 public:
  explicit IpmiSensor(IpmiConfig cfg = {});

  /// Offer one tick; returns a reading when the interval elapses.
  std::optional<IpmiReading> offer(const sim::TickSample& tick);

  /// Convenience: sample a whole trace at once.
  std::vector<IpmiReading> sample_trace(const sim::Trace& trace);

  /// Rate-change API (adaptive sampling): change the readout interval
  /// mid-stream. The new cadence takes effect after the next scheduled
  /// reading — already-scheduled readings are never moved, so the call is
  /// idempotent and the reading schedule stays a pure function of the
  /// interval history. Rejects non-finite or sub-second intervals at the
  /// boundary (same contract as the constructor).
  void set_interval(double interval_s);

  const IpmiConfig& config() const noexcept { return cfg_; }
  void reset();

 private:
  IpmiConfig cfg_;
  math::Rng rng_;
  std::size_t ticks_seen_ = 0;
  /// Tick index of the next reading. Accumulated (rather than derived from
  /// `idx % interval`) so mid-stream interval changes keep a well-defined
  /// schedule; for a constant interval the two formulations are identical.
  std::size_t next_reading_tick_ = 0;
  std::deque<std::pair<std::size_t, double>> history_;  // (tick, node power)
};

}  // namespace highrpm::measure
