// Deterministic sensor fault injection.
//
// Real deployments of the paper's measurement substrate misbehave in ways a
// simulator's clean ticks never do: BMC polls time out (dropped readings),
// sensors latch a stale value (stuck-at), transients corrupt a poll (spike
// outliers), the readout clock drifts against the sampling clock (jitter),
// and PMU reads come back zeroed or NaN after counter overflow or
// multiplexing glitches. FaultInjector reproduces each pathology from a
// seed so robustness is testable (tests/faults) and benchmarkable
// (bench_fault_robustness); the wrappers below drop into any code path that
// uses IpmiSensor / PmcSampler, and inject_faults corrupts an
// already-collected run for offline experiments.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "highrpm/math/rng.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/measure/ipmi.hpp"
#include "highrpm/measure/pmc_sampler.hpp"

namespace highrpm::measure {

/// Per-pathology fault rates. Everything defaults to 0, i.e. a clean
/// pass-through: an injector with a default profile is an exact identity.
struct FaultProfile {
  // --- IM (IPMI/BMC) reading faults ---
  /// P(a reading is lost entirely — the consumer sees a longer interval).
  double im_dropout = 0.0;
  /// P(a reading repeats the last delivered value instead of the real one).
  double im_stuck = 0.0;
  /// P(a reading is replaced by an outlier of `spike_scale` times its value).
  double im_spike = 0.0;
  double spike_scale = 3.0;
  /// Readout-clock jitter: each reading's delivery is delayed by a uniform
  /// 0..im_jitter_ticks ticks. Delays can reorder deliveries or land two
  /// readings on the same tick (duplicate timestamps downstream).
  std::size_t im_jitter_ticks = 0;
  // --- PMC row faults ---
  /// P(a sampled counter row comes back all-NaN).
  double pmc_nan = 0.0;
  /// P(a sampled counter row comes back all-zero).
  double pmc_zero = 0.0;
  std::uint64_t seed = 901;

  /// True when any fault rate is non-zero.
  bool any() const noexcept;
};

/// Cumulative tallies of what the injector actually did.
struct FaultCounts {
  std::size_t im_offered = 0;  // readings that reached the injector
  std::size_t im_dropped = 0;
  std::size_t im_stuck = 0;
  std::size_t im_spiked = 0;
  std::size_t im_delayed = 0;
  std::size_t pmc_rows = 0;  // rows that reached the injector
  std::size_t pmc_nan_rows = 0;
  std::size_t pmc_zero_rows = 0;
};

/// Seeded, deterministic fault source. The IM and PMC paths draw from
/// independent forked streams, so the fault sequence on one path does not
/// depend on how often the other is exercised.
class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile = {});

  /// Streaming IM path: call once per tick with this tick's sensor output
  /// (nullopt when the sensor interval didn't elapse). Ticking every step is
  /// what lets jitter-delayed readings surface later; a delayed reading
  /// keeps its original time/tick_index (it is stale, exactly like a slow
  /// BMC poll).
  std::optional<IpmiReading> offer_im(std::optional<IpmiReading> reading);

  /// Batch IM path: corrupt one reading without the delivery queue; jitter
  /// shifts tick_index/time_s forward instead. nullopt = dropped.
  std::optional<IpmiReading> corrupt_reading(IpmiReading reading);

  /// Corrupt one sampled PMC row in place.
  void corrupt_pmc_row(std::span<double> row);
  sim::PmcVector corrupt_pmc(sim::PmcVector v);

  void reset();
  const FaultProfile& profile() const noexcept { return profile_; }
  const FaultCounts& counts() const noexcept { return counts_; }

 private:
  /// Dropout/stuck/spike on a reading's value; false = dropped.
  bool apply_value_faults(IpmiReading& reading);

  FaultProfile profile_;
  math::Rng im_rng_;
  math::Rng pmc_rng_;
  double last_delivered_w_ = 0.0;
  bool has_last_delivered_ = false;
  // (remaining delay ticks, reading) for jitter-delayed deliveries.
  std::deque<std::pair<std::size_t, IpmiReading>> pending_;
  FaultCounts counts_;
};

/// IpmiSensor with a fault layer between the sensor and the consumer.
class FaultyIpmiSensor {
 public:
  explicit FaultyIpmiSensor(IpmiConfig cfg = {}, FaultProfile profile = {});

  std::optional<IpmiReading> offer(const sim::TickSample& tick);
  std::vector<IpmiReading> sample_trace(const sim::Trace& trace);
  void reset();

  const IpmiSensor& inner() const noexcept { return inner_; }
  const FaultCounts& counts() const noexcept { return injector_.counts(); }

 private:
  IpmiSensor inner_;
  FaultInjector injector_;
};

/// PmcSampler with a fault layer on every sampled row.
class FaultyPmcSampler {
 public:
  explicit FaultyPmcSampler(PmcSamplerConfig cfg = {},
                            FaultProfile profile = {});

  sim::PmcVector sample(const sim::TickSample& tick);
  math::Matrix sample_trace(const sim::Trace& trace);
  void reset();

  const PmcSampler& inner() const noexcept { return inner_; }
  const FaultCounts& counts() const noexcept { return injector_.counts(); }

 private:
  PmcSampler inner_;
  FaultInjector injector_;
};

/// Corrupt an already-collected clean run: every PMC row and IPMI reading
/// passes through a fresh FaultInjector seeded from the profile. `measured`
/// is rebuilt from the surviving (possibly jitter-shifted) readings, so the
/// result looks exactly like the collector had recorded the faulty sensors.
/// Ground truth (`truth`, dataset targets) is left untouched — evaluation
/// against the clean reference stays valid.
CollectedRun inject_faults(const CollectedRun& run,
                           const FaultProfile& profile);

}  // namespace highrpm::measure
