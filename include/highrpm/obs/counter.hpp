// obs::Counter — the always-on atomic event counter.
//
// Counter is deliberately NOT gated by HIGHRPM_OBS_ENABLED: components use
// it for *functional* diagnostics (DynamicTrr::rejected_readings(),
// HighRpm::held_rows(), ...) whose values callers assert on, so the type
// must keep counting even in a no-op observability build. What the
// HIGHRPM_OBS gate removes is the *telemetry* layer on top — registry
// registration, span timing, and export (see registry.hpp / span.hpp).
//
// All operations use relaxed atomics: counters carry no ordering contract,
// only totals, and at HighRPM's increment rates (a handful per monitoring
// tick) a relaxed fetch_add is far below measurement noise. Copying loads
// the source's value — that keeps classes with Counter members (HighRpm is
// cloned per compute node by MonitorService) copyable, each copy continuing
// from the source's count.
//
// Templated over an atomics backend (verify/backend.hpp) so the model
// checker can prove fetch_add loses no updates and the value is monotone
// under add(); production uses the Counter alias (plain std::atomic).
// obs/ is the sanctioned home for relaxed atomics in the memory-order-audit
// lint — no per-line justification needed here.
#pragma once

#include <atomic>
#include <cstdint>

#include "highrpm/verify/backend.hpp"

namespace highrpm::obs {

template <typename Backend = highrpm::verify::StdBackend>
class BasicCounter {
 public:
  constexpr BasicCounter() noexcept = default;

  BasicCounter(const BasicCounter& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  BasicCounter& operator=(const BasicCounter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  typename Backend::template Atomic<std::uint64_t> value_{0};
};

/// Production instantiation — plain std::atomic, zero template overhead.
using Counter = BasicCounter<>;

}  // namespace highrpm::obs
