// obs::Span — RAII tracing span: times a scope and records the duration
// (nanoseconds) into a Histogram on destruction.
//
// Spans nest: each thread keeps its own depth via a thread_local, so spans
// opened inside thread-pool workers attach to the worker's own stack — a
// parallel_for task timing itself never interleaves with the caller's span.
// Span::depth() exposes the current thread's nesting level (0 outside any
// span), which tests use to prove nesting and pool-awareness.
//
// Cost model: when the registry's runtime switch is off, constructing a
// span is one relaxed atomic load and no clock read. When on, it is two
// steady_clock reads plus one histogram record (~tens of ns) — small
// against the microsecond-scale model steps it wraps, and bench_overhead
// measures the end-to-end difference (EXPERIMENTS.md "Self-overhead").
//
// With HIGHRPM_OBS_ENABLED compiled to 0 the span is an empty shell: no
// members beyond the mandatory byte, every method a constant.
#pragma once

#ifndef HIGHRPM_OBS_ENABLED
#define HIGHRPM_OBS_ENABLED 1
#endif

#include <cstdint>

#include "highrpm/obs/registry.hpp"

#if HIGHRPM_OBS_ENABLED
#include <chrono>
#endif

namespace highrpm::obs {

#if HIGHRPM_OBS_ENABLED

inline namespace obs_enabled {

namespace detail {
/// Current thread's span nesting depth. Defined inline so the header stays
/// self-contained; one instance per thread across the whole process.
inline thread_local std::size_t t_span_depth = 0;
}  // namespace detail

class Span {
 public:
  /// Time into an already-resolved histogram (the hot-path form — pair it
  /// with a function-local static Histogram& lookup).
  explicit Span(Histogram& hist) noexcept {
    if (!Registry::instance().enabled()) return;
    hist_ = &hist;
    ++detail::t_span_depth;
    start_ = std::chrono::steady_clock::now();
  }

  /// Convenience form: registry lookup by name on every construction. Fine
  /// for per-run stages (fit, restore); avoid in per-tick code.
  explicit Span(std::string_view name)
      : Span(Registry::instance().histogram(name)) {}

  ~Span() {
    if (hist_ == nullptr) return;
    hist_->record(elapsed_ns());
    --detail::t_span_depth;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is live (registry was enabled at construction).
  bool active() const noexcept { return hist_ != nullptr; }

  /// Nanoseconds since construction (0 while inactive).
  std::uint64_t elapsed_ns() const noexcept {
    if (hist_ == nullptr) return 0;
    const auto d = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    return ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
  }

  /// Current thread's nesting depth (0 outside any active span).
  static std::size_t depth() noexcept { return detail::t_span_depth; }

 private:
  Histogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace obs_enabled

#else  // !HIGHRPM_OBS_ENABLED

inline namespace obs_disabled {

/// No-op shell: construction and destruction compile to nothing.
class Span {
 public:
  explicit Span(Histogram&) noexcept {}
  explicit Span(std::string_view) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  bool active() const noexcept { return false; }
  std::uint64_t elapsed_ns() const noexcept { return 0; }
  static std::size_t depth() noexcept { return 0; }
};

}  // namespace obs_disabled

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace highrpm::obs
