// obs::Registry — the process-wide telemetry registry.
//
// Named counters and histograms live here; instrumented code looks each one
// up once (function-local static reference) and then increments lock-free:
//
//   static obs::Counter& rejected =
//       obs::Registry::instance().counter("core.dynamic_trr.rejected");
//   rejected.add();
//
// Determinism contract: counter values are pure functions of the work
// executed, never of the clock or of scheduling, so they may appear in
// asserted-on output. Histogram contents are wall-clock durations and are
// exported under a separate "timing" section (see export.hpp) that no test
// asserts byte-equality on.
//
// The runtime switch (enabled()/set_enabled(), initialized from the
// HIGHRPM_OBS environment variable: "0"/"off"/"OFF" disable) gates the
// *costly* part — span clock reads and histogram records. Counter
// increments are a relaxed fetch_add and stay live so functional
// diagnostics keep working (see counter.hpp).
//
// With HIGHRPM_OBS_ENABLED compiled to 0 the registry collapses to a
// header-only stub in a distinct inline namespace: lookups return shared
// dummies, snapshot() is empty, spans compile to nothing. Library builds
// with the layer on and translation units compiled with it off can link
// together because the two Registry types have different mangled names.
#pragma once

#ifndef HIGHRPM_OBS_ENABLED
#define HIGHRPM_OBS_ENABLED 1
#endif

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "highrpm/obs/counter.hpp"
#include "highrpm/obs/histogram.hpp"

#if HIGHRPM_OBS_ENABLED
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace highrpm::obs {

// Snapshot types are shared between the enabled and disabled modes (and by
// the exporter, which is compiled unconditionally).

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;

  friend bool operator==(const CounterSnapshot&,
                         const CounterSnapshot&) = default;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

struct Snapshot {
  std::vector<CounterSnapshot> counters;      // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Telemetry names must match [A-Za-z0-9._-]+ so the JSON/CSV exporters
/// never need escaping. Registration throws on anything else.
bool valid_name(std::string_view name) noexcept;

#if HIGHRPM_OBS_ENABLED

inline namespace obs_enabled {

class Registry {
 public:
  /// The process-wide registry (created on first use, never destroyed
  /// before other statics that might still increment counters).
  static Registry& instance();

  /// Look up (creating on first use) a named counter / histogram. The
  /// returned reference is stable for the registry's lifetime — cache it in
  /// a function-local static at instrumentation sites. Throws
  /// std::invalid_argument on names that fail valid_name().
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Deterministically ordered (sorted by name) copy of all telemetry.
  Snapshot snapshot() const;

  /// Zero every counter and histogram (per-run exports, tests). Registered
  /// names survive a reset; references stay valid.
  void reset();

  /// Runtime switch for the costly instrumentation (span clock reads and
  /// histogram records). Initialized from HIGHRPM_OBS ("0"/"off" disable).
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<bool> enabled_{true};
};

}  // namespace obs_enabled

#else  // !HIGHRPM_OBS_ENABLED

inline namespace obs_disabled {

/// Header-only stub: lookups hand back shared dummies, snapshots are empty,
/// the layer reports itself disabled.
class Registry {
 public:
  static Registry& instance() noexcept {
    static Registry r;
    return r;
  }

  Counter& counter(std::string_view) noexcept { return dummy_counter_; }
  Histogram& histogram(std::string_view) noexcept { return dummy_histogram_; }

  Snapshot snapshot() const { return {}; }
  void reset() noexcept {}

  bool enabled() const noexcept { return false; }
  void set_enabled(bool) noexcept {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() noexcept = default;

  inline static Counter dummy_counter_{};
  inline static Histogram dummy_histogram_{};
};

}  // namespace obs_disabled

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace highrpm::obs
