// Umbrella header for the observability layer (highrpm::obs):
//   Counter    always-on atomic event counter         (counter.hpp)
//   Histogram  lock-free log2-bucket latency histogram (histogram.hpp)
//   Registry   process-wide named-telemetry registry   (registry.hpp)
//   Span       RAII tracing span -> histogram          (span.hpp)
//   export     JSON/CSV telemetry serialization        (export.hpp)
//
// Build-time gate: compile with HIGHRPM_OBS_ENABLED=0 (cmake
// -DHIGHRPM_OBS=OFF) to turn spans/histograms/registry into no-op shells.
// Runtime gate: the HIGHRPM_OBS environment variable ("0"/"off" disables)
// or Registry::set_enabled() skips clock reads and histogram records while
// keeping functional counters live. Result outputs are byte-identical in
// every mode; see README "Observability".
#pragma once

#include "highrpm/obs/counter.hpp"     // IWYU pragma: export
#include "highrpm/obs/export.hpp"     // IWYU pragma: export
#include "highrpm/obs/histogram.hpp"  // IWYU pragma: export
#include "highrpm/obs/registry.hpp"   // IWYU pragma: export
#include "highrpm/obs/span.hpp"       // IWYU pragma: export
