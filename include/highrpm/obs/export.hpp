// Telemetry export: serialize a Registry snapshot as JSON and CSV.
//
// Schema (version tag "highrpm.telemetry.v1"):
//
//   {
//     "schema": "highrpm.telemetry.v1",
//     "counters": { "<name>": <uint>, ... },          // deterministic
//     "timing": {                                     // wall-clock section
//       "histograms": [
//         { "name": "<name>", "count": N, "sum_ns": S, "min_ns": m,
//           "max_ns": M, "p50_ns": a, "p90_ns": b, "p99_ns": c }, ...
//       ]
//     }
//   }
//
// The split is deliberate: the "counters" object is a pure function of the
// work executed (safe to assert byte-equality on), while everything under
// "timing" is wall-clock-derived and legitimately differs run to run —
// exactly the convention the bench layer already uses for its result vs.
// *_timing.csv files. The CSV mirrors the same rows in long form with a
// leading `kind` column.
//
// Telemetry names are restricted to [A-Za-z0-9._-] (enforced at
// registration), so neither format needs escaping and parse_json can be a
// small schema-bound scanner rather than a general JSON parser. The parser
// exists for the schema round-trip guarantee:
//   parse_json(to_json(snap)) == snap   (a ctest pins this down).
//
// This file is the one place library code is allowed to write files
// (tools/lint rule `library-file-io`); write_* create bench_out/-style
// parent directories on demand.
#pragma once

#include <string>

#include "highrpm/obs/registry.hpp"

namespace highrpm::obs {

/// Serialize to the JSON schema above (two-space indent, '\n' line ends,
/// names in registry order — byte-deterministic given the snapshot).
std::string to_json(const Snapshot& snap);

/// Long-form CSV: kind,name,value,count,sum_ns,min_ns,max_ns,p50_ns,p90_ns,p99_ns
std::string to_csv(const Snapshot& snap);

/// Parse text produced by to_json back into a Snapshot. Throws
/// std::runtime_error on anything that does not match the schema.
Snapshot parse_json(const std::string& text);

/// Write to_json / to_csv output to `path`, creating parent directories on
/// demand. Throws std::runtime_error when the file cannot be written.
void write_json(const std::string& path, const Snapshot& snap);
void write_csv(const std::string& path, const Snapshot& snap);

/// Convenience used by benches and examples: snapshot the process registry
/// and write bench_out/<run_name>_telemetry.json and .csv. Returns the JSON
/// path. No-op (returns "") when the registry snapshot is empty — e.g. in a
/// HIGHRPM_OBS=OFF build.
std::string export_run_telemetry(const std::string& run_name);

}  // namespace highrpm::obs
