// obs::Histogram — a lock-free latency histogram with power-of-two buckets.
//
// record() is wait-free apart from two bounded CAS loops (min/max): one
// relaxed fetch_add into the value's log2 bucket plus count/sum updates.
// That makes it safe to call from every thread-pool worker simultaneously
// (the TSan suite exercises exactly that) at a cost of a few nanoseconds.
//
// Values are unsigned 64-bit and unit-agnostic; the instrumentation layer
// records span durations in nanoseconds, the thread pool also records task
// counts. Quantiles come from a cumulative walk over the buckets with
// linear interpolation inside the landing bucket, so quantile(q) is
// monotone non-decreasing in q by construction (a property test pins this
// down) and no longer quantizes to bucket upper bounds (2^k - 1) — two
// latency distributions landing in the same power-of-two bucket still
// report distinguishable p50/p99.
//
// Templated over an atomics backend (verify/backend.hpp): production uses
// the Histogram alias (plain std::atomic, as before); the model-checker
// suites instantiate BasicHistogram<verify::ModelBackend> to explore the
// record()/stats() interleavings deterministically. obs/ is the sanctioned
// home for relaxed atomics in the memory-order-audit lint.
//
// When HIGHRPM_OBS_ENABLED is 0 the class collapses to a no-op shell with
// the same API (distinct inline namespace, so a no-op-mode translation unit
// can coexist with an enabled library build without ODR clashes).
#pragma once

#ifndef HIGHRPM_OBS_ENABLED
#define HIGHRPM_OBS_ENABLED 1
#endif

#include <cstdint>

#include "highrpm/verify/backend.hpp"

#if HIGHRPM_OBS_ENABLED
#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#endif

namespace highrpm::obs {

/// One coherent histogram read-out (shared between the enabled and disabled
/// modes, like the registry snapshot types). Produced by Histogram::stats():
/// count and every quantile derive from a single frozen copy of the bucket
/// array, so count == the bucket mass the quantiles were walked over and
/// min <= p50 <= p90 <= p99 <= max even while other threads keep recording.
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

#if HIGHRPM_OBS_ENABLED

inline namespace obs_enabled {

template <typename Backend = highrpm::verify::StdBackend>
class BasicHistogram {
 public:
  /// Bucket b holds values v with bit_width(v) == b, i.e. [2^(b-1), 2^b).
  /// Bucket 0 holds the value 0.
  static constexpr std::size_t kBuckets = 65;

  BasicHistogram() noexcept = default;
  BasicHistogram(const BasicHistogram&) = delete;
  BasicHistogram& operator=(const BasicHistogram&) = delete;

  void record(std::uint64_t value) {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  std::uint64_t min() const {
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
  }
  std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// The value at 0-based rank min(floor(q * count), count - 1) in the
  /// cumulative bucket walk, linearly interpolated across the landing
  /// bucket's value range by the rank's midpoint position among that
  /// bucket's samples, clamped into [min(), max()]. q is clamped to [0, 1].
  /// Contract on an empty histogram: quantile(q) == 0 for every q (like
  /// min()/max()/sum() — the disabled-mode shell reports the same).
  /// Monotone non-decreasing in q: the rank is non-decreasing in q, the
  /// landing bucket is non-decreasing in rank, the within-bucket fraction
  /// is non-decreasing in rank, and bucket b's interpolation range ends
  /// below bucket b+1's start.
  ///
  /// The rank is 0-based and the landing test is strict (rank < seen + cnt):
  /// the earlier walk used a 1-based landing test against a 0-based rank,
  /// which off-by-one'd tail quantiles into the previous bucket — p99 of
  /// {1, 1, 1, 1000} reported 1 (a property test pins the fix).
  std::uint64_t quantile(double q) const {
    std::array<std::uint64_t, kBuckets> frozen;
    std::uint64_t n = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      frozen[b] = buckets_[b].load(std::memory_order_relaxed);
      n += frozen[b];
    }
    return quantile_from(frozen, n, q, min(), max());
  }

  /// Coherent multi-field read-out: count and every quantile derive from
  /// one frozen copy of the bucket array, so a concurrent exporter can
  /// never observe p50 > p99 or a count that disagrees with the mass its
  /// quantiles were computed from (the torn-read repair the TSan-labeled
  /// concurrent-export test pins down). min/max are read after the freeze;
  /// min only ever decreases and max only ever increases, so clamping the
  /// frozen-mass quantiles into [min, max] preserves the ordering
  /// invariants. sum is a best-effort concurrent read.
  HistogramStats stats() const {
    std::array<std::uint64_t, kBuckets> frozen;
    std::uint64_t n = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      frozen[b] = buckets_[b].load(std::memory_order_relaxed);
      n += frozen[b];
    }
    HistogramStats s;
    s.count = n;
    s.sum = sum_.load(std::memory_order_relaxed);
    std::uint64_t mn = min();
    std::uint64_t mx = max();
    // record() publishes min before max, so a racing reader can see a fresh
    // min with a stale max; collapsing to [mn, mn] keeps min <= max.
    if (mx < mn) mx = mn;
    if (n == 0) {
      mn = 0;
      mx = 0;
    }
    s.min = mn;
    s.max = mx;
    s.p50 = quantile_from(frozen, n, 0.50, mn, mx);
    s.p90 = quantile_from(frozen, n, 0.90, mn, mx);
    s.p99 = quantile_from(frozen, n, 0.99, mn, mx);
    return s;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Inclusive upper bound of bucket b (2^b - 1; bucket 64 saturates).
  static constexpr std::uint64_t bucket_upper(std::size_t b) noexcept {
    return b >= 64 ? UINT64_MAX : (std::uint64_t{1} << b) - 1;
  }

 private:
  /// Cumulative walk over a frozen bucket array for the sample at 0-based
  /// rank min(floor(q * n), n - 1); 0 when n == 0 (documented contract).
  static std::uint64_t quantile_from(
      const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t n,
      double q, std::uint64_t mn, std::uint64_t mx) noexcept {
    if (n == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (rank >= n) rank = n - 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t cnt = buckets[b];
      if (cnt == 0) continue;
      if (rank < seen + cnt) {
        // Rank lands in bucket b, which spans [lower, upper]. The rank is
        // sample pos (0-based) of this bucket's cnt samples; its midpoint
        // position (pos + 0.5) / cnt interpolates across the bucket.
        const std::uint64_t lower = b == 0 ? 0 : bucket_upper(b - 1) + 1;
        const std::uint64_t upper = bucket_upper(b);
        const std::uint64_t pos = rank - seen;
        const double frac =
            (static_cast<double>(pos) + 0.5) / static_cast<double>(cnt);
        const auto v = lower + static_cast<std::uint64_t>(
                                   frac * static_cast<double>(upper - lower));
        return std::clamp(v, mn, mx);
      }
      seen += cnt;
    }
    return mx;
  }

  template <typename T>
  using Atomic = typename Backend::template Atomic<T>;

  std::array<Atomic<std::uint64_t>, kBuckets> buckets_{};
  Atomic<std::uint64_t> count_{0};
  Atomic<std::uint64_t> sum_{0};
  Atomic<std::uint64_t> min_{UINT64_MAX};
  Atomic<std::uint64_t> max_{0};
};

/// Production instantiation — plain std::atomic, zero template overhead.
using Histogram = BasicHistogram<>;

}  // namespace obs_enabled

#else  // !HIGHRPM_OBS_ENABLED

inline namespace obs_disabled {

/// No-op shell: same API, no storage, nothing recorded. Templated like the
/// enabled mode so BasicHistogram<verify::ModelBackend> still names a type
/// (the model suites gate their assertions on HIGHRPM_OBS_ENABLED).
template <typename Backend = highrpm::verify::StdBackend>
class BasicHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;
  BasicHistogram() noexcept = default;
  BasicHistogram(const BasicHistogram&) = delete;
  BasicHistogram& operator=(const BasicHistogram&) = delete;
  void record(std::uint64_t) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  std::uint64_t sum() const noexcept { return 0; }
  std::uint64_t min() const noexcept { return 0; }
  std::uint64_t max() const noexcept { return 0; }
  std::uint64_t quantile(double) const noexcept { return 0; }
  HistogramStats stats() const noexcept { return {}; }
  void reset() noexcept {}
};

using Histogram = BasicHistogram<>;

}  // namespace obs_disabled

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace highrpm::obs
