// obs::Histogram — a lock-free latency histogram with power-of-two buckets.
//
// record() is wait-free apart from two bounded CAS loops (min/max): one
// relaxed fetch_add into the value's log2 bucket plus count/sum updates.
// That makes it safe to call from every thread-pool worker simultaneously
// (the TSan suite exercises exactly that) at a cost of a few nanoseconds.
//
// Values are unsigned 64-bit and unit-agnostic; the instrumentation layer
// records span durations in nanoseconds, the thread pool also records task
// counts. Quantiles come from a cumulative walk over the buckets with
// linear interpolation inside the landing bucket, so quantile(q) is
// monotone non-decreasing in q by construction (a property test pins this
// down) and no longer quantizes to bucket upper bounds (2^k - 1) — two
// latency distributions landing in the same power-of-two bucket still
// report distinguishable p50/p99.
//
// When HIGHRPM_OBS_ENABLED is 0 the class collapses to a no-op shell with
// the same API (distinct inline namespace, so a no-op-mode translation unit
// can coexist with an enabled library build without ODR clashes).
#pragma once

#ifndef HIGHRPM_OBS_ENABLED
#define HIGHRPM_OBS_ENABLED 1
#endif

#include <cstdint>

#if HIGHRPM_OBS_ENABLED
#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#endif

namespace highrpm::obs {

#if HIGHRPM_OBS_ENABLED

inline namespace obs_enabled {

class Histogram {
 public:
  /// Bucket b holds values v with bit_width(v) == b, i.e. [2^(b-1), 2^b).
  /// Bucket 0 holds the value 0.
  static constexpr std::size_t kBuckets = 65;

  Histogram() noexcept = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  std::uint64_t min() const noexcept {
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// The value at rank floor(q * count) in the cumulative bucket walk,
  /// linearly interpolated across the landing bucket's value range by the
  /// rank's position among that bucket's samples, clamped into
  /// [min(), max()]. q is clamped to [0, 1]; an empty histogram reports 0.
  /// Monotone non-decreasing in q: the landing bucket is non-decreasing in
  /// rank, the within-bucket fraction is non-decreasing in rank, and
  /// bucket b's interpolation range ends below bucket b+1's start.
  std::uint64_t quantile(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t cnt = buckets_[b].load(std::memory_order_relaxed);
      if (cnt == 0) continue;
      if (seen + cnt >= rank) {
        // Rank lands in bucket b, which spans [lower, upper]. pos/cnt is
        // the rank's position among this bucket's cnt samples: pos 0 maps
        // to the bucket's lower edge, pos == cnt to its upper.
        const std::uint64_t lower = b == 0 ? 0 : bucket_upper(b - 1) + 1;
        const std::uint64_t upper = bucket_upper(b);
        const std::uint64_t pos = rank > seen ? rank - seen : 0;
        const double frac =
            static_cast<double>(pos) / static_cast<double>(cnt);
        const auto v = lower + static_cast<std::uint64_t>(
                                   frac * static_cast<double>(upper - lower));
        return std::clamp(v, min(), max());
      }
      seen += cnt;
    }
    return max();
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Inclusive upper bound of bucket b (2^b - 1; bucket 64 saturates).
  static constexpr std::uint64_t bucket_upper(std::size_t b) noexcept {
    return b >= 64 ? UINT64_MAX : (std::uint64_t{1} << b) - 1;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace obs_enabled

#else  // !HIGHRPM_OBS_ENABLED

inline namespace obs_disabled {

/// No-op shell: same API, no storage, nothing recorded.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;
  Histogram() noexcept = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  void record(std::uint64_t) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  std::uint64_t sum() const noexcept { return 0; }
  std::uint64_t min() const noexcept { return 0; }
  std::uint64_t max() const noexcept { return 0; }
  std::uint64_t quantile(double) const noexcept { return 0; }
  void reset() noexcept {}
};

}  // namespace obs_disabled

#endif  // HIGHRPM_OBS_ENABLED

}  // namespace highrpm::obs
