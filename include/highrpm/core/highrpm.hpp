// The HighRPM framework facade (paper Fig 3): wires TRR and SRR together
// behind the two-stage lifecycle the paper describes —
//   initial learning: train StaticTRR / DynamicTRR / SRR on initial samples
//   active learning:  pool initial + restored samples, draw reinforcement
//                     samples, fine-tune
// and the two monitoring modes:
//   restore_log(): offline historical-log analysis (StaticTRR + SRR)
//   on_tick():     online streaming monitoring (DynamicTRR + SRR)
#pragma once

#include <optional>
#include <span>

#include "highrpm/adapt/controller.hpp"
#include "highrpm/core/dynamic_trr.hpp"
#include "highrpm/core/sampler.hpp"
#include "highrpm/core/srr.hpp"
#include "highrpm/core/static_trr.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/obs/counter.hpp"

namespace highrpm::core {

struct HighRpmConfig {
  std::size_t miss_interval = 10;
  StaticTrrConfig static_trr{};
  DynamicTrrConfig dynamic_trr{};
  SrrConfig srr{};
  SamplerConfig sampler{};
  /// Constant peripheral draw assumed by the consistency calibration
  /// (paper §5.2: P_Other is a constant ~25 W).
  double p_other_w = 25.0;
  std::size_t active_finetune_epochs = 2;
  /// Adaptive sampling (highrpm::adapt): attach a per-stream controller that
  /// watches restored-power volatility and routes quiet phases through the
  /// cheap decision-tree ResModel under a hard overhead budget. The
  /// controller's window is pinned to miss_interval so decisions land on
  /// ring-window boundaries, and train_cheap_model is forced on. Off by
  /// default — when off, every code path is identical to the fixed-rate
  /// pipeline.
  bool adaptive = false;
  adapt::ControllerConfig adapt{};
};

/// One tick's power picture as HighRPM reports it.
struct PowerEstimate {
  double node_w = 0.0;
  double cpu_w = 0.0;
  double mem_w = 0.0;
  /// True when node_w is a real IM reading rather than a TRR estimate.
  bool measured = false;
};

/// Offline restoration of a whole run.
struct LogRestoration {
  std::vector<double> node_w;  // StaticTRR-merged node power per tick
  std::vector<double> cpu_w;   // SRR component split per tick
  std::vector<double> mem_w;
};

class HighRpm {
 public:
  explicit HighRpm(HighRpmConfig cfg = {});

  /// Initial learning stage: training runs carry dense node labels and
  /// rig-based component labels (paper §5.2). Trains DynamicTRR and SRR.
  void initial_learning(std::span<const measure::CollectedRun> runs);

  /// Active learning stage on a *deployment* run (sparse IM only): restore
  /// node power with StaticTRR, pool measured + restored samples, draw a
  /// reinforcement subset, and fine-tune DynamicTRR and SRR. SRR component
  /// pseudo-labels come from its own predictions rescaled so that
  /// cpu + mem = node - P_Other (the bi-directional consistency constraint).
  void active_learning(const measure::CollectedRun& run);

  /// Offline log analysis: StaticTRR node restoration + SRR breakdown.
  LogRestoration restore_log(const measure::CollectedRun& run) const;

  // --- streaming mode ---
  void reset_stream();
  PowerEstimate on_tick(std::span<const double> pmcs,
                        std::optional<double> im_reading);

  bool trained() const noexcept {
    return dynamic_trr_.fitted() && srr_.fitted();
  }
  const HighRpmConfig& config() const noexcept { return cfg_; }
  DynamicTrr& dynamic_trr() noexcept { return dynamic_trr_; }
  Srr& srr() noexcept { return srr_; }
  /// Const access for read-only consumers (FleetStepper clones per-lane
  /// TRR state and shares the SRR from a trained golden instance).
  const DynamicTrr& dynamic_trr() const noexcept { return dynamic_trr_; }
  const Srr& srr() const noexcept { return srr_; }
  std::size_t active_learning_rounds() const noexcept { return al_rounds_; }
  /// Streaming ticks whose PMC row was non-finite and had to be held
  /// (cumulative across streams, like DynamicTrr's counters). obs::Counter
  /// so a monitor thread polling the diagnostic never races the stream
  /// thread incrementing it.
  std::size_t held_rows() const noexcept {
    return static_cast<std::size_t>(held_rows_.value());
  }
  /// The adaptive-sampling controller, or nullptr when cfg.adaptive is off.
  /// Exposes mode / budget / flap counters for monitors and benches; the
  /// standing Decision also carries the sensor cadence (PMC stride, IM
  /// interval factor) the *caller* is expected to apply to its sensors —
  /// HighRpm itself only consumes the cheap-vs-LSTM routing.
  const adapt::Controller* controller() const noexcept {
    return controller_ ? &*controller_ : nullptr;
  }

 private:
  /// Fit a fresh StaticTRR on a run's sparse IM readings and restore it.
  std::vector<double> static_restore(const measure::CollectedRun& run) const;

  HighRpmConfig cfg_;
  DynamicTrr dynamic_trr_;
  Srr srr_;
  ReinforcementSampler sampler_;
  std::size_t al_rounds_ = 0;
  /// Last finite PMC row seen by on_tick — substituted on degraded ticks so
  /// TRR and SRR see the same held input.
  std::vector<double> last_good_row_;
  /// Reused across ticks so the steady-state SRR predict performs zero heap
  /// allocations once warm.
  Srr::Scratch srr_scratch_;
  obs::Counter held_rows_;
  /// Present iff cfg_.adaptive. Observed after every committed tick;
  /// decisions apply from the next tick (window-boundary granularity).
  std::optional<adapt::Controller> controller_;
};

/// Control-node service managing per-compute-node HighRPM instances
/// (paper §4.1: "installed as a service on the control node ... shared with
/// other computing nodes", with per-node fine-tuning capturing inter-node
/// power variation). Nodes are cloned from a golden trained instance and
/// then drift apart through their own active-learning updates.
class MonitorService {
 public:
  explicit MonitorService(HighRpm golden);

  /// Register a compute node; returns its private instance.
  void register_node(const std::string& node_id);
  bool has_node(const std::string& node_id) const;
  std::size_t node_count() const noexcept { return nodes_.size(); }

  PowerEstimate on_tick(const std::string& node_id,
                        std::span<const double> pmcs,
                        std::optional<double> im_reading);
  void active_learning(const std::string& node_id,
                       const measure::CollectedRun& run);

  const HighRpm& node(const std::string& node_id) const;

 private:
  HighRpm& node_mut(const std::string& node_id);

  HighRpm golden_;
  std::vector<std::pair<std::string, HighRpm>> nodes_;
};

}  // namespace highrpm::core
