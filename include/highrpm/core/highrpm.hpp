// The HighRPM framework facade (paper Fig 3): wires TRR and SRR together
// behind the two-stage lifecycle the paper describes —
//   initial learning: train StaticTRR / DynamicTRR / SRR on initial samples
//   active learning:  pool initial + restored samples, draw reinforcement
//                     samples, fine-tune
// and the two monitoring modes:
//   restore_log(): offline historical-log analysis (StaticTRR + SRR)
//   on_tick():     online streaming monitoring (DynamicTRR + SRR)
#pragma once

#include <array>
#include <optional>
#include <span>

#include "highrpm/adapt/controller.hpp"
#include "highrpm/core/dynamic_trr.hpp"
#include "highrpm/core/sampler.hpp"
#include "highrpm/core/srr.hpp"
#include "highrpm/core/static_trr.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/obs/counter.hpp"

namespace highrpm::core {

/// Fixed capacity for per-tenant estimates in PowerEstimate: keeps the
/// per-tick output type allocation-free (the 0-alloc steady-state contract
/// extends to K-way attribution). Raising it is an ABI-ish change — fleet
/// scratch and serve snapshots size off it.
inline constexpr std::size_t kMaxTenants = 8;

/// SmartWatts-style self-calibration: instead of fine-tuning on a fixed
/// schedule, the facade tracks the attribution head's drift online and
/// triggers the active-learning-style fine-tune only when the model has
/// actually wandered. The drift signal is measurement-anchored: on every
/// accepted IM reading, compare the head's clamped pre-projection output
/// sum against the trusted budget (reading - P_Other) — a latent workload
/// change (new instruction mix, new energy weights) shows up there even
/// when every PMC looks the same. The EWMA of that relative error crossing
/// drift_threshold_pct triggers a fine-tune on the buffered recent
/// measured ticks, with pseudo-labels rescaled to the node budget (the
/// same consistency calibration active_learning applies).
struct SelfCalConfig {
  bool enabled = false;
  /// EWMA(relative drift %) level that triggers recalibration.
  double drift_threshold_pct = 8.0;
  /// EWMA smoothing factor (weight of the newest measured tick).
  double ewma_alpha = 0.2;
  /// Measured-tick ring buffer used as the recalibration set; also the
  /// minimum number of buffered ticks before a trigger can fire.
  std::size_t buffer_ticks = 48;
  std::size_t min_buffered = 24;
  /// Ticks (total, not just measured) between triggers — hysteresis so a
  /// single drifted window cannot thrash repeated fine-tunes.
  std::size_t cooldown_ticks = 200;
  /// Fine-tune epochs per trigger (matches active_finetune_epochs scale).
  std::size_t epochs = 2;
};

struct HighRpmConfig {
  std::size_t miss_interval = 10;
  StaticTrrConfig static_trr{};
  DynamicTrrConfig dynamic_trr{};
  SrrConfig srr{};
  SamplerConfig sampler{};
  /// Constant peripheral draw assumed by the consistency calibration
  /// (paper §5.2: P_Other is a constant ~25 W).
  double p_other_w = 25.0;
  std::size_t active_finetune_epochs = 2;
  /// Co-located tenant count for K-way attribution (0 disables it — the
  /// framework then behaves exactly as the two-component pipeline).
  /// Requires 1 <= tenants <= kMaxTenants when non-zero.
  std::size_t tenants = 0;
  /// Attribution head config. `outputs` is forced to `tenants`; everything
  /// else (hidden width, projection, augmentation) carries the same
  /// semantics as the component SRR. The default is the SmartWatts shape —
  /// a PMC-only network (no P_Node input feature) with the consistency
  /// projection still rescaling toward the node budget: the raw output sum
  /// is then a genuine power prediction, and its residual against the
  /// trusted IM budget is the self-calibration drift signal. A head WITH
  /// include_pnode reconstructs the sum from the P_Node feature itself,
  /// which makes that residual vanish and blinds drift detection.
  SrrConfig tenant_srr{.include_pnode = false, .project_without_pnode = true};
  /// Drift-triggered recalibration of the attribution head (needs
  /// tenants > 0).
  SelfCalConfig self_cal{};
  /// Adaptive sampling (highrpm::adapt): attach a per-stream controller that
  /// watches restored-power volatility and routes quiet phases through the
  /// cheap decision-tree ResModel under a hard overhead budget. The
  /// controller's window is pinned to miss_interval so decisions land on
  /// ring-window boundaries, and train_cheap_model is forced on. Off by
  /// default — when off, every code path is identical to the fixed-rate
  /// pipeline.
  bool adaptive = false;
  adapt::ControllerConfig adapt{};
};

/// One tick's power picture as HighRPM reports it.
struct PowerEstimate {
  double node_w = 0.0;
  double cpu_w = 0.0;
  double mem_w = 0.0;
  /// True when node_w is a real IM reading rather than a TRR estimate.
  bool measured = false;
  /// K-way attribution (first `tenants` entries valid; 0 when attribution
  /// is off). Fixed array, not a vector: PowerEstimate is returned every
  /// tick and must stay allocation-free.
  std::size_t tenants = 0;
  std::array<double, kMaxTenants> tenant_w{};
};

/// Offline restoration of a whole run.
struct LogRestoration {
  std::vector<double> node_w;  // StaticTRR-merged node power per tick
  std::vector<double> cpu_w;   // SRR component split per tick
  std::vector<double> mem_w;
};

class HighRpm {
 public:
  explicit HighRpm(HighRpmConfig cfg = {});

  /// Initial learning stage: training runs carry dense node labels and
  /// rig-based component labels (paper §5.2). Trains DynamicTRR and SRR.
  void initial_learning(std::span<const measure::CollectedRun> runs);

  /// Active learning stage on a *deployment* run (sparse IM only): restore
  /// node power with StaticTRR, pool measured + restored samples, draw a
  /// reinforcement subset, and fine-tune DynamicTRR and SRR. SRR component
  /// pseudo-labels come from its own predictions rescaled so that
  /// cpu + mem = node - P_Other (the bi-directional consistency constraint).
  void active_learning(const measure::CollectedRun& run);

  /// Offline log analysis: StaticTRR node restoration + SRR breakdown.
  LogRestoration restore_log(const measure::CollectedRun& run) const;

  /// Train the K-way attribution head from multi-tenant runs
  /// (Collector::collect_tenants records). Requires cfg.tenants > 0 and
  /// every run to carry exactly cfg.tenants tenants. The head's features
  /// are the concatenated per-tenant PMC rows plus (when
  /// tenant_srr.include_pnode) the restored node power; labels are the
  /// augmented ground-truth tenant watts (build_attribution_training_set).
  void fit_attribution(std::span<const measure::CollectedRun> runs);

  // --- streaming mode ---
  void reset_stream();
  PowerEstimate on_tick(std::span<const double> pmcs,
                        std::optional<double> im_reading);

  /// K-way streaming tick: `tenant_pmcs` is the K tenants' per-cgroup PMC
  /// rows concatenated in tenant order (cfg.tenants * kNumPmcEvents
  /// values). Runs the node pipeline (DynamicTRR + component SRR) exactly
  /// like the 2-arg overload — same estimates, same adaptive decisions —
  /// then fills PowerEstimate::tenant_w from the attribution head. A
  /// non-finite tenant row is held (last good row substituted) just like
  /// the node row. When self-calibration is enabled, measured ticks feed
  /// the drift EWMA and may trigger an online fine-tune of the attribution
  /// head; the trigger itself allocates (training is not a steady-state
  /// path), but non-trigger ticks stay 0-alloc once warm.
  PowerEstimate on_tick(std::span<const double> pmcs,
                        std::span<const double> tenant_pmcs,
                        std::optional<double> im_reading);

  bool trained() const noexcept {
    return dynamic_trr_.fitted() && srr_.fitted();
  }
  const HighRpmConfig& config() const noexcept { return cfg_; }
  DynamicTrr& dynamic_trr() noexcept { return dynamic_trr_; }
  Srr& srr() noexcept { return srr_; }
  /// Const access for read-only consumers (FleetStepper clones per-lane
  /// TRR state and shares the SRR from a trained golden instance).
  const DynamicTrr& dynamic_trr() const noexcept { return dynamic_trr_; }
  const Srr& srr() const noexcept { return srr_; }
  /// The K-way attribution head (fitted by fit_attribution).
  Srr& attribution_srr() noexcept { return tenant_srr_; }
  const Srr& attribution_srr() const noexcept { return tenant_srr_; }
  bool attribution_trained() const noexcept { return tenant_srr_.fitted(); }
  /// Self-calibration diagnostics: current drift EWMA (percent of the IM
  /// budget) and cumulative drift-triggered fine-tunes (obs::Counter, safe
  /// to poll from a monitor thread).
  double self_cal_drift_pct() const noexcept { return drift_ewma_pct_; }
  std::size_t self_cal_triggers() const noexcept {
    return static_cast<std::size_t>(selfcal_triggers_.value());
  }
  std::size_t active_learning_rounds() const noexcept { return al_rounds_; }
  /// Streaming ticks whose PMC row was non-finite and had to be held
  /// (cumulative across streams, like DynamicTrr's counters). obs::Counter
  /// so a monitor thread polling the diagnostic never races the stream
  /// thread incrementing it.
  std::size_t held_rows() const noexcept {
    return static_cast<std::size_t>(held_rows_.value());
  }
  /// The adaptive-sampling controller, or nullptr when cfg.adaptive is off.
  /// Exposes mode / budget / flap counters for monitors and benches; the
  /// standing Decision also carries the sensor cadence (PMC stride, IM
  /// interval factor) the *caller* is expected to apply to its sensors —
  /// HighRpm itself only consumes the cheap-vs-LSTM routing.
  const adapt::Controller* controller() const noexcept {
    return controller_ ? &*controller_ : nullptr;
  }

 private:
  /// Fit a fresh StaticTRR on a run's sparse IM readings and restore it.
  std::vector<double> static_restore(const measure::CollectedRun& run) const;
  /// Drift-triggered fine-tune of the attribution head on the buffered
  /// measured ticks, with pseudo-labels rescaled to the node budget.
  void recalibrate_attribution();

  HighRpmConfig cfg_;
  DynamicTrr dynamic_trr_;
  Srr srr_;
  /// K-way attribution head (cfg_.tenants outputs). Default-constructed but
  /// unfitted when attribution is off.
  Srr tenant_srr_;
  ReinforcementSampler sampler_;
  std::size_t al_rounds_ = 0;
  /// Last finite PMC row seen by on_tick — substituted on degraded ticks so
  /// TRR and SRR see the same held input.
  std::vector<double> last_good_row_;
  /// Same hold policy for the concatenated tenant PMC row.
  std::vector<double> last_good_tenant_row_;
  /// Reused across ticks so the steady-state SRR predict performs zero heap
  /// allocations once warm.
  Srr::Scratch srr_scratch_;
  Srr::Scratch tenant_scratch_;
  obs::Counter held_rows_;
  // --- self-calibration state (cfg_.self_cal) ---
  /// Ring buffer of recent measured ticks: tenant rows + the IM reading.
  /// Sized at construction; the recalibration set when a trigger fires.
  math::Matrix selfcal_rows_;
  std::vector<double> selfcal_node_w_;
  std::size_t selfcal_count_ = 0;  // valid entries (saturates at capacity)
  std::size_t selfcal_head_ = 0;   // next ring slot to overwrite
  double drift_ewma_pct_ = 0.0;
  bool drift_seeded_ = false;
  std::size_t selfcal_cooldown_ = 0;  // ticks until the next trigger may fire
  obs::Counter selfcal_triggers_;
  /// Present iff cfg_.adaptive. Observed after every committed tick;
  /// decisions apply from the next tick (window-boundary granularity).
  std::optional<adapt::Controller> controller_;
};

/// Control-node service managing per-compute-node HighRPM instances
/// (paper §4.1: "installed as a service on the control node ... shared with
/// other computing nodes", with per-node fine-tuning capturing inter-node
/// power variation). Nodes are cloned from a golden trained instance and
/// then drift apart through their own active-learning updates.
class MonitorService {
 public:
  explicit MonitorService(HighRpm golden);

  /// Register a compute node; returns its private instance.
  void register_node(const std::string& node_id);
  bool has_node(const std::string& node_id) const;
  std::size_t node_count() const noexcept { return nodes_.size(); }

  PowerEstimate on_tick(const std::string& node_id,
                        std::span<const double> pmcs,
                        std::optional<double> im_reading);
  void active_learning(const std::string& node_id,
                       const measure::CollectedRun& run);

  const HighRpm& node(const std::string& node_id) const;

 private:
  HighRpm& node_mut(const std::string& node_id);

  HighRpm golden_;
  std::vector<std::pair<std::string, HighRpm>> nodes_;
};

}  // namespace highrpm::core
