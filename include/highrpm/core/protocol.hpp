// Evaluation protocol of paper §5.3 / Table 3: the 96 workloads are grouped
// into their 7 suites; each fold holds one suite out. "Unseen" folds train
// on the other six suites only; "seen" folds additionally train on the
// leading part of the target suite's own runs and test on their held-out
// tails (chronological within-run splits, so the future never leaks into
// training).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "highrpm/math/metrics.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/sim/platform.hpp"

namespace highrpm::core {

struct ProtocolConfig {
  sim::PlatformConfig platform = sim::PlatformConfig::arm();
  measure::CollectorConfig collector{};
  /// Ticks (= samples at 1 Sa/s) collected per suite, spread across the
  /// suite's workloads. The paper uses 1000; benches default lower to keep
  /// single-core runtimes sane (documented in EXPERIMENTS.md).
  std::size_t samples_per_suite = 1000;
  /// Floor on per-workload trace length so every run has full windows.
  std::size_t min_ticks_per_workload = 60;
  /// Cap on workloads drawn per suite (0 = all). Lets benches subsample the
  /// big suites while keeping every suite represented.
  std::size_t max_workloads_per_suite = 0;
  double seen_test_fraction = 0.25;
  std::size_t freq_level = SIZE_MAX;  // SIZE_MAX = platform default
  std::uint64_t seed = 2023;
};

struct SuiteData {
  std::string suite;
  std::vector<measure::CollectedRun> runs;
};

/// Run every suite's workloads through the collector. Runs execute on the
/// runtime thread pool; each run's seed is forked from (cfg.seed, run index)
/// so the corpus is bit-identical for any thread count.
std::vector<SuiteData> collect_all_suites(const ProtocolConfig& cfg);

/// One train/test fold. Runs are owned copies so folds are self-contained.
///
/// Test runs are always *full* runs; `test_score_start[i]` marks where
/// scoring begins in test run i. Unseen folds score the whole run (start 0).
/// Seen folds additionally place the head of each target-suite run in the
/// training set and score only the tail — per-run methods (spline,
/// StaticTRR) may still fit on the full run's IM readings, since the head
/// is "seen" data by construction.
struct EvalSplit {
  std::string held_out_suite;
  bool seen = false;
  std::vector<measure::CollectedRun> train;
  std::vector<measure::CollectedRun> test;
  std::vector<std::size_t> test_score_start;
};

/// The 7 unseen folds (train excludes the held-out suite entirely).
std::vector<EvalSplit> make_unseen_splits(const std::vector<SuiteData>& data);

/// The 7 seen folds (train additionally includes the head of each target-
/// suite run; test is the tail).
std::vector<EvalSplit> make_seen_splits(const std::vector<SuiteData>& data,
                                        double test_fraction);

/// Contiguous sub-range [start, start+len) of a collected run, with IPMI
/// readings re-indexed relative to the slice.
measure::CollectedRun slice_run(const measure::CollectedRun& run,
                                std::size_t start, std::size_t len);

/// The protocol's fold loop, parallelized: evaluate fold_fn on every split
/// over the runtime pool and return the per-fold reports in fold order
/// (output order never depends on scheduling). A fold may return nullopt to
/// drop itself from the result (e.g. no scoreable ticks); folds that need
/// randomness must seed from their fold index, not shared state, to keep
/// serial and parallel runs identical.
std::vector<math::MetricReport> run_folds(
    const std::vector<EvalSplit>& splits,
    const std::function<std::optional<math::MetricReport>(
        const EvalSplit&, std::size_t)>& fold_fn);

/// Flatten runs into one (X, targets) table for pointwise models.
struct FlatData {
  math::Matrix x;
  std::vector<double> p_node;
  std::vector<double> p_cpu;
  std::vector<double> p_mem;
};
FlatData flatten_runs(const std::vector<measure::CollectedRun>& runs);

}  // namespace highrpm::core
