// DynamicTRR (paper §4.2.2): real-time temporal-resolution restoration.
//
// A compact stacked LSTM consumes sliding windows of miss_interval rows,
// each row = [PMC..., P'_Node(previous tick)], and predicts the node power
// at every step of the window (Fig 4's dataset construction). Offline it is
// trained on windows from the training programs; online it runs in a
// streaming loop: every tick gets a prediction, and whenever a real IM
// reading arrives the model is fine-tuned on the freshly completed window
// (the active-learning behaviour of §4.1/§6.4.5: fine-tune < 2 s).
#pragma once

#include <optional>
#include <span>

#include "highrpm/data/window.hpp"
#include "highrpm/ml/rnn.hpp"
#include "highrpm/ml/tree.hpp"
#include "highrpm/obs/counter.hpp"

namespace highrpm::core {

struct DynamicTrrConfig {
  std::size_t miss_interval = 10;  // ticks between IM readings (window size)
  ml::RnnConfig rnn{};             // defaults: LSTM, units=2, layers=2
  /// Epochs used for each online fine-tune step.
  std::size_t finetune_epochs = 2;
  bool online_finetune = true;
  /// Offline-training window stride: 1 uses every overlapping window;
  /// larger strides trade a little accuracy for proportionally faster
  /// training (useful for large corpora / sweep benches).
  std::size_t train_stride = 1;
  /// Graceful degradation under sensor faults (EXPERIMENTS.md "Fault model
  /// and degradation semantics"): non-finite PMC rows are replaced by the
  /// last good row and kept out of fine-tune windows; IM readings outside
  /// the plausibility band, or stuck at one value while the prediction
  /// drifts away, are rejected (treated as missing); estimates are clamped
  /// into the band. On clean streams none of this ever triggers, so
  /// enabling it is a no-op.
  bool validate_inputs = true;
  /// Plausibility band half-margin around the training labels:
  /// [min - m, max + m] with m = bound_margin * max(1, max - min) — the
  /// same derivation StaticTRR uses for p_bottom/p_upper. Deployment
  /// workloads legitimately range past the training labels, so the margin
  /// is a full band width: wide enough for cross-workload drift, still far
  /// inside the ~3x excursions a spiking sensor produces.
  double bound_margin = 1.0;
  /// A reading repeated more than stuck_limit consecutive times counts as a
  /// stuck sensor once the model's prediction disagrees with it by more
  /// than stuck_disagreement * (p_upper - p_bottom). Requiring the
  /// disagreement keeps legitimately-constant (quantized) readings on
  /// steady workloads from being rejected.
  std::size_t stuck_limit = 3;
  double stuck_disagreement = 0.25;
  /// Also fit a cheap decision-tree ResModel on the same [PMC..., P'_prev]
  /// rows at train() time (pointwise, not windowed). The adaptive sampling
  /// controller (highrpm::adapt) routes quiet-phase predicts through it via
  /// set_use_cheap(); the LSTM and the SoA ring stay warm throughout so a
  /// switch back to the dense path is seamless.
  bool train_cheap_model = false;
  ml::TreeConfig cheap_tree{};
};

class DynamicTrr {
 public:
  explicit DynamicTrr(DynamicTrrConfig cfg = {});

  /// Offline training: per-run PMC matrices with dense node-power labels
  /// (training programs have rig-derived dense labels, §5.2). Windows are
  /// built per run so sequences never span run boundaries.
  void train(std::span<const math::Matrix> run_pmcs,
             std::span<const std::vector<double>> run_labels);

  /// Convenience overload for a single run.
  void train_single(const math::Matrix& pmcs, std::span<const double> labels);

  /// Warm-start fine-tune on pre-built windows (active learning stage).
  void fine_tune(std::span<const data::SequenceSample> windows,
                 std::size_t epochs);

  // --- streaming interface ---
  /// Reset the stream state (new program / new node).
  void reset_stream();
  /// Feed one tick: the sampled PMC rates and, if this tick carried an IM
  /// reading, its value. Returns the node-power estimate for this tick
  /// (the measured value itself when one is available).
  double step(std::span<const double> pmcs,
              std::optional<double> im_reading);

  /// Everything step() decides before the model runs, carried from
  /// step_prepare to step_commit. `rows` is the window fill this tick's
  /// prediction covers (== stream_window_size() after prepare).
  struct StepPrep {
    bool have_reading = false;
    double reading_value = 0.0;
    std::size_t rows = 0;
    std::size_t slot = 0;  // physical ring slot claimed for this tick
  };

  /// Phase 1 of step(): claim this tick's ring slot, build its
  /// [PMC..., P'_prev] row in the SoA window, and run input validation /
  /// degradation. After it returns, pack_window_into() yields the
  /// rows x (F+1) window to predict over. Exactly one prepare must be
  /// followed by exactly one step_commit before the next prepare on the
  /// same instance (the fleet stepper interleaves prepares across *nodes*,
  /// never within one).
  StepPrep step_prepare(std::span<const double> pmcs,
                        std::optional<double> im_reading);
  /// Copy the current ring window (oldest row first) into consecutive rows
  /// of `out` starting at `row_offset`. `out` must already be sized with
  /// out.cols() == F+1 and row_offset + stream_window_size() rows. This is
  /// how the fleet stepper packs many nodes' windows into one batch matrix.
  void pack_window_into(math::Matrix& out, std::size_t row_offset) const;
  /// Phase 2 of step() for callers that predicted the window themselves
  /// (batched): apply validation clamps, stuck-sensor logic, measurement
  /// supersede + online fine-tune to the model's raw estimate for the
  /// newest row, record bookkeeping, and return the final estimate.
  double step_commit(const StepPrep& prep, double raw_estimate);
  /// The predict leg of step() on this instance's own model — for
  /// unbatched callers between step_prepare and step_commit. Zero heap
  /// allocations once the member scratch is warm.
  double predict_prepared();
  /// Cheap-path predict leg: the decision-tree ResModel on this tick's
  /// [PMC..., P'_prev] row (an allocation-free node walk). Requires
  /// cheap_fitted(); the ring row built by step_prepare is read in place.
  double predict_prepared_cheap(const StepPrep& prep) const;

  /// Route step()/fleet predicts through the cheap decision-tree path
  /// (adaptive sparse mode). While active, online fine-tune is suspended —
  /// the LSTM is not being consulted, so there is nothing to correct — but
  /// the ring keeps filling every tick. Enabling requires cheap_fitted().
  void set_use_cheap(bool on);
  bool use_cheap() const noexcept { return use_cheap_; }
  bool cheap_fitted() const noexcept { return cheap_.fitted(); }

  bool fitted() const noexcept { return model_.fitted(); }
  const DynamicTrrConfig& config() const noexcept { return cfg_; }
  const ml::SequenceRegressor& model() const noexcept { return model_; }
  std::size_t finetune_count() const noexcept {
    return static_cast<std::size_t>(finetunes_.value());
  }

  /// Plausibility band and label mean captured at train() time.
  double p_upper() const noexcept { return p_upper_; }
  double p_bottom() const noexcept { return p_bottom_; }
  double train_label_mean() const noexcept { return label_mean_; }
  /// Degradation diagnostics (cumulative, like finetune_count()). Backed by
  /// obs::Counter atomics so a monitor thread can poll them while another
  /// thread is stepping the stream — the mixed read/write was a data race
  /// when these were plain fields (ctest -L sanitize pins the fix down).
  std::size_t rejected_readings() const noexcept {
    return static_cast<std::size_t>(rejected_readings_.value());
  }
  std::size_t substituted_rows() const noexcept {
    return static_cast<std::size_t>(substituted_rows_.value());
  }
  /// Ticks answered from the training-label-mean prior because the stream
  /// had no previous estimate and the tick carried no usable reading.
  std::size_t cold_starts() const noexcept {
    return static_cast<std::size_t>(cold_starts_.value());
  }
  /// Current streaming-window fill (never exceeds miss_interval).
  std::size_t stream_window_size() const noexcept { return win_count_; }

 private:
  /// Physical ring index of logical window slot i (0 = oldest). The ring
  /// replaces push_back + erase-front so the steady-state tick reuses slot
  /// storage instead of allocating a fresh row every tick.
  std::size_t ring_index(std::size_t i) const noexcept {
    return (win_start_ + i) % cfg_.miss_interval;
  }

  /// False when the reading is non-finite or outside [p_bottom, p_upper].
  bool plausible_reading(double value) const;
  /// Stuck-sensor tracking; true when the reading should be rejected.
  bool stuck_reading(double value, double estimate);
  /// Capture label statistics (mean, plausibility band) at train time.
  void capture_label_stats(std::span<const std::vector<double>> run_labels);

  DynamicTrrConfig cfg_;
  ml::SequenceRegressor model_;
  /// Cheap pointwise ResModel (cfg_.train_cheap_model) and the routing
  /// flag the adaptive controller toggles at window boundaries.
  ml::DecisionTreeRegressor cheap_;
  bool use_cheap_ = false;
  /// SoA ring storage (capacity miss_interval once streaming): one matrix
  /// row per window step = [PMC..., P'_prev], parallel per-slot estimate
  /// and cleanliness arrays, plus cursor/fill. Structure-of-arrays keeps
  /// the rows contiguous so pack_window_into is a pair of row-range copies
  /// instead of per-slot pointer chasing.
  math::Matrix win_rows_;
  std::vector<double> win_est_;
  std::vector<unsigned char> win_clean_;
  std::size_t win_start_ = 0;
  std::size_t win_count_ = 0;
  /// Per-tick scratch, reused across steps so the steady-state predict path
  /// performs zero heap allocations once warm.
  math::Matrix steps_scratch_;
  std::vector<double> preds_scratch_;
  ml::SequenceRegressor::Workspace ws_;
  double prev_estimate_ = 0.0;
  bool have_prev_ = false;
  obs::Counter finetunes_;
  // Captured at train() time.
  std::size_t n_features_ = 0;
  double label_mean_ = 0.0;
  double p_upper_ = 0.0;
  double p_bottom_ = 0.0;
  // Degradation state (stream-local) and counters (cumulative).
  std::vector<double> last_good_pmcs_;
  bool have_last_good_ = false;
  double last_im_value_ = 0.0;
  bool have_last_im_ = false;
  std::size_t im_repeats_ = 0;
  obs::Counter rejected_readings_;
  obs::Counter substituted_rows_;
  obs::Counter cold_starts_;
};

}  // namespace highrpm::core
