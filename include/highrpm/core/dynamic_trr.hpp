// DynamicTRR (paper §4.2.2): real-time temporal-resolution restoration.
//
// A compact stacked LSTM consumes sliding windows of miss_interval rows,
// each row = [PMC..., P'_Node(previous tick)], and predicts the node power
// at every step of the window (Fig 4's dataset construction). Offline it is
// trained on windows from the training programs; online it runs in a
// streaming loop: every tick gets a prediction, and whenever a real IM
// reading arrives the model is fine-tuned on the freshly completed window
// (the active-learning behaviour of §4.1/§6.4.5: fine-tune < 2 s).
#pragma once

#include <optional>
#include <span>

#include "highrpm/data/window.hpp"
#include "highrpm/ml/rnn.hpp"

namespace highrpm::core {

struct DynamicTrrConfig {
  std::size_t miss_interval = 10;  // ticks between IM readings (window size)
  ml::RnnConfig rnn{};             // defaults: LSTM, units=2, layers=2
  /// Epochs used for each online fine-tune step.
  std::size_t finetune_epochs = 2;
  bool online_finetune = true;
  /// Offline-training window stride: 1 uses every overlapping window;
  /// larger strides trade a little accuracy for proportionally faster
  /// training (useful for large corpora / sweep benches).
  std::size_t train_stride = 1;
};

class DynamicTrr {
 public:
  explicit DynamicTrr(DynamicTrrConfig cfg = {});

  /// Offline training: per-run PMC matrices with dense node-power labels
  /// (training programs have rig-derived dense labels, §5.2). Windows are
  /// built per run so sequences never span run boundaries.
  void train(std::span<const math::Matrix> run_pmcs,
             std::span<const std::vector<double>> run_labels);

  /// Convenience overload for a single run.
  void train_single(const math::Matrix& pmcs, std::span<const double> labels);

  /// Warm-start fine-tune on pre-built windows (active learning stage).
  void fine_tune(std::span<const data::SequenceSample> windows,
                 std::size_t epochs);

  // --- streaming interface ---
  /// Reset the stream state (new program / new node).
  void reset_stream();
  /// Feed one tick: the sampled PMC rates and, if this tick carried an IM
  /// reading, its value. Returns the node-power estimate for this tick
  /// (the measured value itself when one is available).
  double step(std::span<const double> pmcs,
              std::optional<double> im_reading);

  bool fitted() const noexcept { return model_.fitted(); }
  const DynamicTrrConfig& config() const noexcept { return cfg_; }
  const ml::SequenceRegressor& model() const noexcept { return model_; }
  std::size_t finetune_count() const noexcept { return finetunes_; }

 private:
  DynamicTrrConfig cfg_;
  ml::SequenceRegressor model_;
  // Streaming window: rows of [PMC..., P'_prev]; labels for fine-tuning.
  std::vector<std::vector<double>> window_rows_;
  std::vector<double> window_estimates_;
  double prev_estimate_ = 0.0;
  bool have_prev_ = false;
  std::size_t finetunes_ = 0;
};

}  // namespace highrpm::core
