// highrpm::core::FleetStepper — batched structure-of-arrays stepping of N
// monitored nodes.
//
// The per-node streaming path (HighRpm::on_tick) steps one node at a time:
// held-row substitution, DynamicTrr::step, Srr::predict_one — a dot product
// per output unit per node per tick. FleetStepper re-expresses the same
// tick for a whole fleet: nodes are grouped into fixed shards, each shard
// packs its lanes' ring windows into one contiguous batch matrix, the RNN
// runs one GEMM per layer per shard (shared-weights fleets), the SRR MLP
// runs one GEMM per layer per shard, and shards execute in parallel on the
// runtime thread pool.
//
// Determinism contract: every lane's outputs are byte-identical to the
// serial per-node path (a HighRpm clone stepped alone) at every fleet
// size, shard size, and thread count. The batched kernels evaluate the
// scalar path's expressions in the scalar path's operand order, lanes
// never read each other's state, and the shard partition is a pure
// function of (nodes, shard_lanes) — never of the thread count.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "highrpm/core/highrpm.hpp"

namespace highrpm::core {

struct FleetConfig {
  /// Max lanes per shard; one shard is one parallel_for index. The batch
  /// grouping cannot change results (batched kernels are bit-identical to
  /// scalar), only the GEMM shapes and the parallel grain.
  std::size_t shard_lanes = 64;
};

class FleetStepper {
 public:
  /// Build a fleet of `nodes` lanes from a trained golden instance: each
  /// lane clones the golden DynamicTrr (per-node window/stream state, and
  /// per-node weights when online fine-tuning is on); the SRR is shared —
  /// streaming never mutates its weights.
  FleetStepper(const HighRpm& golden, std::size_t nodes, FleetConfig cfg = {});

  /// Per-shard callbacks invoked on the thread executing the shard,
  /// immediately before and after its work — the hook the fleet bench uses
  /// for per-thread alloc-trace arming.
  struct ShardHooks {
    std::function<void(std::size_t)> before;
    std::function<void(std::size_t)> after;
  };

  /// Step every lane one tick. pmcs is nodes x F (row i = node i's sampled
  /// PMC rates); readings[i] is node i's IM reading when this tick carried
  /// one; out[i] receives node i's estimate. Zero heap allocations per
  /// shard once the shard scratch is warm (steady state).
  void step_tick(const math::Matrix& pmcs,
                 std::span<const std::optional<double>> readings,
                 std::span<PowerEstimate> out, const ShardHooks& hooks = {});

  /// Reset every lane's stream state (new program / new deployment).
  void reset_streams();

  std::size_t nodes() const noexcept { return lanes_.size(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// True when every lane shares one set of RNN weights (online fine-tune
  /// disabled), enabling the one-GEMM-per-layer cross-node fast path.
  bool shared_rnn() const noexcept { return shared_rnn_; }
  const DynamicTrr& node_trr(std::size_t i) const { return lanes_[i].trr; }

 private:
  struct Lane {
    DynamicTrr trr;
    /// Last finite PMC row — substituted on degraded ticks so TRR and SRR
    /// see the same held input (mirrors HighRpm::on_tick).
    std::vector<double> last_good;
    bool have_last_good = false;
  };

  /// Per-shard state, owned by exactly one parallel_for index per tick.
  /// All matrices reuse their allocations tick over tick.
  struct Shard {
    std::size_t begin = 0;  // lane range [begin, end)
    std::size_t end = 0;
    math::Matrix rows;       // L x F substituted PMC rows
    math::Matrix win_batch;  // (L*T) x (F+1) packed ring windows
    math::Matrix rnn_out;    // L x T batched RNN predictions
    ml::SequenceRegressor::BatchWorkspace rnn_ws;
    std::vector<DynamicTrr::StepPrep> preps;
    std::vector<double> raw;     // raw RNN estimate per lane
    std::vector<double> node_w;  // committed node power per lane
    std::vector<ComponentEstimate> comp;
    Srr::BatchScratch srr;
  };

  void step_shard(Shard& ss, const math::Matrix& pmcs,
                  std::span<const std::optional<double>> readings,
                  std::span<PowerEstimate> out);

  FleetConfig cfg_;
  /// Shared SRR (streaming never fine-tunes it) and, for shared-weights
  /// fleets, the one RNN every lane's window batches through. Kept as
  /// copies so concurrent shard reads never alias a lane's scratch.
  Srr srr_;
  ml::SequenceRegressor shared_model_;
  bool shared_rnn_ = false;
  std::vector<Lane> lanes_;
  std::vector<Shard> shards_;
};

}  // namespace highrpm::core
