// highrpm::core::FleetStepper — batched structure-of-arrays stepping of N
// monitored nodes.
//
// The per-node streaming path (HighRpm::on_tick) steps one node at a time:
// held-row substitution, DynamicTrr::step, Srr::predict_one — a dot product
// per output unit per node per tick. FleetStepper re-expresses the same
// tick for a whole fleet: nodes are grouped into fixed shards, each shard
// packs its lanes' ring windows into one contiguous batch matrix, the RNN
// runs one GEMM per layer per shard (shared-weights fleets), the SRR MLP
// runs one GEMM per layer per shard, and shards execute in parallel on the
// runtime thread pool.
//
// Determinism contract: every lane's outputs are byte-identical to the
// serial per-node path (a HighRpm clone stepped alone) at every fleet
// size, shard size, and thread count. The batched kernels evaluate the
// scalar path's expressions in the scalar path's operand order, lanes
// never read each other's state, and the shard partition is a pure
// function of (nodes, shard_lanes) — never of the thread count.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "highrpm/core/highrpm.hpp"

namespace highrpm::core {

struct FleetConfig {
  /// Max lanes per shard; one shard is one parallel_for index. The batch
  /// grouping cannot change results (batched kernels are bit-identical to
  /// scalar), only the GEMM shapes and the parallel grain.
  ///
  /// Boundary contract (validated by the FleetStepper constructor):
  /// shard_lanes == 0 is rejected with std::invalid_argument — it used to
  /// be silently rewritten to 1, turning a config typo into a degenerate
  /// one-lane-per-shard fleet. Values above the fleet size are clamped to
  /// the fleet size (one full shard), which is well-defined and what a
  /// "don't shard" request means.
  std::size_t shard_lanes = 64;
};

class FleetStepper {
 public:
  /// Build a fleet of `nodes` lanes from a trained golden instance: each
  /// lane clones the golden DynamicTrr (per-node window/stream state, and
  /// per-node weights when online fine-tuning is on); the SRR is shared —
  /// streaming never mutates its weights.
  FleetStepper(const HighRpm& golden, std::size_t nodes, FleetConfig cfg = {});

  /// Per-shard callbacks invoked on the thread executing the shard,
  /// immediately before and after its work — the hook the fleet bench uses
  /// for per-thread alloc-trace arming.
  struct ShardHooks {
    std::function<void(std::size_t)> before;
    std::function<void(std::size_t)> after;
  };

  /// Step every lane one tick. pmcs is nodes x F (row i = node i's sampled
  /// PMC rates); readings[i] is node i's IM reading when this tick carried
  /// one; out[i] receives node i's estimate. Zero heap allocations per
  /// shard once the shard scratch is warm (steady state).
  ///
  /// K-way attribution: when the golden instance carried a trained
  /// attribution head, pass tenant_pmcs (nodes x K*kNumPmcEvents, row i =
  /// node i's concatenated per-cgroup rows) and out[i] additionally gets
  /// its tenant split — bit-identical to the serial facade's 3-arg
  /// on_tick, batched as one extra GEMM per MLP layer per shard. Leaving
  /// tenant_pmcs null skips attribution (out[i].tenants stays 0).
  void step_tick(const math::Matrix& pmcs,
                 std::span<const std::optional<double>> readings,
                 std::span<PowerEstimate> out, const ShardHooks& hooks = {},
                 const math::Matrix* tenant_pmcs = nullptr);

  /// Caller-owned scratch for step_cohort. All buffers reuse their
  /// allocations call over call: once a Cohort has seen its largest cohort
  /// size, further steps through it perform zero heap allocations.
  struct Cohort {
    math::Matrix rows;       // L x F substituted PMC rows
    math::Matrix win_batch;  // (L*T) x (F+1) packed ring windows
    math::Matrix rnn_out;    // L x T batched RNN predictions
    ml::SequenceRegressor::BatchWorkspace rnn_ws;
    std::vector<DynamicTrr::StepPrep> preps;
    std::vector<double> raw;     // raw RNN estimate per lane
    std::vector<double> node_w;  // committed node power per lane
    std::vector<ComponentEstimate> comp;
    Srr::BatchScratch srr;
    // K-way attribution staging (untouched when tenant_pmcs is null).
    math::Matrix trows;       // L x K*F substituted tenant rows
    math::Matrix tenant_out;  // L x K attribution estimates
    Srr::BatchScratch tsrr;
  };

  /// Step an arbitrary cohort of lanes one tick — the primitive both
  /// step_tick (one cohort per shard) and the serve daemon's consumer pool
  /// (one cohort per drain cycle) run on. lane_ids[li] names the lane for
  /// cohort position li; pmcs.row(pmc_row0 + li), readings[li], and out[li]
  /// are that position's input row, optional IM reading, and output slot.
  ///
  /// Thread-safety contract: concurrent calls are safe iff their lane-id
  /// sets are disjoint and each call uses its own Cohort — lanes never
  /// share mutable state, the SRR/shared-RNN models are only read, and all
  /// per-call staging lives in the caller's scratch. lane_ids must not
  /// contain duplicates. Outputs are bit-identical to stepping each lane
  /// through the serial per-node path, for any cohort grouping.
  /// tenant_pmcs / tenant_row0 mirror pmcs / pmc_row0 for the attribution
  /// input (row tenant_row0 + li = cohort position li's tenant row); null
  /// skips attribution for this cohort.
  void step_cohort(std::span<const std::size_t> lane_ids,
                   const math::Matrix& pmcs, std::size_t pmc_row0,
                   std::span<const std::optional<double>> readings,
                   std::span<PowerEstimate> out, Cohort& scratch,
                   const math::Matrix* tenant_pmcs = nullptr,
                   std::size_t tenant_row0 = 0);

  /// Reset every lane's stream state (new program / new deployment).
  void reset_streams();

  std::size_t nodes() const noexcept { return lanes_.size(); }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Tenant count of the attribution head carried from the golden instance
  /// (0 when the golden had none).
  std::size_t tenants() const noexcept { return tenants_; }
  /// True when every lane shares one set of RNN weights (online fine-tune
  /// disabled), enabling the one-GEMM-per-layer cross-node fast path.
  bool shared_rnn() const noexcept { return shared_rnn_; }
  const DynamicTrr& node_trr(std::size_t i) const { return lanes_[i].trr; }
  /// Lane i's adaptive-sampling controller, or nullptr when the golden
  /// instance was not adaptive. Each lane observes its own committed
  /// estimates, so heterogeneous fleets diverge in mode lane by lane while
  /// every lane's decision stream stays byte-identical to the serial facade.
  const adapt::Controller* lane_controller(std::size_t i) const {
    return lanes_[i].ctl ? &*lanes_[i].ctl : nullptr;
  }

 private:
  struct Lane {
    DynamicTrr trr;
    /// Last finite PMC row — substituted on degraded ticks so TRR and SRR
    /// see the same held input (mirrors HighRpm::on_tick).
    std::vector<double> last_good;
    bool have_last_good = false;
    /// Same hold policy for the concatenated tenant row.
    std::vector<double> last_good_tenant;
    bool have_last_good_tenant = false;
    /// Present iff the golden instance was adaptive; observed after every
    /// commit, mirroring HighRpm::on_tick.
    std::optional<adapt::Controller> ctl;
  };

  /// Per-shard state, owned by exactly one parallel_for index per tick:
  /// the shard's contiguous lane range as a prebuilt cohort id list plus
  /// its own Cohort scratch (reused tick over tick). A shard tick is just
  /// step_cohort over [begin, end) — one code path for the whole-fleet and
  /// cohort-at-a-time callers, so they cannot drift.
  struct Shard {
    std::size_t begin = 0;  // lane range [begin, end)
    std::size_t end = 0;
    std::vector<std::size_t> ids;
    Cohort scratch;
  };

  FleetConfig cfg_;
  /// Shared SRR (streaming never fine-tunes it) and, for shared-weights
  /// fleets, the one RNN every lane's window batches through. Kept as
  /// copies so concurrent shard reads never alias a lane's scratch.
  Srr srr_;
  /// Shared K-way attribution head (copied from the golden; const at
  /// streaming time — the fleet path never self-calibrates, which is why
  /// the constructor rejects a golden with self_cal enabled).
  Srr tenant_srr_;
  std::size_t tenants_ = 0;
  ml::SequenceRegressor shared_model_;
  bool shared_rnn_ = false;
  std::vector<Lane> lanes_;
  std::vector<Shard> shards_;
};

}  // namespace highrpm::core
