// StaticTRR (paper §4.2.1): offline temporal-resolution restoration for
// power-log analysis. Pipeline:
//   1. a natural cubic spline through the sparse labeled readings (set A)
//      estimates the long-term trend P_splined for every tick;
//   2. a PMC-based residual model (decision tree — "we tested all the
//      methods listed in Table 4 but found DT worked best") estimates the
//      short-term deviation, giving P_residual = P_splined + r̂;
//   3. Algorithm 1 post-processes and merges the two estimates.
#pragma once

#include <span>
#include <vector>

#include "highrpm/math/matrix.hpp"
#include "highrpm/math/spline.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/ml/tree.hpp"

namespace highrpm::core {

struct StaticTrrConfig {
  /// Algorithm-1 agreement thresholds (not given in the paper; see
  /// DESIGN.md interpretation notes; ablated in bench_hyperparam).
  double alpha = 0.1;
  double beta = 0.5;
  /// Power plausibility bounds. <= 0 means derive from the labeled readings
  /// (min/max widened by bound_margin).
  double p_upper = 0.0;
  double p_bottom = 0.0;
  double bound_margin = 0.15;
  /// Spike-hold window of Algorithm-1 Operation 1 (the paper's
  /// miss_interval); the spline's local jump threshold is 30% of range.
  std::size_t miss_interval = 10;
  double spike_jump_fraction = 0.30;
  /// Fraction of the labeled set used to train each internal model
  /// (paper: "we select 50% of them as the training set").
  double train_fraction = 0.5;
  /// After the ResModel is trained on the held-out half's residuals, refit
  /// the trend spline on ALL labeled readings for the final restoration
  /// (validate-then-refit). Halving the knot density just to mirror the
  /// paper's split would undersample trends whose period is close to
  /// 2 x miss_interval.
  bool refit_spline_on_all = true;
  ml::TreeConfig res_tree{};
  std::uint64_t seed = 71;
};

/// Intermediate series exposed for evaluation (Table 6 compares the plain
/// spline against the merged StaticTRR output).
struct StaticTrrRestoration {
  std::vector<double> splined;
  std::vector<double> residual;  // spline + DT-estimated deviation
  std::vector<double> merged;    // Algorithm-1 output (the P_StaticTRR)
};

class StaticTrr {
 public:
  explicit StaticTrr(StaticTrrConfig cfg = {});

  /// Fit from one run: per-tick PMC features and timestamps plus the sparse
  /// labeled readings (indices into the tick range and their power values).
  void fit(const math::Matrix& pmcs, std::span<const double> times,
           std::span<const std::size_t> labeled_idx,
           std::span<const double> labeled_power);

  /// Restore the full-resolution node-power series for the fitted run.
  StaticTrrRestoration restore(const math::Matrix& pmcs,
                               std::span<const double> times) const;

  bool fitted() const noexcept { return spline_.fitted(); }
  const math::CubicSpline& spline() const noexcept { return spline_; }
  double p_upper() const noexcept { return p_upper_; }
  double p_bottom() const noexcept { return p_bottom_; }
  const StaticTrrConfig& config() const noexcept { return cfg_; }

 private:
  StaticTrrConfig cfg_;
  math::CubicSpline spline_;
  ml::DecisionTreeRegressor res_model_;
  double p_upper_ = 0.0;
  double p_bottom_ = 0.0;
};

/// Restore a collected run's node-power series with StaticTRR fitted on the
/// run's own IPMI readings — the P'_Node series that feeds SRR (paper Fig 3).
/// Falls back to the dense P_NODE target when the run carries fewer than
/// four IM readings (too short to spline).
std::vector<double> restore_node_power(const measure::CollectedRun& run,
                                       const StaticTrrConfig& cfg);

/// Algorithm 1 (post-processing) as a standalone, unit-testable function.
/// splined/residual are full-resolution series; returns the merged P_trr.
std::vector<double> static_trr_post_process(std::span<const double> splined,
                                            std::span<const double> residual,
                                            double p_upper, double p_bottom,
                                            const StaticTrrConfig& cfg);

/// Scrubbed sparse labeled readings (see clean_labeled_readings).
struct CleanedReadings {
  std::vector<std::size_t> idx;
  std::vector<double> power;
};

/// Input scrub shared by StaticTrr::fit and restore_node_power: drops
/// non-finite power values and out-of-range tick indices, sorts by tick,
/// and merges duplicate ticks by averaging their readings. Faulty sensors
/// (readout-clock jitter, delayed BMC polls) routinely produce duplicate or
/// non-monotonic timestamps, which would otherwise surface as a
/// CubicSpline "x must be strictly increasing" error from deep inside fit.
/// Already-clean input passes through unchanged.
CleanedReadings clean_labeled_readings(std::span<const std::size_t> idx,
                                       std::span<const double> power,
                                       std::size_t num_ticks);

}  // namespace highrpm::core
