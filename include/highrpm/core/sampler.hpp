// Reinforcement sampler for the active-learning stage (paper §4.1): the
// initial (measured) samples and the restored samples are pooled, and a
// random subset of reinforcement samples is drawn to fine-tune the models.
// Measured samples can be over-weighted so ground truth is never drowned
// out by model-generated data.
#pragma once

#include <cstdint>
#include <vector>

#include "highrpm/math/rng.hpp"

namespace highrpm::core {

struct SamplerConfig {
  std::size_t reinforcement_size = 256;
  /// Relative draw weight of measured vs. restored samples.
  double measured_weight = 3.0;
  std::uint64_t seed = 151;
};

class ReinforcementSampler {
 public:
  explicit ReinforcementSampler(SamplerConfig cfg = {});

  /// Draw reinforcement indices from a pool of n samples where
  /// measured[i] marks ground-truth entries. Sampling is without
  /// replacement (returns min(reinforcement_size, n) indices).
  std::vector<std::size_t> draw(const std::vector<bool>& measured);

  const SamplerConfig& config() const noexcept { return cfg_; }

 private:
  SamplerConfig cfg_;
  math::Rng rng_;
};

}  // namespace highrpm::core
