// SRR (paper §4.3): spatial-resolution restoration. A shallow MLP maps
// [P_Node, PMC...] -> [P_CPU, P_MEM]. Feeding the node-level IM/TRR power
// back in as an input feature is the paper's "bi-directional" workflow —
// the Table-8 ablation (with/without P_Node) is exposed through
// SrrConfig::include_pnode.
#pragma once

#include <span>

#include "highrpm/data/dataset.hpp"
#include "highrpm/measure/collector.hpp"
#include "highrpm/ml/mlp.hpp"

namespace highrpm::core {

struct SrrConfig {
  /// Output head width. 2 is the paper's [P_CPU, P_MEM] component split;
  /// K > 2 generalizes the head to K-way attribution (per-tenant watts, the
  /// SmartWatts direction) — same input assembly, same bounded consistency
  /// projection toward p_node - p_other_w, just K outputs instead of two.
  /// The legacy fit/predict API (ComponentEstimate) requires outputs == 2.
  std::size_t outputs = 2;
  /// Hidden layout; the paper's SRR is a single hidden layer ("input layer,
  /// a hidden layer, and an output layer") — deeper stacks dilute the
  /// P_Node signal (§6.4.3), which bench_hyperparam demonstrates.
  std::vector<std::size_t> hidden{32};
  std::size_t epochs = 60;
  double learning_rate = 2e-3;
  /// Table-8 ablation switch: false drops P_Node from the input layer.
  bool include_pnode = true;
  /// Latent-scale augmentation (see build_srr_training_set): virtual-
  /// application copies per training run and their component rescale
  /// ranges (CPU is more mix-sensitive than DRAM, hence the wider range).
  /// 0 copies disables augmentation.
  std::size_t augment_copies = 1;
  /// Inference-time consistency projection: rescale the predicted (cpu,
  /// mem) pair so it sums to p_node - p_other_w (the peripheral draw is a
  /// known constant, paper §5.2). Bounded by projection_limit to avoid
  /// amplifying bad node inputs. Only applies when include_pnode is true,
  /// unless project_without_pnode overrides that coupling (below).
  bool consistency_projection = true;
  /// Keep the projection active when include_pnode is false. The Table-8
  /// ablation drops BOTH the feature and the projection (so it isolates
  /// what P_Node contributes end to end) — hence the default coupling. The
  /// SmartWatts-style attribution head wants the opposite split: a PMC-only
  /// network (its raw output sum is then a genuine power prediction whose
  /// residual against the meter budget is the self-calibration drift
  /// signal) with the post-hoc budget rescale still applied.
  bool project_without_pnode = false;
  double p_other_w = 25.0;
  double projection_limit = 0.35;  // max relative rescale
  double projection_weight = 0.6;  // blend between raw (0) and projected (1)
  double augment_cpu_lo = 0.8;
  double augment_cpu_hi = 1.3;
  double augment_mem_lo = 0.85;
  double augment_mem_hi = 1.2;
  std::uint64_t seed = 131;
};

struct ComponentEstimate {
  double cpu_w = 0.0;
  double mem_w = 0.0;
};

class Srr {
 public:
  explicit Srr(SrrConfig cfg = {});

  /// Train from per-tick PMC features, node power (measured or TRR output)
  /// and component ground-truth labels. Requires cfg.outputs == 2 (the
  /// [P_CPU, P_MEM] head); K-way heads train through fit_multi.
  void fit(const math::Matrix& pmcs, std::span<const double> p_node,
           std::span<const double> p_cpu, std::span<const double> p_mem);

  /// Warm-start fine-tune on reinforcement samples (active learning stage).
  void fine_tune(const math::Matrix& pmcs, std::span<const double> p_node,
                 std::span<const double> p_cpu, std::span<const double> p_mem,
                 std::size_t epochs);

  /// K-way train: targets is n x cfg.outputs (column k = output k's watt
  /// labels — per-tenant attributed power for the attribution head). The
  /// 2-output fit() routes through this, so there is exactly one training
  /// path whatever the head width.
  void fit_multi(const math::Matrix& pmcs, std::span<const double> p_node,
                 const math::Matrix& targets);
  /// Warm-start K-way fine-tune (active learning / self-calibration).
  void fine_tune_multi(const math::Matrix& pmcs,
                       std::span<const double> p_node,
                       const math::Matrix& targets, std::size_t epochs);

  /// Caller-owned reusable buffers for the allocation-free predict path:
  /// the assembled [P_Node, PMC...] input row plus the MLP's scratch.
  struct Scratch {
    std::vector<double> row;
    std::vector<double> out;
    ml::Mlp::Scratch net;
  };

  /// Caller-owned buffers for the batched allocation-free predict path.
  struct BatchScratch {
    math::Matrix x;    // assembled [P_Node, PMC...] input rows
    math::Matrix out;  // raw network outputs (n x 2)
    ml::Mlp::BatchScratch net;
  };

  ComponentEstimate predict_one(std::span<const double> pmcs,
                                double p_node) const;
  /// predict_one with caller-owned scratch: bit-identical results, no heap
  /// allocation once the buffers are warm (the steady-state per-tick
  /// variant). Thread-safe on a const model with per-caller scratch.
  ComponentEstimate predict_one(std::span<const double> pmcs, double p_node,
                                Scratch& scratch) const;
  /// Batch prediction, one estimate per row.
  std::vector<ComponentEstimate> predict(const math::Matrix& pmcs,
                                         std::span<const double> p_node) const;
  /// Batched predict_one over the rows of `pmcs` into caller-owned output
  /// (out.size() == pmcs.rows()): one GEMM per MLP layer for all rows. Row
  /// assembly and the consistency projection are the same helpers the
  /// scalar path uses, and the network's batch forward matches its scalar
  /// forward bit for bit, so out[r] == predict_one(pmcs.row(r), p_node[r]).
  /// No allocation once the scratch is warm; thread-safe on a const model
  /// with per-caller scratch. p_node is ignored when include_pnode is off
  /// (pass anything of matching size or empty).
  void predict_batch_into(const math::Matrix& pmcs,
                          std::span<const double> p_node,
                          std::span<ComponentEstimate> out,
                          BatchScratch& scratch) const;

  /// K-way scalar predict: out.size() must equal cfg.outputs. Raw network
  /// outputs are clamped to >= 0 (watts cannot be negative — a near-idle
  /// output can otherwise train slightly negative and even dodge the
  /// consistency projection), then jointly projected toward the
  /// p_node - p_other_w budget. When raw_total is non-null it receives the
  /// clamped PRE-projection output sum — the self-calibration drift signal
  /// (how far the head has drifted from the node budget before the
  /// projection papers over it). Allocation-free once scratch is warm;
  /// thread-safe on a const model with per-caller scratch.
  void predict_one_into(std::span<const double> pmcs, double p_node,
                        std::span<double> out, Scratch& scratch,
                        double* raw_total = nullptr) const;
  /// Batched K-way predict over rows of `pmcs` into out (resized to
  /// pmcs.rows() x cfg.outputs). Row r is bit-identical to
  /// predict_one_into(pmcs.row(r), p_node[r], ...). Zero allocations once
  /// out and scratch are warm.
  void predict_batch_multi_into(const math::Matrix& pmcs,
                                std::span<const double> p_node,
                                math::Matrix& out,
                                BatchScratch& scratch) const;

  bool fitted() const noexcept { return net_.fitted(); }
  const SrrConfig& config() const noexcept { return cfg_; }
  const ml::Mlp& network() const noexcept { return net_; }

 private:
  math::Matrix assemble(const math::Matrix& pmcs,
                        std::span<const double> p_node) const;
  /// Bounded joint rescale of the K estimates toward the node budget — the
  /// single implementation every predict path (scalar, batch, 2-way, K-way)
  /// shares. Operates in place; est.size() == cfg.outputs.
  void apply_projection(double p_node, std::span<double> est) const;

  SrrConfig cfg_;
  ml::Mlp net_;
};

/// Assembled SRR training set across runs.
struct SrrTrainingSet {
  math::Matrix x;  // PMC features only (node power kept separately)
  std::vector<double> p_node;
  std::vector<double> p_cpu;
  std::vector<double> p_mem;
};

/// Build the SRR training set from collected runs: the node feature is each
/// run's TRR restoration (paper Fig 3: P'_Node feeds SRR), and — when
/// cfg.augment_copies > 0 — each run is additionally replayed as virtual
/// applications whose component powers are rescaled by per-copy factors
/// (a, b) drawn from [augment_lo, augment_hi], with the node feature shifted
/// consistently (node' = node + (a-1)·cpu + (b-1)·mem).
///
/// The augmentation mirrors reality: the same PMC readings can correspond to
/// very different component powers depending on instruction mix, so a model
/// trained across diverse (virtual) applications must route the node-power
/// information instead of memorizing a PMC-only mapping. This is what makes
/// the bi-directional design pay off (Table 8).
SrrTrainingSet build_srr_training_set(
    std::span<const measure::CollectedRun> runs, const SrrConfig& srr_cfg,
    const struct StaticTrrConfig& trr_cfg);

/// Assembled K-way attribution training set across multi-tenant runs.
struct AttributionTrainingSet {
  math::Matrix x;  // per-tenant PMC features, K*F per row
  std::vector<double> p_node;
  math::Matrix targets;  // n x K ground-truth tenant watts
};

/// Build the K-way attribution training set from tenant-bearing collected
/// runs (Collector::collect_tenants). Mirrors build_srr_training_set: the
/// node feature is each run's TRR restoration, and augment_copies replays
/// each run as virtual co-location mixes whose per-tenant powers are
/// rescaled by independent per-copy factors r_k drawn from
/// [augment_cpu_lo, augment_cpu_hi], with the node feature shifted
/// consistently (node' = node + sum_k (r_k - 1) * p_k). Every run must
/// carry the same tenant count; throws otherwise.
AttributionTrainingSet build_attribution_training_set(
    std::span<const measure::CollectedRun> runs, const SrrConfig& srr_cfg,
    const struct StaticTrrConfig& trr_cfg);

}  // namespace highrpm::core
