// Tabular dataset container: a feature matrix with named columns plus one or
// more named target vectors. This is the currency between measure::Collector
// (which produces aligned PMC/power samples) and the models in ml:: / core::.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "highrpm/math/matrix.hpp"

namespace highrpm::data {

class Dataset {
 public:
  Dataset() = default;
  Dataset(math::Matrix features, std::vector<std::string> feature_names);

  std::size_t num_samples() const noexcept { return features_.rows(); }
  std::size_t num_features() const noexcept { return features_.cols(); }

  const math::Matrix& features() const noexcept { return features_; }
  math::Matrix& features() noexcept { return features_; }
  const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }

  /// Index of a named feature column; throws std::out_of_range if absent.
  std::size_t feature_index(const std::string& name) const;
  bool has_feature(const std::string& name) const noexcept;

  /// Register/overwrite a target column. Length must equal num_samples()
  /// (or define it, if this is the first column on an empty dataset).
  void set_target(const std::string& name, std::vector<double> values);
  const std::vector<double>& target(const std::string& name) const;
  bool has_target(const std::string& name) const noexcept;
  std::vector<std::string> target_names() const;

  /// Append one sample row + its target values (targets must already exist,
  /// and values must cover all of them in target_names() order).
  void append_row(std::span<const double> row,
                  std::span<const double> target_values);

  /// New dataset containing the given sample rows (targets subset too).
  Dataset select_rows(std::span<const std::size_t> indices) const;
  /// First n rows / rows [start, start+n).
  Dataset slice(std::size_t start, std::size_t n) const;
  /// Concatenate rows of another dataset (schemas must match exactly).
  void concat(const Dataset& other);

  /// Add a feature column (e.g. injecting P_Node as an SRR input).
  void add_feature(const std::string& name, std::span<const double> values);
  /// Drop a feature column by name (for the Table-8 ablation).
  Dataset without_feature(const std::string& name) const;

 private:
  math::Matrix features_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> target_names_;
  std::vector<std::vector<double>> targets_;
};

}  // namespace highrpm::data
