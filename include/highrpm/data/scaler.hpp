// Feature scaling. PMC counts span ~9 orders of magnitude (cycles vs. branch
// misses), so every gradient-based model in ml:: standardizes its inputs.
#pragma once

#include <span>
#include <vector>

#include "highrpm/math/matrix.hpp"

namespace highrpm::data {

/// Zero-mean / unit-variance standardization per column.
class StandardScaler {
 public:
  void fit(const math::Matrix& x);
  math::Matrix transform(const math::Matrix& x) const;
  std::vector<double> transform_row(std::span<const double> row) const;
  /// transform_row into a caller-owned buffer (out.size() == row.size());
  /// no allocation — the steady-state per-tick variant. `out` may alias
  /// `row` (pure elementwise map).
  void transform_row_into(std::span<const double> row,
                          std::span<double> out) const;
  math::Matrix fit_transform(const math::Matrix& x);
  /// Undo transform(): inverse(transform(x)) recovers x up to rounding.
  math::Matrix inverse(const math::Matrix& x) const;
  std::vector<double> inverse_row(std::span<const double> row) const;
  bool fitted() const noexcept { return !mean_.empty(); }

  const std::vector<double>& means() const noexcept { return mean_; }
  const std::vector<double>& stddevs() const noexcept { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Min-max scaling to [0, 1] per column (constant columns map to 0).
class MinMaxScaler {
 public:
  void fit(const math::Matrix& x);
  math::Matrix transform(const math::Matrix& x) const;
  std::vector<double> transform_row(std::span<const double> row) const;
  /// transform_row into a caller-owned buffer; no allocation. `out` may
  /// alias `row`.
  void transform_row_into(std::span<const double> row,
                          std::span<double> out) const;
  math::Matrix fit_transform(const math::Matrix& x);
  /// Undo transform(): inverse(transform(x)) recovers x up to rounding.
  math::Matrix inverse(const math::Matrix& x) const;
  std::vector<double> inverse_row(std::span<const double> row) const;
  bool fitted() const noexcept { return !min_.empty(); }

 private:
  std::vector<double> min_;
  std::vector<double> range_;
};

/// Scalar target standardization with inverse transform.
class TargetScaler {
 public:
  void fit(std::span<const double> y);
  std::vector<double> transform(std::span<const double> y) const;
  double transform_one(double y) const;
  std::vector<double> inverse(std::span<const double> y) const;
  double inverse_one(double y) const;
  bool fitted() const noexcept { return fitted_; }

 private:
  double mean_ = 0.0;
  double std_ = 1.0;
  bool fitted_ = false;
};

}  // namespace highrpm::data
