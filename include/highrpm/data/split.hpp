// Train/test splitting and k-fold cross-validation (paper §5.3 uses 5-fold
// CV plus a 7-way suite-level seen/unseen protocol built on top of these).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "highrpm/math/rng.hpp"

namespace highrpm::data {

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Random shuffled split with the given test fraction.
SplitIndices train_test_split(std::size_t n, double test_fraction,
                              math::Rng& rng);

/// Deterministic contiguous split (preserves time ordering; required for
/// time-series models where shuffling would leak the future).
SplitIndices chronological_split(std::size_t n, double test_fraction);

/// K-fold cross validation indices. If shuffle is true the fold assignment
/// is randomized via rng; otherwise folds are contiguous blocks.
class KFold {
 public:
  KFold(std::size_t n_splits, bool shuffle = false);
  std::vector<SplitIndices> split(std::size_t n, math::Rng& rng) const;
  std::size_t n_splits() const noexcept { return n_splits_; }

 private:
  std::size_t n_splits_;
  bool shuffle_;
};

}  // namespace highrpm::data
