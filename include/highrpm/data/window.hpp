// Sliding-window sequence construction for the recurrent models (paper Fig 4):
// each DynamicTRR sample s'(i) is a (miss_interval x (m+1)) block of
// [PMC..., P'_Node(prev)] rows whose label is the vector of the window's
// miss_interval node-power values.
#pragma once

#include <cstddef>
#include <vector>

#include "highrpm/math/matrix.hpp"

namespace highrpm::data {

/// One recurrent training sample: a sequence of feature rows plus a label
/// vector (one label per step, per Fig 4's <P(i) ... P(i+miss-1)> labels).
struct SequenceSample {
  math::Matrix steps;          // window x feature_dim
  std::vector<double> labels;  // window labels (node power per step)
};

/// Build (n - window + 1) overlapping windows from a flat feature matrix and
/// a label series. Throws if n < window.
std::vector<SequenceSample> make_windows(const math::Matrix& features,
                                         std::span<const double> labels,
                                         std::size_t window);

/// Like make_windows but appends the *previous step's* label as an extra
/// trailing feature on every row (the paper's P'_Node(i-1) feature); the
/// first row of the series uses `initial_prev`.
std::vector<SequenceSample> make_windows_with_prev_label(
    const math::Matrix& features, std::span<const double> labels,
    std::size_t window, double initial_prev);

}  // namespace highrpm::data
