// Minimal CSV reader/writer for persisting traces and bench outputs.
#pragma once

#include <string>
#include <vector>

namespace highrpm::data {

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  std::size_t num_rows() const noexcept { return rows.size(); }
  std::size_t num_cols() const noexcept { return header.size(); }
  /// Column values by name; throws std::out_of_range if absent.
  std::vector<double> column(const std::string& name) const;
};

/// Write a numeric table with header. Throws std::runtime_error on I/O error.
void write_csv(const std::string& path, const CsvTable& table);

/// Parse a numeric CSV (all fields after the header must parse as double).
CsvTable read_csv(const std::string& path);

}  // namespace highrpm::data
