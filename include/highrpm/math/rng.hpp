// Deterministic, fast pseudo-random generation.
//
// Everything stochastic in HighRPM (simulator noise, sampler draws, model
// initialization, bootstrap resampling) goes through Rng so that runs are
// reproducible from a single seed. The engine is xoshiro256**, seeded via
// SplitMix64 per the reference recommendation.
#pragma once

#include <cstdint>
#include <vector>

namespace highrpm::math {

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box-Muller (cached spare deviate).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Poisson-distributed count (Knuth for small lambda, normal approx above 30).
  std::uint64_t poisson(double lambda);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Exponential with given rate.
  double exponential(double rate);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);
  /// k indices sampled without replacement from [0, n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Independent child generator (for giving submodules their own stream).
  Rng split();

  /// Deterministic per-task stream: the generator for task `index` of a job
  /// seeded with `seed`. Unlike split(), fork is a pure function — parallel
  /// workers can derive their streams independently and in any order, which
  /// is what keeps same-seed serial and parallel runs bit-identical.
  static Rng fork(std::uint64_t seed, std::uint64_t index);

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace highrpm::math
