// Error metrics from the paper's §5.5: MAPE, RMSE, MAE, R².
#pragma once

#include <span>
#include <string>

namespace highrpm::math {

/// Mean absolute percentage error, in percent. Observations with
/// |y_true| < eps are skipped (matching common MAPE implementations).
/// Contract: when EVERY observation is skipped (all-near-zero truth, e.g.
/// an idle tenant) the metric is undefined and returns quiet NaN — never
/// 0.0, which would read as a perfect score. Callers that print or
/// aggregate MAPE must handle non-finite values (bench reporters render
/// them as "n/a").
double mape(std::span<const double> y_true, std::span<const double> y_pred,
            double eps = 1e-9);
double rmse(std::span<const double> y_true, std::span<const double> y_pred);
double mae(std::span<const double> y_true, std::span<const double> y_pred);
/// Coefficient of determination; 1 - SS_res/SS_tot. Returns 0 when y_true is
/// constant (undefined R²).
double r2(std::span<const double> y_true, std::span<const double> y_pred);

/// All four metrics bundled — the row format used by the paper's tables.
struct MetricReport {
  double mape = 0.0;
  double rmse = 0.0;
  double mae = 0.0;
  double r2 = 0.0;

  /// "MAPE=.. RMSE=.. MAE=.. R2=.." single-line rendering.
  std::string to_string() const;
};

MetricReport evaluate_metrics(std::span<const double> y_true,
                              std::span<const double> y_pred);

}  // namespace highrpm::math
