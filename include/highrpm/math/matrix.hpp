// Dense row-major matrix and vector utilities used throughout HighRPM.
//
// This is deliberately a small, dependency-free linear-algebra core: the
// models in highrpm::ml need matrix products, transposed products, and a
// couple of factorizations (Cholesky, QR least squares in solve.hpp) — not a
// full BLAS. Everything is double precision and value-semantic.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace highrpm::math {

/// Dense row-major matrix of doubles.
///
/// Invariants: data_.size() == rows_ * cols_ always holds; a
/// default-constructed matrix is 0x0 and usable as an empty value.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Build from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Wrap a flat row-major buffer (copies the data).
  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::span<const double> flat);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// View of row r as a contiguous span.
  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::vector<double> col(std::size_t c) const;

  /// Reshape to rows x cols, reusing the existing allocation when capacity
  /// allows (the steady-state monitoring tick resizes its window matrix in
  /// place every tick). Element values are unspecified after a shape
  /// change — callers overwrite every cell.
  void resize(std::size_t rows, std::size_t cols);

  std::span<double> flat() noexcept { return data_; }
  std::span<const double> flat() const noexcept { return data_; }

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  bool same_shape(const Matrix& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Throws std::invalid_argument on shape mismatch.
/// Cache-blocked and parallelized over row blocks of A via the runtime pool;
/// each output row is computed by exactly one task with a fixed summation
/// order, so the result is bit-identical for any thread count.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A * B^T (row-by-row dot products; avoids materializing a transpose).
/// Parallelized over rows of A with the same determinism guarantee.
Matrix matmul_nt(const Matrix& a, const Matrix& b);
/// C = A^T * A (symmetric; computed exploiting symmetry).
Matrix gram(const Matrix& a);
/// y = A * x.
std::vector<double> matvec(const Matrix& a, std::span<const double> x);
/// y = A * x into a caller-owned buffer (y.size() == A.rows()); no
/// allocation, serial. The per-row summation order matches matvec exactly,
/// so results are bit-identical to the allocating overload. This is the
/// hot-path variant for the per-tick inference path, where vectors are tiny
/// and pool dispatch would cost more than the product.
void matvec_into(const Matrix& a, std::span<const double> x,
                 std::span<double> y);
/// y = A^T * x.
std::vector<double> matvec_t(const Matrix& a, std::span<const double> x);
/// C = A * B^T into a caller-owned matrix (resized in place, reusing its
/// allocation); no allocation once C's capacity suffices, serial, same
/// per-cell dot order as matmul_nt.
void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c);
/// C(i, j) = bias[j] + A.row(i) · B.row(j), into a caller-owned matrix —
/// the batched form of the scalar affine step `b[j] + dot(w.row(j), x)`
/// used by every layer forward pass in ml. The bias is the *left* addend
/// and the dot runs in matmul_nt's element order, so each output cell is
/// bit-identical to the per-row scalar expression it replaces. Serial, no
/// allocation once C's capacity suffices. bias.size() must equal b.rows().
void matmul_nt_bias_into(const Matrix& a, const Matrix& b,
                         std::span<const double> bias, Matrix& c);

// --- small vector helpers (free functions over std::span/std::vector) ---

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
/// a += s * b
void axpy(double s, std::span<const double> b, std::span<double> a);
void scale(std::span<double> a, double s);
std::vector<double> vec_add(std::span<const double> a, std::span<const double> b);
std::vector<double> vec_sub(std::span<const double> a, std::span<const double> b);

}  // namespace highrpm::math
