// Linear solvers used by the regression models: Cholesky for SPD normal
// equations (ridge / linear regression) and Householder QR for plain
// least squares when the Gram matrix is ill-conditioned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "highrpm/math/matrix.hpp"

namespace highrpm::math {

/// Solve A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::domain_error if A is not (numerically) SPD.
std::vector<double> solve_cholesky(const Matrix& a, std::span<const double> b);

/// Minimize ||A x - b||_2 via Householder QR (A.rows() >= A.cols()).
/// Rank-deficient columns get a zero coefficient rather than throwing.
std::vector<double> solve_least_squares(const Matrix& a,
                                        std::span<const double> b);

/// Solve the ridge-regularized normal equations (A^T A + lambda I) x = A^T b.
/// The intercept column (if flagged) is excluded from regularization by
/// passing its index; pass SIZE_MAX to regularize everything.
std::vector<double> solve_ridge(const Matrix& a, std::span<const double> b,
                                double lambda,
                                std::size_t unpenalized_col = SIZE_MAX);

/// Natural-spline style tridiagonal solve (Thomas algorithm).
/// diag/lower/upper are the three bands; rhs is overwritten conceptually but
/// passed by value. All bands must describe a diagonally dominant system.
std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::vector<double> rhs);

}  // namespace highrpm::math
