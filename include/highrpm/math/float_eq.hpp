// The one place in HighRPM where exact floating-point comparison is
// allowed to be spelled out.
//
// HighRPM's determinism guarantee (same seed => bit-identical TRR/SRR
// output for any thread count) means exact comparisons are sometimes the
// *correct* tool: skipping a multiply when a coefficient is exactly zero,
// detecting a stuck sensor that repeats the identical quantized value,
// checking whether a measured reading superseded a prediction. Replacing
// those with epsilon tests would silently change numeric behavior.
//
// But a raw `a == b` at a call site cannot be told apart from the classic
// rounding bug, so the correctness gate bans it everywhere (linter rule
// float-compare; -Wfloat-equal under HIGHRPM_WERROR=ON) and routes
// intentional uses through these helpers instead. The names carry the
// intent; this header carries the rationale.
#pragma once

#include <cmath>

namespace highrpm::math {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfloat-equal"

/// Intentional bit-level equality: true iff a == b exactly (so NaN never
/// compares equal, and -0.0 == +0.0 as IEEE defines). Use for stuck-value
/// detection, "did the measurement supersede the estimate" checks, and
/// tie detection on values that were never rounded independently.
[[nodiscard]] constexpr bool exact_eq(double a, double b) noexcept {
  return a == b;
}

/// Intentional exact zero test (matches +0.0 and -0.0). Use for
/// sparsity-skip fast paths: skipping work for an exact zero can never
/// change the result, while an epsilon test would.
[[nodiscard]] constexpr bool is_zero(double x) noexcept { return x == 0.0; }

#pragma GCC diagnostic pop

/// Tolerance comparison for everything that *was* rounded independently:
/// |a-b| <= abs_tol + rel_tol * max(|a|,|b|). Not a replacement for
/// exact_eq — the two answer different questions.
[[nodiscard]] inline bool approx_eq(double a, double b, double rel_tol = 1e-12,
                                    double abs_tol = 0.0) noexcept {
  if (exact_eq(a, b)) return true;  // covers infinities of the same sign
  const double diff = std::fabs(a - b);
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

}  // namespace highrpm::math
