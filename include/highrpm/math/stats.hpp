// Descriptive statistics helpers shared by the simulator, the models and the
// evaluation harness.
#pragma once

#include <span>
#include <vector>

namespace highrpm::math {

double mean(std::span<const double> v);
/// Population variance (divide by n). Returns 0 for n < 1.
double variance(std::span<const double> v);
double stddev(std::span<const double> v);
double min_value(std::span<const double> v);
double max_value(std::span<const double> v);
/// Linear-interpolated quantile, q in [0, 1].
double quantile(std::vector<double> v, double q);
double median(std::vector<double> v);
/// Pearson correlation; returns 0 when either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);
/// Lag-k autocorrelation of a series; returns 0 when variance is ~0.
double autocorrelation(std::span<const double> v, std::size_t lag);
/// Simple moving average with a centered window of the given (odd) width.
std::vector<double> moving_average(std::span<const double> v,
                                   std::size_t window);
/// True iff every element is finite (no NaN/Inf). Empty spans are finite.
bool all_finite(std::span<const double> v);

}  // namespace highrpm::math
