// Natural cubic spline interpolation — the long-term trend estimator used by
// StaticTRR (paper §4.2.1). Knots are the sparse IPMI readings; evaluation
// between knots reconstructs the 1 Sa/s trend. Outside the knot range we
// extrapolate with the boundary cubic clamped to linear to avoid blow-up.
#pragma once

#include <span>
#include <vector>

namespace highrpm::math {

/// Natural cubic spline through (x_i, y_i) with strictly increasing x.
class CubicSpline {
 public:
  CubicSpline() = default;
  /// Throws std::invalid_argument if fewer than 2 points or x not increasing.
  CubicSpline(std::span<const double> x, std::span<const double> y);

  bool fitted() const noexcept { return !x_.empty(); }
  std::size_t knots() const noexcept { return x_.size(); }

  /// Evaluate the spline at t (linear extrapolation outside the knot range).
  double operator()(double t) const;
  std::vector<double> evaluate(std::span<const double> t) const;

  /// First derivative at t.
  double derivative(double t) const;

 private:
  std::size_t segment(double t) const;

  std::vector<double> x_;
  std::vector<double> y_;
  // Per-segment cubic coefficients: y = a + b dt + c dt^2 + d dt^3.
  std::vector<double> b_, c_, d_;
};

/// Piecewise-linear interpolation (baseline for comparisons / tests).
class LinearInterp {
 public:
  LinearInterp() = default;
  LinearInterp(std::span<const double> x, std::span<const double> y);
  double operator()(double t) const;

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

}  // namespace highrpm::math
