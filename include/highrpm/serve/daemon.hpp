// serve::Daemon — the resident monitoring service: lock-free per-node
// ingestion, a sharded consumer pool draining through the fleet stepper's
// allocation-free cohort path, and a wait-free snapshot/query side.
//
// Data path:
//
//   producer threads        bounded SPSC rings         consumer pool
//   (one per node set) -->  (one per node)      -->    (owns disjoint
//   offer(node, tick)       Enqueued{tick,drops}       node ranges)
//                                                        |
//                                    FleetStepper::step_cohort (batched,
//                                    0 allocs/tick steady)   |
//                                                        v
//                           NodeStatusCell seqlocks  <--  publish
//                           + per-suite error histograms
//
// Overload degrades, never corrupts: a full ring sheds predict-only ticks
// (counted per node), while reading-carrying ticks get a bounded retry
// before they too are dropped (counted separately — losing a label costs
// model accuracy, losing a predict tick only costs resolution). Each shed
// tick is folded into the NEXT accepted tick's dropped_before count, so
// the consumer learns about gaps in-band and in order, and bridges each
// gap with up to held_fallback_cap held-row catch-up steps (the PR-2
// degradation machinery: last finite row substituted, no reading) before
// stepping the real tick.
//
// Determinism: with a fixed offer schedule per node and no sheds, every
// node's published estimate stream is bit-identical to the serial facade
// replaying the same ticks, for ANY consumer count — lanes never interact
// and step_cohort is grouping-invariant (the serve determinism suite pins
// snapshot byte-equality across consumer counts).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "highrpm/core/fleet.hpp"
#include "highrpm/measure/stream.hpp"
#include "highrpm/obs/obs.hpp"
#include "highrpm/runtime/worker.hpp"
#include "highrpm/serve/snapshot.hpp"
#include "highrpm/serve/spsc_ring.hpp"

namespace highrpm::serve {

/// One ring slot: the tick plus how many of this node's earlier ticks were
/// shed since the last accepted one (in-band gap reporting, preserves
/// per-node order). Trivially copyable, so ring transfer never allocates.
struct Enqueued {
  measure::StreamTick tick;
  std::uint32_t dropped_before = 0;
};

/// Outcome of one offer() call, for producer-side accounting.
enum class OfferResult {
  kAccepted,        // enqueued
  kShed,            // ring full, predict-only tick dropped (sheddable)
  kDroppedReading,  // ring full, reading tick dropped after bounded retries
};

struct DaemonConfig {
  /// Consumer threads; clamped to the node count. Must be >= 1.
  std::size_t consumers = 1;
  /// Per-node ring capacity (rounded up to a power of two). Must be >= 1.
  std::size_t ring_capacity = 1024;
  /// Max held-row catch-up steps bridged per gap — bounds the work a burst
  /// of sheds can demand, so overload cannot make the consumer fall further
  /// behind by paying full price for ticks it already dropped.
  std::size_t held_fallback_cap = 3;
  /// Bounded yield-retry budget for reading-carrying ticks at a full ring.
  std::size_t offer_retries = 1 << 14;
  /// Best-effort pin of consumer c to CPU (c mod hardware_concurrency).
  bool pin_consumers = false;
  /// Per-cycle callbacks on the consumer thread, immediately around each
  /// drain cycle — the hook the alloc-trace harness uses for per-thread
  /// arming (mirrors FleetStepper::ShardHooks).
  struct CycleHooks {
    std::function<void(std::size_t)> before;
    std::function<void(std::size_t)> after;
  };
  CycleHooks hooks;
};

class Daemon {
 public:
  /// Build a daemon for `nodes` lanes cloned from a trained golden
  /// instance. node_suites[i] names node i's workload suite (groups the
  /// restoration-error histograms); must have exactly `nodes` entries.
  /// Throws std::invalid_argument on consumers == 0, ring_capacity == 0,
  /// nodes == 0, or a suite-list size mismatch. A golden with a trained
  /// attribution head turns on K-way attribution end to end: offered
  /// StreamTicks' tenant rows feed the fleet's attribution GEMM and each
  /// cell publishes packed per-tenant watts — which requires the tenant
  /// count to fit a ring slot (<= measure::kStreamMaxTenants; throws
  /// otherwise).
  Daemon(const core::HighRpm& golden, std::size_t nodes,
         std::vector<std::string> node_suites, DaemonConfig cfg = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Launch the consumer pool. Throws std::logic_error if already running.
  void start();

  /// Stop the consumer pool: consumers finish draining whatever their
  /// rings hold, then exit. Call after the producers stopped offering.
  /// Idempotent.
  void stop();

  /// Offer one tick for `node`. SPSC contract: at most one thread offers
  /// to a given node at a time (different nodes may be offered to
  /// concurrently). Never blocks beyond the bounded reading retry.
  OfferResult offer(std::size_t node, const measure::StreamTick& tick);

  /// Wait until every ring is empty and every consumer is between cycles —
  /// i.e. every offered tick's effect is published. Precondition: the
  /// daemon is running and no thread is concurrently offering; throws
  /// std::logic_error when not running.
  void quiesce() const;

  /// One coherent read-out; safe to call at any time from any thread while
  /// ingestion continues. Totals are sums of the captured per-node rows.
  DaemonSnapshot snapshot() const;

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  std::size_t nodes() const noexcept { return nodes_.size(); }
  std::size_t consumers() const noexcept { return consumers_.size(); }
  const core::FleetStepper& fleet() const noexcept { return fleet_; }

 private:
  struct NodeState {
    explicit NodeState(std::size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<Enqueued> ring;
    NodeStatusCell cell;
    // Ingestion accounting. Counters are multi-writer-safe; pending_drop
    // and stepped are plain because each has exactly one writing thread
    // (the node's producer / the node's owning consumer).
    obs::Counter offered, accepted, shed, dropped_readings, backpressure,
        held;
    std::uint32_t pending_drop = 0;  // producer-side shed run length
    std::uint64_t stepped = 0;       // consumer-side model ticks (incl. held)
    std::size_t suite_idx = 0;
  };

  /// Per-consumer state: the owned node range plus all staging buffers the
  /// drain cycle needs, preallocated at start() so the steady-state cycle
  /// performs zero heap allocations.
  struct ConsumerState {
    std::size_t begin = 0, end = 0;  // owned node range [begin, end)
    core::FleetStepper::Cohort cohort;
    std::vector<std::size_t> ids;
    math::Matrix rows;
    std::vector<std::optional<double>> readings;
    std::vector<core::PowerEstimate> out;
    std::vector<Enqueued> staged;
    math::Matrix held_row;  // 1 x F, all-NaN: forces held-row substitution
    std::vector<std::optional<double>> held_reading;  // {nullopt}
    std::vector<core::PowerEstimate> held_out;
    // K-way attribution staging (sized only when the fleet carries an
    // attribution head). held_trow mirrors held_row: all-NaN so held
    // catch-up steps substitute the lane's last good tenant row too.
    math::Matrix trows;
    math::Matrix held_trow;
    std::atomic<bool> busy{false};
    runtime::Worker worker;
  };

  void consume_loop(std::size_t c);
  /// Drain at most one tick per owned node; returns whether any was found.
  bool consume_cycle(ConsumerState& cs);

  DaemonConfig cfg_;
  core::FleetStepper fleet_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::unique_ptr<ConsumerState>> consumers_;
  std::vector<std::string> suites_;  // first-appearance order
  std::vector<std::unique_ptr<obs::Histogram>> suite_err_mw_;
  obs::Histogram all_err_mw_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
};

/// serve::Producer — a seeded per-node-set tick emitter on its own
/// runtime::Worker. Each producer owns a disjoint set of nodes and their
/// NodeTickStreams, emitting bursts round-robin across its nodes with an
/// optional pause between bursts (the bench's steady / bursty / overload
/// patterns are just parameter points of this schedule).
class Producer {
 public:
  struct Config {
    std::uint64_t ticks_per_node = 0;  // total ticks emitted per node
    std::size_t burst_len = 1;         // back-to-back ticks per node, per round
    std::uint64_t pause_us = 0;        // sleep between rounds (0 = flood)
  };

  /// node_ids[i] is fed from streams[i]; the two must align. The producer
  /// does not start until start().
  Producer(Daemon& daemon, std::vector<std::size_t> node_ids,
           std::vector<measure::NodeTickStream> streams, Config cfg);

  void start();
  /// Block until the schedule completes. Idempotent.
  void join();

 private:
  void run();

  Daemon& daemon_;
  std::vector<std::size_t> node_ids_;
  std::vector<measure::NodeTickStream> streams_;
  Config cfg_;
  runtime::Worker worker_;
};

}  // namespace highrpm::serve
