// serve::SpscRing — a bounded wait-free single-producer single-consumer
// queue, the ingestion boundary between each node's producer thread and
// the daemon's consumer pool.
//
// Classic two-index ring: the producer owns tail_, the consumer owns
// head_, each publishes its index with a release store after touching the
// slot and reads the other side's index with an acquire load. Capacity is
// rounded up to a power of two so the occupancy test and slot index are a
// subtraction and a mask — no modulo, no wrapping hazards (indices are
// free-running 64-bit). try_push/try_pop never block and never allocate;
// T is copied in and out by value, so trivially copyable items (serve's
// Enqueued ticks) make the steady-state path allocation-free.
//
// Exactly one producer thread and one consumer thread per ring — the class
// does not detect violations; serve's daemon enforces the pairing
// structurally (one ring per node, one producer per node, each node owned
// by exactly one consumer).
//
// The class is templated over an atomics backend (verify/backend.hpp) so
// the SAME source is shipped and model-checked: the default
// verify::StdBackend compiles to plain std::atomic / bare slots (zero
// overhead — pinned by the perf-smoke gates), while the model-checker
// suites in tests/verify/ instantiate it with verify::ModelBackend to
// exhaustively explore interleavings and weak-memory read choices.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "highrpm/verify/backend.hpp"

namespace highrpm::serve {

template <typename T, typename Backend = verify::StdBackend>
class SpscRing {
 public:
  /// `capacity` is a minimum; the ring rounds it up to a power of two.
  /// Throws std::invalid_argument on 0.
  explicit SpscRing(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("serve::SpscRing: capacity must be >= 1");
    }
    capacity_ = std::bit_ceil(capacity);
    slots_.resize(capacity_);
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when the ring is full (item not enqueued).
  bool try_push(const T& item) {
    // Producer owns tail_ (no one else stores it), so relaxed is enough.
    const std::size_t tail =  // HIGHRPM_LINT_ALLOW(memory-order-audit): producer-owned index, no other writer
        tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == capacity_) return false;
    slots_[tail & (capacity_ - 1)].write(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty (out untouched).
  bool try_pop(T& out) {
    // Consumer owns head_ (no one else stores it), so relaxed is enough.
    const std::size_t head =  // HIGHRPM_LINT_ALLOW(memory-order-audit): consumer-owned index, no other writer
        head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = slots_[head & (capacity_ - 1)].read();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot occupancy — exact only when the queried side is quiescent.
  ///
  /// head_ is loaded BEFORE tail_: a consumer can only advance head_ past
  /// entries whose tail_ publication it already observed, so any tail_
  /// value read after head_ is >= the head_ we hold and the subtraction
  /// cannot underflow. (The reverse order could read a stale tail_ against
  /// a fresher head_ and wrap to ~2^64 — caught by the model checker in
  /// tests/verify/ring_verify_test.cpp and pinned by a mutation fixture.)
  /// The result may still transiently EXCEED the true occupancy by way of
  /// a stale head_, so callers treat it as an estimate, never an invariant.
  /// (Not noexcept: the model backend unwinds aborted executions.)
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail - head;
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_ = 0;
  std::vector<typename Backend::template Raw<T>> slots_;
  alignas(64) typename Backend::template Atomic<std::size_t> head_{0};
  alignas(64) typename Backend::template Atomic<std::size_t> tail_{0};
};

}  // namespace highrpm::serve
