// serve snapshot types — the query side of the resident monitoring daemon.
//
// Consumers publish each node's latest estimate into a NodeStatusCell, a
// seqlock: one writer (the consumer that owns the node), any number of
// readers, readers never block the writer. The daemon's snapshot() walks
// the cells plus the per-node counters into a DaemonSnapshot — a plain
// value the caller owns, safe to format or diff while ingestion continues.
//
// Coherence contract: a successful NodeStatusCell::read returns one
// writer-published state in full (all fields from the same publish).
// DaemonSnapshot totals are computed from the per-node values actually
// captured in that snapshot, so totals always equal the sum of the rows —
// no torn aggregate can escape (counter totals never exceed what the rows
// account for).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace highrpm::serve {

/// One node's latest published state, as captured by a coherent read.
struct NodeStatus {
  std::uint64_t ticks = 0;  // ticks stepped through the model (incl. held)
  double node_w = 0.0;
  double cpu_w = 0.0;
  double mem_w = 0.0;
  bool measured = false;  // last tick carried an accepted IM reading
  // Ingestion accounting (from the node's counters, read at snapshot time).
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;             // sheddable ticks dropped at a full ring
  std::uint64_t dropped_readings = 0; // reading ticks lost despite retries
  std::uint64_t backpressure = 0;     // bounded retry rounds spent on readings
  std::uint64_t held = 0;             // held-row catch-up steps executed
};

/// Restoration-error summary over one workload suite (milliwatts, from the
/// daemon's per-suite histograms; populated only for unmeasured ticks —
/// measured ticks restore the reading exactly by construction).
struct SuiteStats {
  std::string suite;
  std::uint64_t samples = 0;
  std::uint64_t err_p50_mw = 0;
  std::uint64_t err_p99_mw = 0;
  std::uint64_t err_max_mw = 0;
};

/// One coherent daemon read-out. Totals are sums of the per-node rows
/// captured in this same snapshot.
struct DaemonSnapshot {
  std::vector<NodeStatus> nodes;
  std::vector<SuiteStats> suites;
  std::uint64_t total_ticks = 0;
  std::uint64_t total_offered = 0;
  std::uint64_t total_accepted = 0;
  std::uint64_t total_shed = 0;
  std::uint64_t total_dropped_readings = 0;
  std::uint64_t total_held = 0;
  double total_node_w = 0.0;
  double total_cpu_w = 0.0;
  double total_mem_w = 0.0;
};

/// Canonical text form (%.17g doubles, one line per node/suite) — the byte
/// stream the serve determinism tests compare across consumer counts.
std::string to_string(const DaemonSnapshot& snap);

/// Seqlock cell: single writer, concurrent readers. The sequence counter is
/// even when the payload is stable and odd while a publish is in flight;
/// payload fields are individually atomic (relaxed) so concurrent access is
/// data-race-free by construction (TSan-clean), and the seq protocol makes
/// the *set* of fields coherent: read() only returns a payload bracketed by
/// two equal even sequence reads.
class NodeStatusCell {
 public:
  struct Value {
    std::uint64_t ticks = 0;
    double node_w = 0.0;
    double cpu_w = 0.0;
    double mem_w = 0.0;
    bool measured = false;
  };

  /// Writer side (one thread at a time).
  void publish(const Value& v) noexcept {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // odd: publish in flight
    // The fence keeps the payload stores below from reordering before the
    // odd store above — a reader that observes any new payload value and
    // then re-checks seq_ must see it odd (or already advanced) and retry.
    std::atomic_thread_fence(std::memory_order_release);
    ticks_.store(v.ticks, std::memory_order_relaxed);
    node_w_.store(v.node_w, std::memory_order_relaxed);
    cpu_w_.store(v.cpu_w, std::memory_order_relaxed);
    mem_w_.store(v.mem_w, std::memory_order_relaxed);
    measured_.store(v.measured, std::memory_order_relaxed);
    seq_.store(s + 2, std::memory_order_release);  // even: stable again
  }

  /// Reader side: spins until it brackets a stable payload. Wait-free in
  /// practice — publishes are a handful of stores, so retries are rare.
  Value read() const noexcept {
    Value v;
    for (;;) {
      const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1) {  // publish in flight; yield so a preempted writer
        std::this_thread::yield();  // (single-core box) can finish it
        continue;
      }
      v.ticks = ticks_.load(std::memory_order_relaxed);
      v.node_w = node_w_.load(std::memory_order_relaxed);
      v.cpu_w = cpu_w_.load(std::memory_order_relaxed);
      v.mem_w = mem_w_.load(std::memory_order_relaxed);
      v.measured = measured_.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) return v;
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<double> node_w_{0.0};
  std::atomic<double> cpu_w_{0.0};
  std::atomic<double> mem_w_{0.0};
  std::atomic<bool> measured_{false};
};

}  // namespace highrpm::serve
