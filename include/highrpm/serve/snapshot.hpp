// serve snapshot types — the query side of the resident monitoring daemon.
//
// Consumers publish each node's latest estimate into a NodeStatusCell, a
// seqlock: one writer (the consumer that owns the node), any number of
// readers, readers never block the writer. The daemon's snapshot() walks
// the cells plus the per-node counters into a DaemonSnapshot — a plain
// value the caller owns, safe to format or diff while ingestion continues.
//
// Coherence contract: a successful NodeStatusCell::read returns one
// writer-published state in full (all fields from the same publish).
// DaemonSnapshot totals are computed from the per-node values actually
// captured in that snapshot, so totals always equal the sum of the rows —
// no torn aggregate can escape (counter totals never exceed what the rows
// account for).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "highrpm/verify/backend.hpp"

namespace highrpm::serve {

/// Tenant capacity of a snapshot row — matches core::kMaxTenants without
/// pulling the core headers into the seqlock's include set.
inline constexpr std::size_t kSnapshotMaxTenants = 8;

/// One node's latest published state, as captured by a coherent read.
struct NodeStatus {
  std::uint64_t ticks = 0;  // ticks stepped through the model (incl. held)
  double node_w = 0.0;
  double cpu_w = 0.0;
  double mem_w = 0.0;
  bool measured = false;  // last tick carried an accepted IM reading
  /// K-way attribution, decoded from the cell's two packed tenant words at
  /// deciwatt (0.1 W) resolution. First `tenants` entries valid; 0 when the
  /// fleet runs without an attribution head.
  std::uint64_t tenants = 0;
  std::array<double, kSnapshotMaxTenants> tenant_w{};
  // Ingestion accounting (from the node's counters, read at snapshot time).
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;             // sheddable ticks dropped at a full ring
  std::uint64_t dropped_readings = 0; // reading ticks lost despite retries
  std::uint64_t backpressure = 0;     // bounded retry rounds spent on readings
  std::uint64_t held = 0;             // held-row catch-up steps executed
  // Adaptive-sampling controller state (decoded from the cell's packed
  // `adapt` word; all zero when the fleet runs without a controller).
  std::uint64_t adapt_mode = 0;          // 0 = off, 1 = sparse, 2 = dense
  std::uint64_t adapt_mode_changes = 0;  // saturating 31-bit counter
  std::uint64_t adapt_cheap_ticks = 0;   // saturating 31-bit counter
};

/// The per-node controller state travels through the seqlock as ONE packed
/// word rather than three more atomic fields: the payload stays small (the
/// model-checker suites sweep every payload store/load interleaving, and
/// each extra field multiplies that state space) and the three values are
/// coherent with each other by construction. Layout: bits 0-1 mode
/// (0 = controller off), bits 2-32 mode_changes, bits 33-63 cheap_ticks
/// (both saturating at 2^31 - 1).
constexpr std::uint64_t pack_adapt_state(std::uint64_t mode,
                                         std::uint64_t mode_changes,
                                         std::uint64_t cheap_ticks) noexcept {
  constexpr std::uint64_t kMax31 = (std::uint64_t{1} << 31) - 1;
  const std::uint64_t changes = mode_changes > kMax31 ? kMax31 : mode_changes;
  const std::uint64_t cheap = cheap_ticks > kMax31 ? kMax31 : cheap_ticks;
  return (mode & std::uint64_t{3}) | (changes << 2) | (cheap << 33);
}
constexpr std::uint64_t adapt_mode_of(std::uint64_t word) noexcept {
  return word & std::uint64_t{3};
}
constexpr std::uint64_t adapt_changes_of(std::uint64_t word) noexcept {
  return (word >> 2) & ((std::uint64_t{1} << 31) - 1);
}
constexpr std::uint64_t adapt_cheap_of(std::uint64_t word) noexcept {
  return (word >> 33) & ((std::uint64_t{1} << 31) - 1);
}

/// Per-tenant watts travel through the seqlock as TWO packed words (4
/// tenants x 16 bits each), the same small-payload tradeoff as the adapt
/// word: the model-checker sweeps every payload store/load interleaving,
/// and 8 more atomic doubles would explode that state space. Encoding is
/// deciwatts saturating at 6553.5 W per tenant (far above any node budget);
/// non-finite or negative inputs encode as 0. Snapshot-side tenant
/// resolution is therefore 0.1 W — diagnostics, not the estimation path
/// (the exact doubles stay in PowerEstimate).
constexpr std::uint64_t tenant_deciwatts(double w) noexcept {
  if (!(w > 0.0)) return 0;  // also catches NaN
  const double dw = w * 10.0 + 0.5;
  return dw >= 65535.0 ? std::uint64_t{65535} : static_cast<std::uint64_t>(dw);
}
/// Pack tenants [4*word_idx, 4*word_idx+4) of `watts` into one word.
constexpr std::uint64_t pack_tenant_word(const double* watts, std::size_t count,
                                         std::size_t word_idx) noexcept {
  std::uint64_t word = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const std::size_t k = 4 * word_idx + s;
    if (k < count) word |= tenant_deciwatts(watts[k]) << (16 * s);
  }
  return word;
}
/// Decode tenant k's watts from the (lo, hi) word pair.
constexpr double tenant_watts_of(std::uint64_t lo, std::uint64_t hi,
                                 std::size_t k) noexcept {
  const std::uint64_t word = k < 4 ? lo : hi;
  return static_cast<double>((word >> (16 * (k % 4))) & std::uint64_t{0xFFFF}) /
         10.0;
}

/// Restoration-error summary over one workload suite (milliwatts, from the
/// daemon's per-suite histograms; populated only for unmeasured ticks —
/// measured ticks restore the reading exactly by construction).
struct SuiteStats {
  std::string suite;
  std::uint64_t samples = 0;
  std::uint64_t err_p50_mw = 0;
  std::uint64_t err_p99_mw = 0;
  std::uint64_t err_max_mw = 0;
};

/// One coherent daemon read-out. Totals are sums of the per-node rows
/// captured in this same snapshot.
struct DaemonSnapshot {
  std::vector<NodeStatus> nodes;
  std::vector<SuiteStats> suites;
  std::uint64_t total_ticks = 0;
  std::uint64_t total_offered = 0;
  std::uint64_t total_accepted = 0;
  std::uint64_t total_shed = 0;
  std::uint64_t total_dropped_readings = 0;
  std::uint64_t total_held = 0;
  double total_node_w = 0.0;
  double total_cpu_w = 0.0;
  double total_mem_w = 0.0;
};

/// Canonical text form (%.17g doubles, one line per node/suite) — the byte
/// stream the serve determinism tests compare across consumer counts.
std::string to_string(const DaemonSnapshot& snap);

/// Seqlock cell: single writer, concurrent readers. The sequence counter is
/// even when the payload is stable and odd while a publish is in flight;
/// payload fields are individually atomic (relaxed) so concurrent access is
/// data-race-free by construction (TSan-clean), and the seq protocol makes
/// the *set* of fields coherent: read() only returns a payload bracketed by
/// two equal even sequence reads.
///
/// Templated over an atomics backend (verify/backend.hpp): production uses
/// the default StdBackend alias below (plain std::atomic, identical codegen
/// to the untemplated original); the model-checker suites instantiate
/// BasicNodeStatusCell<verify::ModelBackend> to verify the fence protocol
/// under simulated weak memory and to prove the mutation fixtures
/// (stripped fence, weakened final store) torn-readable.
template <typename Backend = verify::StdBackend>
class BasicNodeStatusCell {
 public:
  struct Value {
    std::uint64_t ticks = 0;
    double node_w = 0.0;
    double cpu_w = 0.0;
    double mem_w = 0.0;
    bool measured = false;
    /// Packed adaptive-controller state (pack_adapt_state; 0 = no
    /// controller).
    std::uint64_t adapt = 0;
    /// Packed per-tenant watts (pack_tenant_word; both 0 when the fleet
    /// has no attribution head). lo = tenants 0-3, hi = tenants 4-7.
    std::uint64_t tenant_lo = 0;
    std::uint64_t tenant_hi = 0;
  };

  BasicNodeStatusCell() = default;
  /// Start the sequence counter at `initial_seq` (must be even — an odd
  /// start would read as a publish forever in flight). Exists so the
  /// wraparound suite can model-check the counter crossing 2^64.
  explicit BasicNodeStatusCell(std::uint64_t initial_seq)
      : seq_(initial_seq) {}

  /// Writer side (one thread at a time).
  void publish(const Value& v) {
    const std::uint64_t s =  // HIGHRPM_LINT_ALLOW(memory-order-audit): writer-owned counter, no other writer
        seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): odd marker ordered by the fence below
    // The fence keeps the payload stores below from reordering before the
    // odd store above — a reader that observes any new payload value and
    // then re-checks seq_ must see it odd (or already advanced) and retry.
    Backend::fence(std::memory_order_release);
    ticks_.store(v.ticks, std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
    node_w_.store(v.node_w, std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
    cpu_w_.store(v.cpu_w, std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
    mem_w_.store(v.mem_w, std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
    measured_.store(v.measured, std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
    adapt_.store(v.adapt, std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
    tenant_lo_.store(v.tenant_lo, std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
    tenant_hi_.store(v.tenant_hi, std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
    seq_.store(s + 2, std::memory_order_release);  // even: stable again
  }

  /// Reader side: spins until it brackets a stable payload. Wait-free in
  /// practice — publishes are a handful of stores, so retries are rare.
  Value read() const {
    Value v;
    for (;;) {
      const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1) {  // publish in flight; yield so a preempted writer
        Backend::yield();  // (single-core box) can finish it
        continue;
      }
      v.ticks = ticks_.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
      v.node_w = node_w_.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
      v.cpu_w = cpu_w_.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
      v.mem_w = mem_w_.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
      v.measured = measured_.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
      v.adapt = adapt_.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
      v.tenant_lo = tenant_lo_.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
      v.tenant_hi = tenant_hi_.load(std::memory_order_relaxed);  // HIGHRPM_LINT_ALLOW(memory-order-audit): payload ordered by seqlock fences
      Backend::fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) return v;  // HIGHRPM_LINT_ALLOW(memory-order-audit): recheck ordered by the fence above
      Backend::yield();
    }
  }

 private:
  template <typename T>
  using Atomic = typename Backend::template Atomic<T>;

  Atomic<std::uint64_t> seq_{0};
  Atomic<std::uint64_t> ticks_{0};
  Atomic<double> node_w_{0.0};
  Atomic<double> cpu_w_{0.0};
  Atomic<double> mem_w_{0.0};
  Atomic<bool> measured_{false};
  Atomic<std::uint64_t> adapt_{0};
  Atomic<std::uint64_t> tenant_lo_{0};
  Atomic<std::uint64_t> tenant_hi_{0};
};

/// Production instantiation — plain std::atomic, zero template overhead.
using NodeStatusCell = BasicNodeStatusCell<>;

}  // namespace highrpm::serve
