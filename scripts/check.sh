#!/usr/bin/env bash
# HighRPM correctness gate. Runs the same steps as .github/workflows/ci.yml
# so the local gate and CI cannot drift:
#
#   lint      tools/lint/highrpm_lint.py (+ header self-containment compile)
#   werror    Release build with HIGHRPM_WERROR=ON + full ctest
#   golden    ctest -L golden in the werror build: committed reference CSVs
#             (table5/table7/adaptive/attribution) must match the bench
#             output byte for byte; also runs the bench-args arg-hygiene
#             label (usage/exit-code regressions for every bench CLI)
#   property  ctest -L property in the werror build: seeded invariant suites
#   verify    ctest -L verify in the verify-preset build: deterministic
#             model checking of the lock-free serve/obs templates
#             (exhaustive + seeded-random interleaving/read-choice sweeps,
#             mutant-catching gate)
#   perf      ctest -L perf-smoke in a release build: zero-allocation
#             steady-state contract (per-node + batched fleet + serve
#             consume paths) and fleet-stepper determinism
#             (serial == N=1 == N=64 CSVs)
#   soak      HIGHRPM_SOAK=1 ctest -L soak in the werror build: long-run
#             daemon determinism (byte-identical final snapshots across
#             consumer thread counts under real producer threads)
#   tidy      clang-tidy over the compile database   [skipped if not installed]
#   asan      full ctest under -fsanitize=address
#   ubsan     full ctest under -fsanitize=undefined (no-recover: UB = failure)
#   tsan      ctest -L sanitize under -fsanitize=thread (pool race-stress)
#   coverage  gcc --coverage build + full ctest + coverage_gate.py threshold
#             (gcovr when installed, gcov fallback)  [only with explicit arg]
#   format    clang-format --dry-run cleanliness     [only with --format;
#                                                     skipped if not installed]
#
# Usage:
#   scripts/check.sh                 # full gate
#   scripts/check.sh lint werror     # selected steps only
#   scripts/check.sh coverage        # coverage build + threshold gate
#   scripts/check.sh --format        # full gate + formatting check
#
# Tools that are not installed (clang-tidy, clang-format) are skipped with a
# notice, never silently: the steps that enforce the same invariants through
# GCC (-Werror warning set) and the project linter always run.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

WANT_FORMAT=0
STEPS=()
for arg in "$@"; do
  case "$arg" in
    --format) WANT_FORMAT=1 ;;
    lint|werror|golden|property|verify|perf|soak|tidy|asan|ubsan|tsan|coverage|format) STEPS+=("$arg") ;;
    *) echo "usage: scripts/check.sh [--format] [lint|werror|golden|property|verify|perf|soak|tidy|asan|ubsan|tsan|coverage|format ...]" >&2
       exit 2 ;;
  esac
done
if [ "${#STEPS[@]}" -eq 0 ]; then
  # coverage is opt-in (it rebuilds the whole tree instrumented); golden and
  # property re-run their labels explicitly even though the werror suite
  # includes them, so a regression names the gate it broke.
  STEPS=(lint werror golden property verify perf soak tidy asan ubsan tsan)
  [ "$WANT_FORMAT" -eq 1 ] && STEPS+=(format)
fi

note()  { printf '\n==> %s\n' "$*"; }
skip()  { printf '    SKIPPED: %s\n' "$*"; }

build_and_test() {  # <preset> <ctest extra args...>
  local preset="$1"; shift
  cmake --preset "$preset" >/dev/null
  cmake --build --preset "$preset" -j "$JOBS"
  ctest --test-dir "build-$preset" --output-on-failure -j "$JOBS" "$@"
}

step_lint() {
  note "lint: highrpm_lint.py + header self-containment"
  python3 tools/lint/highrpm_lint.py --compile-headers
}

step_werror() {
  note "werror: Release + strict warnings as errors + full test suite"
  cmake --preset werror >/dev/null
  cmake --build --preset werror -j "$JOBS"
  ctest --test-dir build-werror --output-on-failure -j "$JOBS"
}

ensure_werror_build() {
  if [ ! -d build-werror ]; then
    cmake --preset werror >/dev/null
    cmake --build --preset werror -j "$JOBS"
  fi
}

step_golden() {
  note "golden: committed reference CSVs vs bench output (ctest -L golden)"
  ensure_werror_build
  ctest --test-dir build-werror --output-on-failure -j "$JOBS" -L golden
  note "bench-args: bench argument hygiene (ctest -L bench-args)"
  ctest --test-dir build-werror --output-on-failure -j "$JOBS" -L bench-args
}

step_property() {
  note "property: seeded invariant suites (ctest -L property)"
  ensure_werror_build
  ctest --test-dir build-werror --output-on-failure -j "$JOBS" -L property
}

step_verify() {
  note "verify: model checking the lock-free templates (ctest -L verify)"
  build_and_test verify -L verify
}

step_perf() {
  note "perf: zero-allocation + sharding determinism (ctest -L perf-smoke)"
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS" -L perf-smoke
}

step_soak() {
  note "soak: long-run daemon determinism (HIGHRPM_SOAK=1 ctest -L soak)"
  ensure_werror_build
  HIGHRPM_SOAK=1 ctest --test-dir build-werror --output-on-failure \
    -j "$JOBS" -L soak
}

step_coverage() {
  note "coverage: instrumented build + full suite + threshold gate"
  cmake --preset coverage >/dev/null
  cmake --build --preset coverage -j "$JOBS"
  ctest --test-dir build-coverage --output-on-failure -j "$JOBS"
  python3 tools/coverage/coverage_gate.py --build-dir build-coverage
}

step_tidy() {
  note "tidy: clang-tidy (bugprone/performance/concurrency/cert-flp)"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    skip "clang-tidy not installed"
    return 0
  fi
  cmake --preset werror -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  local sources
  sources=$(git ls-files 'src/**/*.cpp' 'include/highrpm/**/*.hpp')
  if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    run-clang-tidy -p build-werror -quiet $sources
  else
    # shellcheck disable=SC2086
    clang-tidy -p build-werror --quiet $sources
  fi
}

step_asan() {
  note "asan: full test suite under AddressSanitizer"
  build_and_test asan
}

step_ubsan() {
  note "ubsan: full test suite under UBSan (-fno-sanitize-recover)"
  build_and_test ubsan
}

step_tsan() {
  note "tsan: concurrency suite (ctest -L sanitize) under ThreadSanitizer"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L sanitize
}

step_format() {
  note "format: clang-format cleanliness"
  if ! command -v clang-format >/dev/null 2>&1; then
    skip "clang-format not installed"
    return 0
  fi
  git ls-files '*.cpp' '*.hpp' | xargs clang-format --dry-run -Werror
}

for step in "${STEPS[@]}"; do
  "step_$step"
done

note "all requested steps passed: ${STEPS[*]}"
