#include "highrpm/sim/node.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "highrpm/sim/power_model.hpp"

namespace highrpm::sim {

NodeSimulator::NodeSimulator(PlatformConfig platform, Workload workload,
                             std::uint64_t seed)
    : platform_(std::move(platform)),
      workload_(std::move(workload)),
      rng_(seed),
      freq_level_(platform_.default_freq_level) {
  if (workload_.phases.empty()) {
    throw std::invalid_argument("NodeSimulator: workload has no phases");
  }
  // Reject malformed platforms here rather than letting step() hit
  // .back()/operator[] on an empty or too-short DVFS ladder deep inside the
  // power model (or PowerCapController underflow size()-1).
  if (platform_.freq_levels_ghz.empty()) {
    throw std::invalid_argument("NodeSimulator: platform has no DVFS levels");
  }
  if (platform_.default_freq_level >= platform_.freq_levels_ghz.size()) {
    throw std::invalid_argument(
        "NodeSimulator: default_freq_level out of range");
  }
}

const PhaseSpec& NodeSimulator::current_phase() const {
  const double total = workload_.total_phase_duration();
  double t = std::fmod(time_s_, total);
  for (const auto& p : workload_.phases) {
    if (t < p.duration_s) return p;
    t -= p.duration_s;
  }
  return workload_.phases.back();
}

double NodeSimulator::modulation(const PhaseSpec& p, double t) const {
  if (p.mod_depth <= 0.0 || p.mod_period_s <= 0.0) return 0.0;
  const double x = std::fmod(t, p.mod_period_s) / p.mod_period_s;  // [0, 1)
  switch (p.waveform) {
    case Waveform::kConstant:
      return 0.0;
    case Waveform::kSine:
      return p.mod_depth * std::sin(2.0 * std::numbers::pi * x);
    case Waveform::kSawtooth:
      return p.mod_depth * (2.0 * x - 1.0);
    case Waveform::kSquare:
      return p.mod_depth * (x < 0.5 ? 1.0 : -1.0);
    case Waveform::kTriangle:
      return p.mod_depth * (x < 0.5 ? 4.0 * x - 1.0 : 3.0 - 4.0 * x);
  }
  return 0.0;
}

void NodeSimulator::set_frequency_level(std::size_t level) {
  if (level >= platform_.freq_levels_ghz.size()) {
    throw std::out_of_range("NodeSimulator: invalid frequency level");
  }
  freq_level_ = level;
}

TickSample NodeSimulator::step() {
  const PhaseSpec& phase = current_phase();
  const double f_ghz = platform_.frequency_ghz(freq_level_);
  const double f_hz = f_ghz * 1e9;
  const double n_cores = static_cast<double>(platform_.num_cores);

  // --- activity level for this tick ---
  // AR(1) short-term noise.
  ar1_state_ = phase.ar1_rho * ar1_state_ +
               rng_.normal(0.0, phase.ar1_sigma);
  // Poisson spike arrivals; an active spike decays over spike_len_s.
  if (spike_remaining_ <= 0.0 && phase.spike_rate_hz > 0.0 &&
      rng_.bernoulli(std::min(1.0, phase.spike_rate_hz))) {
    spike_remaining_ =
        std::max(1.0, rng_.exponential(1.0 / std::max(0.5, phase.spike_len_s)));
    spike_magnitude_ =
        phase.spike_magnitude * rng_.uniform(0.5, 1.5) *
        (rng_.bernoulli(0.8) ? 1.0 : -0.6);  // mostly up-spikes, some dips
  }
  double spike = 0.0;
  if (spike_remaining_ > 0.0) {
    spike = spike_magnitude_;
    spike_remaining_ -= 1.0;
  }

  double util = phase.utilization *
                (1.0 + modulation(phase, time_s_) + ar1_state_ + spike);
  util = std::clamp(util, 0.02, 1.0);

  // --- instruction stream ---
  // Memory-boundness throttles effective IPC more at higher frequency
  // (memory latency is frequency-independent, so stall cycles grow).
  const double access_frac = phase.load_frac + phase.store_frac;
  const double dram_frac =
      access_frac * phase.l1_miss * phase.l2_miss * phase.l3_miss;
  const double stall = 1.0 + dram_frac * platform_.power.stall_coeff *
                                 (f_ghz / platform_.max_frequency_ghz());
  const double ipc_eff = phase.ipc / stall;

  const double cycles = n_cores * f_hz * util;
  const double inst = cycles * ipc_eff;

  // --- per-event rates ---
  PmcVector pmcs{};
  const auto set = [&](PmcEvent e, double v) {
    // Counter jitter: PMU aggregation is not exact (paper notes PMC noise).
    const double jitter = 1.0 + rng_.normal(0.0, 0.01);
    pmcs[static_cast<std::size_t>(e)] = std::max(0.0, v * jitter);
  };
  set(PmcEvent::kCpuCycles, cycles);
  set(PmcEvent::kInstRetired, inst);
  set(PmcEvent::kBrPred, inst * phase.branch_frac);
  set(PmcEvent::kUopRetired, inst * phase.uops_per_inst);
  set(PmcEvent::kL1ICacheLd, inst * phase.l1i_ld_frac);
  set(PmcEvent::kL1ICacheSt, inst * phase.l1i_st_frac);
  const double l1d_ld = inst * phase.load_frac;
  const double l1d_st = inst * phase.store_frac;
  set(PmcEvent::kL1DCacheLd, l1d_ld);
  set(PmcEvent::kL1DCacheSt, l1d_st);
  const double l2_ld = l1d_ld * phase.l1_miss;
  const double l2_st = l1d_st * phase.l1_miss;
  set(PmcEvent::kL2DCacheLd, l2_ld);
  set(PmcEvent::kL2DCacheSt, l2_st);
  const double l3_ld = l2_ld * phase.l2_miss;
  const double l3_st = l2_st * phase.l2_miss;
  set(PmcEvent::kL3DCacheLd, l3_ld);
  set(PmcEvent::kL3DCacheSt, l3_st);
  const double mem = (l3_ld + l3_st) * phase.l3_miss;
  set(PmcEvent::kMemAccess, mem);
  set(PmcEvent::kBusAccess, mem * phase.bus_per_mem);

  // --- ground-truth power ---
  // Latent energy-weight wobble: slow AR(1) drift of the effective
  // per-instruction / per-access energy around the phase's application-
  // specific scale. Neither the scale nor the wobble is visible in any PMC.
  energy_latent_ = 0.95 * energy_latent_ + rng_.normal(0.0, 0.05);
  EnergyScale scale;
  scale.inst = phase.inst_energy_scale * (1.0 + 0.25 * energy_latent_);
  scale.mem = phase.mem_energy_scale * (1.0 + 0.25 * energy_latent_);
  const ComponentPower p =
      compute_component_power(platform_, pmcs, freq_level_, scale);
  const PowerCoefficients& c = platform_.power;
  // Peripheral wander: bounded random walk, "varies within just under 1W".
  other_wander_ = std::clamp(other_wander_ + rng_.normal(0.0, 0.02),
                             -c.other_wander_w, c.other_wander_w);

  TickSample s;
  s.time_s = time_s_;
  s.pmcs = pmcs;
  s.p_cpu_w = std::max(0.0, p.cpu_w + rng_.normal(0.0, c.cpu_noise_w));
  s.p_mem_w = std::max(0.0, p.mem_w + rng_.normal(0.0, c.mem_noise_w));
  s.p_other_w = c.other_idle_w + other_wander_;
  s.p_node_w = s.p_cpu_w + s.p_mem_w + s.p_other_w;
  s.freq_level = freq_level_;

  time_s_ += 1.0;
  return s;
}

Trace NodeSimulator::run(std::size_t n_ticks) {
  Trace t;
  for (std::size_t i = 0; i < n_ticks; ++i) t.push_back(step());
  return t;
}

}  // namespace highrpm::sim
