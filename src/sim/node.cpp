#include "highrpm/sim/node.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "highrpm/sim/power_model.hpp"

namespace highrpm::sim {

NodeSimulator::NodeSimulator(PlatformConfig platform, Workload workload,
                             std::uint64_t seed)
    : platform_(std::move(platform)),
      workload_(std::move(workload)),
      rng_(seed),
      freq_level_(platform_.default_freq_level) {
  if (workload_.phases.empty()) {
    throw std::invalid_argument("NodeSimulator: workload has no phases");
  }
  // Reject malformed platforms here rather than letting step() hit
  // .back()/operator[] on an empty or too-short DVFS ladder deep inside the
  // power model (or PowerCapController underflow size()-1).
  if (platform_.freq_levels_ghz.empty()) {
    throw std::invalid_argument("NodeSimulator: platform has no DVFS levels");
  }
  if (platform_.default_freq_level >= platform_.freq_levels_ghz.size()) {
    throw std::invalid_argument(
        "NodeSimulator: default_freq_level out of range");
  }
}

NodeSimulator::NodeSimulator(PlatformConfig platform,
                             std::vector<Workload> tenants, std::uint64_t seed)
    : NodeSimulator(std::move(platform),
                    [&]() -> Workload {
                      if (tenants.empty()) {
                        throw std::invalid_argument(
                            "NodeSimulator: tenant list is empty");
                      }
                      return tenants.front();
                    }(),
                    seed) {
  tenants_.reserve(tenants.size());
  for (std::size_t k = 0; k < tenants.size(); ++k) {
    if (tenants[k].phases.empty()) {
      throw std::invalid_argument("NodeSimulator: tenant workload '" +
                                  tenants[k].name + "' has no phases");
    }
    TenantState ts{std::move(tenants[k]),
                   // Independent per-tenant streams: splitmix-style odd
                   // multiplier keeps forked seeds decorrelated.
                   math::Rng(seed ^ (0x9E3779B97F4A7C15ULL * (k + 1)))};
    tenants_.push_back(std::move(ts));
  }
  tenant_dyn_.resize(tenants_.size());
}

const PhaseSpec& NodeSimulator::phase_of(const Workload& w, double t_now) {
  const double total = w.total_phase_duration();
  double t = std::fmod(t_now, total);
  for (const auto& p : w.phases) {
    if (t < p.duration_s) return p;
    t -= p.duration_s;
  }
  return w.phases.back();
}

const PhaseSpec& NodeSimulator::current_phase() const {
  return phase_of(workload_, time_s_);
}

double NodeSimulator::modulation(const PhaseSpec& p, double t) const {
  if (p.mod_depth <= 0.0 || p.mod_period_s <= 0.0) return 0.0;
  const double x = std::fmod(t, p.mod_period_s) / p.mod_period_s;  // [0, 1)
  switch (p.waveform) {
    case Waveform::kConstant:
      return 0.0;
    case Waveform::kSine:
      return p.mod_depth * std::sin(2.0 * std::numbers::pi * x);
    case Waveform::kSawtooth:
      return p.mod_depth * (2.0 * x - 1.0);
    case Waveform::kSquare:
      return p.mod_depth * (x < 0.5 ? 1.0 : -1.0);
    case Waveform::kTriangle:
      return p.mod_depth * (x < 0.5 ? 4.0 * x - 1.0 : 3.0 - 4.0 * x);
  }
  return 0.0;
}

void NodeSimulator::set_frequency_level(std::size_t level) {
  if (level >= platform_.freq_levels_ghz.size()) {
    throw std::out_of_range("NodeSimulator: invalid frequency level");
  }
  freq_level_ = level;
}

PmcVector NodeSimulator::tick_activity(const PhaseSpec& phase, math::Rng& rng,
                                       double& ar1_state,
                                       double& spike_remaining,
                                       double& spike_magnitude,
                                       double& energy_latent,
                                       double core_share,
                                       EnergyScale& scale_out) {
  const double f_ghz = platform_.frequency_ghz(freq_level_);
  const double f_hz = f_ghz * 1e9;
  const double n_cores = static_cast<double>(platform_.num_cores) * core_share;

  // --- activity level for this tick ---
  // AR(1) short-term noise.
  ar1_state = phase.ar1_rho * ar1_state + rng.normal(0.0, phase.ar1_sigma);
  // Poisson spike arrivals; an active spike decays over spike_len_s.
  if (spike_remaining <= 0.0 && phase.spike_rate_hz > 0.0 &&
      rng.bernoulli(std::min(1.0, phase.spike_rate_hz))) {
    spike_remaining =
        std::max(1.0, rng.exponential(1.0 / std::max(0.5, phase.spike_len_s)));
    spike_magnitude =
        phase.spike_magnitude * rng.uniform(0.5, 1.5) *
        (rng.bernoulli(0.8) ? 1.0 : -0.6);  // mostly up-spikes, some dips
  }
  double spike = 0.0;
  if (spike_remaining > 0.0) {
    spike = spike_magnitude;
    spike_remaining -= 1.0;
  }

  double util = phase.utilization *
                (1.0 + modulation(phase, time_s_) + ar1_state + spike);
  util = std::clamp(util, 0.02, 1.0);

  // --- instruction stream ---
  // Memory-boundness throttles effective IPC more at higher frequency
  // (memory latency is frequency-independent, so stall cycles grow).
  const double access_frac = phase.load_frac + phase.store_frac;
  const double dram_frac =
      access_frac * phase.l1_miss * phase.l2_miss * phase.l3_miss;
  const double stall = 1.0 + dram_frac * platform_.power.stall_coeff *
                                 (f_ghz / platform_.max_frequency_ghz());
  const double ipc_eff = phase.ipc / stall;

  const double cycles = n_cores * f_hz * util;
  const double inst = cycles * ipc_eff;

  // --- per-event rates ---
  PmcVector pmcs{};
  const auto set = [&](PmcEvent e, double v) {
    // Counter jitter: PMU aggregation is not exact (paper notes PMC noise).
    const double jitter = 1.0 + rng.normal(0.0, 0.01);
    pmcs[static_cast<std::size_t>(e)] = std::max(0.0, v * jitter);
  };
  set(PmcEvent::kCpuCycles, cycles);
  set(PmcEvent::kInstRetired, inst);
  set(PmcEvent::kBrPred, inst * phase.branch_frac);
  set(PmcEvent::kUopRetired, inst * phase.uops_per_inst);
  set(PmcEvent::kL1ICacheLd, inst * phase.l1i_ld_frac);
  set(PmcEvent::kL1ICacheSt, inst * phase.l1i_st_frac);
  const double l1d_ld = inst * phase.load_frac;
  const double l1d_st = inst * phase.store_frac;
  set(PmcEvent::kL1DCacheLd, l1d_ld);
  set(PmcEvent::kL1DCacheSt, l1d_st);
  const double l2_ld = l1d_ld * phase.l1_miss;
  const double l2_st = l1d_st * phase.l1_miss;
  set(PmcEvent::kL2DCacheLd, l2_ld);
  set(PmcEvent::kL2DCacheSt, l2_st);
  const double l3_ld = l2_ld * phase.l2_miss;
  const double l3_st = l2_st * phase.l2_miss;
  set(PmcEvent::kL3DCacheLd, l3_ld);
  set(PmcEvent::kL3DCacheSt, l3_st);
  const double mem = (l3_ld + l3_st) * phase.l3_miss;
  set(PmcEvent::kMemAccess, mem);
  set(PmcEvent::kBusAccess, mem * phase.bus_per_mem);

  // --- latent energy weights ---
  // Slow AR(1) wobble of the effective per-instruction / per-access energy
  // around the phase's application-specific scale. Neither the scale nor
  // the wobble is visible in any PMC.
  energy_latent = 0.95 * energy_latent + rng.normal(0.0, 0.05);
  scale_out.inst = phase.inst_energy_scale * (1.0 + 0.25 * energy_latent);
  scale_out.mem = phase.mem_energy_scale * (1.0 + 0.25 * energy_latent);
  return pmcs;
}

TickSample NodeSimulator::step() {
  return tenants_.empty() ? step_single() : step_tenants();
}

TickSample NodeSimulator::step_single() {
  const PhaseSpec& phase = current_phase();

  EnergyScale scale;
  const PmcVector pmcs =
      tick_activity(phase, rng_, ar1_state_, spike_remaining_,
                    spike_magnitude_, energy_latent_, /*core_share=*/1.0,
                    scale);
  const ComponentPower p =
      compute_component_power(platform_, pmcs, freq_level_, scale);
  const PowerCoefficients& c = platform_.power;
  // Peripheral wander: bounded random walk, "varies within just under 1W".
  other_wander_ = std::clamp(other_wander_ + rng_.normal(0.0, 0.02),
                             -c.other_wander_w, c.other_wander_w);

  TickSample s;
  s.time_s = time_s_;
  s.pmcs = pmcs;
  s.p_cpu_w = std::max(0.0, p.cpu_w + rng_.normal(0.0, c.cpu_noise_w));
  s.p_mem_w = std::max(0.0, p.mem_w + rng_.normal(0.0, c.mem_noise_w));
  s.p_other_w = c.other_idle_w + other_wander_;
  s.p_node_w = s.p_cpu_w + s.p_mem_w + s.p_other_w;
  s.freq_level = freq_level_;

  time_s_ += 1.0;
  return s;
}

TickSample NodeSimulator::step_tenants() {
  const PowerCoefficients& c = platform_.power;
  const std::size_t k_tenants = tenants_.size();
  const double core_share = 1.0 / static_cast<double>(k_tenants);

  // Per-tenant activity: each tenant drives its core share with its own
  // stochastic state and RNG stream. Node-aggregated PMCs are the
  // elementwise sum — what a node-level PMU would count.
  TickSample s;
  s.time_s = time_s_;
  s.freq_level = freq_level_;
  s.tenants.resize(k_tenants);
  PmcVector agg{};
  std::vector<double>& dyn = tenant_dyn_;  // noise-free tenant dynamic watts
  double dyn_sum = 0.0;
  double inst_rate_sum = 0.0, mem_rate_sum = 0.0;
  double inst_scale_acc = 0.0, mem_scale_acc = 0.0;
  double inst_scale_mean = 0.0, mem_scale_mean = 0.0;
  for (std::size_t k = 0; k < k_tenants; ++k) {
    TenantState& ts = tenants_[k];
    const PhaseSpec& phase = phase_of(ts.workload, time_s_);
    EnergyScale scale;
    const PmcVector pmcs = tick_activity(
        phase, ts.rng, ts.ar1_state, ts.spike_remaining, ts.spike_magnitude,
        ts.energy_latent, core_share, scale);
    s.tenants[k].pmcs = pmcs;
    for (std::size_t e = 0; e < kNumPmcEvents; ++e) agg[e] += pmcs[e];
    const ComponentPower p =
        compute_component_power(platform_, pmcs, freq_level_, scale);
    dyn[k] = (p.cpu_w - c.cpu_idle_w) + (p.mem_w - c.mem_idle_w);
    dyn_sum += dyn[k];
    // Activity-weighted aggregate energy scale: the node-level dynamic
    // power responds to the blended instruction mix, weighted by how much
    // each tenant actually contributes to the blended event streams.
    const double inst_rate =
        pmcs[static_cast<std::size_t>(PmcEvent::kInstRetired)];
    const double mem_rate =
        pmcs[static_cast<std::size_t>(PmcEvent::kMemAccess)];
    inst_rate_sum += inst_rate;
    mem_rate_sum += mem_rate;
    inst_scale_acc += inst_rate * scale.inst;
    mem_scale_acc += mem_rate * scale.mem;
    inst_scale_mean += scale.inst;
    mem_scale_mean += scale.mem;
  }
  EnergyScale agg_scale;
  agg_scale.inst = inst_rate_sum > 0.0
                       ? inst_scale_acc / inst_rate_sum
                       : inst_scale_mean / static_cast<double>(k_tenants);
  agg_scale.mem = mem_rate_sum > 0.0
                      ? mem_scale_acc / mem_rate_sum
                      : mem_scale_mean / static_cast<double>(k_tenants);

  // Node power from the aggregate, exactly like the single-workload path
  // (saturation and roll-off act at node level, where the silicon is).
  const ComponentPower p =
      compute_component_power(platform_, agg, freq_level_, agg_scale);
  other_wander_ = std::clamp(other_wander_ + rng_.normal(0.0, 0.02),
                             -c.other_wander_w, c.other_wander_w);
  s.pmcs = agg;
  s.p_cpu_w = std::max(0.0, p.cpu_w + rng_.normal(0.0, c.cpu_noise_w));
  s.p_mem_w = std::max(0.0, p.mem_w + rng_.normal(0.0, c.mem_noise_w));
  s.p_other_w = c.other_idle_w + other_wander_;
  s.p_node_w = s.p_cpu_w + s.p_mem_w + s.p_other_w;

  // Attribute the (noisy) component power to tenants: each tenant gets its
  // dynamic-power share plus an equal slice of the component idle draw —
  // SmartWatts' static/dynamic attribution convention. Shares are computed
  // on the noise-free dynamic powers, so sensor noise never flips a
  // near-idle tenant negative; by construction sum_k p_w == p_cpu + p_mem.
  const double idle_total = c.cpu_idle_w + c.mem_idle_w;
  const double dyn_total = (s.p_cpu_w + s.p_mem_w) - idle_total;
  for (std::size_t k = 0; k < k_tenants; ++k) {
    const double share = dyn_sum > 0.0
                             ? dyn[k] / dyn_sum
                             : 1.0 / static_cast<double>(k_tenants);
    s.tenants[k].p_w =
        share * dyn_total + idle_total / static_cast<double>(k_tenants);
  }

  time_s_ += 1.0;
  return s;
}

Trace NodeSimulator::run(std::size_t n_ticks) {
  Trace t;
  for (std::size_t i = 0; i < n_ticks; ++i) t.push_back(step());
  return t;
}

}  // namespace highrpm::sim
