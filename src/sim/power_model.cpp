#include "highrpm/sim/power_model.hpp"

#include <cmath>

namespace highrpm::sim {

double supply_voltage(const PowerCoefficients& c, double f_ghz) {
  return c.volt_base + c.volt_slope * f_ghz;
}

ComponentPower compute_component_power(const PlatformConfig& platform,
                                       const PmcVector& pmcs,
                                       std::size_t freq_level,
                                       const EnergyScale& scale) {
  const PowerCoefficients& c = platform.power;
  const double f_ghz = platform.frequency_ghz(freq_level);
  const double f_hz = f_ghz * 1e9;

  const auto rate = [&](PmcEvent e) {
    return pmcs[static_cast<std::size_t>(e)];
  };

  // CPU: V^2 f switching power scaled by busy-core fraction, plus
  // per-instruction and per-cache-access energy.
  const double busy_cores = rate(PmcEvent::kCpuCycles) / f_hz;
  const double util = busy_cores / static_cast<double>(platform.num_cores);
  const double v = supply_voltage(c, f_ghz);
  const double p_switch = c.dyn_scale * v * v * f_ghz * util *
                          static_cast<double>(platform.num_cores) / 64.0;
  const double p_inst =
      c.inst_energy_nj * 1e-9 * rate(PmcEvent::kInstRetired);
  const double cache_rate =
      rate(PmcEvent::kL2DCacheLd) + rate(PmcEvent::kL2DCacheSt) +
      rate(PmcEvent::kL3DCacheLd) + rate(PmcEvent::kL3DCacheSt);
  const double p_cache = c.cache_energy_nj * 1e-9 * cache_rate;
  // The application energy weight scales the whole dynamic term: switching
  // activity per cycle, per-instruction energy and cache energy all depend
  // on the instruction mix, none of which the PMCs resolve.
  const double p_dyn_raw = scale.inst * (p_switch + p_inst + p_cache);
  const double p_dyn = c.cpu_sat * std::tanh(p_dyn_raw / c.cpu_sat);

  // Memory: per-access energy with bandwidth roll-off plus bus interface.
  const double mem_rate = rate(PmcEvent::kMemAccess);
  const double p_mem_access = scale.mem * c.mem_energy_nj * 1e-9 * mem_rate /
                              (1.0 + mem_rate / c.mem_sat_rate);
  const double p_bus = c.bus_energy_nj * 1e-9 * rate(PmcEvent::kBusAccess);

  ComponentPower out;
  out.cpu_w = c.cpu_idle_w + p_dyn;
  out.mem_w = c.mem_idle_w + p_mem_access + p_bus;
  return out;
}

}  // namespace highrpm::sim
