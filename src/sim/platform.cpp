#include "highrpm/sim/platform.hpp"

#include <stdexcept>

namespace highrpm::sim {

PlatformConfig PlatformConfig::arm() {
  PlatformConfig cfg;
  cfg.name = "arm64-dev";
  cfg.num_cores = 64;
  cfg.freq_levels_ghz = {1.4, 1.8, 2.2};
  cfg.default_freq_level = 2;
  // Defaults in PowerCoefficients are tuned for this platform: full-load
  // node power ~90 W with CPU-dominant workloads (paper Fig 2) of which
  // ~25 W is peripherals.
  return cfg;
}

PlatformConfig PlatformConfig::x86() {
  PlatformConfig cfg;
  cfg.name = "x86-tianhe1a-like";
  cfg.num_cores = 20;  // dual E5-2660 v2 (10 cores each)
  cfg.freq_levels_ghz = {1.8, 2.2, 2.6};
  cfg.default_freq_level = 2;
  PowerCoefficients& p = cfg.power;
  p.cpu_idle_w = 38.0;
  p.volt_base = 0.80;
  p.volt_slope = 0.13;
  p.dyn_scale = 20.0;
  p.inst_energy_nj = 0.45;
  p.cache_energy_nj = 1.6;
  p.cpu_sat = 190.0;
  p.stall_coeff = 35.0;
  p.mem_idle_w = 9.0;
  p.mem_energy_nj = 26.0;
  p.mem_sat_rate = 1.5e9;
  p.bus_energy_nj = 1.4;
  p.other_idle_w = 55.0;
  p.other_wander_w = 0.6;
  // Higher clock -> more activity variance (paper §6.3 attributes the
  // slightly larger x86 errors to the higher CPU frequency).
  p.cpu_noise_w = 1.1;
  p.mem_noise_w = 0.4;
  return cfg;
}

double PlatformConfig::frequency_ghz(std::size_t level) const {
  if (level >= freq_levels_ghz.size()) {
    throw std::out_of_range("PlatformConfig: invalid frequency level");
  }
  return freq_levels_ghz[level];
}

double PlatformConfig::max_frequency_ghz() const {
  if (freq_levels_ghz.empty()) {
    throw std::logic_error("PlatformConfig: empty DVFS ladder");
  }
  return freq_levels_ghz.back();
}

}  // namespace highrpm::sim
