#include "highrpm/sim/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace highrpm::sim {

std::vector<double> Trace::tenant_power(std::size_t k) const {
  if (k >= num_tenants()) {
    throw std::out_of_range("Trace::tenant_power: tenant index out of range");
  }
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.tenants[k].p_w);
  return out;
}

std::vector<double> Trace::times() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.time_s);
  return out;
}

std::vector<double> Trace::node_power() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.p_node_w);
  return out;
}

std::vector<double> Trace::cpu_power() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.p_cpu_w);
  return out;
}

std::vector<double> Trace::mem_power() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.p_mem_w);
  return out;
}

std::vector<double> Trace::other_power() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.p_other_w);
  return out;
}

std::vector<double> Trace::pmc_series(PmcEvent e) const {
  std::vector<double> out;
  out.reserve(samples_.size());
  const std::size_t idx = static_cast<std::size_t>(e);
  for (const auto& s : samples_) out.push_back(s.pmcs[idx]);
  return out;
}

math::Matrix Trace::pmc_matrix() const {
  math::Matrix m(samples_.size(), kNumPmcEvents);
  for (std::size_t r = 0; r < samples_.size(); ++r) {
    for (std::size_t c = 0; c < kNumPmcEvents; ++c) {
      m(r, c) = samples_[r].pmcs[c];
    }
  }
  return m;
}

double Trace::total_energy_j() const {
  double e = 0.0;
  for (const auto& s : samples_) e += s.p_node_w;  // 1-second ticks
  return e;
}

double Trace::peak_node_power() const {
  double p = 0.0;
  for (const auto& s : samples_) p = std::max(p, s.p_node_w);
  return p;
}

void Trace::append(const Trace& other) {
  const double offset =
      samples_.empty() ? 0.0 : samples_.back().time_s + 1.0;
  for (TickSample s : other.samples_) {
    s.time_s += offset;
    samples_.push_back(s);
  }
}

}  // namespace highrpm::sim
