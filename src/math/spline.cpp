#include "highrpm/math/spline.hpp"

#include <algorithm>
#include <stdexcept>

#include "highrpm/math/solve.hpp"

namespace highrpm::math {

CubicSpline::CubicSpline(std::span<const double> x, std::span<const double> y)
    : x_(x.begin(), x.end()), y_(y.begin(), y.end()) {
  const std::size_t n = x_.size();
  if (n < 2 || y_.size() != n) {
    throw std::invalid_argument("CubicSpline: need >= 2 matching points");
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (x_[i] <= x_[i - 1]) {
      throw std::invalid_argument("CubicSpline: x must be strictly increasing");
    }
  }
  b_.assign(n - 1, 0.0);
  c_.assign(n - 1, 0.0);
  d_.assign(n - 1, 0.0);
  if (n == 2) {
    b_[0] = (y_[1] - y_[0]) / (x_[1] - x_[0]);
    return;
  }
  // Solve for second derivatives m_i with natural boundary m_0 = m_{n-1} = 0.
  // Interior rows form a tridiagonal system of size n-2.
  const std::size_t m = n - 2;
  std::vector<double> lower(m > 1 ? m - 1 : 0), diag(m), upper(m > 1 ? m - 1 : 0),
      rhs(m);
  std::vector<double> h(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) h[i] = x_[i + 1] - x_[i];
  for (std::size_t i = 0; i < m; ++i) {
    diag[i] = 2.0 * (h[i] + h[i + 1]);
    rhs[i] = 6.0 * ((y_[i + 2] - y_[i + 1]) / h[i + 1] -
                    (y_[i + 1] - y_[i]) / h[i]);
    if (i > 0) lower[i - 1] = h[i];
    if (i + 1 < m) upper[i] = h[i + 1];
  }
  std::vector<double> mm(n, 0.0);
  if (m == 1) {
    mm[1] = rhs[0] / diag[0];
  } else {
    auto sol = solve_tridiagonal(lower, diag, upper, std::move(rhs));
    for (std::size_t i = 0; i < m; ++i) mm[i + 1] = sol[i];
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b_[i] = (y_[i + 1] - y_[i]) / h[i] - h[i] * (2.0 * mm[i] + mm[i + 1]) / 6.0;
    c_[i] = mm[i] / 2.0;
    d_[i] = (mm[i + 1] - mm[i]) / (6.0 * h[i]);
  }
}

std::size_t CubicSpline::segment(double t) const {
  // Rightmost segment whose left knot <= t, clamped to the valid range.
  const auto it = std::upper_bound(x_.begin(), x_.end(), t);
  if (it == x_.begin()) return 0;
  std::size_t idx = static_cast<std::size_t>(it - x_.begin()) - 1;
  return std::min(idx, x_.size() - 2);
}

double CubicSpline::operator()(double t) const {
  if (!fitted()) throw std::logic_error("CubicSpline: not fitted");
  if (t <= x_.front()) {
    // Linear extrapolation using the left boundary slope.
    return y_.front() + b_.front() * (t - x_.front());
  }
  if (t >= x_.back()) {
    const std::size_t i = x_.size() - 2;
    const double h = x_.back() - x_[i];
    const double slope = b_[i] + 2.0 * c_[i] * h + 3.0 * d_[i] * h * h;
    return y_.back() + slope * (t - x_.back());
  }
  const std::size_t i = segment(t);
  const double dt = t - x_[i];
  return y_[i] + dt * (b_[i] + dt * (c_[i] + dt * d_[i]));
}

std::vector<double> CubicSpline::evaluate(std::span<const double> t) const {
  std::vector<double> out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = (*this)(t[i]);
  return out;
}

double CubicSpline::derivative(double t) const {
  if (!fitted()) throw std::logic_error("CubicSpline: not fitted");
  if (t <= x_.front()) return b_.front();
  if (t >= x_.back()) {
    const std::size_t i = x_.size() - 2;
    const double h = x_.back() - x_[i];
    return b_[i] + 2.0 * c_[i] * h + 3.0 * d_[i] * h * h;
  }
  const std::size_t i = segment(t);
  const double dt = t - x_[i];
  return b_[i] + 2.0 * c_[i] * dt + 3.0 * d_[i] * dt * dt;
}

LinearInterp::LinearInterp(std::span<const double> x, std::span<const double> y)
    : x_(x.begin(), x.end()), y_(y.begin(), y.end()) {
  if (x_.size() < 2 || y_.size() != x_.size()) {
    throw std::invalid_argument("LinearInterp: need >= 2 matching points");
  }
  for (std::size_t i = 1; i < x_.size(); ++i) {
    if (x_[i] <= x_[i - 1]) {
      throw std::invalid_argument("LinearInterp: x must be strictly increasing");
    }
  }
}

double LinearInterp::operator()(double t) const {
  if (x_.empty()) throw std::logic_error("LinearInterp: not fitted");
  if (t <= x_.front()) return y_.front();
  if (t >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), t);
  const std::size_t i = static_cast<std::size_t>(it - x_.begin()) - 1;
  const double f = (t - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] * (1.0 - f) + y_[i + 1] * f;
}

}  // namespace highrpm::math
