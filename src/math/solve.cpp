#include "highrpm/math/solve.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace highrpm::math {

std::vector<double> solve_cholesky(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_cholesky: shape mismatch");
  }
  // L lower-triangular with A = L L^T.
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) {
          throw std::domain_error("solve_cholesky: matrix not SPD");
        }
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back solve L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) {
    throw std::invalid_argument("solve_least_squares: rhs size mismatch");
  }
  if (m < n) {
    throw std::invalid_argument("solve_least_squares: underdetermined system");
  }
  // Householder QR working on copies.
  Matrix r = a;
  std::vector<double> qtb(b.begin(), b.end());
  for (std::size_t k = 0; k < n; ++k) {
    // Build Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-12) continue;  // rank-deficient column: leave as-is
    const double alpha = r(k, k) > 0 ? -norm : norm;
    std::vector<double> v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv < 1e-24) continue;
    // Apply H = I - 2 v v^T / (v^T v) to R (cols k..n-1) and to qtb.
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * r(i, j);
      const double f = 2.0 * s / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
    }
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += v[i - k] * qtb[i];
    const double f = 2.0 * s / vtv;
    for (std::size_t i = k; i < m; ++i) qtb[i] -= f * v[i - k];
  }
  // Back substitution on the upper-triangular R.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = qtb[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= r(ii, j) * x[j];
    const double d = r(ii, ii);
    x[ii] = std::fabs(d) > 1e-12 ? s / d : 0.0;
  }
  return x;
}

std::vector<double> solve_ridge(const Matrix& a, std::span<const double> b,
                                double lambda, std::size_t unpenalized_col) {
  Matrix g = gram(a);
  for (std::size_t i = 0; i < g.rows(); ++i) {
    if (i != unpenalized_col) g(i, i) += lambda;
  }
  // Tiny jitter keeps the Cholesky SPD even for duplicate columns.
  for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += 1e-10;
  const std::vector<double> atb = matvec_t(a, b);
  return solve_cholesky(g, atb);
}

std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::vector<double> rhs) {
  const std::size_t n = diag.size();
  if (lower.size() != n - 1 || upper.size() != n - 1 || rhs.size() != n) {
    throw std::invalid_argument("solve_tridiagonal: band size mismatch");
  }
  std::vector<double> c(n - 1);
  std::vector<double> d(rhs.begin(), rhs.end());
  c[0] = upper[0] / diag[0];
  d[0] = d[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double m = diag[i] - lower[i - 1] * c[i - 1];
    if (i < n - 1) c[i] = upper[i] / m;
    d[i] = (d[i] - lower[i - 1] * d[i - 1]) / m;
  }
  for (std::size_t ii = n - 1; ii-- > 0;) d[ii] -= c[ii] * d[ii + 1];
  return d;
}

}  // namespace highrpm::math
