#include "highrpm/math/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "highrpm/math/stats.hpp"

namespace highrpm::math {

namespace {
void check_sizes(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("metrics: size mismatch or empty input");
  }
}
}  // namespace

double mape(std::span<const double> y_true, std::span<const double> y_pred,
            double eps) {
  check_sizes(y_true, y_pred);
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (std::fabs(y_true[i]) < eps) continue;
    s += std::fabs((y_true[i] - y_pred[i]) / y_true[i]);
    ++n;
  }
  // All observations skipped means the truth vector is all-(near-)zero — an
  // idle tenant, say. 0.0 here would report a *perfect* score for a regime
  // the metric cannot judge at all; NaN is the honest "undefined" answer
  // (reporters render it as n/a).
  return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                : 100.0 * s / static_cast<double>(n);
}

double rmse(std::span<const double> y_true, std::span<const double> y_pred) {
  check_sizes(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(y_true.size()));
}

double mae(std::span<const double> y_true, std::span<const double> y_pred) {
  check_sizes(y_true, y_pred);
  double s = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    s += std::fabs(y_true[i] - y_pred[i]);
  }
  return s / static_cast<double>(y_true.size());
}

double r2(std::span<const double> y_true, std::span<const double> y_pred) {
  check_sizes(y_true, y_pred);
  const double m = mean(y_true);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - m) * (y_true[i] - m);
  }
  if (ss_tot < 1e-24) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

std::string MetricReport::to_string() const {
  char buf[128];
  if (!std::isfinite(mape)) {
    // Undefined MAPE (all observations skipped) renders as n/a, per the
    // mape() contract.
    std::snprintf(buf, sizeof(buf), "MAPE=n/a RMSE=%.2f MAE=%.2f R2=%.3f",
                  rmse, mae, r2);
  } else {
    std::snprintf(buf, sizeof(buf), "MAPE=%.2f%% RMSE=%.2f MAE=%.2f R2=%.3f",
                  mape, rmse, mae, r2);
  }
  return buf;
}

MetricReport evaluate_metrics(std::span<const double> y_true,
                              std::span<const double> y_pred) {
  return MetricReport{mape(y_true, y_pred), rmse(y_true, y_pred),
                      mae(y_true, y_pred), r2(y_true, y_pred)};
}

}  // namespace highrpm::math
