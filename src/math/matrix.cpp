#include "highrpm/math/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/runtime/parallel_for.hpp"

namespace highrpm::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(std::size_t rows, std::size_t cols,
                         std::span<const double> flat) {
  if (flat.size() != rows * cols) {
    throw std::invalid_argument("Matrix::from_rows: size mismatch");
  }
  Matrix m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data_.begin());
  return m;
}

std::vector<double> Matrix::col(std::size_t c) const {
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (!same_shape(o)) throw std::invalid_argument("Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (!same_shape(o)) throw std::invalid_argument("Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimension mismatch");
  }
  Matrix c(a.rows(), b.cols(), 0.0);
  // Block over rows (parallel grain) and the inner dimension (cache reuse of
  // B's rows); the j loop stays contiguous for row-major storage. Every
  // output row belongs to exactly one task and the k summation order is a
  // fixed function of the shapes, so results never depend on scheduling.
  constexpr std::size_t kBlock = 64;
  const std::size_t row_blocks = (a.rows() + kBlock - 1) / kBlock;
  runtime::parallel_for(row_blocks, [&](std::size_t rb) {
    const std::size_t i_begin = rb * kBlock;
    const std::size_t i_end = std::min(i_begin + kBlock, a.rows());
    for (std::size_t k0 = 0; k0 < a.cols(); k0 += kBlock) {
      const std::size_t k1 = std::min(k0 + kBlock, a.cols());
      for (std::size_t i = i_begin; i < i_end; ++i) {
        auto crow = c.row(i);
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = a(i, k);
          if (is_zero(aik)) continue;
          const auto brow = b.row(k);
          for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
        }
      }
    }
  });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt: inner dimension mismatch");
  }
  Matrix c(a.rows(), b.rows());
  runtime::parallel_for(a.rows(), [&](std::size_t i) {
    const auto arow = a.row(i);
    auto crow = c.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) crow[j] = dot(arow, b.row(j));
  });
  return c;
}

Matrix gram(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix g(n, n, 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t i = 0; i < n; ++i) {
      const double ri = row[i];
      if (is_zero(ri)) continue;
      for (std::size_t j = i; j < n; ++j) g(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  if (x.size() != a.cols()) throw std::invalid_argument("matvec: size mismatch");
  std::vector<double> y(a.rows(), 0.0);
  runtime::parallel_for(
      a.rows(), [&](std::size_t i) { y[i] = dot(a.row(i), x); });
  return y;
}

void matvec_into(const Matrix& a, std::span<const double> x,
                 std::span<double> y) {
  if (x.size() != a.cols() || y.size() != a.rows()) {
    throw std::invalid_argument("matvec_into: size mismatch");
  }
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
}

void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt_into: inner dimension mismatch");
  }
  c.resize(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    auto crow = c.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) crow[j] = dot(arow, b.row(j));
  }
}

void matmul_nt_bias_into(const Matrix& a, const Matrix& b,
                         std::span<const double> bias, Matrix& c) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_nt_bias_into: inner dimension mismatch");
  }
  if (bias.size() != b.rows()) {
    throw std::invalid_argument("matmul_nt_bias_into: bias size mismatch");
  }
  c.resize(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    auto crow = c.row(i);
    // bias[j] first, dot second: the exact association of the scalar form
    // `b[j] + dot(w.row(j), x)` this kernel batches.
    for (std::size_t j = 0; j < b.rows(); ++j) {
      crow[j] = bias[j] + dot(arow, b.row(j));
    }
  }
}

std::vector<double> matvec_t(const Matrix& a, std::span<const double> x) {
  if (x.size() != a.rows()) {
    throw std::invalid_argument("matvec_t: size mismatch");
  }
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (is_zero(xi)) continue;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * row[j];
  }
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double s, std::span<const double> b, std::span<double> a) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) a[i] += s * b[i];
}

void scale(std::span<double> a, double s) {
  for (double& v : a) v *= s;
}

std::vector<double> vec_add(std::span<const double> a,
                            std::span<const double> b) {
  std::vector<double> out(a.begin(), a.end());
  axpy(1.0, b, out);
  return out;
}

std::vector<double> vec_sub(std::span<const double> a,
                            std::span<const double> b) {
  std::vector<double> out(a.begin(), a.end());
  axpy(-1.0, b, out);
  return out;
}

}  // namespace highrpm::math
