#include "highrpm/math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace highrpm::math {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double min_value(std::span<const double> v) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(v.begin(), v.end());
}

double max_value(std::span<const double> v) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(v.begin(), v.end());
}

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::vector<double> v) { return quantile(std::move(v), 0.5); }

double pearson(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  const double ma = mean(a.subspan(0, n));
  const double mb = mean(b.subspan(0, n));
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa < 1e-24 || sbb < 1e-24) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double autocorrelation(std::span<const double> v, std::size_t lag) {
  if (v.size() <= lag + 1) return 0.0;
  const double m = mean(v);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    den += (v[i] - m) * (v[i] - m);
  }
  if (den < 1e-24) return 0.0;
  for (std::size_t i = 0; i + lag < v.size(); ++i) {
    num += (v[i] - m) * (v[i + lag] - m);
  }
  return num / den;
}

bool all_finite(std::span<const double> v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::vector<double> moving_average(std::span<const double> v,
                                   std::size_t window) {
  if (window == 0) throw std::invalid_argument("moving_average: window == 0");
  std::vector<double> out(v.size(), 0.0);
  const std::size_t half = window / 2;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half + 1, v.size());
    double s = 0.0;
    for (std::size_t j = lo; j < hi; ++j) s += v[j];
    out[i] = s / static_cast<double>(hi - lo);
  }
  return out;
}

}  // namespace highrpm::math
