#include "highrpm/math/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "highrpm/math/float_eq.hpp"

namespace highrpm::math {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("poisson: lambda < 0");
  if (is_zero(lambda)) return 0;
  if (lambda > 30.0) {
    // Normal approximation with continuity correction.
    const double v = normal(lambda, std::sqrt(lambda));
    return v < 0.5 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double l = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > l);
  return k - 1;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate <= 0");
  double u;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i-- > 1;) {
    const std::size_t j = uniform_index(i + 1);
    std::swap(idx[i], idx[j]);
  }
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  auto perm = permutation(n);
  perm.resize(k);
  return perm;
}

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::fork(std::uint64_t seed, std::uint64_t index) {
  // One SplitMix64 avalanche over a seed/index combination (the constructor
  // adds further mixing rounds). index+1 keeps fork(s, 0) != Rng(s).
  std::uint64_t x = seed + (index + 1) * 0x9E3779B97F4A7C15ULL;
  return Rng(splitmix64(x));
}

}  // namespace highrpm::math
