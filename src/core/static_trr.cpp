#include "highrpm/core/static_trr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "highrpm/math/rng.hpp"
#include "highrpm/math/stats.hpp"
#include "highrpm/obs/obs.hpp"

namespace highrpm::core {

namespace {

/// Copy a feature row, zeroing non-finite entries so the residual tree
/// never trains on (or compares against) NaN — NaN comparisons would break
/// the tree's sort invariants. Clean rows copy through unchanged.
void copy_sanitized_row(std::span<const double> src, std::span<double> dst) {
  for (std::size_t c = 0; c < src.size(); ++c) {
    dst[c] = std::isfinite(src[c]) ? src[c] : 0.0;
  }
}

}  // namespace

CleanedReadings clean_labeled_readings(std::span<const std::size_t> idx,
                                       std::span<const double> power,
                                       std::size_t num_ticks) {
  static obs::Counter& dropped =
      obs::Registry::instance().counter("core.static_trr.dropped_readings");
  const std::size_t n = std::min(idx.size(), power.size());
  std::vector<std::pair<std::size_t, double>> usable;
  usable.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (idx[i] >= num_ticks || !std::isfinite(power[i])) {
      dropped.add();  // out-of-range tick or NaN/Inf reading
      continue;
    }
    usable.emplace_back(idx[i], power[i]);
  }
  std::stable_sort(usable.begin(), usable.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  CleanedReadings out;
  out.idx.reserve(usable.size());
  out.power.reserve(usable.size());
  for (std::size_t i = 0; i < usable.size();) {
    // Average duplicate-tick readings (jitter can land two polls on one
    // tick) so the spline sees one knot per timestamp.
    std::size_t j = i;
    double sum = 0.0;
    while (j < usable.size() && usable[j].first == usable[i].first) {
      sum += usable[j].second;
      ++j;
    }
    out.idx.push_back(usable[i].first);
    out.power.push_back(sum / static_cast<double>(j - i));
    i = j;
  }
  return out;
}

StaticTrr::StaticTrr(StaticTrrConfig cfg) : cfg_(cfg) {
  ml::TreeConfig tc = cfg_.res_tree;
  tc.seed = cfg_.seed;
  res_model_ = ml::DecisionTreeRegressor(tc);
}

void StaticTrr::fit(const math::Matrix& pmcs, std::span<const double> times,
                    std::span<const std::size_t> labeled_idx_in,
                    std::span<const double> labeled_power_in) {
  static obs::Histogram& fit_hist =
      obs::Registry::instance().histogram("core.static_trr.fit_ns");
  const obs::Span span(fit_hist);
  if (labeled_idx_in.size() != labeled_power_in.size()) {
    throw std::invalid_argument(
        "StaticTrr::fit: labeled idx/power length mismatch");
  }
  if (pmcs.rows() != times.size()) {
    throw std::invalid_argument("StaticTrr::fit: pmcs/times length mismatch");
  }
  CleanedReadings cleaned =
      clean_labeled_readings(labeled_idx_in, labeled_power_in, times.size());
  if (cfg_.p_bottom > 0.0 || cfg_.p_upper > 0.0) {
    // Explicitly configured plausibility bounds (e.g. the node's power
    // envelope from the training rig) also veto implausible *readings* —
    // a spiking sensor otherwise drags the spline, and with it the derived
    // band, arbitrarily far off. Derived bounds can't do this: they come
    // from the very readings they would have to judge.
    CleanedReadings kept;
    for (std::size_t i = 0; i < cleaned.idx.size(); ++i) {
      if (cfg_.p_bottom > 0.0 && cleaned.power[i] < cfg_.p_bottom) continue;
      if (cfg_.p_upper > 0.0 && cleaned.power[i] > cfg_.p_upper) continue;
      kept.idx.push_back(cleaned.idx[i]);
      kept.power.push_back(cleaned.power[i]);
    }
    cleaned = std::move(kept);
  }
  if (cleaned.idx.size() < 4) {
    throw std::invalid_argument(
        "StaticTrr::fit: need >= 4 usable labeled readings (after dropping "
        "non-finite / out-of-range entries and merging duplicate ticks)");
  }
  const std::span<const std::size_t> labeled_idx(cleaned.idx);
  const std::span<const double> labeled_power(cleaned.power);

  // Plausibility bounds from the labeled readings unless given.
  const double lo = math::min_value(labeled_power);
  const double hi = math::max_value(labeled_power);
  const double margin = cfg_.bound_margin * std::max(1.0, hi - lo);
  p_bottom_ = cfg_.p_bottom > 0.0 ? cfg_.p_bottom : lo - margin;
  p_upper_ = cfg_.p_upper > 0.0 ? cfg_.p_upper : hi + margin;

  // --- spline model over a training half of set A (paper: 50%) ---
  math::Rng rng(cfg_.seed);
  const std::size_t n_lab = labeled_idx.size();
  const std::size_t n_train = std::max<std::size_t>(
      2, static_cast<std::size_t>(cfg_.train_fraction *
                                  static_cast<double>(n_lab)));
  auto picked = rng.sample_without_replacement(n_lab, n_train);
  std::sort(picked.begin(), picked.end());
  std::vector<double> kx, ky;
  kx.reserve(n_train);
  ky.reserve(n_train);
  for (const std::size_t i : picked) {
    kx.push_back(times[labeled_idx[i]]);
    ky.push_back(labeled_power[i]);
  }
  spline_ = math::CubicSpline(kx, ky);

  // --- residual model over the held-out labeled readings ---
  // Target: signed deviation of the measured power from the spline trend
  // (see DESIGN.md: the paper's ABS() reading contradicts Algorithm 1, so
  // we model the signed residual and form P_residual = P_splined + r̂).
  // Training on the half NOT used as spline knots keeps the residual
  // distribution honest (knot residuals are ~0 by construction).
  std::vector<std::size_t> held;
  {
    std::vector<bool> is_knot(n_lab, false);
    for (const std::size_t i : picked) is_knot[i] = true;
    for (std::size_t i = 0; i < n_lab; ++i) {
      if (!is_knot[i]) held.push_back(i);
    }
    if (held.size() < 4) {  // tiny label sets: use everything
      held.resize(n_lab);
      for (std::size_t i = 0; i < n_lab; ++i) held[i] = i;
    }
  }
  math::Matrix rx(held.size(), pmcs.cols());
  std::vector<double> ry(held.size());
  for (std::size_t i = 0; i < held.size(); ++i) {
    const std::size_t tick = labeled_idx[held[i]];
    copy_sanitized_row(pmcs.row(tick), rx.row(i));
    ry[i] = labeled_power[held[i]] - spline_(times[tick]);
  }
  res_model_.fit(rx, ry);

  if (cfg_.refit_spline_on_all && n_lab > picked.size()) {
    std::vector<double> ax, ay;
    ax.reserve(n_lab);
    ay.reserve(n_lab);
    for (std::size_t i = 0; i < n_lab; ++i) {
      ax.push_back(times[labeled_idx[i]]);
      ay.push_back(labeled_power[i]);
    }
    spline_ = math::CubicSpline(ax, ay);
  }
}

StaticTrrRestoration StaticTrr::restore(const math::Matrix& pmcs,
                                        std::span<const double> times) const {
  if (!fitted()) throw std::logic_error("StaticTrr: not fitted");
  if (pmcs.rows() != times.size()) {
    throw std::invalid_argument("StaticTrr::restore: length mismatch");
  }
  StaticTrrRestoration out;
  const std::size_t n = times.size();
  out.splined.resize(n);
  out.residual.resize(n);
  std::vector<double> scratch(pmcs.cols());
  for (std::size_t i = 0; i < n; ++i) {
    out.splined[i] = spline_(times[i]);
    std::span<const double> row = pmcs.row(i);
    if (!math::all_finite(row)) {  // degraded tick: zero the bad entries
      copy_sanitized_row(row, scratch);
      row = scratch;
    }
    out.residual[i] = out.splined[i] + res_model_.predict_one(row);
  }
  out.merged = static_trr_post_process(out.splined, out.residual, p_upper_,
                                       p_bottom_, cfg_);
  return out;
}

std::vector<double> restore_node_power(const measure::CollectedRun& run,
                                       const StaticTrrConfig& cfg) {
  std::vector<std::size_t> idx;
  std::vector<double> power;
  idx.reserve(run.ipmi_readings.size());
  power.reserve(run.ipmi_readings.size());
  for (const auto& r : run.ipmi_readings) {
    idx.push_back(r.tick_index);
    power.push_back(r.power_w);
  }
  // Too few usable readings to spline (short run, or faults ate the rest):
  // fall back to the dense target rather than failing deep inside fit.
  const auto cleaned = clean_labeled_readings(idx, power, run.num_ticks());
  if (cleaned.idx.size() < 4) return run.dataset.target("P_NODE");
  StaticTrr trr(cfg);
  const auto times = run.truth.times();
  trr.fit(run.dataset.features(), times, cleaned.idx, cleaned.power);
  return trr.restore(run.dataset.features(), times).merged;
}

std::vector<double> static_trr_post_process(std::span<const double> splined,
                                            std::span<const double> residual,
                                            double p_upper, double p_bottom,
                                            const StaticTrrConfig& cfg) {
  if (splined.size() != residual.size()) {
    throw std::invalid_argument("static_trr_post_process: length mismatch");
  }
  static obs::Histogram& merge_hist =
      obs::Registry::instance().histogram("core.static_trr.merge_ns");
  const obs::Span span(merge_hist);
  const std::size_t n = splined.size();
  std::vector<double> spl(splined.begin(), splined.end());
  std::vector<double> res(residual.begin(), residual.end());

  // Operation 1: where the spline jumps by >= spike_jump_fraction of the
  // plausible range between ticks, hold the spike value across the
  // surrounding half miss_interval (spline interpolation smears spikes; the
  // hold restores their duration).
  const double jump_thresh =
      cfg.spike_jump_fraction * std::max(1e-9, p_upper - p_bottom);
  const std::size_t half = cfg.miss_interval / 2;
  const std::vector<double> spl_orig = spl;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::fabs(spl_orig[i] - spl_orig[i - 1]) >= jump_thresh) {
      const std::size_t lo = i >= half ? i - half : 0;
      const std::size_t hi = std::min(n, i + half);
      for (std::size_t j = lo; j < hi; ++j) spl[j] = spl_orig[i];
    }
  }

  std::vector<double> merged(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Operations 2 & 3: the residual estimate is untrustworthy outside the
    // plausibility bounds — fall back to the spline there.
    if (res[i] >= p_upper || res[i] <= p_bottom) res[i] = spl[i];

    // Merge by agreement (Algorithm 1, final three cases).
    const double diff = std::fabs(spl[i] - res[i]);
    const double floor_ = std::max(1e-9, std::min(spl[i], res[i]));
    if (diff <= cfg.alpha * floor_) {
      merged[i] = spl[i];
    } else if (diff <= cfg.beta * floor_) {
      merged[i] = 0.5 * (spl[i] + res[i]);
    } else {
      merged[i] = spl[i];
    }

    // Algorithm 1's output contract: the restored trace stays inside the
    // plausibility band. The spline can overshoot it between knots (cubic
    // ringing past a spike), and Operations 2&3 only guard the residual
    // branch — clamp the merged value too.
    if (p_upper > p_bottom) {
      merged[i] = std::clamp(merged[i], p_bottom, p_upper);
    }
  }
  return merged;
}

}  // namespace highrpm::core
