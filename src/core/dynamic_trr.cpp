#include "highrpm/core/dynamic_trr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/math/stats.hpp"
#include "highrpm/obs/obs.hpp"

namespace highrpm::core {

DynamicTrr::DynamicTrr(DynamicTrrConfig cfg)
    : cfg_(cfg), model_(cfg.rnn), cheap_(cfg.cheap_tree) {
  if (cfg_.miss_interval < 2) {
    throw std::invalid_argument("DynamicTrr: miss_interval must be >= 2");
  }
}

void DynamicTrr::capture_label_stats(
    std::span<const std::vector<double>> run_labels) {
  double lo = 0.0, hi = 0.0, sum = 0.0;
  std::size_t n = 0;
  for (const auto& labels : run_labels) {
    for (const double y : labels) {
      if (n == 0) {
        lo = hi = y;
      } else {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
      sum += y;
      ++n;
    }
  }
  if (n == 0) return;
  label_mean_ = sum / static_cast<double>(n);
  const double margin = cfg_.bound_margin * std::max(1.0, hi - lo);
  p_bottom_ = lo - margin;
  p_upper_ = hi + margin;
}

void DynamicTrr::train(std::span<const math::Matrix> run_pmcs,
                       std::span<const std::vector<double>> run_labels) {
  if (run_pmcs.size() != run_labels.size() || run_pmcs.empty()) {
    throw std::invalid_argument("DynamicTrr::train: run count mismatch");
  }
  for (std::size_t r = 0; r < run_pmcs.size(); ++r) {
    if (run_pmcs[r].rows() != run_labels[r].size()) {
      throw std::invalid_argument(
          "DynamicTrr::train: pmcs/labels length mismatch in run " +
          std::to_string(r));
    }
    if (!math::all_finite(run_pmcs[r].flat()) ||
        !math::all_finite(run_labels[r])) {
      throw std::invalid_argument(
          "DynamicTrr::train: non-finite value in run " + std::to_string(r) +
          " (training data must be clean; faults are a deployment-time "
          "concern)");
    }
  }
  std::vector<data::SequenceSample> samples;
  for (std::size_t r = 0; r < run_pmcs.size(); ++r) {
    if (run_pmcs[r].rows() < cfg_.miss_interval) continue;
    // First tick's P'_prev: the first label (a measured reading always
    // exists at stream start in deployment).
    auto w = data::make_windows_with_prev_label(
        run_pmcs[r], run_labels[r], cfg_.miss_interval, run_labels[r][0]);
    const std::size_t stride = std::max<std::size_t>(1, cfg_.train_stride);
    for (std::size_t i = 0; i < w.size(); i += stride) {
      samples.push_back(std::move(w[i]));
    }
  }
  if (samples.empty()) {
    throw std::invalid_argument("DynamicTrr::train: no full windows");
  }
  n_features_ = run_pmcs[0].cols();
  capture_label_stats(run_labels);
  model_.fit(samples, /*reset=*/true);
  if (cfg_.train_cheap_model) {
    // Pointwise training rows mirror the streaming layout exactly:
    // [PMC..., P'_prev] with P'_prev = previous tick's label (first tick
    // uses the run's first label, make_windows_with_prev_label's
    // convention), so the tree can be evaluated on the very ring rows
    // step_prepare builds. Short runs skipped by the windowed LSTM
    // construction still contribute here.
    std::size_t total = 0;
    for (const auto& labels : run_labels) total += labels.size();
    math::Matrix x(total, n_features_ + 1);
    std::vector<double> y(total);
    std::size_t out = 0;
    for (std::size_t r = 0; r < run_pmcs.size(); ++r) {
      const auto& labels = run_labels[r];
      for (std::size_t i = 0; i < labels.size(); ++i) {
        const auto dst = x.row(out);
        const auto src = run_pmcs[r].row(i);
        std::copy(src.begin(), src.end(), dst.begin());
        dst[n_features_] = i == 0 ? labels[0] : labels[i - 1];
        y[out] = labels[i];
        ++out;
      }
    }
    cheap_.fit(x, y);
  }
  reset_stream();
}

void DynamicTrr::train_single(const math::Matrix& pmcs,
                              std::span<const double> labels) {
  const std::vector<double> l(labels.begin(), labels.end());
  train(std::span<const math::Matrix>(&pmcs, 1),
        std::span<const std::vector<double>>(&l, 1));
}

void DynamicTrr::fine_tune(std::span<const data::SequenceSample> windows,
                           std::size_t epochs) {
  if (!fitted()) throw std::logic_error("DynamicTrr::fine_tune: not trained");
  if (windows.empty()) return;
  for (const auto& w : windows) {
    if (!math::all_finite(w.steps.flat()) || !math::all_finite(w.labels)) {
      throw std::invalid_argument(
          "DynamicTrr::fine_tune: non-finite value in window");
    }
  }
  model_.fit(windows, /*reset=*/false, epochs);
  finetunes_.add();
}

void DynamicTrr::reset_stream() {
  // Size the SoA ring once; steady-state ticks then recycle slot storage
  // instead of allocating. Row width is fixed at F+1 when the feature
  // width is known (post-train); otherwise the first step sizes it.
  win_rows_.resize(cfg_.miss_interval, n_features_ > 0 ? n_features_ + 1 : 0);
  std::fill(win_rows_.flat().begin(), win_rows_.flat().end(), 0.0);
  win_est_.assign(cfg_.miss_interval, 0.0);
  win_clean_.assign(cfg_.miss_interval, 1);
  win_start_ = 0;
  win_count_ = 0;
  prev_estimate_ = 0.0;
  have_prev_ = false;
  last_good_pmcs_.clear();
  if (n_features_ > 0) last_good_pmcs_.reserve(n_features_);
  have_last_good_ = false;
  last_im_value_ = 0.0;
  have_last_im_ = false;
  im_repeats_ = 0;
}

bool DynamicTrr::plausible_reading(double value) const {
  if (!std::isfinite(value)) return false;
  if (p_upper_ <= p_bottom_) return true;  // no band captured (legacy model)
  return value >= p_bottom_ && value <= p_upper_;
}

bool DynamicTrr::stuck_reading(double value, double estimate) {
  if (have_last_im_ && math::exact_eq(value, last_im_value_)) {
    ++im_repeats_;
  } else {
    im_repeats_ = 1;
    last_im_value_ = value;
    have_last_im_ = true;
  }
  if (im_repeats_ <= cfg_.stuck_limit || p_upper_ <= p_bottom_) return false;
  const double range = std::max(1e-9, p_upper_ - p_bottom_);
  return std::fabs(value - estimate) > cfg_.stuck_disagreement * range;
}

DynamicTrr::StepPrep DynamicTrr::step_prepare(std::span<const double> pmcs,
                                              std::optional<double> im_reading) {
  // Process-wide telemetry (registry lookups resolved once): aggregate
  // degradation/cold-start totals mirroring the per-instance diagnostic
  // counters.
  static obs::Counter& steps_total =
      obs::Registry::instance().counter("core.dynamic_trr.steps");
  static obs::Counter& rejected_total =
      obs::Registry::instance().counter("core.dynamic_trr.rejected_readings");
  static obs::Counter& substituted_total =
      obs::Registry::instance().counter("core.dynamic_trr.substituted_rows");
  static obs::Counter& cold_total =
      obs::Registry::instance().counter("core.dynamic_trr.cold_starts");
  steps_total.add();

  if (!fitted()) throw std::logic_error("DynamicTrr::step: not trained");
  if (n_features_ > 0 && pmcs.size() != n_features_) {
    throw std::invalid_argument(
        "DynamicTrr::step: expected " + std::to_string(n_features_) +
        " PMC values, got " + std::to_string(pmcs.size()));
  }

  StepPrep prep;
  // Unpack the optional once: GCC's flow analysis cannot track the payload
  // through the guarded derefs below and emits -Wmaybe-uninitialized.
  prep.have_reading = im_reading.has_value();
  prep.reading_value = prep.have_reading ? *im_reading : 0.0;

  // Claim this tick's ring slot (oldest slot recycles once the window is
  // full) and build the row in its reusable storage.
  if (win_rows_.rows() == 0) reset_stream();
  if (win_rows_.cols() != pmcs.size() + 1) {
    // Legacy model with no captured feature width: size the ring lazily.
    win_rows_.resize(cfg_.miss_interval, pmcs.size() + 1);
    std::fill(win_rows_.flat().begin(), win_rows_.flat().end(), 0.0);
  }
  if (win_count_ < cfg_.miss_interval) {
    prep.slot = ring_index(win_count_);
    ++win_count_;
  } else {
    prep.slot = win_start_;
    win_start_ = (win_start_ + 1) % cfg_.miss_interval;
  }
  const std::size_t f = pmcs.size();
  const auto feat = win_rows_.row(prep.slot);
  std::copy(pmcs.begin(), pmcs.end(), feat.begin());
  win_est_[prep.slot] = 0.0;

  // --- input validation / graceful degradation (no-op on clean input) ---
  bool clean_row = true;
  if (cfg_.validate_inputs) {
    if (!math::all_finite(feat.subspan(0, f))) {
      // Degraded tick: hold the last good row — node power rarely moves in
      // one tick — and keep this window out of fine-tuning.
      clean_row = false;
      substituted_rows_.add();
      substituted_total.add();
      if (have_last_good_) {
        std::copy(last_good_pmcs_.begin(), last_good_pmcs_.end(),
                  feat.begin());
      } else {
        std::fill(feat.begin(), feat.begin() + f, 0.0);
      }
    } else {
      last_good_pmcs_.assign(feat.begin(), feat.begin() + f);
      have_last_good_ = true;
    }
    if (prep.have_reading && !plausible_reading(prep.reading_value)) {
      // Spike / garbage reading: keep predicting instead of superseding.
      rejected_readings_.add();
      rejected_total.add();
      prep.have_reading = false;
    }
  }
  win_clean_[prep.slot] = clean_row ? 1 : 0;

  // Finish this tick's row: [PMC..., P'_prev]. Before the first estimate
  // we use the IM reading if present, else the training-label mean (a
  // physically plausible cold-start prior).
  double prev = prev_estimate_;
  if (!have_prev_) {
    if (prep.have_reading) {
      prev = prep.reading_value;
    } else {
      prev = label_mean_;
      cold_starts_.add();
      cold_total.add();
    }
  }
  feat[f] = prev;
  prep.rows = win_count_;
  return prep;
}

void DynamicTrr::pack_window_into(math::Matrix& out,
                                  std::size_t row_offset) const {
  for (std::size_t r = 0; r < win_count_; ++r) {
    const auto src = win_rows_.row(ring_index(r));
    std::copy(src.begin(), src.end(), out.row(row_offset + r).begin());
  }
}

double DynamicTrr::predict_prepared() {
  // Predict over the current (possibly still-filling) window; the last
  // step's output is this tick's estimate. All buffers are member scratch —
  // after warm-up this path performs zero heap allocations.
  steps_scratch_.resize(win_count_, win_rows_.cols());
  pack_window_into(steps_scratch_, 0);
  model_.predict_into(steps_scratch_, preds_scratch_, ws_);
  return preds_scratch_.back();
}

double DynamicTrr::predict_prepared_cheap(const StepPrep& prep) const {
  if (!cheap_.fitted()) {
    throw std::logic_error(
        "DynamicTrr::predict_prepared_cheap: cheap model not trained "
        "(enable train_cheap_model)");
  }
  // The ring row step_prepare just built is already [PMC..., P'_prev];
  // the tree walk reads it in place — zero allocations, no scratch.
  return cheap_.predict_one(win_rows_.row(prep.slot));
}

void DynamicTrr::set_use_cheap(bool on) {
  if (on && !cheap_.fitted()) {
    throw std::logic_error(
        "DynamicTrr::set_use_cheap: cheap model not trained "
        "(enable train_cheap_model)");
  }
  use_cheap_ = on;
}

double DynamicTrr::step_commit(const StepPrep& prep, double raw_estimate) {
  static obs::Counter& rejected_total =
      obs::Registry::instance().counter("core.dynamic_trr.rejected_readings");

  bool have_reading = prep.have_reading;
  double estimate = raw_estimate;
  if (cfg_.validate_inputs) {
    if (!std::isfinite(estimate)) {
      estimate = have_prev_ ? prev_estimate_ : label_mean_;
    } else if (p_upper_ > p_bottom_) {
      estimate = std::clamp(estimate, p_bottom_, p_upper_);
    }
  }

  if (have_reading && cfg_.validate_inputs &&
      stuck_reading(prep.reading_value, estimate)) {
    // Stuck sensor: the same value keeps arriving while the model has
    // drifted away — trust the prediction.
    rejected_readings_.add();
    rejected_total.add();
    have_reading = false;
  }

  if (have_reading) {
    // A measured value supersedes the prediction and, per §4.2.2, triggers
    // an online fine-tune on the completed window: labels are the window's
    // estimates with the final one replaced by the measurement. After an IM
    // dropout the window keeps sliding, so the next good reading fine-tunes
    // on whatever window it completes. Windows holding substituted PMC rows
    // are not trained on. The sample is packed straight from the ring so
    // batched callers (which never fill steps_scratch_) fine-tune on the
    // same bytes the unbatched path would.
    estimate = prep.reading_value;
    // Cheap-path ticks skip fine-tune: the LSTM was not consulted, and the
    // whole point of sparse mode is not to pay its training cost either.
    if (cfg_.online_finetune && !use_cheap_ &&
        win_count_ == cfg_.miss_interval &&
        std::all_of(win_clean_.begin(), win_clean_.end(),
                    [](unsigned char c) { return c != 0; })) {
      data::SequenceSample s;
      s.steps.resize(cfg_.miss_interval, win_rows_.cols());
      pack_window_into(s.steps, 0);
      s.labels.reserve(cfg_.miss_interval);
      for (std::size_t r = 0; r + 1 < win_count_; ++r) {
        s.labels.push_back(win_est_[ring_index(r)]);
      }
      s.labels.push_back(estimate);
      if (s.labels.size() == cfg_.miss_interval) {
        model_.fit(std::span<const data::SequenceSample>(&s, 1),
                   /*reset=*/false, cfg_.finetune_epochs);
        finetunes_.add();
      }
    }
  }

  win_est_[prep.slot] = estimate;
  prev_estimate_ = estimate;
  have_prev_ = true;
  return estimate;
}

double DynamicTrr::step(std::span<const double> pmcs,
                        std::optional<double> im_reading) {
  static obs::Histogram& step_hist =
      obs::Registry::instance().histogram("core.dynamic_trr.step_ns");
  const obs::Span span(step_hist);
  const StepPrep prep = step_prepare(pmcs, im_reading);
  const double raw =
      use_cheap_ ? predict_prepared_cheap(prep) : predict_prepared();
  return step_commit(prep, raw);
}

}  // namespace highrpm::core
