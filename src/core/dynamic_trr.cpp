#include "highrpm/core/dynamic_trr.hpp"

#include <algorithm>
#include <stdexcept>

namespace highrpm::core {

DynamicTrr::DynamicTrr(DynamicTrrConfig cfg)
    : cfg_(cfg), model_(cfg.rnn) {
  if (cfg_.miss_interval < 2) {
    throw std::invalid_argument("DynamicTrr: miss_interval must be >= 2");
  }
}

void DynamicTrr::train(std::span<const math::Matrix> run_pmcs,
                       std::span<const std::vector<double>> run_labels) {
  if (run_pmcs.size() != run_labels.size() || run_pmcs.empty()) {
    throw std::invalid_argument("DynamicTrr::train: run count mismatch");
  }
  std::vector<data::SequenceSample> samples;
  for (std::size_t r = 0; r < run_pmcs.size(); ++r) {
    if (run_pmcs[r].rows() < cfg_.miss_interval) continue;
    // First tick's P'_prev: the first label (a measured reading always
    // exists at stream start in deployment).
    auto w = data::make_windows_with_prev_label(
        run_pmcs[r], run_labels[r], cfg_.miss_interval, run_labels[r][0]);
    const std::size_t stride = std::max<std::size_t>(1, cfg_.train_stride);
    for (std::size_t i = 0; i < w.size(); i += stride) {
      samples.push_back(std::move(w[i]));
    }
  }
  if (samples.empty()) {
    throw std::invalid_argument("DynamicTrr::train: no full windows");
  }
  model_.fit(samples, /*reset=*/true);
  reset_stream();
}

void DynamicTrr::train_single(const math::Matrix& pmcs,
                              std::span<const double> labels) {
  const std::vector<double> l(labels.begin(), labels.end());
  train(std::span<const math::Matrix>(&pmcs, 1),
        std::span<const std::vector<double>>(&l, 1));
}

void DynamicTrr::fine_tune(std::span<const data::SequenceSample> windows,
                           std::size_t epochs) {
  if (!fitted()) throw std::logic_error("DynamicTrr::fine_tune: not trained");
  if (windows.empty()) return;
  model_.fit(windows, /*reset=*/false, epochs);
  ++finetunes_;
}

void DynamicTrr::reset_stream() {
  window_rows_.clear();
  window_estimates_.clear();
  prev_estimate_ = 0.0;
  have_prev_ = false;
}

double DynamicTrr::step(std::span<const double> pmcs,
                        std::optional<double> im_reading) {
  if (!fitted()) throw std::logic_error("DynamicTrr::step: not trained");

  // Build this tick's row: [PMC..., P'_prev]. Before the first estimate we
  // use the IM reading if present, else fall back to 0 (cold start).
  std::vector<double> row(pmcs.begin(), pmcs.end());
  double prev = prev_estimate_;
  if (!have_prev_) prev = im_reading.value_or(0.0);
  row.push_back(prev);

  window_rows_.push_back(std::move(row));
  if (window_rows_.size() > cfg_.miss_interval) {
    window_rows_.erase(window_rows_.begin());
    window_estimates_.erase(window_estimates_.begin());
  }

  // Predict over the current (possibly still-filling) window; the last
  // step's output is this tick's estimate.
  math::Matrix steps(window_rows_.size(), window_rows_[0].size());
  for (std::size_t r = 0; r < window_rows_.size(); ++r) {
    std::copy(window_rows_[r].begin(), window_rows_[r].end(),
              steps.row(r).begin());
  }
  const auto preds = model_.predict(steps);
  double estimate = preds.back();

  if (im_reading) {
    // A measured value supersedes the prediction and, per §4.2.2, triggers
    // an online fine-tune on the completed window: labels are the window's
    // estimates with the final one replaced by the measurement.
    estimate = *im_reading;
    if (cfg_.online_finetune && window_rows_.size() == cfg_.miss_interval) {
      data::SequenceSample s;
      s.steps = steps;
      s.labels = window_estimates_;
      s.labels.push_back(estimate);
      if (s.labels.size() == cfg_.miss_interval) {
        model_.fit(std::span<const data::SequenceSample>(&s, 1),
                   /*reset=*/false, cfg_.finetune_epochs);
        ++finetunes_;
      }
    }
  }

  window_estimates_.push_back(estimate);
  if (window_estimates_.size() > window_rows_.size()) {
    window_estimates_.erase(window_estimates_.begin());
  }
  prev_estimate_ = estimate;
  have_prev_ = true;
  return estimate;
}

}  // namespace highrpm::core
