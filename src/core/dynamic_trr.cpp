#include "highrpm/core/dynamic_trr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/math/stats.hpp"
#include "highrpm/obs/obs.hpp"

namespace highrpm::core {

DynamicTrr::DynamicTrr(DynamicTrrConfig cfg)
    : cfg_(cfg), model_(cfg.rnn) {
  if (cfg_.miss_interval < 2) {
    throw std::invalid_argument("DynamicTrr: miss_interval must be >= 2");
  }
}

void DynamicTrr::capture_label_stats(
    std::span<const std::vector<double>> run_labels) {
  double lo = 0.0, hi = 0.0, sum = 0.0;
  std::size_t n = 0;
  for (const auto& labels : run_labels) {
    for (const double y : labels) {
      if (n == 0) {
        lo = hi = y;
      } else {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
      sum += y;
      ++n;
    }
  }
  if (n == 0) return;
  label_mean_ = sum / static_cast<double>(n);
  const double margin = cfg_.bound_margin * std::max(1.0, hi - lo);
  p_bottom_ = lo - margin;
  p_upper_ = hi + margin;
}

void DynamicTrr::train(std::span<const math::Matrix> run_pmcs,
                       std::span<const std::vector<double>> run_labels) {
  if (run_pmcs.size() != run_labels.size() || run_pmcs.empty()) {
    throw std::invalid_argument("DynamicTrr::train: run count mismatch");
  }
  for (std::size_t r = 0; r < run_pmcs.size(); ++r) {
    if (run_pmcs[r].rows() != run_labels[r].size()) {
      throw std::invalid_argument(
          "DynamicTrr::train: pmcs/labels length mismatch in run " +
          std::to_string(r));
    }
    if (!math::all_finite(run_pmcs[r].flat()) ||
        !math::all_finite(run_labels[r])) {
      throw std::invalid_argument(
          "DynamicTrr::train: non-finite value in run " + std::to_string(r) +
          " (training data must be clean; faults are a deployment-time "
          "concern)");
    }
  }
  std::vector<data::SequenceSample> samples;
  for (std::size_t r = 0; r < run_pmcs.size(); ++r) {
    if (run_pmcs[r].rows() < cfg_.miss_interval) continue;
    // First tick's P'_prev: the first label (a measured reading always
    // exists at stream start in deployment).
    auto w = data::make_windows_with_prev_label(
        run_pmcs[r], run_labels[r], cfg_.miss_interval, run_labels[r][0]);
    const std::size_t stride = std::max<std::size_t>(1, cfg_.train_stride);
    for (std::size_t i = 0; i < w.size(); i += stride) {
      samples.push_back(std::move(w[i]));
    }
  }
  if (samples.empty()) {
    throw std::invalid_argument("DynamicTrr::train: no full windows");
  }
  n_features_ = run_pmcs[0].cols();
  capture_label_stats(run_labels);
  model_.fit(samples, /*reset=*/true);
  reset_stream();
}

void DynamicTrr::train_single(const math::Matrix& pmcs,
                              std::span<const double> labels) {
  const std::vector<double> l(labels.begin(), labels.end());
  train(std::span<const math::Matrix>(&pmcs, 1),
        std::span<const std::vector<double>>(&l, 1));
}

void DynamicTrr::fine_tune(std::span<const data::SequenceSample> windows,
                           std::size_t epochs) {
  if (!fitted()) throw std::logic_error("DynamicTrr::fine_tune: not trained");
  if (windows.empty()) return;
  for (const auto& w : windows) {
    if (!math::all_finite(w.steps.flat()) || !math::all_finite(w.labels)) {
      throw std::invalid_argument(
          "DynamicTrr::fine_tune: non-finite value in window");
    }
  }
  model_.fit(windows, /*reset=*/false, epochs);
  finetunes_.add();
}

void DynamicTrr::reset_stream() {
  // Size the ring once; steady-state ticks then recycle slot buffers
  // instead of allocating. Row capacity is reserved up front when the
  // feature width is known (post-train).
  window_.resize(cfg_.miss_interval);
  for (auto& s : window_) {
    s.row.clear();
    if (n_features_ > 0) s.row.reserve(n_features_ + 1);
    s.estimate = 0.0;
    s.clean = true;
  }
  win_start_ = 0;
  win_count_ = 0;
  prev_estimate_ = 0.0;
  have_prev_ = false;
  last_good_pmcs_.clear();
  if (n_features_ > 0) last_good_pmcs_.reserve(n_features_);
  have_last_good_ = false;
  last_im_value_ = 0.0;
  have_last_im_ = false;
  im_repeats_ = 0;
}

bool DynamicTrr::plausible_reading(double value) const {
  if (!std::isfinite(value)) return false;
  if (p_upper_ <= p_bottom_) return true;  // no band captured (legacy model)
  return value >= p_bottom_ && value <= p_upper_;
}

bool DynamicTrr::stuck_reading(double value, double estimate) {
  if (have_last_im_ && math::exact_eq(value, last_im_value_)) {
    ++im_repeats_;
  } else {
    im_repeats_ = 1;
    last_im_value_ = value;
    have_last_im_ = true;
  }
  if (im_repeats_ <= cfg_.stuck_limit || p_upper_ <= p_bottom_) return false;
  const double range = std::max(1e-9, p_upper_ - p_bottom_);
  return std::fabs(value - estimate) > cfg_.stuck_disagreement * range;
}

double DynamicTrr::step(std::span<const double> pmcs,
                        std::optional<double> im_reading) {
  // Process-wide telemetry (registry lookups resolved once): per-step
  // latency plus aggregate degradation/cold-start totals mirroring the
  // per-instance diagnostic counters.
  static obs::Histogram& step_hist =
      obs::Registry::instance().histogram("core.dynamic_trr.step_ns");
  static obs::Counter& steps_total =
      obs::Registry::instance().counter("core.dynamic_trr.steps");
  static obs::Counter& rejected_total =
      obs::Registry::instance().counter("core.dynamic_trr.rejected_readings");
  static obs::Counter& substituted_total =
      obs::Registry::instance().counter("core.dynamic_trr.substituted_rows");
  static obs::Counter& cold_total =
      obs::Registry::instance().counter("core.dynamic_trr.cold_starts");
  const obs::Span span(step_hist);
  steps_total.add();

  if (!fitted()) throw std::logic_error("DynamicTrr::step: not trained");
  if (n_features_ > 0 && pmcs.size() != n_features_) {
    throw std::invalid_argument(
        "DynamicTrr::step: expected " + std::to_string(n_features_) +
        " PMC values, got " + std::to_string(pmcs.size()));
  }

  // Unpack the optional once: GCC's flow analysis cannot track the payload
  // through the guarded derefs below and emits -Wmaybe-uninitialized.
  bool have_reading = im_reading.has_value();
  const double reading_value = have_reading ? *im_reading : 0.0;

  // Claim this tick's ring slot (oldest slot recycles once the window is
  // full) and build the row in its reusable buffer.
  if (window_.empty()) reset_stream();
  WindowSlot* cur;
  if (win_count_ < window_.size()) {
    cur = &window_[(win_start_ + win_count_) % window_.size()];
    ++win_count_;
  } else {
    cur = &window_[win_start_];
    win_start_ = (win_start_ + 1) % window_.size();
  }
  auto& feat = cur->row;
  feat.clear();
  feat.reserve(pmcs.size() + 1);
  feat.insert(feat.end(), pmcs.begin(), pmcs.end());
  cur->estimate = 0.0;

  // --- input validation / graceful degradation (no-op on clean input) ---
  bool clean_row = true;
  if (cfg_.validate_inputs) {
    if (!math::all_finite(feat)) {
      // Degraded tick: hold the last good row — node power rarely moves in
      // one tick — and keep this window out of fine-tuning.
      clean_row = false;
      substituted_rows_.add();
      substituted_total.add();
      if (have_last_good_) {
        feat = last_good_pmcs_;
      } else {
        std::fill(feat.begin(), feat.end(), 0.0);
      }
    } else {
      last_good_pmcs_ = feat;
      have_last_good_ = true;
    }
    if (have_reading && !plausible_reading(reading_value)) {
      // Spike / garbage reading: keep predicting instead of superseding.
      rejected_readings_.add();
      rejected_total.add();
      have_reading = false;
    }
  }
  cur->clean = clean_row;

  // Build this tick's row: [PMC..., P'_prev]. Before the first estimate we
  // use the IM reading if present, else the training-label mean (a
  // physically plausible cold-start prior).
  double prev = prev_estimate_;
  if (!have_prev_) {
    if (have_reading) {
      prev = reading_value;
    } else {
      prev = label_mean_;
      cold_starts_.add();
      cold_total.add();
    }
  }
  feat.push_back(prev);

  // Predict over the current (possibly still-filling) window; the last
  // step's output is this tick's estimate. All buffers are member scratch —
  // after warm-up this path performs zero heap allocations.
  steps_scratch_.resize(win_count_, feat.size());
  for (std::size_t r = 0; r < win_count_; ++r) {
    const auto& row = slot(r).row;
    std::copy(row.begin(), row.end(), steps_scratch_.row(r).begin());
  }
  model_.predict_into(steps_scratch_, preds_scratch_, ws_);
  double estimate = preds_scratch_.back();

  if (cfg_.validate_inputs) {
    if (!std::isfinite(estimate)) {
      estimate = have_prev_ ? prev_estimate_ : label_mean_;
    } else if (p_upper_ > p_bottom_) {
      estimate = std::clamp(estimate, p_bottom_, p_upper_);
    }
  }

  if (have_reading && cfg_.validate_inputs &&
      stuck_reading(reading_value, estimate)) {
    // Stuck sensor: the same value keeps arriving while the model has
    // drifted away — trust the prediction.
    rejected_readings_.add();
    rejected_total.add();
    have_reading = false;
  }

  if (have_reading) {
    // A measured value supersedes the prediction and, per §4.2.2, triggers
    // an online fine-tune on the completed window: labels are the window's
    // estimates with the final one replaced by the measurement. After an IM
    // dropout the window keeps sliding, so the next good reading fine-tunes
    // on whatever window it completes. Windows holding substituted PMC rows
    // are not trained on.
    estimate = reading_value;
    if (cfg_.online_finetune && win_count_ == cfg_.miss_interval &&
        std::all_of(window_.begin(), window_.end(),
                    [](const WindowSlot& s) { return s.clean; })) {
      data::SequenceSample s;
      s.steps = steps_scratch_;
      s.labels.reserve(cfg_.miss_interval);
      for (std::size_t r = 0; r + 1 < win_count_; ++r) {
        s.labels.push_back(slot(r).estimate);
      }
      s.labels.push_back(estimate);
      if (s.labels.size() == cfg_.miss_interval) {
        model_.fit(std::span<const data::SequenceSample>(&s, 1),
                   /*reset=*/false, cfg_.finetune_epochs);
        finetunes_.add();
      }
    }
  }

  cur->estimate = estimate;
  prev_estimate_ = estimate;
  have_prev_ = true;
  return estimate;
}

}  // namespace highrpm::core
