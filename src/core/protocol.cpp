#include "highrpm/core/protocol.hpp"

#include <algorithm>
#include <stdexcept>

#include "highrpm/runtime/parallel_for.hpp"
#include "highrpm/workloads/suites.hpp"

namespace highrpm::core {

std::vector<SuiteData> collect_all_suites(const ProtocolConfig& cfg) {
  const measure::Collector collector(cfg.collector);

  // Enumerate every (suite, workload) run first, in the fixed suite order.
  // Each run's seed is forked from (cfg.seed, run index) — a pure function
  // of the enumeration, not of any shared generator state — so the corpus
  // is bit-identical whether the runs below execute serially or in parallel.
  struct RunJob {
    std::size_t suite_index;
    sim::Workload workload;
    std::size_t ticks;
    std::uint64_t seed;
  };
  std::vector<SuiteData> out;
  std::vector<RunJob> jobs;
  for (const auto& suite_name : workloads::suite_names()) {
    auto ws = workloads::suite(suite_name);
    if (cfg.max_workloads_per_suite > 0 &&
        ws.size() > cfg.max_workloads_per_suite) {
      ws.resize(cfg.max_workloads_per_suite);
    }
    // Spread the suite budget across its workloads, respecting the floor.
    const std::size_t per_workload = std::max(
        cfg.min_ticks_per_workload, cfg.samples_per_suite / ws.size());
    SuiteData sd;
    sd.suite = suite_name;
    for (const auto& w : ws) {
      jobs.push_back(RunJob{out.size(), w, per_workload,
                            math::Rng::fork(cfg.seed, jobs.size()).next_u64()});
    }
    out.push_back(std::move(sd));
  }

  auto runs = runtime::parallel_map(jobs.size(), [&](std::size_t i) {
    const RunJob& job = jobs[i];
    return collector.collect(cfg.platform, job.workload, job.ticks, job.seed,
                             cfg.freq_level);
  });
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out[jobs[i].suite_index].runs.push_back(std::move(runs[i]));
  }
  return out;
}

std::vector<math::MetricReport> run_folds(
    const std::vector<EvalSplit>& splits,
    const std::function<std::optional<math::MetricReport>(
        const EvalSplit&, std::size_t)>& fold_fn) {
  auto reports = runtime::parallel_map(
      splits.size(),
      [&](std::size_t i) { return fold_fn(splits[i], i); });
  std::vector<math::MetricReport> out;
  out.reserve(reports.size());
  for (auto& r : reports) {
    if (r.has_value()) out.push_back(*r);
  }
  return out;
}

measure::CollectedRun slice_run(const measure::CollectedRun& run,
                                std::size_t start, std::size_t len) {
  if (start + len > run.num_ticks()) {
    throw std::out_of_range("slice_run: range out of bounds");
  }
  measure::CollectedRun out;
  out.workload_name = run.workload_name;
  out.suite = run.suite;
  out.dataset = run.dataset.slice(start, len);
  out.measured.assign(run.measured.begin() + static_cast<std::ptrdiff_t>(start),
                      run.measured.begin() +
                          static_cast<std::ptrdiff_t>(start + len));
  for (const auto& r : run.ipmi_readings) {
    if (r.tick_index >= start && r.tick_index < start + len) {
      measure::IpmiReading nr = r;
      nr.tick_index -= start;
      out.ipmi_readings.push_back(nr);
    }
  }
  for (std::size_t i = start; i < start + len; ++i) {
    out.truth.push_back(run.truth[i]);
  }
  return out;
}

std::vector<EvalSplit> make_unseen_splits(const std::vector<SuiteData>& data) {
  std::vector<EvalSplit> out;
  for (std::size_t held = 0; held < data.size(); ++held) {
    EvalSplit split;
    split.held_out_suite = data[held].suite;
    split.seen = false;
    for (std::size_t s = 0; s < data.size(); ++s) {
      for (const auto& run : data[s].runs) {
        if (s == held) {
          split.test.push_back(run);
          split.test_score_start.push_back(0);
        } else {
          split.train.push_back(run);
        }
      }
    }
    out.push_back(std::move(split));
  }
  return out;
}

std::vector<EvalSplit> make_seen_splits(const std::vector<SuiteData>& data,
                                        double test_fraction) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("make_seen_splits: bad test fraction");
  }
  std::vector<EvalSplit> out;
  for (std::size_t held = 0; held < data.size(); ++held) {
    EvalSplit split;
    split.held_out_suite = data[held].suite;
    split.seen = true;
    for (std::size_t s = 0; s < data.size(); ++s) {
      for (const auto& run : data[s].runs) {
        if (s != held) {
          split.train.push_back(run);
          continue;
        }
        // Target suite: the head trains, the full run is the test run with
        // scoring restricted to the tail (chronological; no future leak).
        const std::size_t n = run.num_ticks();
        const std::size_t n_test = std::max<std::size_t>(
            1, static_cast<std::size_t>(test_fraction *
                                        static_cast<double>(n)));
        const std::size_t n_train = n - n_test;
        if (n_train > 0) split.train.push_back(slice_run(run, 0, n_train));
        split.test.push_back(run);
        split.test_score_start.push_back(n_train);
      }
    }
    out.push_back(std::move(split));
  }
  return out;
}

FlatData flatten_runs(const std::vector<measure::CollectedRun>& runs) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.num_ticks();
  if (total == 0) throw std::invalid_argument("flatten_runs: empty input");
  FlatData out;
  out.x = math::Matrix(total, runs[0].dataset.num_features());
  out.p_node.resize(total);
  out.p_cpu.resize(total);
  out.p_mem.resize(total);
  std::size_t w = 0;
  for (const auto& r : runs) {
    const auto& f = r.dataset.features();
    const auto& pn = r.dataset.target("P_NODE");
    const auto& pc = r.dataset.target("P_CPU");
    const auto& pm = r.dataset.target("P_MEM");
    for (std::size_t i = 0; i < f.rows(); ++i) {
      std::copy(f.row(i).begin(), f.row(i).end(), out.x.row(w).begin());
      out.p_node[w] = pn[i];
      out.p_cpu[w] = pc[i];
      out.p_mem[w] = pm[i];
      ++w;
    }
  }
  return out;
}

}  // namespace highrpm::core
