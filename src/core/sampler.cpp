#include "highrpm/core/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace highrpm::core {

ReinforcementSampler::ReinforcementSampler(SamplerConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.measured_weight <= 0.0 || !std::isfinite(cfg_.measured_weight)) {
    throw std::invalid_argument(
        "ReinforcementSampler: weight must be finite and > 0");
  }
  if (cfg_.reinforcement_size == 0) {
    throw std::invalid_argument(
        "ReinforcementSampler: reinforcement_size must be > 0");
  }
}

std::vector<std::size_t> ReinforcementSampler::draw(
    const std::vector<bool>& measured) {
  const std::size_t n = measured.size();
  if (n == 0) return {};
  const std::size_t k = std::min(cfg_.reinforcement_size, n);

  // Weighted sampling without replacement via exponential-race keys:
  // key_i = u_i^(1/w_i); the k largest keys win (Efraimidis-Spirakis).
  std::vector<std::pair<double, std::size_t>> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = measured[i] ? cfg_.measured_weight : 1.0;
    double u;
    do {
      u = rng_.uniform();
    } while (u <= 0.0);
    keys[i] = {std::pow(u, 1.0 / w), i};
  }
  std::nth_element(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   keys.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::size_t> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = keys[i].second;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace highrpm::core
