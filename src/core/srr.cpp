#include "highrpm/core/srr.hpp"

#include <algorithm>
#include <stdexcept>

#include "highrpm/core/static_trr.hpp"
#include "highrpm/math/rng.hpp"
#include "highrpm/obs/obs.hpp"

namespace highrpm::core {

namespace {
ml::MlpConfig to_mlp_config(const SrrConfig& cfg) {
  ml::MlpConfig mc;
  mc.hidden = cfg.hidden;
  mc.epochs = cfg.epochs;
  mc.learning_rate = cfg.learning_rate;
  mc.seed = cfg.seed;
  return mc;
}
}  // namespace

Srr::Srr(SrrConfig cfg) : cfg_(std::move(cfg)), net_(to_mlp_config(cfg_)) {}

math::Matrix Srr::assemble(const math::Matrix& pmcs,
                           std::span<const double> p_node) const {
  if (!cfg_.include_pnode) return pmcs;
  if (p_node.size() != pmcs.rows()) {
    throw std::invalid_argument("Srr: p_node length mismatch");
  }
  math::Matrix x(pmcs.rows(), pmcs.cols() + 1);
  for (std::size_t r = 0; r < pmcs.rows(); ++r) {
    auto dst = x.row(r);
    dst[0] = p_node[r];  // the bi-directional feature comes first
    const auto src = pmcs.row(r);
    std::copy(src.begin(), src.end(), dst.begin() + 1);
  }
  return x;
}

namespace {
math::Matrix pack_component_targets(std::span<const double> p_cpu,
                                    std::span<const double> p_mem) {
  math::Matrix y(p_cpu.size(), 2);
  for (std::size_t r = 0; r < p_cpu.size(); ++r) {
    y(r, 0) = p_cpu[r];
    y(r, 1) = p_mem[r];
  }
  return y;
}
}  // namespace

void Srr::fit(const math::Matrix& pmcs, std::span<const double> p_node,
              std::span<const double> p_cpu, std::span<const double> p_mem) {
  if (cfg_.outputs != 2) {
    throw std::logic_error("Srr::fit: [P_CPU, P_MEM] API requires outputs==2");
  }
  if (p_cpu.size() != pmcs.rows() || p_mem.size() != pmcs.rows()) {
    throw std::invalid_argument("Srr::fit: label length mismatch");
  }
  fit_multi(pmcs, p_node, pack_component_targets(p_cpu, p_mem));
}

void Srr::fine_tune(const math::Matrix& pmcs, std::span<const double> p_node,
                    std::span<const double> p_cpu,
                    std::span<const double> p_mem, std::size_t epochs) {
  if (cfg_.outputs != 2) {
    throw std::logic_error(
        "Srr::fine_tune: [P_CPU, P_MEM] API requires outputs==2");
  }
  if (p_cpu.size() != pmcs.rows() || p_mem.size() != pmcs.rows()) {
    throw std::invalid_argument("Srr::fine_tune: label length mismatch");
  }
  fine_tune_multi(pmcs, p_node, pack_component_targets(p_cpu, p_mem), epochs);
}

void Srr::fit_multi(const math::Matrix& pmcs, std::span<const double> p_node,
                    const math::Matrix& targets) {
  static obs::Histogram& fit_hist =
      obs::Registry::instance().histogram("core.srr.fit_ns");
  const obs::Span span(fit_hist);
  if (targets.rows() != pmcs.rows() || targets.cols() != cfg_.outputs) {
    throw std::invalid_argument("Srr::fit_multi: target shape mismatch");
  }
  const math::Matrix x = assemble(pmcs, p_node);
  net_.fit(x, targets, /*reset=*/true);
}

void Srr::fine_tune_multi(const math::Matrix& pmcs,
                          std::span<const double> p_node,
                          const math::Matrix& targets, std::size_t epochs) {
  if (!fitted()) throw std::logic_error("Srr::fine_tune: not fitted");
  if (targets.rows() != pmcs.rows() || targets.cols() != cfg_.outputs) {
    throw std::invalid_argument("Srr::fine_tune_multi: target shape mismatch");
  }
  const math::Matrix x = assemble(pmcs, p_node);
  net_.fit(x, targets, /*reset=*/false, epochs);
}

ComponentEstimate Srr::predict_one(std::span<const double> pmcs,
                                   double p_node) const {
  Scratch scratch;
  return predict_one(pmcs, p_node, scratch);
}

void Srr::apply_projection(double p_node, std::span<double> est) const {
  if (!cfg_.consistency_projection) return;
  if (!cfg_.include_pnode && !cfg_.project_without_pnode) return;
  // The K-way split must add up to the node budget: rescale jointly toward
  // p_node - P_Other, bounded so a bad node input cannot blow it up.
  const double budget = p_node - cfg_.p_other_w;
  double total = 0.0;
  for (const double v : est) total += v;
  if (budget > 1.0 && total > 1.0) {
    double scale = std::clamp(budget / total,
                              1.0 - cfg_.projection_limit,
                              1.0 + cfg_.projection_limit);
    scale = 1.0 + cfg_.projection_weight * (scale - 1.0);
    for (double& v : est) v *= scale;
  }
}

void Srr::predict_one_into(std::span<const double> pmcs, double p_node,
                           std::span<double> out, Scratch& scratch,
                           double* raw_total) const {
  // Counter only here: the scalar predict is sub-microsecond and sits
  // inside HighRpm::on_tick's span, so wrapping it in its own span would
  // spend a measurable fraction of the thing being measured on clock
  // reads. The batch predict() below carries the timing span.
  static obs::Counter& predictions =
      obs::Registry::instance().counter("core.srr.predictions");
  predictions.add();
  if (out.size() != cfg_.outputs) {
    throw std::invalid_argument("Srr::predict_one_into: output size mismatch");
  }
  auto& row = scratch.row;
  row.clear();
  row.reserve(pmcs.size() + 1);
  if (cfg_.include_pnode) row.push_back(p_node);
  row.insert(row.end(), pmcs.begin(), pmcs.end());
  net_.predict_one_into(row, scratch.out, scratch.net);
  // Watts are non-negative: clamp BEFORE the projection, so a slightly
  // negative near-idle output can neither leak into snapshots/CSVs nor pull
  // the output sum under the projection's total > 1 gate.
  double sum = 0.0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = std::max(0.0, scratch.out[k]);
    sum += out[k];
  }
  if (raw_total != nullptr) *raw_total = sum;
  apply_projection(p_node, out);
}

ComponentEstimate Srr::predict_one(std::span<const double> pmcs,
                                   double p_node, Scratch& scratch) const {
  if (cfg_.outputs != 2) {
    throw std::logic_error(
        "Srr::predict_one: ComponentEstimate API requires outputs==2");
  }
  double est[2];
  predict_one_into(pmcs, p_node, est, scratch);
  return ComponentEstimate{est[0], est[1]};
}

void Srr::predict_batch_multi_into(const math::Matrix& pmcs,
                                   std::span<const double> p_node,
                                   math::Matrix& out,
                                   BatchScratch& scratch) const {
  static obs::Counter& predictions =
      obs::Registry::instance().counter("core.srr.predictions");
  predictions.add(pmcs.rows());
  // p_node is required as a feature (include_pnode) and/or as the
  // projection budget (project_without_pnode keeps the projection active on
  // a PMC-only head) — the scalar path always receives it, so the batch
  // path must consume it identically or the two diverge bit-wise.
  const bool needs_pnode =
      cfg_.include_pnode ||
      (cfg_.consistency_projection && cfg_.project_without_pnode);
  if (needs_pnode && p_node.size() != pmcs.rows()) {
    throw std::invalid_argument("Srr: p_node length mismatch");
  }
  const std::size_t extra = cfg_.include_pnode ? 1 : 0;
  scratch.x.resize(pmcs.rows(), pmcs.cols() + extra);
  for (std::size_t r = 0; r < pmcs.rows(); ++r) {
    auto dst = scratch.x.row(r);
    if (cfg_.include_pnode) dst[0] = p_node[r];
    const auto src = pmcs.row(r);
    std::copy(src.begin(), src.end(), dst.begin() + extra);
  }
  net_.predict_batch_into(scratch.x, out, scratch.net);
  for (std::size_t r = 0; r < pmcs.rows(); ++r) {
    const auto est = out.row(r);
    for (double& v : est) v = std::max(0.0, v);
    apply_projection(needs_pnode ? p_node[r] : 0.0, est);
  }
}

void Srr::predict_batch_into(const math::Matrix& pmcs,
                             std::span<const double> p_node,
                             std::span<ComponentEstimate> out,
                             BatchScratch& scratch) const {
  if (cfg_.outputs != 2) {
    throw std::logic_error(
        "Srr::predict_batch_into: ComponentEstimate API requires outputs==2");
  }
  if (out.size() != pmcs.rows()) {
    throw std::invalid_argument("Srr::predict_batch: output length mismatch");
  }
  predict_batch_multi_into(pmcs, p_node, scratch.out, scratch);
  for (std::size_t r = 0; r < pmcs.rows(); ++r) {
    out[r] = ComponentEstimate{scratch.out(r, 0), scratch.out(r, 1)};
  }
}

std::vector<ComponentEstimate> Srr::predict(
    const math::Matrix& pmcs, std::span<const double> p_node) const {
  static obs::Histogram& predict_hist =
      obs::Registry::instance().histogram("core.srr.predict_ns");
  const obs::Span span(predict_hist);
  // Route through the batched path so there is exactly one predict
  // implementation to keep bit-identical with the scalar one.
  std::vector<ComponentEstimate> out(pmcs.rows());
  BatchScratch scratch;
  predict_batch_into(pmcs, p_node, out, scratch);
  return out;
}

SrrTrainingSet build_srr_training_set(
    std::span<const measure::CollectedRun> runs, const SrrConfig& srr_cfg,
    const StaticTrrConfig& trr_cfg) {
  if (runs.empty()) {
    throw std::invalid_argument("build_srr_training_set: no runs");
  }
  const std::size_t copies = srr_cfg.augment_copies;
  std::size_t total = 0;
  for (const auto& run : runs) total += run.num_ticks() * (1 + copies);

  SrrTrainingSet set;
  set.x = math::Matrix(total, runs[0].dataset.num_features());
  set.p_node.resize(total);
  set.p_cpu.resize(total);
  set.p_mem.resize(total);

  math::Rng rng(srr_cfg.seed ^ 0xA46B5ULL);
  std::size_t w = 0;
  for (const auto& run : runs) {
    const auto& f = run.dataset.features();
    const auto restored = restore_node_power(run, trr_cfg);
    const auto& cpu = run.dataset.target("P_CPU");
    const auto& mem = run.dataset.target("P_MEM");
    for (std::size_t copy = 0; copy <= copies; ++copy) {
      // Copy 0 is the run itself; further copies are virtual applications
      // with per-copy component rescales (constant within the copy, like a
      // real application's latent energy weights).
      const double a =
          copy == 0 ? 1.0
                    : rng.uniform(srr_cfg.augment_cpu_lo, srr_cfg.augment_cpu_hi);
      const double b =
          copy == 0 ? 1.0
                    : rng.uniform(srr_cfg.augment_mem_lo, srr_cfg.augment_mem_hi);
      for (std::size_t r = 0; r < f.rows(); ++r) {
        std::copy(f.row(r).begin(), f.row(r).end(), set.x.row(w).begin());
        set.p_cpu[w] = a * cpu[r];
        set.p_mem[w] = b * mem[r];
        set.p_node[w] =
            restored[r] + (a - 1.0) * cpu[r] + (b - 1.0) * mem[r];
        ++w;
      }
    }
  }
  return set;
}

AttributionTrainingSet build_attribution_training_set(
    std::span<const measure::CollectedRun> runs, const SrrConfig& srr_cfg,
    const StaticTrrConfig& trr_cfg) {
  if (runs.empty()) {
    throw std::invalid_argument("build_attribution_training_set: no runs");
  }
  const std::size_t k_tenants = runs[0].num_tenants;
  if (k_tenants == 0) {
    throw std::invalid_argument(
        "build_attribution_training_set: runs carry no tenant record "
        "(collect with Collector::collect_tenants)");
  }
  const std::size_t copies = srr_cfg.augment_copies;
  std::size_t total = 0;
  for (const auto& run : runs) {
    if (run.num_tenants != k_tenants) {
      throw std::invalid_argument(
          "build_attribution_training_set: tenant count differs across runs");
    }
    total += run.num_ticks() * (1 + copies);
  }

  AttributionTrainingSet set;
  set.x = math::Matrix(total, runs[0].tenant_pmcs.cols());
  set.p_node.resize(total);
  set.targets = math::Matrix(total, k_tenants);

  // Distinct stream from the component builder so pairing a component SRR
  // with an attribution head never correlates their virtual applications.
  math::Rng rng(srr_cfg.seed ^ 0x7E4A17ULL);
  std::vector<double> rescale(k_tenants);
  std::size_t w = 0;
  for (const auto& run : runs) {
    const auto& f = run.tenant_pmcs;
    const auto restored = restore_node_power(run, trr_cfg);
    for (std::size_t copy = 0; copy <= copies; ++copy) {
      // Copy 0 is the run itself; further copies are virtual co-location
      // mixes with independent per-tenant power rescales (constant within
      // the copy, like each tenant application's latent energy weights).
      for (std::size_t k = 0; k < k_tenants; ++k) {
        rescale[k] = copy == 0 ? 1.0
                               : rng.uniform(srr_cfg.augment_cpu_lo,
                                             srr_cfg.augment_cpu_hi);
      }
      for (std::size_t r = 0; r < f.rows(); ++r) {
        std::copy(f.row(r).begin(), f.row(r).end(), set.x.row(w).begin());
        double shift = 0.0;
        for (std::size_t k = 0; k < k_tenants; ++k) {
          const double p_k = run.tenant_power(r, k);
          set.targets(w, k) = rescale[k] * p_k;
          shift += (rescale[k] - 1.0) * p_k;
        }
        set.p_node[w] = restored[r] + shift;
        ++w;
      }
    }
  }
  return set;
}

}  // namespace highrpm::core
