#include "highrpm/core/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/math/stats.hpp"
#include "highrpm/obs/obs.hpp"
#include "highrpm/runtime/parallel_for.hpp"

namespace highrpm::core {

FleetStepper::FleetStepper(const HighRpm& golden, std::size_t nodes,
                           FleetConfig cfg)
    : cfg_(cfg),
      srr_(golden.srr()),
      tenant_srr_(golden.attribution_srr()),
      shared_model_(golden.dynamic_trr().model()) {
  if (!golden.trained()) {
    throw std::invalid_argument("FleetStepper: golden instance untrained");
  }
  if (golden.config().tenants > 0 && golden.attribution_trained()) {
    // Self-calibration mutates the attribution head online; the fleet
    // shares one const head across all shards, so a self-calibrating
    // golden cannot be batched — run it through the serial facade.
    if (golden.config().self_cal.enabled) {
      throw std::invalid_argument(
          "FleetStepper: self-calibrating attribution requires the serial "
          "facade (the fleet shares a const attribution head)");
    }
    tenants_ = golden.config().tenants;
  }
  if (nodes == 0) {
    throw std::invalid_argument("FleetStepper: fleet must have >= 1 node");
  }
  // Boundary contract (see FleetConfig::shard_lanes): zero is a config
  // error, not a request for one-lane shards; above-fleet values mean "one
  // full shard".
  if (cfg_.shard_lanes == 0) {
    throw std::invalid_argument(
        "FleetStepper: FleetConfig::shard_lanes must be >= 1");
  }
  if (cfg_.shard_lanes > nodes) cfg_.shard_lanes = nodes;
  // With online fine-tuning off, no lane ever mutates its RNN weights, so
  // every lane's model stays byte-identical to the golden copy and windows
  // can batch through shared_model_. With it on, weights diverge per lane
  // after the first accepted reading — each lane must predict with its own
  // model.
  shared_rnn_ = !golden.config().dynamic_trr.online_finetune;
  lanes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    Lane lane;
    lane.trr = golden.dynamic_trr();
    lane.trr.reset_stream();
    if (const auto* gc = golden.controller()) {
      // Fresh controller per lane (golden's config already has its window
      // pinned to the miss interval) and the matching standing routing.
      lane.ctl.emplace(gc->config());
      lane.trr.set_use_cheap(lane.ctl->decision().use_cheap);
    }
    lanes_.push_back(std::move(lane));
  }
  const std::size_t n_shards = (nodes + cfg_.shard_lanes - 1) / cfg_.shard_lanes;
  shards_.resize(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    Shard& ss = shards_[s];
    ss.begin = s * cfg_.shard_lanes;
    ss.end = std::min(nodes, ss.begin + cfg_.shard_lanes);
    ss.ids.resize(ss.end - ss.begin);
    for (std::size_t li = 0; li < ss.ids.size(); ++li) {
      ss.ids[li] = ss.begin + li;
    }
  }
}

void FleetStepper::reset_streams() {
  for (auto& lane : lanes_) {
    lane.trr.reset_stream();
    lane.last_good.clear();
    lane.have_last_good = false;
    lane.last_good_tenant.clear();
    lane.have_last_good_tenant = false;
    if (lane.ctl) {
      lane.ctl->reset();
      lane.trr.set_use_cheap(lane.ctl->decision().use_cheap);
    }
  }
}

void FleetStepper::step_tick(const math::Matrix& pmcs,
                             std::span<const std::optional<double>> readings,
                             std::span<PowerEstimate> out,
                             const ShardHooks& hooks,
                             const math::Matrix* tenant_pmcs) {
  static obs::Histogram& shard_hist =
      obs::Registry::instance().histogram("core.fleet.shard_tick_ns");
  if (pmcs.rows() != lanes_.size() || readings.size() != lanes_.size() ||
      out.size() != lanes_.size()) {
    throw std::invalid_argument("FleetStepper::step_tick: size mismatch");
  }
  if (tenant_pmcs && tenant_pmcs->rows() != lanes_.size()) {
    throw std::invalid_argument(
        "FleetStepper::step_tick: tenant matrix row count != fleet size");
  }
  // One parallel_for index per shard; each shard owns its lane range and
  // scratch, so scheduling only changes when a shard runs, never what it
  // computes. The hooks run on the executing thread so alloc-trace arming
  // meters exactly the shard work, not the pool dispatch. A shard's lanes
  // are consecutive rows of the fleet matrix, so the shard tick is a
  // step_cohort over positional subspans — no staging copies.
  runtime::parallel_for(shards_.size(), [&](std::size_t s) {
    Shard& ss = shards_[s];
    const std::size_t lanes = ss.end - ss.begin;
    if (hooks.before) hooks.before(s);
    {
      const obs::Span span(shard_hist);
      step_cohort(ss.ids, pmcs, ss.begin, readings.subspan(ss.begin, lanes),
                  out.subspan(ss.begin, lanes), ss.scratch, tenant_pmcs,
                  ss.begin);
    }
    if (hooks.after) hooks.after(s);
  });
}

void FleetStepper::step_cohort(std::span<const std::size_t> lane_ids,
                               const math::Matrix& pmcs, std::size_t pmc_row0,
                               std::span<const std::optional<double>> readings,
                               std::span<PowerEstimate> out, Cohort& scratch,
                               const math::Matrix* tenant_pmcs,
                               std::size_t tenant_row0) {
  static obs::Counter& lane_ticks =
      obs::Registry::instance().counter("core.fleet.lane_ticks");
  static obs::Counter& held_total =
      obs::Registry::instance().counter("core.fleet.held_rows");
  const std::size_t lanes = lane_ids.size();
  if (lanes == 0) return;
  if (pmcs.rows() < pmc_row0 + lanes || readings.size() != lanes ||
      out.size() != lanes) {
    throw std::invalid_argument("FleetStepper::step_cohort: size mismatch");
  }
  if (tenant_pmcs) {
    if (tenants_ == 0) {
      throw std::logic_error(
          "FleetStepper::step_cohort: tenant rows given but the golden "
          "instance carried no trained attribution head");
    }
    if (tenant_pmcs->cols() != tenants_ * sim::kNumPmcEvents ||
        tenant_pmcs->rows() < tenant_row0 + lanes) {
      throw std::invalid_argument(
          "FleetStepper::step_cohort: tenant matrix shape mismatch");
    }
  }
  lane_ticks.add(lanes);
  const std::size_t f = pmcs.cols();
  Cohort& ss = scratch;
  ss.rows.resize(lanes, f);
  ss.preps.resize(lanes);
  ss.raw.resize(lanes);
  ss.node_w.resize(lanes);
  ss.comp.resize(lanes);

  // Phase 1 per lane: held-row substitution (the HighRpm::on_tick
  // degradation mirror) + TRR window prepare.
  for (std::size_t li = 0; li < lanes; ++li) {
    Lane& lane = lanes_[lane_ids[li]];
    const auto dst = ss.rows.row(li);
    const auto src = pmcs.row(pmc_row0 + li);
    std::copy(src.begin(), src.end(), dst.begin());
    if (!math::all_finite(dst)) {
      held_total.add();
      if (lane.have_last_good && lane.last_good.size() == f) {
        std::copy(lane.last_good.begin(), lane.last_good.end(), dst.begin());
      } else {
        std::fill(dst.begin(), dst.end(), 0.0);
      }
    } else {
      lane.last_good.assign(dst.begin(), dst.end());
      lane.have_last_good = true;
    }
    std::optional<double> reading = readings[li];
    if (reading && !std::isfinite(*reading)) reading.reset();
    ss.preps[li] = lane.trr.step_prepare(dst, reading);
  }

  // Phase 2: predict. Shared-weights fleets with lockstep windows batch
  // the whole cohort through one GEMM per RNN layer; otherwise each lane
  // predicts with its own model (weights may have diverged, or fills may
  // differ after a mid-stream reset).
  const std::size_t window = ss.preps[0].rows;
  bool lockstep = true;
  for (std::size_t li = 1; li < lanes; ++li) {
    if (ss.preps[li].rows != window) {
      lockstep = false;
      break;
    }
  }
  // Adaptive fleets route sparse-mode lanes through the cheap DT path;
  // any such lane keeps the cohort off the batched GEMM this tick (the
  // remaining dense lanes still produce bit-identical estimates through
  // the per-lane path — the batch is a throughput choice, never a result
  // choice).
  bool any_cheap = false;
  for (std::size_t li = 0; li < lanes; ++li) {
    if (lanes_[lane_ids[li]].trr.use_cheap()) {
      any_cheap = true;
      break;
    }
  }
  if (shared_rnn_ && lockstep && window > 0 && !any_cheap) {
    ss.win_batch.resize(lanes * window, f + 1);
    for (std::size_t li = 0; li < lanes; ++li) {
      lanes_[lane_ids[li]].trr.pack_window_into(ss.win_batch, li * window);
    }
    shared_model_.predict_batch_into(ss.win_batch, lanes, ss.rnn_out,
                                     ss.rnn_ws);
    for (std::size_t li = 0; li < lanes; ++li) {
      ss.raw[li] = ss.rnn_out(li, window - 1);
    }
  } else {
    for (std::size_t li = 0; li < lanes; ++li) {
      DynamicTrr& trr = lanes_[lane_ids[li]].trr;
      ss.raw[li] = trr.use_cheap() ? trr.predict_prepared_cheap(ss.preps[li])
                                   : trr.predict_prepared();
    }
  }

  // Phase 3 per lane: commit (clamps, stuck-sensor logic, measurement
  // supersede + fine-tune) and the measured flag.
  for (std::size_t li = 0; li < lanes; ++li) {
    Lane& lane = lanes_[lane_ids[li]];
    const double node_w = lane.trr.step_commit(ss.preps[li], ss.raw[li]);
    ss.node_w[li] = node_w;
    out[li].node_w = node_w;
    const std::optional<double>& r = readings[li];
    out[li].measured = r.has_value() && std::isfinite(*r) &&
                       math::exact_eq(node_w, *r);
    // Adaptive sampling: same observation the serial facade makes — the
    // committed estimate plus the substituted row, measured ticks excluded
    // (a reading superseding the prediction would score the model-vs-meter
    // bias as volatility) — so decision streams are identical at every
    // fleet shape.
    if (lane.ctl && !out[li].measured) {
      if (const auto d = lane.ctl->observe(node_w, ss.rows.row(li))) {
        lane.trr.set_use_cheap(d->use_cheap);
      }
    }
  }

  // Phase 4: one SRR GEMM per MLP layer for the whole cohort.
  srr_.predict_batch_into(ss.rows, ss.node_w, ss.comp, ss.srr);
  for (std::size_t li = 0; li < lanes; ++li) {
    out[li].cpu_w = ss.comp[li].cpu_w;
    out[li].mem_w = ss.comp[li].mem_w;
    out[li].tenants = 0;
  }
  if (!tenant_pmcs) return;

  // Phase 5: K-way attribution — held-tenant-row substitution per lane
  // (mirroring the serial facade's 3-arg on_tick), then one attribution
  // GEMM per MLP layer for the whole cohort on the committed node powers.
  const std::size_t tf = tenant_pmcs->cols();
  ss.trows.resize(lanes, tf);
  for (std::size_t li = 0; li < lanes; ++li) {
    Lane& lane = lanes_[lane_ids[li]];
    const auto dst = ss.trows.row(li);
    const auto src = tenant_pmcs->row(tenant_row0 + li);
    std::copy(src.begin(), src.end(), dst.begin());
    if (!math::all_finite(dst)) {
      if (lane.have_last_good_tenant && lane.last_good_tenant.size() == tf) {
        std::copy(lane.last_good_tenant.begin(), lane.last_good_tenant.end(),
                  dst.begin());
      } else {
        std::fill(dst.begin(), dst.end(), 0.0);
      }
    } else {
      lane.last_good_tenant.assign(dst.begin(), dst.end());
      lane.have_last_good_tenant = true;
    }
  }
  tenant_srr_.predict_batch_multi_into(ss.trows, ss.node_w, ss.tenant_out,
                                       ss.tsrr);
  for (std::size_t li = 0; li < lanes; ++li) {
    out[li].tenants = tenants_;
    const auto row = ss.tenant_out.row(li);
    std::copy(row.begin(), row.end(), out[li].tenant_w.begin());
  }
}

}  // namespace highrpm::core
