#include "highrpm/core/highrpm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/math/stats.hpp"
#include "highrpm/obs/obs.hpp"

namespace highrpm::core {

HighRpm::HighRpm(HighRpmConfig cfg)
    : cfg_(std::move(cfg)),
      dynamic_trr_([&] {
        DynamicTrrConfig d = cfg_.dynamic_trr;
        d.miss_interval = cfg_.miss_interval;
        // Sparse mode routes predicts through the DT ResModel, so an
        // adaptive facade must always train it.
        if (cfg_.adaptive) d.train_cheap_model = true;
        return d;
      }()),
      srr_(cfg_.srr),
      tenant_srr_([&] {
        SrrConfig t = cfg_.tenant_srr;
        // The attribution head's width is the tenant count, whatever the
        // caller left in tenant_srr.outputs.
        if (cfg_.tenants > 0) t.outputs = cfg_.tenants;
        return t;
      }()),
      sampler_(cfg_.sampler) {
  if (cfg_.tenants > kMaxTenants) {
    throw std::invalid_argument("HighRpm: tenants exceeds kMaxTenants");
  }
  if (cfg_.tenants > 0 && cfg_.self_cal.enabled) {
    const auto& sc = cfg_.self_cal;
    if (sc.buffer_ticks == 0 || sc.min_buffered > sc.buffer_ticks ||
        !(sc.ewma_alpha > 0.0) || sc.ewma_alpha > 1.0) {
      throw std::invalid_argument("HighRpm: bad self_cal config");
    }
    selfcal_rows_ =
        math::Matrix(sc.buffer_ticks, cfg_.tenants * sim::kNumPmcEvents);
    selfcal_node_w_.resize(sc.buffer_ticks);
  }
  if (cfg_.adaptive) {
    adapt::ControllerConfig acfg = cfg_.adapt;
    // Decisions must land on ring-window boundaries.
    acfg.window = cfg_.miss_interval;
    controller_.emplace(acfg);
  }
}

void HighRpm::initial_learning(
    std::span<const measure::CollectedRun> runs) {
  const obs::Span span("core.highrpm.initial_learning_ns");
  if (runs.empty()) {
    throw std::invalid_argument("HighRpm::initial_learning: no runs");
  }
  // DynamicTRR: windows per run over dense node labels.
  std::vector<math::Matrix> pmcs;
  std::vector<std::vector<double>> node_labels;
  for (const auto& run : runs) {
    pmcs.push_back(run.dataset.features());
    node_labels.push_back(run.dataset.target("P_NODE"));
  }
  dynamic_trr_.train(pmcs, node_labels);

  // SRR: pooled (and latent-scale-augmented) samples across runs, with the
  // TRR restoration of each run as the bi-directional node-power input —
  // at monitoring time SRR only ever sees restored node power, so training
  // on it keeps the input distributions matched (paper Fig 3).
  StaticTrrConfig scfg = cfg_.static_trr;
  scfg.miss_interval = cfg_.miss_interval;
  const auto set = build_srr_training_set(runs, cfg_.srr, scfg);
  srr_.fit(set.x, set.p_node, set.p_cpu, set.p_mem);
  reset_stream();
}

std::vector<double> HighRpm::static_restore(
    const measure::CollectedRun& run) const {
  StaticTrrConfig sc = cfg_.static_trr;
  sc.miss_interval = cfg_.miss_interval;
  return restore_node_power(run, sc);
}

void HighRpm::active_learning(const measure::CollectedRun& run) {
  const obs::Span span("core.highrpm.active_learning_ns");
  if (!trained()) {
    throw std::logic_error("HighRpm::active_learning: run initial_learning first");
  }
  const auto restored = static_restore(run);
  const auto drawn = sampler_.draw(run.measured);
  const auto& features = run.dataset.features();
  // Reinforcement samples must be usable numbers: drop any tick whose
  // restoration or feature row came back non-finite (possible when the
  // run's sensors were faulty).
  std::vector<std::size_t> reinforcement;
  reinforcement.reserve(drawn.size());
  for (const std::size_t t : drawn) {
    if (std::isfinite(restored[t]) && math::all_finite(features.row(t))) {
      reinforcement.push_back(t);
    }
  }
  if (reinforcement.size() < cfg_.miss_interval) return;

  // --- fine-tune DynamicTRR on restored node power over the drawn span ---
  // Windows must be contiguous, so fine-tune on the contiguous stretch
  // covering the reinforcement draw.
  const std::size_t lo = reinforcement.front();
  const std::size_t hi = reinforcement.back();
  if (hi - lo + 1 >= cfg_.miss_interval) {
    const std::size_t n = hi - lo + 1;
    math::Matrix sub(n, features.cols());
    std::vector<double> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::copy(features.row(lo + i).begin(), features.row(lo + i).end(),
                sub.row(i).begin());
      labels[i] = restored[lo + i];
    }
    // The stretch may still cover degraded ticks between the drawn indices
    // (NaN features or non-finite restorations); skip the TRR fine-tune
    // rather than training on garbage.
    if (math::all_finite(sub.flat()) && math::all_finite(labels)) {
      auto windows = data::make_windows_with_prev_label(
          sub, labels, cfg_.miss_interval, labels[0]);
      // Keep the fine-tune cheap: cap the window count.
      if (windows.size() > 64) windows.resize(64);
      dynamic_trr_.fine_tune(windows, cfg_.active_finetune_epochs);
    }
  }

  // --- fine-tune SRR with consistency-calibrated pseudo-labels ---
  math::Matrix sx(reinforcement.size(), features.cols());
  std::vector<double> s_node(reinforcement.size());
  std::vector<double> s_cpu(reinforcement.size());
  std::vector<double> s_mem(reinforcement.size());
  for (std::size_t i = 0; i < reinforcement.size(); ++i) {
    const std::size_t t = reinforcement[i];
    std::copy(features.row(t).begin(), features.row(t).end(),
              sx.row(i).begin());
    s_node[i] = restored[t];
    const auto est = srr_.predict_one(features.row(t), s_node[i]);
    // Rescale the component split so it sums to node - P_Other: the node
    // reading is trusted (it is measurement-derived), the split ratio is
    // the model's.
    const double budget = std::max(1.0, s_node[i] - cfg_.p_other_w);
    const double total = std::max(1e-6, est.cpu_w + est.mem_w);
    s_cpu[i] = est.cpu_w * budget / total;
    s_mem[i] = est.mem_w * budget / total;
  }
  srr_.fine_tune(sx, s_node, s_cpu, s_mem, cfg_.active_finetune_epochs);
  ++al_rounds_;
}

LogRestoration HighRpm::restore_log(const measure::CollectedRun& run) const {
  const obs::Span span("core.highrpm.restore_log_ns");
  if (!srr_.fitted()) {
    throw std::logic_error("HighRpm::restore_log: run initial_learning first");
  }
  LogRestoration out;
  out.node_w = static_restore(run);
  const auto& features = run.dataset.features();
  out.cpu_w.resize(features.rows());
  out.mem_w.resize(features.rows());
  // Degraded rows get the last finite row (zeros before the first one), the
  // offline mirror of on_tick's hold — SRR would otherwise split NaN.
  std::vector<double> last_good;
  std::vector<double> held(features.cols(), 0.0);
  for (std::size_t r = 0; r < features.rows(); ++r) {
    std::span<const double> row = features.row(r);
    if (!math::all_finite(row)) {
      row = last_good.empty() ? std::span<const double>(held)
                              : std::span<const double>(last_good);
    } else {
      last_good.assign(row.begin(), row.end());
    }
    const auto est = srr_.predict_one(row, out.node_w[r]);
    out.cpu_w[r] = est.cpu_w;
    out.mem_w[r] = est.mem_w;
  }
  return out;
}

void HighRpm::fit_attribution(std::span<const measure::CollectedRun> runs) {
  const obs::Span span("core.highrpm.fit_attribution_ns");
  if (cfg_.tenants == 0) {
    throw std::logic_error("HighRpm::fit_attribution: cfg.tenants is 0");
  }
  if (runs.empty()) {
    throw std::invalid_argument("HighRpm::fit_attribution: no runs");
  }
  for (const auto& run : runs) {
    if (run.num_tenants != cfg_.tenants) {
      throw std::invalid_argument(
          "HighRpm::fit_attribution: run tenant count != cfg.tenants");
    }
  }
  StaticTrrConfig scfg = cfg_.static_trr;
  scfg.miss_interval = cfg_.miss_interval;
  const auto set =
      build_attribution_training_set(runs, tenant_srr_.config(), scfg);
  tenant_srr_.fit_multi(set.x, set.p_node, set.targets);
  // A fresh head means fresh drift state: old buffered ticks and the old
  // EWMA describe the pre-fit model.
  selfcal_count_ = 0;
  selfcal_head_ = 0;
  drift_ewma_pct_ = 0.0;
  drift_seeded_ = false;
  selfcal_cooldown_ = 0;
}

void HighRpm::reset_stream() {
  dynamic_trr_.reset_stream();
  last_good_row_.clear();
  last_good_tenant_row_.clear();
  // Self-calibration observations belong to the stream, not the model: a new
  // stream (or a cloned per-node instance) starts with an empty buffer and
  // an unseeded drift EWMA. The fine-tuned weights themselves persist.
  selfcal_count_ = 0;
  selfcal_head_ = 0;
  drift_ewma_pct_ = 0.0;
  drift_seeded_ = false;
  selfcal_cooldown_ = 0;
  if (controller_) {
    controller_->reset();
    // Re-apply the standing decision (a fresh controller starts Sparse).
    // Before initial_learning the cheap model does not exist yet; routing
    // is then applied by the first post-training reset.
    if (dynamic_trr_.cheap_fitted()) {
      dynamic_trr_.set_use_cheap(controller_->decision().use_cheap);
    }
  }
}

PowerEstimate HighRpm::on_tick(std::span<const double> pmcs,
                               std::optional<double> im_reading) {
  static obs::Histogram& tick_hist =
      obs::Registry::instance().histogram("core.highrpm.on_tick_ns");
  static obs::Counter& ticks_total =
      obs::Registry::instance().counter("core.highrpm.ticks");
  static obs::Counter& held_total =
      obs::Registry::instance().counter("core.highrpm.held_rows");
  const obs::Span span(tick_hist);
  ticks_total.add();
  if (!trained()) {
    throw std::logic_error("HighRpm::on_tick: run initial_learning first");
  }
  // Degrade gracefully on corrupt inputs: hold the last good PMC row so TRR
  // and SRR split the same substituted input (DynamicTrr would substitute
  // internally anyway, but SRR has no window state of its own), and treat a
  // non-finite IM reading as a missed one.
  std::span<const double> row = pmcs;
  std::vector<double> held;
  if (!math::all_finite(pmcs)) {
    held_rows_.add();
    held_total.add();
    if (last_good_row_.size() == pmcs.size()) {
      held = last_good_row_;
    } else {
      held.assign(pmcs.size(), 0.0);
    }
    row = held;
  } else {
    last_good_row_.assign(pmcs.begin(), pmcs.end());
  }
  if (im_reading && !std::isfinite(*im_reading)) im_reading.reset();

  PowerEstimate est;
  est.node_w = dynamic_trr_.step(row, im_reading);
  // DynamicTrr may reject an implausible reading; only report measured when
  // the reading actually superseded the prediction.
  est.measured =
      im_reading.has_value() && math::exact_eq(est.node_w, *im_reading);
  const auto comp = srr_.predict_one(row, est.node_w, srr_scratch_);
  est.cpu_w = comp.cpu_w;
  est.mem_w = comp.mem_w;
  // Adaptive sampling: feed the controller the committed estimate and the
  // substituted row (exactly what the fleet stepper feeds per lane, keeping
  // serial-vs-batched decision streams identical). Measured ticks are NOT
  // observed: they return the IM reading verbatim, so the model-vs-meter
  // bias would register as a volatility jump on every reading tick and the
  // score could never separate calm from volatile regimes. A returned
  // decision is a mode change taking effect from the next tick.
  if (controller_ && !est.measured) {
    if (const auto d = controller_->observe(est.node_w, row)) {
      dynamic_trr_.set_use_cheap(d->use_cheap);
    }
  }
  return est;
}

PowerEstimate HighRpm::on_tick(std::span<const double> pmcs,
                               std::span<const double> tenant_pmcs,
                               std::optional<double> im_reading) {
  if (cfg_.tenants == 0) {
    throw std::logic_error("HighRpm::on_tick(tenants): cfg.tenants is 0");
  }
  if (!tenant_srr_.fitted()) {
    throw std::logic_error("HighRpm::on_tick(tenants): fit_attribution first");
  }
  if (tenant_pmcs.size() != cfg_.tenants * sim::kNumPmcEvents) {
    throw std::invalid_argument(
        "HighRpm::on_tick(tenants): tenant row size != tenants * events");
  }
  // Hold a corrupt tenant row exactly like the node row: the attribution
  // head sees the last good per-cgroup readings (zeros before any).
  std::span<const double> trow = tenant_pmcs;
  std::vector<double> theld;
  if (!math::all_finite(tenant_pmcs)) {
    if (last_good_tenant_row_.size() == tenant_pmcs.size()) {
      theld = last_good_tenant_row_;
    } else {
      theld.assign(tenant_pmcs.size(), 0.0);
    }
    trow = theld;
  } else {
    last_good_tenant_row_.assign(tenant_pmcs.begin(), tenant_pmcs.end());
  }

  // The node pipeline is byte-identical to the 2-arg overload — attribution
  // rides on top of it, it never perturbs node/component estimates or
  // adaptive decisions.
  PowerEstimate est = on_tick(pmcs, im_reading);
  est.tenants = cfg_.tenants;
  double raw_total = 0.0;
  tenant_srr_.predict_one_into(
      trow, est.node_w, std::span<double>(est.tenant_w.data(), cfg_.tenants),
      tenant_scratch_, &raw_total);

  if (cfg_.self_cal.enabled) {
    if (selfcal_cooldown_ > 0) --selfcal_cooldown_;
    if (est.measured) {
      // Buffer the measured tick (ring, oldest overwritten).
      const auto slot = selfcal_rows_.row(selfcal_head_);
      std::copy(trow.begin(), trow.end(), slot.begin());
      selfcal_node_w_[selfcal_head_] = est.node_w;
      selfcal_head_ = (selfcal_head_ + 1) % selfcal_rows_.rows();
      selfcal_count_ = std::min(selfcal_count_ + 1, selfcal_rows_.rows());
      // Drift: the head's clamped pre-projection sum vs the trusted IM
      // budget. The projection would hide exactly this error, which is why
      // the signal is taken before it.
      const double budget = std::max(1.0, est.node_w - cfg_.p_other_w);
      const double drift_pct = 100.0 * std::abs(raw_total - budget) / budget;
      drift_ewma_pct_ = drift_seeded_ ? (1.0 - cfg_.self_cal.ewma_alpha) *
                                                drift_ewma_pct_ +
                                            cfg_.self_cal.ewma_alpha * drift_pct
                                      : drift_pct;
      drift_seeded_ = true;
      if (drift_ewma_pct_ > cfg_.self_cal.drift_threshold_pct &&
          selfcal_count_ >= cfg_.self_cal.min_buffered &&
          selfcal_cooldown_ == 0) {
        recalibrate_attribution();
        selfcal_triggers_.add();
        static obs::Counter& triggers_total =
            obs::Registry::instance().counter("core.highrpm.selfcal_triggers");
        triggers_total.add();
        selfcal_cooldown_ = cfg_.self_cal.cooldown_ticks;
        // Re-seed the EWMA: the old level measured the pre-fix model.
        drift_ewma_pct_ = 0.0;
        drift_seeded_ = false;
      }
    }
  }
  return est;
}

void HighRpm::recalibrate_attribution() {
  const obs::Span span("core.highrpm.selfcal_finetune_ns");
  const std::size_t n = selfcal_count_;
  const std::size_t cap = selfcal_rows_.rows();
  const std::size_t start = (selfcal_head_ + cap - n) % cap;
  math::Matrix x(n, selfcal_rows_.cols());
  std::vector<double> p_node(n);
  math::Matrix targets(n, cfg_.tenants);
  std::vector<double> split(cfg_.tenants);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = (start + i) % cap;
    const auto src = selfcal_rows_.row(s);
    std::copy(src.begin(), src.end(), x.row(i).begin());
    p_node[i] = selfcal_node_w_[s];
    // Pseudo-labels: the head's own split rescaled so it sums to the
    // measured budget — the same consistency calibration active_learning
    // applies to the component head. The reading is trusted; the ratio is
    // the model's.
    tenant_srr_.predict_one_into(src, p_node[i], split, tenant_scratch_);
    const double budget = std::max(1.0, p_node[i] - cfg_.p_other_w);
    double total = 0.0;
    for (const double v : split) total += v;
    total = std::max(1e-6, total);
    for (std::size_t k = 0; k < cfg_.tenants; ++k) {
      targets(i, k) = split[k] * budget / total;
    }
  }
  tenant_srr_.fine_tune_multi(x, p_node, targets, cfg_.self_cal.epochs);
}

MonitorService::MonitorService(HighRpm golden) : golden_(std::move(golden)) {
  if (!golden_.trained()) {
    throw std::invalid_argument("MonitorService: golden instance untrained");
  }
}

void MonitorService::register_node(const std::string& node_id) {
  if (has_node(node_id)) {
    throw std::invalid_argument("MonitorService: duplicate node '" + node_id +
                                "'");
  }
  HighRpm instance = golden_;
  instance.reset_stream();
  nodes_.emplace_back(node_id, std::move(instance));
}

bool MonitorService::has_node(const std::string& node_id) const {
  for (const auto& [id, _] : nodes_) {
    if (id == node_id) return true;
  }
  return false;
}

HighRpm& MonitorService::node_mut(const std::string& node_id) {
  for (auto& [id, inst] : nodes_) {
    if (id == node_id) return inst;
  }
  throw std::out_of_range("MonitorService: unknown node '" + node_id + "'");
}

const HighRpm& MonitorService::node(const std::string& node_id) const {
  for (const auto& [id, inst] : nodes_) {
    if (id == node_id) return inst;
  }
  throw std::out_of_range("MonitorService: unknown node '" + node_id + "'");
}

PowerEstimate MonitorService::on_tick(const std::string& node_id,
                                      std::span<const double> pmcs,
                                      std::optional<double> im_reading) {
  return node_mut(node_id).on_tick(pmcs, im_reading);
}

void MonitorService::active_learning(const std::string& node_id,
                                     const measure::CollectedRun& run) {
  node_mut(node_id).active_learning(run);
}

}  // namespace highrpm::core
