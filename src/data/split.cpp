#include "highrpm/data/split.hpp"

#include <algorithm>
#include <stdexcept>

namespace highrpm::data {

SplitIndices train_test_split(std::size_t n, double test_fraction,
                              math::Rng& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction out of (0,1)");
  }
  // Both sides must end up non-empty: n_test is clamped to >= 1 below, so
  // n = 0 would read past the permutation's end and n = 1 would leave an
  // empty training set.
  if (n < 2) {
    throw std::invalid_argument("train_test_split: need n >= 2 samples");
  }
  auto perm = rng.permutation(n);
  const std::size_t n_test = std::min<std::size_t>(
      n - 1,
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(n) * test_fraction)));
  SplitIndices out;
  out.test.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(n_test));
  out.train.assign(perm.begin() + static_cast<std::ptrdiff_t>(n_test), perm.end());
  return out;
}

SplitIndices chronological_split(std::size_t n, double test_fraction) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("chronological_split: fraction out of (0,1)");
  }
  // n = 0 would make n - n_test wrap (size_t underflow) and loop almost
  // forever; n = 1 would leave an empty training set.
  if (n < 2) {
    throw std::invalid_argument("chronological_split: need n >= 2 samples");
  }
  const std::size_t n_test = std::min<std::size_t>(
      n - 1,
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(n) * test_fraction)));
  SplitIndices out;
  for (std::size_t i = 0; i < n - n_test; ++i) out.train.push_back(i);
  for (std::size_t i = n - n_test; i < n; ++i) out.test.push_back(i);
  return out;
}

KFold::KFold(std::size_t n_splits, bool shuffle)
    : n_splits_(n_splits), shuffle_(shuffle) {
  if (n_splits < 2) throw std::invalid_argument("KFold: need >= 2 splits");
}

std::vector<SplitIndices> KFold::split(std::size_t n, math::Rng& rng) const {
  if (n < n_splits_) throw std::invalid_argument("KFold: n < n_splits");
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (shuffle_) order = rng.permutation(n);

  std::vector<SplitIndices> folds(n_splits_);
  const std::size_t base = n / n_splits_;
  const std::size_t extra = n % n_splits_;
  std::size_t cursor = 0;
  for (std::size_t f = 0; f < n_splits_; ++f) {
    const std::size_t len = base + (f < extra ? 1 : 0);
    for (std::size_t i = 0; i < n; ++i) {
      const bool in_test = i >= cursor && i < cursor + len;
      (in_test ? folds[f].test : folds[f].train).push_back(order[i]);
    }
    cursor += len;
  }
  return folds;
}

}  // namespace highrpm::data
