#include "highrpm/data/window.hpp"

#include <stdexcept>

namespace highrpm::data {

std::vector<SequenceSample> make_windows(const math::Matrix& features,
                                         std::span<const double> labels,
                                         std::size_t window) {
  const std::size_t n = features.rows();
  if (labels.size() != n) {
    throw std::invalid_argument("make_windows: label length mismatch");
  }
  if (window == 0 || n < window) {
    throw std::invalid_argument("make_windows: series shorter than window");
  }
  std::vector<SequenceSample> out;
  out.reserve(n - window + 1);
  for (std::size_t start = 0; start + window <= n; ++start) {
    SequenceSample s;
    s.steps = math::Matrix(window, features.cols());
    s.labels.resize(window);
    for (std::size_t k = 0; k < window; ++k) {
      const auto src = features.row(start + k);
      std::copy(src.begin(), src.end(), s.steps.row(k).begin());
      s.labels[k] = labels[start + k];
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<SequenceSample> make_windows_with_prev_label(
    const math::Matrix& features, std::span<const double> labels,
    std::size_t window, double initial_prev) {
  const std::size_t n = features.rows();
  if (labels.size() != n) {
    throw std::invalid_argument(
        "make_windows_with_prev_label: label length mismatch");
  }
  // Augment each row with the previous step's label, then window normally.
  math::Matrix aug(n, features.cols() + 1);
  for (std::size_t r = 0; r < n; ++r) {
    const auto src = features.row(r);
    auto dst = aug.row(r);
    std::copy(src.begin(), src.end(), dst.begin());
    dst[features.cols()] = r == 0 ? initial_prev : labels[r - 1];
  }
  return make_windows(aug, labels, window);
}

}  // namespace highrpm::data
