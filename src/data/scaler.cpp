#include "highrpm/data/scaler.hpp"

#include <cmath>
#include <stdexcept>

#include "highrpm/math/stats.hpp"

namespace highrpm::data {

namespace {
void require_fitted(bool fitted, const char* what) {
  if (!fitted) throw std::logic_error(std::string(what) + ": not fitted");
}

// A 0-row (or 0-column) fit would silently bake NaN/garbage statistics into
// the scaler and poison everything transformed later.
void require_nonempty(const math::Matrix& x, const char* what) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument(std::string(what) +
                                ": cannot fit on an empty matrix");
  }
}
}  // namespace

void StandardScaler::fit(const math::Matrix& x) {
  require_nonempty(x, "StandardScaler::fit");
  const std::size_t n = x.cols();
  mean_.assign(n, 0.0);
  std_.assign(n, 1.0);
  for (std::size_t c = 0; c < n; ++c) {
    const auto col = x.col(c);
    mean_[c] = math::mean(col);
    const double s = math::stddev(col);
    std_[c] = s > 1e-12 ? s : 1.0;
  }
}

math::Matrix StandardScaler::transform(const math::Matrix& x) const {
  require_fitted(fitted(), "StandardScaler");
  if (x.cols() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: column count mismatch");
  }
  math::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - mean_[c]) / std_[c];
    }
  }
  return out;
}

std::vector<double> StandardScaler::transform_row(
    std::span<const double> row) const {
  require_fitted(fitted(), "StandardScaler");
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: row width mismatch");
  }
  std::vector<double> out(row.size());
  transform_row_into(row, out);
  return out;
}

void StandardScaler::transform_row_into(std::span<const double> row,
                                        std::span<double> out) const {
  require_fitted(fitted(), "StandardScaler");
  if (row.size() != mean_.size() || out.size() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: row width mismatch");
  }
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) / std_[c];
  }
}

math::Matrix StandardScaler::fit_transform(const math::Matrix& x) {
  fit(x);
  return transform(x);
}

math::Matrix StandardScaler::inverse(const math::Matrix& x) const {
  require_fitted(fitted(), "StandardScaler");
  if (x.cols() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: column count mismatch");
  }
  math::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = x(r, c) * std_[c] + mean_[c];
    }
  }
  return out;
}

std::vector<double> StandardScaler::inverse_row(
    std::span<const double> row) const {
  require_fitted(fitted(), "StandardScaler");
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: row width mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = row[c] * std_[c] + mean_[c];
  }
  return out;
}

void MinMaxScaler::fit(const math::Matrix& x) {
  require_nonempty(x, "MinMaxScaler::fit");
  const std::size_t n = x.cols();
  min_.assign(n, 0.0);
  range_.assign(n, 1.0);
  for (std::size_t c = 0; c < n; ++c) {
    const auto col = x.col(c);
    const double lo = math::min_value(col);
    const double hi = math::max_value(col);
    min_[c] = lo;
    range_[c] = (hi - lo) > 1e-12 ? hi - lo : 1.0;
  }
}

math::Matrix MinMaxScaler::transform(const math::Matrix& x) const {
  require_fitted(fitted(), "MinMaxScaler");
  if (x.cols() != min_.size()) {
    throw std::invalid_argument("MinMaxScaler: column count mismatch");
  }
  math::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - min_[c]) / range_[c];
    }
  }
  return out;
}

std::vector<double> MinMaxScaler::transform_row(
    std::span<const double> row) const {
  require_fitted(fitted(), "MinMaxScaler");
  if (row.size() != min_.size()) {
    throw std::invalid_argument("MinMaxScaler: row width mismatch");
  }
  std::vector<double> out(row.size());
  transform_row_into(row, out);
  return out;
}

void MinMaxScaler::transform_row_into(std::span<const double> row,
                                      std::span<double> out) const {
  require_fitted(fitted(), "MinMaxScaler");
  if (row.size() != min_.size() || out.size() != min_.size()) {
    throw std::invalid_argument("MinMaxScaler: row width mismatch");
  }
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - min_[c]) / range_[c];
  }
}

math::Matrix MinMaxScaler::fit_transform(const math::Matrix& x) {
  fit(x);
  return transform(x);
}

math::Matrix MinMaxScaler::inverse(const math::Matrix& x) const {
  require_fitted(fitted(), "MinMaxScaler");
  if (x.cols() != min_.size()) {
    throw std::invalid_argument("MinMaxScaler: column count mismatch");
  }
  math::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = x(r, c) * range_[c] + min_[c];
    }
  }
  return out;
}

std::vector<double> MinMaxScaler::inverse_row(
    std::span<const double> row) const {
  require_fitted(fitted(), "MinMaxScaler");
  if (row.size() != min_.size()) {
    throw std::invalid_argument("MinMaxScaler: row width mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = row[c] * range_[c] + min_[c];
  }
  return out;
}

void TargetScaler::fit(std::span<const double> y) {
  if (y.empty()) {
    throw std::invalid_argument("TargetScaler::fit: cannot fit on an empty span");
  }
  mean_ = math::mean(y);
  const double s = math::stddev(y);
  std_ = s > 1e-12 ? s : 1.0;
  fitted_ = true;
}

std::vector<double> TargetScaler::transform(std::span<const double> y) const {
  require_fitted(fitted_, "TargetScaler");
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = (y[i] - mean_) / std_;
  return out;
}

double TargetScaler::transform_one(double y) const {
  require_fitted(fitted_, "TargetScaler");
  return (y - mean_) / std_;
}

std::vector<double> TargetScaler::inverse(std::span<const double> y) const {
  require_fitted(fitted_, "TargetScaler");
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i] * std_ + mean_;
  return out;
}

double TargetScaler::inverse_one(double y) const {
  require_fitted(fitted_, "TargetScaler");
  return y * std_ + mean_;
}

}  // namespace highrpm::data
