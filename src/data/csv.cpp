#include "highrpm/data/csv.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace highrpm::data {

namespace {

/// Strict numeric-cell parse: the whole cell must be one finite double.
/// stod-style prefix parsing ("12abc" -> 12) and textual "inf"/"nan" cells
/// (which from_chars itself accepts) are both rejected — a corrupted log
/// should fail loudly at load time, not feed NaN into the models.
double parse_cell(const std::string& cell, const std::string& path) {
  double value = 0.0;
  const char* first = cell.data();
  const char* last = cell.data() + cell.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || !std::isfinite(value)) {
    throw std::runtime_error("read_csv: invalid numeric cell '" + cell +
                             "' in " + path);
  }
  return value;
}

}  // namespace

std::vector<double> CsvTable::column(const std::string& name) const {
  std::size_t idx = header.size();
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) {
      idx = i;
      break;
    }
  }
  if (idx == header.size()) {
    throw std::out_of_range("CsvTable: unknown column '" + name + "'");
  }
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(r.at(idx));
  return out;
}

void write_csv(const std::string& path, const CsvTable& table) {
  // Explicitly-user-invoked write API: the caller hands us the path, so
  // this is not a hidden library side effect.
  std::ofstream f(path);  // HIGHRPM_LINT_ALLOW(library-file-io)
  if (!f) throw std::runtime_error("write_csv: cannot open " + path);
  // Round-trip-exact doubles: 17 significant digits.
  f << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i) f << ',';
    f << table.header[i];
  }
  f << '\n';
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      throw std::invalid_argument("write_csv: ragged row");
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) f << ',';
      f << row[i];
    }
    f << '\n';
  }
  if (!f) throw std::runtime_error("write_csv: write failed for " + path);
}

CsvTable read_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_csv: cannot open " + path);
  CsvTable table;
  std::string line;
  if (!std::getline(f, line)) {
    throw std::runtime_error("read_csv: empty file " + path);
  }
  // Tolerate CRLF logs: getline leaves the '\r' on the line.
  const auto strip_cr = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };
  strip_cr(line);
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) table.header.push_back(cell);
  }
  while (std::getline(f, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    std::vector<double> row;
    while (std::getline(ss, cell, ',')) {
      row.push_back(parse_cell(cell, path));
    }
    if (row.size() != table.header.size()) {
      throw std::runtime_error("read_csv: ragged row in " + path);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace highrpm::data
