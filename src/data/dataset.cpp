#include "highrpm/data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace highrpm::data {

Dataset::Dataset(math::Matrix features, std::vector<std::string> feature_names)
    : features_(std::move(features)), feature_names_(std::move(feature_names)) {
  if (feature_names_.size() != features_.cols()) {
    throw std::invalid_argument("Dataset: feature name count != columns");
  }
}

std::size_t Dataset::feature_index(const std::string& name) const {
  const auto it = std::find(feature_names_.begin(), feature_names_.end(), name);
  if (it == feature_names_.end()) {
    throw std::out_of_range("Dataset: unknown feature '" + name + "'");
  }
  return static_cast<std::size_t>(it - feature_names_.begin());
}

bool Dataset::has_feature(const std::string& name) const noexcept {
  return std::find(feature_names_.begin(), feature_names_.end(), name) !=
         feature_names_.end();
}

void Dataset::set_target(const std::string& name, std::vector<double> values) {
  if (values.size() != num_samples()) {
    throw std::invalid_argument("Dataset::set_target: length mismatch");
  }
  for (std::size_t i = 0; i < target_names_.size(); ++i) {
    if (target_names_[i] == name) {
      targets_[i] = std::move(values);
      return;
    }
  }
  target_names_.push_back(name);
  targets_.push_back(std::move(values));
}

const std::vector<double>& Dataset::target(const std::string& name) const {
  for (std::size_t i = 0; i < target_names_.size(); ++i) {
    if (target_names_[i] == name) return targets_[i];
  }
  throw std::out_of_range("Dataset: unknown target '" + name + "'");
}

bool Dataset::has_target(const std::string& name) const noexcept {
  return std::find(target_names_.begin(), target_names_.end(), name) !=
         target_names_.end();
}

std::vector<std::string> Dataset::target_names() const { return target_names_; }

void Dataset::append_row(std::span<const double> row,
                         std::span<const double> target_values) {
  if (row.size() != num_features()) {
    throw std::invalid_argument("Dataset::append_row: feature width mismatch");
  }
  if (target_values.size() != targets_.size()) {
    throw std::invalid_argument("Dataset::append_row: target count mismatch");
  }
  math::Matrix next(num_samples() + 1, num_features());
  std::copy(features_.flat().begin(), features_.flat().end(),
            next.flat().begin());
  std::copy(row.begin(), row.end(), next.row(num_samples()).begin());
  features_ = std::move(next);
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    targets_[t].push_back(target_values[t]);
  }
}

Dataset Dataset::select_rows(std::span<const std::size_t> indices) const {
  math::Matrix f(indices.size(), num_features());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= num_samples()) {
      throw std::out_of_range("Dataset::select_rows: index out of range");
    }
    const auto src = features_.row(indices[i]);
    std::copy(src.begin(), src.end(), f.row(i).begin());
  }
  Dataset out(std::move(f), feature_names_);
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    std::vector<double> tv(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      tv[i] = targets_[t][indices[i]];
    }
    out.set_target(target_names_[t], std::move(tv));
  }
  return out;
}

Dataset Dataset::slice(std::size_t start, std::size_t n) const {
  if (start + n > num_samples()) {
    throw std::out_of_range("Dataset::slice: range out of bounds");
  }
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = start + i;
  return select_rows(idx);
}

void Dataset::concat(const Dataset& other) {
  if (other.feature_names_ != feature_names_ ||
      other.target_names_ != target_names_) {
    throw std::invalid_argument("Dataset::concat: schema mismatch");
  }
  math::Matrix next(num_samples() + other.num_samples(), num_features());
  std::copy(features_.flat().begin(), features_.flat().end(),
            next.flat().begin());
  std::copy(other.features_.flat().begin(), other.features_.flat().end(),
            next.flat().begin() + static_cast<std::ptrdiff_t>(features_.size()));
  features_ = std::move(next);
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    targets_[t].insert(targets_[t].end(), other.targets_[t].begin(),
                       other.targets_[t].end());
  }
}

void Dataset::add_feature(const std::string& name,
                          std::span<const double> values) {
  if (values.size() != num_samples()) {
    throw std::invalid_argument("Dataset::add_feature: length mismatch");
  }
  if (has_feature(name)) {
    throw std::invalid_argument("Dataset::add_feature: duplicate '" + name +
                                "'");
  }
  math::Matrix next(num_samples(), num_features() + 1);
  for (std::size_t r = 0; r < num_samples(); ++r) {
    const auto src = features_.row(r);
    auto dst = next.row(r);
    std::copy(src.begin(), src.end(), dst.begin());
    dst[num_features()] = values[r];
  }
  features_ = std::move(next);
  feature_names_.push_back(name);
}

Dataset Dataset::without_feature(const std::string& name) const {
  const std::size_t drop = feature_index(name);
  math::Matrix next(num_samples(), num_features() - 1);
  for (std::size_t r = 0; r < num_samples(); ++r) {
    const auto src = features_.row(r);
    auto dst = next.row(r);
    std::size_t w = 0;
    for (std::size_t c = 0; c < num_features(); ++c) {
      if (c != drop) dst[w++] = src[c];
    }
  }
  std::vector<std::string> names;
  names.reserve(feature_names_.size() - 1);
  for (std::size_t c = 0; c < feature_names_.size(); ++c) {
    if (c != drop) names.push_back(feature_names_[c]);
  }
  Dataset out(std::move(next), std::move(names));
  for (std::size_t t = 0; t < targets_.size(); ++t) {
    out.set_target(target_names_[t], targets_[t]);
  }
  return out;
}

}  // namespace highrpm::data
