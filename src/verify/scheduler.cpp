// verify::Scheduler implementation. See sched.hpp for the model and the
// documented simplifications.
//
// Concurrency structure: model threads are real OS threads, but the
// scheduler permits exactly one to run at a time — active_ is a single
// token handed off under mu_ at every instrumented operation. All model
// semantics (history, clocks, decisions, event log) execute with mu_ held,
// so the checker itself is trivially data-race-free; the explored races are
// in the *model*, found by vector clocks, never by real unsynchronized
// memory access.

#include "highrpm/verify/sched.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace highrpm::verify {

namespace {

thread_local Scheduler* tls_sched = nullptr;
thread_local int tls_tid = -1;

bool is_acquire(std::memory_order mo) noexcept {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}

bool is_release(std::memory_order mo) noexcept {
  return mo == std::memory_order_release ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}

const char* order_name(std::uint8_t mo) noexcept {
  switch (static_cast<std::memory_order>(mo)) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "csm";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "sc";
  }
  return "?";
}

const char* kind_name(int kind) noexcept {
  switch (kind) {
    case 0: return "load";
    case 1: return "store";
    case 2: return "rmw";
    case 3: return "cas-fail";
    case 4: return "fence";
    case 5: return "raw-read";
    case 6: return "raw-write";
    case 7: return "yield";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// Env

void Env::thread(std::function<void()> body) {
  if (sched_.bodies_.size() >= kMaxThreads) {
    throw std::logic_error("verify: more than kMaxThreads model threads");
  }
  // Locked: parked pool threads read bodies_.size() in wait predicates.
  std::unique_lock<std::mutex> lk(sched_.mu_);
  sched_.bodies_.push_back(std::move(body));
}

void Env::finally(std::function<void()> f) {
  sched_.finals_.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// Public entry points

Scheduler* Scheduler::current() noexcept { return tls_sched; }

Scheduler::Scheduler(const Options& opts) : opts_(opts) {}

Scheduler::~Scheduler() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    pool_stop_ = true;
  }
  cv_.notify_all();
  for (auto& th : pool_) th.join();
}

Result explore(const Options& opts, const std::function<void(Env&)>& setup) {
  Scheduler sched(opts);
  return sched.run(setup);
}

void check(bool cond, const char* msg) {
  if (cond) return;
  if (Scheduler* s = Scheduler::current()) s->check_failed(msg);
  throw std::logic_error(std::string("verify::check outside explore(): ") +
                         msg);
}

std::string Result::report() const {
  std::ostringstream os;
  if (!failed) {
    os << "verify: PASS after " << executions << " execution(s)"
       << (complete ? " (exhaustive, complete)" : "");
    return os.str();
  }
  os << "verify: FAIL after " << executions << " execution(s): " << reason
     << "\n";
  if (failing_seed != 0) {
    os << "  replay: Options::replay_seed = " << failing_seed << "\n";
  } else {
    os << "  replay: rerun explore() — the DFS is deterministic (path:";
    for (std::uint32_t c : failing_path) os << ' ' << c;
    os << ")\n";
  }
  os << trace;
  return os.str();
}

// ---------------------------------------------------------------------------
// Exploration driver

Result Scheduler::run(const std::function<void(Env&)>& setup) {
  Scheduler* prev_sched = tls_sched;
  const int prev_tid = tls_tid;
  tls_sched = this;
  tls_tid = kMain;
  try {
    if (opts_.mode == Options::Mode::kExhaustive) {
      iter_seed_ = 0;  // replay handle is the decision path, not a seed
      for (std::uint64_t e = 0; e < opts_.max_executions; ++e) {
        run_one_execution(setup);
        ++result_.executions;
        if (result_.failed) break;
        if (!advance_dfs()) {
          result_.complete = true;
          break;
        }
      }
    } else {
      const std::uint64_t n =
          opts_.replay_seed != 0 ? 1 : std::max<std::uint64_t>(1,
                                                  opts_.iterations);
      for (std::uint64_t i = 0; i < n; ++i) {
        iter_seed_ =
            opts_.replay_seed != 0 ? opts_.replay_seed : opts_.seed + i;
        rng_ = math::Rng(iter_seed_);
        run_one_execution(setup);
        ++result_.executions;
        if (result_.failed) break;
      }
    }
  } catch (...) {
    tls_sched = prev_sched;
    tls_tid = prev_tid;
    throw;
  }
  tls_sched = prev_sched;
  tls_tid = prev_tid;
  return result_;
}

void Scheduler::run_one_execution(const std::function<void(Env&)>& setup) {
  // The dying lambdas may hold the last reference to model atomics, whose
  // destructors re-lock mu_ (unregister_atomic) — so they must be swapped
  // out under the lock but destroyed outside it.
  std::vector<std::function<void()>> dead_bodies;
  std::vector<std::function<void()>> dead_finals;
  {
    // Reset per-execution state (locked: parked pool threads read it in
    // wait predicates). The DFS stack and result_ persist.
    std::unique_lock<std::mutex> lk(mu_);
    failed_ = false;
    for (auto& t : ts_) t = ThreadState{};
    dead_bodies.swap(bodies_);
    dead_finals.swap(finals_);
    atomics_.clear();
    log_.clear();
    next_var_id_ = 0;
    preemptions_ = 0;
    total_ops_ = 0;
    finished_count_ = 0;
    active_ = kMain;
    cursor_ = 0;
    model_phase_ = false;
  }
  dead_bodies.clear();
  dead_finals.clear();

  Env env(*this);
  setup(env);  // single-threaded; instrumented ops take the simple path

  const std::size_t n = bodies_.size();
  if (n > 0) {
    std::unique_lock<std::mutex> lk(mu_);
    while (pool_.size() < n) {
      const int tid = static_cast<int>(pool_.size());
      pool_.emplace_back([this, tid] { pool_main(tid); });
    }
    ++epoch_;
    model_phase_ = true;
    try {
      const std::uint32_t k =
          n > 1 ? choose(static_cast<std::uint32_t>(n)) : 0;
      active_ = static_cast<int>(k);
    } catch (Abort&) {
      // choose() failed loudly (nondeterministic body); failed_ is set and
      // the workers will drain without running.
    }
    cv_.notify_all();
    cv_.wait(lk, [&] { return finished_count_ == n; });
    model_phase_ = false;
    active_ = kMain;
  }

  for (std::size_t t = 0; t < kMaxThreads; ++t) {
    result_.max_ops_per_thread[t] =
        std::max(result_.max_ops_per_thread[t], ts_[t].ops);
  }

  if (!failed_) {
    for (const auto& f : finals_) {
      try {
        f();
      } catch (Abort&) {
        break;  // check() recorded the failure
      }
    }
  }
}

void Scheduler::pool_main(int tid) {
  tls_sched = this;
  tls_tid = tid;
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_.wait(lk, [&] {
      return pool_stop_ ||
             (epoch_ != seen &&
              static_cast<std::size_t>(tid) < bodies_.size());
    });
    if (pool_stop_) return;
    seen = epoch_;
    const std::function<void()>& body =
        bodies_[static_cast<std::size_t>(tid)];
    lk.unlock();
    worker_body(tid, body);
    lk.lock();
  }
}

void Scheduler::worker_body(int tid, const std::function<void()>& body) {
  bool skip;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return active_ == tid || failed_; });
    skip = failed_;
  }
  if (!skip) {
    try {
      body();
    } catch (Abort&) {
      // Execution aborted (failure recorded elsewhere); just drain.
    } catch (const std::exception& e) {
      std::unique_lock<std::mutex> lk(mu_);
      if (!failed_) {
        fail_record(std::string("uncaught exception in model thread: ") +
                    e.what());
      }
    }
  }

  std::unique_lock<std::mutex> lk(mu_);
  ts_[static_cast<std::size_t>(tid)].finished = true;
  ++finished_count_;
  if (finished_count_ == bodies_.size() || failed_) {
    cv_.notify_all();
    return;
  }
  // Hand the token to some runnable thread; if every unfinished thread is
  // yielded, nothing can ever wake them — livelock.
  std::array<int, kMaxThreads> cand{};
  std::uint32_t nc = 0;
  for (std::size_t u = 0; u < bodies_.size(); ++u) {
    if (!ts_[u].finished && !ts_[u].yielded) {
      cand[nc++] = static_cast<int>(u);
    }
  }
  if (nc == 0) {
    // Eventual visibility before declaring livelock: a parked spinner that
    // read a stale value (or whose last pass raised a floor) must get a
    // chance to re-read the newest stores.
    for (std::size_t u = 0; u < bodies_.size(); ++u) {
      if (ts_[u].finished) continue;
      const bool refreshed = refresh_visibility(u);
      if (refreshed || ts_[u].advanced) {
        ts_[u].advanced = false;
        ts_[u].yielded = false;
        cand[nc++] = static_cast<int>(u);
      }
    }
  }
  if (nc == 0) {
    fail_record("livelock: every unfinished thread is yielded");
    cv_.notify_all();
    return;
  }
  try {
    active_ = cand[nc > 1 ? choose(nc) : 0];
  } catch (Abort&) {
    // nondeterminism failure recorded; waiters wake on failed_.
  }
  cv_.notify_all();
}

bool Scheduler::advance_dfs() {
  while (!dstack_.empty() &&
         dstack_.back().chosen + 1 >= dstack_.back().num) {
    dstack_.pop_back();
  }
  if (dstack_.empty()) return false;
  ++dstack_.back().chosen;
  return true;
}

// ---------------------------------------------------------------------------
// Decision engine + scheduling (mu_ held)

std::uint32_t Scheduler::choose(std::uint32_t n) {
  if (n <= 1) return 0;
  if (opts_.mode == Options::Mode::kRandom) {
    return static_cast<std::uint32_t>(rng_.uniform_index(n));
  }
  if (cursor_ < dstack_.size()) {
    Decision& d = dstack_[cursor_];
    if (d.num != n) {
      fail_locked(
          "nondeterministic test body: decision arity changed on replay");
    }
    return dstack_[cursor_++].chosen;
  }
  dstack_.push_back(Decision{0, n});
  ++cursor_;
  return 0;
}

void Scheduler::pre_op(std::unique_lock<std::mutex>& lk) {
  if (failed_) throw Abort{};
  const auto t = static_cast<std::size_t>(tls_tid);
  ++ts_[t].ops;
  ++total_ops_;
  if (total_ops_ > opts_.max_ops) {
    fail_locked("operation budget exceeded — livelock or runaway spin");
  }
  ++ts_[t].clock.v[t];
  // Progress by this thread re-enables spinners parked by yield().
  for (std::size_t u = 0; u < kMaxThreads; ++u) {
    if (u != t) ts_[u].yielded = false;
  }
  schedule(lk, /*current_runnable=*/true);
}

void Scheduler::schedule(std::unique_lock<std::mutex>& lk,
                         bool current_runnable) {
  const int t = tls_tid;
  const auto runnable = [&](std::size_t u) {
    return !ts_[u].finished && !ts_[u].yielded &&
           (static_cast<int>(u) != t || current_runnable);
  };
  // Candidate order: current thread first (choice 0 = continue, so the DFS
  // explores the no-preemption schedule before any preempting variant).
  std::array<int, kMaxThreads> cand{};
  std::uint32_t nc = 0;
  if (current_runnable) cand[nc++] = t;
  for (std::size_t u = 0; u < bodies_.size(); ++u) {
    if (static_cast<int>(u) != t && runnable(u)) {
      cand[nc++] = static_cast<int>(u);
    }
  }
  if (nc == 0) {
    // Eventual visibility: before declaring livelock, unpark every yielded
    // thread whose coherence floor trails some atomic's newest store, with
    // its floors raised to the latest entries. Hardware guarantees stores
    // become visible eventually, so a spinner that merely chose a stale
    // value is not livelocked — it must re-read fresh. A spinner that has
    // already seen the newest stores stays parked; if that is everyone,
    // the livelock is real.
    for (std::size_t u = 0; u < bodies_.size(); ++u) {
      if (ts_[u].finished || !ts_[u].yielded) continue;
      const bool refreshed = refresh_visibility(u);
      if (refreshed || ts_[u].advanced) {
        ts_[u].advanced = false;
        ts_[u].yielded = false;
        cand[nc++] = static_cast<int>(u);
      }
    }
  }
  if (nc == 0) {
    fail_locked("livelock: every unfinished thread is yielded");
  }
  if (nc == 1 && cand[0] == t) return;
  const bool bounded = opts_.preemption_bound >= 0 &&
                       preemptions_ >= opts_.preemption_bound;
  if (current_runnable && bounded) return;
  const int next = cand[choose(nc)];
  if (next == t) return;
  if (current_runnable) ++preemptions_;
  active_ = next;
  cv_.notify_all();
  cv_.wait(lk, [&] { return active_ == t || failed_; });
  if (failed_) throw Abort{};
}

void Scheduler::fail_record(std::string reason) {
  if (!failed_) {
    failed_ = true;
    if (!result_.failed) {
      result_.failed = true;
      result_.reason = std::move(reason);
      result_.trace = format_trace();
      result_.failing_seed = iter_seed_;
      result_.failing_path.clear();
      for (std::size_t i = 0; i < cursor_ && i < dstack_.size(); ++i) {
        result_.failing_path.push_back(dstack_[i].chosen);
      }
    }
  }
  cv_.notify_all();
}

void Scheduler::fail_locked(std::string reason) {
  fail_record(std::move(reason));
  throw Abort{};
}

void Scheduler::check_failed(const char* msg) {
  std::unique_lock<std::mutex> lk(mu_);
  fail_locked(std::string("invariant failed: ") + msg);
}

void Scheduler::log_event(EvKind kind, int var, std::memory_order mo,
                          std::uint64_t value) {
  if (log_.size() >= opts_.max_ops) return;
  log_.push_back(Event{static_cast<std::int8_t>(tls_tid), kind,
                       static_cast<std::int16_t>(var),
                       static_cast<std::uint8_t>(mo), value});
}

std::string Scheduler::format_trace() const {
  std::ostringstream os;
  const std::size_t n = log_.size();
  const std::size_t tail = std::min(n, opts_.trace_tail);
  os << "  event log (last " << tail << " of " << n << "):\n";
  for (std::size_t i = n - tail; i < n; ++i) {
    const Event& e = log_[i];
    os << "    T" << static_cast<int>(e.thread) << " v" << e.var << ' '
       << kind_name(static_cast<int>(e.kind)) << '('
       << order_name(e.order) << ')';
    if (e.kind != EvKind::kFence && e.kind != EvKind::kYield) {
      os << " = " << e.value;
    }
    os << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Model semantics (backend entry points)

int Scheduler::register_atomic(AtomicState& a, std::uint64_t init_bits) {
  std::unique_lock<std::mutex> lk(mu_);
  a.history.assign(1, StoreRec{init_bits, {}, {}, -1});
  a.floor.fill(0);
  a.last_load_size.fill(0);
  a.last_load_epoch.fill(0);
  atomics_.push_back(&a);
  return next_var_id_++;
}

void Scheduler::unregister_atomic(AtomicState& a) {
  std::unique_lock<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < atomics_.size(); ++i) {
    if (atomics_[i] == &a) {
      atomics_.erase(atomics_.begin() +
                     static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

bool Scheduler::refresh_visibility(std::size_t u) {
  bool moved = false;
  for (AtomicState* a : atomics_) {
    const std::size_t latest = a->history.size() - 1;
    if (a->floor[u] < latest) {
      a->floor[u] = latest;
      moved = true;
    }
  }
  return moved;
}

int Scheduler::register_raw(RawState& r) {
  std::unique_lock<std::mutex> lk(mu_);
  r = RawState{};
  return next_var_id_++;
}

std::uint64_t Scheduler::atomic_load(AtomicState& a, std::memory_order mo) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!model_phase_) return a.history.back().bits;
  pre_op(lk);
  const auto t = static_cast<std::size_t>(tls_tid);
  const std::size_t latest = a.history.size() - 1;
  // Coherence floor: nothing below the thread's last read/write of this
  // variable, and nothing overwritten by a store the thread's clock already
  // ordered after (scan newest-first for the newest such store).
  std::size_t lo = a.floor[t];
  for (std::size_t j = latest; j > lo; --j) {
    if (a.history[j].hb.leq(ts_[t].clock)) {
      lo = j;
      break;
    }
  }
  // Eventual visibility across spin iterations: a re-load in a later
  // yield-separated pass over an unchanged history must observe strictly
  // more than the previous pass did, so identical stale re-read branches
  // cannot recur (and two spinners cannot stale-ping-pong until the op
  // budget trips). Within one pass, re-reads are unconstrained — a seqlock
  // recheck may legitimately confirm a stale-but-consistent generation.
  if (a.last_load_epoch[t] != ts_[t].spin_epoch &&
      a.last_load_size[t] == a.history.size() && lo < latest &&
      lo == a.floor[t]) {
    ++lo;
  }
  // Bounded staleness: cap the branching factor of the read choice (the
  // weak-memory analogue of the preemption bound).
  if (opts_.stale_window > 0) {
    const auto w = static_cast<std::size_t>(opts_.stale_window);
    if (latest - lo + 1 > w) lo = latest - (w - 1);
  }
  // Which viable store the load reads is an explored decision; choice 0 is
  // the freshest (the SC-like schedule comes first in the DFS).
  std::size_t idx = latest;
  if (latest > lo) {
    idx = latest - choose(static_cast<std::uint32_t>(latest - lo + 1));
  }
  const StoreRec& rec = a.history[idx];
  if (idx > a.floor[t]) ++ts_[t].floor_gen;
  a.floor[t] = idx;
  a.last_load_size[t] = a.history.size();
  a.last_load_epoch[t] = ts_[t].spin_epoch;
  ts_[t].pending_acq.join(rec.msg);
  if (is_acquire(mo)) ts_[t].clock.join(rec.msg);
  log_event(EvKind::kLoad, a.id, mo, rec.bits);
  return rec.bits;
}

void Scheduler::atomic_store(AtomicState& a, std::uint64_t bits,
                             std::memory_order mo) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!model_phase_) {
    a.history.assign(1, StoreRec{bits, {}, {}, -1});
    a.floor.fill(0);
    a.last_load_size.fill(0);
    a.last_load_epoch.fill(0);
    return;
  }
  pre_op(lk);
  const auto t = static_cast<std::size_t>(tls_tid);
  StoreRec r;
  r.bits = bits;
  r.thread = tls_tid;
  r.hb = ts_[t].clock;
  // A release store publishes the thread's whole clock; a relaxed store
  // publishes only what the last release FENCE covered (the seqlock's
  // fence-then-relaxed-stores protocol depends on exactly this).
  r.msg = is_release(mo) ? ts_[t].clock : ts_[t].rel_fence;
  a.history.push_back(r);
  a.floor[t] = a.history.size() - 1;
  ++ts_[t].floor_gen;
  log_event(EvKind::kStore, a.id, mo, bits);
}

std::uint64_t Scheduler::rmw_fetch_add(AtomicState& a, std::uint64_t delta,
                                       std::memory_order mo) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!model_phase_) {
    const std::uint64_t old = a.history.back().bits;
    a.history.back().bits = old + delta;
    return old;
  }
  pre_op(lk);
  const auto t = static_cast<std::size_t>(tls_tid);
  const StoreRec prev = a.history.back();  // copy: push_back may reallocate
  ts_[t].pending_acq.join(prev.msg);
  if (is_acquire(mo)) ts_[t].clock.join(prev.msg);
  StoreRec r;
  r.bits = prev.bits + delta;
  r.thread = tls_tid;
  r.hb = ts_[t].clock;
  // RMWs extend the release sequence: the new message carries the previous
  // store's message plus whatever this thread releases.
  r.msg = prev.msg;
  r.msg.join(is_release(mo) ? ts_[t].clock : ts_[t].rel_fence);
  a.history.push_back(r);
  a.floor[t] = a.history.size() - 1;
  ++ts_[t].floor_gen;
  log_event(EvKind::kRmw, a.id, mo, r.bits);
  return prev.bits;
}

bool Scheduler::rmw_cas(AtomicState& a, std::uint64_t& expected,
                        std::uint64_t desired, std::memory_order mo) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!model_phase_) {
    StoreRec& back = a.history.back();
    if (back.bits == expected) {
      back.bits = desired;
      return true;
    }
    expected = back.bits;
    return false;
  }
  pre_op(lk);
  const auto t = static_cast<std::size_t>(tls_tid);
  const StoreRec prev = a.history.back();
  ts_[t].pending_acq.join(prev.msg);
  if (is_acquire(mo)) ts_[t].clock.join(prev.msg);
  if (prev.bits == expected) {
    StoreRec r;
    r.bits = desired;
    r.thread = tls_tid;
    r.hb = ts_[t].clock;
    r.msg = prev.msg;
    r.msg.join(is_release(mo) ? ts_[t].clock : ts_[t].rel_fence);
    a.history.push_back(r);
    a.floor[t] = a.history.size() - 1;
    ++ts_[t].floor_gen;
    log_event(EvKind::kRmw, a.id, mo, desired);
    return true;
  }
  expected = prev.bits;
  if (a.history.size() - 1 > a.floor[t]) ++ts_[t].floor_gen;
  a.floor[t] = a.history.size() - 1;
  log_event(EvKind::kCasFail, a.id, mo, prev.bits);
  return false;
}

void Scheduler::raw_access(RawState& r, bool is_write) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!model_phase_) return;
  pre_op(lk);
  const auto t = static_cast<std::size_t>(tls_tid);
  if (!r.write_hb.leq(ts_[t].clock)) {
    std::ostringstream os;
    os << "data race on v" << r.id << ": " << (is_write ? "write" : "read")
       << " by T" << tls_tid << " is unordered with the write by T"
       << r.last_writer;
    fail_locked(os.str());
  }
  if (is_write) {
    for (std::size_t u = 0; u < kMaxThreads; ++u) {
      if (r.read_epoch[u] > ts_[t].clock.v[u]) {
        std::ostringstream os;
        os << "data race on v" << r.id << ": write by T" << tls_tid
           << " is unordered with a read by T" << u;
        fail_locked(os.str());
      }
    }
    r.write_hb = ts_[t].clock;
    r.last_writer = tls_tid;
    log_event(EvKind::kRawWrite, r.id, std::memory_order_relaxed, 0);
  } else {
    r.read_epoch[t] = std::max(r.read_epoch[t], ts_[t].clock.v[t]);
    log_event(EvKind::kRawRead, r.id, std::memory_order_relaxed, 0);
  }
}

void Scheduler::fence(std::memory_order mo) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!model_phase_) return;
  pre_op(lk);
  const auto t = static_cast<std::size_t>(tls_tid);
  if (is_release(mo)) ts_[t].rel_fence = ts_[t].clock;
  if (is_acquire(mo)) ts_[t].clock.join(ts_[t].pending_acq);
  log_event(EvKind::kFence, -1, mo, 0);
}

void Scheduler::yield() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!model_phase_) return;
  if (failed_) throw Abort{};
  const auto t = static_cast<std::size_t>(tls_tid);
  ++ts_[t].ops;
  ++total_ops_;
  if (total_ops_ > opts_.max_ops) {
    fail_locked("operation budget exceeded — livelock or runaway spin");
  }
  log_event(EvKind::kYield, -1, std::memory_order_relaxed, 0);
  // Parked until some other thread executes an operation (its pre_op clears
  // the flag). A yield is not progress, so it clears nobody's flag itself.
  // Remember whether THIS spin pass raised any coherence floor: if so, a
  // re-run observes different values, and the livelock resolution below may
  // grant the thread one more pass when nothing else is runnable.
  ts_[t].advanced = ts_[t].floor_gen != ts_[t].floor_gen_at_yield;
  ts_[t].floor_gen_at_yield = ts_[t].floor_gen;
  ++ts_[t].spin_epoch;
  ts_[t].yielded = true;
  schedule(lk, /*current_runnable=*/false);
}

}  // namespace highrpm::verify
