#include "highrpm/serve/snapshot.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace highrpm::serve {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

std::string to_string(const DaemonSnapshot& snap) {
  std::string out;
  out.reserve(128 + snap.nodes.size() * 192 + snap.suites.size() * 96);
  appendf(out, "nodes %zu suites %zu\n", snap.nodes.size(),
          snap.suites.size());
  for (std::size_t i = 0; i < snap.nodes.size(); ++i) {
    const NodeStatus& n = snap.nodes[i];
    appendf(out,
            "node %zu ticks=%" PRIu64 " node_w=%.17g cpu_w=%.17g "
            "mem_w=%.17g measured=%d offered=%" PRIu64 " accepted=%" PRIu64
            " shed=%" PRIu64 " dropped_readings=%" PRIu64
            " backpressure=%" PRIu64 " held=%" PRIu64 " adapt_mode=%" PRIu64
            " adapt_changes=%" PRIu64 " adapt_cheap=%" PRIu64,
            i, n.ticks, n.node_w, n.cpu_w, n.mem_w, n.measured ? 1 : 0,
            n.offered, n.accepted, n.shed, n.dropped_readings,
            n.backpressure, n.held, n.adapt_mode, n.adapt_mode_changes,
            n.adapt_cheap_ticks);
    // Attribution-enabled fleets only — attribution-free snapshots keep the
    // exact historical line format.
    if (n.tenants > 0) {
      appendf(out, " tenants=%" PRIu64, n.tenants);
      for (std::size_t k = 0; k < n.tenants && k < n.tenant_w.size(); ++k) {
        appendf(out, " t%zu_w=%.1f", k, n.tenant_w[k]);
      }
    }
    out.push_back('\n');
  }
  for (const SuiteStats& s : snap.suites) {
    appendf(out,
            "suite %s samples=%" PRIu64 " err_p50_mw=%" PRIu64
            " err_p99_mw=%" PRIu64 " err_max_mw=%" PRIu64 "\n",
            s.suite.c_str(), s.samples, s.err_p50_mw, s.err_p99_mw,
            s.err_max_mw);
  }
  appendf(out,
          "totals ticks=%" PRIu64 " offered=%" PRIu64 " accepted=%" PRIu64
          " shed=%" PRIu64 " dropped_readings=%" PRIu64 " held=%" PRIu64
          " node_w=%.17g cpu_w=%.17g mem_w=%.17g\n",
          snap.total_ticks, snap.total_offered, snap.total_accepted,
          snap.total_shed, snap.total_dropped_readings, snap.total_held,
          snap.total_node_w, snap.total_cpu_w, snap.total_mem_w);
  return out;
}

}  // namespace highrpm::serve
