#include "highrpm/serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "highrpm/sim/pmc.hpp"

namespace highrpm::serve {

Daemon::Daemon(const core::HighRpm& golden, std::size_t nodes,
               std::vector<std::string> node_suites, DaemonConfig cfg)
    : cfg_(std::move(cfg)), fleet_(golden, nodes, core::FleetConfig{}) {
  if (cfg_.consumers == 0) {
    throw std::invalid_argument("serve::Daemon: consumers must be >= 1");
  }
  if (cfg_.ring_capacity == 0) {
    throw std::invalid_argument("serve::Daemon: ring_capacity must be >= 1");
  }
  if (node_suites.size() != nodes) {
    throw std::invalid_argument(
        "serve::Daemon: node_suites must have one entry per node");
  }
  if (fleet_.tenants() > measure::kStreamMaxTenants) {
    throw std::invalid_argument(
        "serve::Daemon: attribution tenant count exceeds the ring slot "
        "capacity (measure::kStreamMaxTenants)");
  }
  if (cfg_.consumers > nodes) cfg_.consumers = nodes;

  nodes_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    auto ns = std::make_unique<NodeState>(cfg_.ring_capacity);
    const auto it =
        std::find(suites_.begin(), suites_.end(), node_suites[i]);
    if (it == suites_.end()) {
      ns->suite_idx = suites_.size();
      suites_.push_back(node_suites[i]);
      suite_err_mw_.push_back(std::make_unique<obs::Histogram>());
    } else {
      ns->suite_idx = static_cast<std::size_t>(it - suites_.begin());
    }
    nodes_.push_back(std::move(ns));
  }

  const std::size_t per = (nodes + cfg_.consumers - 1) / cfg_.consumers;
  for (std::size_t c = 0; c < cfg_.consumers; ++c) {
    const std::size_t begin = c * per;
    if (begin >= nodes) break;
    auto cs = std::make_unique<ConsumerState>();
    cs->begin = begin;
    cs->end = std::min(nodes, begin + per);
    consumers_.push_back(std::move(cs));
  }
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error("serve::Daemon: already running");
  }
  stop_.store(false, std::memory_order_release);
  const std::size_t f = sim::kNumPmcEvents;
  const unsigned hw = runtime::hardware_threads();
  for (std::size_t c = 0; c < consumers_.size(); ++c) {
    ConsumerState& cs = *consumers_[c];
    const std::size_t owned = cs.end - cs.begin;
    // Warm every staging buffer to its maximum size now so the drain cycle
    // never allocates (Matrix::resize and vector shrink/regrow are
    // capacity-preserving).
    cs.ids.reserve(owned);
    cs.staged.reserve(owned);
    cs.readings.assign(owned, std::nullopt);
    cs.out.assign(owned, core::PowerEstimate{});
    cs.rows.resize(owned, f);
    cs.held_row.resize(1, f);
    for (double& v : cs.held_row.row(0)) {
      v = std::numeric_limits<double>::quiet_NaN();
    }
    cs.held_reading.assign(1, std::nullopt);
    cs.held_out.assign(1, core::PowerEstimate{});
    if (fleet_.tenants() > 0) {
      const std::size_t tf = fleet_.tenants() * f;
      cs.trows.resize(owned, tf);
      cs.held_trow.resize(1, tf);
      for (double& v : cs.held_trow.row(0)) {
        v = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  running_.store(true, std::memory_order_release);
  for (std::size_t c = 0; c < consumers_.size(); ++c) {
    std::optional<unsigned> pin;
    if (cfg_.pin_consumers) pin = static_cast<unsigned>(c) % hw;
    consumers_[c]->worker.start([this, c] { consume_loop(c); }, pin);
  }
}

void Daemon::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  for (auto& cs : consumers_) cs->worker.join();
  running_.store(false, std::memory_order_release);
}

OfferResult Daemon::offer(std::size_t node, const measure::StreamTick& tick) {
  static obs::Counter& offered_c =
      obs::Registry::instance().counter("serve.offered");
  static obs::Counter& accepted_c =
      obs::Registry::instance().counter("serve.accepted");
  static obs::Counter& shed_c =
      obs::Registry::instance().counter("serve.shed_ticks");
  static obs::Counter& dropped_r_c =
      obs::Registry::instance().counter("serve.dropped_readings");
  static obs::Counter& backpressure_c =
      obs::Registry::instance().counter("serve.backpressure");
  NodeState& ns = *nodes_.at(node);
  ns.offered.add();
  offered_c.add();
  const Enqueued e{tick, ns.pending_drop};
  if (ns.ring.try_push(e)) {
    ns.pending_drop = 0;
    ns.accepted.add();
    accepted_c.add();
    return OfferResult::kAccepted;
  }
  if (!tick.has_reading) {
    // Sheddable: a predict-only tick only buys resolution; fold it into
    // the next accepted tick's gap count and move on.
    ns.shed.add();
    shed_c.add();
    if (ns.pending_drop != UINT32_MAX) ++ns.pending_drop;
    return OfferResult::kShed;
  }
  // A reading tick is a training label — spend a bounded retry budget
  // before giving it up.
  ns.backpressure.add();
  backpressure_c.add();
  for (std::size_t r = 0; r < cfg_.offer_retries; ++r) {
    std::this_thread::yield();
    if (ns.ring.try_push(e)) {
      ns.pending_drop = 0;
      ns.accepted.add();
      accepted_c.add();
      return OfferResult::kAccepted;
    }
  }
  ns.dropped_readings.add();
  dropped_r_c.add();
  if (ns.pending_drop != UINT32_MAX) ++ns.pending_drop;
  return OfferResult::kDroppedReading;
}

void Daemon::consume_loop(std::size_t c) {
  ConsumerState& cs = *consumers_[c];
  std::size_t idle = 0;
  for (;;) {
    if (cfg_.hooks.before) cfg_.hooks.before(c);
    cs.busy.store(true, std::memory_order_release);
    const bool did_work = consume_cycle(cs);
    cs.busy.store(false, std::memory_order_release);
    if (cfg_.hooks.after) cfg_.hooks.after(c);
    if (did_work) {
      idle = 0;
      continue;
    }
    // Rings were all empty this cycle; exit once a stop was requested
    // (producers are done, nothing more can arrive).
    if (stop_.load(std::memory_order_acquire)) break;
    ++idle;
    if (idle <= 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

bool Daemon::consume_cycle(ConsumerState& cs) {
  static obs::Counter& consumed_c =
      obs::Registry::instance().counter("serve.consumed");
  static obs::Counter& held_c =
      obs::Registry::instance().counter("serve.held_fallback");
  cs.ids.clear();
  cs.staged.clear();
  for (std::size_t i = cs.begin; i < cs.end; ++i) {
    NodeState& ns = *nodes_[i];
    Enqueued e;
    if (!ns.ring.try_pop(e)) continue;
    // Bridge the shed gap before stepping the real tick: up to
    // held_fallback_cap held-row steps (all-NaN input row triggers the
    // last-good-row substitution; no reading). Keeps the lane's stream
    // state moving through gaps without paying full price for every
    // dropped tick.
    const auto gap = std::min<std::uint64_t>(e.dropped_before,
                                             cfg_.held_fallback_cap);
    for (std::uint64_t k = 0; k < gap; ++k) {
      const std::size_t id = i;
      fleet_.step_cohort(std::span<const std::size_t>(&id, 1), cs.held_row,
                         0, cs.held_reading,
                         std::span<core::PowerEstimate>(cs.held_out.data(), 1),
                         cs.cohort,
                         fleet_.tenants() > 0 ? &cs.held_trow : nullptr, 0);
      ns.held.add();
      held_c.add();
      ++ns.stepped;
    }
    cs.ids.push_back(i);
    cs.staged.push_back(e);
  }
  const std::size_t n = cs.staged.size();
  if (n == 0) return false;

  cs.rows.resize(n, cs.held_row.cols());
  const std::size_t tenants = fleet_.tenants();
  if (tenants > 0) cs.trows.resize(n, cs.held_trow.cols());
  for (std::size_t li = 0; li < n; ++li) {
    const measure::StreamTick& t = cs.staged[li].tick;
    const auto dst = cs.rows.row(li);
    std::copy(t.pmcs.begin(), t.pmcs.end(), dst.begin());
    if (tenants > 0) {
      // StreamTick's fixed tenant array zero-fills unused slots, so a
      // shorter (or single-tenant) producer yields all-zero tenant rows
      // rather than garbage.
      const auto tdst = cs.trows.row(li);
      std::copy(t.tenant_pmcs.begin(),
                t.tenant_pmcs.begin() + static_cast<std::ptrdiff_t>(tdst.size()),
                tdst.begin());
    }
    cs.readings[li] =
        t.has_reading ? std::optional<double>(t.reading_w) : std::nullopt;
  }
  fleet_.step_cohort(
      cs.ids, cs.rows, 0,
      std::span<const std::optional<double>>(cs.readings.data(), n),
      std::span<core::PowerEstimate>(cs.out.data(), n), cs.cohort,
      tenants > 0 ? &cs.trows : nullptr, 0);

  for (std::size_t li = 0; li < n; ++li) {
    NodeState& ns = *nodes_[cs.ids[li]];
    ++ns.stepped;
    consumed_c.add();
    const core::PowerEstimate& pe = cs.out[li];
    // Pack the lane's adaptive-controller state into the seqlock word.
    // Safe without extra synchronization: this consumer is the only thread
    // that steps (and therefore mutates) this lane's controller.
    std::uint64_t adapt_word = 0;
    if (const auto* ctl = fleet_.lane_controller(cs.ids[li])) {
      adapt_word = pack_adapt_state(
          static_cast<std::uint64_t>(ctl->mode()), ctl->mode_changes(),
          ctl->sparse_ticks());
    }
    ns.cell.publish({ns.stepped, pe.node_w, pe.cpu_w, pe.mem_w, pe.measured,
                     adapt_word,
                     pack_tenant_word(pe.tenant_w.data(), pe.tenants, 0),
                     pack_tenant_word(pe.tenant_w.data(), pe.tenants, 1)});
    // Restoration error vs. simulator truth, milliwatt resolution —
    // unmeasured (restored) ticks only; measured ticks reproduce the
    // reading by construction.
    if (!pe.measured && std::isfinite(pe.node_w)) {
      const double err = std::fabs(pe.node_w - cs.staged[li].tick.truth_node_w);
      const auto mw = static_cast<std::uint64_t>(std::llround(err * 1000.0));
      suite_err_mw_[ns.suite_idx]->record(mw);
      all_err_mw_.record(mw);
    }
  }
  return true;
}

void Daemon::quiesce() const {
  if (!running_.load(std::memory_order_acquire)) {
    throw std::logic_error("serve::Daemon::quiesce: daemon not running");
  }
  // Scan rings before busy flags: with producers quiet, an empty-ring
  // observation followed by an idle-consumer observation proves every
  // popped tick was published (busy covers pop -> publish, released
  // before busy=false). Confirm twice anyway.
  std::size_t confirms = 0;
  while (confirms < 2) {
    bool idle = true;
    for (const auto& ns : nodes_) {
      if (!ns->ring.empty()) {
        idle = false;
        break;
      }
    }
    if (idle) {
      for (const auto& cs : consumers_) {
        if (cs->busy.load(std::memory_order_acquire)) {
          idle = false;
          break;
        }
      }
    }
    if (idle) {
      ++confirms;
    } else {
      confirms = 0;
      std::this_thread::yield();
    }
  }
}

DaemonSnapshot Daemon::snapshot() const {
  DaemonSnapshot snap;
  snap.nodes.reserve(nodes_.size());
  for (const auto& ns : nodes_) {
    const NodeStatusCell::Value v = ns->cell.read();
    NodeStatus st;
    st.ticks = v.ticks;
    st.node_w = v.node_w;
    st.cpu_w = v.cpu_w;
    st.mem_w = v.mem_w;
    st.measured = v.measured;
    st.adapt_mode = adapt_mode_of(v.adapt);
    st.adapt_mode_changes = adapt_changes_of(v.adapt);
    st.adapt_cheap_ticks = adapt_cheap_of(v.adapt);
    st.tenants = fleet_.tenants();
    for (std::size_t k = 0; k < st.tenants; ++k) {
      st.tenant_w[k] = tenant_watts_of(v.tenant_lo, v.tenant_hi, k);
    }
    // Outcome counters before offered: offer() bumps offered first and the
    // outcome second, so reading the outcomes first (and the only-growing
    // offered last) keeps accepted + shed + dropped_readings <= offered in
    // every live snapshot.
    st.accepted = ns->accepted.value();
    st.shed = ns->shed.value();
    st.dropped_readings = ns->dropped_readings.value();
    st.backpressure = ns->backpressure.value();
    st.held = ns->held.value();
    st.offered = ns->offered.value();
    // Totals from the captured rows, never from a second racy read — the
    // aggregate always equals the sum of what this snapshot reports.
    snap.total_ticks += st.ticks;
    snap.total_offered += st.offered;
    snap.total_accepted += st.accepted;
    snap.total_shed += st.shed;
    snap.total_dropped_readings += st.dropped_readings;
    snap.total_held += st.held;
    snap.total_node_w += st.node_w;
    snap.total_cpu_w += st.cpu_w;
    snap.total_mem_w += st.mem_w;
    snap.nodes.push_back(st);
  }
  snap.suites.reserve(suites_.size());
  for (std::size_t s = 0; s < suites_.size(); ++s) {
    const obs::HistogramStats hs = suite_err_mw_[s]->stats();
    SuiteStats ss;
    ss.suite = suites_[s];
    ss.samples = hs.count;
    ss.err_p50_mw = hs.p50;
    ss.err_p99_mw = hs.p99;
    ss.err_max_mw = hs.max;
    snap.suites.push_back(std::move(ss));
  }
  return snap;
}

Producer::Producer(Daemon& daemon, std::vector<std::size_t> node_ids,
                   std::vector<measure::NodeTickStream> streams, Config cfg)
    : daemon_(daemon),
      node_ids_(std::move(node_ids)),
      streams_(std::move(streams)),
      cfg_(cfg) {
  if (node_ids_.size() != streams_.size()) {
    throw std::invalid_argument(
        "serve::Producer: node_ids and streams must align");
  }
}

void Producer::start() {
  worker_.start([this] { run(); });
}

void Producer::join() { worker_.join(); }

void Producer::run() {
  const std::size_t burst = cfg_.burst_len == 0 ? 1 : cfg_.burst_len;
  std::uint64_t emitted = 0;
  while (emitted < cfg_.ticks_per_node) {
    const auto take =
        std::min<std::uint64_t>(burst, cfg_.ticks_per_node - emitted);
    for (std::uint64_t k = 0; k < take; ++k) {
      for (std::size_t i = 0; i < node_ids_.size(); ++i) {
        daemon_.offer(node_ids_[i], streams_[i].next());
      }
    }
    emitted += take;
    if (cfg_.pause_us > 0 && emitted < cfg_.ticks_per_node) {
      std::this_thread::sleep_for(std::chrono::microseconds(cfg_.pause_us));
    }
  }
}

}  // namespace highrpm::serve
