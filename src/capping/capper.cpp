#include "highrpm/capping/capper.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace highrpm::capping {

PowerCapController::PowerCapController(CappingConfig cfg) : cfg_(cfg) {
  if (cfg_.reading_interval_s < 1.0 || cfg_.action_interval_s < 1.0) {
    throw std::invalid_argument("PowerCapController: intervals must be >= 1 s");
  }
}

CappingResult PowerCapController::run(sim::NodeSimulator& node,
                                      std::size_t ticks) {
  CappingResult result;
  const std::size_t pi =
      static_cast<std::size_t>(std::llround(cfg_.reading_interval_s));
  const std::size_t ai =
      static_cast<std::size_t>(std::llround(cfg_.action_interval_s));
  // NodeSimulator guarantees a non-empty ladder, but guard anyway: on an
  // empty one size() - 1 would wrap to SIZE_MAX and the controller would
  // happily "raise" the frequency forever.
  const std::size_t n_levels = node.platform().freq_levels_ghz.size();
  if (n_levels == 0) {
    throw std::invalid_argument("PowerCapController: node has no DVFS levels");
  }
  const std::size_t max_level = n_levels - 1;

  double last_reading = 0.0;
  bool have_reading = false;
  for (std::size_t t = 0; t < ticks; ++t) {
    const sim::TickSample s = node.step();
    result.trace.push_back(s);
    result.freq_level_per_tick.push_back(s.freq_level);
    result.peak_node_w = std::max(result.peak_node_w, s.p_node_w);
    result.peak_cpu_w = std::max(result.peak_cpu_w, s.p_cpu_w);
    result.energy_j += s.p_node_w;
    if (s.p_node_w > cfg_.node_cap_w) result.seconds_over_cap += 1.0;

    if (t % pi == 0) {
      last_reading = s.p_node_w;
      have_reading = true;
    }
    if (have_reading && t % ai == 0) {
      const std::size_t level = node.frequency_level();
      if (last_reading > cfg_.node_cap_w && level > 0) {
        node.set_frequency_level(level - 1);
        ++result.dvfs_actions;
      } else if (last_reading < cfg_.node_cap_w - cfg_.hysteresis_w &&
                 level < max_level) {
        node.set_frequency_level(level + 1);
        ++result.dvfs_actions;
      }
    }
  }
  return result;
}

}  // namespace highrpm::capping
