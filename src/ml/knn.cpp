#include "highrpm/ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "highrpm/runtime/parallel_for.hpp"

namespace highrpm::ml {

KnnRegressor::KnnRegressor(std::size_t k, bool distance_weighted)
    : k_(k), distance_weighted_(distance_weighted) {
  if (k == 0) throw std::invalid_argument("KnnRegressor: k must be >= 1");
}

void KnnRegressor::fit(const math::Matrix& x, std::span<const double> y) {
  check_training_input(x, y);
  x_ = scaler_.fit_transform(x);
  y_.assign(y.begin(), y.end());
}

double KnnRegressor::predict_one(std::span<const double> row) const {
  check_predict_input(fitted(), scaler_.means().size(), row);
  const auto q = scaler_.transform_row(row);
  const std::size_t k = std::min(k_, y_.size());
  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, std::size_t>> d(y_.size());
  for (std::size_t i = 0; i < y_.size(); ++i) {
    const auto r = x_.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < q.size(); ++j) {
      const double diff = r[j] - q[j];
      s += diff * diff;
    }
    d[i] = {s, i};
  }
  std::nth_element(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   d.end());
  if (!distance_weighted_) {
    double s = 0.0;
    for (std::size_t i = 0; i < k; ++i) s += y_[d[i].second];
    return s / static_cast<double>(k);
  }
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(d[i].first) + 1e-9);
    num += w * y_[d[i].second];
    den += w;
  }
  return num / den;
}

std::vector<double> KnnRegressor::predict(const math::Matrix& x) const {
  check_batch_input(fitted(), scaler_.means().size(), x);
  std::vector<double> out(x.rows());
  // Each query row performs its own brute-force scan; rows are independent,
  // so the sweep parallelizes without any shared mutable state.
  runtime::parallel_for(
      x.rows(), [&](std::size_t r) { out[r] = predict_one(x.row(r)); });
  return out;
}

std::unique_ptr<Regressor> KnnRegressor::clone() const {
  return std::make_unique<KnnRegressor>(k_, distance_weighted_);
}

}  // namespace highrpm::ml
