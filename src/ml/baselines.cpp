#include "highrpm/ml/baselines.hpp"

#include <stdexcept>

#include "highrpm/ml/ensemble.hpp"
#include "highrpm/ml/knn.hpp"
#include "highrpm/ml/linear.hpp"
#include "highrpm/ml/mlp.hpp"
#include "highrpm/ml/svr.hpp"
#include "highrpm/ml/tree.hpp"

namespace highrpm::ml {

std::vector<std::string> pointwise_baseline_names() {
  return {"LR", "LaR", "RR", "SGD", "DT", "RF", "GB", "KNN", "SVM", "NN"};
}

std::unique_ptr<Regressor> make_baseline(const std::string& abbreviation,
                                         std::uint64_t seed) {
  if (abbreviation == "LR") return std::make_unique<LinearRegression>();
  if (abbreviation == "LaR") return std::make_unique<LassoRegression>();
  if (abbreviation == "RR") return std::make_unique<RidgeRegression>();
  if (abbreviation == "SGD") {
    return std::make_unique<SgdRegression>(0.01, 10000, 1e-4, seed);
  }
  if (abbreviation == "DT") {
    TreeConfig tc;
    tc.seed = seed;
    return std::make_unique<DecisionTreeRegressor>(tc);
  }
  if (abbreviation == "RF") {
    ForestConfig fc;
    fc.n_trees = 10;  // Table 4: #trees=10
    fc.seed = seed;
    return std::make_unique<RandomForestRegressor>(fc);
  }
  if (abbreviation == "GB") {
    BoostingConfig bc;
    bc.n_trees = 10;  // Table 4: #trees=10
    bc.seed = seed;
    return std::make_unique<GradientBoostingRegressor>(bc);
  }
  if (abbreviation == "KNN") {
    return std::make_unique<KnnRegressor>(3);  // Table 4: #neighbors=3
  }
  if (abbreviation == "SVM") {
    SvrConfig sc;
    sc.seed = seed;
    return std::make_unique<SvrRegressor>(sc);
  }
  if (abbreviation == "NN") {
    MlpConfig mc;
    mc.hidden = {30};  // Table 4: #hidden_size=30
    mc.seed = seed;
    return std::make_unique<MlpRegressor>(mc);
  }
  throw std::invalid_argument("make_baseline: unknown model '" + abbreviation +
                              "'");
}

SequenceRegressor make_rnn_baseline(const std::string& abbreviation,
                                    std::uint64_t seed) {
  RnnConfig rc;
  rc.units = 2;  // Table 4: #units=2
  rc.seed = seed;
  if (abbreviation == "GRU") {
    rc.cell = CellType::kGru;
  } else if (abbreviation == "LSTM") {
    rc.cell = CellType::kLstm;
  } else {
    throw std::invalid_argument("make_rnn_baseline: unknown model '" +
                                abbreviation + "'");
  }
  return SequenceRegressor(rc);
}

std::vector<std::string> all_baseline_names() {
  auto names = pointwise_baseline_names();
  names.push_back("GRU");
  names.push_back("LSTM");
  return names;
}

}  // namespace highrpm::ml
