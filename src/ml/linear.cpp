#include "highrpm/ml/linear.hpp"

#include <algorithm>
#include <cmath>

#include "highrpm/math/float_eq.hpp"
#include "highrpm/math/solve.hpp"
#include "highrpm/math/stats.hpp"

namespace highrpm::ml {

namespace {
/// Append a leading 1-column for the intercept.
math::Matrix with_intercept(const math::Matrix& x) {
  math::Matrix out(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto dst = out.row(r);
    dst[0] = 1.0;
    const auto src = x.row(r);
    std::copy(src.begin(), src.end(), dst.begin() + 1);
  }
  return out;
}
}  // namespace

// ---------------------------------------------------------------- LR

void LinearRegression::fit(const math::Matrix& x, std::span<const double> y) {
  check_training_input(x, y);
  const math::Matrix xi = with_intercept(x);
  std::vector<double> w;
  if (xi.rows() >= xi.cols()) {
    w = math::solve_least_squares(xi, y);
  } else {
    // Underdetermined: fall back to tiny-ridge normal equations.
    w = math::solve_ridge(xi, y, 1e-8, 0);
  }
  intercept_ = w[0];
  coef_.assign(w.begin() + 1, w.end());
}

double LinearRegression::predict_one(std::span<const double> row) const {
  check_predict_input(fitted(), coef_.size(), row);
  return intercept_ + math::dot(coef_, row);
}

std::vector<double> LinearRegression::predict(const math::Matrix& x) const {
  check_batch_input(fitted(), coef_.size(), x);
  auto out = math::matvec(x, coef_);
  for (double& v : out) v = intercept_ + v;
  return out;
}

std::unique_ptr<Regressor> LinearRegression::clone() const {
  return std::make_unique<LinearRegression>();
}

// ---------------------------------------------------------------- Ridge

RidgeRegression::RidgeRegression(double lambda) : lambda_(lambda) {}

void RidgeRegression::fit(const math::Matrix& x, std::span<const double> y) {
  check_training_input(x, y);
  const math::Matrix xi = with_intercept(x);
  const auto w = math::solve_ridge(xi, y, lambda_, /*unpenalized_col=*/0);
  intercept_ = w[0];
  coef_.assign(w.begin() + 1, w.end());
}

double RidgeRegression::predict_one(std::span<const double> row) const {
  check_predict_input(fitted(), coef_.size(), row);
  return intercept_ + math::dot(coef_, row);
}

std::vector<double> RidgeRegression::predict(const math::Matrix& x) const {
  check_batch_input(fitted(), coef_.size(), x);
  auto out = math::matvec(x, coef_);
  for (double& v : out) v = intercept_ + v;
  return out;
}

std::unique_ptr<Regressor> RidgeRegression::clone() const {
  return std::make_unique<RidgeRegression>(lambda_);
}

// ---------------------------------------------------------------- Lasso

LassoRegression::LassoRegression(double alpha, std::size_t max_iter, double tol)
    : alpha_(alpha), max_iter_(max_iter), tol_(tol) {}

void LassoRegression::fit(const math::Matrix& x, std::span<const double> y) {
  check_training_input(x, y);
  const math::Matrix xs = scaler_.fit_transform(x);
  const std::size_t n = xs.rows();
  const std::size_t p = xs.cols();
  intercept_ = math::mean(y);
  std::vector<double> yc(n);
  for (std::size_t i = 0; i < n; ++i) yc[i] = y[i] - intercept_;

  coef_.assign(p, 0.0);
  std::vector<double> residual = yc;  // r = y - X w (w = 0 initially)
  // Column squared norms for the coordinate updates.
  std::vector<double> col_sq(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = xs.row(r);
    for (std::size_t j = 0; j < p; ++j) col_sq[j] += row[j] * row[j];
  }
  const double thresh = alpha_ * static_cast<double>(n);
  for (std::size_t it = 0; it < max_iter_; ++it) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      if (col_sq[j] < 1e-12) continue;
      // rho = x_j . (r + w_j x_j)
      double rho = 0.0;
      for (std::size_t r = 0; r < n; ++r) rho += xs(r, j) * residual[r];
      rho += coef_[j] * col_sq[j];
      // Soft-thresholding.
      double w_new = 0.0;
      if (rho > thresh) {
        w_new = (rho - thresh) / col_sq[j];
      } else if (rho < -thresh) {
        w_new = (rho + thresh) / col_sq[j];
      }
      const double delta = w_new - coef_[j];
      if (!math::is_zero(delta)) {
        for (std::size_t r = 0; r < n; ++r) residual[r] -= delta * xs(r, j);
        coef_[j] = w_new;
      }
      max_delta = std::max(max_delta, std::fabs(delta));
    }
    if (max_delta < tol_) break;
  }
}

double LassoRegression::predict_one(std::span<const double> row) const {
  check_predict_input(fitted(), scaler_.means().size(), row);
  const auto xs = scaler_.transform_row(row);
  return intercept_ + math::dot(coef_, xs);
}

std::vector<double> LassoRegression::predict(const math::Matrix& x) const {
  check_batch_input(fitted(), scaler_.means().size(), x);
  // One standardization of the whole batch, then a single matvec.
  const math::Matrix xs = scaler_.transform(x);
  auto out = math::matvec(xs, coef_);
  for (double& v : out) v = intercept_ + v;
  return out;
}

std::unique_ptr<Regressor> LassoRegression::clone() const {
  return std::make_unique<LassoRegression>(alpha_, max_iter_, tol_);
}

std::size_t LassoRegression::num_zero_coefficients() const {
  return static_cast<std::size_t>(
      std::count(coef_.begin(), coef_.end(), 0.0));
}

// ---------------------------------------------------------------- SGD

SgdRegression::SgdRegression(double eta0, std::size_t max_iter, double l2,
                             std::uint64_t seed)
    : eta0_(eta0), max_iter_(max_iter), l2_(l2), seed_(seed) {}

void SgdRegression::fit(const math::Matrix& x, std::span<const double> y) {
  check_training_input(x, y);
  const math::Matrix xs = scaler_.fit_transform(x);
  const std::size_t n = xs.rows();
  const std::size_t p = xs.cols();
  coef_.assign(p, 0.0);
  intercept_ = math::mean(y);
  math::Rng rng(seed_);
  std::size_t t = 0;
  for (std::size_t it = 0; it < max_iter_; ++it) {
    const std::size_t i = rng.uniform_index(n);
    const auto row = xs.row(i);
    const double pred = intercept_ + math::dot(coef_, row);
    const double err = pred - y[i];
    // Inverse-scaling learning rate (sklearn 'invscaling'-like).
    const double eta =
        eta0_ / std::pow(1.0 + static_cast<double>(t) * 1e-3, 0.25);
    for (std::size_t j = 0; j < p; ++j) {
      coef_[j] -= eta * (err * row[j] + l2_ * coef_[j]);
    }
    intercept_ -= eta * err;
    ++t;
  }
}

double SgdRegression::predict_one(std::span<const double> row) const {
  check_predict_input(fitted(), scaler_.means().size(), row);
  const auto xs = scaler_.transform_row(row);
  return intercept_ + math::dot(coef_, xs);
}

std::vector<double> SgdRegression::predict(const math::Matrix& x) const {
  check_batch_input(fitted(), scaler_.means().size(), x);
  const math::Matrix xs = scaler_.transform(x);
  auto out = math::matvec(xs, coef_);
  for (double& v : out) v = intercept_ + v;
  return out;
}

std::unique_ptr<Regressor> SgdRegression::clone() const {
  return std::make_unique<SgdRegression>(eta0_, max_iter_, l2_, seed_);
}

}  // namespace highrpm::ml
