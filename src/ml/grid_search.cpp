#include "highrpm/ml/grid_search.hpp"

#include <limits>
#include <stdexcept>

#include "highrpm/data/split.hpp"
#include "highrpm/math/metrics.hpp"

namespace highrpm::ml {

namespace {

double score_of(CvMetric metric, std::span<const double> truth,
                std::span<const double> pred) {
  switch (metric) {
    case CvMetric::kMape:
      return math::mape(truth, pred);
    case CvMetric::kRmse:
      return math::rmse(truth, pred);
    case CvMetric::kMae:
      return math::mae(truth, pred);
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

GridSearchResult grid_search(std::span<const RegressorFactory> candidates,
                             const math::Matrix& x, std::span<const double> y,
                             const GridSearchConfig& cfg) {
  if (candidates.empty()) {
    throw std::invalid_argument("grid_search: empty candidate grid");
  }
  if (x.rows() != y.size() || x.rows() < cfg.folds) {
    throw std::invalid_argument("grid_search: data/fold mismatch");
  }
  math::Rng rng(cfg.seed);
  const data::KFold kfold(cfg.folds, cfg.shuffle);
  const auto folds = kfold.split(x.rows(), rng);

  GridSearchResult result;
  result.scores.reserve(candidates.size());
  result.best_score = std::numeric_limits<double>::infinity();

  for (std::size_t c = 0; c < candidates.size(); ++c) {
    double total = 0.0;
    for (const auto& fold : folds) {
      math::Matrix xt(fold.train.size(), x.cols());
      std::vector<double> yt(fold.train.size());
      for (std::size_t i = 0; i < fold.train.size(); ++i) {
        const auto src = x.row(fold.train[i]);
        std::copy(src.begin(), src.end(), xt.row(i).begin());
        yt[i] = y[fold.train[i]];
      }
      auto model = candidates[c]();
      model->fit(xt, yt);
      std::vector<double> truth(fold.test.size()), pred(fold.test.size());
      for (std::size_t i = 0; i < fold.test.size(); ++i) {
        truth[i] = y[fold.test[i]];
        pred[i] = model->predict_one(x.row(fold.test[i]));
      }
      total += score_of(cfg.metric, truth, pred);
    }
    const double avg = total / static_cast<double>(folds.size());
    result.scores.push_back(avg);
    if (avg < result.best_score) {
      result.best_score = avg;
      result.best_index = c;
    }
  }
  return result;
}

std::unique_ptr<Regressor> fit_best(
    std::span<const RegressorFactory> candidates, const math::Matrix& x,
    std::span<const double> y, const GridSearchConfig& cfg) {
  const auto result = grid_search(candidates, x, y, cfg);
  auto model = candidates[result.best_index]();
  model->fit(x, y);
  return model;
}

}  // namespace highrpm::ml
